package tapeworm_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tapeworm"
	"tapeworm/internal/kernel"
)

// Persisted-checkpoint corruption through SystemConfig (the twsim flag
// path): a damaged or foreign .ckpt file must surface the kernel's typed
// errors from NewSystem, never silently boot fresh or fork from the
// wrong image. The process-wide checkpoint cache only reads a file on an
// identity's first use, so each subtest plants its file under an
// identity that has never booted in this process.

const ckptFrames = 4096

// ckptName mirrors the harness's persisted-checkpoint naming
// (boot-s<seed>-p<pageseed>-f<frames>.ckpt), letting the tests address a
// file for an identity before it ever boots.
func ckptName(dir string, seed, pageSeed uint64) string {
	return filepath.Join(dir, fmt.Sprintf("boot-s%x-p%x-f%d.ckpt", seed, pageSeed, ckptFrames))
}

func bootCheckpointed(dir string, seed, pageSeed uint64) (*tapeworm.System, error) {
	return tapeworm.NewSystem(tapeworm.SystemConfig{
		Machine: tapeworm.DECstation(ckptFrames), Seed: seed, PageSeed: pageSeed,
		Checkpoint: true, CheckpointDir: dir,
	})
}

func TestNewSystemCheckpointDirCorruption(t *testing.T) {
	dir := t.TempDir()

	// Boot one real identity so a genuine checkpoint file exists to
	// truncate and to rename over other identities' slots.
	sys, err := bootCheckpointed(dir, 7301, 7401)
	if err != nil {
		t.Fatal(err)
	}
	sys.Kernel().ReleaseBuffers()
	good, err := os.ReadFile(ckptName(dir, 7301, 7401))
	if err != nil {
		t.Fatalf("checkpoint file not persisted where expected: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		if err := os.WriteFile(ckptName(dir, 7302, 7402), good[:len(good)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := bootCheckpointed(dir, 7302, 7402); !errors.Is(err, kernel.ErrCheckpointCorrupt) {
			t.Fatalf("truncated checkpoint: NewSystem err = %v, want ErrCheckpointCorrupt", err)
		}
	})

	t.Run("garbage", func(t *testing.T) {
		path := ckptName(dir, 7303, 7403)
		if err := os.WriteFile(path, []byte("definitely not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := bootCheckpointed(dir, 7303, 7403); !errors.Is(err, kernel.ErrCheckpointCorrupt) {
			t.Fatalf("garbage checkpoint: NewSystem err = %v, want ErrCheckpointCorrupt", err)
		}
	})

	t.Run("wrong-identity", func(t *testing.T) {
		// The real 7301 checkpoint renamed over another identity's slot
		// decodes fine but describes a different boot.
		if err := os.WriteFile(ckptName(dir, 7304, 7404), good, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := bootCheckpointed(dir, 7304, 7404); !errors.Is(err, kernel.ErrCheckpointMismatch) {
			t.Fatalf("foreign checkpoint: NewSystem err = %v, want ErrCheckpointMismatch", err)
		}
	})

	t.Run("recovery", func(t *testing.T) {
		// Failures are confined to the identity with the bad file: a
		// fresh identity pointed at the same directory still captures,
		// persists and forks normally.
		sys, err := bootCheckpointed(dir, 7305, 7405)
		if err != nil {
			t.Fatal(err)
		}
		sys.Kernel().ReleaseBuffers()
		if _, err := os.Stat(ckptName(dir, 7305, 7405)); err != nil {
			t.Fatalf("fresh identity did not persist its checkpoint: %v", err)
		}
	})
}
