// Quickstart: simulate mpeg_play's instruction cache with Tapeworm and
// compare the cost of trap-driven simulation against an uninstrumented
// run — the core Figure 1 / Figure 2 experience in thirty lines.
package main

import (
	"fmt"
	"log"

	"tapeworm"
)

func main() {
	const (
		scale = 400 // 1/400 of the paper's instruction counts
		seed  = 42
	)

	// First, an uninstrumented run to establish normal run time.
	normal, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := normal.LoadWorkload("mpeg_play", scale, seed, false); err != nil {
		log.Fatal(err)
	}
	if err := normal.Run(0); err != nil {
		log.Fatal(err)
	}
	base := normal.Monitor()
	fmt.Printf("uninstrumented: %d instructions in %.3f simulated seconds\n",
		base.Instructions, normal.Seconds())

	// Now the same workload with Tapeworm simulating a 16 KB direct-mapped
	// instruction cache. Traps drive the simulation: hits run at full
	// hardware speed and only misses enter the simulator.
	sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	tw, err := sys.AttachTapeworm(tapeworm.SimConfig{
		Mode: tapeworm.ModeICache,
		Cache: tapeworm.CacheConfig{
			Size: 16 << 10, LineSize: 16, Assoc: 1,
			Indexing: tapeworm.PhysIndexed,
		},
		Sampling: tapeworm.FullSampling(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LoadWorkload("mpeg_play", scale, seed, true); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(0); err != nil {
		log.Fatal(err)
	}

	inst := sys.Monitor()
	fmt.Printf("with Tapeworm:  %d I-cache misses via %s\n",
		tw.Misses(), tw.MechanismName())
	fmt.Printf("                miss ratio %.4f (per workload instruction)\n",
		float64(tw.Misses())/float64(inst.Instructions))
	fmt.Printf("                slowdown %.2fx (paper: under 10x below 10%% miss ratios)\n",
		tapeworm.Slowdown(inst, base))
}
