// TLB study: Tapeworm began life as a trap-driven TLB simulator
// [Nagle93, Uhlig94a], using page valid bits to trap on pages absent from
// a simulated TLB. This example sweeps TLB sizes for an OS-intensive
// workload, the kind of design-tradeoff study those papers ran on
// software-managed TLBs.
package main

import (
	"fmt"
	"log"

	"tapeworm"
)

func main() {
	const (
		scale = 400
		seed  = 23
	)

	fmt.Println("ousterhout benchmark suite, simulated TLB sweep (4K pages, LRU):")
	fmt.Printf("%8s %12s %16s\n", "entries", "TLB misses", "misses/1K instr")
	for _, entries := range []int{8, 16, 32, 64, 128, 256} {
		sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		tw, err := sys.AttachTapeworm(tapeworm.SimConfig{
			Mode: tapeworm.ModeTLB,
			TLB: tapeworm.TLBConfig{
				Entries: entries, PageSize: 4096, Replace: tapeworm.LRU,
			},
			Sampling: tapeworm.FullSampling(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.LoadWorkload("ousterhout", scale, seed, true); err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(0); err != nil {
			log.Fatal(err)
		}
		snap := sys.Monitor()
		fmt.Printf("%8d %12d %16.3f\n", entries, tw.Misses(),
			1000*float64(tw.Misses())/float64(snap.Instructions))
	}

	fmt.Println("\nNote: kernel kseg0 is not TLB-mapped on the R3000, so the")
	fmt.Println("simulated TLB covers user and server tasks, as on the real machine.")
}
