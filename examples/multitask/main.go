// Multitask: the completeness argument of the paper's introduction. An
// OS-intensive workload (sdet: 281 forked tasks, heavy kernel and BSD
// server traffic) is simulated three ways: user tasks only (all a
// trace-driven Pixie setup could see), then with servers, then with the
// kernel included. Only the last view shows where the misses really are
// (Table 6).
package main

import (
	"fmt"
	"log"

	"tapeworm"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
)

func run(simUser, simServers, simKernel bool) (misses uint64, byComp [3]uint64, instr uint64) {
	const scale, seed = 400, 7
	sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	tw, err := sys.AttachTapeworm(tapeworm.SimConfig{
		Mode: tapeworm.ModeICache,
		Cache: tapeworm.CacheConfig{
			Size: 4 << 10, LineSize: 16, Assoc: 1,
			Indexing: tapeworm.PhysIndexed,
		},
		Sampling: tapeworm.FullSampling(),
	})
	if err != nil {
		log.Fatal(err)
	}
	// The workload's fork tree inherits the simulate attribute:
	// (simulate=1, inherit=1) covers all 281 sdet tasks automatically.
	if _, err := sys.LoadWorkload("sdet", scale, seed, simUser); err != nil {
		log.Fatal(err)
	}
	// Server and kernel attributes are set explicitly (tw_attributes).
	if simServers {
		for _, kind := range []kernel.ServerKind{kernel.BSDServer, kernel.XServer} {
			if t := sys.Kernel().Server(kind); t != nil {
				if err := tw.Attributes(t.ID, true, false); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if simKernel {
		if err := tw.Attributes(mem.KernelTask, true, false); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Run(0); err != nil {
		log.Fatal(err)
	}
	return tw.Misses(), tw.MissesByComponent(), sys.Monitor().Instructions
}

func main() {
	fmt.Println("sdet in a 4K direct-mapped I-cache, three views:")

	userOnly, _, instr := run(true, false, false)
	fmt.Printf("\n  user tasks only (what a Pixie-style tracer can see):\n")
	fmt.Printf("    %8d misses  (ratio %.4f)\n", userOnly, ratio(userOnly, instr))

	withServers, comp, instr := run(true, true, false)
	fmt.Printf("\n  + BSD and X server tasks:\n")
	fmt.Printf("    %8d misses  (user %d, servers %d)\n",
		withServers, comp[kernel.CompUser], comp[kernel.CompServer])

	all, comp, instr := run(true, true, true)
	fmt.Printf("\n  + the OS kernel itself (all activity):\n")
	fmt.Printf("    %8d misses  (user %d, servers %d, kernel %d)\n",
		all, comp[kernel.CompUser], comp[kernel.CompServer], comp[kernel.CompKernel])
	fmt.Printf("    total miss ratio %.4f\n", ratio(all, instr))

	fmt.Printf("\nA user-task-only simulator underestimates sdet's miss ratio by %.0fx.\n",
		float64(all)/float64(userOnly))
}

func ratio(m, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(m) / float64(n)
}
