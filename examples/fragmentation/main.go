// Fragmentation: the long-running-system effect of Section 4.2 — "we have
// observed gradual (but substantial) increases in TLB misses due to kernel
// and server memory fragmentation in a long-running system". The same
// workload is run repeatedly on one booted system whose servers fragment
// their heaps as they serve requests; because Tapeworm simulations are
// driven by the live system rather than a fixed trace, the simulated TLB
// miss rate creeps upward from iteration to iteration.
package main

import (
	"fmt"
	"log"

	"tapeworm/internal/cache"
	"tapeworm/internal/core"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/workload"
)

func main() {
	const (
		scale      = 800
		seed       = 41
		iterations = 6
	)

	// Boot one long-running system with server heap fragmentation on.
	kcfg := kernel.DefaultConfig(mach.DECstation5000_200(8192), seed)
	kcfg.ServerFragBytesPerReq = 96
	k, err := kernel.Boot(kcfg)
	if err != nil {
		log.Fatal(err)
	}
	defer k.ReleaseBuffers()
	tw, err := core.Attach(k, core.Config{
		Mode:     core.ModeTLB,
		TLB:      cache.TLBConfig{Entries: 64, PageSize: 4096, Replace: cache.LRU},
		Sampling: core.FullSampling(),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Simulate the servers (where fragmentation lives) and the workload.
	for _, kind := range []kernel.ServerKind{kernel.BSDServer, kernel.XServer} {
		if t := k.Server(kind); t != nil {
			if err := tw.Attributes(t.ID, true, false); err != nil {
				log.Fatal(err)
			}
		}
	}

	spec, err := workload.ByName("ousterhout", scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ousterhout run repeatedly on one booted system, 64-entry simulated TLB:")
	fmt.Printf("%10s %12s %16s\n", "iteration", "TLB misses", "misses/1K instr")
	var prevMisses, prevInstr uint64
	for i := 1; i <= iterations; i++ {
		prog, err := workload.New(spec, seed+uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		k.Spawn(spec.Name, prog, true, true)
		if err := k.Run(0); err != nil {
			log.Fatal(err)
		}
		misses := tw.Misses() - prevMisses
		instr := k.Machine().Instructions() - prevInstr
		prevMisses, prevInstr = tw.Misses(), k.Machine().Instructions()
		fmt.Printf("%10d %12d %16.3f\n", i, misses, 1000*float64(misses)/float64(instr))
	}
	fmt.Println("\nTrace-driven simulation replays a fixed trace and can never see this;")
	fmt.Println("a trap-driven simulator measures the system as it actually ages.")
}
