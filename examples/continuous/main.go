// Continuous: the paper's Section 5 outlook — "simulations can be driven
// by the memory references generated during an actual user's session,
// because Tapeworm slowdowns can be made imperceptible... This makes it
// possible to watch for interesting cases that cannot be identified by
// traditional batch simulations."
//
// This example monitors a running mpeg_play session in time windows,
// printing the simulated I-cache miss rate per window. The workload's
// phase changes (the decoder switching working sets) show up as visible
// swings that a single end-of-run number would average away.
package main

import (
	"fmt"
	"log"
	"strings"

	"tapeworm"
)

func main() {
	const (
		scale   = 200
		seed    = 17
		windows = 24
	)

	sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	tw, err := sys.AttachTapeworm(tapeworm.SimConfig{
		Mode: tapeworm.ModeICache,
		Cache: tapeworm.CacheConfig{
			Size: 8 << 10, LineSize: 16, Assoc: 1,
			Indexing: tapeworm.PhysIndexed,
		},
		// Light sampling keeps the monitoring overhead imperceptible.
		Sampling: tapeworm.Sampling{Num: 1, Den: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := tapeworm.WorkloadByName("mpeg_play", scale)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LoadWorkload("mpeg_play", scale, seed, true); err != nil {
		log.Fatal(err)
	}

	step := spec.TotalInstructions() / windows
	fmt.Println("live session monitoring: mpeg_play, 8K I-cache, 1/4 sampling")
	fmt.Printf("%8s %12s %14s  %s\n", "window", "instrs", "est. misses/1K", "")
	var prevMisses float64
	var prevInstr uint64
	for w := 1; ; w++ {
		if err := sys.Run(uint64(w) * step); err != nil {
			log.Fatal(err)
		}
		snap := sys.Monitor()
		misses := tw.EstimatedMisses()
		dm := misses - prevMisses
		di := snap.Instructions - prevInstr
		if di == 0 {
			break // workload finished
		}
		rate := 1000 * dm / float64(di)
		bar := strings.Repeat("#", int(rate*1.5))
		fmt.Printf("%8d %12d %14.2f  %s\n", w, di, rate, bar)
		prevMisses, prevInstr = misses, snap.Instructions
		if sys.Kernel().UserTasksAlive() == 0 {
			break
		}
	}
	fmt.Println("\nPer-window rates expose the decoder's phase behaviour; batch")
	fmt.Println("simulation reports only the average.")
}
