// Portability: the Section 4.3/4.4 story. Tapeworm's machine-dependent
// layer is two primitives (tw_set_trap, tw_clear_trap) chosen from what a
// host offers (Table 12). This example attaches the same simulations to
// three machine models and shows which configurations each port can and
// cannot express — including the DECstation's no-allocate-on-write policy
// defeating data-cache simulation.
package main

import (
	"fmt"
	"log"

	"tapeworm"
)

func attach(machine tapeworm.MachineConfig, label string, cfg tapeworm.SimConfig, workload string) {
	sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{Machine: machine, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	tw, err := sys.AttachTapeworm(cfg)
	if err != nil {
		fmt.Printf("    %-10s -> NOT SUPPORTED: %v\n", label, err)
		return
	}
	if _, err := sys.LoadWorkload(workload, 2000, 3, true); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    %-10s -> ok via %s: %d misses\n", label, tw.MechanismName(), tw.Misses())
}

func main() {
	icache := tapeworm.SimConfig{
		Mode: tapeworm.ModeICache,
		Cache: tapeworm.CacheConfig{Size: 8 << 10, LineSize: 16, Assoc: 1,
			Indexing: tapeworm.VirtIndexed},
		Sampling: tapeworm.FullSampling(),
	}
	dcache := icache
	dcache.Mode = tapeworm.ModeDCache
	tlb := tapeworm.SimConfig{
		Mode:     tapeworm.ModeTLB,
		TLB:      tapeworm.TLBConfig{Entries: 32, PageSize: 4096, Replace: tapeworm.LRU},
		Sampling: tapeworm.FullSampling(),
	}

	superTLB := tlb
	superTLB.TLB.PageSize = 16384

	machines := []struct {
		name string
		cfg  tapeworm.MachineConfig
	}{
		{"DECstation 5000/200 (R3000, ECC, no-allocate-on-write)", tapeworm.DECstation(4096)},
		{"DECstation 5000/240 (R4000, variable pages, hostile DMA)", tapeworm.DECstation240(4096)},
		{"Gateway 486 (no ECC diagnostics)", tapeworm.Gateway486(4096)},
		{"CM-5 node (SPARC, allocate-on-write)", tapeworm.WWTNode(4096)},
	}
	for _, m := range machines {
		fmt.Printf("\n%s:\n", m.name)
		attach(m.cfg, "icache", icache, "espresso")
		attach(m.cfg, "dcache", dcache, "eqntott")
		attach(m.cfg, "tlb-4K", tlb, "espresso")
		attach(m.cfg, "tlb-16K", superTLB, "espresso")
	}
	fmt.Println("\nOnly tw_set_trap/tw_clear_trap change between ports; the rest of")
	fmt.Println("Tapeworm is machine-independent (under 5% of the code, Table 11).")
}
