// Singlepass: the flexibility flip-side. A captured Pixie trace can feed a
// single-pass stack-algorithm simulator [Mattson70] that yields the miss
// count of EVERY associativity in one traversal — something trap-driven
// simulation cannot do (one configuration per run). The price is the usual
// trace-driven one: a single user task, no kernel or servers, and per-
// address processing cost. This example shows both sides.
package main

import (
	"fmt"
	"log"

	"tapeworm"
	"tapeworm/internal/stackdist"
)

func main() {
	const (
		scale   = 800
		seed    = 31
		numSets = 64 // 64 sets x 16B lines: the 1K..32K family
	)

	// Capture an instruction trace of espresso once.
	sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	task, err := sys.LoadWorkload("espresso", scale, seed, false)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := sys.CaptureTrace(task, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d instruction fetches from espresso\n\n", buf.Len())

	// One pass over the trace yields the whole LRU family at once.
	s := stackdist.MustNew(stackdist.Config{LineSize: 16, NumSets: numSets})
	s.Run(buf)

	fmt.Printf("one stack-algorithm pass, %d-set 16B-line LRU family:\n", numSets)
	fmt.Printf("%10s %8s %10s %12s\n", "capacity", "ways", "misses", "miss ratio")
	for _, p := range s.Curve(32) {
		if p.Ways&(p.Ways-1) != 0 {
			continue // print powers of two only
		}
		fmt.Printf("%9dK %8d %10d %12.4f\n",
			p.CapacityBytes>>10, p.Ways, p.Misses,
			float64(p.Misses)/float64(s.Refs()))
	}

	// Cross-check one point against a trap-driven run of the same cache.
	sys2, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	tw, err := sys2.AttachTapeworm(tapeworm.SimConfig{
		Mode: tapeworm.ModeICache,
		Cache: tapeworm.CacheConfig{
			Size: numSets * 2 * 16, LineSize: 16, Assoc: 2,
			Indexing: tapeworm.VirtIndexed,
		},
		Sampling: tapeworm.FullSampling(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys2.LoadWorkload("espresso", scale, seed, true); err != nil {
		log.Fatal(err)
	}
	if err := sys2.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-check at 2 ways: stack-LRU %d misses, trap-driven %d misses\n",
		s.MissesAt(2), tw.Misses())
	fmt.Println("The gap is real and inherent: hits never reach a trap-driven")
	fmt.Println("simulator, so it cannot maintain true LRU — its associative")
	fmt.Println("replacement is insertion-order (FIFO), and it needed one full")
	fmt.Println("run for this single point where the stack pass got them all.")
}
