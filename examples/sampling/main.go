// Sampling: the speed/variance trade-off of set sampling (Section 3.2,
// Figure 3, Table 8). Tapeworm implements set sampling for free by simply
// not arming traps outside the sample, so slowdown falls in direct
// proportion to the sampled fraction — at the price of estimator variance,
// measured here across trials with different sample patterns.
package main

import (
	"fmt"
	"log"

	"tapeworm"
	"tapeworm/internal/stats"
)

func main() {
	const (
		scale  = 800
		seed   = 11
		trials = 8
	)

	// Normal run time for the slowdown denominator.
	normal, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := normal.LoadWorkload("mpeg_play", scale, seed, false); err != nil {
		log.Fatal(err)
	}
	if err := normal.Run(0); err != nil {
		log.Fatal(err)
	}
	base := normal.Monitor()

	fmt.Println("mpeg_play, 1K direct-mapped I-cache, set sampling sweep:")
	fmt.Printf("%-9s %10s %14s %10s\n", "sampling", "slowdown", "est. misses", "stddev")
	for _, den := range []int{1, 2, 4, 8, 16} {
		var ests []float64
		var slowSum float64
		for trial := 0; trial < trials; trial++ {
			sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{
				Seed: seed, PageSeed: uint64(trial + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			tw, err := sys.AttachTapeworm(tapeworm.SimConfig{
				Mode: tapeworm.ModeICache,
				Cache: tapeworm.CacheConfig{
					Size: 1 << 10, LineSize: 16, Assoc: 1,
					Indexing: tapeworm.PhysIndexed,
				},
				// Different trials sample different sets: rotating the
				// trap pattern is all it takes (no trace reprocessing).
				Sampling: tapeworm.Sampling{Num: 1, Den: den, Offset: trial * den / trials},
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := sys.LoadWorkload("mpeg_play", scale, seed, true); err != nil {
				log.Fatal(err)
			}
			if err := sys.Run(0); err != nil {
				log.Fatal(err)
			}
			ests = append(ests, tw.EstimatedMisses())
			slowSum += tapeworm.Slowdown(sys.Monitor(), base)
		}
		sum := stats.Summarize(ests)
		fmt.Printf("1/%-7d %9.2fx %14.0f %9.0f (%.0f%%)\n",
			den, slowSum/trials, sum.Mean, sum.Stddev, sum.StddevPct())
	}
	fmt.Println("\nslowdown falls with the sampled fraction; variance rises (Table 8).")
}
