// Package tapeworm is a reproduction of "Trap-driven Simulation with
// Tapeworm II" (Uhlig, Nagle, Mudge & Sechrest, ASPLOS-VI, 1994): a
// kernel-resident cache and TLB simulator driven by hardware traps instead
// of address traces, together with everything it runs on — a simulated
// DECstation-class machine with ECC-bearing memory, a Mach-like kernel
// with BSD and X server tasks, the paper's eight workloads as synthetic
// reference generators, and a Pixie+Cache2000-style trace-driven baseline.
//
// The package exposes a small façade over the internal packages:
//
//	sys, _ := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: 1})
//	tw, _ := sys.AttachTapeworm(tapeworm.SimConfig{
//	    Mode:     tapeworm.ModeICache,
//	    Cache:    tapeworm.CacheConfig{Size: 16 << 10, LineSize: 16, Assoc: 1},
//	    Sampling: tapeworm.FullSampling(),
//	})
//	sys.LoadWorkload("mpeg_play", 100, 42, true)
//	sys.Run()
//	fmt.Println(tw.Misses())
//
// The cmd/twbench tool regenerates every table and figure of the paper's
// evaluation; DESIGN.md maps each to the modules that implement it and
// EXPERIMENTS.md records reproduced-versus-paper results.
package tapeworm
