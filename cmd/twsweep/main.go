// Command twsweep enumerates an instruction-cache design-space grid —
// every (size, associativity, line size) combination — for one workload,
// and renders the miss counts, miss ratios and simulation slowdowns as a
// table. It is the flagship client of the content-addressed result cache:
// all grid points share one ganged execution when cold, and a repeated
// identical invocation with -result-cache-dir is served entirely from the
// persisted store, simulating nothing.
//
// Examples:
//
//	twsweep -workload mpeg_play                         # default 3×3×2 grid
//	twsweep -sizes 1K,2K,4K,8K -assocs 1,2,4 -lines 16,32
//	twsweep -result-cache-dir /tmp/rc                   # warm across processes
//	twsweep -result-cache=false                         # force re-simulation
//
// The table is byte-identical at any -parallel, with the result cache on
// or off, and whether results come fresh, from the in-process tier, or
// from a persisted directory (the `make verify-resultcache` gate).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"tapeworm/internal/experiment"
)

func main() {
	var (
		wl       = flag.String("workload", "mpeg_play", "workload name")
		sizes    = flag.String("sizes", "1K,4K,16K", "comma-separated cache sizes (e.g. 1K,8K,1M)")
		assocs   = flag.String("assocs", "1,2,4", "comma-separated associativities (0 = fully associative)")
		lines    = flag.String("lines", "16,32", "comma-separated line sizes in bytes")
		scale    = flag.Float64("scale", 100, "workload scale divisor")
		seed     = flag.Uint64("seed", 1994, "master seed")
		frames   = flag.Int("frames", 8192, "physical memory frames")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		outPath  = flag.String("o", "", "also write the table to this file")
		quiet    = flag.Bool("q", false, "suppress progress lines")

		resultCache    = flag.Bool("result-cache", true, "serve repeated identical configurations from the content-addressed result cache (results are byte-identical either way)")
		resultCacheDir = flag.String("result-cache-dir", "", "persist results to this directory and reload them across invocations (requires -result-cache)")

		gang          = flag.Bool("gang", true, "share one execution across the grid (results are byte-identical either way)")
		checkpoint    = flag.Bool("checkpoint", false, "fork runs from cached post-boot images (results are byte-identical either way)")
		checkpointDir = flag.String("checkpoint-dir", "", "persist boot images to this directory (requires -checkpoint)")

		phaseIntervals = flag.Int("phase-intervals", 0, "slice the workload into this many intervals and simulate one representative per phase (0 = exhaustive; results are extrapolated and error-bound-gated, not exact)")
		phaseK         = flag.Int("phase-k", 0, "number of behavioral phases (k-means clusters); requires -phase-intervals")
		phaseWarmup    = flag.Int("phase-warmup", 0, "instructions of simulator warm-up replayed ahead of each representative window; requires -phase-intervals")
	)
	flag.Parse()

	sizeList, err := parseSizeList(*sizes)
	check(err)
	assocList, err := parseIntList(*assocs)
	check(err)
	lineList, err := parseIntList(*lines)
	check(err)

	opts := experiment.Options{
		Scale: *scale, Seed: *seed, Trials: 1, Frames: *frames,
		Parallelism: *parallel, NoGang: !*gang,
		Checkpoint: *checkpoint, CheckpointDir: *checkpointDir,
		ResultCache: *resultCache, ResultCacheDir: *resultCacheDir,
		PhaseIntervals: *phaseIntervals, PhaseK: *phaseK, PhaseWarmup: *phaseWarmup,
	}
	check(opts.Validate())
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintf(os.Stderr, "  %s\n", line) }
	}
	sc := experiment.SweepConfig{
		Workload: *wl, Sizes: sizeList, Assocs: assocList, Lines: lineList,
	}
	check(sc.Validate())

	start := time.Now()
	table, err := experiment.Sweep(opts, sc)
	check(err)
	if note := experiment.PhaseNote(opts); note != "" {
		table.Notes = append(table.Notes, note)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		check(err)
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	fmt.Fprintln(out, table.Render())

	st := experiment.ResultCacheStats()
	fmt.Fprintf(os.Stderr, "twsweep: %d configurations in %.2fs (result cache: %d hits, %d misses, %d loads)\n",
		sc.Points(), time.Since(start).Seconds(), st.Hits, st.Misses, st.Loads)
}

// parseSizeList parses "1K,8K,1M" into byte counts.
func parseSizeList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		mult := 1
		switch {
		case strings.HasSuffix(part, "K"), strings.HasSuffix(part, "k"):
			mult, part = 1<<10, part[:len(part)-1]
		case strings.HasSuffix(part, "M"), strings.HasSuffix(part, "m"):
			mult, part = 1<<20, part[:len(part)-1]
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty size list %q", s)
	}
	return out, nil
}

// parseIntList parses "1,2,4" into ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "twsweep:", err)
		os.Exit(1)
	}
}
