// Command twvet checks the Tapeworm tree against the repo's simulation
// invariants: deterministic iteration in result-producing packages,
// zero-overhead telemetry guards on hot paths, balanced trap/breakpoint/
// pool pairing, and options validation at experiment boundaries.
//
// It speaks the go vet vettool protocol, so the usual invocation is
//
//	go vet -vettool=$(which twvet) ./...
//
// Run standalone (twvet [packages]) it loads packages itself via
// `go list -export` and defaults to ./... in the current module.
package main

import (
	"tapeworm/internal/analysis"
	"tapeworm/internal/analysis/passes/suite"
)

func main() {
	analysis.Main(suite.All()...)
}
