// Command tracesim runs the trace-driven baseline: a Pixie-style annotated
// workload feeding a Cache2000-style simulator, either on the fly or
// through a trace file. It exists to reproduce the paper's comparisons and
// to demonstrate what the baseline can and cannot see (single user task,
// no kernel or servers) and what it can simulate that traps cannot (write
// buffers).
//
// Examples:
//
//	tracesim -workload mpeg_play -size 4K                 # on-the-fly
//	tracesim -workload xlisp -capture /tmp/x.trace        # write a trace
//	tracesim -replay /tmp/x.trace -size 4K                # simulate from file
//	tracesim -workload eqntott -size 8K -writebuffer 4    # store-buffer model
//	tracesim -workload xlisp -result-cache -result-cache-dir /tmp/rc
//
// With -result-cache, a repeated identical on-the-fly run is served from
// the content-addressed result cache and prints byte-identical output
// without building a system; -capture and -replay always run fresh.
package main

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"os"

	"tapeworm"
	"tapeworm/internal/cache"
	"tapeworm/internal/cache2000"
	"tapeworm/internal/core"
	"tapeworm/internal/mem"
	"tapeworm/internal/resultcache"
	"tapeworm/internal/trace"
	"tapeworm/internal/workload"
)

// traceResult is everything the on-the-fly report prints, detached from
// the live simulator so it can round-trip through the result cache.
type traceResult struct {
	Processed uint64
	Hits      uint64
	Misses    uint64
	Cycles    uint64
	HasWB     bool
	WBStores  uint64
	WBStalls  uint64
	Seconds   float64
}

func encodeTraceResult(v any) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(v.(traceResult))
	return buf.Bytes(), err
}

func decodeTraceResult(b []byte) (any, error) {
	var r traceResult
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r)
	return r, err
}

// traceDigest is the content address of one on-the-fly tracesim run.
func traceDigest(spec workload.Spec, seed uint64, cfg cache2000.Config) resultcache.Digest {
	h := resultcache.NewHasher()
	h.WriteString("tracesim.run/v1")
	h.WriteUint64(core.PhysicsVersion)
	spec.HashInto(h)
	h.WriteUint64(seed)
	cfg.HashInto(h)
	return h.Sum()
}

func main() {
	var (
		wl      = flag.String("workload", "mpeg_play", "workload to annotate")
		scale   = flag.Float64("scale", 400, "workload scale divisor")
		seed    = flag.Uint64("seed", 1, "workload seed")
		sizeKB  = flag.Int("size", 4, "cache size in KB")
		line    = flag.Int("line", 16, "line size in bytes")
		assoc   = flag.Int("assoc", 1, "associativity")
		dataToo = flag.Bool("data", false, "trace data references as well as instruction fetches")
		capture = flag.String("capture", "", "write the trace to this file instead of simulating")
		replay  = flag.String("replay", "", "simulate from this trace file instead of running a workload")
		wbDepth = flag.Int("writebuffer", 0, "also simulate a store buffer of this depth (0 = off)")

		resultCache    = flag.Bool("result-cache", false, "serve a previously simulated identical on-the-fly run from the content-addressed result cache (results are byte-identical either way)")
		resultCacheDir = flag.String("result-cache-dir", "", "persist results to this directory and reload them across invocations (requires -result-cache)")
	)
	flag.Parse()

	if *resultCacheDir != "" && !*resultCache {
		check(fmt.Errorf("-result-cache-dir %q requires -result-cache", *resultCacheDir))
	}
	if *resultCache && (*capture != "" || *replay != "") {
		fmt.Fprintln(os.Stderr, "tracesim: note: -result-cache only applies to on-the-fly simulation, not -capture or -replay")
	}

	cfg := cache2000.Config{
		Cache: cache.Config{Size: *sizeKB << 10, LineSize: *line, Assoc: *assoc},
	}
	if !*dataToo {
		cfg.Kinds = []mem.RefKind{mem.IFetch}
	}
	if *wbDepth > 0 {
		cfg.WriteBuffer = &cache2000.WriteBufferConfig{Depth: *wbDepth, DrainCycles: 20}
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		check(err)
		defer f.Close()
		buf, err := trace.Read(f)
		check(err)
		sim, err := cache2000.New(cfg)
		check(err)
		sim.Run(buf)
		res := traceResult{
			Processed: uint64(buf.Len()),
			Hits:      sim.Hits(), Misses: sim.Misses(), Cycles: sim.Cycles(),
		}
		if wb := sim.WriteBuffer(); wb != nil {
			res.HasWB = true
			res.WBStores, res.WBStalls = wb.Stats()
		}
		report(res)
		return
	}

	if *capture != "" {
		sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: *seed})
		check(err)
		task, err := sys.LoadWorkload(*wl, *scale, *seed, false)
		check(err)
		buf, err := sys.CaptureTrace(task, !*dataToo)
		check(err)
		check(sys.Run(0))
		f, err := os.Create(*capture)
		check(err)
		check(buf.Write(f))
		check(f.Close())
		fmt.Printf("captured %d references from %s to %s\n", buf.Len(), *wl, *capture)
		return
	}

	// The whole system — kernel boot included — lives inside simulate, so
	// a result-cache hit builds nothing at all.
	simulate := func() (traceResult, error) {
		sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: *seed})
		if err != nil {
			return traceResult{}, err
		}
		task, err := sys.LoadWorkload(*wl, *scale, *seed, false)
		if err != nil {
			return traceResult{}, err
		}
		sim, err := sys.AnnotatePixie(task, cfg)
		if err != nil {
			return traceResult{}, err
		}
		if err := sys.Run(0); err != nil {
			return traceResult{}, err
		}
		res := traceResult{
			Processed: sim.Processed(),
			Hits:      sim.Hits(),
			Misses:    sim.Misses(),
			Cycles:    sim.Cycles(),
			Seconds:   sys.Seconds(),
		}
		if wb := sim.WriteBuffer(); wb != nil {
			res.HasWB = true
			res.WBStores, res.WBStalls = wb.Stats()
		}
		return res, nil
	}
	run := simulate
	if *resultCache {
		store := resultcache.New(1, encodeTraceResult, decodeTraceResult)
		spec, err := workload.ByName(*wl, *scale)
		check(err)
		d := traceDigest(spec, *seed, cfg)
		run = func() (traceResult, error) {
			claim, err := store.Acquire(d, *resultCacheDir)
			if err != nil {
				return traceResult{}, err
			}
			defer claim.Release()
			if v, ok := claim.Cached(); ok {
				return v.(traceResult), nil
			}
			r, err := simulate()
			if err != nil {
				return r, err
			}
			return r, claim.Complete(r)
		}
	}
	res, err := run()
	check(err)
	report(res)
	fmt.Printf("simulated seconds (dilated by tracing): %.3f\n", res.Seconds)
}

func report(res traceResult) {
	// The divisor is hits+misses (what the simulator processed), not the
	// headline count, which for -replay is the trace length instead.
	missRatio := float64(res.Misses) / float64(max64(1, res.Hits+res.Misses))
	fmt.Printf("addresses processed: %d\n", res.Processed)
	fmt.Printf("hits %d / misses %d (miss ratio %.4f)\n",
		res.Hits, res.Misses, missRatio)
	fmt.Printf("simulation cycles: %d (%.1f per address)\n",
		res.Cycles, float64(res.Cycles)/float64(max64(1, res.Hits+res.Misses)))
	if res.HasWB {
		fmt.Printf("write buffer: %d stores, %d stall cycles\n", res.WBStores, res.WBStalls)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
}
