// Command tracesim runs the trace-driven baseline: a Pixie-style annotated
// workload feeding a Cache2000-style simulator, either on the fly or
// through a trace file. It exists to reproduce the paper's comparisons and
// to demonstrate what the baseline can and cannot see (single user task,
// no kernel or servers) and what it can simulate that traps cannot (write
// buffers).
//
// Examples:
//
//	tracesim -workload mpeg_play -size 4K                 # on-the-fly
//	tracesim -workload xlisp -capture /tmp/x.trace        # write a trace
//	tracesim -replay /tmp/x.trace -size 4K                # simulate from file
//	tracesim -workload eqntott -size 8K -writebuffer 4    # store-buffer model
package main

import (
	"flag"
	"fmt"
	"os"

	"tapeworm"
	"tapeworm/internal/cache"
	"tapeworm/internal/cache2000"
	"tapeworm/internal/mem"
	"tapeworm/internal/trace"
)

func main() {
	var (
		wl      = flag.String("workload", "mpeg_play", "workload to annotate")
		scale   = flag.Float64("scale", 400, "workload scale divisor")
		seed    = flag.Uint64("seed", 1, "workload seed")
		sizeKB  = flag.Int("size", 4, "cache size in KB")
		line    = flag.Int("line", 16, "line size in bytes")
		assoc   = flag.Int("assoc", 1, "associativity")
		dataToo = flag.Bool("data", false, "trace data references as well as instruction fetches")
		capture = flag.String("capture", "", "write the trace to this file instead of simulating")
		replay  = flag.String("replay", "", "simulate from this trace file instead of running a workload")
		wbDepth = flag.Int("writebuffer", 0, "also simulate a store buffer of this depth (0 = off)")
	)
	flag.Parse()

	cfg := cache2000.Config{
		Cache: cache.Config{Size: *sizeKB << 10, LineSize: *line, Assoc: *assoc},
	}
	if !*dataToo {
		cfg.Kinds = []mem.RefKind{mem.IFetch}
	}
	if *wbDepth > 0 {
		cfg.WriteBuffer = &cache2000.WriteBufferConfig{Depth: *wbDepth, DrainCycles: 20}
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		check(err)
		defer f.Close()
		buf, err := trace.Read(f)
		check(err)
		sim, err := cache2000.New(cfg)
		check(err)
		sim.Run(buf)
		report(sim, uint64(buf.Len()))
		return
	}

	sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{Seed: *seed})
	check(err)
	task, err := sys.LoadWorkload(*wl, *scale, *seed, false)
	check(err)

	if *capture != "" {
		buf, err := sys.CaptureTrace(task, !*dataToo)
		check(err)
		check(sys.Run(0))
		f, err := os.Create(*capture)
		check(err)
		check(buf.Write(f))
		check(f.Close())
		fmt.Printf("captured %d references from %s to %s\n", buf.Len(), *wl, *capture)
		return
	}

	sim, err := sys.AnnotatePixie(task, cfg)
	check(err)
	check(sys.Run(0))
	report(sim, sim.Processed())
	fmt.Printf("simulated seconds (dilated by tracing): %.3f\n", sys.Seconds())
}

func report(sim *cache2000.Simulator, processed uint64) {
	fmt.Printf("addresses processed: %d\n", processed)
	fmt.Printf("hits %d / misses %d (miss ratio %.4f)\n",
		sim.Hits(), sim.Misses(), sim.MissRatio())
	fmt.Printf("simulation cycles: %d (%.1f per address)\n",
		sim.Cycles(), float64(sim.Cycles())/float64(max64(1, sim.Processed())))
	if wb := sim.WriteBuffer(); wb != nil {
		stores, stalls := wb.Stats()
		fmt.Printf("write buffer: %d stores, %d stall cycles\n", stores, stalls)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
}
