// Command twcal probes the calibration of the synthetic workloads against
// the paper's Table 4 (component instruction fractions) and Figure 2 /
// Table 6 (miss ratios), printing measured-versus-target values. It is a
// development diagnostic; the reproduction harness proper is cmd/twbench.
package main

import (
	"flag"
	"fmt"
	"os"

	"tapeworm/internal/cache"
	"tapeworm/internal/core"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1000, "workload scale divisor")
	wl := flag.String("workload", "", "probe a single workload's miss curve")
	flag.Parse()

	if *wl != "" {
		missCurve(*wl, *scale)
		return
	}
	fractions(*scale)
}

// boot hands the booted kernel (and its pooled buffers) to the caller.
func boot(seed uint64) *kernel.Kernel {
	return kernel.MustBoot(kernel.DefaultConfig(mach.DECstation5000_200(8192), seed))
}

func fractions(scale float64) {
	fmt.Printf("%-11s %9s %9s | %6s %6s %6s %6s | %6s %6s %6s %6s | %5s\n",
		"workload", "instr", "secs", "kern", "bsd", "x", "user",
		"tKern", "tBSD", "tX", "tUser", "tasks")
	for _, spec := range workload.Specs(scale) {
		k := boot(1)
		prog := workload.MustNew(spec, 42)
		k.Spawn(spec.Name, prog, false, false)
		if err := k.Run(0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m := k.Machine()
		total := float64(m.Instructions())
		comp := k.ComponentInstructions()
		var bsd, x float64
		if t := k.Server(kernel.BSDServer); t != nil {
			bsd = float64(t.Instructions)
		}
		if t := k.Server(kernel.XServer); t != nil {
			x = float64(t.Instructions)
		}
		fmt.Printf("%-11s %9.0f %9.3f | %5.1f%% %5.1f%% %5.1f%% %5.1f%% | %5.1f%% %5.1f%% %5.1f%% %5.1f%% | %5d\n",
			spec.Name, total, m.Seconds(m.Cycles()),
			100*float64(comp[kernel.CompKernel])/total,
			100*bsd/total, 100*x/total,
			100*float64(comp[kernel.CompUser])/total,
			100*spec.FracKernel, 100*spec.FracBSD, 100*spec.FracX, 100*spec.FracUser,
			k.Stats().UserSpawned)
		k.ReleaseBuffers()
	}
}

func missCurve(name string, scale float64) {
	spec, err := workload.ByName(name, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: user-task I-cache miss ratios (per user instruction), DM 16B lines\n", name)
	for _, sizeKB := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		k := boot(1)
		tw := core.MustAttach(k, core.Config{
			Mode: core.ModeICache,
			Cache: cache.Config{Size: sizeKB << 10, LineSize: 16, Assoc: 1,
				Indexing: cache.VirtIndexed},
			Sampling: core.FullSampling(),
		})
		k.Spawn(spec.Name, workload.MustNew(spec, 42), true, true)
		if err := k.Run(0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		comp := k.ComponentInstructions()
		user := float64(comp[kernel.CompUser])
		fmt.Printf("  %4dK: misses %8d  ratio %.4f\n",
			sizeKB, tw.Misses(), float64(tw.Misses())/user)
		k.ReleaseBuffers()
	}
}
