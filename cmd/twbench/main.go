// Command twbench regenerates the paper's evaluation: every table and
// figure of Section 4, printed as aligned text tables.
//
// Usage:
//
//	twbench                         # run the full suite at scale 100
//	twbench -run figure2,table6     # selected experiments
//	twbench -scale 1000 -trials 4   # coarser, faster
//	twbench -parallel 1             # strictly serial execution
//	twbench -list                   # list experiment IDs
//	twbench -o report.txt           # also write the report to a file
//	twbench -metrics m.json -trace t.jsonl   # machine-readable telemetry
//	twbench -fastpath=false         # force the per-reference execution path
//	twbench -compile=false          # force the interpreted workload programs
//	twbench -gang=false             # run every configuration as its own execution
//	twbench -gang-demux linear      # per-member linear gang trap demux
//	twbench -checkpoint             # fork runs from cached post-boot images
//	twbench -result-cache           # serve repeated identical runs from the result cache
//	twbench -result-cache-dir /tmp/rc   # persist results across invocations
//	twbench -bench-json pr4         # time fast vs. baseline and ganged vs. solo, write BENCH_pr4.json
//
// Each experiment's independent machine runs execute on a worker pool
// (default GOMAXPROCS workers; -parallel overrides). Results, progress
// lines and telemetry commits are all assembled in submission order, so
// the report, the metrics file and the trace stream are byte-identical
// at any parallelism.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tapeworm/internal/experiment"
	"tapeworm/internal/telemetry"
)

func main() {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Float64("scale", 100, "workload scale divisor (100 = standard evaluation)")
		trials   = flag.Int("trials", 16, "trials for variance tables")
		seed     = flag.Uint64("seed", 1994, "master seed")
		frames   = flag.Int("frames", 8192, "physical memory frames")
		parallel = flag.Int("parallel", 0, "worker pool size for independent runs (0 = GOMAXPROCS, 1 = serial)")
		outPath  = flag.String("o", "", "also write the report to this file")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quiet    = flag.Bool("q", false, "suppress progress lines")

		metricsPath = flag.String("metrics", "", "write a JSON metrics report to this file")
		tracePath   = flag.String("trace", "", "write a JSONL trap-event trace to this file")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")

		checkpoint    = flag.Bool("checkpoint", false, "fork runs from cached post-boot images instead of booting fresh (results are byte-identical either way)")
		checkpointDir = flag.String("checkpoint-dir", "", "persist boot images to this directory and reload them across invocations (requires -checkpoint)")

		resultCache    = flag.Bool("result-cache", false, "serve repeated identical runs from the content-addressed result cache (results are byte-identical either way)")
		resultCacheDir = flag.String("result-cache-dir", "", "persist results to this directory and reload them across invocations (requires -result-cache)")

		fastpath   = flag.Bool("fastpath", true, "use the batched hit fast path (results are byte-identical either way)")
		compile    = flag.Bool("compile", true, "replay pre-compiled workload programs (results are byte-identical either way)")
		gang       = flag.Bool("gang", true, "group gang-eligible runs into shared executions (results are byte-identical either way)")
		gangDemux  = flag.String("gang-demux", "bitset", "gang trap demux strategy: bitset or linear (results are byte-identical either way)")
		benchLabel      = flag.String("bench-json", "", "time each experiment with the fast path on and off plus a hot-loop microbenchmark and the ganged accuracy-sweep suite, and write BENCH_<label>.json")
		verifyIntervals = flag.Bool("verify-intervals", false, "run the interval-sampling measurement alone and exit non-zero unless it meets the CI gates (speedup >= 5, miss-ratio error <= 0.02)")

		phaseIntervals = flag.Int("phase-intervals", 0, "slice each workload into this many intervals and simulate one representative per phase (0 = exhaustive; results are extrapolated and error-bound-gated, not exact)")
		phaseK         = flag.Int("phase-k", 0, "number of behavioral phases (k-means clusters); requires -phase-intervals")
		phaseWarmup    = flag.Int("phase-warmup", 0, "instructions of simulator warm-up replayed ahead of each representative window; requires -phase-intervals")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-9s %s\n", id, experiment.Describe(id))
		}
		return
	}

	opts := experiment.Options{
		Scale: *scale, Seed: *seed, Trials: *trials, Frames: *frames,
		Parallelism: *parallel, NoFastPath: !*fastpath, NoCompile: !*compile,
		NoGang: !*gang, LinearGangDemux: *gangDemux == "linear",
		Checkpoint: *checkpoint, CheckpointDir: *checkpointDir,
		ResultCache: *resultCache, ResultCacheDir: *resultCacheDir,
		PhaseIntervals: *phaseIntervals, PhaseK: *phaseK, PhaseWarmup: *phaseWarmup,
	}
	if *gangDemux != "bitset" && *gangDemux != "linear" {
		fail(fmt.Errorf("-gang-demux must be bitset or linear, got %q", *gangDemux))
	}
	if err := opts.Validate(); err != nil {
		fail(err)
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintf(os.Stderr, "  %s\n", line) }
	}

	if *verifyIntervals {
		if err := verifyIntervalGates(opts); err != nil {
			fail(err)
		}
		return
	}
	if *benchLabel != "" {
		ids := experiment.IDs()
		if *runIDs != "" {
			ids = strings.Split(*runIDs, ",")
		}
		if err := writeBenchJSON(*benchLabel, ids, opts); err != nil {
			fail(err)
		}
		return
	}

	var coll *telemetry.Collector
	var traceFile *os.File
	if *metricsPath != "" || *tracePath != "" || *debugAddr != "" {
		tcfg := telemetry.Config{}
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fail(err)
			}
			traceFile, tcfg.Trace = f, f
		}
		coll = telemetry.New(tcfg)
		opts.Telemetry = coll
	}
	if *debugAddr != "" {
		bound, err := telemetry.ServeDebug(*debugAddr, coll)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "twbench: debug server on http://%s/debug/pprof/\n", bound)
	}
	if *resultCache && opts.Telemetry != nil {
		fmt.Fprintln(os.Stderr, "twbench: note: -result-cache is bypassed while telemetry is on (cache hits simulate nothing, so they emit no events)")
	}

	ids := experiment.IDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(out, "Tapeworm II evaluation reproduction (scale 1/%.0f, %d trials, seed %d)\n\n",
		*scale, *trials, *seed)
	for _, id := range ids {
		id := strings.TrimSpace(id)
		fn, err := experiment.ByID(id)
		if err != nil {
			fail(err)
		}
		coll.SetScope(id)
		start := time.Now()
		table, err := fn(opts)
		if err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		if note := experiment.PhaseNote(opts); note != "" {
			table.Notes = append(table.Notes, note)
		}
		fmt.Fprintln(out, table.Render())
		fmt.Fprintf(out, "(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fail(err)
		}
		if err := coll.WriteMetrics(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if traceFile != nil {
		if err := coll.Err(); err != nil {
			fail(err)
		}
		if err := traceFile.Close(); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "twbench:", err)
	os.Exit(1)
}
