// Command twbench regenerates the paper's evaluation: every table and
// figure of Section 4, printed as aligned text tables.
//
// Usage:
//
//	twbench                         # run the full suite at scale 100
//	twbench -run figure2,table6     # selected experiments
//	twbench -scale 1000 -trials 4   # coarser, faster
//	twbench -parallel 1             # strictly serial execution
//	twbench -list                   # list experiment IDs
//	twbench -o report.txt           # also write the report to a file
//
// Each experiment's independent machine runs execute on a worker pool
// (default GOMAXPROCS workers; -parallel overrides). Results are
// assembled in submission order, so the report is byte-identical at any
// parallelism; only progress-line interleaving differs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tapeworm/internal/experiment"
)

func main() {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		scale   = flag.Float64("scale", 100, "workload scale divisor (100 = standard evaluation)")
		trials  = flag.Int("trials", 16, "trials for variance tables")
		seed     = flag.Uint64("seed", 1994, "master seed")
		frames   = flag.Int("frames", 8192, "physical memory frames")
		parallel = flag.Int("parallel", 0, "worker pool size for independent runs (0 = GOMAXPROCS, 1 = serial)")
		outPath = flag.String("o", "", "also write the report to this file")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		quiet   = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-9s %s\n", id, experiment.Describe(id))
		}
		return
	}

	opts := experiment.Options{
		Scale: *scale, Seed: *seed, Trials: *trials, Frames: *frames,
		Parallelism: *parallel,
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintf(os.Stderr, "  %s\n", line) }
	}

	ids := experiment.IDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(out, "Tapeworm II evaluation reproduction (scale 1/%.0f, %d trials, seed %d)\n\n",
		*scale, *trials, *seed)
	for _, id := range ids {
		fn, err := experiment.ByID(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		table, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintln(out, table.Render())
		fmt.Fprintf(out, "(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
