package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"tapeworm"
	"tapeworm/internal/experiment"
)

// benchVersion identifies the BENCH_<label>.json schema. Bump it when a
// field changes meaning so downstream tooling can refuse mismatches.
const benchVersion = 1

// benchReport is the machine-readable perf trajectory emitted by
// -bench-json: wall-clock per experiment with the fast path on and off,
// plus an isolated hot-loop measurement in simulated instruction fetches
// per second.
type benchReport struct {
	Version     int               `json:"version"`
	Label       string            `json:"label"`
	Scale       float64           `json:"scale"`
	Trials      int               `json:"trials"`
	Seed        uint64            `json:"seed"`
	Parallelism int               `json:"parallelism"`
	Experiments []benchExperiment `json:"experiments"`
	HotLoop     benchHotLoop      `json:"hot_loop"`
}

// benchExperiment times one experiment's full regeneration. Baseline is
// the per-reference path (NoFastPath); the outputs are byte-identical, so
// the ratio is pure execution overhead.
type benchExperiment struct {
	ID              string  `json:"id"`
	FastSeconds     float64 `json:"fast_seconds"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	Speedup         float64 `json:"speedup"`
}

// benchHotLoop isolates the simulation core on one uninstrumented
// workload run; refs counts instruction-fetch references.
type benchHotLoop struct {
	Workload           string  `json:"workload"`
	Instructions       uint64  `json:"instructions"`
	FastSeconds        float64 `json:"fast_seconds"`
	BaselineSeconds    float64 `json:"baseline_seconds"`
	FastRefsPerSec     float64 `json:"fast_refs_per_sec"`
	BaselineRefsPerSec float64 `json:"baseline_refs_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// writeBenchJSON runs every experiment in ids twice (fast path and
// per-reference baseline), times the hot loop, and writes
// BENCH_<label>.json to the current directory.
func writeBenchJSON(label string, ids []string, opts experiment.Options) error {
	rep := benchReport{
		Version: benchVersion, Label: label,
		Scale: opts.Scale, Trials: opts.Trials, Seed: opts.Seed,
		Parallelism: opts.Parallelism,
	}

	timeOne := func(id string, noFast bool) (float64, error) {
		fn, err := experiment.ByID(id)
		if err != nil {
			return 0, err
		}
		o := opts
		o.Progress = nil
		o.Telemetry = nil
		o.NoFastPath = noFast
		start := time.Now()
		if _, err := fn(o); err != nil {
			return 0, fmt.Errorf("%s: %w", id, err)
		}
		return time.Since(start).Seconds(), nil
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fast, err := timeOne(id, false)
		if err != nil {
			return err
		}
		base, err := timeOne(id, true)
		if err != nil {
			return err
		}
		rep.Experiments = append(rep.Experiments, benchExperiment{
			ID: id, FastSeconds: fast, BaselineSeconds: base,
			Speedup: base / fast,
		})
		fmt.Fprintf(os.Stderr, "  bench %-9s fast %6.2fs  baseline %6.2fs  speedup %.2fx\n",
			id, fast, base, base/fast)
	}

	hot, err := benchHot(opts.Seed)
	if err != nil {
		return err
	}
	rep.HotLoop = hot
	fmt.Fprintf(os.Stderr, "  bench hot-loop  fast %6.2fs  baseline %6.2fs  speedup %.2fx  (%.0f refs/s fast)\n",
		hot.FastSeconds, hot.BaselineSeconds, hot.Speedup, hot.FastRefsPerSec)

	path := fmt.Sprintf("BENCH_%s.json", label)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "twbench: wrote %s\n", path)
	return nil
}

// benchHot times one uninstrumented workload run end to end, fast path on
// and off. The runs are identical simulations (the verify-fastpath
// invariant), so instructions are counted once.
func benchHot(seed uint64) (benchHotLoop, error) {
	const workload, scale = "eqntott", 2000
	run := func(noFast bool) (uint64, float64, error) {
		cfg := tapeworm.SystemConfig{Seed: seed, Machine: tapeworm.DECstation(4096)}
		cfg.Machine.NoFastPath = noFast
		sys, err := tapeworm.NewSystem(cfg)
		if err != nil {
			return 0, 0, err
		}
		if _, err := sys.LoadWorkload(workload, scale, seed, false); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if err := sys.Run(0); err != nil {
			return 0, 0, err
		}
		return sys.Monitor().Instructions, time.Since(start).Seconds(), nil
	}
	instr, fast, err := run(false)
	if err != nil {
		return benchHotLoop{}, err
	}
	baseInstr, base, err := run(true)
	if err != nil {
		return benchHotLoop{}, err
	}
	if baseInstr != instr {
		return benchHotLoop{}, fmt.Errorf(
			"bench: fast and baseline runs diverged: %d vs %d instructions", instr, baseInstr)
	}
	return benchHotLoop{
		Workload: workload, Instructions: instr,
		FastSeconds: fast, BaselineSeconds: base,
		FastRefsPerSec:     float64(instr) / fast,
		BaselineRefsPerSec: float64(instr) / base,
		Speedup:            base / fast,
	}, nil
}
