package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tapeworm"
	"tapeworm/internal/experiment"
	"tapeworm/internal/mem"
)

// benchVersion identifies the BENCH_<label>.json schema. Bump it when a
// field changes meaning so downstream tooling can refuse mismatches.
// Version 2 adds the ganged accuracy-sweep suite and allocation counts.
const benchVersion = 2

// benchReport is the machine-readable perf trajectory emitted by
// -bench-json: wall-clock per experiment with the fast path on and off,
// the ganged accuracy-sweep suite against its solo baseline, plus an
// isolated hot-loop measurement in simulated instruction fetches per
// second.
type benchReport struct {
	Version     int               `json:"version"`
	Label       string            `json:"label"`
	Scale       float64           `json:"scale"`
	Trials      int               `json:"trials"`
	Seed        uint64            `json:"seed"`
	Parallelism int               `json:"parallelism"`
	Experiments []benchExperiment `json:"experiments"`
	Gang        benchGangSuite    `json:"gang"`
	HotLoop     benchHotLoop      `json:"hot_loop"`
}

// benchExperiment times one experiment's full regeneration. Baseline is
// the per-reference path (NoFastPath); the outputs are byte-identical, so
// the ratio is pure execution overhead.
type benchExperiment struct {
	ID              string  `json:"id"`
	FastSeconds     float64 `json:"fast_seconds"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	Speedup         float64 `json:"speedup"`
}

// gangSuiteIDs is the ganged accuracy-sweep suite: the experiments whose
// runs are keyed purely on miss counts, so ganging collapses entire
// sweeps (figure3) or per-trial configuration sets (tables 8 and 9) into
// shared executions. Tables 6, 7 and 10 are gang-eligible but excluded
// here: their jobs differ in simulated components or frame counts, so
// grouping degenerates to gangs of one by design and times nothing.
var gangSuiteIDs = []string{"figure3", "table8", "table9"}

// benchGangSuite compares the ganged accuracy sweeps against their solo
// baselines. Outputs are byte-identical (the `make verify-gang` gate), so
// the speedup is pure execution sharing.
type benchGangSuite struct {
	Experiments        []benchGang `json:"experiments"`
	SoloSecondsTotal   float64     `json:"solo_seconds_total"`
	GangedSecondsTotal float64     `json:"ganged_seconds_total"`
	Speedup            float64     `json:"speedup"`
}

// benchGang times one accuracy-sweep experiment ganged and solo, and
// records allocator traffic: Mallocs deltas for the solo run, the ganged
// run, and the ganged run with the backing-array pools disabled (the
// before/after view of per-run allocation pooling), plus how many
// backing-array requests the pooled ganged run served by reuse.
type benchGang struct {
	ID                  string  `json:"id"`
	SoloSeconds         float64 `json:"solo_seconds"`
	GangedSeconds       float64 `json:"ganged_seconds"`
	Speedup             float64 `json:"speedup"`
	SoloMallocs         uint64  `json:"solo_mallocs"`
	GangedMallocs       uint64  `json:"ganged_mallocs"`
	GangedMallocsNoPool uint64  `json:"ganged_mallocs_no_pool"`
	PoolGets            uint64  `json:"pool_gets"`
	PoolReuses          uint64  `json:"pool_reuses"`
}

// benchHotLoop isolates the simulation core on one uninstrumented
// workload run; refs counts instruction-fetch references.
type benchHotLoop struct {
	Workload           string  `json:"workload"`
	Instructions       uint64  `json:"instructions"`
	FastSeconds        float64 `json:"fast_seconds"`
	BaselineSeconds    float64 `json:"baseline_seconds"`
	FastRefsPerSec     float64 `json:"fast_refs_per_sec"`
	BaselineRefsPerSec float64 `json:"baseline_refs_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// writeBenchJSON runs every experiment in ids twice (fast path and
// per-reference baseline), times the hot loop, and writes
// BENCH_<label>.json to the current directory.
func writeBenchJSON(label string, ids []string, opts experiment.Options) error {
	rep := benchReport{
		Version: benchVersion, Label: label,
		Scale: opts.Scale, Trials: opts.Trials, Seed: opts.Seed,
		Parallelism: opts.Parallelism,
	}

	timeOne := func(id string, noFast bool) (float64, error) {
		fn, err := experiment.ByID(id)
		if err != nil {
			return 0, err
		}
		o := opts
		o.Progress = nil
		o.Telemetry = nil
		o.NoFastPath = noFast
		start := time.Now()
		if _, err := fn(o); err != nil {
			return 0, fmt.Errorf("%s: %w", id, err)
		}
		return time.Since(start).Seconds(), nil
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fast, err := timeOne(id, false)
		if err != nil {
			return err
		}
		base, err := timeOne(id, true)
		if err != nil {
			return err
		}
		rep.Experiments = append(rep.Experiments, benchExperiment{
			ID: id, FastSeconds: fast, BaselineSeconds: base,
			Speedup: base / fast,
		})
		fmt.Fprintf(os.Stderr, "  bench %-9s fast %6.2fs  baseline %6.2fs  speedup %.2fx\n",
			id, fast, base, base/fast)
	}

	gangSuite, err := benchGangSuiteRun(opts)
	if err != nil {
		return err
	}
	rep.Gang = gangSuite

	hot, err := benchHot(opts.Seed)
	if err != nil {
		return err
	}
	rep.HotLoop = hot
	fmt.Fprintf(os.Stderr, "  bench hot-loop  fast %6.2fs  baseline %6.2fs  speedup %.2fx  (%.0f refs/s fast)\n",
		hot.FastSeconds, hot.BaselineSeconds, hot.Speedup, hot.FastRefsPerSec)

	path := fmt.Sprintf("BENCH_%s.json", label)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "twbench: wrote %s\n", path)
	return nil
}

// benchGangSuiteRun times the ganged accuracy-sweep suite. Each
// experiment runs three times: solo (NoGang, pools on), ganged with the
// backing-array pools disabled, and ganged with pools on — in that order,
// so the pooled run measures steady-state reuse rather than cold pools.
func benchGangSuiteRun(opts experiment.Options) (benchGangSuite, error) {
	var suite benchGangSuite
	timeRun := func(id string, noGang, pool bool) (seconds float64, mallocs, gets, reuses uint64, err error) {
		fn, err := experiment.ByID(id)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		o := opts
		o.Progress = nil
		o.Telemetry = nil
		o.NoGang = noGang
		mem.SetPoolEnabled(pool)
		defer mem.SetPoolEnabled(true)
		var before, after runtime.MemStats
		g0, r0 := mem.PoolStats()
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := fn(o); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("%s: %w", id, err)
		}
		seconds = time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		g1, r1 := mem.PoolStats()
		return seconds, after.Mallocs - before.Mallocs, g1 - g0, r1 - r0, nil
	}
	for _, id := range gangSuiteIDs {
		solo, soloMallocs, _, _, err := timeRun(id, true, true)
		if err != nil {
			return suite, err
		}
		_, noPoolMallocs, _, _, err := timeRun(id, false, false)
		if err != nil {
			return suite, err
		}
		ganged, gangedMallocs, gets, reuses, err := timeRun(id, false, true)
		if err != nil {
			return suite, err
		}
		suite.Experiments = append(suite.Experiments, benchGang{
			ID: id, SoloSeconds: solo, GangedSeconds: ganged,
			Speedup:     solo / ganged,
			SoloMallocs: soloMallocs, GangedMallocs: gangedMallocs,
			GangedMallocsNoPool: noPoolMallocs,
			PoolGets:            gets, PoolReuses: reuses,
		})
		suite.SoloSecondsTotal += solo
		suite.GangedSecondsTotal += ganged
		fmt.Fprintf(os.Stderr, "  bench %-9s solo %6.2fs  ganged %6.2fs  speedup %.2fx  mallocs %d -> %d (no-pool %d, %d/%d pool reuses)\n",
			id, solo, ganged, solo/ganged, soloMallocs, gangedMallocs, noPoolMallocs, reuses, gets)
	}
	suite.Speedup = suite.SoloSecondsTotal / suite.GangedSecondsTotal
	fmt.Fprintf(os.Stderr, "  bench gang-suite  solo %6.2fs  ganged %6.2fs  speedup %.2fx\n",
		suite.SoloSecondsTotal, suite.GangedSecondsTotal, suite.Speedup)
	return suite, nil
}

// benchHot times one uninstrumented workload run end to end, fast path on
// and off. The runs are identical simulations (the verify-fastpath
// invariant), so instructions are counted once.
func benchHot(seed uint64) (benchHotLoop, error) {
	const workload, scale = "eqntott", 2000
	run := func(noFast bool) (uint64, float64, error) {
		cfg := tapeworm.SystemConfig{Seed: seed, Machine: tapeworm.DECstation(4096)}
		cfg.Machine.NoFastPath = noFast
		sys, err := tapeworm.NewSystem(cfg)
		if err != nil {
			return 0, 0, err
		}
		if _, err := sys.LoadWorkload(workload, scale, seed, false); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if err := sys.Run(0); err != nil {
			return 0, 0, err
		}
		return sys.Monitor().Instructions, time.Since(start).Seconds(), nil
	}
	instr, fast, err := run(false)
	if err != nil {
		return benchHotLoop{}, err
	}
	baseInstr, base, err := run(true)
	if err != nil {
		return benchHotLoop{}, err
	}
	if baseInstr != instr {
		return benchHotLoop{}, fmt.Errorf(
			"bench: fast and baseline runs diverged: %d vs %d instructions", instr, baseInstr)
	}
	return benchHotLoop{
		Workload: workload, Instructions: instr,
		FastSeconds: fast, BaselineSeconds: base,
		FastRefsPerSec:     float64(instr) / fast,
		BaselineRefsPerSec: float64(instr) / base,
		Speedup:            base / fast,
	}, nil
}
