package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"tapeworm"
	"tapeworm/internal/cache"
	"tapeworm/internal/core"
	"tapeworm/internal/experiment"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
	"tapeworm/internal/workload"
)

// benchVersion identifies the BENCH_<label>.json schema. Bump it when a
// field changes meaning so downstream tooling can refuse mismatches.
// Version 2 adds the ganged accuracy-sweep suite and allocation counts.
// Version 3 extends hot_loop to every paper workload (with compiled-path
// timings), adds the gang member-count scaling curve, and reports
// per-experiment backing-array pool statistics.
// Version 4 adds the boot_amortization section (boot vs. checkpoint-fork
// timing, forks-per-image counts) and switches pool statistics from
// process-global deltas to per-run tallies, which stay exact at any
// -parallel.
// Version 5 adds the result_cache section (cold vs. warm sweep through
// the content-addressed result cache) and switches the hot-loop and
// boot-amortization sweep timings to best-of-3 with a GC between runs,
// so single-shot scheduling noise can no longer invert a comparison.
// Version 6 adds the interval_sampling section: the same multi-trial
// gang sweep run exhaustively and through representative-interval
// replay, with the worst extrapolation error alongside the speedup.
const benchVersion = 6

// benchReport is the machine-readable perf trajectory emitted by
// -bench-json: wall-clock per experiment with the fast path on and off,
// the ganged accuracy-sweep suite against its solo baseline, the gang
// speedup as a function of member count, plus per-workload hot-loop
// measurements in simulated instruction fetches per second.
type benchReport struct {
	Version     int               `json:"version"`
	Label       string            `json:"label"`
	Scale       float64           `json:"scale"`
	Trials      int               `json:"trials"`
	Seed        uint64            `json:"seed"`
	Parallelism int               `json:"parallelism"`
	Experiments []benchExperiment `json:"experiments"`
	Gang        benchGangSuite    `json:"gang"`
	GangScaling benchGangScaling  `json:"gang_scaling"`
	HotLoop     []benchHotLoop    `json:"hot_loop"`

	BootAmortization benchBootAmortization       `json:"boot_amortization"`
	ResultCache      benchResultCache            `json:"result_cache"`
	IntervalSampling experiment.IntervalSampling `json:"interval_sampling"`
}

// benchResultCache measures what the content-addressed result cache buys
// a repeated sweep: the same design-space grid runs cold (every point
// simulated, results completed into the cache) and then warm (every
// point served from the cache). Outputs are byte-identical either way
// (the `make verify-resultcache` gate), so the warm speedup is pure
// avoided re-simulation.
type benchResultCache struct {
	Workload    string  `json:"workload"`
	Configs     int     `json:"configs"`
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	WarmSpeedup float64 `json:"warm_speedup"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Joins       uint64  `json:"joins"`
}

// benchBootAmortization measures what checkpointed boot images buy: the
// microbenchmark times a fresh kernel boot against a fork from a captured
// checkpoint (the BenchmarkBootVsFork numbers), and the sweep comparison
// reruns an accuracy sweep with -checkpoint at a setup-dominated
// configuration (near-zero simulated work, ganging off) so the ratio
// measures per-run setup — fresh boots versus forks — rather than
// simulation time. Outputs are byte-identical either way (the
// `make verify-checkpoint` gate), so both speedups are pure setup cost.
type benchBootAmortization struct {
	Frames          int     `json:"frames"`
	BootMicros      float64 `json:"boot_micros"`
	ForkMicros      float64 `json:"fork_micros"`
	ForkSpeedup     float64 `json:"fork_speedup"`
	FreshSeconds    float64 `json:"fresh_seconds"`
	ForkedSeconds   float64 `json:"forked_seconds"`
	SweepSpeedup    float64 `json:"sweep_speedup"`
	Images          uint64  `json:"images"`
	Forks           uint64  `json:"forks"`
	ForksPerImage   float64 `json:"forks_per_image"`
	SweepExperiment string  `json:"sweep_experiment"`
}

// benchExperiment times one experiment's full regeneration. Baseline is
// the per-reference path (NoFastPath); the outputs are byte-identical, so
// the ratio is pure execution overhead. PoolGets/PoolReuses count the
// backing-array pool traffic of the fast run; with pre-warming, reuses
// should track gets from the first boot on.
type benchExperiment struct {
	ID              string  `json:"id"`
	FastSeconds     float64 `json:"fast_seconds"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	Speedup         float64 `json:"speedup"`
	PoolGets        uint64  `json:"pool_gets"`
	PoolReuses      uint64  `json:"pool_reuses"`
}

// gangSuiteIDs is the ganged accuracy-sweep suite: the experiments whose
// runs are keyed purely on miss counts, so ganging collapses entire
// sweeps (figure3) or per-trial configuration sets (tables 8 and 9) into
// shared executions. Tables 6, 7 and 10 are gang-eligible but excluded
// here: their jobs differ in simulated components or frame counts, so
// grouping degenerates to gangs of one by design and times nothing.
var gangSuiteIDs = []string{"figure3", "table8", "table9"}

// benchGangSuite compares the ganged accuracy sweeps against their solo
// baselines. Outputs are byte-identical (the `make verify-gang` gate), so
// the speedup is pure execution sharing.
type benchGangSuite struct {
	Experiments        []benchGang `json:"experiments"`
	SoloSecondsTotal   float64     `json:"solo_seconds_total"`
	GangedSecondsTotal float64     `json:"ganged_seconds_total"`
	Speedup            float64     `json:"speedup"`
}

// benchGang times one accuracy-sweep experiment ganged and solo, and
// records allocator traffic: Mallocs deltas for the solo run, the ganged
// run, and the ganged run with the backing-array pools disabled (the
// before/after view of per-run allocation pooling), plus how many
// backing-array requests the pooled ganged run served by reuse.
type benchGang struct {
	ID                  string  `json:"id"`
	SoloSeconds         float64 `json:"solo_seconds"`
	GangedSeconds       float64 `json:"ganged_seconds"`
	Speedup             float64 `json:"speedup"`
	SoloMallocs         uint64  `json:"solo_mallocs"`
	GangedMallocs       uint64  `json:"ganged_mallocs"`
	GangedMallocsNoPool uint64  `json:"ganged_mallocs_no_pool"`
	PoolGets            uint64  `json:"pool_gets"`
	PoolReuses          uint64  `json:"pool_reuses"`
}

// benchGangScaling is the gang speedup as a function of member count:
// for each point, one execution drives N simulated caches and is timed
// against N gang-of-1 executions of the same configurations. Outputs are
// byte-identical (TestGangDemuxByteIdentityWide), so the ratio is pure
// execution sharing.
type benchGangScaling struct {
	Workload string           `json:"workload"`
	Points   []benchGangPoint `json:"points"`
}

// benchGangPoint is one member count on the scaling curve.
type benchGangPoint struct {
	Members       int     `json:"members"`
	SoloSeconds   float64 `json:"solo_seconds"`
	GangedSeconds float64 `json:"ganged_seconds"`
	Speedup       float64 `json:"speedup"`
}

// benchHotLoop isolates the simulation core on one uninstrumented
// workload run; refs counts instruction-fetch references. Fast is the
// default configuration (batched fast path, compiled replay); interp
// keeps the fast path but drives the interpreted program; baseline is the
// per-reference path. Compile time is excluded: the image cache amortizes
// it across every run of a (spec, seed) pair, which is how sweeps use it.
type benchHotLoop struct {
	Workload           string  `json:"workload"`
	Instructions       uint64  `json:"instructions"`
	FastSeconds        float64 `json:"fast_seconds"`
	InterpSeconds      float64 `json:"interp_seconds"`
	BaselineSeconds    float64 `json:"baseline_seconds"`
	FastRefsPerSec     float64 `json:"fast_refs_per_sec"`
	InterpRefsPerSec   float64 `json:"interp_refs_per_sec"`
	BaselineRefsPerSec float64 `json:"baseline_refs_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// writeBenchJSON runs every experiment in ids twice (fast path and
// per-reference baseline), times the hot loop, and writes
// BENCH_<label>.json to the current directory.
func writeBenchJSON(label string, ids []string, opts experiment.Options) error {
	rep := benchReport{
		Version: benchVersion, Label: label,
		Scale: opts.Scale, Trials: opts.Trials, Seed: opts.Seed,
		Parallelism: opts.Parallelism,
	}

	timeOne := func(id string, noFast bool) (seconds float64, gets, reuses uint64, err error) {
		fn, err := experiment.ByID(id)
		if err != nil {
			return 0, 0, 0, err
		}
		o := opts
		o.Progress = nil
		o.Telemetry = nil
		o.NoFastPath = noFast
		var tally mem.PoolTally // per-run attribution: exact at any -parallel
		o.PoolTally = &tally
		start := time.Now()
		if _, err := fn(o); err != nil {
			return 0, 0, 0, fmt.Errorf("%s: %w", id, err)
		}
		seconds = time.Since(start).Seconds()
		gets, reuses = tally.Counts()
		return seconds, gets, reuses, nil
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fast, gets, reuses, err := timeOne(id, false)
		if err != nil {
			return err
		}
		base, _, _, err := timeOne(id, true)
		if err != nil {
			return err
		}
		rep.Experiments = append(rep.Experiments, benchExperiment{
			ID: id, FastSeconds: fast, BaselineSeconds: base,
			Speedup:  base / fast,
			PoolGets: gets, PoolReuses: reuses,
		})
		fmt.Fprintf(os.Stderr, "  bench %-9s fast %6.2fs  baseline %6.2fs  speedup %.2fx  (%d/%d pool reuses)\n",
			id, fast, base, base/fast, reuses, gets)
	}

	gangSuite, err := benchGangSuiteRun(opts)
	if err != nil {
		return err
	}
	rep.Gang = gangSuite

	scaling, err := benchGangScalingRun(opts.Seed)
	if err != nil {
		return err
	}
	rep.GangScaling = scaling

	amort, err := benchBootAmortizationRun(opts)
	if err != nil {
		return err
	}
	rep.BootAmortization = amort

	rc, err := benchResultCacheRun(opts)
	if err != nil {
		return err
	}
	rep.ResultCache = rc

	iv, err := benchIntervalSamplingRun(opts)
	if err != nil {
		return err
	}
	rep.IntervalSampling = iv

	for _, wl := range workload.Names() {
		hot, err := benchHot(wl, opts.Seed)
		if err != nil {
			return err
		}
		rep.HotLoop = append(rep.HotLoop, hot)
		fmt.Fprintf(os.Stderr, "  bench hot-loop %-10s fast %5.2fs  interp %5.2fs  baseline %5.2fs  speedup %5.2fx  (%.0f refs/s fast)\n",
			wl, hot.FastSeconds, hot.InterpSeconds, hot.BaselineSeconds, hot.Speedup, hot.FastRefsPerSec)
	}

	path := fmt.Sprintf("BENCH_%s.json", label)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "twbench: wrote %s\n", path)
	return nil
}

// benchGangSuiteRun times the ganged accuracy-sweep suite. Each
// experiment runs three times: solo (NoGang, pools on), ganged with the
// backing-array pools disabled, and ganged with pools on — in that order,
// so the pooled run measures steady-state reuse rather than cold pools.
func benchGangSuiteRun(opts experiment.Options) (benchGangSuite, error) {
	var suite benchGangSuite
	timeRun := func(id string, noGang, pool bool) (seconds float64, mallocs, gets, reuses uint64, err error) {
		fn, err := experiment.ByID(id)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		o := opts
		o.Progress = nil
		o.Telemetry = nil
		o.NoGang = noGang
		var tally mem.PoolTally // per-run attribution: exact at any -parallel
		o.PoolTally = &tally
		mem.SetPoolEnabled(pool)
		defer mem.SetPoolEnabled(true)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := fn(o); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("%s: %w", id, err)
		}
		seconds = time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		gets, reuses = tally.Counts()
		return seconds, after.Mallocs - before.Mallocs, gets, reuses, nil
	}
	for _, id := range gangSuiteIDs {
		solo, soloMallocs, _, _, err := timeRun(id, true, true)
		if err != nil {
			return suite, err
		}
		_, noPoolMallocs, _, _, err := timeRun(id, false, false)
		if err != nil {
			return suite, err
		}
		ganged, gangedMallocs, gets, reuses, err := timeRun(id, false, true)
		if err != nil {
			return suite, err
		}
		suite.Experiments = append(suite.Experiments, benchGang{
			ID: id, SoloSeconds: solo, GangedSeconds: ganged,
			Speedup:     solo / ganged,
			SoloMallocs: soloMallocs, GangedMallocs: gangedMallocs,
			GangedMallocsNoPool: noPoolMallocs,
			PoolGets:            gets, PoolReuses: reuses,
		})
		suite.SoloSecondsTotal += solo
		suite.GangedSecondsTotal += ganged
		fmt.Fprintf(os.Stderr, "  bench %-9s solo %6.2fs  ganged %6.2fs  speedup %.2fx  mallocs %d -> %d (no-pool %d, %d/%d pool reuses)\n",
			id, solo, ganged, solo/ganged, soloMallocs, gangedMallocs, noPoolMallocs, reuses, gets)
	}
	suite.Speedup = suite.SoloSecondsTotal / suite.GangedSecondsTotal
	fmt.Fprintf(os.Stderr, "  bench gang-suite  solo %6.2fs  ganged %6.2fs  speedup %.2fx\n",
		suite.SoloSecondsTotal, suite.GangedSecondsTotal, suite.Speedup)
	return suite, nil
}

// bestOf reruns a timed body n times with a GC before each attempt and
// keeps the fastest: at these sub-second durations a single shot is
// noisy enough for scheduling jitter or a collection pause to invert a
// comparison (a compiled run timing slower than the interpreter it
// beats by construction).
func bestOf(n int, f func() (float64, error)) (float64, error) {
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		runtime.GC()
		s, err := f()
		if err != nil {
			return 0, err
		}
		if s < best {
			best = s
		}
	}
	return best, nil
}

// benchHot times one uninstrumented run of the named workload end to end
// in three configurations: fast (batched fast path, compiled replay),
// interp (fast path, interpreted program), and baseline (per-reference
// path). All three are identical simulations (the verify-fastpath and
// verify-compiled invariants), so instructions are counted once. Each
// configuration reports its best of three runs.
func benchHot(wl string, seed uint64) (benchHotLoop, error) {
	const scale = 2000
	run := func(noFast, noCompile bool) (uint64, float64, error) {
		cfg := tapeworm.SystemConfig{Seed: seed, Machine: tapeworm.DECstation(4096)}
		cfg.Machine.NoFastPath = noFast
		sys, err := tapeworm.NewSystem(cfg)
		if err != nil {
			return 0, 0, err
		}
		spec, err := workload.ByName(wl, scale)
		if err != nil {
			return 0, 0, err
		}
		var prog kernel.Program
		if noCompile {
			prog, err = workload.New(spec, seed)
		} else {
			prog, err = workload.NewPlanned(spec, seed)
		}
		if err != nil {
			return 0, 0, err
		}
		sys.SpawnProgram(spec.Name, prog, false, false)
		start := time.Now()
		if err := sys.Run(0); err != nil {
			return 0, 0, err
		}
		return sys.Monitor().Instructions, time.Since(start).Seconds(), nil
	}
	timed := func(noFast, noCompile bool) (instr uint64, seconds float64, err error) {
		seconds, err = bestOf(3, func() (float64, error) {
			in, s, err := run(noFast, noCompile)
			instr = in // deterministic: identical on every attempt
			return s, err
		})
		return instr, seconds, err
	}
	instr, fast, err := timed(false, false)
	if err != nil {
		return benchHotLoop{}, err
	}
	interpInstr, interp, err := timed(false, true)
	if err != nil {
		return benchHotLoop{}, err
	}
	baseInstr, base, err := timed(true, true)
	if err != nil {
		return benchHotLoop{}, err
	}
	if baseInstr != instr || interpInstr != instr {
		return benchHotLoop{}, fmt.Errorf(
			"bench: %s runs diverged: %d/%d/%d instructions", wl, instr, interpInstr, baseInstr)
	}
	return benchHotLoop{
		Workload: wl, Instructions: instr,
		FastSeconds: fast, InterpSeconds: interp, BaselineSeconds: base,
		FastRefsPerSec:     float64(instr) / fast,
		InterpRefsPerSec:   float64(instr) / interp,
		BaselineRefsPerSec: float64(instr) / base,
		Speedup:            base / fast,
	}, nil
}

// benchBootAmortizationRun times boot against checkpoint fork. The
// microbenchmark isolates kernel setup: fresh boots (the pools warm, so
// allocation is already amortized) against forks from one captured
// checkpoint. The sweep comparison reruns an accuracy-sweep experiment
// with checkpointing on, counting the forks each captured image served.
func benchBootAmortizationRun(opts experiment.Options) (benchBootAmortization, error) {
	const sweepID = "figure3"
	// 8192 frames is the evaluation default (and BenchmarkBootVsFork's
	// geometry); the boot-side frame shuffle scales with frames while the
	// fork cost is flat, so the ratio is only meaningful at the frame
	// count the evaluation actually boots.
	out := benchBootAmortization{Frames: 8192, SweepExperiment: sweepID}

	kcfg := kernel.DefaultConfig(tapeworm.DECstation(out.Frames), opts.Seed)
	const iters = 2000
	// Warm the pools so both sides measure setup work, not first-touch
	// allocation.
	for i := 0; i < 8; i++ {
		k := kernel.MustBoot(kcfg)
		k.ReleaseBuffers()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		k := kernel.MustBoot(kcfg)
		k.ReleaseBuffers()
	}
	out.BootMicros = time.Since(start).Seconds() / iters * 1e6

	src := kernel.MustBoot(kcfg)
	cp, err := kernel.Capture(src, "bench")
	src.ReleaseBuffers()
	if err != nil {
		return out, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		k, err := kernel.Fork(cp, kcfg)
		if err != nil {
			return out, err
		}
		k.ReleaseCheckpoint()
	}
	out.ForkMicros = time.Since(start).Seconds() / iters * 1e6
	out.ForkSpeedup = out.BootMicros / out.ForkMicros

	fn, err := experiment.ByID(sweepID)
	if err != nil {
		return out, err
	}
	// The sweep comparison isolates setup cost. At evaluation scale the
	// sweep is simulation-dominated — a few ganged executions spend
	// hundreds of milliseconds simulating against tens of microseconds
	// of boot, so the fresh/forked ratio degenerates to 1.0 and the
	// measurement is pure timing noise (which is exactly how the PR 7
	// ensureOwned copy-on-write regression hid inside it: the forked
	// path's per-write tax and the boot saving were both invisible).
	// Downscaling the simulated work to ~nothing and disabling ganging
	// makes every run pay its own kernel setup, so the ratio measures
	// what the section is named for: fresh boots against forks, plus any
	// residual copy-on-write tax the forked runs carry.
	timeSweep := func(checkpoint bool) (float64, error) {
		o := opts
		o.Progress = nil
		o.Telemetry = nil
		o.Scale = 1e6 // ~zero simulated instructions: setup is the run
		o.Frames = out.Frames
		o.NoGang = true // every run boots (or forks) for itself
		o.Checkpoint = checkpoint
		start := time.Now()
		if _, err := fn(o); err != nil {
			return 0, fmt.Errorf("%s: %w", sweepID, err)
		}
		return time.Since(start).Seconds(), nil
	}
	// Image/fork counts come from the first forked run only: the later
	// attempts fork from the images this run captured.
	img0, fk0, _ := experiment.CheckpointStats()
	runtime.GC()
	if out.ForkedSeconds, err = timeSweep(true); err != nil {
		return out, err
	}
	img1, fk1, _ := experiment.CheckpointStats()
	out.Images, out.Forks = img1-img0, fk1-fk0
	// Fresh and forked attempts alternate so machine drift lands on both
	// sides equally; each side keeps its minimum.
	out.FreshSeconds = math.Inf(1)
	for i := 0; i < 4; i++ {
		f, err := bestOf(1, func() (float64, error) { return timeSweep(false) })
		if err != nil {
			return out, err
		}
		out.FreshSeconds = math.Min(out.FreshSeconds, f)
		k, err := bestOf(1, func() (float64, error) { return timeSweep(true) })
		if err != nil {
			return out, err
		}
		out.ForkedSeconds = math.Min(out.ForkedSeconds, k)
	}
	out.SweepSpeedup = out.FreshSeconds / out.ForkedSeconds
	if out.Images > 0 {
		out.ForksPerImage = float64(out.Forks) / float64(out.Images)
	}
	fmt.Fprintf(os.Stderr, "  bench boot-amortization  boot %.1fµs  fork %.1fµs  speedup %.2fx  (%s: %d forks / %d images)\n",
		out.BootMicros, out.ForkMicros, out.ForkSpeedup, sweepID, out.Forks, out.Images)
	return out, nil
}

// benchResultCacheRun runs the twsweep design-space grid twice through
// the content-addressed result cache: cold (every point simulated and
// completed into the store) and warm (every point served back without
// simulating). The tables must render identically; the warm wall clock
// is table assembly plus store lookups, so the speedup is the cost of
// the avoided simulations.
func benchResultCacheRun(opts experiment.Options) (benchResultCache, error) {
	sc := experiment.SweepConfig{
		Workload: "eqntott",
		Sizes:    []int{1 << 10, 4 << 10, 16 << 10},
		Assocs:   []int{1, 2, 4},
		Lines:    []int{16, 32},
	}
	out := benchResultCache{Workload: sc.Workload, Configs: sc.Points()}
	o := opts
	o.Progress = nil
	o.Telemetry = nil
	o.ResultCache = true
	experiment.ResetResultCache()
	start := time.Now()
	cold, err := experiment.Sweep(o, sc)
	if err != nil {
		return out, err
	}
	out.ColdSeconds = time.Since(start).Seconds()
	start = time.Now()
	warm, err := experiment.Sweep(o, sc)
	if err != nil {
		return out, err
	}
	out.WarmSeconds = time.Since(start).Seconds()
	if cold.Render() != warm.Render() {
		return out, fmt.Errorf("bench: warm result-cache sweep diverged from cold")
	}
	st := experiment.ResultCacheStats()
	out.WarmSpeedup = out.ColdSeconds / out.WarmSeconds
	out.Hits, out.Misses, out.Joins = st.Hits, st.Misses, st.Joins
	fmt.Fprintf(os.Stderr, "  bench result-cache %-9s cold %6.2fs  warm %6.4fs  speedup %.0fx  (%d hits / %d misses)\n",
		sc.Workload, out.ColdSeconds, out.WarmSeconds, out.WarmSpeedup, out.Hits, out.Misses)
	return out, nil
}

// The interval-sampling acceptance gates: representative-interval replay
// must finish the pinned sweep at least 5× faster than exhaustive replay
// while every extrapolated miss ratio stays within two percentage points
// of exact. CI enforces the same bounds on the bench JSON's
// interval_sampling section; `twbench -verify-intervals` (the
// `make verify-intervals` accuracy leg) enforces them locally.
const (
	intervalGateSpeedup = 5.0
	intervalGateError   = 0.02
)

// verifyIntervalGates runs the interval-sampling measurement alone and
// errors unless both gates hold.
func verifyIntervalGates(opts experiment.Options) error {
	iv, err := benchIntervalSamplingRun(opts)
	if err != nil {
		return err
	}
	if iv.Speedup < intervalGateSpeedup {
		return fmt.Errorf("verify-intervals: speedup %.2fx below the %.0fx gate", iv.Speedup, intervalGateSpeedup)
	}
	if iv.MaxMissRatioError > intervalGateError {
		return fmt.Errorf("verify-intervals: max miss-ratio error %.4f above the %.2f gate", iv.MaxMissRatioError, intervalGateError)
	}
	fmt.Printf("verify-intervals: %s speedup %.2fx (gate %.0fx), max miss-ratio error %.4f (gate %.2f)\n",
		iv.Workload, iv.Speedup, intervalGateSpeedup, iv.MaxMissRatioError, intervalGateError)
	return nil
}

// benchIntervalSamplingRun measures what representative-interval replay
// buys a multi-trial cache sweep: the same 35-member gang grid runs
// exhaustively and through phase-detected interval replay, and the
// section records both wall clocks plus the worst extrapolation error.
// The geometry is pinned rather than inherited from the command line so
// `twbench -bench-json <label>` gates one stable measurement:
//
//   - scale 125 / 3 trials makes the sweep long enough that the sampled
//     side's fixed costs (phase analysis, per-trial profiling pass,
//     per-representative forks) amortize the way a real sweep amortizes
//     them, while the one-time analysis is shared across trials via the
//     plan cache;
//   - 128 intervals / k=2 / 3000-instruction warm-up is the evaluation
//     operating point: enough intervals that each representative's
//     weight is well resolved, and enough warm-up that the fork's cold
//     simulated cache converges before the measured window opens (the
//     sweep's small capacity-dominated caches are chosen for exactly
//     that convergence — see MeasureIntervalSampling).
//
// The CI gate requires speedup ≥ 5 and max_miss_ratio_error ≤ 0.02.
func benchIntervalSamplingRun(opts experiment.Options) (experiment.IntervalSampling, error) {
	const wl = "mpeg_play"
	o := opts
	o.Progress = nil
	o.Telemetry = nil
	o.Scale = 125
	o.Trials = 3
	o.PhaseIntervals = 128
	o.PhaseK = 2
	o.PhaseWarmup = 3000
	out, err := experiment.MeasureIntervalSampling(o, wl)
	if err != nil {
		return out, err
	}
	fmt.Fprintf(os.Stderr, "  bench interval-sampling %-9s exhaustive %6.2fs  sampled %6.2fs  speedup %.2fx  (max miss-ratio err %.4f)\n",
		out.Workload, out.ExhaustiveSeconds, out.SampledSeconds, out.Speedup, out.MaxMissRatioError)
	return out, nil
}

// scalingConfigs builds n distinct cache configurations for the gang
// scaling curve, cycling sizes, line widths, associativities and
// indexing so the gang simulates a genuine design-space sweep.
func scalingConfigs(n int) []core.Config {
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		idx := cache.PhysIndexed
		if i%2 == 1 {
			idx = cache.VirtIndexed
		}
		cfgs[i] = core.Config{
			Mode: core.ModeICache,
			Cache: cache.Config{
				Size:     4 << (10 + i%4),
				LineSize: 16 << (i % 2),
				Assoc:    1 << (i % 3),
				Indexing: idx,
			},
			Sampling: core.FullSampling(),
		}
	}
	return cfgs
}

// benchGangScalingRun measures the gang speedup curve: for each member
// count N, one execution driving all N simulators is timed against N
// separate gang-of-1 executions of the same configurations.
func benchGangScalingRun(seed uint64) (benchGangScaling, error) {
	const wl, scale = "eqntott", 2000
	out := benchGangScaling{Workload: wl}
	runOnce := func(cfgs []core.Config) (float64, error) {
		cfg := tapeworm.SystemConfig{Seed: seed, Machine: tapeworm.DECstation(4096)}
		sys, err := tapeworm.NewSystem(cfg)
		if err != nil {
			return 0, err
		}
		if _, err := core.AttachGang(sys.Kernel(), cfgs); err != nil {
			return 0, err
		}
		if _, err := sys.LoadWorkload(wl, scale, seed, true); err != nil {
			return 0, err
		}
		start := time.Now()
		if err := sys.Run(0); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	for _, n := range []int{2, 4, 8, 16, 32} {
		cfgs := scalingConfigs(n)
		ganged, err := runOnce(cfgs)
		if err != nil {
			return out, err
		}
		var solo float64
		for i := range cfgs {
			s, err := runOnce(cfgs[i : i+1])
			if err != nil {
				return out, err
			}
			solo += s
		}
		out.Points = append(out.Points, benchGangPoint{
			Members: n, SoloSeconds: solo, GangedSeconds: ganged,
			Speedup: solo / ganged,
		})
		fmt.Fprintf(os.Stderr, "  bench gang-scaling N=%-2d  solo %6.2fs  ganged %6.2fs  speedup %.2fx\n",
			n, solo, ganged, solo/ganged)
	}
	return out, nil
}
