// Command twcodecount reproduces Table 11 for this repository: the line
// count of the Tapeworm implementation split into machine-dependent kernel
// code, machine-independent kernel code, and machine-independent user
// code. Run it from anywhere inside the repository.
package main

import (
	"fmt"
	"os"

	"tapeworm/internal/experiment"
)

func main() {
	table, err := experiment.Table11(experiment.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, "twcodecount:", err)
		os.Exit(1)
	}
	fmt.Print(table.Render())
}
