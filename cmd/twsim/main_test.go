package main

import (
	"strings"
	"testing"
)

func TestParseSampleValid(t *testing.T) {
	for _, tc := range []struct {
		in       string
		num, den int
	}{
		{"1/1", 1, 1},
		{"1/8", 1, 8},
		{"3/4", 3, 4},
	} {
		num, den, err := parseSample(tc.in)
		if err != nil {
			t.Errorf("parseSample(%q): %v", tc.in, err)
			continue
		}
		if num != tc.num || den != tc.den {
			t.Errorf("parseSample(%q) = %d/%d, want %d/%d", tc.in, num, den, tc.num, tc.den)
		}
	}
}

func TestParseSampleRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"", "1", "1/", "/8", "a/b", "0/0", "0/8", "1/0", "-1/8", "1/-8", "9/8",
	} {
		if _, _, err := parseSample(in); err == nil {
			t.Errorf("parseSample(%q) accepted, want error", in)
		}
	}
}

func TestValidatePhaseFlags(t *testing.T) {
	if err := validatePhaseFlags(0, 0, 0, "decstation", false, 0, 0); err != nil {
		t.Errorf("phase-off defaults rejected: %v", err)
	}
	if err := validatePhaseFlags(64, 4, 3000, "decstation", false, 0, 0); err != nil {
		t.Errorf("valid phase flags rejected: %v", err)
	}
	// Phase sampling off leaves the rest of the flag space alone.
	if err := validatePhaseFlags(0, 0, 0, "486", true, 100, 200); err != nil {
		t.Errorf("phase-off with unrelated flags rejected: %v", err)
	}
	for _, tc := range []struct {
		name                 string
		intervals, k, warmup int
		machine              string
		telemetry            bool
		warmupInstr, measure uint64
		want                 string
	}{
		{"negative intervals", -1, 0, 0, "decstation", false, 0, 0, "-phase-intervals"},
		{"negative k", 8, -2, 0, "decstation", false, 0, 0, "-phase-k"},
		{"negative warmup", 8, 2, -5, "decstation", false, 0, 0, "-phase-warmup"},
		{"k without intervals", 0, 2, 0, "decstation", false, 0, 0, "requires -phase-intervals"},
		{"warmup without intervals", 0, 0, 500, "decstation", false, 0, 0, "requires -phase-intervals"},
		{"zero k with intervals", 8, 0, 0, "decstation", false, 0, 0, "-phase-k of at least 1"},
		{"k exceeds intervals", 4, 5, 0, "decstation", false, 0, 0, "exceeds -phase-intervals"},
		{"wrong machine", 8, 2, 0, "486", false, 0, 0, "-machine decstation"},
		{"telemetry on", 8, 2, 0, "decstation", true, 0, 0, "-metrics"},
		{"explicit warmup window", 8, 2, 0, "decstation", false, 1000, 0, "-warmup"},
		{"explicit measure window", 8, 2, 0, "decstation", false, 0, 5000, "-warmup"},
	} {
		err := validatePhaseFlags(tc.intervals, tc.k, tc.warmup, tc.machine,
			tc.telemetry, tc.warmupInstr, tc.measure)
		if err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateRunFlags(t *testing.T) {
	if err := validateRunFlags(0, 8192, 400); err != nil {
		t.Errorf("default flags rejected: %v", err)
	}
	if err := validateRunFlags(8, 4096, 100); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	for _, tc := range []struct {
		name     string
		parallel int
		frames   int
		scale    float64
		want     string
	}{
		{"negative parallel", -1, 8192, 400, "-parallel"},
		{"zero frames", 0, 0, 400, "-frames"},
		{"negative frames", 0, -4, 400, "-frames"},
		{"frames beyond 32-bit space", 0, 1 << 21, 400, "-frames"},
		{"zero scale", 0, 8192, 0, "-scale"},
		{"negative scale", 0, 8192, -5, "-scale"},
	} {
		err := validateRunFlags(tc.parallel, tc.frames, tc.scale)
		if err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
