// Command twsim runs one Tapeworm simulation: pick a workload, a machine,
// a simulated cache or TLB, sampling, and which components to include,
// then report misses, miss ratios and slowdown.
//
// Examples:
//
//	twsim -workload mpeg_play -size 16K -assoc 1 -line 16
//	twsim -workload sdet -size 4K -kernel -servers
//	twsim -workload ousterhout -mode tlb -tlb-entries 64
//	twsim -workload espresso -size 1K -sample 1/8 -indexing virtual
//	twsim -workload espresso -checkpoint -warmup 100000 -measure 500000
//	twsim -workload sdet -result-cache -result-cache-dir /tmp/rc
//
// The uninstrumented baseline and the instrumented run are independent
// simulations (each boots its own kernel), so by default they execute
// concurrently on the run scheduler; -parallel 1 forces the serial
// order. Either way the reported numbers are identical: each run's
// results depend only on its own seeds.
package main

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tapeworm"
	"tapeworm/internal/core"
	"tapeworm/internal/experiment"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
	"tapeworm/internal/resultcache"
	"tapeworm/internal/sched"
	"tapeworm/internal/telemetry"
	"tapeworm/internal/workload"
)

// simResult is everything the report prints about one run, detached from
// the live system so it can round-trip through the result cache.
type simResult struct {
	Snap    tapeworm.Snapshot
	Seconds float64
	Mech    string
	Stats   tapeworm.SimStats
	Comp    [kernel.NumComponents]uint64
	Est     float64
}

// maxCachedResults bounds the in-process tier; twsim runs at most two
// simulations per invocation, so the store exists for its disk tier.
const maxCachedResults = 16

func encodeSimResult(v any) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(v.(simResult))
	return buf.Bytes(), err
}

func decodeSimResult(b []byte) (any, error) {
	var r simResult
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r)
	return r, err
}

// simDigest is the content address of one twsim run: every input that
// can steer the event stream, plus the physics version so persisted
// results go stale when simulation semantics change.
func simDigest(spec workload.Spec, machine string, frames int,
	seed, pageSeed uint64, checkpoint, instrumented bool,
	cfg tapeworm.SimConfig, simServers, simKernel bool) resultcache.Digest {
	h := resultcache.NewHasher()
	h.WriteString("twsim.run/v1")
	h.WriteUint64(core.PhysicsVersion)
	h.WriteString(machine)
	h.WriteInt(frames)
	spec.HashInto(h)
	h.WriteUint64(seed)
	h.WriteUint64(pageSeed)
	h.WriteBool(checkpoint)
	h.WriteBool(instrumented)
	if instrumented {
		cfg.HashInto(h)
		h.WriteBool(simServers)
		h.WriteBool(simKernel)
	}
	return h.Sum()
}

// cachedSim serves the run from the result cache when one is attached,
// simulating only on a miss; with no store it degenerates to sim().
func cachedSim(store *resultcache.Store, dir string, d resultcache.Digest,
	sim func() (simResult, error)) (simResult, error) {
	if store == nil {
		return sim()
	}
	claim, err := store.Acquire(d, dir)
	if err != nil {
		return simResult{}, err
	}
	defer claim.Release()
	if v, ok := claim.Cached(); ok {
		return v.(simResult), nil
	}
	res, err := sim()
	if err != nil {
		return res, err
	}
	if err := claim.Complete(res); err != nil {
		return res, err
	}
	return res, nil
}

func main() {
	var (
		wl       = flag.String("workload", "mpeg_play", "workload name (see -list)")
		list     = flag.Bool("list", false, "list workloads and exit")
		scale    = flag.Float64("scale", 400, "workload scale divisor")
		seed     = flag.Uint64("seed", 1, "workload/kernel seed")
		pageSeed = flag.Uint64("pageseed", 1, "frame allocator seed")
		machine  = flag.String("machine", "decstation", "machine model: decstation, 486, wwt")
		frames   = flag.Int("frames", 8192, "physical memory frames")

		mode       = flag.String("mode", "icache", "simulation mode: icache, dcache, unified, tlb")
		size       = flag.String("size", "16K", "cache size (e.g. 4K, 64K, 1M)")
		line       = flag.Int("line", 16, "cache line size in bytes")
		assoc      = flag.Int("assoc", 1, "associativity (0 = fully associative)")
		indexing   = flag.String("indexing", "physical", "cache indexing: physical, virtual")
		replace    = flag.String("replace", "lru", "replacement: lru, fifo, random")
		sample     = flag.String("sample", "1/1", "set sampling fraction, e.g. 1/8")
		tlbEntries = flag.Int("tlb-entries", 64, "TLB entries (tlb mode)")
		handler    = flag.String("handler", "optimized", "handler model: optimized, c, hw")

		simServers = flag.Bool("servers", false, "also simulate the X/BSD servers")
		simKernel  = flag.Bool("kernel", false, "also simulate the OS kernel")
		baseline   = flag.Bool("baseline", true, "also run uninstrumented for slowdown")
		parallel   = flag.Int("parallel", 0, "worker pool size for the baseline/instrumented runs (0 = GOMAXPROCS, 1 = serial)")

		checkpoint    = flag.Bool("checkpoint", false, "fork the baseline/instrumented runs from one cached post-boot image (results are byte-identical either way)")
		checkpointDir = flag.String("checkpoint-dir", "", "persist boot images to this directory and reload them across invocations (requires -checkpoint)")

		resultCache    = flag.Bool("result-cache", false, "serve a previously simulated identical run from the content-addressed result cache (results are byte-identical either way)")
		resultCacheDir = flag.String("result-cache-dir", "", "persist results to this directory and reload them across invocations (requires -result-cache)")
		warmup         = flag.Uint64("warmup", 0, "retired instructions of warm-up before misses count")
		measure        = flag.Uint64("measure", 0, "retired instructions in the measurement interval (0 = to end of run)")

		phaseIntervals = flag.Int("phase-intervals", 0, "slice the workload into this many intervals and simulate one representative per phase (0 = exhaustive; results are extrapolated and error-bound-gated, not exact)")
		phaseK         = flag.Int("phase-k", 0, "number of behavioral phases (k-means clusters); requires -phase-intervals")
		phaseWarmup    = flag.Int("phase-warmup", 0, "instructions of simulator warm-up replayed ahead of each representative window; requires -phase-intervals")

		metricsPath = flag.String("metrics", "", "write a JSON metrics report to this file")
		tracePath   = flag.String("trace", "", "write a JSONL trap-event trace to this file")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		for _, s := range tapeworm.Workloads(*scale) {
			fmt.Printf("%-11s %s\n", s.Name, s.Description)
		}
		return
	}

	check(validateRunFlags(*parallel, *frames, *scale))
	check(validateCheckpointFlags(*checkpoint, *checkpointDir))
	check(validateResultCacheFlags(*resultCache, *resultCacheDir))
	check(validatePhaseFlags(*phaseIntervals, *phaseK, *phaseWarmup, *machine,
		*metricsPath != "" || *tracePath != "" || *debugAddr != "", *warmup, *measure))
	cfg, err := simConfig(*mode, *size, *line, *assoc, *indexing, *replace,
		*sample, *tlbEntries, *handler)
	check(err)
	cfg.Window = tapeworm.Window{WarmupInstr: *warmup, MeasureInstr: *measure}
	check(cfg.Window.Validate())

	var coll *telemetry.Collector
	var traceFile *os.File
	if *metricsPath != "" || *tracePath != "" || *debugAddr != "" {
		tcfg := telemetry.Config{}
		if *tracePath != "" {
			traceFile, err = os.Create(*tracePath)
			check(err)
			tcfg.Trace = traceFile
		}
		coll = telemetry.New(tcfg)
		coll.SetScope("twsim")
	}
	if *debugAddr != "" {
		bound, err := telemetry.ServeDebug(*debugAddr, coll)
		check(err)
		fmt.Fprintf(os.Stderr, "twsim: debug server on http://%s/debug/pprof/\n", bound)
	}

	var mc tapeworm.MachineConfig
	switch *machine {
	case "decstation":
		mc = tapeworm.DECstation(*frames)
	case "486":
		mc = tapeworm.Gateway486(*frames)
	case "wwt":
		mc = tapeworm.WWTNode(*frames)
	default:
		check(fmt.Errorf("unknown machine %q", *machine))
	}

	// Jobs return plain result values — not live systems — so a cached
	// run can print exactly what a fresh simulation would without ever
	// booting a machine.
	var store *resultcache.Store
	if *resultCache {
		if coll != nil {
			fmt.Fprintln(os.Stderr, "twsim: note: -result-cache is bypassed while telemetry is on (cache hits simulate nothing, so they emit no events)")
		} else {
			store = resultcache.New(maxCachedResults, encodeSimResult, decodeSimResult)
		}
	}
	spec, err := workload.ByName(*wl, *scale)
	check(err)

	// The baseline and instrumented simulations share nothing — each
	// boots a private kernel and machine — so run them as one scheduler
	// batch; index 0 is the baseline, index 1 the instrumented system.
	var jobs []sched.Job[simResult]
	var tels []*telemetry.Run
	if *baseline {
		tels = append(tels, nil)
		i := len(tels) - 1
		d := simDigest(spec, mc.Name, *frames, *seed, *pageSeed, *checkpoint,
			false, cfg, false, false)
		jobs = append(jobs, func() (simResult, error) {
			return cachedSim(store, *resultCacheDir, d, func() (simResult, error) {
				tel := coll.StartRun("baseline")
				tels[i] = tel
				sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{
					Machine: mc, Seed: *seed, PageSeed: *pageSeed, Telemetry: tel,
					Checkpoint: *checkpoint, CheckpointDir: *checkpointDir})
				if err != nil {
					return simResult{}, err
				}
				if _, err := sys.LoadWorkload(*wl, *scale, *seed, false); err != nil {
					return simResult{}, err
				}
				err = sys.Run(0)
				sys.Kernel().ReportTelemetry()
				return simResult{Snap: sys.Monitor()}, err
			})
		})
	}
	// Interval replay lives in the experiment layer; with -phase-intervals
	// set, the instrumented run delegates to it (RunSingle) instead of
	// simulating exhaustively here. The baseline stays a full
	// uninstrumented run — it is the slowdown denominator, and it costs no
	// more than the interval path's own profiling pass.
	var phaseOpts experiment.Options
	if *phaseIntervals > 0 {
		phaseOpts = experiment.Options{
			Scale: *scale, Seed: *seed, Trials: 1, Frames: *frames,
			Checkpoint: *checkpoint, CheckpointDir: *checkpointDir,
			ResultCache: store != nil, ResultCacheDir: *resultCacheDir,
			PhaseIntervals: *phaseIntervals, PhaseK: *phaseK, PhaseWarmup: *phaseWarmup,
		}
		check(phaseOpts.Validate())
		tels = append(tels, nil)
		jobs = append(jobs, func() (simResult, error) {
			sr, err := experiment.RunSingle(phaseOpts, *wl, *pageSeed, cfg, *simServers, *simKernel)
			if err != nil {
				return simResult{}, err
			}
			return simResult{Snap: sr.Snap, Seconds: sr.Seconds, Mech: sr.Mech,
				Stats: sr.Stats, Comp: sr.Comp, Est: sr.Est}, nil
		})
	} else {
		jobs = append(jobs, instrumentedJob(&tels, coll, store, spec, mc, cfg,
			*wl, *scale, *seed, *pageSeed, *frames, *checkpoint, *checkpointDir,
			*resultCacheDir, *simServers, *simKernel))
	}
	outs, err := sched.Run(*parallel, jobs, nil)
	check(err)
	// Commit in submission order so the metrics report and trace stream
	// are deterministic at any -parallel value.
	for _, tel := range tels {
		coll.Commit(tel)
	}

	var normal tapeworm.Snapshot
	if *baseline {
		normal = outs[0].Snap
	}
	res := outs[len(outs)-1]
	snap, st := res.Snap, res.Stats
	fmt.Printf("workload:   %s (scale 1/%.0f) on %s\n", *wl, *scale, mc.Name)
	fmt.Printf("mechanism:  %s\n", res.Mech)
	fmt.Printf("instrs:     %d (%.3f simulated seconds)\n", snap.Instructions, res.Seconds)
	fmt.Printf("misses:     %d counted", st.Misses)
	if res.Est != float64(st.Misses) {
		fmt.Printf(", %.0f estimated (%s sampling)", res.Est, cfg.Sampling)
	}
	fmt.Println()
	fmt.Printf("            user %d / servers %d / kernel %d\n",
		res.Comp[kernel.CompUser], res.Comp[kernel.CompServer], res.Comp[kernel.CompKernel])
	fmt.Printf("miss ratio: %.4f per instruction\n",
		float64(st.Misses)/float64(snap.Instructions))
	fmt.Printf("overhead:   %d handler cycles, %d setup cycles\n",
		st.HandlerCycles, st.SetupCycles)
	if *baseline {
		fmt.Printf("slowdown:   %.2fx over uninstrumented run\n",
			tapeworm.Slowdown(snap, normal))
	}
	if note := experiment.PhaseNote(phaseOpts); note != "" {
		fmt.Printf("note:       %s\n", note)
	}

	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		check(err)
		check(coll.WriteMetrics(f))
		check(f.Close())
	}
	if traceFile != nil {
		check(coll.Err())
		check(traceFile.Close())
	}
}

// instrumentedJob builds the exhaustive instrumented run: a fresh
// system, the simulator attached, the full workload executed. It
// registers a telemetry slot in tels and fills it when the job runs.
func instrumentedJob(tels *[]*telemetry.Run, coll *telemetry.Collector,
	store *resultcache.Store, spec workload.Spec, mc tapeworm.MachineConfig,
	cfg tapeworm.SimConfig, wl string, scale float64, seed, pageSeed uint64,
	frames int, checkpoint bool, checkpointDir, resultCacheDir string,
	simServers, simKernel bool) sched.Job[simResult] {
	*tels = append(*tels, nil)
	instIdx := len(*tels) - 1
	instDigest := simDigest(spec, mc.Name, frames, seed, pageSeed, checkpoint,
		true, cfg, simServers, simKernel)
	return func() (simResult, error) {
		return cachedSim(store, resultCacheDir, instDigest, func() (simResult, error) {
			tel := coll.StartRun("instrumented")
			(*tels)[instIdx] = tel
			sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{
				Machine: mc, Seed: seed, PageSeed: pageSeed, Telemetry: tel,
				Checkpoint: checkpoint, CheckpointDir: checkpointDir})
			if err != nil {
				return simResult{}, err
			}
			tw, err := sys.AttachTapeworm(cfg)
			if err != nil {
				return simResult{}, err
			}
			if _, err := sys.LoadWorkload(wl, scale, seed, true); err != nil {
				return simResult{}, err
			}
			if simServers {
				for _, kind := range []kernel.ServerKind{kernel.BSDServer, kernel.XServer} {
					if t := sys.Kernel().Server(kind); t != nil {
						if err := tw.Attributes(t.ID, true, false); err != nil {
							return simResult{}, err
						}
					}
				}
			}
			if simKernel {
				if err := tw.Attributes(mem.KernelTask, true, false); err != nil {
					return simResult{}, err
				}
			}
			err = sys.Run(0)
			sys.Kernel().ReportTelemetry()
			tw.ReportTelemetry()
			return simResult{
				Snap:    sys.Monitor(),
				Seconds: sys.Seconds(),
				Mech:    tw.MechanismName(),
				Stats:   tw.Stats(),
				Comp:    tw.MissesByComponent(),
				Est:     tw.EstimatedMisses(),
			}, err
		})
	}
}

// validatePhaseFlags rejects -phase-* combinations up front, mirroring
// the other flag validators: boundary errors (negative values, a zero
// phase count, more phases than intervals) and combinations the interval
// engine does not serve (non-DECstation machines, telemetry's per-trap
// event stream, an explicit -warmup/-measure window, which interval
// replay would silently override with each representative's own window).
func validatePhaseFlags(intervals, k, warmup int, machine string,
	telemetry bool, warmupInstr, measureInstr uint64) error {
	if intervals < 0 {
		return fmt.Errorf("-phase-intervals must be non-negative, got %d", intervals)
	}
	if k < 0 {
		return fmt.Errorf("-phase-k must be non-negative, got %d", k)
	}
	if warmup < 0 {
		return fmt.Errorf("-phase-warmup must be non-negative, got %d", warmup)
	}
	if intervals == 0 {
		if k != 0 {
			return fmt.Errorf("-phase-k %d requires -phase-intervals", k)
		}
		if warmup != 0 {
			return fmt.Errorf("-phase-warmup %d requires -phase-intervals", warmup)
		}
		return nil
	}
	if k < 1 {
		return fmt.Errorf("-phase-intervals %d requires -phase-k of at least 1", intervals)
	}
	if k > intervals {
		return fmt.Errorf("-phase-k %d exceeds -phase-intervals %d", k, intervals)
	}
	if machine != "decstation" {
		return fmt.Errorf("-phase-intervals supports only -machine decstation (the experiment layer's machine model), got %q", machine)
	}
	if telemetry {
		return fmt.Errorf("-phase-intervals is incompatible with -metrics/-trace/-debug-addr: interval replay simulates only representative windows, so it cannot emit the full per-trap event stream")
	}
	if warmupInstr != 0 || measureInstr != 0 {
		return fmt.Errorf("-phase-intervals replaces the measurement window per representative; drop -warmup/-measure (use -phase-warmup)")
	}
	return nil
}

// validateRunFlags rejects flag values that would otherwise panic deep
// inside a run or be silently reinterpreted (negative -parallel means
// GOMAXPROCS to the scheduler).
func validateRunFlags(parallel, frames int, scale float64) error {
	if parallel < 0 {
		return fmt.Errorf("-parallel must be non-negative, got %d", parallel)
	}
	if err := mem.CheckPhysSize(frames, 4096); err != nil {
		return fmt.Errorf("-frames invalid: %w", err)
	}
	if !(scale > 0) {
		return fmt.Errorf("-scale must be positive, got %v", scale)
	}
	return nil
}

// validateCheckpointFlags rejects checkpoint flag combinations that would
// otherwise fail deep inside the first run (or worse, silently boot
// fresh): a directory without the feature enabled, a blank path, or a
// path that exists but is not a directory.
func validateCheckpointFlags(checkpoint bool, dir string) error {
	if dir == "" {
		return nil
	}
	if !checkpoint {
		return fmt.Errorf("-checkpoint-dir %q requires -checkpoint", dir)
	}
	if strings.TrimSpace(dir) == "" {
		return fmt.Errorf("-checkpoint-dir must not be blank")
	}
	if st, err := os.Stat(dir); err == nil && !st.IsDir() {
		return fmt.Errorf("-checkpoint-dir %q is not a directory", dir)
	}
	return nil
}

// validateResultCacheFlags mirrors validateCheckpointFlags for the
// result cache: a persist directory without the feature enabled, a blank
// path, or a path that exists but is not a directory all fail up front.
func validateResultCacheFlags(resultCache bool, dir string) error {
	if dir == "" {
		return nil
	}
	if !resultCache {
		return fmt.Errorf("-result-cache-dir %q requires -result-cache", dir)
	}
	if strings.TrimSpace(dir) == "" {
		return fmt.Errorf("-result-cache-dir must not be blank")
	}
	if st, err := os.Stat(dir); err == nil && !st.IsDir() {
		return fmt.Errorf("-result-cache-dir %q is not a directory", dir)
	}
	return nil
}

func simConfig(mode, size string, line, assoc int, indexing, replace,
	sample string, tlbEntries int, handler string) (tapeworm.SimConfig, error) {
	var cfg tapeworm.SimConfig
	switch mode {
	case "icache":
		cfg.Mode = tapeworm.ModeICache
	case "dcache":
		cfg.Mode = tapeworm.ModeDCache
	case "unified":
		cfg.Mode = tapeworm.ModeUnified
	case "tlb":
		cfg.Mode = tapeworm.ModeTLB
	default:
		return cfg, fmt.Errorf("unknown mode %q", mode)
	}
	switch handler {
	case "optimized":
		cfg.Handler = tapeworm.HandlerOptimized
	case "c":
		cfg.Handler = tapeworm.HandlerOriginalC
	case "hw":
		cfg.Handler = tapeworm.HandlerHardwareAssist
	default:
		return cfg, fmt.Errorf("unknown handler model %q", handler)
	}

	bytes, err := parseSize(size)
	if err != nil {
		return cfg, err
	}
	var repl = tapeworm.LRU
	switch replace {
	case "lru":
	case "fifo":
		repl = tapeworm.FIFO
	case "random":
		repl = tapeworm.Random
	default:
		return cfg, fmt.Errorf("unknown replacement %q", replace)
	}
	idx := tapeworm.PhysIndexed
	switch indexing {
	case "physical":
	case "virtual":
		idx = tapeworm.VirtIndexed
	default:
		return cfg, fmt.Errorf("unknown indexing %q", indexing)
	}

	if cfg.Mode == tapeworm.ModeTLB {
		cfg.TLB = tapeworm.TLBConfig{Entries: tlbEntries, PageSize: 4096, Replace: repl}
	} else {
		cfg.Cache = tapeworm.CacheConfig{
			Size: bytes, LineSize: line, Assoc: assoc, Indexing: idx, Replace: repl,
		}
	}

	num, den, err := parseSample(sample)
	if err != nil {
		return cfg, err
	}
	cfg.Sampling = tapeworm.Sampling{Num: num, Den: den}
	return cfg, nil
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func parseSample(s string) (num, den int, err error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad sampling %q (want num/den)", s)
	}
	num, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad sampling %q", s)
	}
	den, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad sampling %q", s)
	}
	if num < 1 || den < 1 {
		return 0, 0, fmt.Errorf("bad sampling %q: numerator and denominator must be at least 1", s)
	}
	if num > den {
		return 0, 0, fmt.Errorf("bad sampling %q: fraction exceeds 1", s)
	}
	return num, den, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "twsim:", err)
		os.Exit(1)
	}
}
