// Command twsim runs one Tapeworm simulation: pick a workload, a machine,
// a simulated cache or TLB, sampling, and which components to include,
// then report misses, miss ratios and slowdown.
//
// Examples:
//
//	twsim -workload mpeg_play -size 16K -assoc 1 -line 16
//	twsim -workload sdet -size 4K -kernel -servers
//	twsim -workload ousterhout -mode tlb -tlb-entries 64
//	twsim -workload espresso -size 1K -sample 1/8 -indexing virtual
//	twsim -workload espresso -checkpoint -warmup 100000 -measure 500000
//
// The uninstrumented baseline and the instrumented run are independent
// simulations (each boots its own kernel), so by default they execute
// concurrently on the run scheduler; -parallel 1 forces the serial
// order. Either way the reported numbers are identical: each run's
// results depend only on its own seeds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tapeworm"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
	"tapeworm/internal/sched"
	"tapeworm/internal/telemetry"
)

func main() {
	var (
		wl       = flag.String("workload", "mpeg_play", "workload name (see -list)")
		list     = flag.Bool("list", false, "list workloads and exit")
		scale    = flag.Float64("scale", 400, "workload scale divisor")
		seed     = flag.Uint64("seed", 1, "workload/kernel seed")
		pageSeed = flag.Uint64("pageseed", 1, "frame allocator seed")
		machine  = flag.String("machine", "decstation", "machine model: decstation, 486, wwt")
		frames   = flag.Int("frames", 8192, "physical memory frames")

		mode       = flag.String("mode", "icache", "simulation mode: icache, dcache, unified, tlb")
		size       = flag.String("size", "16K", "cache size (e.g. 4K, 64K, 1M)")
		line       = flag.Int("line", 16, "cache line size in bytes")
		assoc      = flag.Int("assoc", 1, "associativity (0 = fully associative)")
		indexing   = flag.String("indexing", "physical", "cache indexing: physical, virtual")
		replace    = flag.String("replace", "lru", "replacement: lru, fifo, random")
		sample     = flag.String("sample", "1/1", "set sampling fraction, e.g. 1/8")
		tlbEntries = flag.Int("tlb-entries", 64, "TLB entries (tlb mode)")
		handler    = flag.String("handler", "optimized", "handler model: optimized, c, hw")

		simServers = flag.Bool("servers", false, "also simulate the X/BSD servers")
		simKernel  = flag.Bool("kernel", false, "also simulate the OS kernel")
		baseline   = flag.Bool("baseline", true, "also run uninstrumented for slowdown")
		parallel   = flag.Int("parallel", 0, "worker pool size for the baseline/instrumented runs (0 = GOMAXPROCS, 1 = serial)")

		checkpoint    = flag.Bool("checkpoint", false, "fork the baseline/instrumented runs from one cached post-boot image (results are byte-identical either way)")
		checkpointDir = flag.String("checkpoint-dir", "", "persist boot images to this directory and reload them across invocations (requires -checkpoint)")
		warmup        = flag.Uint64("warmup", 0, "retired instructions of warm-up before misses count")
		measure       = flag.Uint64("measure", 0, "retired instructions in the measurement interval (0 = to end of run)")

		metricsPath = flag.String("metrics", "", "write a JSON metrics report to this file")
		tracePath   = flag.String("trace", "", "write a JSONL trap-event trace to this file")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		for _, s := range tapeworm.Workloads(*scale) {
			fmt.Printf("%-11s %s\n", s.Name, s.Description)
		}
		return
	}

	check(validateRunFlags(*parallel, *frames, *scale))
	check(validateCheckpointFlags(*checkpoint, *checkpointDir))
	cfg, err := simConfig(*mode, *size, *line, *assoc, *indexing, *replace,
		*sample, *tlbEntries, *handler)
	check(err)
	cfg.Window = tapeworm.Window{WarmupInstr: *warmup, MeasureInstr: *measure}
	check(cfg.Window.Validate())

	var coll *telemetry.Collector
	var traceFile *os.File
	if *metricsPath != "" || *tracePath != "" || *debugAddr != "" {
		tcfg := telemetry.Config{}
		if *tracePath != "" {
			traceFile, err = os.Create(*tracePath)
			check(err)
			tcfg.Trace = traceFile
		}
		coll = telemetry.New(tcfg)
		coll.SetScope("twsim")
	}
	if *debugAddr != "" {
		bound, err := telemetry.ServeDebug(*debugAddr, coll)
		check(err)
		fmt.Fprintf(os.Stderr, "twsim: debug server on http://%s/debug/pprof/\n", bound)
	}

	var mc tapeworm.MachineConfig
	switch *machine {
	case "decstation":
		mc = tapeworm.DECstation(*frames)
	case "486":
		mc = tapeworm.Gateway486(*frames)
	case "wwt":
		mc = tapeworm.WWTNode(*frames)
	default:
		check(fmt.Errorf("unknown machine %q", *machine))
	}

	// The baseline and instrumented simulations share nothing — each
	// boots a private kernel and machine — so run them as one scheduler
	// batch; index 0 is the baseline, index 1 the instrumented system.
	type simOut struct {
		sys *tapeworm.System
		tw  *tapeworm.Simulator
	}
	var jobs []sched.Job[simOut]
	var tels []*telemetry.Run
	if *baseline {
		tels = append(tels, nil)
		i := len(tels) - 1
		jobs = append(jobs, func() (simOut, error) {
			tel := coll.StartRun("baseline")
			tels[i] = tel
			sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{
				Machine: mc, Seed: *seed, PageSeed: *pageSeed, Telemetry: tel,
				Checkpoint: *checkpoint, CheckpointDir: *checkpointDir})
			if err != nil {
				return simOut{}, err
			}
			if _, err := sys.LoadWorkload(*wl, *scale, *seed, false); err != nil {
				return simOut{}, err
			}
			err = sys.Run(0)
			sys.Kernel().ReportTelemetry()
			return simOut{sys: sys}, err
		})
	}
	tels = append(tels, nil)
	instIdx := len(tels) - 1
	jobs = append(jobs, func() (simOut, error) {
		tel := coll.StartRun("instrumented")
		tels[instIdx] = tel
		sys, err := tapeworm.NewSystem(tapeworm.SystemConfig{
			Machine: mc, Seed: *seed, PageSeed: *pageSeed, Telemetry: tel,
			Checkpoint: *checkpoint, CheckpointDir: *checkpointDir})
		if err != nil {
			return simOut{}, err
		}
		tw, err := sys.AttachTapeworm(cfg)
		if err != nil {
			return simOut{}, err
		}
		if _, err := sys.LoadWorkload(*wl, *scale, *seed, true); err != nil {
			return simOut{}, err
		}
		if *simServers {
			for _, kind := range []kernel.ServerKind{kernel.BSDServer, kernel.XServer} {
				if t := sys.Kernel().Server(kind); t != nil {
					if err := tw.Attributes(t.ID, true, false); err != nil {
						return simOut{}, err
					}
				}
			}
		}
		if *simKernel {
			if err := tw.Attributes(mem.KernelTask, true, false); err != nil {
				return simOut{}, err
			}
		}
		err = sys.Run(0)
		sys.Kernel().ReportTelemetry()
		tw.ReportTelemetry()
		return simOut{sys: sys, tw: tw}, err
	})
	outs, err := sched.Run(*parallel, jobs, nil)
	check(err)
	// Commit in submission order so the metrics report and trace stream
	// are deterministic at any -parallel value.
	for _, tel := range tels {
		coll.Commit(tel)
	}

	var normal tapeworm.Snapshot
	if *baseline {
		normal = outs[0].sys.Monitor()
	}
	sys, tw := outs[len(outs)-1].sys, outs[len(outs)-1].tw
	snap := sys.Monitor()
	st := tw.Stats()
	fmt.Printf("workload:   %s (scale 1/%.0f) on %s\n", *wl, *scale, mc.Name)
	fmt.Printf("mechanism:  %s\n", tw.MechanismName())
	fmt.Printf("instrs:     %d (%.3f simulated seconds)\n", snap.Instructions, sys.Seconds())
	fmt.Printf("misses:     %d counted", st.Misses)
	if tw.EstimatedMisses() != float64(st.Misses) {
		fmt.Printf(", %.0f estimated (%s sampling)", tw.EstimatedMisses(), cfg.Sampling)
	}
	fmt.Println()
	comp := tw.MissesByComponent()
	fmt.Printf("            user %d / servers %d / kernel %d\n",
		comp[kernel.CompUser], comp[kernel.CompServer], comp[kernel.CompKernel])
	fmt.Printf("miss ratio: %.4f per instruction\n",
		float64(st.Misses)/float64(snap.Instructions))
	fmt.Printf("overhead:   %d handler cycles, %d setup cycles\n",
		st.HandlerCycles, st.SetupCycles)
	if *baseline {
		fmt.Printf("slowdown:   %.2fx over uninstrumented run\n",
			tapeworm.Slowdown(snap, normal))
	}

	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		check(err)
		check(coll.WriteMetrics(f))
		check(f.Close())
	}
	if traceFile != nil {
		check(coll.Err())
		check(traceFile.Close())
	}
}

// validateRunFlags rejects flag values that would otherwise panic deep
// inside a run or be silently reinterpreted (negative -parallel means
// GOMAXPROCS to the scheduler).
func validateRunFlags(parallel, frames int, scale float64) error {
	if parallel < 0 {
		return fmt.Errorf("-parallel must be non-negative, got %d", parallel)
	}
	if err := mem.CheckPhysSize(frames, 4096); err != nil {
		return fmt.Errorf("-frames invalid: %w", err)
	}
	if !(scale > 0) {
		return fmt.Errorf("-scale must be positive, got %v", scale)
	}
	return nil
}

// validateCheckpointFlags rejects checkpoint flag combinations that would
// otherwise fail deep inside the first run (or worse, silently boot
// fresh): a directory without the feature enabled, a blank path, or a
// path that exists but is not a directory.
func validateCheckpointFlags(checkpoint bool, dir string) error {
	if dir == "" {
		return nil
	}
	if !checkpoint {
		return fmt.Errorf("-checkpoint-dir %q requires -checkpoint", dir)
	}
	if strings.TrimSpace(dir) == "" {
		return fmt.Errorf("-checkpoint-dir must not be blank")
	}
	if st, err := os.Stat(dir); err == nil && !st.IsDir() {
		return fmt.Errorf("-checkpoint-dir %q is not a directory", dir)
	}
	return nil
}

func simConfig(mode, size string, line, assoc int, indexing, replace,
	sample string, tlbEntries int, handler string) (tapeworm.SimConfig, error) {
	var cfg tapeworm.SimConfig
	switch mode {
	case "icache":
		cfg.Mode = tapeworm.ModeICache
	case "dcache":
		cfg.Mode = tapeworm.ModeDCache
	case "unified":
		cfg.Mode = tapeworm.ModeUnified
	case "tlb":
		cfg.Mode = tapeworm.ModeTLB
	default:
		return cfg, fmt.Errorf("unknown mode %q", mode)
	}
	switch handler {
	case "optimized":
		cfg.Handler = tapeworm.HandlerOptimized
	case "c":
		cfg.Handler = tapeworm.HandlerOriginalC
	case "hw":
		cfg.Handler = tapeworm.HandlerHardwareAssist
	default:
		return cfg, fmt.Errorf("unknown handler model %q", handler)
	}

	bytes, err := parseSize(size)
	if err != nil {
		return cfg, err
	}
	var repl = tapeworm.LRU
	switch replace {
	case "lru":
	case "fifo":
		repl = tapeworm.FIFO
	case "random":
		repl = tapeworm.Random
	default:
		return cfg, fmt.Errorf("unknown replacement %q", replace)
	}
	idx := tapeworm.PhysIndexed
	switch indexing {
	case "physical":
	case "virtual":
		idx = tapeworm.VirtIndexed
	default:
		return cfg, fmt.Errorf("unknown indexing %q", indexing)
	}

	if cfg.Mode == tapeworm.ModeTLB {
		cfg.TLB = tapeworm.TLBConfig{Entries: tlbEntries, PageSize: 4096, Replace: repl}
	} else {
		cfg.Cache = tapeworm.CacheConfig{
			Size: bytes, LineSize: line, Assoc: assoc, Indexing: idx, Replace: repl,
		}
	}

	num, den, err := parseSample(sample)
	if err != nil {
		return cfg, err
	}
	cfg.Sampling = tapeworm.Sampling{Num: num, Den: den}
	return cfg, nil
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func parseSample(s string) (num, den int, err error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad sampling %q (want num/den)", s)
	}
	num, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad sampling %q", s)
	}
	den, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad sampling %q", s)
	}
	if num < 1 || den < 1 {
		return 0, 0, fmt.Errorf("bad sampling %q: numerator and denominator must be at least 1", s)
	}
	if num > den {
		return 0, 0, fmt.Errorf("bad sampling %q: fraction exceeds 1", s)
	}
	return num, den, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "twsim:", err)
		os.Exit(1)
	}
}
