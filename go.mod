module tapeworm

go 1.24
