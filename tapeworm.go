package tapeworm

import (
	"fmt"

	"tapeworm/internal/cache"
	"tapeworm/internal/cache2000"
	"tapeworm/internal/core"
	"tapeworm/internal/experiment"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/monster"
	"tapeworm/internal/pixie"
	"tapeworm/internal/telemetry"
	"tapeworm/internal/trace"
	"tapeworm/internal/workload"
)

// Re-exported types: the façade hands out the internal packages' types
// directly so that the full API surface (documented on the internal
// packages) is reachable from the root import.
type (
	// MachineConfig describes the simulated host machine.
	MachineConfig = mach.Config
	// SimConfig configures a Tapeworm simulation (mode, cache/TLB
	// geometry, sampling, handler cost model).
	SimConfig = core.Config
	// Simulator is an attached Tapeworm instance.
	Simulator = core.Tapeworm
	// SimStats aggregates a simulation's counters.
	SimStats = core.Stats
	// CacheConfig describes a simulated cache geometry.
	CacheConfig = cache.Config
	// TLBConfig describes a simulated TLB geometry.
	TLBConfig = cache.TLBConfig
	// Sampling selects the simulated subset of cache sets.
	Sampling = core.Sampling
	// Window bounds the measurement interval (warm-up/measure, in
	// retired instructions). Composes with Sampling; zero measures all.
	Window = core.Window
	// WorkloadSpec parameterizes a synthetic workload.
	WorkloadSpec = workload.Spec
	// Program generates a task's execution events.
	Program = kernel.Program
	// Task is a kernel task.
	Task = kernel.Task
	// Snapshot captures machine counters (Monster probe).
	Snapshot = monster.Snapshot
	// TraceBuffer is an in-memory address trace.
	TraceBuffer = trace.Buffer
	// TraceSim is the trace-driven Cache2000-style simulator.
	TraceSim = cache2000.Simulator
	// TraceSimConfig configures the trace-driven simulator.
	TraceSimConfig = cache2000.Config
	// TaskID identifies a task (0 is the kernel).
	TaskID = mem.TaskID
	// VAddr is a 32-bit virtual address.
	VAddr = mem.VAddr
	// Ref is one memory reference (virtual address + kind).
	Ref = mem.Ref
	// RefKind distinguishes instruction fetches, loads and stores.
	RefKind = mem.RefKind
	// Event is one step of a task program's execution.
	Event = kernel.Event
)

// Reference kinds.
const (
	IFetch = mem.IFetch
	Load   = mem.Load
	Store  = mem.Store
)

// Program event kinds.
const (
	EvRef     = kernel.EvRef
	EvSyscall = kernel.EvSyscall
	EvFork    = kernel.EvFork
	EvExit    = kernel.EvExit
)

// Simulation modes (see core.Mode).
const (
	ModeICache  = core.ModeICache
	ModeDCache  = core.ModeDCache
	ModeUnified = core.ModeUnified
	ModeTLB     = core.ModeTLB
)

// Cache indexing modes.
const (
	PhysIndexed = cache.PhysIndexed
	VirtIndexed = cache.VirtIndexed
)

// Replacement policies.
const (
	LRU    = cache.LRU
	FIFO   = cache.FIFO
	Random = cache.Random
)

// Handler cost models (Table 5 and the Section 4.3 ablations).
const (
	HandlerOptimized      = core.HandlerOptimized
	HandlerOriginalC      = core.HandlerOriginalC
	HandlerHardwareAssist = core.HandlerHardwareAssist
)

// FullSampling returns the no-sampling configuration.
func FullSampling() Sampling { return core.FullSampling() }

// DECstation returns the paper's primary platform model (a 25 MHz
// R3000-based DECstation 5000/200) with the given physical memory size in
// 4 KB frames.
func DECstation(frames int) MachineConfig { return mach.DECstation5000_200(frames) }

// Gateway486 returns the 486 PC port's machine model (no ECC diagnostics;
// TLB and breakpoint-based I-cache simulation only).
func Gateway486(frames int) MachineConfig { return mach.Gateway486(frames) }

// DECstation240 returns the R4000-based DECstation 5000/240: variable page
// sizes enable superpage TLB simulation, but its DMA engine destroys
// memory traps on I/O buffers — the port the paper says was "hindered".
func DECstation240(frames int) MachineConfig { return mach.DECstation5000_240(frames) }

// WWTNode returns an allocate-on-write SPARC node (the Wisconsin Wind
// Tunnel platform), on which data-cache simulation works.
func WWTNode(frames int) MachineConfig { return mach.WWTNode(frames) }

// Workloads lists the paper's eight workloads (Table 3) at the given
// instruction-scale divisor (100 reproduces the standard evaluation).
func Workloads(scale float64) []WorkloadSpec { return workload.Specs(scale) }

// WorkloadByName fetches one workload spec by name.
func WorkloadByName(name string, scale float64) (WorkloadSpec, error) {
	return workload.ByName(name, scale)
}

// SystemConfig configures a booted system.
type SystemConfig struct {
	// Machine is the host model; zero value boots a 32 MB DECstation.
	Machine MachineConfig
	// Seed drives kernel and workload streams.
	Seed uint64
	// PageSeed drives only physical frame allocation; varying it between
	// runs reproduces the paper's page-allocation measurement variance.
	PageSeed uint64
	// Telemetry, if non-nil, records this system's trap events and
	// end-of-run counters (see TelemetryCollector / internal/telemetry).
	Telemetry *TelemetryRun
	// Checkpoint forks the system from a process-wide cached post-boot
	// image instead of booting fresh. Forked systems are byte-identical
	// to booted ones; the first request per (seed, pageSeed, frames)
	// identity captures the image.
	Checkpoint bool
	// CheckpointDir, when set (requires Checkpoint), persists captured
	// boot images to disk and reloads matching ones across processes.
	CheckpointDir string
}

// Telemetry re-exports: a collector aggregates runs into a metrics
// report; a run records one booted system's counters and trap events.
type (
	// TelemetryCollector aggregates committed telemetry runs.
	TelemetryCollector = telemetry.Collector
	// TelemetryConfig parameterizes a collector.
	TelemetryConfig = telemetry.Config
	// TelemetryRun records one run's counters, timing, and events.
	TelemetryRun = telemetry.Run
)

// NewTelemetryCollector creates a telemetry collector.
func NewTelemetryCollector(cfg TelemetryConfig) *TelemetryCollector {
	return telemetry.New(cfg)
}

// System is a booted machine + kernel ready to run workloads.
type System struct {
	k *kernel.Kernel
}

// NewSystem boots a machine and kernel. The system owns the boot's
// pooled buffers; call Kernel().ReleaseBuffers() at end-of-run teardown
// to recycle them.
//
//twvet:transfer
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Machine.Proc == nil {
		cfg.Machine = DECstation(8192)
	}
	kcfg := kernel.DefaultConfig(cfg.Machine, cfg.Seed)
	if cfg.PageSeed != 0 {
		kcfg.PageSeed = cfg.PageSeed
	}
	kcfg.Telemetry = cfg.Telemetry
	if cfg.CheckpointDir != "" && !cfg.Checkpoint {
		return nil, fmt.Errorf("tapeworm: CheckpointDir %q requires Checkpoint", cfg.CheckpointDir)
	}
	if cfg.Checkpoint {
		cp, err := experiment.CachedCheckpoint(kcfg, cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		k, err := kernel.Fork(cp, kcfg)
		if err != nil {
			return nil, err
		}
		return &System{k: k}, nil
	}
	k, err := kernel.Boot(kcfg)
	if err != nil {
		return nil, err
	}
	return &System{k: k}, nil
}

// Kernel exposes the underlying kernel for advanced use (attributes,
// per-task statistics, hooks).
func (s *System) Kernel() *kernel.Kernel { return s.k }

// AttachTapeworm installs a Tapeworm simulation into the kernel. At most
// one simulator may be attached per system.
func (s *System) AttachTapeworm(cfg SimConfig) (*Simulator, error) {
	return core.Attach(s.k, cfg)
}

// LoadWorkload spawns one of the paper's workloads with the given Tapeworm
// simulate attribute (inherited by the workload's fork tree).
func (s *System) LoadWorkload(name string, scale float64, seed uint64, simulate bool) (*Task, error) {
	spec, err := workload.ByName(name, scale)
	if err != nil {
		return nil, err
	}
	prog, err := workload.NewPlanned(spec, seed)
	if err != nil {
		return nil, err
	}
	return s.k.Spawn(spec.Name, prog, simulate, simulate), nil
}

// SpawnProgram runs a custom Program as a task with the given Tapeworm
// attributes; use this to drive the simulator with your own workloads.
func (s *System) SpawnProgram(name string, prog Program, simulate, inherit bool) *Task {
	return s.k.Spawn(name, prog, simulate, inherit)
}

// AnnotatePixie attaches a Pixie-style annotator to task t, feeding an
// on-the-fly trace-driven simulator (the paper's baseline configuration).
// The returned TraceSim accumulates hits and misses as the system runs.
func (s *System) AnnotatePixie(t *Task, cfg TraceSimConfig) (*TraceSim, error) {
	if t == nil {
		return nil, fmt.Errorf("tapeworm: nil task")
	}
	sim, err := cache2000.New(cfg)
	if err != nil {
		return nil, err
	}
	sim.BindMachine(s.k.Machine())
	ann := pixie.NewOnTheFly(s.k.Machine(), sim)
	if len(cfg.Kinds) == 1 && cfg.Kinds[0] == mem.IFetch {
		ann.IOnly = true
	}
	ann.Annotate(s.k, t.ID)
	return sim, nil
}

// CaptureTrace attaches a Pixie-style annotator that records task t's
// user-level references into a trace buffer for later batch simulation.
func (s *System) CaptureTrace(t *Task, instructionFetchesOnly bool) (*TraceBuffer, error) {
	if t == nil {
		return nil, fmt.Errorf("tapeworm: nil task")
	}
	buf := &trace.Buffer{}
	ann := pixie.NewCapture(s.k.Machine(), buf)
	ann.IOnly = instructionFetchesOnly
	ann.Annotate(s.k, t.ID)
	return buf, nil
}

// Run executes until every workload task has exited, or maxInstructions
// have retired (0 = no limit).
func (s *System) Run(maxInstructions uint64) error {
	return s.k.Run(maxInstructions)
}

// Monitor probes the machine counters without perturbing the system, as
// the Monster logic analyzer does in the paper.
func (s *System) Monitor() Snapshot { return monster.Snap(s.k.Machine()) }

// Seconds converts the machine's elapsed cycles to simulated seconds.
func (s *System) Seconds() float64 {
	m := s.k.Machine()
	return m.Seconds(m.Cycles())
}

// Slowdown computes the paper's slowdown metric between an instrumented
// run and an uninstrumented run of the same workload.
func Slowdown(instrumented, normal Snapshot) float64 {
	return monster.Slowdown(instrumented, normal)
}
