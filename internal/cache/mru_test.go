package cache

import "testing"

// The MRU fast path in Access must be invisible: identical results to a
// cache without it. These tests target the hazards of caching a line
// pointer (invalidation, overwrite, task-tag changes).

func TestMRUInvalidationDetected(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 16, Assoc: 1}, nil)
	c.Access(1, 0x100)
	c.Access(1, 0x100) // MRU primed
	c.Invalidate(1, 0x100)
	if hit, _, _ := c.Access(1, 0x100); hit {
		t.Fatal("stale MRU pointer produced a hit after invalidation")
	}
}

func TestMRUOverwriteDetected(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 16, Assoc: 1}, nil)
	c.Access(1, 0x100)
	c.Access(1, 0x100)       // MRU -> line for 0x100
	c.Access(1, 0x100+0x400) // conflicting address overwrites that way
	if hit, _, _ := c.Access(1, 0x100); hit {
		t.Fatal("stale MRU pointer hit after its line was overwritten")
	}
}

func TestMRUFlushDetected(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 16, Assoc: 1}, nil)
	c.Access(1, 0x200)
	c.Access(1, 0x200)
	c.Flush()
	if hit, _, _ := c.Access(1, 0x200); hit {
		t.Fatal("stale MRU pointer hit after flush")
	}
}

func TestMRUTaskTagRespected(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 16, Assoc: 1, Indexing: VirtIndexed}, nil)
	c.Access(1, 0x300)
	c.Access(1, 0x300)
	if hit, _, _ := c.Access(2, 0x300); hit {
		t.Fatal("MRU fast path ignored the task tag")
	}
}

func TestMRUUpdatesLRUStamps(t *testing.T) {
	// Repeated MRU hits must refresh recency, or LRU would rot into FIFO.
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2}, nil)
	c.Access(1, 0x00)
	c.Access(1, 0x40)
	c.Access(1, 0x00)
	c.Access(1, 0x00) // MRU hits; A must remain most-recent
	_, victim, _ := c.Access(1, 0x80)
	if victim.Addr != 0x40 {
		t.Fatalf("LRU ordering lost through MRU path: victim %#x", victim.Addr)
	}
}
