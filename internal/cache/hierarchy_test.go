package cache

import (
	"testing"
	"testing/quick"

	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

func TestSplitRouting(t *testing.T) {
	icfg := Config{Size: 1024, LineSize: 16, Assoc: 1}
	dcfg := Config{Size: 2048, LineSize: 16, Assoc: 2}
	s, err := NewSplit(icfg, dcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(1, 0x100, mem.IFetch)
	s.Access(1, 0x100, mem.Load)
	s.Access(1, 0x100, mem.Store)
	if _, im := s.I.Stats(); im != 1 {
		t.Errorf("icache misses = %d, want 1", im)
	}
	dh, dm := s.D.Stats()
	if dm != 1 || dh != 1 {
		t.Errorf("dcache hits/misses = %d/%d, want 1/1", dh, dm)
	}
	if s.Side(mem.IFetch) != s.I || s.Side(mem.Load) != s.D || s.Side(mem.Store) != s.D {
		t.Error("Side routing wrong")
	}
}

func TestSplitPropagatesConfigErrors(t *testing.T) {
	bad := Config{Size: 1000, LineSize: 16, Assoc: 1}
	good := Config{Size: 1024, LineSize: 16, Assoc: 1}
	if _, err := NewSplit(bad, good, nil); err == nil {
		t.Error("bad icache config accepted")
	}
	if _, err := NewSplit(good, bad, nil); err == nil {
		t.Error("bad dcache config accepted")
	}
}

func newTwoLevel(t *testing.T) *TwoLevel {
	t.Helper()
	tl, err := NewTwoLevel(
		Config{Size: 256, LineSize: 16, Assoc: 1},
		Config{Size: 1024, LineSize: 16, Assoc: 2},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestTwoLevelValidation(t *testing.T) {
	l1 := Config{Size: 1024, LineSize: 16, Assoc: 1}
	if _, err := NewTwoLevel(l1, Config{Size: 512, LineSize: 16, Assoc: 1}, nil); err == nil {
		t.Error("L2 smaller than L1 accepted")
	}
	if _, err := NewTwoLevel(l1, Config{Size: 2048, LineSize: 8, Assoc: 1}, nil); err == nil {
		t.Error("L2 line smaller than L1 line accepted")
	}
	bad := l1
	bad.Indexing = VirtIndexed
	if _, err := NewTwoLevel(bad, Config{Size: 2048, LineSize: 16, Assoc: 1}, nil); err == nil {
		t.Error("mixed indexing accepted")
	}
}

func TestTwoLevelHitLevels(t *testing.T) {
	tl := newTwoLevel(t)
	if lvl, _ := tl.AccessDetail(1, 0x100); lvl != MissAll {
		t.Fatalf("cold access level = %v", lvl)
	}
	if lvl, _ := tl.AccessDetail(1, 0x104); lvl != HitL1 {
		t.Fatalf("warm access level = %v", lvl)
	}
	// Evict 0x100 from the direct-mapped L1 (16 sets) with a conflicting
	// address; L2 (2-way, 32 sets) keeps it.
	tl.AccessDetail(1, 0x100+256)
	if lvl, _ := tl.AccessDetail(1, 0x100); lvl != HitL2 {
		t.Fatalf("L1-evicted line level = %v, want L2 hit", lvl)
	}
}

func TestTwoLevelInclusion(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tl, err := NewTwoLevel(
			Config{Size: 128, LineSize: 16, Assoc: 1},
			Config{Size: 512, LineSize: 16, Assoc: 2},
			nil)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			tl.AccessDetail(1, uint32(r.Intn(1<<14)))
			if i%97 == 0 {
				if err := tl.CheckInclusion(); err != nil {
					return false
				}
			}
		}
		return tl.CheckInclusion() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelEvictionsSurface(t *testing.T) {
	// Fill L2 completely within one set and confirm evictions are reported
	// (Tapeworm needs them to set new traps).
	tl := newTwoLevel(t)
	l2sets := tl.L2.NumSets()
	stride := uint32(l2sets * 16)
	sawEviction := false
	for i := uint32(0); i < 8; i++ {
		_, evicted := tl.AccessDetail(1, i*stride)
		if len(evicted) > 0 {
			sawEviction = true
			for _, k := range evicted {
				if tl.Contains(k.Task, k.Addr) {
					t.Fatalf("evicted line %+v still resident", k)
				}
			}
		}
	}
	if !sawEviction {
		t.Fatal("filling a 2-way set 8 deep never evicted")
	}
}

func TestLevelString(t *testing.T) {
	if HitL1.String() != "L1" || HitL2.String() != "L2" || MissAll.String() != "miss" {
		t.Error("Level labels wrong")
	}
}

func TestTLBValidation(t *testing.T) {
	bads := []TLBConfig{
		{Entries: 0, PageSize: 4096},
		{Entries: 63, PageSize: 4096},
		{Entries: 64, PageSize: 1000},
		{Entries: 64, PageSize: 4096, Assoc: 3},
		{Entries: 64, PageSize: 4096, Reserved: 64},
		{Entries: 64, PageSize: 4096, Reserved: -1},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad TLB config %d accepted: %+v", i, b)
		}
	}
	if err := R3000TLB().Validate(); err != nil {
		t.Fatalf("R3000 TLB config invalid: %v", err)
	}
}

func TestTLBMissThenHit(t *testing.T) {
	tlb := MustNewTLB(R3000TLB(), rng.New(1))
	if hit, _, _ := tlb.Access(1, 0x1234); hit {
		t.Fatal("cold TLB should miss")
	}
	if hit, _, _ := tlb.Access(1, 0x1FFF); !hit {
		t.Fatal("same page should hit")
	}
	if hit, _, _ := tlb.Access(1, 0x2000); hit {
		t.Fatal("next page should miss")
	}
	if hit, _, _ := tlb.Access(2, 0x1234); hit {
		t.Fatal("TLB entries are per-task")
	}
	hits, misses := tlb.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	cfg := TLBConfig{Entries: 4, PageSize: 4096, Replace: LRU}
	tlb := MustNewTLB(cfg, nil)
	for p := 0; p < 5; p++ {
		tlb.Access(1, mem.VAddr(p*4096))
	}
	if tlb.Len() != 4 {
		t.Fatalf("TLB holds %d entries, want 4", tlb.Len())
	}
	if tlb.Probe(1, 0) {
		t.Fatal("LRU TLB should have evicted page 0")
	}
}

func TestTLBWiredEntriesSurvive(t *testing.T) {
	cfg := TLBConfig{Entries: 4, PageSize: 4096, Replace: LRU, Reserved: 2}
	tlb := MustNewTLB(cfg, nil)
	if err := tlb.Wire(mem.KernelTask, 0x0000); err != nil {
		t.Fatal(err)
	}
	// Thrash with many user pages; the wired kernel page must remain.
	for p := 1; p < 50; p++ {
		tlb.Access(1, mem.VAddr(p*4096))
	}
	if !tlb.Probe(mem.KernelTask, 0x0000) {
		t.Fatal("wired entry was evicted")
	}
}

func TestTLBWireLimit(t *testing.T) {
	cfg := TLBConfig{Entries: 8, PageSize: 4096, Reserved: 1}
	tlb := MustNewTLB(cfg, nil)
	if err := tlb.Wire(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tlb.Wire(0, 0); err != nil {
		t.Fatal("re-wiring same page should be a no-op")
	}
	if err := tlb.Wire(0, 4096); err == nil {
		t.Fatal("wiring beyond Reserved should fail")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := MustNewTLB(TLBConfig{Entries: 8, PageSize: 4096}, nil)
	tlb.Access(1, 0x1000)
	tlb.Access(1, 0x2000)
	tlb.Access(2, 0x1000)
	if !tlb.InvalidatePage(1, 0x1000) {
		t.Fatal("InvalidatePage missed")
	}
	removed := tlb.InvalidateTask(1)
	if len(removed) != 1 {
		t.Fatalf("InvalidateTask removed %d, want 1", len(removed))
	}
	if !tlb.Probe(2, 0x1000) {
		t.Fatal("other task's translation removed")
	}
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Fatal("flush incomplete")
	}
}

func TestTLBInsertMatchesAccessMissPath(t *testing.T) {
	a := MustNewTLB(TLBConfig{Entries: 4, PageSize: 4096, Replace: LRU}, nil)
	b := MustNewTLB(TLBConfig{Entries: 4, PageSize: 4096, Replace: LRU}, nil)
	pages := []mem.VAddr{0x0000, 0x1000, 0x2000, 0x0000, 0x3000, 0x4000}
	for _, va := range pages {
		hit, d1, e1 := a.Access(1, va)
		if !hit {
			d2, e2 := b.Insert(1, va)
			if d1 != d2 || e1 != e2 {
				t.Fatalf("Insert diverged at %#x", va)
			}
		} else {
			b.Insert(1, va)
		}
	}
}
