package cache

// Line-array recycling. A sweep builds thousands of machines, and every
// machine's host caches are identically configured, so their tag stores
// are identically sized; allocating them fresh per build makes cache.New
// the dominant allocation site of a checkpoint fork (mach.build). The
// pool recirculates released line arrays by exact length — a fetched
// array is cleared before reuse, so a pooled cache starts in the same
// all-invalid state a fresh one does and simulation results cannot
// depend on pooling.

import "sync"

var linePool = struct {
	sync.Mutex
	byLen map[int][][]line
}{byLen: map[int][][]line{}}

// getLines returns a zeroed line array of length n and whether it was
// recycled from the pool. Pooled arrays are stored clean (putLines
// zeroes dirty ones on the way in), so the get path never clears — a
// forked machine that is built and torn down without running pays no
// memclr at all.
func getLines(n int) ([]line, bool) {
	linePool.Lock()
	s := linePool.byLen[n]
	if len(s) == 0 {
		linePool.Unlock()
		return make([]line, n), false
	}
	buf := s[len(s)-1]
	s[len(s)-1] = nil
	linePool.byLen[n] = s[:len(s)-1]
	linePool.Unlock()
	return buf, true
}

func putLines(buf []line) {
	if buf == nil {
		return
	}
	linePool.Lock()
	linePool.byLen[len(buf)] = append(linePool.byLen[len(buf)], buf)
	linePool.Unlock()
}

// Release returns the cache's tag store to the process-wide pool. The
// cache is unusable afterwards; callers release only caches they own
// exclusively (a machine's host caches at teardown).
func (c *Cache) Release() {
	// Every line mutation happens under an Access (probes stamp on hit,
	// inserts fill on miss; invalidations clear in place and are no-ops
	// on a never-accessed store), so an untouched cache's array is still
	// zero and can skip the clear the pool contract requires.
	if c.hits|c.misses != 0 {
		clear(c.lines)
	}
	putLines(c.lines)
	c.lines = nil
	c.mru = nil
}

// PoolReused reports whether this cache's tag store came out of the pool
// rather than a fresh allocation (pool-attribution accounting).
func (c *Cache) PoolReused() bool { return c.reused }

// Release returns the TLB's tag store to the pool; see Cache.Release.
func (t *TLB) Release() { t.inner.Release() }

// PoolReused reports whether the TLB's tag store was recycled.
func (t *TLB) PoolReused() bool { return t.inner.reused }
