package cache

import (
	"testing"
	"testing/quick"

	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

func dmCache(size, lineSize int) *Cache {
	return MustNew(Config{Size: size, LineSize: lineSize, Assoc: 1}, nil)
}

func TestConfigValidate(t *testing.T) {
	good := Config{Size: 4096, LineSize: 16, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bads := []Config{
		{Size: 0, LineSize: 16, Assoc: 1},
		{Size: 3000, LineSize: 16, Assoc: 1},
		{Size: 4096, LineSize: 0, Assoc: 1},
		{Size: 4096, LineSize: 24, Assoc: 1},
		{Size: 16, LineSize: 32, Assoc: 1},
		{Size: 4096, LineSize: 16, Assoc: -1},
		{Size: 4096, LineSize: 16, Assoc: 1000},
		{Size: 4096, LineSize: 16, Assoc: 3}, // 256 lines not divisible by 3
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, b)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := Config{Size: 8192, LineSize: 16, Assoc: 2}
	if c.Lines() != 512 || c.Ways() != 2 || c.Sets() != 256 {
		t.Fatalf("lines/ways/sets = %d/%d/%d", c.Lines(), c.Ways(), c.Sets())
	}
	fa := Config{Size: 1024, LineSize: 16, Assoc: 0}
	if fa.Ways() != 64 || fa.Sets() != 1 {
		t.Fatalf("fully associative geometry wrong: ways=%d sets=%d", fa.Ways(), fa.Sets())
	}
}

func TestRandomNeedsSource(t *testing.T) {
	_, err := New(Config{Size: 1024, LineSize: 16, Assoc: 1, Replace: Random}, nil)
	if err == nil {
		t.Fatal("Random replacement without source should fail")
	}
}

func TestMissThenHit(t *testing.T) {
	c := dmCache(1024, 16)
	if hit, _, _ := c.Access(1, 0x100); hit {
		t.Fatal("first access should miss")
	}
	if hit, _, _ := c.Access(1, 0x10c); !hit {
		t.Fatal("same-line access should hit")
	}
	if hit, _, _ := c.Access(1, 0x110); hit {
		t.Fatal("next line should miss")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := dmCache(1024, 16) // 64 sets
	a, b := uint32(0x0000), uint32(0x0400)
	if c.SetIndex(a) != c.SetIndex(b) {
		t.Fatal("test addresses should conflict")
	}
	c.Access(1, a)
	_, displaced, evicted := c.Access(1, b)
	if !evicted || displaced.Addr != a {
		t.Fatalf("expected eviction of %#x, got %+v evicted=%v", a, displaced, evicted)
	}
	if hit, _, _ := c.Access(1, a); hit {
		t.Fatal("displaced line should miss")
	}
}

func TestTwoWayAvoidsConflict(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 16, Assoc: 2}, nil)
	a, b := uint32(0x0000), uint32(0x0400)
	c.Access(1, a)
	c.Access(1, b)
	if hit, _, _ := c.Access(1, a); !hit {
		t.Fatal("2-way cache should retain both conflicting lines")
	}
}

func TestLRUOrder(t *testing.T) {
	// 2-way set: fill with A, B; touch A; insert C -> B must be evicted.
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2}, nil) // 2 sets
	a, b1, d := uint32(0x00), uint32(0x40), uint32(0x80)        // all set 0
	if c.SetIndex(a) != c.SetIndex(b1) || c.SetIndex(a) != c.SetIndex(d) {
		t.Fatal("addresses should share a set")
	}
	c.Access(1, a)
	c.Access(1, b1)
	c.Access(1, a) // A most recent
	_, victim, evicted := c.Access(1, d)
	if !evicted || victim.Addr != b1 {
		t.Fatalf("LRU should evict B (%#x), got %+v", b1, victim)
	}
}

func TestFIFOOrder(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2, Replace: FIFO}, nil)
	a, b1, d := uint32(0x00), uint32(0x40), uint32(0x80)
	c.Access(1, a)
	c.Access(1, b1)
	c.Access(1, a) // touching A must NOT save it under FIFO
	_, victim, evicted := c.Access(1, d)
	if !evicted || victim.Addr != a {
		t.Fatalf("FIFO should evict A (%#x), got %+v", a, victim)
	}
}

func TestRandomReplacementStaysInSet(t *testing.T) {
	r := rng.New(1)
	c := MustNew(Config{Size: 128, LineSize: 16, Assoc: 4, Replace: Random}, r)
	// Fill one set (set 0 of 2) with 4 lines, then insert more.
	addrs := []uint32{0x00, 0x20, 0x40, 0x60, 0x80, 0xa0}
	for _, a := range addrs {
		_, victim, evicted := c.Access(1, a)
		if evicted && c.SetIndex(victim.Addr) != c.SetIndex(a) {
			t.Fatalf("victim %#x from wrong set", victim.Addr)
		}
	}
	if c.Len() > 8 {
		t.Fatalf("occupancy %d exceeds capacity", c.Len())
	}
}

func TestVirtualIndexingTagsByTask(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 16, Assoc: 1, Indexing: VirtIndexed}, nil)
	c.Access(1, 0x100)
	if hit, _, _ := c.Access(2, 0x100); hit {
		t.Fatal("different tasks must not share virtually-indexed lines")
	}
}

func TestPhysicalIndexingIgnoresTask(t *testing.T) {
	c := dmCache(1024, 16) // physical by default
	c.Access(1, 0x100)
	if hit, _, _ := c.Access(2, 0x100); !hit {
		t.Fatal("physically-indexed lines are shared across tasks")
	}
}

func TestInsertIsTwReplace(t *testing.T) {
	// Insert must behave like Access-on-known-miss: same tag-store state.
	c1 := dmCache(256, 16)
	c2 := dmCache(256, 16)
	addrs := []uint32{0x00, 0x10, 0x100, 0x00, 0x110, 0x10}
	for _, a := range addrs {
		hit, d1, e1 := c1.Access(1, a)
		if !hit {
			d2, e2 := c2.Insert(1, a)
			if d1 != d2 || e1 != e2 {
				t.Fatalf("Insert diverged from Access at %#x: %+v/%v vs %+v/%v",
					a, d1, e1, d2, e2)
			}
		}
	}
	k1, k2 := c1.Keys(), c2.Keys()
	if len(k1) != len(k2) {
		t.Fatalf("contents diverged: %d vs %d lines", len(k1), len(k2))
	}
}

func TestInsertRefreshesResidentLine(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2}, nil)
	c.Insert(1, 0x00)
	c.Insert(1, 0x40)
	c.Insert(1, 0x00) // refresh A
	victim, _ := c.Insert(1, 0x80)
	if victim.Addr != 0x40 {
		t.Fatalf("refresh by Insert ignored; victim %#x", victim.Addr)
	}
}

func TestInvalidate(t *testing.T) {
	c := dmCache(1024, 16)
	c.Access(1, 0x200)
	if !c.Invalidate(1, 0x20c) { // same line
		t.Fatal("Invalidate missed resident line")
	}
	if c.Invalidate(1, 0x200) {
		t.Fatal("double Invalidate should report absence")
	}
	if hit, _, _ := c.Access(1, 0x200); hit {
		t.Fatal("invalidated line still hits")
	}
}

func TestInvalidateRangeFlushesPage(t *testing.T) {
	c := dmCache(8192, 16)
	for a := uint32(0x1000); a < 0x2000; a += 16 {
		c.Access(1, a)
	}
	before := c.Len()
	removed := c.InvalidateRange(1, 0x1000, 4096)
	if len(removed) != 256 {
		t.Fatalf("removed %d lines, want 256", len(removed))
	}
	if c.Len() != before-256 {
		t.Fatalf("occupancy %d after flush", c.Len())
	}
}

func TestInvalidateTask(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 16, Assoc: 2, Indexing: VirtIndexed}, nil)
	c.Access(1, 0x100)
	c.Access(1, 0x200)
	c.Access(2, 0x300)
	removed := c.InvalidateTask(1)
	if len(removed) != 2 {
		t.Fatalf("removed %d lines for task 1, want 2", len(removed))
	}
	if !c.Probe(2, 0x300) {
		t.Fatal("task 2 lines must survive task 1 flush")
	}
}

func TestFlush(t *testing.T) {
	c := dmCache(1024, 16)
	for a := uint32(0); a < 512; a += 16 {
		c.Access(1, a)
	}
	c.Flush()
	if c.Len() != 0 || len(c.Keys()) != 0 {
		t.Fatal("flush left lines resident")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2}, nil)
	c.Access(1, 0x00)
	c.Access(1, 0x40)
	c.Probe(1, 0x00) // must NOT refresh LRU
	_, victim, _ := c.Access(1, 0x80)
	if victim.Addr != 0x00 {
		t.Fatalf("Probe refreshed LRU state; victim %#x", victim.Addr)
	}
	hits, misses := c.Stats()
	if hits+misses != 3 {
		t.Fatalf("Probe counted in stats: %d/%d", hits, misses)
	}
}

func TestStringFormat(t *testing.T) {
	c := Config{Size: 16384, LineSize: 16, Assoc: 1}
	if got := c.String(); got != "16K/16B/1-way physical lru" {
		t.Errorf("String() = %q", got)
	}
	c2 := Config{Size: 1 << 20, LineSize: 32, Assoc: 0, Indexing: VirtIndexed, Replace: FIFO}
	if got := c2.String(); got != "1M/32B/32768-way virtual fifo" {
		t.Errorf("String() = %q", got)
	}
}

// lruModel is a straightforward reference implementation: a slice ordered
// by recency, per set, used to cross-check the tag store under random
// workloads (property-based differential test).
type lruModel struct {
	ways int
	sets map[int][]Key
	cfg  Config
}

func (m *lruModel) access(c *Cache, task mem.TaskID, addr uint32) (hit bool, victim Key, evicted bool) {
	si := c.SetIndex(addr)
	k := Key{Addr: addr &^ uint32(m.cfg.LineSize-1)}
	if m.cfg.Indexing == VirtIndexed {
		k.Task = task
	}
	set := m.sets[si]
	for i, e := range set {
		if e == k {
			set = append(append(append([]Key{}, set[:i]...), set[i+1:]...), k)
			m.sets[si] = set
			return true, Key{}, false
		}
	}
	if len(set) == m.ways {
		victim, evicted = set[0], true
		set = set[1:]
	}
	m.sets[si] = append(set, k)
	return false, victim, evicted
}

func TestLRUAgainstReferenceModel(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		cfg := Config{Size: 512, LineSize: 16, Assoc: 4}
		c := MustNew(cfg, nil)
		m := &lruModel{ways: 4, sets: map[int][]Key{}, cfg: cfg}
		r := rng.New(seed)
		for i := 0; i < int(n%2000)+50; i++ {
			addr := uint32(r.Intn(4096)) &^ 3
			h1, v1, e1 := c.Access(1, addr)
			h2, v2, e2 := m.access(c, 1, addr)
			if h1 != h2 || e1 != e2 || (e1 && v1 != v2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := MustNew(Config{Size: 1024, LineSize: 32, Assoc: 2}, nil)
		for i := 0; i < 3000; i++ {
			c.Access(mem.TaskID(r.Intn(3)), uint32(r.Intn(1<<16)))
			if c.Len() > c.Config().Lines() {
				return false
			}
		}
		return c.Len() == len(c.Keys())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
