package cache

import (
	"fmt"

	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

// Split pairs an instruction cache with a data cache, routing each access
// by reference kind. tw_replace "can simulate ... split, unified or
// multi-level caches" (Section 3.2); a unified cache is simply a single
// Cache receiving both kinds.
type Split struct {
	I *Cache
	D *Cache
}

// NewSplit builds a split cache from the two configurations.
func NewSplit(icfg, dcfg Config, rnd *rng.Source) (*Split, error) {
	ic, err := New(icfg, rnd)
	if err != nil {
		return nil, fmt.Errorf("icache: %w", err)
	}
	dc, err := New(dcfg, rnd)
	if err != nil {
		return nil, fmt.Errorf("dcache: %w", err)
	}
	return &Split{I: ic, D: dc}, nil
}

// Side returns the cache handling references of kind k.
func (s *Split) Side(k mem.RefKind) *Cache {
	if k == mem.IFetch {
		return s.I
	}
	return s.D
}

// Access routes one reference to the appropriate side.
func (s *Split) Access(task mem.TaskID, addr uint32, k mem.RefKind) (hit bool, displaced Key, evicted bool) {
	return s.Side(k).Access(task, addr)
}

// TwoLevel is an L1 backed by an L2. A reference hitting L1 touches only
// L1; an L1 miss probes L2; an overall miss fills both. Lines displaced
// from L1 remain in L2 (the hierarchy is inclusive: every L1 line is also
// in L2, maintained by filling L2 on every overall miss and invalidating
// L1 when L2 evicts).
//
// For trap-driven simulation the interesting boundary is the overall miss:
// Tapeworm sets traps only on lines absent from every level, so a trap
// fires exactly when DidMiss both levels — the Displaced keys returned from
// L2 are where new traps go.
type TwoLevel struct {
	L1 *Cache
	L2 *Cache
}

// NewTwoLevel builds a two-level hierarchy. L2 must be at least as large
// as L1 and have a line size that is a multiple of L1's, or inclusion
// cannot be maintained.
func NewTwoLevel(l1cfg, l2cfg Config, rnd *rng.Source) (*TwoLevel, error) {
	if l2cfg.Size < l1cfg.Size {
		return nil, fmt.Errorf("cache: L2 (%d) smaller than L1 (%d)", l2cfg.Size, l1cfg.Size)
	}
	if l2cfg.LineSize%l1cfg.LineSize != 0 {
		return nil, fmt.Errorf("cache: L2 line %d not a multiple of L1 line %d",
			l2cfg.LineSize, l1cfg.LineSize)
	}
	if l1cfg.Indexing != l2cfg.Indexing {
		return nil, fmt.Errorf("cache: mixed indexing in hierarchy")
	}
	l1, err := New(l1cfg, rnd)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := New(l2cfg, rnd)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &TwoLevel{L1: l1, L2: l2}, nil
}

// Level identifies where a hierarchical access hit.
type Level int

const (
	// MissAll means the reference missed every level.
	MissAll Level = iota
	// HitL1 means the reference hit the first level.
	HitL1
	// HitL2 means the reference missed L1 but hit L2.
	HitL2
)

// String names the hit level.
func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	}
	return "miss"
}

// Access simulates one reference through the hierarchy. Displaced reports
// the L2 lines evicted by an overall miss (the locations on which Tapeworm
// would set new traps); inclusion invalidates the same lines in L1.
func (t *TwoLevel) Access(task mem.TaskID, addr uint32) (level Level, displaced []Key) {
	if hit, _, _ := t.L1.Access(task, addr); hit {
		return HitL1, nil
	}
	// L1 miss: L1.Access already inserted the line into L1 (evicting an L1
	// victim, which stays in L2 under inclusion). Now check L2.
	if hit, _, _ := t.L2.Access(task, addr); hit {
		return HitL2, nil
	}
	// Overall miss: L2.Access inserted into L2 too. Its victim (if any)
	// must leave L1 as well. L2.Access returned before we could grab the
	// victim — redo via explicit probe-free protocol below.
	return MissAll, displaced
}

// AccessDetail is like Access but surfaces L2 evictions so callers can
// maintain trap state. It performs the same state transitions.
func (t *TwoLevel) AccessDetail(task mem.TaskID, addr uint32) (level Level, l2Evicted []Key) {
	if hit, _, _ := t.L1.Access(task, addr); hit {
		return HitL1, nil
	}
	if t.L2.Probe(task, addr) {
		t.L2.Access(task, addr) // refresh L2 replacement state
		return HitL2, nil
	}
	_, victim, evicted := t.L2.Access(task, addr)
	if evicted {
		// Inclusion: evicting from L2 forces the line out of L1 in all
		// L1-sized chunks covered by the L2 line.
		step := uint32(t.L1.Config().LineSize)
		for a := victim.Addr; a < victim.Addr+uint32(t.L2.Config().LineSize); a += step {
			t.L1.Invalidate(victim.Task, a)
		}
		l2Evicted = append(l2Evicted, victim)
	}
	return MissAll, l2Evicted
}

// Contains reports whether the line holding addr is resident anywhere in
// the hierarchy.
func (t *TwoLevel) Contains(task mem.TaskID, addr uint32) bool {
	return t.L1.Probe(task, addr) || t.L2.Probe(task, addr)
}

// CheckInclusion verifies that every valid L1 line is covered by a valid
// L2 line; tests use it as the hierarchy invariant.
func (t *TwoLevel) CheckInclusion() error {
	for _, k := range t.L1.Keys() {
		if !t.L2.Probe(k.Task, k.Addr) {
			return fmt.Errorf("cache: L1 line %+v not present in L2 (inclusion violated)", k)
		}
	}
	return nil
}
