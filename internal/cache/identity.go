package cache

import "tapeworm/internal/resultcache"

// HashInto writes the cache geometry's canonical identity encoding.
// Fields are hashed in declaration order behind a version tag; any change
// to the set or meaning of fields must bump the tag (and, if simulated
// behaviour changes, core.PhysicsVersion).
func (c Config) HashInto(h *resultcache.Hasher) {
	h.WriteString("cache.Config/v1")
	h.WriteString(c.Name)
	h.WriteInt(c.Size)
	h.WriteInt(c.LineSize)
	h.WriteInt(c.Assoc)
	h.WriteInt(int(c.Indexing))
	h.WriteInt(int(c.Replace))
}

// HashInto writes the TLB geometry's canonical identity encoding.
func (c TLBConfig) HashInto(h *resultcache.Hasher) {
	h.WriteString("cache.TLBConfig/v1")
	h.WriteString(c.Name)
	h.WriteInt(c.Entries)
	h.WriteInt(c.Assoc)
	h.WriteInt(c.PageSize)
	h.WriteInt(int(c.Replace))
	h.WriteInt(c.Reserved)
}
