// Package cache implements the simulated cache and TLB models maintained by
// tw_replace() (Table 1) and by the trace-driven Cache2000 baseline.
//
// Because the models live entirely in software, simulated configurations
// are not restricted by the host hardware: caches may be larger or smaller
// than the host's, direct-mapped through fully associative, virtually or
// physically indexed, split or unified, single- or two-level (Section 3.2).
package cache

import (
	"fmt"

	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

// Indexing selects whether the cache is indexed and tagged with virtual or
// physical addresses. The choice matters for measurement variance: a
// physically-indexed cache sees a different conflict pattern every run
// because the OS allocates different page frames (Table 9), while a
// virtually-indexed simulation is exactly repeatable.
type Indexing int

const (
	// PhysIndexed caches are indexed by physical address.
	PhysIndexed Indexing = iota
	// VirtIndexed caches are indexed by (task, virtual address).
	VirtIndexed
)

// String names the indexing mode.
func (i Indexing) String() string {
	if i == VirtIndexed {
		return "virtual"
	}
	return "physical"
}

// Replacement selects the victim-choice policy of a set.
type Replacement int

const (
	// LRU evicts the least recently used line.
	LRU Replacement = iota
	// FIFO evicts the line resident longest.
	FIFO
	// Random evicts a uniformly random line.
	Random
)

// String names the replacement policy.
func (r Replacement) String() string {
	switch r {
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	}
	return "lru"
}

// Config describes one cache (or TLB) structure.
type Config struct {
	Name     string   // for reports; optional
	Size     int      // total capacity in bytes
	LineSize int      // line size in bytes (page size, for a TLB)
	Assoc    int      // ways per set; 0 means fully associative
	Indexing Indexing // virtual or physical
	Replace  Replacement
}

// Validate checks structural constraints and returns a descriptive error.
func (c Config) Validate() error {
	if c.Size <= 0 || c.Size&(c.Size-1) != 0 {
		return fmt.Errorf("cache: size %d must be a positive power of two", c.Size)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a positive power of two", c.LineSize)
	}
	if c.LineSize > c.Size {
		return fmt.Errorf("cache: line size %d exceeds cache size %d", c.LineSize, c.Size)
	}
	lines := c.Size / c.LineSize
	if c.Assoc < 0 || c.Assoc > lines {
		return fmt.Errorf("cache: associativity %d invalid for %d lines", c.Assoc, lines)
	}
	if c.Assoc != 0 && lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	return nil
}

// Lines returns the total number of lines.
func (c Config) Lines() int { return c.Size / c.LineSize }

// Ways returns the effective associativity (fully associative resolves to
// the line count).
func (c Config) Ways() int {
	if c.Assoc == 0 {
		return c.Lines()
	}
	return c.Assoc
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Ways() }

// String summarizes the geometry, e.g. "16K/16B/1-way phys lru".
func (c Config) String() string {
	return fmt.Sprintf("%s/%dB/%d-way %s %s",
		sizeStr(c.Size), c.LineSize, c.Ways(), c.Indexing, c.Replace)
}

func sizeStr(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// Key identifies a cached line: the line-aligned address plus, for
// virtually-indexed caches, the owning task (the tid forms part of the tag,
// per tw_replace in Table 1).
type Key struct {
	Task mem.TaskID
	Addr uint32 // line-aligned address (VA or PA per the cache's indexing)
}

// line is one tag-store entry.
type line struct {
	valid bool
	key   Key
	stamp uint64 // LRU: last use; FIFO: insertion time
}

// Cache is a set-associative simulated cache. The zero value is unusable;
// construct with New.
type Cache struct {
	cfg Config
	// lines is the tag store, sets laid out back to back (set i occupies
	// lines[i*ways : (i+1)*ways]). A flat array spares the per-access
	// slice-header load a [][]line would add in front of every tag probe.
	lines    []line
	ways     int
	lru      bool // cfg.Replace == LRU, hoisted off the hot path
	setMask  uint32
	lineMask uint32
	shift    uint
	tick     uint64
	rnd      *rng.Source // victim choice for Random replacement
	occupied int

	// mru points at the line hit by the most recent Access, exactness-
	// preserving fast path for the common run of consecutive references
	// to one line (sequential fetch) or one page (fully-associative TLBs,
	// which would otherwise scan every way per reference). Overwrites are
	// detected by re-checking validity and key; invalidations clear the
	// line in place, which the same check catches.
	mru *line

	hits   uint64
	misses uint64

	reused bool // tag store recycled from the line pool (see pool.go)
}

// New builds a Cache from cfg. The rnd source is used only by Random
// replacement and may be nil for LRU/FIFO.
func New(cfg Config, rnd *rng.Source) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replace == Random && rnd == nil {
		return nil, fmt.Errorf("cache: Random replacement requires a random source")
	}
	nsets := cfg.Sets()
	lines, reused := getLines(nsets * cfg.Ways())
	return &Cache{
		cfg:      cfg,
		lines:    lines,
		ways:     cfg.Ways(),
		lru:      cfg.Replace == LRU,
		setMask:  uint32(nsets - 1),
		lineMask: ^uint32(cfg.LineSize - 1),
		shift:    log2(uint32(cfg.LineSize)),
		rnd:      rnd,
		reused:   reused,
	}, nil
}

// MustNew is New but panics on configuration error; for tests and tables
// with statically known-good configurations.
func MustNew(cfg Config, rnd *rng.Source) *Cache {
	c, err := New(cfg, rnd)
	if err != nil {
		panic(err)
	}
	return c
}

func log2(x uint32) uint {
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns addr truncated to its line boundary.
func (c *Cache) LineAddr(addr uint32) uint32 { return addr & c.lineMask }

// SetIndex returns the set that addr maps to. Exposed so that Tapeworm's
// set-sampling layer can decide which memory locations belong to a sample
// without consulting the tag store.
func (c *Cache) SetIndex(addr uint32) int {
	return int((addr >> c.shift) & c.setMask)
}

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.cfg.Sets() }

// key builds the tag key for an access. Physically-indexed caches ignore
// the task (physical addresses are system-unique).
func (c *Cache) key(task mem.TaskID, addr uint32) Key {
	k := Key{Addr: addr & c.lineMask}
	if c.cfg.Indexing == VirtIndexed {
		k.Task = task
	}
	return k
}

// set returns the tag-store slice for the set addr maps to.
func (c *Cache) set(addr uint32) []line {
	i := int((addr>>c.shift)&c.setMask) * c.ways
	return c.lines[i : i+c.ways]
}

// Probe reports whether (task, addr) currently hits, without updating
// replacement state or statistics.
func (c *Cache) Probe(task mem.TaskID, addr uint32) bool {
	k := c.key(task, addr)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].key == k {
			return true
		}
	}
	return false
}

// Access simulates one reference by (task, addr). It returns whether the
// reference hit and, on a miss that displaced a valid line, the displaced
// line's key. This is the trace-driven search+replace step of Figure 1;
// Tapeworm calls the same tag store only on misses, via Insert.
func (c *Cache) Access(task mem.TaskID, addr uint32) (hit bool, displaced Key, evicted bool) {
	c.tick++
	k := c.key(task, addr)
	if m := c.mru; m != nil && m.valid && m.key == k {
		if c.lru {
			m.stamp = c.tick
		}
		c.hits++
		return true, Key{}, false
	}
	// Index into the flat tag store directly; building the set sub-slice
	// costs more than the probe itself on the direct-mapped hot path.
	base := int((addr>>c.shift)&c.setMask) * c.ways
	for i := base; i < base+c.ways; i++ {
		l := &c.lines[i]
		if l.valid && l.key == k {
			if c.lru {
				l.stamp = c.tick
			}
			c.mru = l
			c.hits++
			return true, Key{}, false
		}
	}
	c.misses++
	displaced, evicted = c.insert(c.lines[base:base+c.ways], k)
	return false, displaced, evicted
}

// AccessIfHit performs a reference that never allocates: on a hit it
// updates replacement state and statistics exactly as Access does; on a
// miss it leaves the cache untouched — no insertion, no miss count, not
// even a tick. This is the single-lookup form of a probe-then-access pair
// (the no-allocate-on-write store path), which previously searched the
// same set twice.
func (c *Cache) AccessIfHit(task mem.TaskID, addr uint32) bool {
	k := c.key(task, addr)
	if m := c.mru; m != nil && m.valid && m.key == k {
		c.tick++
		if c.lru {
			m.stamp = c.tick
		}
		c.hits++
		return true
	}
	base := int((addr>>c.shift)&c.setMask) * c.ways
	for i := base; i < base+c.ways; i++ {
		l := &c.lines[i]
		if l.valid && l.key == k {
			c.tick++
			if c.lru {
				l.stamp = c.tick
			}
			c.mru = l
			c.hits++
			return true
		}
	}
	return false
}

// NoteHits records n references that are architecturally guaranteed to hit
// without touching the tag store. The caller asserts the references are
// consecutive accesses to a line it just observed resident, with nothing
// else touching the cache in between; under that contract skipping the
// tick and stamp updates cannot change any future eviction decision:
// stamps are compared only for relative order, every stamp assigned later
// is still strictly greater than every stamp assigned earlier (each
// stamping access pre-increments the tick), and within the skipped streak
// no other line's stamp changes while the streak's line remains the most
// recently used in its set. Random replacement draws from its source only
// when an insertion evicts, so the skip consumes no randomness either.
func (c *Cache) NoteHits(n int) { c.hits += uint64(n) }

// Insert places (task, addr) into the cache without a prior search,
// returning any displaced line. This is tw_replace(): Tapeworm already
// knows the reference missed (the trap said so), so no search is needed.
// Inserting an already-resident line is a no-op that refreshes its stamp.
func (c *Cache) Insert(task mem.TaskID, addr uint32) (displaced Key, evicted bool) {
	c.tick++
	k := c.key(task, addr)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].key == k {
			if c.lru {
				set[i].stamp = c.tick
			}
			return Key{}, false
		}
	}
	c.misses++
	return c.insert(set, k)
}

// insert fills an invalid way or evicts a victim per the policy.
func (c *Cache) insert(set []line, k Key) (displaced Key, evicted bool) {
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Replace {
		case Random:
			victim = c.rnd.Intn(len(set))
		default: // LRU and FIFO both evict the minimum stamp
			victim = 0
			for i := 1; i < len(set); i++ {
				if set[i].stamp < set[victim].stamp {
					victim = i
				}
			}
		}
		displaced, evicted = set[victim].key, true
	} else {
		c.occupied++
	}
	set[victim] = line{valid: true, key: k, stamp: c.tick}
	return displaced, evicted
}

// Invalidate removes the line holding (task, addr) if present, returning
// whether a line was removed. Used by tw_remove_page-driven flushes.
func (c *Cache) Invalidate(task mem.TaskID, addr uint32) bool {
	k := c.key(task, addr)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].key == k {
			set[i] = line{}
			c.occupied--
			return true
		}
	}
	return false
}

// InvalidateRange removes every line in [addr, addr+size) for task,
// returning the keys removed. tw_remove_page uses this to flush an
// unmapped page from the simulated cache.
func (c *Cache) InvalidateRange(task mem.TaskID, addr uint32, size int) []Key {
	var removed []Key
	first := c.LineAddr(addr)
	for a := first; a < addr+uint32(size); a += uint32(c.cfg.LineSize) {
		k := c.key(task, a)
		set := c.set(a)
		for i := range set {
			if set[i].valid && set[i].key == k {
				removed = append(removed, set[i].key)
				set[i] = line{}
				c.occupied--
			}
		}
	}
	return removed
}

// InvalidateTask removes every line belonging to task (virtually-indexed
// caches only; physically-indexed caches do not tag by task). Returns the
// removed keys.
func (c *Cache) InvalidateTask(task mem.TaskID) []Key {
	var removed []Key
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid && l.key.Task == task {
			removed = append(removed, l.key)
			*l = line{}
			c.occupied--
		}
	}
	return removed
}

// Flush empties the cache entirely.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.occupied = 0
}

// Len returns the number of valid lines currently cached.
func (c *Cache) Len() int { return c.occupied }

// Stats returns cumulative hit and miss counts. Note that for a Cache used
// by Tapeworm via Insert, the "miss" count equals the insert count and
// there are no recorded hits (hits never reach the simulator — that is the
// entire point of trap-driven simulation).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the hit/miss counters without touching contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Keys returns the keys of all valid lines, for invariant checks in tests.
func (c *Cache) Keys() []Key {
	out := make([]Key, 0, c.occupied)
	for i := range c.lines {
		if c.lines[i].valid {
			out = append(out, c.lines[i].key)
		}
	}
	return out
}
