package cache

import (
	"fmt"

	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

// TLBConfig describes a simulated translation lookaside buffer. The first
// generation of Tapeworm was exactly this simulator, intercepting the
// R2000's software-managed TLB miss handlers [Nagle93, Uhlig94a]; Tapeworm
// II retains the capability with page-valid-bit traps.
type TLBConfig struct {
	Name     string
	Entries  int         // total entries
	Assoc    int         // ways; 0 = fully associative (the R3000 TLB is)
	PageSize int         // bytes mapped per entry
	Replace  Replacement // R3000 uses random via the hardware index register
	Reserved int         // low entries wired for the kernel (R3000: 8)
}

// Validate checks structural constraints.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("tlb: entry count %d must be a positive power of two", c.Entries)
	}
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("tlb: page size %d must be a positive power of two", c.PageSize)
	}
	if c.Assoc < 0 || c.Assoc > c.Entries {
		return fmt.Errorf("tlb: associativity %d invalid for %d entries", c.Assoc, c.Entries)
	}
	if c.Assoc != 0 && c.Entries%c.Assoc != 0 {
		return fmt.Errorf("tlb: %d entries not divisible by associativity %d", c.Entries, c.Assoc)
	}
	if c.Reserved < 0 || c.Reserved >= c.Entries {
		return fmt.Errorf("tlb: reserved count %d out of range", c.Reserved)
	}
	return nil
}

// R3000TLB returns the configuration of the MIPS R3000's TLB: 64 entries,
// fully associative, 4 KB pages, random replacement among the unwired
// entries, 8 entries wired for the kernel.
func R3000TLB() TLBConfig {
	return TLBConfig{
		Name: "R3000", Entries: 64, Assoc: 0, PageSize: 4096,
		Replace: Random, Reserved: 8,
	}
}

// TLB is a simulated translation lookaside buffer. Mechanically it is a
// cache whose "line size" is the page size and whose keys are (task,
// virtual page number); it is separate from Cache because TLBs have
// wired/reserved entries and are consulted by virtual address only.
type TLB struct {
	cfg   TLBConfig
	inner *Cache
	wired map[Key]bool // pages pinned in reserved entries

	hits   uint64
	misses uint64
}

// NewTLB builds a TLB from cfg.
func NewTLB(cfg TLBConfig, rnd *rng.Source) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := New(Config{
		Name:     cfg.Name,
		Size:     cfg.Entries * cfg.PageSize,
		LineSize: cfg.PageSize,
		Assoc:    cfg.Assoc,
		Indexing: VirtIndexed,
		Replace:  cfg.Replace,
	}, rnd)
	if err != nil {
		return nil, err
	}
	return &TLB{cfg: cfg, inner: inner, wired: make(map[Key]bool)}, nil
}

// MustNewTLB is NewTLB but panics on configuration error.
func MustNewTLB(cfg TLBConfig, rnd *rng.Source) *TLB {
	t, err := NewTLB(cfg, rnd)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

func (t *TLB) pageAddr(va mem.VAddr) uint32 {
	return uint32(va) &^ uint32(t.cfg.PageSize-1)
}

// Probe reports whether a translation for (task, va) is resident.
func (t *TLB) Probe(task mem.TaskID, va mem.VAddr) bool {
	return t.inner.Probe(task, t.pageAddr(va))
}

// Access simulates one translation. On a miss the mapping is inserted and
// any displaced mapping returned; wired mappings are never displaced (they
// are re-inserted immediately, evicting the next victim).
func (t *TLB) Access(task mem.TaskID, va mem.VAddr) (hit bool, displaced Key, evicted bool) {
	hit, displaced, evicted = t.inner.Access(task, t.pageAddr(va))
	if hit {
		t.hits++
		return hit, Key{}, false
	}
	t.misses++
	for evicted && t.wired[displaced] {
		// The victim was a wired entry; put it back and evict another.
		displaced, evicted = t.inner.Insert(displaced.Task, displaced.Addr)
	}
	return hit, displaced, evicted
}

// NoteHits records n translations that are guaranteed to hit without
// consulting the tag store, under the same contract as Cache.NoteHits:
// consecutive references to a mapping the caller just observed resident,
// with no intervening TLB activity. Both the TLB's and the inner store's
// hit counters advance so Stats stays exact.
func (t *TLB) NoteHits(n int) {
	t.hits += uint64(n)
	t.inner.hits += uint64(n)
}

// Insert is the tw_replace path: the miss is already known (a page-valid
// trap fired), so insert without searching. Returns the displaced mapping.
func (t *TLB) Insert(task mem.TaskID, va mem.VAddr) (displaced Key, evicted bool) {
	t.misses++
	displaced, evicted = t.inner.Insert(task, t.pageAddr(va))
	for evicted && t.wired[displaced] {
		displaced, evicted = t.inner.Insert(displaced.Task, displaced.Addr)
	}
	return displaced, evicted
}

// Wire pins the translation for (task, va), inserting it if necessary.
// Wired translations model the R3000's reserved kernel entries. Wiring
// more pages than Reserved allows is an error.
func (t *TLB) Wire(task mem.TaskID, va mem.VAddr) error {
	k := Key{Task: task, Addr: t.pageAddr(va)}
	if t.wired[k] {
		return nil
	}
	if len(t.wired) >= t.cfg.Reserved {
		return fmt.Errorf("tlb: all %d reserved entries wired", t.cfg.Reserved)
	}
	t.inner.Insert(task, t.pageAddr(va))
	t.wired[k] = true
	return nil
}

// InvalidateTask drops all translations for task (e.g., at task exit).
func (t *TLB) InvalidateTask(task mem.TaskID) []Key {
	removed := t.inner.InvalidateTask(task)
	for _, k := range removed {
		delete(t.wired, k)
	}
	return removed
}

// InvalidatePage drops the translation of the page at va for task.
func (t *TLB) InvalidatePage(task mem.TaskID, va mem.VAddr) bool {
	k := Key{Task: task, Addr: t.pageAddr(va)}
	delete(t.wired, k)
	return t.inner.Invalidate(task, t.pageAddr(va))
}

// Flush empties the TLB (e.g., on a full context-switch flush policy).
func (t *TLB) Flush() {
	t.inner.Flush()
	t.wired = make(map[Key]bool)
}

// Len returns the number of resident translations.
func (t *TLB) Len() int { return t.inner.Len() }

// Stats returns cumulative hit and miss counts.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// ResetStats zeroes the counters without touching contents.
func (t *TLB) ResetStats() { t.hits, t.misses = 0, 0 }

// Keys lists resident translations for invariant checks.
func (t *TLB) Keys() []Key { return t.inner.Keys() }

// SetIndex returns the TLB set a virtual address maps to; set-sampling
// layers use it to decide sample membership without touching the store.
func (t *TLB) SetIndex(va mem.VAddr) int { return t.inner.SetIndex(t.pageAddr(va)) }

// SetCount returns the number of sets (1 for a fully-associative TLB).
func (t *TLB) SetCount() int { return t.inner.NumSets() }
