// Package stats provides the descriptive statistics used by the paper's
// evaluation tables: per-trial-set mean, standard deviation, minimum,
// maximum and range, each optionally expressed as a percentage of (or
// percent difference from) the mean, exactly as in Tables 7–10.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a set of experimental trials.
type Summary struct {
	N      int     // number of trials
	Mean   float64 // arithmetic mean
	Stddev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Range  float64 // Max - Min
}

// Summarize computes a Summary of xs. It panics if xs is empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty slice")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Range = s.Max - s.Min
	return s
}

// StddevPct returns the standard deviation as a percentage of the mean
// (the parenthesized numbers in Table 7). Returns 0 for a zero mean.
func (s Summary) StddevPct() float64 { return pctOf(s.Stddev, s.Mean) }

// MinPct returns the percent difference of the minimum from the mean.
func (s Summary) MinPct() float64 { return pctOf(s.Mean-s.Min, s.Mean) }

// MaxPct returns the percent difference of the maximum from the mean.
func (s Summary) MaxPct() float64 { return pctOf(s.Max-s.Mean, s.Mean) }

// RangePct returns the range as a percentage of the mean.
func (s Summary) RangePct() float64 { return pctOf(s.Range, s.Mean) }

func pctOf(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * x / base
}

// String formats the summary in the style of the paper's variance tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g s=%.4g (%.0f%%) min=%.4g max=%.4g range=%.4g (%.0f%%)",
		s.N, s.Mean, s.Stddev, s.StddevPct(), s.Min, s.Max, s.Range, s.RangePct())
}

// Median returns the median of xs. It panics if xs is empty.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// ConfidenceInterval95 returns the half-width of a 95% confidence interval
// for the mean, using Student's t critical values for small trial counts.
// Tapeworm experiments require multiple trials because trap-driven
// simulation is sensitive to real system variation (Section 4.2); the
// interval quantifies how many trials are enough.
func ConfidenceInterval95(s Summary) float64 {
	if s.N < 2 {
		return math.Inf(1)
	}
	return tCrit95(s.N-1) * s.Stddev / math.Sqrt(float64(s.N))
}

// tCrit95 returns the two-sided 95% Student's t critical value for the
// given degrees of freedom. Values above 30 use the normal approximation.
func tCrit95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
		2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}

// RatioEstimate scales a sampled count up to a full-population estimate.
// With 1/k set sampling, the observed miss count estimates total misses as
// observed*k ([Kessler91, Puzak85]); this helper centralizes the arithmetic
// so experiments cannot disagree about it.
func RatioEstimate(observed float64, sampledFraction float64) float64 {
	if sampledFraction <= 0 || sampledFraction > 1 {
		panic("stats: sampled fraction must be in (0, 1]")
	}
	return observed / sampledFraction
}

// PercentIncrease returns the percent increase of x over base, the metric
// of Figure 4 (miss increase due to time dilation). Returns 0 for base 0.
func PercentIncrease(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (x - base) / base
}
