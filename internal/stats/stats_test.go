package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Sample stddev with n-1: variance = 32/7.
	if !almost(s.Stddev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Stddev = %v", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 || s.Range != 7 {
		t.Errorf("min/max/range = %v/%v/%v", s.Min, s.Max, s.Range)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Stddev != 0 || s.Range != 0 || s.Mean != 3.5 {
		t.Errorf("single-element summary wrong: %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestPercentsMatchPaperStyle(t *testing.T) {
	// Table 7 expresses s and Range as % of mean, min/max as % difference
	// from mean. Construct data where those are exact.
	s := Summarize([]float64{50, 150}) // mean 100, range 100
	if !almost(s.RangePct(), 100, 1e-9) {
		t.Errorf("RangePct = %v", s.RangePct())
	}
	if !almost(s.MinPct(), 50, 1e-9) {
		t.Errorf("MinPct = %v", s.MinPct())
	}
	if !almost(s.MaxPct(), 50, 1e-9) {
		t.Errorf("MaxPct = %v", s.MaxPct())
	}
}

func TestZeroMeanPercents(t *testing.T) {
	s := Summarize([]float64{0, 0, 0})
	if s.StddevPct() != 0 || s.RangePct() != 0 {
		t.Error("percent-of-zero-mean should be 0")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	// Median must not reorder the caller's slice.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its argument")
	}
}

func TestConfidenceInterval(t *testing.T) {
	s := Summarize([]float64{10, 12, 14, 16})
	ci := ConfidenceInterval95(s)
	// s = sqrt(20/3) ≈ 2.582; t(3) = 3.182; ci = 3.182*2.582/2 ≈ 4.108.
	if !almost(ci, 4.108, 0.01) {
		t.Errorf("ci = %v", ci)
	}
	if !math.IsInf(ConfidenceInterval95(Summarize([]float64{1})), 1) {
		t.Error("single-trial CI should be infinite")
	}
}

func TestTCritMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		v := tCrit95(df)
		if v > prev {
			t.Fatalf("tCrit95 not nonincreasing at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if tCrit95(1000) != 1.960 {
		t.Error("large-df tCrit should be 1.960")
	}
}

func TestRatioEstimate(t *testing.T) {
	// 1/8 set sampling scales observed misses by 8 (Section 3.2).
	if got := RatioEstimate(100, 1.0/8); got != 800 {
		t.Errorf("RatioEstimate = %v", got)
	}
	if got := RatioEstimate(42, 1); got != 42 {
		t.Errorf("full-sample estimate = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on fraction > 1")
		}
	}()
	RatioEstimate(1, 1.5)
}

func TestPercentIncrease(t *testing.T) {
	if got := PercentIncrease(103.57, 90.56); !almost(got, 14.365, 0.01) {
		t.Errorf("Figure 4 bottom row: %v", got) // paper reports 14.4%
	}
	if PercentIncrease(5, 0) != 0 {
		t.Error("zero base should yield 0")
	}
}

func TestSummaryInvariantsQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-6 || s.Mean > s.Max+1e-6 {
			return false
		}
		if s.Stddev < 0 || s.Range < 0 {
			return false
		}
		return almost(s.Range, s.Max-s.Min, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
