package stackdist

import (
	"testing"
	"testing/quick"

	"tapeworm/internal/cache"
	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
	"tapeworm/internal/trace"
)

func entry(va uint32) trace.Entry {
	return trace.Entry{VA: mem.VAddr(va), Kind: mem.IFetch}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{LineSize: 16, NumSets: 64}).Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{LineSize: 0, NumSets: 1},
		{LineSize: 24, NumSets: 1},
		{LineSize: 16, NumSets: 0},
		{LineSize: 16, NumSets: 3},
		{LineSize: 16, NumSets: 4, MaxTrackedDepth: -1},
	}
	for i, c := range bads {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDistances(t *testing.T) {
	// Fully-associative family, 16-byte lines.
	s := MustNew(Config{LineSize: 16, NumSets: 1})
	addrs := []uint32{0x00, 0x10, 0x20, 0x00, 0x10, 0x00}
	// Distances:  comp, comp, comp,  d2,   d2,   d1
	for _, a := range addrs {
		s.Process(entry(a))
	}
	if s.Compulsory() != 3 {
		t.Fatalf("compulsory = %d", s.Compulsory())
	}
	h := s.Histogram()
	if h[1] != 1 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
	// 1-line cache: only the last (d1=... wait d1 means second position)
	// misses at ways<=d. MissesAt(1): refs with distance>=1 (3) + comp (3).
	if got := s.MissesAt(1); got != 6 {
		t.Fatalf("MissesAt(1) = %d", got)
	}
	if got := s.MissesAt(2); got != 5 {
		t.Fatalf("MissesAt(2) = %d", got)
	}
	if got := s.MissesAt(3); got != 3 {
		t.Fatalf("MissesAt(3) = %d (only compulsory)", got)
	}
	if got := s.MissesAt(0); got != s.Refs() {
		t.Fatalf("MissesAt(0) = %d", got)
	}
}

// TestSinglePassMatchesPerConfigSimulation is the defining property of
// stack algorithms: one pass must equal N separate LRU simulations.
func TestSinglePassMatchesPerConfigSimulation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const numSets = 8
		var refs []trace.Entry
		for i := 0; i < 4000; i++ {
			// Localized stream so all distances are exercised.
			base := uint32(r.Intn(64)) * 16
			if r.Bool(0.2) {
				base += uint32(r.Intn(1<<12)) &^ 15
			}
			refs = append(refs, entry(base))
		}

		s := MustNew(Config{LineSize: 16, NumSets: numSets})
		for _, e := range refs {
			s.Process(e)
		}

		for _, ways := range []int{1, 2, 4, 8} {
			c := cache.MustNew(cache.Config{
				Size:     numSets * ways * 16,
				LineSize: 16,
				Assoc:    ways,
			}, nil)
			var misses uint64
			for _, e := range refs {
				if hit, _, _ := c.Access(0, uint32(e.VA)); !hit {
					misses++
				}
			}
			if s.MissesAt(ways) != misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCurveMonotone(t *testing.T) {
	r := rng.New(5)
	s := MustNew(Config{LineSize: 16, NumSets: 16})
	for i := 0; i < 20000; i++ {
		s.Process(entry(uint32(r.Intn(1 << 14))))
	}
	curve := s.Curve(32)
	if len(curve) != 32 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Misses > curve[i-1].Misses {
			t.Fatalf("inclusion violated: %d ways misses %d > %d ways misses %d",
				curve[i].Ways, curve[i].Misses, curve[i-1].Ways, curve[i-1].Misses)
		}
		if curve[i].CapacityBytes != (i+1)*16*16 {
			t.Fatalf("capacity at %d ways = %d", i+1, curve[i].CapacityBytes)
		}
	}
}

func TestBoundedDepth(t *testing.T) {
	s := MustNew(Config{LineSize: 16, NumSets: 1, MaxTrackedDepth: 4})
	// Touch 8 lines, then re-touch the first: its distance (7) exceeds
	// the bound, so it must be counted as deep, not compulsory.
	for i := 0; i < 8; i++ {
		s.Process(entry(uint32(i * 16)))
	}
	s.Process(entry(0))
	if s.Compulsory() != 8 {
		t.Fatalf("compulsory = %d, want 8", s.Compulsory())
	}
	if s.Deeper() != 1 {
		t.Fatalf("deep = %d, want 1", s.Deeper())
	}
	// Deep reuses miss at every tracked associativity.
	if got := s.MissesAt(4); got != 9 {
		t.Fatalf("MissesAt(4) = %d, want 9", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ways beyond the bound should panic")
		}
	}()
	s.MissesAt(5)
}

func TestRunAndRatio(t *testing.T) {
	var buf trace.Buffer
	for i := 0; i < 100; i++ {
		buf.Append(entry(uint32(i%4) * 16))
	}
	s := MustNew(Config{LineSize: 16, NumSets: 1})
	s.Run(&buf)
	if s.Refs() != 100 {
		t.Fatalf("refs = %d", s.Refs())
	}
	if got := s.MissRatioAt(4); got != 0.04 { // 4 compulsory
		t.Fatalf("ratio = %v", got)
	}
	if (&Simulator{}).MissRatioAt(1) != 0 {
		t.Fatal("empty simulator ratio should be 0")
	}
}
