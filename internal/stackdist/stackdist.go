// Package stackdist implements single-pass (stack-algorithm) trace-driven
// simulation [Mattson70, Thompson89, Sugumar93], the technique the paper's
// Figure 1 caption contrasts with both the plain trace-driven loop and
// Tapeworm's trap-driven loop.
//
// For LRU caches with a fixed line size and set count, one pass over a
// trace yields the miss count of *every* associativity at once: a
// reference's LRU stack distance within its set is the smallest
// associativity for which it hits. With one set, this generalizes to every
// fully-associative capacity. This flexibility is exactly what trap-driven
// simulation gives up — Tapeworm simulates one configuration per run,
// trading configuration coverage for speed on long workloads.
package stackdist

import (
	"fmt"

	"tapeworm/internal/trace"
)

// Config fixes the line size and set count shared by the cache family
// under study. NumSets == 1 studies fully-associative caches of every
// capacity; larger set counts study the associativity family (1-way,
// 2-way, ... at the same set count).
type Config struct {
	LineSize int
	NumSets  int
	// MaxTrackedDepth bounds the per-set stacks (and hence memory) for
	// enormous traces; distances beyond it are recorded as "deeper".
	// Zero means unbounded.
	MaxTrackedDepth int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("stackdist: line size %d must be a positive power of two", c.LineSize)
	}
	if c.NumSets <= 0 || c.NumSets&(c.NumSets-1) != 0 {
		return fmt.Errorf("stackdist: set count %d must be a positive power of two", c.NumSets)
	}
	if c.MaxTrackedDepth < 0 {
		return fmt.Errorf("stackdist: negative depth bound")
	}
	return nil
}

// Simulator accumulates the stack-distance histogram of a reference
// stream in a single pass.
type Simulator struct {
	cfg   Config
	shift uint
	mask  uint32

	// stacks[s] holds the lines of set s in LRU order, most recent first.
	stacks [][]uint32

	hist       []uint64 // hist[d]: references with stack distance d
	deep       uint64   // distances beyond MaxTrackedDepth
	compulsory uint64   // first-ever references (infinite distance)
	refs       uint64

	// Window accumulators mirror the run-total counters but reset on
	// ResetWindow. The LRU stacks themselves are never reset: a reuse
	// distance is a property of the whole stream, so a window observes
	// distances that reach back across its start (exactly what an interval
	// slicer wants — the cache state at an interval boundary is inherited,
	// not cold).
	winHist       []uint64
	winDeep       uint64
	winCompulsory uint64
	winRefs       uint64

	// seen records every line ever touched, so that reuse of a line
	// evicted from a bounded stack is classified as "deeper than the
	// bound" rather than compulsory. Nil when the stacks are unbounded.
	seen map[uint32]struct{}
}

// New builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var shift uint
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	s := &Simulator{
		cfg:    cfg,
		shift:  shift,
		mask:   uint32(cfg.NumSets - 1),
		stacks: make([][]uint32, cfg.NumSets),
	}
	if cfg.MaxTrackedDepth > 0 {
		s.seen = make(map[uint32]struct{})
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Simulator {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Process records one reference.
func (s *Simulator) Process(e trace.Entry) {
	s.refs++
	s.winRefs++
	line := uint32(e.VA) >> s.shift
	set := int(line & s.mask)
	stack := s.stacks[set]

	// Find the line's depth in its set's LRU stack.
	for d, l := range stack {
		if l == line {
			// Move to front.
			copy(stack[1:d+1], stack[:d])
			stack[0] = line
			for len(s.hist) <= d {
				s.hist = append(s.hist, 0)
			}
			s.hist[d]++
			for len(s.winHist) <= d {
				s.winHist = append(s.winHist, 0)
			}
			s.winHist[d]++
			return
		}
	}
	// Not in the tracked stack: a true first touch is compulsory; reuse
	// of a line dropped from a bounded stack has distance beyond the
	// bound and is recorded as "deeper".
	if s.seen != nil {
		if _, reuse := s.seen[line]; reuse {
			s.deep++
			s.winDeep++
		} else {
			s.seen[line] = struct{}{}
			s.compulsory++
			s.winCompulsory++
		}
		if len(stack) >= s.cfg.MaxTrackedDepth {
			stack = stack[:len(stack)-1] // drop the deepest entry
		}
	} else {
		s.compulsory++
		s.winCompulsory++
	}
	s.stacks[set] = append([]uint32{line}, stack...)
}

// Deeper reports how many reuses fell beyond a bounded stack's tracked
// depth; they miss in every cache of the family up to that depth. With an
// unbounded stack, Deeper is always zero.
func (s *Simulator) Deeper() uint64 { return s.deep }

// Run processes an entire trace buffer.
func (s *Simulator) Run(b *trace.Buffer) {
	for _, e := range b.Entries() {
		s.Process(e)
	}
}

// Refs returns the number of references processed.
func (s *Simulator) Refs() uint64 { return s.refs }

// Compulsory returns the number of first-touch references.
func (s *Simulator) Compulsory() uint64 { return s.compulsory }

// Histogram returns the stack-distance counts: Histogram()[d] is the
// number of references that hit at depth d (0 = most recently used).
func (s *Simulator) Histogram() []uint64 {
	out := make([]uint64, len(s.hist))
	copy(out, s.hist)
	return out
}

// MissesAt returns the miss count for an LRU cache of the family with the
// given associativity (ways per set): every reference with stack distance
// >= ways misses, plus all compulsory references. With a bounded stack,
// reuses beyond the bound also miss in every cache up to the bound; asking
// about ways beyond MaxTrackedDepth then overestimates and is rejected.
func (s *Simulator) MissesAt(ways int) uint64 {
	if ways <= 0 {
		return s.refs
	}
	if s.cfg.MaxTrackedDepth > 0 && ways > s.cfg.MaxTrackedDepth {
		panic(fmt.Sprintf("stackdist: %d ways exceeds tracked depth %d",
			ways, s.cfg.MaxTrackedDepth))
	}
	misses := s.compulsory + s.deep
	for d := ways; d < len(s.hist); d++ {
		misses += s.hist[d]
	}
	return misses
}

// MissRatioAt returns MissesAt(ways) over total references.
func (s *Simulator) MissRatioAt(ways int) float64 {
	if s.refs == 0 {
		return 0
	}
	return float64(s.MissesAt(ways)) / float64(s.refs)
}

// Curve returns (capacityBytes, misses) pairs for the whole family in one
// shot: entry i is the cache of i+1 ways per set.
func (s *Simulator) Curve(maxWays int) []CurvePoint {
	out := make([]CurvePoint, 0, maxWays)
	for w := 1; w <= maxWays; w++ {
		out = append(out, CurvePoint{
			CapacityBytes: w * s.cfg.NumSets * s.cfg.LineSize,
			Ways:          w,
			Misses:        s.MissesAt(w),
		})
	}
	return out
}

// CurvePoint is one cache of the family.
type CurvePoint struct {
	CapacityBytes int
	Ways          int
	Misses        uint64
}

// --- Windowed accumulation ---

// WindowStats is a frozen snapshot of the references processed since the
// last ResetWindow (or since construction). Distances are measured
// against the full-stream LRU stacks: a reference that reuses a line last
// touched before the window still hits at its true depth, so a window's
// histogram reflects the cache state the window *inherits* — the right
// semantics for slicing one stream into intervals.
type WindowStats struct {
	Refs       uint64
	Compulsory uint64 // first touches of the whole stream, not the window
	Deeper     uint64
	Histogram  []uint64

	maxTracked int
}

// Window snapshots the current window's counters without resetting them.
func (s *Simulator) Window() WindowStats {
	hist := make([]uint64, len(s.winHist))
	copy(hist, s.winHist)
	return WindowStats{
		Refs:       s.winRefs,
		Compulsory: s.winCompulsory,
		Deeper:     s.winDeep,
		Histogram:  hist,
		maxTracked: s.cfg.MaxTrackedDepth,
	}
}

// ResetWindow starts a new window: counters zero, LRU stacks untouched.
func (s *Simulator) ResetWindow() {
	for i := range s.winHist {
		s.winHist[i] = 0
	}
	s.winDeep, s.winCompulsory, s.winRefs = 0, 0, 0
}

// MissesAt is Simulator.MissesAt restricted to the window's references.
func (w WindowStats) MissesAt(ways int) uint64 {
	if ways <= 0 {
		return w.Refs
	}
	if w.maxTracked > 0 && ways > w.maxTracked {
		panic(fmt.Sprintf("stackdist: %d ways exceeds tracked depth %d", ways, w.maxTracked))
	}
	misses := w.Compulsory + w.Deeper
	for d := ways; d < len(w.Histogram); d++ {
		misses += w.Histogram[d]
	}
	return misses
}

// MissRatioAt returns MissesAt(ways) over the window's references.
func (w WindowStats) MissRatioAt(ways int) float64 {
	if w.Refs == 0 {
		return 0
	}
	return float64(w.MissesAt(ways)) / float64(w.Refs)
}
