package stackdist

import (
	"testing"

	"tapeworm/internal/rng"
)

func TestWindowPartitionsTotals(t *testing.T) {
	// Window counters must partition the run totals exactly: summing the
	// per-window histograms/compulsory/deep over any window boundaries
	// reproduces the single-shot run.
	r := rng.New(7)
	s := MustNew(Config{LineSize: 16, NumSets: 4, MaxTrackedDepth: 32})
	whole := MustNew(Config{LineSize: 16, NumSets: 4, MaxTrackedDepth: 32})

	var refs uint64
	sum := WindowStats{}
	addHist := func(dst *[]uint64, h []uint64) {
		for len(*dst) < len(h) {
			*dst = append(*dst, 0)
		}
		for d, n := range h {
			(*dst)[d] += n
		}
	}
	for win := 0; win < 5; win++ {
		n := 500 + win*137 // uneven window lengths
		for i := 0; i < n; i++ {
			e := entry(uint32(r.Intn(1 << 11)) &^ 15)
			s.Process(e)
			whole.Process(e)
			refs++
		}
		w := s.Window()
		if w.Refs != uint64(n) {
			t.Fatalf("window %d refs = %d, want %d", win, w.Refs, n)
		}
		sum.Refs += w.Refs
		sum.Compulsory += w.Compulsory
		sum.Deeper += w.Deeper
		addHist(&sum.Histogram, w.Histogram)
		s.ResetWindow()
	}

	if sum.Refs != whole.Refs() || sum.Compulsory != whole.Compulsory() || sum.Deeper != whole.Deeper() {
		t.Fatalf("window sums (refs %d, comp %d, deep %d) != whole-run (%d, %d, %d)",
			sum.Refs, sum.Compulsory, sum.Deeper, whole.Refs(), whole.Compulsory(), whole.Deeper())
	}
	wh := whole.Histogram()
	addHist(&sum.Histogram, nil) // no-op; keeps lengths comparable below
	if len(sum.Histogram) != len(wh) {
		t.Fatalf("summed histogram has %d bins, whole-run %d", len(sum.Histogram), len(wh))
	}
	for d := range wh {
		if sum.Histogram[d] != wh[d] {
			t.Fatalf("bin %d: windows sum to %d, whole-run %d", d, sum.Histogram[d], wh[d])
		}
	}
}

func TestWindowInheritsStackState(t *testing.T) {
	// A reuse whose previous touch happened before the window must hit at
	// its true depth, not count as a window-local first touch.
	s := MustNew(Config{LineSize: 16, NumSets: 1})
	s.Process(entry(0x00))
	s.Process(entry(0x10))
	s.ResetWindow()
	s.Process(entry(0x00)) // distance 1, across the boundary

	w := s.Window()
	if w.Refs != 1 || w.Compulsory != 0 {
		t.Fatalf("window = %+v; reuse across the boundary misclassified", w)
	}
	if len(w.Histogram) < 2 || w.Histogram[1] != 1 {
		t.Fatalf("histogram = %v, want the one reference at depth 1", w.Histogram)
	}
	if got := w.MissesAt(1); got != 1 {
		t.Fatalf("MissesAt(1) = %d, want 1 (depth 1 misses in a 1-way cache)", got)
	}
	if got := w.MissesAt(2); got != 0 {
		t.Fatalf("MissesAt(2) = %d, want 0", got)
	}
	if got := w.MissRatioAt(2); got != 0 {
		t.Fatalf("MissRatioAt(2) = %v", got)
	}
}

func TestWindowSnapshotIsolated(t *testing.T) {
	// Window() must return a copy: later Process calls and ResetWindow may
	// not mutate an already-taken snapshot.
	s := MustNew(Config{LineSize: 16, NumSets: 1})
	s.Process(entry(0x00))
	s.Process(entry(0x00))
	w := s.Window()
	s.Process(entry(0x00))
	s.ResetWindow()
	if w.Refs != 2 || len(w.Histogram) != 1 || w.Histogram[0] != 1 {
		t.Fatalf("snapshot mutated: %+v", w)
	}
}

func TestWindowDeepAndBounds(t *testing.T) {
	s := MustNew(Config{LineSize: 16, NumSets: 1, MaxTrackedDepth: 2})
	for i := 0; i < 4; i++ {
		s.Process(entry(uint32(i * 16)))
	}
	s.ResetWindow()
	s.Process(entry(0x00)) // dropped from the bounded stack: deep, not compulsory
	w := s.Window()
	if w.Deeper != 1 || w.Compulsory != 0 {
		t.Fatalf("window = %+v; want one deep reuse", w)
	}
	if got := w.MissesAt(2); got != 1 {
		t.Fatalf("MissesAt(2) = %d", got)
	}
	if got := w.MissesAt(0); got != w.Refs {
		t.Fatalf("MissesAt(0) = %d, want refs %d", got, w.Refs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ways beyond the bound should panic for windows too")
		}
	}()
	w.MissesAt(3)
}

func TestWindowEmpty(t *testing.T) {
	s := MustNew(Config{LineSize: 16, NumSets: 1})
	w := s.Window()
	if w.Refs != 0 || w.MissesAt(4) != 0 || w.MissRatioAt(4) != 0 {
		t.Fatalf("empty window not zero: %+v", w)
	}
}
