// Package phase slices a compiled workload's user-instruction stream into
// fixed-length intervals, fingerprints each interval, clusters the
// fingerprints into phases, and picks one representative interval per
// phase with the weight of the instructions it stands for — the planning
// half of representative-interval simulation (SimPoint-style sampling
// grafted onto the paper's trap-driven simulator).
//
// Everything here is offline: the analysis walks the pre-compiled op tree
// (workload.PlannedOps) without booting a kernel, approximating the
// kernel's round-robin interleave with a fixed 64-instruction quantum.
// Interval *boundaries* need no approximation — they are positions on the
// retired-user-instruction axis, which the replayer locates exactly with
// kernel.RunUntilUser. Only the per-interval feature vectors are
// approximate, and they are used solely to decide which intervals look
// alike; simulation results always come from replaying real intervals on
// the real kernel.
//
// The analysis is deterministic: a fixed (spec, seed, Config) always
// produces the same Plan. Clustering uses seeded k-means with
// lowest-index tie-breaking; no map iteration order leaks into the
// result.
package phase

import (
	"fmt"
	"sort"

	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
	"tapeworm/internal/stackdist"
	"tapeworm/internal/trace"
	"tapeworm/internal/workload"
)

// Config shapes the analysis.
type Config struct {
	// Intervals is how many intervals to cut the stream into; the
	// interval length is the stream's user-instruction total divided by
	// this, rounded up.
	Intervals int
	// K is the number of phases (clusters) to detect. Clamped to the
	// interval count when the stream is short.
	K int
	// Seed drives k-means initialization. Folding the workload seed in is
	// the caller's choice; the default experiment path uses the run seed
	// so the whole pipeline stays a pure function of the run identity.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Intervals <= 0 {
		return fmt.Errorf("phase: interval count %d must be positive", c.Intervals)
	}
	if c.K <= 0 {
		return fmt.Errorf("phase: phase count %d must be positive", c.K)
	}
	if c.K > c.Intervals {
		return fmt.Errorf("phase: %d phases cannot exceed %d intervals", c.K, c.Intervals)
	}
	return nil
}

// Interval is one fixed-length slice of the user-instruction stream:
// [Start, End) on the retired-user-instruction axis. The final interval
// may be short.
type Interval struct {
	Index      int
	Start, End uint64
}

// Len returns the interval's user-instruction mass.
func (iv Interval) Len() uint64 { return iv.End - iv.Start }

// Representative is the interval chosen to stand for one phase, with the
// total mass of the intervals it represents.
type Representative struct {
	Interval
	Cluster int
	// Mass is the summed user-instruction length of every interval in the
	// cluster; Mass/Plan.TotalUser is the extrapolation weight.
	Mass uint64
}

// Plan is the output of Analyze: which intervals exist, which phase each
// belongs to, and the representative to replay per phase.
type Plan struct {
	TotalUser   uint64
	IntervalLen uint64
	// Assign maps interval index to cluster.
	Assign []int
	// Reps holds one representative per cluster, ordered by ascending
	// interval index (replay order).
	Reps []Representative
}

// NumIntervals returns how many intervals the stream was cut into.
func (p Plan) NumIntervals() int { return len(p.Assign) }

// Weight returns rep's extrapolation weight in [0, 1].
func (p Plan) Weight(rep Representative) float64 {
	if p.TotalUser == 0 {
		return 0
	}
	return float64(rep.Mass) / float64(p.TotalUser)
}

// --- Feature extraction ---

// maxSampledRefs bounds how many references per interval feed the
// reuse-distance simulator and the footprint map. A few thousand strided
// samples fingerprint an interval as well as the full stream does for
// clustering purposes, and keep analysis an order of magnitude cheaper
// than replaying the stream.
const maxSampledRefs = 4 << 10

// featurePageShift is the page granularity of the footprint feature. It
// matches the DECstation's 4 KB pages but is only a similarity signal,
// not an architectural parameter.
const featurePageShift = 12

// sdWays are the associativities whose windowed miss ratios enter the
// feature vector.
var sdWays = [...]int{1, 2, 4, 8, 16, 32}

var sdConfig = stackdist.Config{LineSize: 16, NumSets: 16, MaxTrackedDepth: 32}

// features accumulates one interval's fingerprint while the interleaver
// streams ops through it.
type features struct {
	instr    uint64 // user instructions (OpRun mass)
	loads    uint64
	stores   uint64
	syscalls uint64
	forks    uint64
	switches uint64 // scheduling turns observed in the interval

	pages map[uint32]struct{}
}

func newFeatures() *features {
	return &features{pages: make(map[uint32]struct{})}
}

func (f *features) page(va mem.VAddr) {
	f.pages[uint32(va>>featurePageShift)] = struct{}{}
}

func (f *features) reset() {
	f.instr, f.loads, f.stores, f.syscalls, f.forks, f.switches = 0, 0, 0, 0, 0, 0
	for p := range f.pages {
		delete(f.pages, p)
	}
}

// vector flattens the accumulated counts plus the interval's windowed
// reuse-distance profile into the clustering feature vector.
func (f *features) vector(w stackdist.WindowStats) []float64 {
	n := float64(f.instr)
	if n == 0 {
		n = 1
	}
	v := make([]float64, 0, 6+len(sdWays))
	v = append(v,
		float64(f.loads)/n,
		float64(f.stores)/n,
		float64(f.syscalls)/n*1e3, // rare events, rescaled to comparable range
		float64(f.forks)/n*1e3,
		float64(f.switches)/n*1e3,
		float64(len(f.pages))/n*1e3, // pages per kilo-instruction
	)
	for _, ways := range sdWays {
		v = append(v, w.MissRatioAt(ways))
	}
	return v
}

// --- Offline interleaver ---

// quantum mirrors the kernel's userRunCap: how many user instructions one
// task advances before the interleaver rotates to the next.
const quantum = 64

// walker is one live task's position in the op tree.
type walker struct {
	node workload.OpTree
	pos  int
}

// interleave streams the merged user-instruction stream through per-
// interval feature extraction. Returns the total user-instruction count,
// the per-interval fingerprints and window snapshots.
func interleave(root workload.OpTree, intervalLen uint64) (total uint64, vecs [][]float64) {
	sd := stackdist.MustNew(sdConfig)
	f := newFeatures()
	tasks := []*walker{{node: root}}
	cur := 0

	var u uint64          // retired user instructions
	var refIdx uint64     // reference index, for sampling
	var sampled uint64    // references sampled this interval
	var boundary = intervalLen

	stride := uint64(1)
	// The stride keeps per-interval sampling under maxSampledRefs even
	// for long intervals; short intervals sample everything.
	if intervalLen > maxSampledRefs {
		stride = (intervalLen + maxSampledRefs - 1) / maxSampledRefs
	}

	flush := func() {
		vecs = append(vecs, f.vector(sd.Window()))
		sd.ResetWindow()
		f.reset()
		sampled = 0
		boundary += intervalLen
	}
	sample := func(va mem.VAddr, kind mem.RefKind) {
		if refIdx%stride == 0 && sampled < maxSampledRefs {
			sd.Process(trace.Entry{VA: va, Kind: kind})
			f.page(va)
			sampled++
		}
		refIdx++
	}

	for len(tasks) > 0 {
		if cur >= len(tasks) {
			cur = 0
		}
		w := tasks[cur]
		f.switches++
		var ran uint64
	turn:
		for ran < quantum {
			ops := w.node.Ops()
			if w.pos >= len(ops) {
				break // sticky exit
			}
			op := ops[w.pos]
			switch op.Kind {
			case kernel.OpRun:
				n := uint64(op.N)
				f.instr += n
				// Sample instruction fetches (and their pages) at the
				// stride without walking every instruction; the footprint
				// feature counts sampled pages, a consistent relative
				// signal at a fixed stride.
				first := (refIdx + stride - 1) / stride * stride
				for idx := first; idx < refIdx+n; idx += stride {
					if sampled >= maxSampledRefs {
						break
					}
					va := op.VA + mem.VAddr(mem.WordBytes)*mem.VAddr(idx-refIdx)
					sd.Process(trace.Entry{VA: va, Kind: mem.IFetch})
					f.page(va)
					sampled++
				}
				refIdx += n
				u += n
				ran += n
				w.pos++
				for u >= boundary {
					flush()
				}
			case kernel.OpData:
				if op.Ref == mem.Store {
					f.stores++
				} else {
					f.loads++
				}
				sample(op.VA, op.Ref)
				w.pos++
			case kernel.OpSyscall:
				f.syscalls++
				w.pos++
				break turn // the kernel reschedules around service time
			case kernel.OpFork:
				f.forks++
				tasks = append(tasks, &walker{node: w.node.Child(int(op.Arg))})
				w.pos++
			default: // OpExit
				break turn
			}
		}
		ops := w.node.Ops()
		if w.pos >= len(ops) || ops[w.pos].Kind == kernel.OpExit {
			tasks = append(tasks[:cur], tasks[cur+1:]...)
			continue // next task now sits at cur
		}
		cur++
	}
	// Flush the final short interval (or the only interval of a stream
	// shorter than one interval length).
	if u > uint64(len(vecs))*intervalLen {
		flush()
	}
	return u, vecs
}

// --- Analysis ---

// totalUser sums the user-instruction mass (OpRun lengths) of the whole
// fork tree without streaming it.
func totalUser(t workload.OpTree) uint64 {
	var sum uint64
	for _, op := range t.Ops() {
		if op.Kind == kernel.OpRun {
			sum += uint64(op.N)
		}
	}
	for i := 0; i < t.NumChildren(); i++ {
		sum += totalUser(t.Child(i))
	}
	return sum
}

// Analyze cuts the compiled stream of (spec, seed) into cfg.Intervals
// intervals, clusters their fingerprints into at most K phases and
// returns the replay plan. Streams beyond the compile budget return
// workload.ErrStreamTooLarge — such runs cannot use interval replay
// (their checkpoints carry no resumable cursors either).
func Analyze(spec workload.Spec, seed uint64, cfg Config) (Plan, error) {
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	root, err := workload.PlannedOps(spec, seed)
	if err != nil {
		return Plan{}, err
	}
	streamTotal := totalUser(root)
	if streamTotal == 0 {
		return Plan{}, fmt.Errorf("phase: %s/seed %#x has an empty user stream", spec.Name, seed)
	}
	intervalLen := (streamTotal + uint64(cfg.Intervals) - 1) / uint64(cfg.Intervals)
	total, vecs := interleave(root, intervalLen)
	if total != streamTotal {
		return Plan{}, fmt.Errorf("phase: interleave of %s/seed %#x covered %d of %d user instructions",
			spec.Name, seed, total, streamTotal)
	}
	n := len(vecs)

	k := cfg.K
	if k > n {
		k = n
	}
	norm := normalize(vecs)
	assign, centers := kmeans(norm, k, cfg.Seed)

	plan := Plan{TotalUser: total, IntervalLen: intervalLen, Assign: assign}
	interval := func(i int) Interval {
		start := uint64(i) * intervalLen
		end := start + intervalLen
		if end > total {
			end = total
		}
		return Interval{Index: i, Start: start, End: end}
	}
	for c := 0; c < k; c++ {
		rep, mass := -1, uint64(0)
		best := 0.0
		for i, a := range assign {
			if a != c {
				continue
			}
			mass += interval(i).Len()
			d := dist2(norm[i], centers[c])
			if rep < 0 || d < best {
				rep, best = i, d
			}
		}
		if rep < 0 {
			continue // k-means left the cluster empty; its mass is elsewhere
		}
		plan.Reps = append(plan.Reps, Representative{
			Interval: interval(rep),
			Cluster:  c,
			Mass:     mass,
		})
	}
	sort.Slice(plan.Reps, func(i, j int) bool { return plan.Reps[i].Index < plan.Reps[j].Index })
	return plan, nil
}

// normalize standardizes each feature dimension to zero mean and unit
// variance across the intervals, so no single raw scale dominates the
// Euclidean metric.
func normalize(vecs [][]float64) [][]float64 {
	if len(vecs) == 0 {
		return nil
	}
	dim := len(vecs[0])
	mean := make([]float64, dim)
	for _, v := range vecs {
		for d, x := range v {
			mean[d] += x
		}
	}
	for d := range mean {
		mean[d] /= float64(len(vecs))
	}
	std := make([]float64, dim)
	for _, v := range vecs {
		for d, x := range v {
			dx := x - mean[d]
			std[d] += dx * dx
		}
	}
	out := make([][]float64, len(vecs))
	for d := range std {
		std[d] = sqrt(std[d] / float64(len(vecs)))
		if std[d] == 0 {
			std[d] = 1 // constant dimension: contributes nothing either way
		}
	}
	for i, v := range vecs {
		nv := make([]float64, dim)
		for d, x := range v {
			nv[d] = (x - mean[d]) / std[d]
		}
		out[i] = nv
	}
	return out
}

// kmeans clusters vecs into k groups with seeded k-means++ initialization
// and lowest-index tie-breaking. Deterministic for a fixed (vecs, k,
// seed).
func kmeans(vecs [][]float64, k int, seed uint64) (assign []int, centers [][]float64) {
	n := len(vecs)
	r := rng.New(seed)

	// k-means++ seeding: first center uniform, then proportional to
	// squared distance from the nearest chosen center.
	centers = make([][]float64, 0, k)
	centers = append(centers, clone(vecs[r.Intn(n)]))
	d2 := make([]float64, n)
	for len(centers) < k {
		var sum float64
		for i, v := range vecs {
			d2[i] = dist2(v, centers[0])
			for _, c := range centers[1:] {
				if d := dist2(v, c); d < d2[i] {
					d2[i] = d
				}
			}
			sum += d2[i]
		}
		if sum == 0 {
			// All points coincide with a center; any pick is equivalent.
			centers = append(centers, clone(vecs[r.Intn(n)]))
			continue
		}
		target := r.Float64() * sum
		pick := n - 1
		for i, d := range d2 {
			target -= d
			if target <= 0 {
				pick = i
				break
			}
		}
		centers = append(centers, clone(vecs[pick]))
	}

	assign = make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, v := range vecs {
			best, bd := 0, dist2(v, centers[0])
			for c := 1; c < len(centers); c++ {
				if d := dist2(v, centers[c]); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		dim := len(vecs[0])
		counts := make([]int, len(centers))
		next := make([][]float64, len(centers))
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, v := range vecs {
			counts[assign[i]]++
			for d, x := range v {
				next[assign[i]][d] += x
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Empty cluster: reseat on the point farthest from its
				// center (lowest index on ties).
				far, fd := 0, -1.0
				for i, v := range vecs {
					if d := dist2(v, centers[assign[i]]); d > fd {
						far, fd = i, d
					}
				}
				copy(next[c], vecs[far])
				continue
			}
			for d := range next[c] {
				next[c][d] /= float64(counts[c])
			}
		}
		centers = next
	}
	return assign, centers
}

func clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func dist2(a, b []float64) float64 {
	var s float64
	for d := range a {
		dx := a[d] - b[d]
		s += dx * dx
	}
	return s
}

// sqrt avoids importing math for one call (matches the rng package's
// convention of self-contained numerics).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}
