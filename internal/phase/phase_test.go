package phase

import (
	"reflect"
	"testing"

	"tapeworm/internal/workload"
)

func testSpec(t *testing.T, name string, scale float64) workload.Spec {
	t.Helper()
	spec, err := workload.ByName(name, scale)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	return spec
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Intervals: 8, K: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{Intervals: 0, K: 1},
		{Intervals: -4, K: 1},
		{Intervals: 8, K: 0},
		{Intervals: 8, K: -1},
		{Intervals: 4, K: 5},
	}
	for i, c := range bads {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestAnalyzePlanInvariants(t *testing.T) {
	for _, name := range []string{"espresso", "sdet"} {
		t.Run(name, func(t *testing.T) {
			spec := testSpec(t, name, 2000)
			plan, err := Analyze(spec, 1994, Config{Intervals: 16, K: 4, Seed: 99})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if plan.TotalUser == 0 || plan.IntervalLen == 0 {
				t.Fatalf("degenerate plan: %+v", plan)
			}
			n := plan.NumIntervals()
			if n == 0 || n > 16 {
				t.Fatalf("interval count %d out of range (asked for 16)", n)
			}
			// Intervals tile the stream exactly.
			covered := uint64(0)
			for i := 0; i < n; i++ {
				start := uint64(i) * plan.IntervalLen
				end := start + plan.IntervalLen
				if end > plan.TotalUser {
					end = plan.TotalUser
				}
				covered += end - start
			}
			if covered != plan.TotalUser {
				t.Fatalf("intervals cover %d of %d user instructions", covered, plan.TotalUser)
			}
			if len(plan.Reps) == 0 || len(plan.Reps) > 4 {
				t.Fatalf("%d representatives for K=4", len(plan.Reps))
			}
			// Representative mass partitions the stream: every interval's
			// mass lands in exactly one rep.
			var mass uint64
			for i, rep := range plan.Reps {
				if rep.Index < 0 || rep.Index >= n {
					t.Fatalf("rep %d indexes interval %d of %d", i, rep.Index, n)
				}
				if plan.Assign[rep.Index] != rep.Cluster {
					t.Fatalf("rep %d (interval %d) not assigned to its own cluster %d",
						i, rep.Index, rep.Cluster)
				}
				if i > 0 && plan.Reps[i-1].Index >= rep.Index {
					t.Fatalf("reps not in ascending interval order: %v", plan.Reps)
				}
				if rep.End <= rep.Start {
					t.Fatalf("rep %d has empty interval [%d, %d)", i, rep.Start, rep.End)
				}
				mass += rep.Mass
			}
			if mass != plan.TotalUser {
				t.Fatalf("rep masses sum to %d, want the full stream %d", mass, plan.TotalUser)
			}
			var weight float64
			for _, rep := range plan.Reps {
				weight += plan.Weight(rep)
			}
			if weight < 0.999 || weight > 1.001 {
				t.Fatalf("weights sum to %v", weight)
			}
		})
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	spec := testSpec(t, "mpeg_play", 2000)
	cfg := Config{Intervals: 12, K: 3, Seed: 7}
	a, err := Analyze(spec, 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(spec, 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different plans:\n  %+v\n  %+v", a, b)
	}
	// A different k-means seed may pick different representatives but
	// must still partition the same stream.
	c, err := Analyze(spec, 42, Config{Intervals: 12, K: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalUser != a.TotalUser || c.IntervalLen != a.IntervalLen {
		t.Fatalf("seed changed the interval geometry: %+v vs %+v", a, c)
	}
}

func TestAnalyzeClampsKToIntervals(t *testing.T) {
	// At a huge scale divisor the stream is tiny; asking for more
	// intervals than instructions must degrade gracefully, clamping the
	// cluster count to the intervals that exist.
	spec := testSpec(t, "espresso", 200000)
	plan, err := Analyze(spec, 1, Config{Intervals: 64, K: 64, Seed: 1})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(plan.Reps) > plan.NumIntervals() {
		t.Fatalf("%d reps for %d intervals", len(plan.Reps), plan.NumIntervals())
	}
	var mass uint64
	for _, rep := range plan.Reps {
		mass += rep.Mass
	}
	if mass != plan.TotalUser {
		t.Fatalf("clamped plan loses mass: %d of %d", mass, plan.TotalUser)
	}
}

func TestAnalyzeSingleInterval(t *testing.T) {
	spec := testSpec(t, "espresso", 2000)
	plan, err := Analyze(spec, 1, Config{Intervals: 1, K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumIntervals() != 1 || len(plan.Reps) != 1 {
		t.Fatalf("single-interval plan: %+v", plan)
	}
	rep := plan.Reps[0]
	if rep.Start != 0 || rep.End != plan.TotalUser || rep.Mass != plan.TotalUser {
		t.Fatalf("the one rep must span the whole stream: %+v", rep)
	}
	if w := plan.Weight(rep); w != 1 {
		t.Fatalf("weight = %v", w)
	}
}

func TestAnalyzeRejectsBadConfig(t *testing.T) {
	spec := testSpec(t, "espresso", 2000)
	if _, err := Analyze(spec, 1, Config{Intervals: 4, K: 8, Seed: 1}); err == nil {
		t.Fatal("K > Intervals accepted")
	}
	if _, err := Analyze(spec, 1, Config{Intervals: 0, K: 1, Seed: 1}); err == nil {
		t.Fatal("zero intervals accepted")
	}
}
