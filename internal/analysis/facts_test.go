package analysis

import (
	"bytes"
	"testing"
)

// roundtripFact is a representative fact shape: a map-valued payload like
// pairing's TransfersOwnership deltas.
type roundtripFact struct {
	Deltas map[string]int
	Note   string
}

// AFact marks the test type as a fact.
func (*roundtripFact) AFact() {}

// factAnalyzers registers the test fact type the way both drivers do.
var factAnalyzers = []*Analyzer{{
	Name:      "roundtrip",
	Doc:       "test analyzer",
	FactTypes: []Fact{(*roundtripFact)(nil)},
}}

// TestFactsRoundTrip encodes a fact set to the vetx wire form and decodes
// it back, byte-stability and payload fidelity included. This is the
// serialization path the go command caches between `go vet` runs and the
// standalone driver skips (in-process store), so the golden invariant is
// that both sides see identical facts.
func TestFactsRoundTrip(t *testing.T) {
	RegisterFactTypes(factAnalyzers)
	in := factSet{
		{analyzer: "roundtrip", object: "MustFork"}: &roundtripFact{
			Deltas: map[string]int{"checkpoint fork": 1}, Note: "transfer"},
		{analyzer: "roundtrip", object: "(*Kernel).ReleaseCheckpoint"}: &roundtripFact{
			Deltas: map[string]int{"checkpoint fork": -1}},
		{analyzer: "roundtrip", object: "Scrap"}: &roundtripFact{},
	}

	data, err := encodeFacts(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	again, err := encodeFacts(in)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Error("encodeFacts is not byte-stable across calls; the go command caches vetx files by content")
	}

	out, err := decodeFacts(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d facts, want %d", len(out), len(in))
	}
	for k, want := range in {
		got, ok := out[k].(*roundtripFact)
		if !ok {
			t.Fatalf("fact %v: missing or wrong type %T", k, out[k])
		}
		w := want.(*roundtripFact)
		if got.Note != w.Note || len(got.Deltas) != len(w.Deltas) {
			t.Errorf("fact %v: got %+v, want %+v", k, got, w)
		}
		for pair, d := range w.Deltas {
			if got.Deltas[pair] != d {
				t.Errorf("fact %v: delta[%q] = %d, want %d", k, pair, got.Deltas[pair], d)
			}
		}
	}
}

// TestFactsRejectForeignFile guards the header check: a file that is not
// a twvet fact file must error rather than decode garbage.
func TestFactsRejectForeignFile(t *testing.T) {
	if _, err := decodeFacts([]byte("not a fact file")); err == nil {
		t.Error("decodeFacts accepted a non-fact file")
	}
	data, err := encodeFacts(factSet{})
	if err != nil {
		t.Fatalf("encode empty: %v", err)
	}
	if fs, err := decodeFacts(data); err != nil || len(fs) != 0 {
		t.Errorf("empty set round-trip: %v, %d facts", err, len(fs))
	}
}
