package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// PathHasSuffix reports whether an import path equals suffix or ends in
// "/"+suffix.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// PathHasSegment reports whether the import path contains the given
// path segment ("cmd" matches "tapeworm/cmd/twbench", not "cmdutil").
func PathHasSegment(path, segment string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == segment {
			return true
		}
	}
	return false
}

// ImportPathOf unquotes an import spec's path.
func ImportPathOf(imp *ast.ImportSpec) (string, error) {
	return strconv.Unquote(imp.Path.Value)
}

// EnclosingFunc returns the innermost function declaration on an
// ancestor stack, or nil.
func EnclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fn, ok := stack[i].(*ast.FuncDecl); ok {
			return fn
		}
	}
	return nil
}

// EnclosingBlockStmts returns the statement list of the innermost block
// (or switch/select clause body) on an ancestor stack.
func EnclosingBlockStmts(stack []ast.Node) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			return b.List
		case *ast.CaseClause:
			return b.Body
		case *ast.CommClause:
			return b.Body
		}
	}
	return nil
}
