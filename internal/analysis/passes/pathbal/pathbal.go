// Package pathbal is the shared path-balance core behind the pairing and
// lockcheck passes: an intra-procedural abstract interpretation that
// requires every acquire of a paired resource (a trap arm, a pooled
// buffer, a mutex) to be balanced by a release on every path — both arms
// of a conditional, each loop iteration, every early return — with
// deferred releases credited at every exit.
//
// The engine evaluates in collect mode: it returns the would-be
// violations plus the net balance vector observed at each function exit,
// and the caller decides whether to report them, suppress them under a
// //twvet:transfer annotation, or — when every exit agrees on a nonzero
// vector — infer an ownership-transfer fact for inter-procedural use.
//
// Beyond the static pair tables, a Lookup hook supplies per-callee delta
// vectors (the pairing pass feeds imported TransfersOwnership /
// ReleasesResource facts through it), and TryAcquires model conditional
// acquisition (sync.Mutex.TryLock): the acquire counts only on the
// success branch of `if mu.TryLock() { ... }`.
//
// Functions containing goto are skipped (none exist in this repo).
package pathbal

import (
	"go/ast"
	"go/token"
	"go/types"

	"tapeworm/internal/analysis"
)

// Pair describes one refcounted resource: the fully qualified acquire
// and release functions (types.Func.FullName form). Transferable pairs
// represent true ownership (a value the caller holds and must later
// release), so the pairing pass may infer cross-function transfer facts
// for them; counter-like pairs (refcounts, arms) stay intra-procedural.
type Pair struct {
	Name         string
	Acquires     []string
	Releases     []string
	TryAcquires  []string
	Transferable bool
}

// Engine checks function bodies against one pair table.
type Engine struct {
	Pairs []Pair

	// Lookup returns the per-pair delta vector of a resolved callee
	// beyond the static table (the facts hook), or nil. Never consulted
	// for functions already in the table.
	Lookup func(fn *types.Func) []int

	acquires map[string]int
	releases map[string]int
	tries    map[string]int
}

// New builds an engine over the pair table.
func New(pairs []Pair) *Engine {
	e := &Engine{
		Pairs:    pairs,
		acquires: map[string]int{},
		releases: map[string]int{},
		tries:    map[string]int{},
	}
	for i, p := range pairs {
		for _, n := range p.Acquires {
			e.acquires[n] = i
		}
		for _, n := range p.Releases {
			e.releases[n] = i
		}
		for _, n := range p.TryAcquires {
			e.tries[n] = i
		}
	}
	return e
}

// Primitive reports whether the named function is itself part of a pair
// (it implements an acquire or release): its body is the mechanism, not a
// client, and is exempt from balance checking.
func (e *Engine) Primitive(full string) bool {
	_, a := e.acquires[full]
	_, r := e.releases[full]
	_, t := e.tries[full]
	return a || r || t
}

// ViolationKind distinguishes exit imbalance — the expected shape of a
// deliberate ownership transfer — from structural violations that
// preclude any transfer interpretation.
type ViolationKind int

const (
	ExitImbalance ViolationKind = iota // nonzero balance at a function exit
	MergeConflict                      // branches disagree on balance
	LoopImbalance                      // loop body not resource-neutral
)

// Violation is one would-be diagnostic.
type Violation struct {
	Kind    ViolationKind
	Pos     token.Pos
	Message string
}

// Result is the outcome of checking one function body.
type Result struct {
	Violations []Violation
	// Exits holds the net balance (including deferred credits) at each
	// exit: every return statement plus the closing-brace fallthrough.
	// Paths ending in panic/os.Exit are not exits.
	Exits [][]int
	// Skipped marks bodies the engine cannot analyze (goto).
	Skipped bool
}

// Clean reports a fully balanced body: no violations of any kind.
func (r Result) Clean() bool { return len(r.Violations) == 0 }

// Check evaluates a function declaration's body.
func (e *Engine) Check(pass *analysis.Pass, fn *ast.FuncDecl) Result {
	return e.CheckBody(pass, fn.Name.Name, fn.Body)
}

// CheckBody evaluates any function body (declarations and literals; name
// is used in messages). Nested function literals are not descended into —
// they execute elsewhere and are checked as their own scopes by callers
// that care (lockcheck walks goroutine bodies explicitly).
func (e *Engine) CheckBody(pass *analysis.Pass, name string, body *ast.BlockStmt) Result {
	if body == nil || hasGoto(body) {
		return Result{Skipped: true}
	}
	c := &checker{eng: e, pass: pass, name: name, deferred: e.zero()}
	st := c.block(body.List, state{b: e.zero()})
	if !st.terminated {
		c.checkExit(st.b, body.Rbrace)
	}
	return c.res
}

// bal is the per-pair acquire-minus-release count along one path.
type bal []int

func (e *Engine) zero() bal { return make(bal, len(e.Pairs)) }

func (b bal) clone() bal {
	c := make(bal, len(b))
	copy(c, b)
	return c
}

func (b bal) add(o bal) {
	for i := range b {
		b[i] += o[i]
	}
}

func (b bal) equal(o bal) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// checker evaluates one function body.
type checker struct {
	eng      *Engine
	pass     *analysis.Pass
	name     string
	deferred bal // releases (and acquires) registered by defer statements
	res      Result
}

// state is the abstract execution state at one program point.
type state struct {
	b          bal
	terminated bool
}

func (c *checker) violate(kind ViolationKind, pos token.Pos, msg string) {
	c.res.Violations = append(c.res.Violations, Violation{Kind: kind, Pos: pos, Message: msg})
}

// checkExit records the net balance at a function exit and registers a
// violation when any pair is unbalanced.
func (c *checker) checkExit(b bal, pos token.Pos) {
	net := b.clone()
	net.add(c.deferred)
	c.res.Exits = append(c.res.Exits, []int(net))
	for i, v := range net {
		if v != 0 {
			verb := "acquired but not released"
			if v < 0 {
				verb = "released more times than acquired"
			}
			c.violate(ExitImbalance, pos, c.eng.Pairs[i].Name+" "+verb+" on this path through "+c.name+
				": balance acquire/release pairs or annotate the function //twvet:transfer")
			return
		}
	}
}

// block evaluates a statement list. It recognizes the failed-acquire
// idiom across statement boundaries: after `x, err := Acquire(...)`, the
// branch taken when `err != nil` never acquired the resource.
func (c *checker) block(stmts []ast.Stmt, st state) state {
	var pend *failedAcquire
	for _, s := range stmts {
		if st.terminated {
			break
		}
		if ifs, ok := s.(*ast.IfStmt); ok {
			st = c.ifStmt(ifs, st, pend)
			pend = nil
			continue
		}
		pend = nil
		if asg, ok := s.(*ast.AssignStmt); ok {
			pend = c.acquireWithErr(asg)
		}
		st = c.stmt(s, st)
	}
	return st
}

// failedAcquire records an acquire statement that also produced an error
// value, so the immediately following `if err != nil` check can discount
// the acquire on its failing branch.
type failedAcquire struct {
	errObj types.Object
	delta  bal
}

// acquireWithErr reports whether the assignment both performs an acquire
// and binds an error-typed variable (the acquire's failure signal).
func (c *checker) acquireWithErr(asg *ast.AssignStmt) *failedAcquire {
	delta := c.eng.zero()
	c.scanCalls(asg, delta, true)
	acquired := false
	for i, v := range delta {
		if v > 0 {
			acquired = true
		} else if v < 0 {
			delta[i] = 0 // only discount acquires, never releases
		}
	}
	if !acquired {
		return nil
	}
	for _, lhs := range asg.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj != nil && types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
			return &failedAcquire{errObj: obj, delta: delta}
		}
	}
	return nil
}

// condIsErrNotNil reports whether cond is `err != nil` for the given
// error object.
func condIsErrNotNil(pass *analysis.Pass, cond ast.Expr, errObj types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	matches := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (matches(be.X) && isNil(be.Y)) || (matches(be.Y) && isNil(be.X))
}

// tryAcquireCond recognizes a conditional-acquire condition: `mu.TryLock()`
// returns the pair index and true-branch polarity; `!mu.TryLock()` inverts
// it (the acquire lands on the false/fallthrough side).
func (c *checker) tryAcquireCond(cond ast.Expr) (idx int, onThen, ok bool) {
	e := ast.Unparen(cond)
	onThen = true
	if u, isNot := e.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		e = ast.Unparen(u.X)
		onThen = false
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return 0, false, false
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return 0, false, false
	}
	idx, ok = c.eng.tries[fn.FullName()]
	return idx, onThen, ok
}

// ifStmt evaluates an if statement; pend carries a preceding
// acquire-with-error whose failing branch should discount the acquire.
func (c *checker) ifStmt(s *ast.IfStmt, st state, pend *failedAcquire) state {
	if s.Init != nil {
		st = c.stmt(s.Init, st)
		if asg, ok := s.Init.(*ast.AssignStmt); ok {
			if fa := c.acquireWithErr(asg); fa != nil {
				pend = fa
			}
		}
	}
	c.scanExpr(s.Cond, st.b)
	thenB := st.b.clone()
	elseB := st.b.clone()
	if i, onThen, ok := c.tryAcquireCond(s.Cond); ok {
		// The try-acquire succeeded only on one side of the branch.
		if onThen {
			thenB[i]++
		} else {
			elseB[i]++
		}
	}
	if pend != nil && condIsErrNotNil(c.pass, s.Cond, pend.errObj) {
		// Failing branch of the acquire's own error check: the resource
		// was never acquired there.
		for i := range thenB {
			thenB[i] -= pend.delta[i]
		}
	}
	thenSt := c.block(s.Body.List, state{b: thenB})
	elseSt := state{b: elseB}
	if s.Else != nil {
		elseSt = c.stmt(s.Else, elseSt)
	}
	return c.merge(s, []state{thenSt, elseSt})
}

// stmt evaluates one statement.
func (c *checker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, st.b)
		}
		c.checkExit(st.b, s.Pos())
		st.terminated = true
		return st

	case *ast.DeferStmt:
		c.scanDefer(s.Call, st.b)
		return st

	case *ast.IfStmt:
		return c.ifStmt(s, st, nil)

	case *ast.BlockStmt:
		return c.block(s.List, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, st.b)
		}
		c.loopBody(s.Body, s.Post, st.b)
		return st

	case *ast.RangeStmt:
		c.scanExpr(s.X, st.b)
		c.loopBody(s.Body, nil, st.b)
		return st

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.multiway(s, st)

	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)

	case *ast.BranchStmt:
		// break/continue leave the enclosing loop or switch arm; the
		// loop-neutrality check in loopBody covers the loop cases.
		st.terminated = true
		return st

	default:
		// Assignments, expression statements, declarations, go, send:
		// count every call in source order; net effect is order-free.
		c.scanNode(s, st.b)
		if exits(c.pass, s) {
			st.terminated = true
		}
		return st
	}
}

// merge joins the branch states of a conditional: surviving branches
// must agree on every resource balance.
func (c *checker) merge(at ast.Node, branches []state) state {
	var alive []state
	for _, b := range branches {
		if !b.terminated {
			alive = append(alive, b)
		}
	}
	if len(alive) == 0 {
		return state{terminated: true}
	}
	first := alive[0]
	for _, b := range alive[1:] {
		if !b.b.equal(first.b) {
			c.violate(MergeConflict, at.Pos(),
				"paths through this branch disagree on paired acquire/release balance in "+c.name+
					": balance each arm or annotate the function //twvet:transfer")
			break
		}
	}
	return first
}

// multiway evaluates switch/type-switch/select as parallel branches.
func (c *checker) multiway(s ast.Stmt, st state) state {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, st.b)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.scanNode(s.Assign, st.b)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	branches := []state{}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.scanExpr(e, st.b)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.scanNode(cl.Comm, st.b)
			}
			stmts = cl.Body
		}
		branches = append(branches, c.block(stmts, state{b: st.b.clone()}))
	}
	if !hasDefault {
		// No default: the zero-delta fallthrough path exists too.
		branches = append(branches, state{b: st.b.clone()})
	}
	return c.merge(s, branches)
}

// loopBody requires a loop body to be resource-neutral per iteration.
// It evaluates from the loop-entry balance so returns inside the body are
// checked against the true path balance (entry + iteration so far).
func (c *checker) loopBody(body *ast.BlockStmt, post ast.Stmt, entry bal) {
	st := c.block(body.List, state{b: entry.clone()})
	if post != nil && !st.terminated {
		st = c.stmt(post, st)
	}
	if !st.terminated {
		for i := range st.b {
			if v := st.b[i] - entry[i]; v != 0 {
				verb := "acquires"
				if v < 0 {
					verb = "over-releases"
				}
				c.violate(LoopImbalance, body.Pos(),
					"loop iteration "+verb+" "+c.eng.Pairs[i].Name+
						" without balancing it: balance the body or annotate the function //twvet:transfer")
				return
			}
		}
	}
}

// scanDefer registers a deferred call's deltas (including those inside a
// deferred closure) to be credited at every exit reached after this
// statement. Argument expressions evaluate immediately, so their deltas
// land in the current balance.
func (c *checker) scanDefer(call *ast.CallExpr, now bal) {
	for _, arg := range call.Args {
		c.scanExpr(arg, now)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.scanCalls(lit.Body, c.deferred, false)
		return
	}
	if fn := analysis.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
		c.addDelta(fn, c.deferred)
	}
}

// addDelta accumulates the callee's per-pair delta: the static table
// first, then the Lookup (facts) hook for functions outside it.
func (c *checker) addDelta(fn *types.Func, into bal) {
	full := fn.FullName()
	if i, ok := c.eng.acquires[full]; ok {
		into[i]++
		return
	}
	if i, ok := c.eng.releases[full]; ok {
		into[i]--
		return
	}
	if _, ok := c.eng.tries[full]; ok {
		// Conditional acquires count only via tryAcquireCond branches.
		return
	}
	if c.eng.Lookup != nil {
		if d := c.eng.Lookup(fn); d != nil {
			for i, v := range d {
				into[i] += v
			}
		}
	}
}

// scanExpr accumulates the deltas of every paired call in an expression.
// Function literals are skipped: their bodies execute elsewhere and are
// checked as their own scopes.
func (c *checker) scanExpr(e ast.Expr, into bal) {
	if e == nil {
		return
	}
	c.scanCalls(e, into, true)
}

// scanNode accumulates deltas over any node.
func (c *checker) scanNode(n ast.Node, into bal) {
	if n == nil {
		return
	}
	c.scanCalls(n, into, true)
}

// scanCalls walks n counting paired calls. When skipFuncLits is set,
// closure bodies are not descended into.
func (c *checker) scanCalls(n ast.Node, into bal, skipFuncLits bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && skipFuncLits {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
			c.addDelta(fn, into)
		}
		return true
	})
}

// exits reports whether the statement unconditionally leaves the
// function: panic, os.Exit, log.Fatal*.
func exits(pass *analysis.Pass, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isUse := pass.TypesInfo.Uses[id].(*types.Builtin); isUse || pass.TypesInfo.Uses[id] == nil {
			return true
		}
	}
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
		full := fn.FullName()
		switch full {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}

// hasGoto reports whether the body contains a goto statement.
func hasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok.String() == "goto" {
			found = true
			return false
		}
		return !found
	})
	return found
}
