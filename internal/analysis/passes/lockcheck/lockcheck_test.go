package lockcheck_test

import (
	"testing"

	"tapeworm/internal/analysis/analysistest"
	"tapeworm/internal/analysis/passes/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "locks")
}
