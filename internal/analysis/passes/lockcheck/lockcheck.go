// Package lockcheck applies the pathbal path-balance core to mutex
// discipline: every sync.Mutex/RWMutex Lock must be balanced by an Unlock
// (and RLock by RUnlock) on every path through a function, with deferred
// unlocks credited at every exit and TryLock modeled as a conditional
// acquire — `if mu.TryLock() { ... }` holds the lock only inside the
// success branch.
//
// The pass is scoped to the packages whose locking the repo's concurrency
// story rests on: the scheduler worker pool, the single-flight result
// cache, the experiment-level checkpoint/plan/profile caches, and the
// telemetry collector. Goroutine and closure bodies are checked as their
// own scopes (the scheduler's worker loop locks inside `go func`
// literals). A function that intentionally returns with a lock held
// declares so with //twvet:transfer.
package lockcheck

import (
	"go/ast"

	"tapeworm/internal/analysis"
	"tapeworm/internal/analysis/passes/pathbal"
)

// Analyzer is the mutex Lock/Unlock balance pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "sync.Mutex/RWMutex Lock and Unlock must balance on every path, including defer credits and TryLock success branches",
	Run:  run,
}

// scopePkgs are the import-path suffixes whose lock discipline is
// checked; testdata opts in per-file with //twvet:scope lockcheck.
var scopePkgs = []string{
	"internal/sched",
	"internal/resultcache",
	"internal/experiment",
	"internal/telemetry",
}

var pairs = []pathbal.Pair{
	{
		Name:        "sync.Mutex lock",
		Acquires:    []string{"(*sync.Mutex).Lock"},
		Releases:    []string{"(*sync.Mutex).Unlock"},
		TryAcquires: []string{"(*sync.Mutex).TryLock"},
	},
	{
		Name:        "sync.RWMutex write lock",
		Acquires:    []string{"(*sync.RWMutex).Lock"},
		Releases:    []string{"(*sync.RWMutex).Unlock"},
		TryAcquires: []string{"(*sync.RWMutex).TryLock"},
	},
	{
		Name:        "sync.RWMutex read lock",
		Acquires:    []string{"(*sync.RWMutex).RLock"},
		Releases:    []string{"(*sync.RWMutex).RUnlock"},
		TryAcquires: []string{"(*sync.RWMutex).TryRLock"},
	},
}

func run(pass *analysis.Pass) error {
	inScope := pass.PathInScope(scopePkgs...)
	eng := pathbal.New(pairs)
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		dirs := pass.FileDirectives(file)
		if !inScope && !dirs.Scoped("lockcheck") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if dirs.FuncDirective(fn, "transfer", "") {
				res := eng.Check(pass, fn)
				if !res.Clean() {
					dirs.MarkFunc(fn, "transfer", "")
				}
				continue
			}
			report(pass, eng.Check(pass, fn))
			// Closures run elsewhere (goroutine bodies, callbacks) and
			// must balance as their own scopes — except closures deferred
			// directly, whose unlocks pathbal already credits to the
			// enclosing function's exits.
			deferred := map[*ast.FuncLit]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if d, ok := n.(*ast.DeferStmt); ok {
					if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
						deferred[lit] = true
					}
				}
				return true
			})
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && !deferred[lit] {
					report(pass, eng.CheckBody(pass, "this function literal", lit.Body))
				}
				return true
			})
		}
	}
	return nil
}

// report emits the first violation of a checked scope, mirroring
// pairing's one-report-per-function discipline.
func report(pass *analysis.Pass, res pathbal.Result) {
	if len(res.Violations) > 0 {
		v := res.Violations[0]
		pass.Reportf(v.Pos, "%s", v.Message)
	}
}
