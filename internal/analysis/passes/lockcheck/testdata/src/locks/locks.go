// Package locks exercises the lockcheck pass: Mutex/RWMutex balance with
// defer credits, TryLock conditional acquires, goroutine bodies as their
// own scopes, and the //twvet:transfer escape hatch for functions that
// return holding a lock.
//
//twvet:scope lockcheck
package locks

import "sync"

type table struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	m   map[string]int
	sum int
}

// deferBalanced is the canonical shape.
func (t *table) deferBalanced(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[k]
}

// explicitBalanced unlocks on both paths.
func (t *table) explicitBalanced(k string) int {
	t.mu.Lock()
	if v, ok := t.m[k]; ok {
		t.mu.Unlock()
		return v
	}
	t.mu.Unlock()
	return 0
}

// leakOnEarlyReturn forgets the unlock on the hit path.
func (t *table) leakOnEarlyReturn(k string) int {
	t.mu.Lock()
	if v, ok := t.m[k]; ok {
		return v // want `sync.Mutex lock acquired but not released`
	}
	t.mu.Unlock()
	return 0
}

// doubleUnlock releases more than it acquired.
func (t *table) doubleUnlock() {
	t.mu.Lock()
	t.mu.Unlock()
	t.mu.Unlock()
} // want `sync.Mutex lock released more times than acquired`

// tryLockBalanced holds the lock only inside the success branch.
func (t *table) tryLockBalanced(k string, v int) bool {
	if t.mu.TryLock() {
		t.m[k] = v
		t.mu.Unlock()
		return true
	}
	return false
}

// tryLockLeaked wins the lock and forgets to release it.
func (t *table) tryLockLeaked(k string, v int) bool {
	if t.mu.TryLock() {
		t.m[k] = v
		return true // want `sync.Mutex lock acquired but not released`
	}
	return false
}

// readersBalanced pairs RLock with RUnlock.
func (t *table) readersBalanced(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// readLockWriteUnlock mismatches the RWMutex's two pairs: the write
// unlock (first imbalanced pair in table order) has no write lock, and
// the read lock is never released.
func (t *table) readLockWriteUnlock(k string) int {
	t.rw.RLock()
	defer t.rw.Unlock()
	return t.m[k] // want `sync.RWMutex write lock released more times than acquired`
}

// goroutineBalanced locks inside a goroutine body, which balances as its
// own scope (the scheduler worker-loop shape).
func (t *table) goroutineBalanced(keys []string) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, k := range keys {
			t.mu.Lock()
			t.sum += t.m[k]
			t.mu.Unlock()
		}
	}()
	<-done
}

// goroutineLeaked leaks inside the goroutine: the enclosing function is
// balanced, the literal is not.
func (t *table) goroutineLeaked(k string) {
	go func() {
		t.mu.Lock()
		t.sum += t.m[k]
	}() // want `sync.Mutex lock acquired but not released on this path through this function literal`
}

// deferredClosureBalanced unlocks through a deferred closure: the credit
// belongs to the enclosing function, and the closure itself must not be
// double-checked as a standalone scope.
func (t *table) deferredClosureBalanced(k string, v int) {
	t.mu.Lock()
	defer func() {
		t.sum++
		t.mu.Unlock()
	}()
	t.m[k] = v
}

// lockForCaller returns holding the lock by contract; the caller calls
// unlockFor when done. The annotation is load-bearing: lock ownership
// moves through package state, invisible to the facts engine.
//
//twvet:transfer
func (t *table) lockForCaller() map[string]int {
	t.mu.Lock()
	return t.m
}

// unlockFor is lockForCaller's paired release.
//
//twvet:transfer
func (t *table) unlockFor() {
	t.mu.Unlock()
}
