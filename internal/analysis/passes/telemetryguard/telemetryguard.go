// Package telemetryguard enforces the telemetry layer's zero-overhead-
// when-disabled contract (the PR 2 invariant) in the simulation hot
// paths: every recording call on a *telemetry.Run reachable from
// mach.Execute/ExecuteRun — and, by package scope, anything else in
// mach/kernel/core — must be dominated by a nil (or Enabled) check on the
// same receiver expression, so the disabled branch pays exactly one
// pointer test and constructs no arguments. The receiver itself must be
// a simple expression (no call), so evaluating the guard cannot allocate
// or do hidden work.
//
// The recording methods are nil-safe no-ops, so unguarded calls are
// correct — but they evaluate their arguments and make a call on the
// rare-path-turned-hot path, which is exactly the overhead the telemetry
// design promises away.
package telemetryguard

import (
	"go/ast"
	"go/types"

	"tapeworm/internal/analysis"
)

// Analyzer is the telemetry zero-overhead pass.
var Analyzer = &analysis.Analyzer{
	Name: "telemetryguard",
	Doc:  "telemetry recording calls in hot-path packages must be nil-guarded and allocation-free when disabled",
	Run:  run,
}

// hotPkgs are the packages containing the machine execution hot paths.
var hotPkgs = []string{"internal/mach", "internal/kernel", "internal/core"}

// guardedMethods are the *telemetry.Run recording methods that evaluate
// arguments; Enabled is the guard itself and needs none.
var guardedMethods = map[string]bool{
	"Event": true, "Count": true, "SetCounter": true, "SetTiming": true,
}

func run(pass *analysis.Pass) error {
	inHotPkg := pass.PathInScope(hotPkgs...)
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		dirs := pass.FileDirectives(file)
		if !inHotPkg && !dirs.Scoped("telemetryguard") {
			continue
		}
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(pass, dirs, stack, call)
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// checkCall flags a recording call on a *telemetry.Run receiver that is
// not dominated by a guard on that receiver.
func checkCall(pass *analysis.Pass, dirs *analysis.Directives, stack []ast.Node, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !guardedMethods[fn.Name()] || !isTelemetryRunMethod(fn) {
		return
	}
	recv := ast.Unparen(sel.X)
	recvStr := types.ExprString(recv)
	if containsCall(recv) {
		if dirs.AllowedAt(call, "telemetry") || dirs.FuncAllowed(analysis.EnclosingFunc(stack), "telemetry") {
			return
		}
		pass.Reportf(call.Pos(),
			"telemetry %s receiver %s is not a simple expression: bind it to a variable so the disabled check is one pointer test",
			fn.Name(), recvStr)
		return
	}
	// Establish guardedness before consulting directives, so an allow on
	// an already-guarded call counts as suppressing nothing (stale).
	if guardedByAncestor(pass, stack, call, recvStr) || guardedByEarlyReturn(pass, stack, call, recvStr) {
		return
	}
	if dirs.AllowedAt(call, "telemetry") || dirs.FuncAllowed(analysis.EnclosingFunc(stack), "telemetry") {
		return
	}
	pass.Reportf(call.Pos(),
		"telemetry call %s.%s is not guarded: wrap in `if %s != nil { ... }` so the disabled path constructs no arguments",
		recvStr, fn.Name(), recvStr)
}

// isTelemetryRunMethod reports whether fn is a method of
// tapeworm/internal/telemetry.Run.
func isTelemetryRunMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Run" && obj.Pkg() != nil &&
		analysis.PathHasSuffix(obj.Pkg().Path(), "internal/telemetry")
}

// containsCall reports whether the expression contains any call (an
// accessor in the receiver chain would run even when telemetry is off).
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// guardedByAncestor reports whether an enclosing if statement's condition
// establishes recv != nil (or recv.Enabled()) on the branch containing
// the call.
func guardedByAncestor(pass *analysis.Pass, stack []ast.Node, call *ast.CallExpr, recvStr string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if containsNode(ifs.Body, call) && condEstablishes(ifs.Cond, recvStr, true) {
			return true
		}
		if ifs.Else != nil && containsNode(ifs.Else, call) && condEstablishes(ifs.Cond, recvStr, false) {
			return true
		}
	}
	return false
}

// guardedByEarlyReturn reports whether the enclosing function bails out
// with `if recv == nil { return }` (or `if !recv.Enabled() { return }`)
// before the call.
func guardedByEarlyReturn(pass *analysis.Pass, stack []ast.Node, call *ast.CallExpr, recvStr string) bool {
	body := enclosingFuncBody(stack)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() >= call.Pos() {
			return !found
		}
		if condEstablishes(ifs.Cond, recvStr, false) && terminates(ifs.Body) {
			found = true
			return false
		}
		return true
	})
	return found
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// terminates reports whether a block's last statement leaves the
// function (return or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// condEstablishes reports whether cond being true (onTrue) or false
// (!onTrue) proves the receiver is non-nil/enabled.
//
//	onTrue:  recv != nil, recv.Enabled(), and conjunctions containing one
//	!onTrue: recv == nil, !recv.Enabled(), and disjunctions containing one
func condEstablishes(cond ast.Expr, recvStr string, onTrue bool) bool {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "!=":
			return onTrue && isNilCheck(e, recvStr)
		case "==":
			return !onTrue && isNilCheck(e, recvStr)
		case "&&":
			return onTrue && (condEstablishes(e.X, recvStr, true) || condEstablishes(e.Y, recvStr, true))
		case "||":
			return !onTrue && (condEstablishes(e.X, recvStr, false) || condEstablishes(e.Y, recvStr, false))
		}
	case *ast.UnaryExpr:
		if e.Op.String() == "!" {
			return condEstablishes(e.X, recvStr, !onTrue)
		}
	case *ast.CallExpr:
		// recv.Enabled() on the true branch.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && onTrue &&
			sel.Sel.Name == "Enabled" && types.ExprString(ast.Unparen(sel.X)) == recvStr {
			return true
		}
	}
	return false
}

// isNilCheck reports whether the comparison is `recv <op> nil` (either
// operand order).
func isNilCheck(e *ast.BinaryExpr, recvStr string) bool {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	return (isNilIdent(y) && types.ExprString(x) == recvStr) ||
		(isNilIdent(x) && types.ExprString(y) == recvStr)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// containsNode reports whether root contains target.
func containsNode(root, target ast.Node) bool {
	if root == nil || target == nil {
		return false
	}
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}
