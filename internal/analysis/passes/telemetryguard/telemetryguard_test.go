package telemetryguard_test

import (
	"testing"

	"tapeworm/internal/analysis/analysistest"
	"tapeworm/internal/analysis/passes/telemetryguard"
)

func TestTelemetryGuard(t *testing.T) {
	analysistest.Run(t, telemetryguard.Analyzer, "tel")
}
