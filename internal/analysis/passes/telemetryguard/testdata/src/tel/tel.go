// Package tel exercises the telemetryguard analyzer against the real
// telemetry.Run type.
//
//twvet:scope telemetryguard
package tel

import "tapeworm/internal/telemetry"

// Sim stands in for a hot-path component holding an optional telemetry
// run.
type Sim struct {
	tel *telemetry.Run
	n   uint64
}

func (s *Sim) telemetry() *telemetry.Run { return s.tel }

// Unguarded calls a recording method with no dominating nil check.
func (s *Sim) Unguarded() {
	s.tel.Count("misses", 1) // want `not guarded`
}

// GuardedIf is the enclosing-if idiom.
func (s *Sim) GuardedIf() {
	if s.tel != nil {
		s.tel.Count("misses", 1)
	}
}

// GuardedEnabled guards through the Enabled accessor.
func (s *Sim) GuardedEnabled() {
	if s.tel.Enabled() {
		s.tel.Event(telemetry.EvBreakpoint, 1, 0, 0, s.n)
	}
}

// GuardedEarlyReturn is the bail-out idiom used by ReportTelemetry.
func (s *Sim) GuardedEarlyReturn() {
	if s.tel == nil {
		return
	}
	s.tel.SetCounter("misses", s.n)
	s.tel.SetTiming(1, 2, 3)
}

// GuardedConjunction establishes the guard inside a compound condition.
func (s *Sim) GuardedConjunction(hot bool) {
	if s.tel != nil && hot {
		s.tel.Count("hot", 1)
	}
}

// WrongBranch checks the receiver but records on the nil branch.
func (s *Sim) WrongBranch() {
	if s.tel == nil {
		s.tel.Count("misses", 1) // want `not guarded`
	}
}

// CallReceiver reaches the run through an accessor, which would execute
// even when telemetry is off.
func (s *Sim) CallReceiver() {
	if s.telemetry() != nil {
		s.telemetry().Count("misses", 1) // want `not a simple expression`
	}
}

// Allowed is excused by annotation: a cold path where the double call is
// acceptable.
func (s *Sim) Allowed() {
	//twvet:allow telemetry — cold path, runs once per report
	s.tel.Count("misses", 1)
}
