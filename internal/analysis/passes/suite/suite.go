// Package suite assembles the canonical twvet analyzer set.
package suite

import (
	"tapeworm/internal/analysis"
	"tapeworm/internal/analysis/passes/determinism"
	"tapeworm/internal/analysis/passes/gate"
	"tapeworm/internal/analysis/passes/hashcheck"
	"tapeworm/internal/analysis/passes/lockcheck"
	"tapeworm/internal/analysis/passes/pairing"
	"tapeworm/internal/analysis/passes/telemetryguard"
)

// All returns the analyzers twvet runs, in report order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		gate.Analyzer,
		hashcheck.Analyzer,
		lockcheck.Analyzer,
		pairing.Analyzer,
		telemetryguard.Analyzer,
	}
}
