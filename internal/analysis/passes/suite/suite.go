// Package suite assembles the canonical twvet analyzer set.
package suite

import (
	"tapeworm/internal/analysis"
	"tapeworm/internal/analysis/passes/determinism"
	"tapeworm/internal/analysis/passes/gate"
	"tapeworm/internal/analysis/passes/pairing"
	"tapeworm/internal/analysis/passes/telemetryguard"
)

// All returns the analyzers twvet runs, in report order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		gate.Analyzer,
		pairing.Analyzer,
		telemetryguard.Analyzer,
	}
}
