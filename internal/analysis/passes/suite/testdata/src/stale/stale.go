// Package stale exercises full-suite stale-directive detection: a
// suppression directive that never met a would-be finding is itself
// reported by the staledirective scan, while load-bearing directives —
// including ones consumed by a different pass than the one that would
// have fired — stay silent. Only RunSuite (the complete analyzer set)
// can observe this: a single-analyzer golden cannot see another pass's
// usage marks.
//
//twvet:scope determinism
//twvet:scope lockcheck
package stale

import (
	"sort"
	"sync"

	"tapeworm/internal/resultcache"
)

// sumCounts accumulates over map order; addition commutes, so the
// directive suppresses a real determinism finding and is load-bearing.
func sumCounts(m map[string]int) int {
	total := 0
	//twvet:allow maporder — addition commutes
	for _, v := range m {
		total += v
	}
	return total
}

// sortedKeys already follows the collect-then-sort idiom, which the
// determinism pass recognizes before consulting directives: the
// annotation suppresses nothing.
func sortedKeys(m map[string]int) []string {
	var keys []string
	//twvet:allow maporder // want `//twvet:allow maporder directive suppressed nothing this run: delete it`
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type handoff struct {
	mu sync.Mutex
	n  int
}

// beginCritical returns holding the lock by contract; lockcheck consults
// the directive at the imbalance, so it is load-bearing even though the
// pairing pass (which shares the same directive table) finds this
// function clean.
//
//twvet:transfer
func (h *handoff) beginCritical() *int {
	h.mu.Lock()
	return &h.n
}

// endCritical is beginCritical's paired release.
//
//twvet:transfer
func (h *handoff) endCritical() {
	h.mu.Unlock()
}

// balancedAnyway is lock-balanced on every path: neither lockcheck nor
// pairing ever needs the escape hatch.
//
//twvet:transfer needlessly // want `//twvet:transfer needlessly directive suppressed nothing this run: delete it`
func (h *handoff) balancedAnyway() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
}

// probe is fully folded into its digest; hashcheck only consults
// //twvet:nohash at an unconsumed field, so an annotation on a hashed
// field is dead weight.
type probe struct {
	//twvet:nohash scratch — wrongly annotated, HashInto folds it in // want `//twvet:nohash scratch directive suppressed nothing this run: delete it`
	Name string
	N    int
}

// HashInto covers every field of probe, annotation notwithstanding.
func (p probe) HashInto(h *resultcache.Hasher) {
	h.WriteString("stale.probe/v1")
	h.WriteString(p.Name)
	h.WriteInt(p.N)
}

var (
	_ = sumCounts
	_ = sortedKeys
	_ = (*handoff).beginCritical
	_ = (*handoff).endCritical
	_ = (*handoff).balancedAnyway
	_ = probe{}
)
