package suite_test

import (
	"testing"

	"tapeworm/internal/analysis/analysistest"
	"tapeworm/internal/analysis/passes/suite"
)

// TestStaleDirectives runs the full analyzer suite with stale-directive
// detection, the way twvet runs it over root packages: suppression
// directives that excused nothing are findings themselves.
func TestStaleDirectives(t *testing.T) {
	analysistest.RunSuite(t, suite.All(), "stale")
}
