// Package gatecase exercises the gate analyzer: exported drivers must
// validate their options before using them.
//
//twvet:scope gate
package gatecase

import "errors"

// Options is a validatable options struct.
type Options struct {
	Frames int
}

// Validate rejects out-of-range options.
func (o Options) Validate() error {
	if o.Frames <= 0 {
		return errors.New("frames must be positive")
	}
	return nil
}

// Good validates first, handling the error.
func Good(o Options) (int, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	return o.Frames * 2, nil
}

// GoodPointer validates a pointer receiver param first.
func GoodPointer(o *Options) (int, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	return o.Frames * 2, nil
}

// Bad uses the options before validating.
func Bad(o Options) int {
	return o.Frames * 2 // want `uses o before calling o.Validate`
}

// BadDiscard validates but throws the error away.
func BadDiscard(o Options) int {
	_ = o.Validate() // want `ignores the error`
	return o.Frames * 2
}

// BadBare calls Validate as a statement, dropping the error entirely.
func BadBare(o Options) int {
	o.Validate() // want `ignores the error`
	return o.Frames * 2
}

// Allowed is an internal re-entry point whose caller already validated.
//
//twvet:allow gate
func Allowed(o Options) int {
	return o.Frames * 2
}

// unexported functions are trusted: validation happens at the exported
// boundary.
func helper(o Options) int {
	return o.Frames
}

// NoOptions takes nothing validatable and is out of the analyzer's
// reach.
func NoOptions(n int) int {
	if helper(Options{Frames: n}) > 0 {
		return n
	}
	return 0
}

// UnusedOptions never touches the options, so there is nothing to gate.
func UnusedOptions(o Options, n int) int {
	return n
}
