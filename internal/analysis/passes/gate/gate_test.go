package gate_test

import (
	"testing"

	"tapeworm/internal/analysis/analysistest"
	"tapeworm/internal/analysis/passes/gate"
)

func TestGate(t *testing.T) {
	analysistest.Run(t, gate.Analyzer, "gatecase")
}
