// Package gate enforces options hygiene in the experiment harness (the
// PR 2 panic class): every exported driver that takes an Options-style
// value — any named type with a `Validate() error` method — must call
// Validate on it, with the error handled, before the options are used
// for anything else. Unvalidated options used to surface as panics deep
// inside kernel boot (frames <= 0, malformed sampling specs) instead of
// an error at the driver boundary.
package gate

import (
	"go/ast"
	"go/types"

	"tapeworm/internal/analysis"
)

// Analyzer is the options-validation gate pass.
var Analyzer = &analysis.Analyzer{
	Name: "gate",
	Doc:  "exported experiment drivers must call Options.Validate (and handle its error) before using the options",
	Run:  run,
}

// scopePkgs are the packages whose exported functions are experiment
// drivers.
var scopePkgs = []string{"internal/experiment"}

func run(pass *analysis.Pass) error {
	inScope := pass.PathInScope(scopePkgs...)
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		dirs := pass.FileDirectives(file)
		if !inScope && !dirs.Scoped("gate") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() || fn.Recv != nil {
				continue
			}
			checkDriver(pass, dirs, fn)
		}
	}
	return nil
}

// checkDriver verifies that each validatable parameter of an exported
// function is validated before first use.
func checkDriver(pass *analysis.Pass, dirs *analysis.Directives, fn *ast.FuncDecl) {
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || !hasValidateMethod(pass, obj.Type()) {
				continue
			}
			checkParam(pass, dirs, fn, name.Name, obj)
		}
	}
}

// hasValidateMethod reports whether the type (or its pointer) has a
// method Validate() error.
func hasValidateMethod(pass *analysis.Pass, t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, "Validate")
	m, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := m.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// checkParam requires the first statement referencing the parameter to
// contain a handled param.Validate() call. The allow directive is
// consulted only once a violation is found, so an allow on a compliant
// driver reads as stale.
func checkParam(pass *analysis.Pass, dirs *analysis.Directives, fn *ast.FuncDecl, name string, obj *types.Var) {
	first := firstUseStmt(pass, fn.Body, obj)
	if first == nil {
		return // parameter unused; nothing to gate
	}
	call := validateCallOn(pass, first, obj)
	if call == nil {
		if dirs.FuncAllowed(fn, "gate") {
			return
		}
		pass.Reportf(first.Pos(),
			"exported driver %s uses %s before calling %s.Validate: validate options at the boundary (PR 2 panic class) or annotate //twvet:allow gate",
			fn.Name.Name, name, name)
		return
	}
	if discardsError(first, call) {
		if dirs.FuncAllowed(fn, "gate") {
			return
		}
		pass.Reportf(call.Pos(),
			"exported driver %s ignores the error from %s.Validate: reject invalid options instead of letting them panic later",
			fn.Name.Name, name)
	}
}

// firstUseStmt returns the top-level statement of the function body that
// first references the object.
func firstUseStmt(pass *analysis.Pass, body *ast.BlockStmt, obj *types.Var) ast.Stmt {
	for _, stmt := range body.List {
		uses := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				uses = true
				return false
			}
			return !uses
		})
		if uses {
			return stmt
		}
	}
	return nil
}

// validateCallOn finds a call of the form <param>.Validate() within the
// statement, or nil.
func validateCallOn(pass *analysis.Pass, stmt ast.Stmt, obj *types.Var) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Validate" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = call
			return false
		}
		return true
	})
	return found
}

// discardsError reports whether the Validate call's result is thrown
// away: a bare expression statement, or assignment to blank.
func discardsError(stmt ast.Stmt, call *ast.CallExpr) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return ast.Unparen(s.X) == ast.Expr(call)
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if ast.Unparen(rhs) == ast.Expr(call) && i < len(s.Lhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					return true
				}
			}
		}
	}
	return false
}
