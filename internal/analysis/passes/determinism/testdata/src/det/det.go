// Package det exercises the determinism analyzer: map iteration order,
// wall-clock reads, and nondeterministic random sources.
//
//twvet:scope determinism
package det

import (
	"math/rand" // want `import of math/rand in a deterministic package`
	"sort"
	"time"
)

// Unordered iterates a map with observable order.
func Unordered(m map[string]int) int {
	total := 0
	for k, v := range m { // want `nondeterministic order`
		total += v + len(k)
	}
	return total
}

// Keyless observes no keys, so order cannot leak.
func Keyless(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// CollectThenSort is the sanctioned sorted-iteration idiom.
func CollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Allowed is a commutative accumulation, annotated as such.
func Allowed(m map[string]int) int {
	total := 0
	//twvet:allow maporder — summation is order-insensitive
	for _, v := range m {
		total += v
	}
	return total
}

// WallClock reads the clock in a deterministic package.
func WallClock() int64 {
	return time.Now().Unix() // want `reads the wall clock`
}

// AllowedClock is excused by annotation.
func AllowedClock() int64 {
	//twvet:allow walltime — explanatory prose is fine here
	return time.Now().Unix()
}

// Rand draws from the unseeded global stream; the import line carries
// the diagnostic.
func Rand() int {
	return rand.Int()
}
