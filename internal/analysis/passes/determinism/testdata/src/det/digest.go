//twvet:scope determinism

package det

import "sort"

// hasher is a stand-in for the result-cache identity hasher: writes must
// arrive in canonical order, so feeding it from an unsorted map range
// gives the same identity different digests run to run.
type hasher struct{ n uint64 }

// WriteString folds a length-prefixed string into the digest.
func (h *hasher) WriteString(s string) { h.n += uint64(len(s)) }

// WriteUint64 folds a fixed-width integer into the digest.
func (h *hasher) WriteUint64(v uint64) { h.n += v }

// digestFromMapRange hashes map entries in iteration order: flagged.
func digestFromMapRange(h *hasher, m map[string]uint64) {
	for k, v := range m { // want `nondeterministic order`
		h.WriteString(k)
		h.WriteUint64(v)
	}
}

// digestSorted flattens the map to sorted keys first: the sanctioned
// idiom for hashing map-valued identity fields.
func digestSorted(h *hasher, m map[string]uint64) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.WriteString(k)
		h.WriteUint64(m[k])
	}
}

var _ = digestFromMapRange
var _ = digestSorted
