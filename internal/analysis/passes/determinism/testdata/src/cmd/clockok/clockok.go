// Package clockok sits under a cmd/ path segment, where wall-clock
// progress reporting is allowed without annotation.
package clockok

import "time"

// Elapsed reports wall-clock progress; exempt by package path.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
