package determinism_test

import (
	"testing"

	"tapeworm/internal/analysis/analysistest"
	"tapeworm/internal/analysis/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "det")
}

func TestCmdClockExempt(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "cmd/clockok")
}
