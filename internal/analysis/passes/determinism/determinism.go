// Package determinism flags sources of nondeterminism in packages whose
// output must be byte-identical at any parallelism (the PR 1 invariant):
//
//   - `range` over a map in a result-producing package, unless the loop
//     merely collects keys that are sorted immediately afterwards, or the
//     site is annotated //twvet:allow maporder (commutative accumulation).
//     This is exactly the bug class fixed by hand in AddrSpace.pages.
//   - wall-clock reads (time.Now/Since/Until) and nondeterministic random
//     sources (math/rand, crypto/rand) outside the allowlist: the
//     telemetry layer (timing is its job), cmd/ wall-clock reporting, and
//     tests.
//
// Simulation randomness must come from the seeded internal/rng stream so
// every table is reproducible from its seed.
package determinism

import (
	"go/ast"
	"go/types"

	"tapeworm/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag unordered map iteration in result packages and wall-clock/rand use outside the allowlist",
	Run:  run,
}

// resultPkgs are the packages whose rendered tables, reports, and event
// streams must be byte-identical run to run. internal/workload is in
// scope because the program compiler is seed-pure: a compiled replay must
// be bit-identical to the interpreter, so the package may not introduce
// iteration-order or clock nondeterminism.
var resultPkgs = []string{
	"internal/core", "internal/experiment", "internal/stats", "internal/telemetry",
	"internal/workload",
	// The digest encoders must be canonical: ranging an unsorted map into
	// a Hasher would give the same identity different digests run to run,
	// which silently defeats every cache lookup.
	"internal/resultcache",
}

// clockExempt are packages allowed to read the wall clock: telemetry owns
// run timing, and cmd binaries report wall-clock progress.
func clockExempt(path string) bool {
	return analysis.PathHasSuffix(path, "internal/telemetry") ||
		analysis.PathHasSegment(path, "cmd")
}

// nondeterministicImports are random sources that bypass the seeded
// internal/rng stream.
var nondeterministicImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// clockFuncs are the time-package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	path := pass.CanonicalPath()
	pkgInResultScope := pass.PathInScope(resultPkgs...)
	pkgClockScope := !clockExempt(path)

	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		dirs := pass.FileDirectives(file)
		mapScope := pkgInResultScope || dirs.Scoped("determinism")
		clockScope := (pkgClockScope || dirs.Scoped("determinism")) && !dirs.Scoped("walltime-exempt")

		if clockScope {
			checkImports(pass, file, dirs)
		}

		// Walk with an explicit parent stack so the sorted-keys idiom can
		// look at the statements following a range loop, and so the
		// enclosing function's //twvet: directives apply.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			switch n := n.(type) {
			case *ast.RangeStmt:
				if mapScope {
					checkMapRange(pass, dirs, stack, n)
				}
			case *ast.SelectorExpr, *ast.Ident:
				if clockScope {
					checkClockUse(pass, dirs, stack, n)
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// checkImports flags imports of nondeterministic random sources.
func checkImports(pass *analysis.Pass, file *ast.File, dirs *analysis.Directives) {
	for _, imp := range file.Imports {
		p, err := analysis.ImportPathOf(imp)
		if err != nil {
			continue
		}
		if !nondeterministicImports[p] || dirs.AllowedAt(imp, "rand") {
			continue
		}
		pass.Reportf(imp.Pos(),
			"import of %s in a deterministic package: draw randomness from the seeded internal/rng stream or annotate //twvet:allow rand", p)
	}
}

// checkClockUse flags references to time.Now/Since/Until.
func checkClockUse(pass *analysis.Pass, dirs *analysis.Directives, stack []ast.Node, n ast.Node) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockFuncs[fn.Name()] {
		return
	}
	if dirs.AllowedAt(n, "walltime") || dirs.FuncAllowed(analysis.EnclosingFunc(stack), "walltime") {
		return
	}
	pass.Reportf(n.Pos(),
		"time.%s reads the wall clock in a deterministic package: only telemetry timing, cmd wall-clock, and tests may (//twvet:allow walltime)", fn.Name())
}

// checkMapRange flags `for ... := range m` over a map unless it is the
// collect-then-sort idiom or is annotated order-insensitive.
func checkMapRange(pass *analysis.Pass, dirs *analysis.Directives, stack []ast.Node, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// `for range m {}` observes no keys, so no order either.
	if rs.Key == nil && rs.Value == nil {
		return
	}
	// Recognize the idiom before consulting directives: an //twvet:allow
	// maporder on a collect-then-sort loop suppresses nothing and should
	// be reported stale rather than marked used.
	if isCollectThenSort(pass, stack, rs) {
		return
	}
	if dirs.AllowedAt(rs, "maporder") || dirs.FuncAllowed(analysis.EnclosingFunc(stack), "maporder") {
		return
	}
	pass.Reportf(rs.Pos(),
		"iteration over map %s has nondeterministic order in a result-producing package: sort the keys first or annotate //twvet:allow maporder",
		types.ExprString(rs.X))
}

// isCollectThenSort recognizes the sanctioned sorted-iteration idiom: the
// loop body is a single append into a slice variable, and a later
// statement in the same block passes that variable to sort.* or
// slices.Sort*.
func isCollectThenSort(pass *analysis.Pass, stack []ast.Node, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" || len(call.Args) < 2 {
		return false
	}
	src, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || src.Name != dst.Name {
		return false
	}

	// Find the block that contains the range statement and scan the
	// statements after it for a sort call on dst.
	block := analysis.EnclosingBlockStmts(stack)
	seen := false
	for _, stmt := range block {
		if stmt == ast.Stmt(rs) {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		if sortsVar(pass, stmt, dst.Name) {
			return true
		}
	}
	return false
}

// sortsVar reports whether the statement calls a sort/slices sorting
// function with the named variable as first argument.
func sortsVar(pass *analysis.Pass, stmt ast.Stmt, name string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && arg.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}
