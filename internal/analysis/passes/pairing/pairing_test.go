package pairing_test

import (
	"testing"

	"tapeworm/internal/analysis/analysistest"
	"tapeworm/internal/analysis/passes/pairing"
)

func TestPairing(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer, "pair")
}

// TestPairingRefChunkSummary checks the hierarchical trap-refcount
// summary pair against a stand-in package declared under the real import
// path, so the fully qualified method names match.
func TestPairingRefChunkSummary(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer, "tapeworm/internal/mem")
}

// TestPairingResultCacheClaim checks the result-cache Acquire/Release
// pair (Complete publishes a value but is not the release) against a
// stand-in package under the real import path.
func TestPairingResultCacheClaim(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer, "tapeworm/internal/resultcache")
}

// TestPairingCheckpointFork checks the checkpoint fork lifecycle —
// Fork/ForkRun acquire, ReleaseCheckpoint releases, //twvet:transfer
// moves ownership — against a stand-in kernel under the real import
// path.
func TestPairingCheckpointFork(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer, "tapeworm/internal/kernel")
}
