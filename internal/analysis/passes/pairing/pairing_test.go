package pairing_test

import (
	"testing"

	"tapeworm/internal/analysis/analysistest"
	"tapeworm/internal/analysis/passes/pairing"
)

func TestPairing(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer, "pair")
}
