package pairing_test

import (
	"testing"

	"tapeworm/internal/analysis/analysistest"
	"tapeworm/internal/analysis/passes/pairing"
)

func TestPairing(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer, "pair")
}

// TestPairingRefChunkSummary checks the hierarchical trap-refcount
// summary pair against a stand-in package declared under the real import
// path, so the fully qualified method names match.
func TestPairingRefChunkSummary(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer, "tapeworm/internal/mem")
}

// TestPairingResultCacheClaim checks the result-cache Acquire/Release
// pair (Complete publishes a value but is not the release) against a
// stand-in package under the real import path.
func TestPairingResultCacheClaim(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer, "tapeworm/internal/resultcache")
}

// TestPairingCheckpointFork checks the checkpoint fork lifecycle —
// Fork/ForkRun acquire, ReleaseCheckpoint releases, //twvet:transfer
// moves ownership — against a stand-in kernel under the real import
// path.
func TestPairingCheckpointFork(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer, "tapeworm/internal/kernel")
}

// TestPairingCrossPackageFacts drives the inter-procedural engine across
// a package boundary: factdep/lib wraps the kernel stand-in's fork and
// exports TransfersOwnership/ReleasesResource facts; factdep/use leaks a
// fork it can only see through those facts.
func TestPairingCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, pairing.Analyzer,
		"tapeworm/internal/kernel", "factdep/lib", "factdep/use")
}
