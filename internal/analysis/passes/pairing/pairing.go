// Package pairing enforces the paper's paired-primitive discipline
// (Table 1: tw_set_trap has tw_clear_trap, every arm has a disarm) on the
// Go reproduction's resource pairs: mem trap reference counts, mach
// instruction-breakpoint arm/clear, the sync.Pool-backed buffer recycling
// in mem/pool.go, the kernel's pooled boot buffers released by
// Kernel.ReleaseBuffers, result-cache claims, and checkpoint forks.
//
// The path-balance core (internal/analysis/passes/pathbal) is structural:
// within one function, every path — fallthrough, early return, both arms
// of a conditional, each loop iteration — must acquire and release each
// resource the same number of times, with deferred releases credited at
// every exit.
//
// On top of it, this pass is inter-procedural through modular facts: a
// function whose every exit hands the caller the same surplus of a true
// ownership resource (a pooled buffer, a booted kernel, a forked
// checkpoint, a cache claim) exports a TransfersOwnership fact, and a
// function that consumes such a resource through its parameters or
// receiver exports ReleasesResource. Callers — in this package or, via
// serialized fact files, in importing packages — then account for those
// calls without any annotation. The //twvet:transfer escape hatch remains
// for shapes the engine cannot prove (closure-carried releases, loop
// acquires into collections, counter-style pairs); an annotation on a
// function the engine can prove is reported so it gets deleted.
//
// Functions that are themselves pairing primitives (they implement an
// acquire or release in the table) are exempt: their bodies are the
// transfer mechanism, not clients of it.
package pairing

import (
	"go/ast"
	"go/types"
	"sort"

	"tapeworm/internal/analysis"
	"tapeworm/internal/analysis/passes/pathbal"
)

// Analyzer is the paired set/clear balance pass.
var Analyzer = &analysis.Analyzer{
	Name:      "pairing",
	Doc:       "paired acquire/release primitives must balance on every path through a function, with ownership transfers proven by inter-procedural facts (//twvet:transfer for shapes the engine cannot prove)",
	FactTypes: []analysis.Fact{(*TransfersOwnership)(nil), (*ReleasesResource)(nil)},
	Run:       run,
}

// TransfersOwnership is the fact exported for a function whose every
// normal exit hands the caller a consistent surplus of transferable
// resources (per-pair deltas, all positive): calling it acquires.
type TransfersOwnership struct {
	Deltas map[string]int
}

// AFact marks the type as a serializable fact.
func (*TransfersOwnership) AFact() {}

// ReleasesResource is the dual fact: a function that consumes resources
// owned by its arguments or receiver (per-pair deltas, all negative):
// calling it releases.
type ReleasesResource struct {
	Deltas map[string]int
}

// AFact marks the type as a serializable fact.
func (*ReleasesResource) AFact() {}

// pairs is the resource table. Transferable marks true ownership pairs —
// a value the caller holds and must later release — which are the only
// ones fact inference applies to: counter-like pairs (trap refcounts,
// breakpoint arms, the anonymous sync.Pool protocol) would propagate
// every intentional imbalance up the call graph.
var pairs = []pathbal.Pair{
	{
		Name:     "mem trap refcount",
		Acquires: []string{"(*tapeworm/internal/mem.Controller).AddTrapRef"},
		Releases: []string{"(*tapeworm/internal/mem.Controller).ReleaseTrapRef"},
	},
	{
		// The hierarchical refcount summary (mem: refChunk/refSuper per
		// chunk of trapRef words): a 0→nonzero increment recorded in the
		// summary must be balanced by a nonzero→0 decrement, or the
		// summary diverges from the word-level refs it indexes and
		// selective pool re-zeroing skips dirty chunks.
		Name:     "trap refcount chunk summary",
		Acquires: []string{"(*tapeworm/internal/mem.Phys).refChunkInc"},
		Releases: []string{"(*tapeworm/internal/mem.Phys).refChunkDec"},
	},
	{
		Name:     "mach breakpoint arm",
		Acquires: []string{"(*tapeworm/internal/mach.Machine).SetBreakpoint"},
		Releases: []string{"(*tapeworm/internal/mach.Machine).ClearBreakpoint"},
	},
	{
		Name:     "sync.Pool buffer",
		Acquires: []string{"(*sync.Pool).Get"},
		Releases: []string{"(*sync.Pool).Put"},
	},
	{
		Name:         "pooled frame tables",
		Acquires:     []string{"tapeworm/internal/mem.GetFrameTables"},
		Releases:     []string{"tapeworm/internal/mem.PutFrameTables"},
		Transferable: true,
	},
	{
		Name:         "pooled phys buffers",
		Acquires:     []string{"tapeworm/internal/mem.getPhysBuffers", "tapeworm/internal/mem.getTrapRefs"},
		Releases:     []string{"tapeworm/internal/mem.putPhysBuffers", "tapeworm/internal/mem.putTrapRefs"},
		Transferable: true,
	},
	{
		Name:         "kernel boot buffers",
		Acquires:     []string{"tapeworm/internal/kernel.Boot", "tapeworm/internal/kernel.MustBoot"},
		Releases:     []string{"(*tapeworm/internal/kernel.Kernel).ReleaseBuffers"},
		Transferable: true,
	},
	{
		// A result-cache claim must be released on every path (hit, fresh
		// simulation, and error alike); Release without a prior Complete
		// abandons the digest so single-flight followers can take over.
		// Complete is a value publish, not the release, so it is not in
		// the release set.
		Name:         "result cache claim",
		Acquires:     []string{"(*tapeworm/internal/resultcache.Store).Acquire"},
		Releases:     []string{"(*tapeworm/internal/resultcache.Claim).Release"},
		Transferable: true,
	},
	{
		// A forked kernel owns pooled frame tables plus whatever its
		// copy-on-write Phys materializes; ReleaseCheckpoint is the
		// matching teardown (ReleaseBuffers also suffices at runtime, but
		// fork call sites should pair with the checkpoint-aware release).
		// ForkRun is the mid-run fork: it wraps Fork and transfers the same
		// ownership, so interval-replay call sites must release the forked
		// kernel on every path through a replay.
		Name:         "checkpoint fork",
		Acquires:     []string{"tapeworm/internal/kernel.Fork", "tapeworm/internal/kernel.ForkRun"},
		Releases:     []string{"(*tapeworm/internal/kernel.Kernel).ReleaseCheckpoint"},
		Transferable: true,
	},
}

// candidate is one function declaration under analysis.
type candidate struct {
	fn        *ast.FuncDecl
	obj       *types.Func
	dirs      *analysis.Directives
	annotated bool
	res       pathbal.Result
}

func run(pass *analysis.Pass) error {
	eng := pathbal.New(pairs)

	// local holds the per-function delta vectors inferred for this
	// package; the Lookup hook folds them — and imported facts — into
	// every call-site evaluation.
	local := map[*types.Func][]int{}
	eng.Lookup = func(fn *types.Func) []int {
		if d, ok := local[fn]; ok {
			return d
		}
		if fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
			return nil
		}
		var t TransfersOwnership
		if pass.ImportObjectFact(fn, &t) {
			return vectorOf(t.Deltas)
		}
		var r ReleasesResource
		if pass.ImportObjectFact(fn, &r) {
			return vectorOf(r.Deltas)
		}
		return nil
	}

	var cands []*candidate
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		dirs := pass.FileDirectives(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj != nil && eng.Primitive(obj.FullName()) {
				continue // the pair's own implementation
			}
			cands = append(cands, &candidate{
				fn:        fn,
				obj:       obj,
				dirs:      dirs,
				annotated: dirs.FuncDirective(fn, "transfer", ""),
			})
		}
	}

	// Fact inference fixpoint: re-evaluate every function until the
	// inferred vectors stabilize (call chains here are shallow; the cap
	// guards against oscillation). Annotated functions never export —
	// the annotation asserts an ownership shape the engine must not
	// propagate (closure releases, collection adoption).
	for iter := 0; iter < 5; iter++ {
		changed := false
		for _, c := range cands {
			c.res = eng.Check(pass, c.fn)
			if c.annotated || c.obj == nil {
				continue
			}
			v := inferVector(c.res, c.obj)
			if !vecEqual(local[c.obj], v) {
				changed = true
				if v == nil {
					delete(local, c.obj)
				} else {
					local[c.obj] = v
				}
			}
		}
		if !changed {
			break
		}
	}

	for obj, v := range local {
		deltas := deltasOf(v)
		if positive(v) {
			pass.ExportObjectFact(obj, &TransfersOwnership{Deltas: deltas})
		} else {
			pass.ExportObjectFact(obj, &ReleasesResource{Deltas: deltas})
		}
	}

	for _, c := range cands {
		if c.annotated {
			if c.res.Clean() {
				// Balanced function: the annotation suppresses nothing.
				// Left unmarked, the stale-directive scan reports it.
				continue
			}
			c.dirs.MarkFunc(c.fn, "transfer", "")
			if c.obj != nil && inferVector(c.res, c.obj) != nil {
				pass.Reportf(c.fn.Pos(),
					"ownership transfer by %s is provable inter-procedurally: delete the //twvet:transfer directive and let the facts engine carry it",
					c.fn.Name.Name)
			}
			continue
		}
		if _, proven := local[c.obj]; proven {
			continue // consistent transfer: exported as a fact, not a finding
		}
		if len(c.res.Violations) > 0 {
			v := c.res.Violations[0] // one report per function keeps output readable
			pass.Reportf(v.Pos, "%s", v.Message)
		}
	}
	return nil
}

// inferVector decides whether a check result describes a provable
// ownership transfer and returns its per-pair delta vector, or nil.
// Eligibility: no structural violations (merge conflicts, loop
// imbalance), every nonzero exit identical (zero exits — error or
// disabled paths — are fine: the caller's failed-acquire idiom discounts
// them), deltas confined to transferable pairs with a uniform sign, and a
// signature that can actually carry the ownership: a non-error result for
// acquires, a receiver or parameter for releases.
func inferVector(res pathbal.Result, obj *types.Func) []int {
	if res.Skipped || len(res.Exits) == 0 {
		return nil
	}
	for _, v := range res.Violations {
		if v.Kind != pathbal.ExitImbalance {
			return nil
		}
	}
	var vec []int
	for _, exit := range res.Exits {
		if allZero(exit) {
			continue
		}
		if vec == nil {
			vec = exit
			continue
		}
		if !vecEqual(vec, exit) {
			return nil
		}
	}
	if vec == nil {
		return nil
	}
	sign := 0
	for i, v := range vec {
		if v == 0 {
			continue
		}
		if !pairs[i].Transferable {
			return nil
		}
		s := 1
		if v < 0 {
			s = -1
		}
		if sign == 0 {
			sign = s
		} else if sign != s {
			return nil
		}
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sign > 0 {
		// Ownership enters the caller through a returned value; a
		// receiver alone cannot carry an acquire (that shape — filling a
		// structure in place — stays behind //twvet:transfer).
		carried := false
		for i := 0; i < sig.Results().Len(); i++ {
			if !isErrorType(sig.Results().At(i).Type()) {
				carried = true
				break
			}
		}
		if !carried {
			return nil
		}
	} else {
		// Ownership leaves through any held reference.
		if sig.Recv() == nil && sig.Params().Len() == 0 {
			return nil
		}
	}
	return vec
}

func allZero(v []int) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

func vecEqual(a, b []int) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func positive(v []int) bool {
	for _, x := range v {
		if x > 0 {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// deltasOf converts an index vector to the name-keyed map serialized in
// facts (stable across pair-table reorderings).
func deltasOf(v []int) map[string]int {
	m := map[string]int{}
	for i, x := range v {
		if x != 0 {
			m[pairs[i].Name] = x
		}
	}
	return m
}

// vectorOf converts a fact's name-keyed deltas back to an index vector.
func vectorOf(deltas map[string]int) []int {
	v := make([]int, len(pairs))
	names := make([]string, 0, len(deltas))
	for n := range deltas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for i := range pairs {
			if pairs[i].Name == n {
				v[i] = deltas[n]
			}
		}
	}
	return v
}
