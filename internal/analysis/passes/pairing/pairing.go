// Package pairing enforces the paper's paired-primitive discipline
// (Table 1: tw_set_trap has tw_clear_trap, every arm has a disarm) on the
// Go reproduction's resource pairs: mem trap reference counts, mach
// instruction-breakpoint arm/clear, the sync.Pool-backed buffer recycling
// in mem/pool.go, and the kernel's pooled boot buffers released by
// Kernel.ReleaseBuffers.
//
// The analysis is intra-procedural and structural: within one function,
// every path — fallthrough, early return, both arms of a conditional,
// each loop iteration — must acquire and release each resource the same
// number of times, with deferred releases credited at every exit.
// Functions that intentionally move ownership across a function boundary
// (an arm kept until a later trap, a pool handing a buffer to its caller)
// declare so with //twvet:transfer, which is the machine-checked version
// of "this imbalance is the design".
//
// Functions containing goto are skipped (none exist in this repo).
package pairing

import (
	"go/ast"
	"go/token"
	"go/types"

	"tapeworm/internal/analysis"
)

// Analyzer is the paired set/clear balance pass.
var Analyzer = &analysis.Analyzer{
	Name: "pairing",
	Doc:  "paired acquire/release primitives must balance on every path through a function (//twvet:transfer to move ownership)",
	Run:  run,
}

// pair describes one refcounted resource: the fully qualified acquire
// and release functions (types.Func.FullName form).
type pair struct {
	name     string
	acquires map[string]bool
	releases map[string]bool
}

var pairs = []pair{
	{
		name:     "mem trap refcount",
		acquires: set("(*tapeworm/internal/mem.Controller).AddTrapRef"),
		releases: set("(*tapeworm/internal/mem.Controller).ReleaseTrapRef"),
	},
	{
		// The hierarchical refcount summary (mem: refChunk/refSuper per
		// chunk of trapRef words): a 0→nonzero increment recorded in the
		// summary must be balanced by a nonzero→0 decrement, or the
		// summary diverges from the word-level refs it indexes and
		// selective pool re-zeroing skips dirty chunks.
		name:     "trap refcount chunk summary",
		acquires: set("(*tapeworm/internal/mem.Phys).refChunkInc"),
		releases: set("(*tapeworm/internal/mem.Phys).refChunkDec"),
	},
	{
		name:     "mach breakpoint arm",
		acquires: set("(*tapeworm/internal/mach.Machine).SetBreakpoint"),
		releases: set("(*tapeworm/internal/mach.Machine).ClearBreakpoint"),
	},
	{
		name:     "sync.Pool buffer",
		acquires: set("(*sync.Pool).Get"),
		releases: set("(*sync.Pool).Put"),
	},
	{
		name:     "pooled frame tables",
		acquires: set("tapeworm/internal/mem.GetFrameTables"),
		releases: set("tapeworm/internal/mem.PutFrameTables"),
	},
	{
		name:     "pooled phys buffers",
		acquires: set("tapeworm/internal/mem.getPhysBuffers", "tapeworm/internal/mem.getTrapRefs"),
		releases: set("tapeworm/internal/mem.putPhysBuffers", "tapeworm/internal/mem.putTrapRefs"),
	},
	{
		name:     "kernel boot buffers",
		acquires: set("tapeworm/internal/kernel.Boot", "tapeworm/internal/kernel.MustBoot"),
		releases: set("(*tapeworm/internal/kernel.Kernel).ReleaseBuffers"),
	},
	{
		// A result-cache claim must be released on every path (hit, fresh
		// simulation, and error alike); Release without a prior Complete
		// abandons the digest so single-flight followers can take over.
		// Complete is a value publish, not the release, so it is not in
		// the release set.
		name:     "result cache claim",
		acquires: set("(*tapeworm/internal/resultcache.Store).Acquire"),
		releases: set("(*tapeworm/internal/resultcache.Claim).Release"),
	},
	{
		// A forked kernel owns pooled frame tables plus whatever its
		// copy-on-write Phys materializes; ReleaseCheckpoint is the
		// matching teardown (ReleaseBuffers also suffices at runtime, but
		// fork call sites should pair with the checkpoint-aware release).
		// ForkRun is the mid-run fork: it wraps Fork and transfers the same
		// ownership, so interval-replay call sites must release the forked
		// kernel on every path through a replay.
		name:     "checkpoint fork",
		acquires: set("tapeworm/internal/kernel.Fork", "tapeworm/internal/kernel.ForkRun"),
		releases: set("(*tapeworm/internal/kernel.Kernel).ReleaseCheckpoint"),
	},
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// classify returns the per-pair delta of one resolved callee: +1 for an
// acquire, -1 for a release, 0 otherwise.
func classify(fn *types.Func) (idx int, delta int) {
	full := fn.FullName()
	for i, p := range pairs {
		if p.acquires[full] {
			return i, +1
		}
		if p.releases[full] {
			return i, -1
		}
	}
	return -1, 0
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		dirs := analysis.NewDirectives(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if dirs.FuncDirective(fn, "transfer", "") {
				continue
			}
			checkFunc(pass, dirs, fn)
		}
	}
	return nil
}

// bal is the per-pair acquire-minus-release count along one path.
type bal []int

func zero() bal { return make(bal, len(pairs)) }

func (b bal) clone() bal {
	c := make(bal, len(b))
	copy(c, b)
	return c
}

func (b bal) add(o bal) {
	for i := range b {
		b[i] += o[i]
	}
}

func (b bal) equal(o bal) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bal) isZero() bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// checker evaluates one function body.
type checker struct {
	pass     *analysis.Pass
	dirs     *analysis.Directives
	fn       *ast.FuncDecl
	deferred bal // releases (and acquires) registered by defer statements
	reported bool
}

// state is the abstract execution state at one program point.
type state struct {
	b          bal
	terminated bool
}

func checkFunc(pass *analysis.Pass, dirs *analysis.Directives, fn *ast.FuncDecl) {
	if hasGoto(fn.Body) {
		return
	}
	c := &checker{pass: pass, dirs: dirs, fn: fn, deferred: zero()}
	st := c.block(fn.Body.List, state{b: zero()})
	if !st.terminated {
		c.checkExit(st.b, fn.Body.Rbrace)
	}
}

// checkExit verifies balance-plus-deferred is zero at a function exit.
func (c *checker) checkExit(b bal, pos token.Pos) {
	if c.reported {
		return // one report per function keeps the output readable
	}
	net := b.clone()
	net.add(c.deferred)
	for i, v := range net {
		if v != 0 {
			verb := "acquired but not released"
			if v < 0 {
				verb = "released more times than acquired"
			}
			c.pass.Reportf(pos,
				"%s %s on this path through %s: balance set/clear pairs or annotate the function //twvet:transfer",
				pairs[i].name, verb, c.fn.Name.Name)
			c.reported = true
			return
		}
	}
}

// block evaluates a statement list. It recognizes the failed-acquire
// idiom across statement boundaries: after `x, err := Acquire(...)`, the
// branch taken when `err != nil` never acquired the resource.
func (c *checker) block(stmts []ast.Stmt, st state) state {
	var pend *failedAcquire
	for _, s := range stmts {
		if st.terminated {
			break
		}
		if ifs, ok := s.(*ast.IfStmt); ok {
			st = c.ifStmt(ifs, st, pend)
			pend = nil
			continue
		}
		pend = nil
		if asg, ok := s.(*ast.AssignStmt); ok {
			pend = c.acquireWithErr(asg)
		}
		st = c.stmt(s, st)
	}
	return st
}

// failedAcquire records an acquire statement that also produced an error
// value, so the immediately following `if err != nil` check can discount
// the acquire on its failing branch.
type failedAcquire struct {
	errObj types.Object
	delta  bal
}

// acquireWithErr reports whether the assignment both performs an acquire
// and binds an error-typed variable (the acquire's failure signal).
func (c *checker) acquireWithErr(asg *ast.AssignStmt) *failedAcquire {
	delta := zero()
	c.scanCalls(asg, delta, true)
	acquired := false
	for i, v := range delta {
		if v > 0 {
			acquired = true
		} else if v < 0 {
			delta[i] = 0 // only discount acquires, never releases
		}
	}
	if !acquired {
		return nil
	}
	for _, lhs := range asg.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj != nil && types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
			return &failedAcquire{errObj: obj, delta: delta}
		}
	}
	return nil
}

// condIsErrNotNil reports whether cond is `err != nil` for the given
// error object.
func condIsErrNotNil(pass *analysis.Pass, cond ast.Expr, errObj types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	matches := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (matches(be.X) && isNil(be.Y)) || (matches(be.Y) && isNil(be.X))
}

// ifStmt evaluates an if statement; pend carries a preceding
// acquire-with-error whose failing branch should discount the acquire.
func (c *checker) ifStmt(s *ast.IfStmt, st state, pend *failedAcquire) state {
	if s.Init != nil {
		st = c.stmt(s.Init, st)
		if asg, ok := s.Init.(*ast.AssignStmt); ok {
			if fa := c.acquireWithErr(asg); fa != nil {
				pend = fa
			}
		}
	}
	c.scanExpr(s.Cond, st.b)
	thenB := st.b.clone()
	if pend != nil && condIsErrNotNil(c.pass, s.Cond, pend.errObj) {
		// Failing branch of the acquire's own error check: the resource
		// was never acquired there.
		for i := range thenB {
			thenB[i] -= pend.delta[i]
		}
	}
	thenSt := c.block(s.Body.List, state{b: thenB})
	elseSt := state{b: st.b.clone()}
	if s.Else != nil {
		elseSt = c.stmt(s.Else, elseSt)
	}
	return c.merge(s, []state{thenSt, elseSt})
}

// stmt evaluates one statement.
func (c *checker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, st.b)
		}
		c.checkExit(st.b, s.Pos())
		st.terminated = true
		return st

	case *ast.DeferStmt:
		c.scanDefer(s.Call, st.b)
		return st

	case *ast.IfStmt:
		return c.ifStmt(s, st, nil)

	case *ast.BlockStmt:
		return c.block(s.List, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, st.b)
		}
		c.loopBody(s.Body, s.Post, st.b)
		return st

	case *ast.RangeStmt:
		c.scanExpr(s.X, st.b)
		c.loopBody(s.Body, nil, st.b)
		return st

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.multiway(s, st)

	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)

	case *ast.BranchStmt:
		// break/continue leave the enclosing loop or switch arm; the
		// loop-neutrality check in loopBody covers the loop cases.
		st.terminated = true
		return st

	default:
		// Assignments, expression statements, declarations, go, send:
		// count every call in source order; net effect is order-free.
		c.scanNode(s, st.b)
		if exits(c.pass, s) {
			st.terminated = true
		}
		return st
	}
}

// merge joins the branch states of a conditional: surviving branches
// must agree on every resource balance.
func (c *checker) merge(at ast.Node, branches []state) state {
	var alive []state
	for _, b := range branches {
		if !b.terminated {
			alive = append(alive, b)
		}
	}
	if len(alive) == 0 {
		return state{terminated: true}
	}
	first := alive[0]
	for _, b := range alive[1:] {
		if !b.b.equal(first.b) && !c.reported {
			c.pass.Reportf(at.Pos(),
				"paths through this branch disagree on paired acquire/release balance in %s: balance each arm or annotate the function //twvet:transfer",
				c.fn.Name.Name)
			c.reported = true
			break
		}
	}
	return first
}

// multiway evaluates switch/type-switch/select as parallel branches.
func (c *checker) multiway(s ast.Stmt, st state) state {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, st.b)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.scanNode(s.Assign, st.b)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	branches := []state{}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.scanExpr(e, st.b)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.scanNode(cl.Comm, st.b)
			}
			stmts = cl.Body
		}
		branches = append(branches, c.block(stmts, state{b: st.b.clone()}))
	}
	if !hasDefault {
		// No default: the zero-delta fallthrough path exists too.
		branches = append(branches, state{b: st.b.clone()})
	}
	return c.merge(s, branches)
}

// loopBody requires a loop body to be resource-neutral per iteration.
// It evaluates from the loop-entry balance so returns inside the body are
// checked against the true path balance (entry + iteration so far).
func (c *checker) loopBody(body *ast.BlockStmt, post ast.Stmt, entry bal) {
	st := c.block(body.List, state{b: entry.clone()})
	if post != nil && !st.terminated {
		st = c.stmt(post, st)
	}
	if !st.terminated && !c.reported {
		for i := range st.b {
			if v := st.b[i] - entry[i]; v != 0 {
				verb := "acquires"
				if v < 0 {
					verb = "over-releases"
				}
				c.pass.Reportf(body.Pos(),
					"loop iteration %s %s without balancing it: balance the body or annotate the function //twvet:transfer",
					verb, pairs[i].name)
				c.reported = true
				return
			}
		}
	}
}

// scanDefer registers a deferred call's deltas (including those inside a
// deferred closure) to be credited at every exit reached after this
// statement. Argument expressions evaluate immediately, so their deltas
// land in the current balance.
func (c *checker) scanDefer(call *ast.CallExpr, now bal) {
	for _, arg := range call.Args {
		c.scanExpr(arg, now)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.scanCalls(lit.Body, c.deferred, false)
		return
	}
	if fn := analysis.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
		if i, d := classify(fn); i >= 0 {
			c.deferred[i] += d
		}
	}
}

// scanExpr accumulates the deltas of every paired call in an expression.
// Function literals are skipped: their bodies execute elsewhere and are
// checked as their own scopes.
func (c *checker) scanExpr(e ast.Expr, into bal) {
	if e == nil {
		return
	}
	c.scanCalls(e, into, true)
}

// scanNode accumulates deltas over any node.
func (c *checker) scanNode(n ast.Node, into bal) {
	if n == nil {
		return
	}
	c.scanCalls(n, into, true)
}

// scanCalls walks n counting paired calls. When skipFuncLits is set,
// closure bodies are not descended into.
func (c *checker) scanCalls(n ast.Node, into bal, skipFuncLits bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && skipFuncLits {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
			if i, d := classify(fn); i >= 0 {
				into[i] += d
			}
		}
		return true
	})
}

// exits reports whether the statement unconditionally leaves the
// function: panic, os.Exit, log.Fatal*.
func exits(pass *analysis.Pass, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isUse := pass.TypesInfo.Uses[id].(*types.Builtin); isUse || pass.TypesInfo.Uses[id] == nil {
			return true
		}
	}
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
		full := fn.FullName()
		switch full {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}

// hasGoto reports whether the body contains a goto statement.
func hasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok.String() == "goto" {
			found = true
			return false
		}
		return !found
	})
	return found
}
