// Package lib wraps the kernel stand-in's checkpoint fork behind helper
// functions, so the companion package factdep/use can only see the
// acquisition through this package's exported facts — the golden test for
// cross-package fact flow.
package lib

import "tapeworm/internal/kernel"

// MustFork forks and panics on error: every normal exit hands the caller
// the forked kernel, so the pairing engine exports a TransfersOwnership
// fact with no annotation anywhere.
func MustFork(cp *kernel.Checkpoint, cfg kernel.Config, resume kernel.ProgramResume) *kernel.Kernel {
	fk, err := kernel.ForkRun(cp, cfg, resume)
	if err != nil {
		panic(err)
	}
	return fk
}

// Scrap releases a forked kernel through its parameter: the dual
// ReleasesResource fact.
func Scrap(fk *kernel.Kernel) {
	fk.ReleaseCheckpoint()
}
