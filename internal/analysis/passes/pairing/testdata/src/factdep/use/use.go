// Package use consumes factdep/lib: none of the pairing table's
// primitives appear in this file, so every diagnostic here depends on the
// TransfersOwnership/ReleasesResource facts imported from lib.
package use

import (
	"tapeworm/internal/kernel"

	"factdep/lib"
)

// replayBalanced forks through lib and releases through lib: balanced
// purely by imported facts.
func replayBalanced(cp *kernel.Checkpoint, cfg kernel.Config, resume kernel.ProgramResume) {
	fk := lib.MustFork(cp, cfg, resume)
	fk.Run(1000)
	lib.Scrap(fk)
}

// replayLeaked forgets the release: the acquisition is only visible via
// lib.MustFork's fact.
func replayLeaked(cp *kernel.Checkpoint, cfg kernel.Config, resume kernel.ProgramResume) {
	fk := lib.MustFork(cp, cfg, resume)
	fk.Run(1000)
} // want `checkpoint fork acquired but not released`

var _ = replayBalanced
var _ = replayLeaked
