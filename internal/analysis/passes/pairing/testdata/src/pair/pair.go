// Package pair exercises the pairing analyzer on the sync.Pool pair and
// the repo's trap/breakpoint primitives.
package pair

import (
	"errors"
	"sync"

	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

var pool sync.Pool

// Balanced gets and puts on every path.
func Balanced() int {
	b := pool.Get()
	n := 0
	if b != nil {
		n = 1
	}
	pool.Put(b)
	return n
}

// DeferBalanced releases via defer, which covers every exit.
func DeferBalanced(fail bool) error {
	b := pool.Get()
	defer pool.Put(b)
	if fail {
		return errFail
	}
	return nil
}

// LeakOnEarlyReturn forgets the Put on the error path.
func LeakOnEarlyReturn(fail bool) error {
	b := pool.Get()
	if fail {
		return errFail // want `acquired but not released`
	}
	pool.Put(b)
	return nil
}

// BranchImbalance puts on only one arm.
func BranchImbalance(flip bool) {
	b := pool.Get()
	if flip { // want `paths through this branch disagree`
		pool.Put(b)
	}
}

// LoopLeak acquires once per iteration without releasing.
func LoopLeak(n int) {
	for i := 0; i < n; i++ { // want `loop iteration acquires`
		_ = pool.Get()
	}
}

// LoopBalanced is neutral per iteration.
func LoopBalanced(n int) {
	for i := 0; i < n; i++ {
		b := pool.Get()
		pool.Put(b)
	}
}

// Transfer hands the buffer to its caller by design.
//
//twvet:transfer
func Transfer() any {
	return pool.Get()
}

// ArmWithoutClear leaves a breakpoint armed past the function boundary.
func ArmWithoutClear(m *mach.Machine, pa mem.PAddr) {
	m.SetBreakpoint(pa)
} // want `mach breakpoint arm acquired but not released`

// ArmClear balances the breakpoint pair.
func ArmClear(m *mach.Machine, pa mem.PAddr) {
	m.SetBreakpoint(pa)
	m.ClearBreakpoint(pa)
}

// RefBalanced pairs the trap refcount calls on the straight-line path.
func RefBalanced(c *mem.Controller, pa mem.PAddr) {
	c.AddTrapRef(pa)
	c.ReleaseTrapRef(pa)
}

var errFail = errors.New("fail")

// Panics terminates without releasing: panic exits are not balance
// checked (the process is tearing down).
func Panics() {
	_ = pool.Get()
	panic("unreachable")
}
