// Package resultcache is a golden-test stand-in for the real
// tapeworm/internal/resultcache: it redeclares the Acquire/Release claim
// API under the same import path, so the pairing analyzer's
// fully-qualified name matching sees the genuine result-cache pair
// without the test depending on the real store's internals.
package resultcache

import "errors"

// Digest mirrors the real content address.
type Digest [32]byte

// Claim mirrors the real claim handle.
type Claim struct {
	val any
	hit bool
}

// Store mirrors the real store.
type Store struct{}

// Acquire mirrors the real claim acquisition.
func (s *Store) Acquire(d Digest, dir string) (*Claim, error) {
	if dir == "missing" {
		return nil, errors.New("no such directory")
	}
	return &Claim{}, nil
}

// Cached mirrors the hit check.
func (c *Claim) Cached() (any, bool) { return c.val, c.hit }

// Complete mirrors the value publish — deliberately not a release.
func (c *Claim) Complete(v any) error { return nil }

// Release mirrors the idempotent claim release.
func (c *Claim) Release() {}

// acquireBalanced is the documented claim protocol: Release deferred on
// every path, Complete publishing before the fresh-simulation return.
func acquireBalanced(s *Store, d Digest) (any, error) {
	claim, err := s.Acquire(d, "")
	if err != nil {
		return nil, err
	}
	defer claim.Release()
	if v, ok := claim.Cached(); ok {
		return v, nil
	}
	v := "simulated"
	if err := claim.Complete(v); err != nil {
		return nil, err
	}
	return v, nil
}

// hitWithoutRelease forgets the Release on the cache-hit path. The hit
// value is consumed in place rather than returned: a signature carrying
// a non-error result would read as an ownership transfer to the facts
// engine instead of a leak.
func hitWithoutRelease(s *Store, d Digest, sink func(any)) error {
	claim, err := s.Acquire(d, "")
	if err != nil {
		return err
	}
	if v, ok := claim.Cached(); ok {
		sink(v)
		return nil // want `result cache claim acquired but not released`
	}
	claim.Release()
	return nil
}

// completeIsNotRelease publishes the value but never releases the claim:
// Complete alone must not satisfy the pair.
func completeIsNotRelease(s *Store, d Digest) error {
	claim, err := s.Acquire(d, "")
	if err != nil {
		return err
	}
	return claim.Complete("simulated") // want `result cache claim acquired but not released`
}

var _ = acquireBalanced
var _ = hitWithoutRelease
var _ = completeIsNotRelease
