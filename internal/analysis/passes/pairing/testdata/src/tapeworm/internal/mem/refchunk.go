// Package mem is a golden-test stand-in for the real
// tapeworm/internal/mem: it redeclares the two-level trap-refcount
// summary API under the same import path, so the pairing analyzer's
// fully-qualified name matching sees the genuine
// (*tapeworm/internal/mem.Phys).refChunkInc/refChunkDec pair without the
// test depending on the real package's (transfer-annotated) internals.
package mem

// Phys mirrors the summary-bearing fields of the real mem.Phys.
type Phys struct {
	trapRef  []uint8
	refChunk []uint8
	refSuper []uint8
}

func (p *Phys) refChunkInc(w uint32) { p.refChunk[w>>6]++ }
func (p *Phys) refChunkDec(w uint32) { p.refChunk[w>>6]-- }

// incDecBalanced pairs the summary increment with its decrement on the
// straight-line path.
func (p *Phys) incDecBalanced(w uint32) {
	p.refChunkInc(w)
	p.refChunkDec(w)
}

// incWithoutDec records a 0→nonzero transition in the summary without
// the balancing decrement: the summary would diverge from the word refs.
func (p *Phys) incWithoutDec(w uint32) {
	p.refChunkInc(w)
} // want `trap refcount chunk summary acquired but not released`

// branchImbalance decrements the summary on only one arm.
func (p *Phys) branchImbalance(w uint32, drop bool) {
	p.refChunkInc(w)
	if drop { // want `paths through this branch disagree`
		p.refChunkDec(w)
	}
}

// loopLeak increments once per iteration without balancing.
func (p *Phys) loopLeak(n int) {
	for i := 0; i < n; i++ { // want `loop iteration acquires`
		p.refChunkInc(uint32(i))
	}
}

// adoptRef moves the summary increment across the function boundary by
// design (the real AddTrapRef holds it until ReleaseTrapRef or a
// destroyed-trap notification).
//
//twvet:transfer
func (p *Phys) adoptRef(w uint32) {
	p.refChunkInc(w)
}

var _ = (*Phys).incDecBalanced
var _ = (*Phys).incWithoutDec
var _ = (*Phys).branchImbalance
var _ = (*Phys).loopLeak
var _ = (*Phys).adoptRef
