// Package kernel is a golden-test stand-in for the real
// tapeworm/internal/kernel: it redeclares the checkpoint fork lifecycle
// (Fork, ForkRun, ReleaseCheckpoint) under the same import path, so the
// pairing analyzer's fully-qualified name matching sees the genuine
// checkpoint-fork pair without the test depending on the real kernel's
// internals.
package kernel

import "errors"

// Checkpoint mirrors the real frozen kernel image.
type Checkpoint struct{ midrun bool }

// Config mirrors the real kernel configuration.
type Config struct{}

// Kernel mirrors the real kernel handle.
type Kernel struct{}

// ProgramCursor mirrors the real resumable stream position.
type ProgramCursor struct{}

// Program mirrors the real task program.
type Program interface{}

// ProgramResume mirrors the real cursor-rebuild callback.
type ProgramResume func(ProgramCursor) (Program, error)

// Fork mirrors the real post-boot fork: the returned kernel owns pooled
// buffers until ReleaseCheckpoint.
func Fork(cp *Checkpoint, cfg Config) (*Kernel, error) {
	if cp == nil {
		return nil, errors.New("nil checkpoint")
	}
	return &Kernel{}, nil
}

// ForkRun mirrors the real mid-run fork: same ownership as Fork, plus
// cursor resumption.
func ForkRun(cp *Checkpoint, cfg Config, resume ProgramResume) (*Kernel, error) {
	if !cp.midrun {
		return nil, errors.New("no run state")
	}
	return &Kernel{}, nil
}

// ReleaseCheckpoint mirrors the real pooled-buffer teardown.
func (k *Kernel) ReleaseCheckpoint() {}

// Run mirrors the real run loop.
func (k *Kernel) Run(n int) {}

// forkRunBalanced is the documented replay protocol: the forked kernel
// released by defer on every path, including the error returns after
// the fork succeeded.
func forkRunBalanced(cp *Checkpoint, cfg Config, resume ProgramResume) error {
	fk, err := ForkRun(cp, cfg, resume)
	if err != nil {
		return err
	}
	defer fk.ReleaseCheckpoint()
	fk.Run(1000)
	return nil
}

// forkRunLeakedOnError releases on the happy path only: the early
// return after a successful fork leaks the pooled buffers.
func forkRunLeakedOnError(cp *Checkpoint, cfg Config, resume ProgramResume, bad bool) error {
	fk, err := ForkRun(cp, cfg, resume)
	if err != nil {
		return err
	}
	if bad {
		return errors.New("window diverged") // want `checkpoint fork acquired but not released`
	}
	fk.Run(1000)
	fk.ReleaseCheckpoint()
	return nil
}

// forkRunNeverReleased forgets the release entirely.
func forkRunNeverReleased(cp *Checkpoint, cfg Config, resume ProgramResume) (*Kernel, error) {
	fk, err := ForkRun(cp, cfg, resume)
	if err != nil {
		return nil, err
	}
	fk.Run(1000)
	return fk, nil // want `checkpoint fork acquired but not released`
}

// forkRunTransfer hands the forked kernel to its caller by design — the
// real ForkRun wrapper shape — and declares so.
//
//twvet:transfer — ownership moves to the caller.
func forkRunTransfer(cp *Checkpoint, cfg Config, resume ProgramResume) (*Kernel, error) {
	return ForkRun(cp, cfg, resume)
}

var _ = forkRunBalanced
var _ = forkRunLeakedOnError
var _ = forkRunNeverReleased
var _ = forkRunTransfer
