// Package kernel is a golden-test stand-in for the real
// tapeworm/internal/kernel: it redeclares the checkpoint fork lifecycle
// (Fork, ForkRun, ReleaseCheckpoint) under the same import path, so the
// pairing analyzer's fully-qualified name matching sees the genuine
// checkpoint-fork pair without the test depending on the real kernel's
// internals.
package kernel

import "errors"

// Checkpoint mirrors the real frozen kernel image.
type Checkpoint struct{ midrun bool }

// Config mirrors the real kernel configuration.
type Config struct{}

// Kernel mirrors the real kernel handle.
type Kernel struct{}

// ProgramCursor mirrors the real resumable stream position.
type ProgramCursor struct{}

// Program mirrors the real task program.
type Program interface{}

// ProgramResume mirrors the real cursor-rebuild callback.
type ProgramResume func(ProgramCursor) (Program, error)

// Fork mirrors the real post-boot fork: the returned kernel owns pooled
// buffers until ReleaseCheckpoint.
func Fork(cp *Checkpoint, cfg Config) (*Kernel, error) {
	if cp == nil {
		return nil, errors.New("nil checkpoint")
	}
	return &Kernel{}, nil
}

// ForkRun mirrors the real mid-run fork: same ownership as Fork, plus
// cursor resumption.
func ForkRun(cp *Checkpoint, cfg Config, resume ProgramResume) (*Kernel, error) {
	if !cp.midrun {
		return nil, errors.New("no run state")
	}
	return &Kernel{}, nil
}

// ReleaseCheckpoint mirrors the real pooled-buffer teardown.
func (k *Kernel) ReleaseCheckpoint() {}

// Run mirrors the real run loop.
func (k *Kernel) Run(n int) {}

// forkRunBalanced is the documented replay protocol: the forked kernel
// released by defer on every path, including the error returns after
// the fork succeeded.
func forkRunBalanced(cp *Checkpoint, cfg Config, resume ProgramResume) error {
	fk, err := ForkRun(cp, cfg, resume)
	if err != nil {
		return err
	}
	defer fk.ReleaseCheckpoint()
	fk.Run(1000)
	return nil
}

// forkRunLeakedOnError releases on the happy path only: the early
// return after a successful fork leaks the pooled buffers.
func forkRunLeakedOnError(cp *Checkpoint, cfg Config, resume ProgramResume, bad bool) error {
	fk, err := ForkRun(cp, cfg, resume)
	if err != nil {
		return err
	}
	if bad {
		return errors.New("window diverged") // want `checkpoint fork acquired but not released`
	}
	fk.Run(1000)
	fk.ReleaseCheckpoint()
	return nil
}

// forkRunNeverReleased forgets the release entirely. It returns only the
// run error — a function returning the kernel itself would be an
// ownership-transfer shape the facts engine proves instead of flagging.
func forkRunNeverReleased(cp *Checkpoint, cfg Config, resume ProgramResume) error {
	fk, err := ForkRun(cp, cfg, resume)
	if err != nil {
		return err
	}
	fk.Run(1000)
	return nil // want `checkpoint fork acquired but not released`
}

// forkRunTransfer hands the forked kernel to its caller — the real
// ForkRun wrapper shape. The annotation is now redundant: every exit
// hands back the same surplus with a non-error carrier, so the facts
// engine proves the transfer and asks for the directive's deletion.
//
//twvet:transfer — ownership moves to the caller.
func forkRunTransfer(cp *Checkpoint, cfg Config, resume ProgramResume) (*Kernel, error) { // want `ownership transfer by forkRunTransfer is provable inter-procedurally`
	return ForkRun(cp, cfg, resume)
}

// parked holds a forked kernel released at sweep teardown, outside any
// caller's view.
var parked *Kernel

// forkRunParked parks the forked kernel in package state: the caller
// cannot see the acquisition and no result carries it, so the engine
// cannot prove the transfer and the annotation is load-bearing.
//
//twvet:transfer
func forkRunParked(cp *Checkpoint, cfg Config, resume ProgramResume) error {
	fk, err := ForkRun(cp, cfg, resume)
	if err != nil {
		return err
	}
	parked = fk
	return nil
}

var _ = forkRunBalanced
var _ = forkRunLeakedOnError
var _ = forkRunNeverReleased
var _ = forkRunTransfer
var _ = forkRunParked
