// Package hashcheck guards the result cache's soundness boundary: a
// cached result is only valid if every semantically relevant field of an
// execution identity is folded into its digest. The content-addressed
// store (internal/resultcache) and the checkpoint caches key on canonical
// hashes of identity structs, so a field added to workload.Spec or
// core.Config but forgotten in HashInto would silently alias distinct
// configurations to one digest — a stale-cache miscomparison at runtime.
// This pass turns that into a lint failure.
//
// Two shapes are checked structurally, comparing a struct's field set
// against the fields its encoder consumes:
//
//   - every named struct type with a HashInto(*resultcache.Hasher) method
//     must consume each of its fields in that method;
//   - every function annotated //twvet:digest <TypeName> must consume
//     each field of that (same-package) type — this covers encoders that
//     are not methods: the experiment digest (runConfig → resultDigest),
//     the gob wire forms (resultWire), and checkpoint keys (ckKey).
//
// A field deliberately excluded from an identity carries
// //twvet:nohash <reason> on its declaration line; a reason is required.
// Consumption counts selector reads through any value of the type
// (receiver, parameter, local) and keys of composite literals; an unkeyed
// composite literal consumes every field by construction.
package hashcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"tapeworm/internal/analysis"
)

// Analyzer is the digest-completeness pass.
var Analyzer = &analysis.Analyzer{
	Name: "hashcheck",
	Doc:  "every field of a hashed identity struct must be folded into its HashInto/encoder digest or carry //twvet:nohash <reason>",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Named struct types with a HashInto(*resultcache.Hasher) method.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() == "HashInto" && isHasherSig(m) {
				if decl := funcDecl(pass, m); decl != nil {
					checkEncoder(pass, decl, named, "HashInto digest of "+name)
				}
			}
		}
	}

	// Functions annotated //twvet:digest <TypeName>.
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		dirs := pass.FileDirectives(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			for _, arg := range dirs.FuncDirectiveArgs(fn, "digest") {
				if arg == "" {
					pass.Reportf(fn.Pos(), "//twvet:digest directive on %s needs a type name", fn.Name.Name)
					continue
				}
				obj := scope.Lookup(arg)
				tn, ok := obj.(*types.TypeName)
				if !ok {
					pass.Reportf(fn.Pos(), "//twvet:digest %s on %s: no such type in this package", arg, fn.Name.Name)
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				if _, ok := named.Underlying().(*types.Struct); !ok {
					pass.Reportf(fn.Pos(), "//twvet:digest %s on %s: not a struct type", arg, fn.Name.Name)
					continue
				}
				checkEncoder(pass, fn, named, "digest function "+fn.Name.Name)
			}
		}
	}
	return nil
}

// isHasherSig reports a method signature of exactly one parameter,
// *resultcache.Hasher.
func isHasherSig(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Hasher" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && strings.HasSuffix(pkg.Path(), "internal/resultcache")
}

// funcDecl finds the AST declaration of a method in the pass's files.
func funcDecl(pass *analysis.Pass, m *types.Func) *ast.FuncDecl {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[fn.Name] == m {
				return fn
			}
		}
	}
	return nil
}

// checkEncoder verifies the encoder function consumes every field of the
// identity struct, reporting unconsumed fields at their declarations.
func checkEncoder(pass *analysis.Pass, fn *ast.FuncDecl, named *types.Named, what string) {
	st := named.Underlying().(*types.Struct)
	consumed := consumedFields(pass, fn.Body, named)
	if len(consumed) == len(fields(st)) {
		return
	}
	declFile, structAST := structDecl(pass, named)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if consumed[f.Name()] {
			continue
		}
		pos := fn.Pos()
		var dirs *analysis.Directives
		if structAST != nil {
			if fd := fieldNode(structAST, f.Name()); fd != nil {
				pos = fd.Pos()
				dirs = pass.FileDirectives(declFile)
				found, hasReason := dirs.NohashAt(fd)
				if found && hasReason {
					continue
				}
				if found {
					pass.Reportf(pos, "//twvet:nohash on %s.%s needs a reason", named.Obj().Name(), f.Name())
					continue
				}
			}
		}
		pass.Reportf(pos, "field %s.%s is not folded into the %s: hash it or annotate the field //twvet:nohash <reason>",
			named.Obj().Name(), f.Name(), what)
	}
}

// fields lists a struct's field names.
func fields(st *types.Struct) []string {
	out := make([]string, st.NumFields())
	for i := range out {
		out[i] = st.Field(i).Name()
	}
	return out
}

// consumedFields walks an encoder body and returns the names of named's
// fields it consumes: selector reads through any value of the type
// (promoted selections count their first hop) and composite-literal keys.
func consumedFields(pass *analysis.Pass, body *ast.BlockStmt, named *types.Named) map[string]bool {
	st := named.Underlying().(*types.Struct)
	consumed := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if !recvIs(sel.Recv(), named) {
				return true
			}
			consumed[st.Field(sel.Index()[0]).Name()] = true
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[n].Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if t == nil || !recvIs(t, named) {
				return true
			}
			if len(n.Elts) == 0 {
				return true
			}
			if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
				// Unkeyed literal: the compiler requires every field.
				for _, f := range fields(st) {
					consumed[f] = true
				}
				return true
			}
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						consumed[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return consumed
}

// recvIs reports whether t (possibly behind a pointer or alias) is the
// named type.
func recvIs(t types.Type, named *types.Named) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj() == named.Obj()
	}
	return false
}

// structDecl locates the AST of the named struct's declaration.
func structDecl(pass *analysis.Pass, named *types.Named) (*ast.File, *ast.StructType) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || pass.TypesInfo.Defs[ts.Name] != named.Obj() {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return file, st
				}
			}
		}
	}
	return nil, nil
}

// fieldNode finds the ast.Field declaring the named field (embedded
// fields match their type name).
func fieldNode(st *ast.StructType, name string) *ast.Field {
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			// Embedded: the field name is the type's base name.
			t := f.Type
			if p, ok := t.(*ast.StarExpr); ok {
				t = p.X
			}
			switch t := t.(type) {
			case *ast.Ident:
				if t.Name == name {
					return f
				}
			case *ast.SelectorExpr:
				if t.Sel.Name == name {
					return f
				}
			}
			continue
		}
		for _, id := range f.Names {
			if id.Name == name {
				return f
			}
		}
	}
	return nil
}
