// Package hash exercises the hashcheck pass against the real
// resultcache.Hasher: HashInto completeness, the //twvet:nohash escape
// (reason required), digest-annotated encoder functions, and the
// unkeyed-composite-literal exemption.
package hash

import "tapeworm/internal/resultcache"

// spec is a complete identity: every field folded in.
type spec struct {
	Name  string
	Size  int
	Assoc int
}

// HashInto covers every field of spec.
func (s spec) HashInto(h *resultcache.Hasher) {
	h.WriteString("hash.spec/v1")
	h.WriteString(s.Name)
	h.WriteInt(s.Size)
	h.WriteInt(s.Assoc)
}

// leaky forgets one field in its digest.
type leaky struct {
	Name string
	Size int
	Skew int // want `field leaky.Skew is not folded into the HashInto digest of leaky`
}

// HashInto misses Skew.
func (l leaky) HashInto(h *resultcache.Hasher) {
	h.WriteString("hash.leaky/v1")
	h.WriteString(l.Name)
	h.WriteInt(l.Size)
}

// excused deliberately skips a field, with a reason on record.
type excused struct {
	Name string
	//twvet:nohash scratch — per-run buffer, not part of the identity
	scratch []byte
	//twvet:nohash
	hint int // want `//twvet:nohash on excused.hint needs a reason`
}

// HashInto covers only Name; scratch and hint are annotated out.
func (e excused) HashInto(h *resultcache.Hasher) {
	h.WriteString("hash.excused/v1")
	h.WriteString(e.Name)
}

// key is digested by a standalone function rather than a method.
type key struct {
	Seed     uint64
	Interval int
	Label    string // want `field key.Label is not folded into the digest function digestKey`
}

// digestKey folds a key into a hasher but forgets Label.
//
//twvet:digest key
func digestKey(h *resultcache.Hasher, k key) {
	h.WriteUint64(k.Seed)
	h.WriteInt(k.Interval)
}

// wire is constructed by an unkeyed composite literal, which the
// compiler forces to name every field — complete by construction.
type wire struct {
	A uint64
	B uint64
}

// encodeWire builds the full wire image.
//
//twvet:digest wire
func encodeWire(k key) wire {
	return wire{k.Seed, uint64(k.Interval)}
}

// badDigest names a type that does not exist.
//
//twvet:digest nosuchtype
func badDigest(h *resultcache.Hasher) { // want `//twvet:digest nosuchtype on badDigest: no such type in this package`
	h.WriteString("x")
}

var _ = digestKey
var _ = encodeWire
var _ = badDigest
