package hashcheck_test

import (
	"testing"

	"tapeworm/internal/analysis/analysistest"
	"tapeworm/internal/analysis/passes/hashcheck"
)

func TestHashcheck(t *testing.T) {
	analysistest.Run(t, hashcheck.Analyzer, "hash")
}
