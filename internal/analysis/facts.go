package analysis

// Modular facts, modeled on golang.org/x/tools/go/analysis: an analyzer
// attaches serializable facts to package-level objects while analyzing a
// package, and later analyses of importing packages read them back. Facts
// flow through both drivers — the standalone loader threads an in-process
// FactStore across packages in dependency order, and the unitchecker
// writes each package's facts to the `.vetx` file the go command caches
// and hands back (cfg.PackageVetx) when dependents are analyzed.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a datum an analyzer attaches to a package-level object. Concrete
// fact types must be pointers to gob-encodable structs and are declared in
// an Analyzer's FactTypes so both drivers can register them for
// serialization.
type Fact interface {
	AFact() // dummy marker method restricting implementations to intent
}

// factKey names one fact within a package: the exporting analyzer plus the
// stable object key (see objectKey).
type factKey struct {
	analyzer string
	object   string
}

// factSet is the facts attached to one package's objects.
type factSet map[factKey]Fact

// FactStore holds the decoded facts of every dependency package visible to
// the current analysis, keyed by import path.
type FactStore struct {
	byPkg map[string]factSet
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{byPkg: map[string]factSet{}}
}

// set records a package's exported facts for later importers.
func (s *FactStore) set(pkgPath string, facts factSet) {
	if s == nil || len(facts) == 0 {
		return
	}
	s.byPkg[pkgPath] = facts
}

// get returns the fact for one object of one package, or nil.
func (s *FactStore) get(pkgPath string, key factKey) Fact {
	if s == nil {
		return nil
	}
	return s.byPkg[pkgPath][key]
}

// objectKey renders a package-level object as a stable string: "Name" for
// package-level functions, vars, and types; "(*T).M" / "T.M" for methods.
// Objects that are not package-level (locals, struct fields) have no key
// and cannot carry facts.
func objectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if f, ok := obj.(*types.Func); ok {
		sig, ok := f.Type().(*types.Signature)
		if !ok {
			return ""
		}
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			ptr := ""
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				ptr = "(*"
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "" // interface or unnamed receiver: no facts
			}
			if ptr != "" {
				return ptr + named.Obj().Name() + ")." + f.Name()
			}
			return named.Obj().Name() + "." + f.Name()
		}
		return f.Name()
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	return ""
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// being analyzed. The fact is visible to later ImportObjectFact calls in
// this package and, once serialized, to analyses of importing packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	key := objectKey(obj)
	if key == "" {
		return
	}
	p.shared.exported[factKey{p.Analyzer.Name, key}] = fact
}

// ImportObjectFact copies the fact of this pass's analyzer attached to obj
// into *fact, reporting whether one was found. Facts about the current
// package's own objects (exported earlier in this run) and about imported
// packages' objects (read from the fact store) are both visible.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key := factKey{p.Analyzer.Name, objectKey(obj)}
	if key.object == "" {
		return false
	}
	var found Fact
	if obj.Pkg() == p.Pkg {
		found = p.shared.exported[key]
	} else {
		found = p.shared.store.get(obj.Pkg().Path(), key)
	}
	if found == nil {
		return false
	}
	dst := reflect.ValueOf(fact)
	src := reflect.ValueOf(found)
	if dst.Kind() != reflect.Pointer || dst.Type() != src.Type() {
		return false
	}
	dst.Elem().Set(src.Elem())
	return true
}

// RegisterFactTypes registers every analyzer's fact types with gob so
// serialized fact files can round-trip interface values. Idempotent.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// gobFact is the wire form of one exported fact.
type gobFact struct {
	Analyzer string
	Object   string
	Fact     Fact
}

// vetxHeader versions the fact-file format; the sha256 tool handshake
// (-V=full) already invalidates cached files across tool builds, so this
// only guards against foreign files.
const vetxHeader = "twvet-facts/v1"

// encodeFacts serializes a package's exported facts, sorted by key so the
// output is byte-stable (the go command caches vetx files by content).
func encodeFacts(facts factSet) ([]byte, error) {
	keys := make([]factKey, 0, len(facts))
	for k := range facts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].analyzer != keys[j].analyzer {
			return keys[i].analyzer < keys[j].analyzer
		}
		return keys[i].object < keys[j].object
	})
	gfs := make([]gobFact, 0, len(keys))
	for _, k := range keys {
		gfs = append(gfs, gobFact{Analyzer: k.analyzer, Object: k.object, Fact: facts[k]})
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(vetxHeader); err != nil {
		return nil, err
	}
	if err := enc.Encode(gfs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeFacts deserializes one package's fact file.
func decodeFacts(data []byte) (factSet, error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	var header string
	if err := dec.Decode(&header); err != nil {
		return nil, err
	}
	if header != vetxHeader {
		return nil, fmt.Errorf("fact file header %q, want %q", header, vetxHeader)
	}
	var gfs []gobFact
	if err := dec.Decode(&gfs); err != nil {
		return nil, err
	}
	facts := make(factSet, len(gfs))
	for _, gf := range gfs {
		facts[factKey{gf.Analyzer, gf.Object}] = gf.Fact
	}
	return facts, nil
}
