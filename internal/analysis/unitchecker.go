package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig is the JSON configuration the go command writes for each
// package when invoking a vet tool (`go vet -vettool=...`). Field names
// follow cmd/go's internal schema; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// versionFlag minimally implements the -V protocol `go vet` uses to
// identify its tool: `tool -V=full` must print one line naming the tool
// and a build identifier derived from the executable.
type versionFlag struct{}

// IsBoolFlag marks -V as accepting both -V and -V=full forms.
func (versionFlag) IsBoolFlag() bool { return true }

// String renders the flag's (empty) default.
func (versionFlag) String() string { return "" }

// Set implements the -V=full handshake: print the version line and exit.
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	progname := os.Args[0]
	f, err := os.Open(progname)
	if err != nil {
		return err
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// Main is the twvet entry point. With a single *.cfg argument it speaks
// the go-vet unit-checker protocol; with package patterns (or nothing,
// meaning ./...) it loads and checks packages standalone.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	flags := flag.NewFlagSet(progname, flag.ExitOnError)
	flags.Var(versionFlag{}, "V", "print version and exit")
	printFlags := flags.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := flags.Bool("json", false, "emit JSON output (standalone: one object per finding)")
	githubOut := flags.Bool("github", false, "emit GitHub workflow-command annotations (standalone)")
	listOnly := flags.Bool("list", false, "list analyzers and exit")
	flags.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [package pattern ...]   (standalone)\n", progname)
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which %s) ./...\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flags.Parse(os.Args[1:])

	if *printFlags {
		// The go command queries supported flags this way before
		// forwarding any user-specified vet flags.
		fmt.Println("[]")
		return
	}
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flags.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], analyzers, *jsonOut))
	}

	// Standalone mode.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	diags, err := Run(dir, args, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		d = moduleRelative(dir, d)
		switch {
		case *jsonOut:
			// One self-contained object per finding, newline-delimited, so
			// CI steps can consume findings without assembling a document.
			out, _ := json.Marshal(struct {
				File    string `json:"file"`
				Line    int    `json:"line"`
				Col     int    `json:"col"`
				Pass    string `json:"pass"`
				Message string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
			fmt.Println(string(out))
		case *githubOut:
			// GitHub Actions workflow command: renders as an inline
			// annotation on the PR diff.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=twvet %s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer,
				strings.ReplaceAll(d.Message, "\n", "%0A"))
		default:
			fmt.Fprintln(os.Stderr, d.String())
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// runUnitchecker analyzes the single package described by cfgFile and
// returns the process exit code (0 clean, 1 operational error, 2
// diagnostics reported).
func runUnitchecker(cfgFile string, analyzers []*Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("%s: %v", cfgFile, err)
		return 1
	}
	RegisterFactTypes(analyzers)

	// The go command caches per-package "vetx" fact files and hands each
	// dependency's file back via PackageVetx. Fact-free packages still
	// need a (valid, empty) file, and VetxOnly visits — dependencies
	// analyzed purely for their facts — must run the analyzers even
	// though their diagnostics are discarded.
	if len(cfg.GoFiles) == 0 {
		if cfg.VetxOutput != "" {
			if err := writeVetx(cfg.VetxOutput, factSet{}); err != nil {
				log.Print(err)
				return 1
			}
		}
		return 0
	}

	fset := token.NewFileSet()
	parsed, err := parseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		log.Print(err)
		return 1
	}

	compilerImporter := exportImporter(fset, func(path string) string {
		return cfg.PackageFile[path]
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
	}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		conf.GoVersion = cfg.GoVersion
	}
	info := newTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, parsed, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Printf("typecheck %s: %v", cfg.ImportPath, err)
		return 1
	}

	store, err := readVetxFiles(cfg)
	if err != nil {
		log.Print(err)
		return 1
	}
	diags, err := runAnalyzers(Pass{
		Fset:      fset,
		Files:     parsed,
		Pkg:       pkg,
		TypesInfo: info,
		PkgPath:   cfg.ImportPath,
	}, analyzers, runOptions{store: store, stale: !cfg.VetxOnly})
	if err != nil {
		log.Print(err)
		return 1
	}
	if cfg.VetxOutput != "" {
		exported := store.byPkg[canonicalImportPath(cfg.ImportPath)]
		if exported == nil {
			exported = factSet{}
		}
		if err := writeVetx(cfg.VetxOutput, exported); err != nil {
			log.Print(err)
			return 1
		}
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	if jsonOut {
		emitJSON(cfg.ID, diags)
		return 0 // JSON consumers treat presence of diagnostics as data
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	return 2
}

// canonicalImportPath strips a build-system test-variant decoration
// ("pkg [pkg.test]") down to the plain import path, which is what
// types.Package.Path() reports for objects resolved through export data.
func canonicalImportPath(p string) string {
	if i := strings.IndexByte(p, ' '); i >= 0 {
		return p[:i]
	}
	return p
}

// readVetxFiles decodes every dependency fact file the go command handed
// us into a fresh store. Keys are canonicalized so fact lookup by
// types.Package.Path() matches; when both a plain package and its
// test-augmented variant appear, the variant (sorted later) wins — it is
// the archive the current package actually links against.
func readVetxFiles(cfg vetConfig) (*FactStore, error) {
	store := NewFactStore()
	paths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			return nil, fmt.Errorf("reading facts of %s: %v", p, err)
		}
		facts, err := decodeFacts(data)
		if err != nil {
			return nil, fmt.Errorf("decoding facts of %s: %v", p, err)
		}
		if len(facts) > 0 {
			store.byPkg[canonicalImportPath(p)] = facts
		}
	}
	return store, nil
}

// writeVetx serializes one package's exported facts to the path the go
// command will cache and replay to dependents.
func writeVetx(path string, facts factSet) error {
	data, err := encodeFacts(facts)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// emitJSON prints diagnostics in the nested shape the standard vet tool
// uses: package ID -> analyzer -> list of {posn, message}.
func emitJSON(pkgID string, diags []Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    d.Pos.String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	enc.Encode(out)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

// Import resolves an import path by calling the adapted function.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// parseFiles parses each Go file, resolving relative names against dir.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
