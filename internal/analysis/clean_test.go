package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tapeworm/internal/analysis"
	"tapeworm/internal/analysis/passes/suite"
)

// moduleRoot locates the module directory so the smoke tests can run the
// suite over the real tree.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestTreeClean runs the full analyzer suite over the repository in
// standalone mode: the tree must carry no violations. This is the test
// that fails when someone reintroduces an unordered map walk, an
// unguarded telemetry call, an unbalanced trap pair, or an unvalidated
// options path.
func TestTreeClean(t *testing.T) {
	diags, err := analysis.Run(moduleRoot(t), []string{"./..."}, suite.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestVettoolClean builds twvet and drives it through the real
// `go vet -vettool` protocol over every package, covering the -V
// handshake, the .cfg unit protocol, and facts-file plumbing.
func TestVettoolClean(t *testing.T) {
	if testing.Short() {
		t.Skip("building and vetting the whole tree is not a -short test")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "twvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/twvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/twvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	vet.Env = os.Environ()
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}
