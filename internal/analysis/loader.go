package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// listPackages shells out to `go list -export -deps -json` for the given
// patterns, returning every package in the dependency closure with its
// compiled export-data file. -export builds through the local build
// cache, so this works without any network or pre-installed archives.
func listPackages(dir string, patterns []string) (map[string]*listedPackage, []*listedPackage, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,DepOnly,Standard", "--"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}
	byPath := map[string]*listedPackage{}
	var roots []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list -export: decoding: %v", err)
		}
		lp := p
		byPath[lp.ImportPath] = &lp
		if !lp.DepOnly {
			roots = append(roots, &lp)
		}
	}
	return byPath, roots, nil
}

// exportImporter resolves imports through compiled export data located by
// the lookup map (import path -> export file). The gc importer handles
// "unsafe" itself.
func exportImporter(fset *token.FileSet, exports func(path string) string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file := exports(path)
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// LoadedPackage is one source-type-checked package ready for analysis.
type LoadedPackage struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Root marks packages named by the load patterns; the rest of the
	// returned slice is module-local dependencies loaded so analyzers can
	// compute their facts (diagnostics are reported for roots only).
	Root bool
}

// Load type-checks the packages matched by patterns (e.g. "./...") from
// source, resolving their imports through export data produced by
// `go list -export`. The result includes every non-standard-library
// dependency in the closure, in import topological order (dependencies
// before dependents) so analyzer facts are available when importers are
// analyzed. Test files are not loaded; under `go vet -vettool` the build
// system hands the analyzers test-augmented packages itself.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	byPath, _, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	ordered := topoOrder(byPath)
	var out []*LoadedPackage
	for _, p := range ordered {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{
			Importer: exportImporter(fset, func(path string) string {
				if p := byPath[path]; p != nil {
					return p.Export
				}
				return ""
			}),
			Sizes: types.SizesFor("gc", build.Default.GOARCH),
		}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		out = append(out, &LoadedPackage{
			PkgPath:   p.ImportPath,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Root:      !p.DepOnly,
		})
	}
	return out, nil
}

// topoOrder sorts the listed packages dependencies-first, breaking ties by
// import path so the order (and therefore diagnostic output) is
// deterministic. Standard-library deps are kept in the order (they are
// skipped by the caller) but never recursed into.
func topoOrder(byPath map[string]*listedPackage) []*listedPackage {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	seen := map[string]bool{}
	var out []*listedPackage
	var visit func(path string)
	visit = func(path string) {
		p := byPath[path]
		if p == nil || seen[path] {
			return
		}
		seen[path] = true
		if !p.Standard {
			imps := append([]string(nil), p.Imports...)
			sort.Strings(imps)
			for _, imp := range imps {
				visit(imp)
			}
		}
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

// LoadFiles type-checks one ad-hoc package from the given source files.
// The analysistest harness uses this for testdata packages, which are
// invisible to `go list`; their imports are still resolved through
// export data produced by `go list -export` run in dir (so testdata may
// import real module packages and the standard library). deps maps import
// paths to already-loaded source packages (other testdata packages), which
// take precedence over export data.
func LoadFiles(dir, pkgPath string, filenames []string, deps map[string]*LoadedPackage) (*LoadedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, path := range filenames {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := ImportPathOf(imp); err == nil && p != "unsafe" && deps[p] == nil {
				imports[p] = true
			}
		}
	}
	byPath := map[string]*listedPackage{}
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		var err error
		byPath, _, err = listPackages(dir, patterns)
		if err != nil {
			return nil, err
		}
	}
	info := newTypesInfo()
	compiled := exportImporter(fset, func(path string) string {
		if p := byPath[path]; p != nil {
			return p.Export
		}
		return ""
	})
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if lp := deps[path]; lp != nil {
				return lp.Pkg, nil
			}
			return compiled.Import(path)
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	return &LoadedPackage{
		PkgPath:   pkgPath,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Root:      true,
	}, nil
}

// Analyze applies the analyzers to one loaded package with no
// cross-package facts (single-package golden tests).
func Analyze(lp *LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	return AnalyzeWithStore(lp, analyzers, NewFactStore())
}

// AnalyzeWithStore applies the analyzers to one loaded package, importing
// dependency facts from store and publishing the package's exported facts
// back into it.
func AnalyzeWithStore(lp *LoadedPackage, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	RegisterFactTypes(analyzers)
	return runAnalyzers(Pass{
		Fset:      lp.Fset,
		Files:     lp.Files,
		Pkg:       lp.Pkg,
		TypesInfo: lp.TypesInfo,
		PkgPath:   lp.PkgPath,
	}, analyzers, runOptions{store: store})
}

// AnalyzeSuite is AnalyzeWithStore with stale-directive detection enabled,
// matching what a full twvet run reports for a root package. Only
// meaningful when analyzers is the complete suite — a directive consumed
// by an absent analyzer would read as stale.
func AnalyzeSuite(lp *LoadedPackage, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	RegisterFactTypes(analyzers)
	return runAnalyzers(Pass{
		Fset:      lp.Fset,
		Files:     lp.Files,
		Pkg:       lp.Pkg,
		TypesInfo: lp.TypesInfo,
		PkgPath:   lp.PkgPath,
	}, analyzers, runOptions{store: store, stale: true})
}

// Run loads the packages matched by patterns and applies every analyzer,
// returning diagnostics for the root packages in dependency order.
// Module-local dependencies outside the patterns are analyzed too — their
// diagnostics are discarded but their facts feed the roots.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	RegisterFactTypes(analyzers)
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	store := NewFactStore()
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			PkgPath:   pkg.PkgPath,
		}, analyzers, runOptions{store: store, stale: pkg.Root})
		if err != nil {
			return nil, err
		}
		if pkg.Root {
			all = append(all, diags...)
		}
	}
	return all, nil
}

// moduleRelative trims pos filenames below dir for terser standalone
// output; unitchecker mode keeps the build system's absolute paths.
func moduleRelative(dir string, d Diagnostic) Diagnostic {
	if rel, err := filepath.Rel(dir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}
