package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// listPackages shells out to `go list -export -deps -json` for the given
// patterns, returning every package in the dependency closure with its
// compiled export-data file. -export builds through the local build
// cache, so this works without any network or pre-installed archives.
func listPackages(dir string, patterns []string) (map[string]*listedPackage, []*listedPackage, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard", "--"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}
	byPath := map[string]*listedPackage{}
	var roots []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list -export: decoding: %v", err)
		}
		lp := p
		byPath[lp.ImportPath] = &lp
		if !lp.DepOnly {
			roots = append(roots, &lp)
		}
	}
	return byPath, roots, nil
}

// exportImporter resolves imports through compiled export data located by
// the lookup map (import path -> export file). The gc importer handles
// "unsafe" itself.
func exportImporter(fset *token.FileSet, exports func(path string) string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file := exports(path)
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// LoadedPackage is one source-type-checked package ready for analysis.
type LoadedPackage struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Load type-checks the packages matched by patterns (e.g. "./...") from
// source, resolving their imports through export data produced by
// `go list -export`. Test files are not loaded; under `go vet -vettool`
// the build system hands the analyzers test-augmented packages itself.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	byPath, roots, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*LoadedPackage
	for _, root := range roots {
		if len(root.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range root.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(root.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{
			Importer: exportImporter(fset, func(path string) string {
				if p := byPath[path]; p != nil {
					return p.Export
				}
				return ""
			}),
			Sizes: types.SizesFor("gc", build.Default.GOARCH),
		}
		pkg, err := conf.Check(root.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", root.ImportPath, err)
		}
		out = append(out, &LoadedPackage{
			PkgPath:   root.ImportPath,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		})
	}
	return out, nil
}

// LoadFiles type-checks one ad-hoc package from the given source files.
// The analysistest harness uses this for testdata packages, which are
// invisible to `go list`; their imports are still resolved through
// export data produced by `go list -export` run in dir (so testdata may
// import real module packages and the standard library).
func LoadFiles(dir, pkgPath string, filenames []string) (*LoadedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, path := range filenames {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := ImportPathOf(imp); err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	byPath := map[string]*listedPackage{}
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		var err error
		byPath, _, err = listPackages(dir, patterns)
		if err != nil {
			return nil, err
		}
	}
	info := newTypesInfo()
	conf := types.Config{
		Importer: exportImporter(fset, func(path string) string {
			if p := byPath[path]; p != nil {
				return p.Export
			}
			return ""
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	return &LoadedPackage{
		PkgPath:   pkgPath,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}, nil
}

// Analyze applies the analyzers to one loaded package.
func Analyze(lp *LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(Pass{
		Fset:      lp.Fset,
		Files:     lp.Files,
		Pkg:       lp.Pkg,
		TypesInfo: lp.TypesInfo,
		PkgPath:   lp.PkgPath,
	}, analyzers)
}

// Run loads the packages matched by patterns and applies every analyzer,
// returning all diagnostics in package order.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			PkgPath:   pkg.PkgPath,
		}, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// moduleRelative trims pos filenames below dir for terser standalone
// output; unitchecker mode keeps the build system's absolute paths.
func moduleRelative(dir string, d Diagnostic) Diagnostic {
	if rel, err := filepath.Rel(dir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}
