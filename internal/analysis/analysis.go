// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core, sized for this repository's needs:
// it defines the Analyzer/Pass/Diagnostic vocabulary, speaks the
// `go vet -vettool` unit-checker protocol, and carries a standalone
// package loader built on `go list -export` so the same analyzers run
// directly (`twvet ./...`) and under `go test` golden tests without any
// module downloads.
//
// The analyzers themselves live under passes/ and mechanize the
// simulator's hand-enforced invariants: deterministic iteration in
// result-producing packages, zero-overhead-when-disabled telemetry,
// balanced set/clear trap pairing (the Table 1 primitive discipline), and
// options validation in experiment drivers. See DESIGN.md §9 for the
// invariant catalog.
//
// Analyzers honor `//twvet:` directives in source comments:
//
//	//twvet:allow <check>   — suppress <check> on this line or the next
//	                          (or the whole function, in a func doc)
//	//twvet:transfer        — this function intentionally transfers trap
//	                          or buffer ownership; pairing is not local
//	//twvet:scope <check>   — opt this file into a path-scoped check
//	                          (used by analyzer testdata)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass: a name used in diagnostics
// and directive matching, one line of documentation, the fact types it
// serializes across package boundaries, and the function applied to each
// package.
type Analyzer struct {
	Name      string
	Doc       string
	FactTypes []Fact
	Run       func(*Pass) error
}

// Pass is the interface between one analyzer and one type-checked
// package, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// PkgPath is the package's import path as the build system named it.
	// For test variants this can carry a " [pkg.test]" suffix; use
	// CanonicalPath for scope matching.
	PkgPath string

	report func(Diagnostic)
	shared *passShared
}

// passShared is the per-package state every analyzer copy of a Pass sees:
// the directive index (shared so stale-directive detection observes every
// pass's suppressions), the facts exported so far, and the dependency
// fact store.
type passShared struct {
	dirs     map[*ast.File]*Directives
	exported factSet
	store    *FactStore
}

func newPassShared(store *FactStore) *passShared {
	return &passShared{dirs: map[*ast.File]*Directives{}, exported: factSet{}, store: store}
}

// FileDirectives returns the parsed //twvet: directives of f, cached per
// package so every analyzer (and the stale-directive scan) shares one
// index and its usage marks.
func (p *Pass) FileDirectives(f *ast.File) *Directives {
	if d, ok := p.shared.dirs[f]; ok {
		return d
	}
	d := NewDirectives(p, f)
	p.shared.dirs[f] = d
	return d
}

// Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in go vet's file:line:col format with a
// trailing twvet analyzer tag.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (twvet %s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// CanonicalPath is PkgPath with any build-system test-variant decoration
// (" [tapeworm/x.test]") stripped, for suffix-based scope matching.
func (p *Pass) CanonicalPath() string {
	if i := strings.IndexByte(p.PkgPath, ' '); i >= 0 {
		return p.PkgPath[:i]
	}
	return p.PkgPath
}

// PathInScope reports whether the canonical package path matches one of
// the given import-path suffixes ("internal/core" matches
// "tapeworm/internal/core" but not "tapeworm/internal/core2000").
func (p *Pass) PathInScope(suffixes ...string) bool {
	path := p.CanonicalPath()
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file is a _test.go file. The repo's
// invariants constrain simulator code, not test assertions; every pass
// skips test files so tests may deliberately violate pairing and order.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// newTypesInfo allocates a types.Info with every map populated, so passes
// can rely on Uses/Defs/Selections/Types being present.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// runOptions configures one runAnalyzers invocation.
type runOptions struct {
	store *FactStore // dependency facts in, this package's facts out
	stale bool       // report //twvet: directives that suppressed nothing
}

// runAnalyzers applies each analyzer to one type-checked package and
// returns the diagnostics sorted by position. When opts.stale is set
// (full-suite runs only: a single-analyzer golden test cannot observe
// other passes' suppressions), every allow/transfer/nohash directive that
// suppressed no finding is itself reported. Exported facts are published
// to opts.store under the package path.
func runAnalyzers(pass Pass, analyzers []*Analyzer, opts runOptions) ([]Diagnostic, error) {
	pass.shared = newPassShared(opts.store)
	var diags []Diagnostic
	for _, a := range analyzers {
		p := pass // copy; each analyzer gets its own Analyzer/report binding
		p.Analyzer = a
		p.report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(&p); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pass.PkgPath, a.Name, err)
		}
	}
	if opts.stale {
		diags = append(diags, staleDirectives(&pass)...)
	}
	if opts.store != nil {
		opts.store.set(pass.CanonicalPath(), pass.shared.exported)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// staleDirectives reports every suppression directive no pass consulted at
// a would-be finding this run, so dead annotations cannot accumulate.
// Only non-test files are scanned: passes skip test files, so their
// directives are never queried.
func staleDirectives(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, dir := range pass.FileDirectives(f).stale() {
			d := Diagnostic{
				Analyzer: "staledirective",
				Pos:      pass.Fset.Position(dir.pos),
				Message: fmt.Sprintf("//twvet:%s directive suppressed nothing this run: delete it",
					dir.verbArg()),
			}
			diags = append(diags, d)
		}
	}
	return diags
}

// CalleeFunc resolves the function or method named by a call expression,
// or nil for builtins, conversions, and indirect calls.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}
