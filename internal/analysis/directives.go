package analysis

import (
	"go/ast"
	"strings"
)

// directive is one parsed //twvet: comment: a verb ("allow", "transfer",
// "scope") and its argument (the check name; empty for transfer).
type directive struct {
	verb string
	arg  string
}

// Directives indexes the //twvet: comments of one file by line, plus the
// file-level scope set. Build one per file with NewDirectives.
type Directives struct {
	byLine map[int][]directive
	scopes map[string]bool
	pass   *Pass
	file   *ast.File
}

// NewDirectives parses every //twvet: comment in f.
func NewDirectives(pass *Pass, f *ast.File) *Directives {
	d := &Directives{byLine: map[int][]directive{}, scopes: map[string]bool{}, pass: pass, file: f}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//twvet:")
			if !ok {
				continue
			}
			// Allow trailing prose after the machine-readable fields:
			// "//twvet:allow maporder — commutative accumulation".
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			dir := directive{verb: fields[0]}
			if len(fields) > 1 {
				dir.arg = fields[1]
			}
			line := pass.Fset.Position(c.Pos()).Line
			d.byLine[line] = append(d.byLine[line], dir)
			if dir.verb == "scope" {
				d.scopes[dir.arg] = true
			}
		}
	}
	return d
}

// Scoped reports whether the file opts into the named check via a
// file-level //twvet:scope directive (used by analyzer testdata to stand
// in for the real in-scope packages).
func (d *Directives) Scoped(check string) bool { return d.scopes[check] }

// hasAt reports a directive with the given verb and arg on the exact line.
func (d *Directives) hasAt(line int, verb, arg string) bool {
	for _, dir := range d.byLine[line] {
		if dir.verb == verb && (arg == "" || dir.arg == arg) {
			return true
		}
	}
	return false
}

// AllowedAt reports whether the statement at pos is excused from the
// named check by an //twvet:allow directive on its own line or on the
// line immediately above it.
func (d *Directives) AllowedAt(pos ast.Node, check string) bool {
	line := d.pass.Fset.Position(pos.Pos()).Line
	return d.hasAt(line, "allow", check) || d.hasAt(line-1, "allow", check)
}

// FuncDirective reports whether the function declaration carries the
// given directive, either in its doc comment or on the line above the
// declaration.
func (d *Directives) FuncDirective(fn *ast.FuncDecl, verb, arg string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			text, ok := strings.CutPrefix(c.Text, "//twvet:")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) > 0 && fields[0] == verb &&
				(arg == "" || (len(fields) > 1 && fields[1] == arg)) {
				return true
			}
		}
	}
	line := d.pass.Fset.Position(fn.Pos()).Line
	return d.hasAt(line, verb, arg) || d.hasAt(line-1, verb, arg)
}

// FuncAllowed reports whether the enclosing function excuses the check
// for its whole body.
func (d *Directives) FuncAllowed(fn *ast.FuncDecl, check string) bool {
	return fn != nil && d.FuncDirective(fn, "allow", check)
}
