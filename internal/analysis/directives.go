package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //twvet: comment: a verb ("allow", "transfer",
// "scope", "nohash", "digest") and its argument (the check name, the
// digested type, or the first word of a nohash reason; empty for a bare
// transfer). Suppression verbs track whether any pass consulted them at a
// would-be finding, so stale annotations can be reported.
type directive struct {
	verb string
	arg  string
	pos  token.Pos
	used bool
}

// verbArg renders the directive for diagnostics ("allow maporder").
func (d *directive) verbArg() string {
	if d.arg == "" {
		return d.verb
	}
	return d.verb + " " + d.arg
}

// staleVerbs are the suppression verbs subject to stale-directive
// detection. scope (testdata opt-in) and digest (a hashcheck input, always
// consumed when the pass runs) are declarations, not suppressions.
var staleVerbs = map[string]bool{"allow": true, "transfer": true, "nohash": true}

// Directives indexes the //twvet: comments of one file by line, plus the
// file-level scope set. Build one per file with Pass.FileDirectives so
// usage marks are shared across passes.
type Directives struct {
	byLine map[int][]*directive
	scopes map[string]bool
	pass   *Pass
	file   *ast.File
}

// NewDirectives parses every //twvet: comment in f.
func NewDirectives(pass *Pass, f *ast.File) *Directives {
	d := &Directives{byLine: map[int][]*directive{}, scopes: map[string]bool{}, pass: pass, file: f}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//twvet:")
			if !ok {
				continue
			}
			// Allow trailing prose after the machine-readable fields:
			// "//twvet:allow maporder — commutative accumulation".
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			dir := &directive{verb: fields[0], pos: c.Pos()}
			if len(fields) > 1 {
				dir.arg = fields[1]
			}
			line := pass.Fset.Position(c.Pos()).Line
			d.byLine[line] = append(d.byLine[line], dir)
			if dir.verb == "scope" {
				d.scopes[dir.arg] = true
			}
		}
	}
	return d
}

// Scoped reports whether the file opts into the named check via a
// file-level //twvet:scope directive (used by analyzer testdata to stand
// in for the real in-scope packages).
func (d *Directives) Scoped(check string) bool { return d.scopes[check] }

// find returns the directive with the given verb and arg on the exact
// line, or nil. An empty arg matches any argument.
func (d *Directives) find(line int, verb, arg string) *directive {
	for _, dir := range d.byLine[line] {
		if dir.verb == verb && (arg == "" || dir.arg == arg) {
			return dir
		}
	}
	return nil
}

// hasAt reports a directive with the given verb and arg on the exact
// line; when mark is set a match is recorded as used. Passes must only
// mark at a would-be finding, so stale detection stays accurate.
func (d *Directives) hasAt(line int, verb, arg string, mark bool) bool {
	dir := d.find(line, verb, arg)
	if dir == nil {
		return false
	}
	if mark {
		dir.used = true
	}
	return true
}

// AllowedAt reports whether the statement at pos is excused from the
// named check by an //twvet:allow directive on its own line or on the
// line immediately above it. Callers must consult it only where a finding
// would otherwise be reported; a match is marked used.
func (d *Directives) AllowedAt(pos ast.Node, check string) bool {
	line := d.pass.Fset.Position(pos.Pos()).Line
	return d.hasAt(line, "allow", check, true) || d.hasAt(line-1, "allow", check, true)
}

// funcLines returns the lines a function-level directive may occupy: the
// doc-comment lines, the declaration line, and the line above it. Lines
// are deduplicated — the last doc line usually IS the line above the
// declaration, and callers consuming directive args must see each once.
func (d *Directives) funcLines(fn *ast.FuncDecl) []int {
	seen := map[int]bool{}
	var lines []int
	add := func(line int) {
		if !seen[line] {
			seen[line] = true
			lines = append(lines, line)
		}
	}
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			add(d.pass.Fset.Position(c.Pos()).Line)
		}
	}
	declLine := d.pass.Fset.Position(fn.Pos()).Line
	add(declLine)
	add(declLine - 1)
	return lines
}

// FuncDirective reports whether the function declaration carries the
// given directive, either in its doc comment or on the line above the
// declaration. A pure query: no usage mark (use MarkFunc at a would-be
// finding).
func (d *Directives) FuncDirective(fn *ast.FuncDecl, verb, arg string) bool {
	for _, line := range d.funcLines(fn) {
		if d.hasAt(line, verb, arg, false) {
			return true
		}
	}
	return false
}

// FuncDirectiveArgs returns the arguments of every directive with the
// given verb on fn, marking each used (the caller is consuming them as
// input, e.g. //twvet:digest type names).
func (d *Directives) FuncDirectiveArgs(fn *ast.FuncDecl, verb string) []string {
	var args []string
	for _, line := range d.funcLines(fn) {
		for _, dir := range d.byLine[line] {
			if dir.verb == verb {
				dir.used = true
				args = append(args, dir.arg)
			}
		}
	}
	return args
}

// MarkFunc records the function's directive as having suppressed a
// finding.
func (d *Directives) MarkFunc(fn *ast.FuncDecl, verb, arg string) {
	for _, line := range d.funcLines(fn) {
		if d.hasAt(line, verb, arg, true) {
			return
		}
	}
}

// FuncAllowed reports whether the enclosing function excuses the check
// for its whole body; a match is marked used, so callers must consult it
// only where a finding would otherwise be reported.
func (d *Directives) FuncAllowed(fn *ast.FuncDecl, check string) bool {
	if fn == nil {
		return false
	}
	for _, line := range d.funcLines(fn) {
		if d.hasAt(line, "allow", check, true) {
			return true
		}
	}
	return false
}

// NohashAt reports whether the node (a struct field) carries a
// //twvet:nohash directive on its line or the line above, and whether the
// directive has a non-empty reason. A match is marked used.
func (d *Directives) NohashAt(node ast.Node) (found, hasReason bool) {
	line := d.pass.Fset.Position(node.Pos()).Line
	dir := d.find(line, "nohash", "")
	if dir == nil {
		dir = d.find(line-1, "nohash", "")
	}
	if dir == nil {
		return false, false
	}
	dir.used = true
	return true, dir.arg != ""
}

// stale returns every suppression directive never marked used this run.
func (d *Directives) stale() []*directive {
	var out []*directive
	lines := make([]int, 0, len(d.byLine))
	for line := range d.byLine {
		lines = append(lines, line)
	}
	// byLine is a map; order the scan for deterministic output.
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			if lines[j] < lines[i] {
				lines[i], lines[j] = lines[j], lines[i]
			}
		}
	}
	for _, line := range lines {
		for _, dir := range d.byLine[line] {
			if staleVerbs[dir.verb] && !dir.used {
				out = append(out, dir)
			}
		}
	}
	return out
}
