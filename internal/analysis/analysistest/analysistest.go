// Package analysistest runs one analyzer over a golden testdata package
// and checks its diagnostics against // want annotations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Testdata lives under testdata/src/<pkg>/ next to the calling test. A
// line expecting a diagnostic carries a trailing comment of the form
//
//	m[k] = v // want `nondeterministic order`
//
// where each backquoted or double-quoted string is a regular expression
// that must match the message of a diagnostic reported on that line.
// Every diagnostic must be matched by a want and every want by a
// diagnostic; mismatches in either direction fail the test.
//
// Testdata packages are invisible to the go tool (testdata/ is skipped),
// so they may deliberately violate the repo's invariants without tripping
// twvet runs over ./... — and they may import real module packages, whose
// export data is produced on the fly by `go list -export`.
package analysistest

import (
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"tapeworm/internal/analysis"
)

// want is one expected-diagnostic annotation.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRE extracts the quoted expectation strings of a // want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run applies the analyzer to each testdata/src/<pkg> in order and diffs
// diagnostics against the // want annotations. Packages are analyzed
// against one shared fact store, dependencies first: a later package may
// import an earlier one by its testdata path (e.g. "factdep/b" importing
// "factdep/a"), exercising cross-package fact flow the way a real
// dependency-ordered run does.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	run(t, []*analysis.Analyzer{a}, false, pkgs)
}

// RunSuite applies a complete analyzer suite with stale-directive
// detection enabled, matching what `twvet` reports for a root package.
func RunSuite(t *testing.T, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	run(t, analyzers, true, pkgs)
}

func run(t *testing.T, analyzers []*analysis.Analyzer, stale bool, pkgs []string) {
	t.Helper()
	store := analysis.NewFactStore()
	deps := map[string]*analysis.LoadedPackage{}
	var diags []analysis.Diagnostic
	var wants []*want
	for _, pkg := range pkgs {
		dir := filepath.Join("testdata", "src", pkg)
		names, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil || len(names) == 0 {
			t.Fatalf("no testdata in %s: %v", dir, err)
		}
		sort.Strings(names)
		lp, err := analysis.LoadFiles(".", pkg, names, deps)
		if err != nil {
			t.Fatal(err)
		}
		deps[pkg] = lp
		var ds []analysis.Diagnostic
		if stale {
			ds, err = analysis.AnalyzeSuite(lp, analyzers, store)
		} else {
			ds, err = analysis.AnalyzeWithStore(lp, analyzers, store)
		}
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
		wants = append(wants, collectWants(t, lp)...)
	}

	for _, d := range diags {
		if !match(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants parses every // want comment in the loaded files.
func collectWants(t *testing.T, lp *analysis.LoadedPackage) []*want {
	t.Helper()
	var wants []*want
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				const marker = "// want "
				i := strings.Index(text, marker)
				if i < 0 {
					continue
				}
				pos := lp.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text[i+len(marker):], -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment: %s", pos, text)
				}
				for _, m := range matches {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// match marks and reports the first unconsumed want on the diagnostic's
// line whose regexp matches the message.
func match(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}
