package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided on %d/100 draws", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if v := r.Uint64(); v != first[i] {
			t.Fatalf("after Reseed, draw %d: got %d want %d", i, v, first[i])
		}
	}
}

func TestSplitIndependentOfOrder(t *testing.T) {
	// Children are a pure function of (parent seed, label), regardless of
	// what else was split first — required so varying the page-allocation
	// stream cannot perturb the reference stream.
	p1 := New(99)
	_ = p1.Split("other")
	c1 := p1.Split("pages")

	p2 := New(99)
	c2 := p2.Split("pages")

	for i := 0; i < 100; i++ {
		if a, b := c1.Uint64(), c2.Uint64(); a != b {
			t.Fatalf("split stream differs at draw %d", i)
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(5), New(5)
	_ = a.Split("x")
	_ = a.Split("y")
	for i := 0; i < 50; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("parent stream perturbed by Split at draw %d", i)
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	p := New(3)
	a, b := p.Split("alpha"), p.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("labels alpha/beta collided on %d/100 draws", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Coarse uniformity: each of 8 buckets should receive ~1/8 of draws.
	r := New(123)
	const draws = 80000
	var buckets [8]int
	for i := 0; i < draws; i++ {
		buckets[r.Uint64n(8)]++
	}
	want := draws / 8
	for i, c := range buckets {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want about %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(77)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const draws = 50000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.0)
	var counts [100]int
	for i := 0; i < 50000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] < 5*counts[99] {
		t.Fatalf("Zipf tail too heavy: rank0=%d rank99=%d", counts[0], counts[99])
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(8)
	z := NewZipf(r, 10, 0.8)
	for i := 0; i < 10000; i++ {
		v := z.Draw()
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}

func TestPowfAgreement(t *testing.T) {
	cases := []struct{ x, y, want, tol float64 }{
		{2, 2, 4, 1e-9},
		{3, 1, 3, 1e-9},
		{5, 0, 1, 1e-9},
		{4, 0.5, 2, 1e-3},
		{2, 1.5, 2.828427, 1e-3},
	}
	for _, c := range cases {
		got := powf(c.x, c.y)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("powf(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
