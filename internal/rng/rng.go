// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// Determinism and splittability matter more here than statistical
// sophistication: the paper's methodology (Section 4.2) isolates sources of
// measurement variance — page allocation, set-sample selection, reference
// streams — by varying one source at a time. Each source therefore draws
// from its own independent stream, derived from a parent seed and a string
// label, so that re-running a trial with a different page-allocation seed
// leaves every reference stream bit-identical.
//
// The generator is xoshiro256** seeded via splitmix64, both public-domain
// algorithms by Blackman and Vigna.
package rng

import "math/bits"

// Source is a deterministic random number generator. The zero value is not
// usable; obtain one from New or by splitting an existing Source.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used both to seed xoshiro and to hash labels for Split.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed re-initializes the Source from seed, as if freshly created by New.
func (r *Source) Reseed(seed uint64) {
	state := seed
	for i := range r.s {
		r.s[i] = splitmix64(&state)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child Source from this Source's current
// state and a label. Splitting does not advance the parent, so the set of
// children obtained from a given parent state is a pure function of the
// labels: rng.New(s).Split("pages") is the same stream no matter what other
// labels were split off first.
func (r *Source) Split(label string) *Source {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// Mix the parent identity (its seed-derived state) with the label hash.
	state := r.s[0] ^ rotl(h, 31)
	var c Source
	for i := range c.s {
		c.s[i] = splitmix64(&state)
	}
	if c.s[0]|c.s[1]|c.s[2]|c.s[3] == 0 {
		c.s[0] = 1
	}
	return &c
}

// State is the complete serializable state of a Source: the four xoshiro
// words. Checkpointing captures walker and kernel streams as States and
// restores them with FromState, so a forked kernel draws exactly the
// numbers a fresh boot would.
type State [4]uint64

// State snapshots the Source's current position in its stream.
func (r *Source) State() State { return r.s }

// FromState reconstructs a Source at the exact stream position captured by
// State. An all-zero state (never produced by a live Source) is rejected
// the same way Reseed guards it.
func FromState(st State) *Source {
	var r Source
	r.s = st
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Uint32 returns the next 32 random bits.
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method keeps the result unbiased.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	return bits.Mul64(x, y)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of the integers [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s > 0,
// using inverse-CDF on a precomputed table is avoided for simplicity; this
// uses rejection-inversion adequate for the small n used by workload models.
type Zipf struct {
	src  *Source
	cdf  []float64 // cumulative probabilities, len n
	last int
}

// NewZipf builds a Zipf distribution over [0, n) with exponent s, drawing
// randomness from src. Small n (≤ a few thousand) is expected.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / powf(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// Draw returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	z.last = lo
	return lo
}

// powf computes x**y for y >= 0 without importing math, adequate for the
// Zipf exponents (0.5–2.0) used here. It uses exp(y*ln x) via simple series
// is overkill; instead handle the common cases exactly and approximate the
// rest with sqrt-based decomposition.
func powf(x, y float64) float64 {
	switch y {
	case 0:
		return 1
	case 1:
		return x
	case 2:
		return x * x
	}
	// Integer part by repeated multiplication, fractional part by
	// square roots (binary expansion of the fraction).
	n := int(y)
	frac := y - float64(n)
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	// Approximate x**frac with 20 binary digits of the exponent.
	base := x
	for i := 0; i < 20; i++ {
		base = sqrt(base)
		frac *= 2
		if frac >= 1 {
			r *= base
			frac -= 1
		}
	}
	return r
}

// sqrt computes the square root by Newton's method.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}
