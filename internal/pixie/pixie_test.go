package pixie

import (
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/cache2000"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/trace"
	"tapeworm/internal/workload"
)

func bootWith(t *testing.T, name string, seed uint64) (*kernel.Kernel, *kernel.Task) {
	t.Helper()
	cfg := kernel.DefaultConfig(mach.DECstation5000_200(2048), seed)
	k, err := kernel.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.ByName(name, 4000)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.New(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return k, k.Spawn(name, prog, false, false)
}

func TestCaptureProducesTrace(t *testing.T) {
	k, task := bootWith(t, "espresso", 3)
	var buf trace.Buffer
	ann := NewCapture(k.Machine(), &buf)
	ann.Annotate(k, task.ID)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no trace captured")
	}
	if ann.Refs() != uint64(buf.Len()) {
		t.Fatalf("ref count %d != buffer %d", ann.Refs(), buf.Len())
	}
	// The trace contains both kinds by default.
	kinds := map[mem.RefKind]bool{}
	for _, e := range buf.Entries() {
		kinds[e.Kind] = true
		if mach.IsKernelVA(e.VA) {
			t.Fatal("kernel reference in a Pixie trace")
		}
	}
	if !kinds[mem.IFetch] || !kinds[mem.Load] {
		t.Fatalf("trace kinds missing: %v", kinds)
	}
}

func TestIOnlyFiltersDataRefs(t *testing.T) {
	k, task := bootWith(t, "espresso", 3)
	var buf trace.Buffer
	ann := NewCapture(k.Machine(), &buf)
	ann.IOnly = true
	ann.Annotate(k, task.ID)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, e := range buf.Entries() {
		if e.Kind != mem.IFetch {
			t.Fatalf("non-ifetch entry %v in I-only trace", e.Kind)
		}
	}
}

func TestAnnotationChargesOverhead(t *testing.T) {
	k, task := bootWith(t, "espresso", 3)
	var buf trace.Buffer
	ann := NewCapture(k.Machine(), &buf)
	ann.Annotate(k, task.ID)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	m := k.Machine()
	want := ann.Refs() * GenCyclesPerRef
	if m.OverheadCycles() != want {
		t.Fatalf("overhead %d cycles, want %d (refs x %d)",
			m.OverheadCycles(), want, GenCyclesPerRef)
	}
}

func TestOnTheFlyMatchesBatchReplay(t *testing.T) {
	// Running Cache2000 on the fly must give exactly the same hit/miss
	// counts as capturing a trace and replaying it.
	mk := func() (*kernel.Kernel, *kernel.Task) { return bootWith(t, "xlisp", 5) }

	ccfg := cache2000.Config{
		Cache: cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1},
		Kinds: []mem.RefKind{mem.IFetch},
	}

	// On the fly.
	k1, t1 := mk()
	fly, err := cache2000.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fly.BindMachine(k1.Machine())
	a1 := NewOnTheFly(k1.Machine(), fly)
	a1.IOnly = true
	a1.Annotate(k1, t1.ID)
	if err := k1.Run(0); err != nil {
		t.Fatal(err)
	}

	// Capture then replay.
	k2, t2 := mk()
	var buf trace.Buffer
	a2 := NewCapture(k2.Machine(), &buf)
	a2.IOnly = true
	a2.Annotate(k2, t2.ID)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	batch, err := cache2000.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	batch.Run(&buf)

	if fly.Misses() != batch.Misses() || fly.Hits() != batch.Hits() {
		t.Fatalf("on-the-fly %d/%d vs batch %d/%d",
			fly.Hits(), fly.Misses(), batch.Hits(), batch.Misses())
	}
}

func TestOnTheFlyDilatesTime(t *testing.T) {
	// The annotated run must take longer than an unannotated run — Pixie
	// and Cache2000 processing advances the same clock.
	k1, _ := bootWith(t, "espresso", 7)
	if err := k1.Run(0); err != nil {
		t.Fatal(err)
	}
	normalCycles := k1.Machine().Cycles()

	k2, t2 := bootWith(t, "espresso", 7)
	fly := cache2000.MustNew(cache2000.Config{
		Cache: cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1},
	})
	fly.BindMachine(k2.Machine())
	ann := NewOnTheFly(k2.Machine(), fly)
	ann.Annotate(k2, t2.ID)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	if k2.Machine().Cycles() <= normalCycles {
		t.Fatal("annotated run was not slower than the normal run")
	}
}
