// Package pixie models the Pixie binary annotator [Smith91, MIPS88]: a
// rewritten workload binary that emits its own user-level address trace as
// it runs. Pixie sees exactly one task and no kernel or server references
// — "Note that Pixie only generates user-level address traces for a single
// task" (Section 4) — which is precisely the completeness limitation that
// Table 6 quantifies.
//
// Two usage styles mirror practice: capture to a trace buffer/file for
// later simulation, or on-the-fly delivery to a consumer (Cache2000)
// during the run. Both charge per-reference annotation overhead to the
// machine clock, because the annotated workload really does run that much
// slower on the host.
package pixie

import (
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/trace"
)

// GenCyclesPerRef is the annotation cost per traced reference: the inline
// code that computes and stores the address. Together with the consumer's
// processing cost this lands in the paper's 40-60 cycles per address.
const GenCyclesPerRef = 15

// Consumer receives traced references on the fly.
type Consumer interface {
	Consume(e trace.Entry)
}

// Annotator is the kernel.Tracer that implements Pixie-style annotation.
type Annotator struct {
	m        *mach.Machine
	buf      *trace.Buffer // nil when purely on-the-fly
	consumer Consumer      // nil when purely capturing
	refs     uint64

	// IOnly restricts the trace to instruction fetches (pixie -idtrace
	// vs. -itrace); I-cache studies use instruction traces only.
	IOnly bool
}

// NewCapture returns an annotator that appends to buf.
func NewCapture(m *mach.Machine, buf *trace.Buffer) *Annotator {
	return &Annotator{m: m, buf: buf}
}

// NewOnTheFly returns an annotator that feeds c directly, the
// Pixie+Cache2000 configuration used for the paper's slowdown comparison
// (no trace file ever exists).
func NewOnTheFly(m *mach.Machine, c Consumer) *Annotator {
	return &Annotator{m: m, consumer: c}
}

// Annotate attaches the annotator to task tid of kernel k.
func (a *Annotator) Annotate(k *kernel.Kernel, tid mem.TaskID) {
	k.SetTracer(tid, a)
}

// Refs returns the number of references traced.
func (a *Annotator) Refs() uint64 { return a.refs }

// Trace implements kernel.Tracer.
func (a *Annotator) Trace(_ mem.TaskID, r mem.Ref) {
	if a.IOnly && r.Kind != mem.IFetch {
		return
	}
	a.refs++
	a.m.ChargeOverhead(GenCyclesPerRef)
	e := trace.Entry{VA: r.VA, Kind: r.Kind}
	if a.buf != nil {
		a.buf.Append(e)
	}
	if a.consumer != nil {
		a.consumer.Consume(e)
	}
}
