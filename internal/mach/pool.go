package mach

// Per-machine buffer recycling. The host cache tag stores recirculate
// through the cache package's line pool; bpPages (one uint32 per frame)
// recirculates here. Both are cleared before reuse, so a pooled machine
// starts byte-identical to a freshly allocated one.

import "sync"

var bpPool = struct {
	sync.Mutex
	byLen map[int][][]uint32
}{byLen: map[int][][]uint32{}}

// getBPPages returns a zeroed per-frame breakpoint count array and
// whether it was recycled. Pooled arrays are stored clean; putBPPages
// zeroes dirty ones on the way in.
func getBPPages(frames int) ([]uint32, bool) {
	bpPool.Lock()
	s := bpPool.byLen[frames]
	if len(s) == 0 {
		bpPool.Unlock()
		return make([]uint32, frames), false
	}
	buf := s[len(s)-1]
	s[len(s)-1] = nil
	bpPool.byLen[frames] = s[:len(s)-1]
	bpPool.Unlock()
	return buf, true
}

// putBPPages recycles buf; dirty says whether any breakpoint was ever
// armed on the machine (untouched arrays skip the clear).
func putBPPages(buf []uint32, dirty bool) {
	if buf == nil {
		return
	}
	if dirty {
		clear(buf)
	}
	bpPool.Lock()
	bpPool.byLen[len(buf)] = append(bpPool.byLen[len(buf)], buf)
	bpPool.Unlock()
}
