package mach

import (
	"testing"

	"tapeworm/internal/mem"
)

// benchMachine builds a machine over the stub OS with the fast path
// toggled, and warms the window [base, base+span) so the benchmark loop
// measures steady-state hits, not compulsory misses.
func benchMachine(b *testing.B, noFast bool, base mem.VAddr, span int) *Machine {
	b.Helper()
	os := &stubOS{translateOK: true}
	cfg := DECstation5000_200(4096)
	cfg.NoFastPath = noFast
	m, err := New(cfg, os)
	if err != nil {
		b.Fatal(err)
	}
	os.m = m
	for off := 0; off < span; off += 4 {
		m.Execute(1, mem.Ref{VA: base + mem.VAddr(off), Kind: mem.IFetch})
	}
	return m
}

// BenchmarkExecuteHot measures the per-reference path on pure hits: every
// fetch translates, hits the host TLB and I-cache, and traps nothing —
// the paper's "hits run at hardware speed" case, paid one reference at a
// time.
func BenchmarkExecuteHot(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noFast bool
	}{{"fastpath", false}, {"reference", true}} {
		b.Run(mode.name, func(b *testing.B) {
			const base, span = mem.VAddr(0x10000), 4096
			m := benchMachine(b, mode.noFast, base, span)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Execute(1, mem.Ref{VA: base + mem.VAddr(i*4%span), Kind: mem.IFetch})
			}
		})
	}
}

// BenchmarkExecuteRun measures the batched path on the same hit stream,
// handed over in page-sized sequential runs the way kexec and the user
// loop supply them.
func BenchmarkExecuteRun(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noFast bool
	}{{"fastpath", false}, {"reference", true}} {
		b.Run(mode.name, func(b *testing.B) {
			const base, span = mem.VAddr(0x10000), 4096
			m := benchMachine(b, mode.noFast, base, span)
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := span / 4
				if left := b.N - done; n > left {
					n = left
				}
				m.ExecuteRun(1, base, n)
				done += n
			}
		})
	}
}
