// Package mach simulates the host machine that Tapeworm runs on: a 32-bit
// processor with physical memory carrying ECC check bits, real (host)
// caches and a host TLB that determine uninstrumented run time, a clock
// that raises periodic interrupts, breakpoint registers, and an
// instruction counter.
//
// This is the substitution for the paper's DECstation 5000/200 (see
// DESIGN.md): Tapeworm's behaviour depends on the host only through trap
// semantics and cycle accounting, so modelling those two faithfully lets
// every speed, bias and variance result re-emerge from first principles.
//
// The machine executes memory references on behalf of an OS (implemented
// by package kernel) and vectors traps back into it: page faults when a
// translation is invalid, ECC/memory-error traps when a host cache refill
// touches a word with inconsistent check bits, breakpoint traps, and clock
// interrupts. Instrumentation overhead is charged through ChargeOverhead
// and advances the same clock as base execution — which is precisely why
// time dilation (Figure 4) appears in simulations that slow the system
// down.
package mach

import (
	"fmt"
	"math/bits"

	"tapeworm/internal/arch"
	"tapeworm/internal/cache"
	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
	"tapeworm/internal/telemetry"
)

// OS receives machine traps. Package kernel provides the implementation;
// Tapeworm registers itself with the kernel, not with the machine, because
// on the real system every trap vectors through kernel entry code first.
type OS interface {
	// Translate maps (task, va) to a physical address, or reports a page
	// fault. IsKernelVA addresses bypass translation (kseg0-style).
	Translate(t mem.TaskID, va mem.VAddr, k mem.RefKind) (mem.PAddr, bool)

	// PageFault handles an invalid translation, establishing a mapping and
	// returning the physical address. The handler may execute kernel
	// references and charge cycles on the machine. The bool distinguishes
	// a demand-zero fill from a fatal fault (false aborts the reference).
	PageFault(t mem.TaskID, va mem.VAddr, k mem.RefKind) (mem.PAddr, bool)

	// ECCTrap handles a memory-error trap raised during a host cache line
	// refill. pa is the first inconsistent word in the refilled line.
	ECCTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, k mem.RefKind)

	// BreakpointTrap handles an instruction breakpoint at (task, va, pa).
	BreakpointTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr)

	// ClockInterrupt handles a timer tick. The handler typically runs
	// kernel code and may switch tasks.
	ClockInterrupt()
}

// Config describes a machine model.
type Config struct {
	Name string
	Proc *arch.Processor // capability matrix entry (Table 12)

	ClockHz uint64 // processor clock, cycles per second

	Frames   int // physical memory size in pages
	PageSize int // bytes per page

	// Host memory hierarchy. These are the *real* caches of the host
	// machine, not simulated ones: they set the baseline run time and,
	// crucially, ECC is checked only on host cache line refills.
	HostICache cache.Config
	HostDCache cache.Config
	HostTLB    cache.TLBConfig

	MissPenalty     int // cycles to refill a host cache line
	WritePenalty    int // cycles for a write-around store (no-allocate)
	TLBRefillCycles int // software-managed TLB refill cost

	ClockTickCycles uint64 // cycles between clock interrupts

	// PredictableDMA reports whether the kernel can learn a DMA
	// transfer's target pages before it runs (and so bracket the
	// transfer with tw_remove_page/tw_register_page). The 5000/200's
	// I/O system permits this; the 5000/240's does not — the difference
	// that "hindered" the port (Section 4.3).
	PredictableDMA bool

	// DMAChecksECC reports whether the DMA engine checks ECC as it reads
	// memory. When true, a device reading a Tapeworm-trapped buffer takes
	// a spurious memory fault that the kernel can only absorb by clearing
	// the trap (losing the miss).
	DMAChecksECC bool

	// NoFastPath disables the batched hit fast path (the translation
	// micro-cache and ExecuteRun's run-length execution), forcing every
	// reference through the per-reference path. The fast path is exact —
	// cycle counts, trap sequences and telemetry are byte-identical either
	// way (the `make verify-fastpath` gate) — so this exists only for that
	// gate, for equivalence tests, and for benchmarking the speedup.
	NoFastPath bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Proc == nil {
		return fmt.Errorf("mach: config %q lacks a processor", c.Name)
	}
	if c.ClockHz == 0 {
		return fmt.Errorf("mach: config %q has zero clock rate", c.Name)
	}
	if err := mem.CheckPhysSize(c.Frames, c.PageSize); err != nil {
		return fmt.Errorf("mach: config %q: %w", c.Name, err)
	}
	if err := c.HostICache.Validate(); err != nil {
		return fmt.Errorf("mach: host icache: %w", err)
	}
	if err := c.HostDCache.Validate(); err != nil {
		return fmt.Errorf("mach: host dcache: %w", err)
	}
	if err := c.HostTLB.Validate(); err != nil {
		return fmt.Errorf("mach: host tlb: %w", err)
	}
	if c.ClockTickCycles == 0 {
		return fmt.Errorf("mach: config %q has no clock tick period", c.Name)
	}
	return nil
}

// DECstation5000_200 returns the machine model of the paper's primary
// platform: a 25 MHz MIPS R3000 with 64 KB direct-mapped I- and D-caches
// (4-word lines, no allocate on write), a 64-entry fully-associative
// software-managed TLB, and ECC memory checked on 4-word refills.
func DECstation5000_200(frames int) Config {
	proc, err := arch.ByName("MIPS R3000")
	if err != nil {
		panic(err)
	}
	return Config{
		Name:     "DECstation 5000/200",
		Proc:     proc,
		ClockHz:  25_000_000,
		Frames:   frames,
		PageSize: 4096,
		HostICache: cache.Config{
			Name: "host-I", Size: 64 << 10, LineSize: 16, Assoc: 1,
		},
		HostDCache: cache.Config{
			Name: "host-D", Size: 64 << 10, LineSize: 16, Assoc: 1,
		},
		HostTLB:         cache.R3000TLB(),
		MissPenalty:     15,
		WritePenalty:    2,
		TLBRefillCycles: 20,
		// 100 Hz scheduler clock at 25 MHz.
		ClockTickCycles: 250_000,
		PredictableDMA:  true,
	}
}

// Gateway486 returns the model of the 486-based Gateway PC port: no ECC
// diagnostic access, so only page-valid-bit (TLB) simulation is possible.
func Gateway486(frames int) Config {
	proc, err := arch.ByName("Intel i486")
	if err != nil {
		panic(err)
	}
	return Config{
		Name:     "Gateway 486",
		Proc:     proc,
		ClockHz:  33_000_000,
		Frames:   frames,
		PageSize: 4096,
		HostICache: cache.Config{
			Name: "host-U", Size: 8 << 10, LineSize: 16, Assoc: 4,
		},
		HostDCache: cache.Config{
			Name: "host-U2", Size: 8 << 10, LineSize: 16, Assoc: 4,
		},
		HostTLB: cache.TLBConfig{
			Name: "i486", Entries: 32, Assoc: 4, PageSize: 4096, Replace: LRUish(),
		},
		MissPenalty:     12,
		WritePenalty:    2,
		TLBRefillCycles: 30, // hardware page walk
		ClockTickCycles: 330_000,
		PredictableDMA:  true,
	}
}

// DECstation5000_240 returns the machine behind the paper's Section 4.3
// porting anecdote: an R4000-class DECstation with variable page sizes
// (enabling superpage TLB simulation, cf. [Talluri94]) but a DMA engine
// implemented differently from the 5000/200's — its DMA writes recompute
// ECC straight into memory, destroying Tapeworm traps on I/O buffers with
// no event the kernel can hook (PredictableDMA false).
func DECstation5000_240(frames int) Config {
	proc, err := arch.ByName("MIPS R4000")
	if err != nil {
		panic(err)
	}
	return Config{
		Name:     "DECstation 5000/240",
		Proc:     proc,
		ClockHz:  40_000_000,
		Frames:   frames,
		PageSize: 4096,
		HostICache: cache.Config{
			Name: "host-I", Size: 64 << 10, LineSize: 16, Assoc: 1,
		},
		HostDCache: cache.Config{
			Name: "host-D", Size: 64 << 10, LineSize: 16, Assoc: 1,
		},
		HostTLB: cache.TLBConfig{
			Name: "r4000", Entries: 64, PageSize: 4096, Replace: cache.Random,
			Reserved: 8,
		},
		MissPenalty:     14,
		WritePenalty:    2,
		TLBRefillCycles: 18,
		ClockTickCycles: 400_000,
		PredictableDMA:  false,
		DMAChecksECC:    true,
	}
}

// WWTNode returns a SPARC CM-5-node-like machine (the Wisconsin Wind
// Tunnel platform): allocate-on-write caches, which is what makes
// data-cache simulation possible there [Reinhardt93].
func WWTNode(frames int) Config {
	proc, err := arch.ByName("SPARC")
	if err != nil {
		panic(err)
	}
	return Config{
		Name:     "CM-5 node (SPARC)",
		Proc:     proc,
		ClockHz:  32_000_000,
		Frames:   frames,
		PageSize: 4096,
		HostICache: cache.Config{
			Name: "host-I", Size: 64 << 10, LineSize: 32, Assoc: 1,
		},
		HostDCache: cache.Config{
			Name: "host-D", Size: 64 << 10, LineSize: 32, Assoc: 1,
		},
		HostTLB:         cache.TLBConfig{Name: "sparc", Entries: 64, PageSize: 4096, Replace: LRUish()},
		MissPenalty:     20,
		WritePenalty:    2,
		TLBRefillCycles: 25,
		ClockTickCycles: 320_000,
		PredictableDMA:  true,
	}
}

// LRUish returns the LRU policy; a helper so config literals read clearly.
func LRUish() cache.Replacement { return cache.LRU }

// KernelBase is the start of the directly-mapped kernel virtual segment
// (kseg0 on MIPS): kernel VAs map to physical addresses by subtracting
// KernelBase, bypassing the TLB.
const KernelBase mem.VAddr = 0x8000_0000

// IsKernelVA reports whether va lies in the kernel's direct-mapped segment.
func IsKernelVA(va mem.VAddr) bool { return va >= KernelBase }

// Machine is the simulated host. Create with New; drive with Execute.
type Machine struct {
	cfg  Config
	phys *mem.Phys
	ctl  *mem.Controller
	os   OS

	hostI   *cache.Cache
	hostD   *cache.Cache
	hostTLB *cache.TLB

	cycles   uint64 // total elapsed cycles (base + overhead)
	overhead uint64 // cycles attributed to instrumentation
	instret  uint64 // instructions retired (IFetch count)

	nextTick     uint64
	intMasked    bool
	pendingClock bool
	latchedECC   []latchedTrap // ECC events raised while masked
	inHandler    int           // trap-handler nesting depth

	// ledgered selects gang trap physics (see SetLedgeredTraps): memory
	// traps are checked per referenced word instead of on host cache
	// refills, arming a trap does not flush host lines, and delivery is
	// immediate even while interrupts are masked. Together these make the
	// executed reference stream — cycles, ticks, scheduling — independent
	// of which traps are armed, which is what lets N ganged simulators
	// observe byte-identical streams regardless of the union trap set.
	ledgered bool

	// breakpoints maps word address -> arm count. Counts (rather than a
	// set) let several ganged simulators arm the same word: the word traps
	// while any simulator holds it, and one simulator's clear never
	// disarms another's breakpoint.
	breakpoints map[mem.PAddr]uint32
	// bpPages counts armed breakpoints per physical page frame. Together
	// with the empty-map guard it keeps the per-instruction breakpoint
	// check off the map on the hot path: a run with no breakpoints pays
	// one length test, and a run with breakpoints probes the map only
	// for fetches into pages that actually carry one.
	bpPages   []uint32
	pageShift uint
	pageMask  uint32

	// bpDirty records that bpPages was ever written, so ReleaseBuffers
	// can skip clearing an untouched array before pooling it.
	bpDirty bool

	// Pool attribution for buffers acquired by build beyond the Phys's
	// own (host cache tag stores, bpPages); see PoolCounts.
	poolGets, poolReuses uint64
	// Host cache line sizes, hoisted out of the per-reference path
	// (Cache.Config returns the whole config struct by value).
	lineI, lineD int

	// gen counts state perturbations that can invalidate a batched run's
	// standing assumptions (trap handlers, flushes, DMA, breakpoint and
	// translation changes, tick delivery). runFast snapshots it before
	// charging guaranteed-hit words and falls back to per-reference
	// execution the moment it moves.
	gen uint64

	// Translation micro-cache: the last few (task, virtual page) → frame
	// resolutions, each carrying the guarantee that the page's host-TLB
	// entry is still resident. A hit short-circuits both the os.Translate
	// interface call (a page-table map walk) and the host-TLB simulation;
	// see Execute for why the skip is exact. xlOn gates the whole memo
	// (fast path enabled and the host TLB maps machine-sized pages);
	// xlSingle degrades it to one live entry when the host TLB uses LRU
	// replacement, whose stamps would go stale under a multi-entry skip.
	xl       [xlSlots]xlEntry
	xlLive   int // xlSingle mode: index of the one live entry
	xlOn     bool
	xlSingle bool

	// Fast-path self-counters, exposed via FastPathStats for tests and
	// benchmarks. Deliberately kept out of ReportTelemetry: telemetry
	// metrics must be byte-identical with the fast path on and off.
	xlHits    uint64 // references resolved through the micro-cache
	runWords  uint64 // instructions charged in bulk by runFast
	pageInval uint64 // InvalidatePage calls (union valid-bit transitions)

	// tel, when non-nil, receives trap-level trace events. It is consulted
	// only on trap paths (already rare), so a disabled run pays one nil
	// test per trap and nothing per reference.
	tel *telemetry.Run

	// Event counters for bias analysis.
	eccTraps      uint64 // delivered ECC traps
	eccLatched    uint64 // ECC traps delivered late from the mask latch
	maskedDrops   uint64 // ECC checks suppressed by latch overflow
	silentClears  uint64 // traps destroyed by no-allocate write-around
	dmaClears     uint64 // traps destroyed by DMA writes
	dmaFaults     uint64 // spurious DMA faults on trapped buffers
	trueErrors    uint64 // non-Tapeworm syndromes delivered
	clockTicks    uint64
	pageFaults    uint64
	hostTLBMisses uint64
	bpArms        uint64 // breakpoint arm operations
	bpTraps       uint64 // delivered breakpoint traps
}

// xlSlots sizes the translation micro-cache, direct-mapped on the low
// virtual page number bits. Live entries are bounded by the host TLB's
// capacity regardless (every fill follows a host-TLB access and every
// host-TLB eviction drops its entry); the extra slots only spread the
// TLB-resident pages out so data and instruction pages with clashing low
// VPN bits stop thrashing each other.
const xlSlots = 256

// xlEntry is one translation micro-cache slot.
type xlEntry struct {
	ok   bool
	task mem.TaskID
	vpn  uint32
	pa   mem.PAddr // page-aligned physical address of the frame
}

// New builds a machine from cfg with traps vectored into os.
func New(cfg Config, os OS) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if os == nil {
		return nil, fmt.Errorf("mach: nil OS")
	}
	return build(cfg, os, mem.NewPhys(cfg.Frames, cfg.PageSize)), nil
}

// NewFromImage builds a machine whose physical memory forks a checkpoint
// image copy-on-write instead of booting fresh. Everything else — host
// caches, TLB, breakpoint tables — starts pristine, exactly as New leaves
// them (a captured machine is quiesced: zero cycles, empty caches). The
// image's geometry must match cfg.
func NewFromImage(cfg Config, os OS, img *mem.Image) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if os == nil {
		return nil, fmt.Errorf("mach: nil OS")
	}
	if img.Frames() != cfg.Frames || img.PageSize() != cfg.PageSize {
		return nil, fmt.Errorf("mach: checkpoint image geometry %d frames × %d bytes does not match config %d × %d",
			img.Frames(), img.PageSize(), cfg.Frames, cfg.PageSize)
	}
	return build(cfg, os, mem.NewPhysFromImage(img)), nil
}

// CaptureImage snapshots the machine's physical memory for checkpointing.
func (m *Machine) CaptureImage() *mem.Image { return mem.CaptureImage(m.phys) }

// build assembles a Machine around an already-constructed Phys; cfg and
// os are pre-validated.
func build(cfg Config, os OS, phys *mem.Phys) *Machine {
	bpPages, bpReused := getBPPages(cfg.Frames)
	m := &Machine{
		cfg:         cfg,
		phys:        phys,
		ctl:         mem.NewController(phys),
		os:          os,
		hostI:       cache.MustNew(cfg.HostICache, nil),
		hostD:       cache.MustNew(cfg.HostDCache, nil),
		hostTLB:     cache.MustNewTLB(cfg.HostTLB, rng.New(0x7457)),
		nextTick:    cfg.ClockTickCycles,
		breakpoints: make(map[mem.PAddr]uint32),
		bpPages:     bpPages,
		pageShift:   uint(bits.TrailingZeros(uint(cfg.PageSize))),
		pageMask:    uint32(cfg.PageSize - 1),
	}
	m.poolGets = 4 // hostI, hostD, hostTLB, bpPages
	for _, reused := range []bool{m.hostI.PoolReused(), m.hostD.PoolReused(), m.hostTLB.PoolReused(), bpReused} {
		if reused {
			m.poolReuses++
		}
	}
	// The micro-cache's host-TLB-hit guarantee only makes sense when one
	// TLB entry covers exactly one machine page; exotic configs fall back
	// to the per-reference path.
	m.xlOn = !cfg.NoFastPath && cfg.HostTLB.PageSize == cfg.PageSize
	m.xlSingle = cfg.HostTLB.Replace == cache.LRU
	m.lineI = m.hostI.Config().LineSize
	m.lineD = m.hostD.Config().LineSize
	return m
}

// MustNew is New but panics on error.
func MustNew(cfg Config, os OS) *Machine {
	m, err := New(cfg, os)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetTelemetry attaches a telemetry run to the machine's trap paths. A
// nil run (the default) disables tracing at the cost of one pointer
// test per trap.
func (m *Machine) SetTelemetry(tel *telemetry.Run) { m.tel = tel }

// Phys returns physical memory (for the kernel's frame allocator and for
// Tapeworm's trap state queries).
func (m *Machine) Phys() *mem.Phys { return m.phys }

// Controller returns the memory-controller diagnostic interface. Only
// Tapeworm's machine-dependent layer should touch it.
func (m *Machine) Controller() *mem.Controller { return m.ctl }

// Cycles returns total elapsed cycles.
func (m *Machine) Cycles() uint64 { return m.cycles }

// OverheadCycles returns cycles attributed to instrumentation (Tapeworm
// handlers, Pixie annotation, on-the-fly trace processing).
func (m *Machine) OverheadCycles() uint64 { return m.overhead }

// BaseCycles returns cycles the workload would cost without
// instrumentation interleaved (total minus overhead). Note that a dilated
// run has slightly more base cycles than an uninstrumented run — that
// difference is the Figure 4 bias, and it is deliberate.
func (m *Machine) BaseCycles() uint64 { return m.cycles - m.overhead }

// Instructions returns the number of instructions retired.
func (m *Machine) Instructions() uint64 { return m.instret }

// Seconds converts a cycle count to seconds at the machine's clock rate.
func (m *Machine) Seconds(cycles uint64) float64 {
	return float64(cycles) / float64(m.cfg.ClockHz)
}

// ClockState is the machine's architectural time state: the clock, the
// overhead split, the retired-instruction counter and the clock-interrupt
// cadence. It is what a mid-run checkpoint must carry so that a forked
// machine's ticks fire on the same instruction boundaries as the
// original's. Host cache and TLB contents are deliberately absent —
// like a context switch on real hardware, a fork resumes with cold host
// state, and measurement warm-up absorbs the difference.
type ClockState struct {
	Cycles     uint64
	Overhead   uint64
	Instret    uint64
	NextTick   uint64
	ClockTicks uint64
}

// ClockState snapshots the architectural time state. The machine must be
// quiescent: not inside a trap handler and not with interrupts masked
// (both are true at kernel main-loop boundaries).
func (m *Machine) ClockState() ClockState {
	return ClockState{
		Cycles:     m.cycles,
		Overhead:   m.overhead,
		Instret:    m.instret,
		NextTick:   m.nextTick,
		ClockTicks: m.clockTicks,
	}
}

// SetClockState restores a snapshot taken by ClockState on a freshly
// built machine, so a checkpoint fork resumes mid-run time exactly.
func (m *Machine) SetClockState(cs ClockState) {
	m.cycles = cs.Cycles
	m.overhead = cs.Overhead
	m.instret = cs.Instret
	m.nextTick = cs.NextTick
	m.clockTicks = cs.ClockTicks
}

// Charge adds base execution cycles (kernel service code, stalls).
func (m *Machine) Charge(c uint64) { m.cycles += c }

// ChargeOverhead adds instrumentation cycles. They advance the same clock
// as base cycles — overhead dilates time, as on the real machine.
func (m *Machine) ChargeOverhead(c uint64) {
	m.cycles += c
	m.overhead += c
}

// latchedTrap is an ECC event raised while interrupts were masked, held in
// the memory controller's error registers (augmented by Tapeworm's
// "special code around these regions", Section 4.2) until unmask.
type latchedTrap struct {
	t    mem.TaskID
	va   mem.VAddr
	pa   mem.PAddr
	kind mem.RefKind
}

// eccLatchDepth bounds how many masked ECC events can be held: the
// controller latches the first error and Tapeworm's "special code around
// these regions" (Section 4.2) logs the rest into a small software buffer
// drained at unmask. Events beyond the buffer are lost outright: the
// refill completes unchecked and the miss goes uncounted until the line
// leaves the host cache again — the residual measurement bias the paper
// describes for kernel code run with interrupts disabled.
const eccLatchDepth = 256

// SetIntMasked sets the processor interrupt mask. While masked, ECC traps
// latch (bounded) and clock ticks defer; both deliver on unmask.
func (m *Machine) SetIntMasked(on bool) {
	m.intMasked = on
	m.gen++ // mask changes and drained handlers void batch assumptions
	if on {
		return
	}
	for len(m.latchedECC) > 0 {
		lt := m.latchedECC[0]
		m.latchedECC = m.latchedECC[1:]
		// The trap may have been cleared (page removal) between latch
		// and delivery; skip stale entries.
		if !m.phys.TrappedWord(lt.pa) {
			continue
		}
		if m.phys.Classify(lt.pa&^3) == mem.SynTapeworm {
			m.eccTraps++
			m.eccLatched++
		} else {
			m.trueErrors++
		}
		if m.tel != nil {
			m.tel.Event(telemetry.EvECCLatched, int32(lt.t), uint32(lt.va), uint32(lt.pa), m.cycles)
		}
		m.inHandler++
		m.os.ECCTrap(lt.t, lt.va, lt.pa, lt.kind)
		m.inHandler--
	}
	m.latchedECC = nil
	if m.pendingClock {
		m.pendingClock = false
		m.clockTicks++
		if m.tel != nil {
			m.tel.Event(telemetry.EvClock, 0, 0, 0, m.cycles)
		}
		m.os.ClockInterrupt()
	}
}

// IntMasked reports the current interrupt mask.
func (m *Machine) IntMasked() bool { return m.intMasked }

// SetLedgeredTraps switches the machine to gang trap physics. Solo
// simulation reproduces the real DECstation's refill-coupled ECC checking,
// whose delivered stream depends on host cache residency, line flushes on
// arming, and the interrupt mask — all functions of the *union* trap set,
// which would let one ganged simulator's traps perturb another's observed
// stream (the Figure 4 dilation leak, in event form). In ledgered mode the
// machine instead checks the referenced word itself on every access,
// arming needs no host-line flush, and delivery is immediate even while
// interrupts are masked; handler overhead is charged to per-simulator
// ledgers (core), never to this clock. The executed stream is then
// provably independent of the trap set, so each member observes the exact
// stream of its solo run. Gang-eligible experiments always run in this
// mode (even gangs of one), keeping ganged and solo tables byte-identical.
func (m *Machine) SetLedgeredTraps(on bool) { m.ledgered = on }

// LedgeredTraps reports whether gang trap physics is active.
func (m *Machine) LedgeredTraps() bool { return m.ledgered }

// checkWordTrap is the ledgered-mode trap check: if the single word at pa
// has inconsistent ECC, classify and deliver it immediately. The handlers
// reached from here must not charge this machine's clock or disturb host
// cache state (core's gang layer guarantees both), so the only machine
// effect is the gen bump — which perturbs batching, never results.
func (m *Machine) checkWordTrap(t mem.TaskID, r mem.Ref, pa mem.PAddr) {
	w := pa &^ 3
	if !m.phys.TrappedWord(w) {
		return
	}
	if m.phys.Classify(w) == mem.SynTapeworm {
		m.eccTraps++
	} else {
		m.trueErrors++
	}
	if m.tel != nil {
		m.tel.Event(telemetry.EvECC, int32(t), uint32(r.VA), uint32(w), m.cycles)
	}
	m.gen++
	m.inHandler++
	m.os.ECCTrap(t, r.VA, w, r.Kind)
	m.inHandler--
}

// FlushHostLine removes the host cache lines containing pa from both host
// caches, forcing the next access to refill (and hence to check ECC).
// tw_set_trap must call this or resident lines would never re-trap.
func (m *Machine) FlushHostLine(pa mem.PAddr, size int) {
	if size <= 0 {
		size = 1
	}
	m.hostI.InvalidateRange(0, uint32(pa), size)
	m.hostD.InvalidateRange(0, uint32(pa), size)
	m.gen++ // resident lines just lost their guaranteed-hit status
}

// DMAWrite models a device writing [pa, pa+size): the transfer recomputes
// ECC for every word it stores, silently destroying any Tapeworm traps in
// the buffer, and invalidates the host cache lines it overlaps. The
// machine-check logic never runs — no handler sees the lost traps.
func (m *Machine) DMAWrite(pa mem.PAddr, size int) {
	if size <= 0 {
		size = mem.WordBytes
	}
	for off := 0; off < size; off += mem.WordBytes {
		w := pa + mem.PAddr(off)
		if m.phys.TrappedWord(w) && m.phys.Classify(w&^3) == mem.SynTapeworm {
			m.ctl.ClearTrap(w&^3, mem.WordBytes)
			m.dmaClears++
		}
	}
	m.FlushHostLine(pa, size)
	m.cycles += uint64(size / mem.WordBytes) // bus occupancy
}

// DMARead models a device reading [pa, pa+size). On machines whose DMA
// engine checks ECC (the 5000/240), reading a Tapeworm-trapped word raises
// a spurious memory fault; the kernel can only recover by restoring
// correct check bits, losing the miss.
func (m *Machine) DMARead(pa mem.PAddr, size int) {
	if size <= 0 {
		size = mem.WordBytes
	}
	if m.cfg.DMAChecksECC {
		for off := 0; off < size; off += mem.WordBytes {
			w := pa + mem.PAddr(off)
			if m.phys.TrappedWord(w) && m.phys.Classify(w&^3) == mem.SynTapeworm {
				m.ctl.ClearTrap(w&^3, mem.WordBytes)
				m.dmaFaults++
			}
		}
	}
	m.cycles += uint64(size / mem.WordBytes)
}

// SetBreakpoint takes one arm reference on the instruction breakpoint at
// physical address pa. The breakpoint fires while any reference is held;
// the first reference is the physical arm.
func (m *Machine) SetBreakpoint(pa mem.PAddr) {
	w := pa &^ 3
	if m.breakpoints[w] == 0 {
		m.bpArms++
		m.gen++
		if f := int(w >> m.pageShift); f < len(m.bpPages) {
			m.bpPages[f]++
			m.bpDirty = true
		}
	}
	m.breakpoints[w]++
}

// ClearBreakpoint drops one arm reference on the breakpoint at pa,
// physically disarming it when the last reference goes away. Clearing an
// unarmed word is a no-op.
func (m *Machine) ClearBreakpoint(pa mem.PAddr) {
	w := pa &^ 3
	n := m.breakpoints[w]
	if n == 0 {
		return
	}
	if n > 1 {
		m.breakpoints[w] = n - 1
		return
	}
	m.gen++
	delete(m.breakpoints, w)
	if f := int(w >> m.pageShift); f < len(m.bpPages) {
		m.bpPages[f]--
	}
}

// BreakpointRefs reports the arm count of the word containing pa. For
// tests and assertions.
func (m *Machine) BreakpointRefs(pa mem.PAddr) int { return int(m.breakpoints[pa&^3]) }

// Counters reports machine event totals.
type Counters struct {
	ECCTraps        uint64
	ECCLatched      uint64
	MaskedDrops     uint64
	SilentClears    uint64
	DMAClears       uint64
	DMAFaults       uint64
	TrueErrors      uint64
	ClockTicks      uint64
	PageFaults      uint64
	HostTLBMisses   uint64
	BreakpointArms  uint64
	BreakpointTraps uint64
}

// Counters returns a snapshot of the machine's event counters.
func (m *Machine) Counters() Counters {
	return Counters{
		ECCTraps:        m.eccTraps,
		ECCLatched:      m.eccLatched,
		MaskedDrops:     m.maskedDrops,
		SilentClears:    m.silentClears,
		DMAClears:       m.dmaClears,
		DMAFaults:       m.dmaFaults,
		TrueErrors:      m.trueErrors,
		ClockTicks:      m.clockTicks,
		PageFaults:      m.pageFaults,
		HostTLBMisses:   m.hostTLBMisses,
		BreakpointArms:  m.bpArms,
		BreakpointTraps: m.bpTraps,
	}
}

// ReportTelemetry snapshots the machine's counters, ECC flip totals, and
// cycle accounting into the attached telemetry run at end of run. A
// no-op when no telemetry is attached.
func (m *Machine) ReportTelemetry() {
	if m.tel == nil {
		return
	}
	m.tel.SetCounter("ecc_traps", m.eccTraps)
	m.tel.SetCounter("ecc_latched", m.eccLatched)
	m.tel.SetCounter("masked_drops", m.maskedDrops)
	m.tel.SetCounter("silent_clears", m.silentClears)
	m.tel.SetCounter("dma_clears", m.dmaClears)
	m.tel.SetCounter("dma_faults", m.dmaFaults)
	m.tel.SetCounter("true_errors", m.trueErrors)
	m.tel.SetCounter("clock_ticks", m.clockTicks)
	m.tel.SetCounter("page_faults", m.pageFaults)
	m.tel.SetCounter("host_tlb_misses", m.hostTLBMisses)
	m.tel.SetCounter("breakpoint_arms", m.bpArms)
	m.tel.SetCounter("breakpoint_traps", m.bpTraps)
	set, cleared := m.phys.Stats()
	m.tel.SetCounter("ecc_flips_set", set)
	m.tel.SetCounter("ecc_flips_cleared", cleared)
	m.tel.SetTiming(m.cycles, m.overhead, m.instret)
}

// Execute runs one memory reference for task t. This is the machine's
// fetch-execute step: translation (with page-fault vectoring), host TLB
// and host cache cost accounting, ECC checking on refill, breakpoint
// checking, and clock interrupt delivery.
func (m *Machine) Execute(t mem.TaskID, r mem.Ref) {
	if r.Kind == mem.IFetch {
		m.instret++
	}
	m.cycles++ // base cost of the operation itself

	// Translation. Kernel segment addresses map directly and bypass the
	// TLB; user addresses go through the OS page tables and the host TLB,
	// unless the translation micro-cache still holds the page. A memo hit
	// is exact: the entry is invalidated on every page-table update
	// (InvalidateTranslation) and whenever the host TLB evicts the page
	// (the displaced-key check below), so on a hit the full path would
	// have resolved the same frame and the host TLB would have hit — the
	// skipped Access is reproduced by NoteHits (see cache.Cache.NoteHits
	// for why skipping the stamp update preserves replacement behaviour).
	var pa mem.PAddr
	if IsKernelVA(r.VA) {
		pa = mem.PAddr(r.VA - KernelBase)
		if !m.phys.Contains(pa) {
			panic(fmt.Sprintf("mach: kernel VA %#x beyond physical memory", r.VA))
		}
	} else if e := m.xlFind(t, uint32(r.VA)>>m.pageShift); e != nil {
		pa = e.pa | mem.PAddr(uint32(r.VA)&m.pageMask)
		m.xlHits++
		m.hostTLB.NoteHits(1)
	} else {
		var ok bool
		memoizable := true
		pa, ok = m.os.Translate(t, r.VA, r.Kind)
		if !ok {
			m.pageFaults++
			m.gen++
			pa, ok = m.os.PageFault(t, r.VA, r.Kind)
			if !ok {
				return // fatal fault; reference abandoned
			}
			if m.tel != nil {
				m.tel.Event(telemetry.EvPageFault, int32(t), uint32(r.VA), uint32(pa), m.cycles)
			}
			// Fault service may have replanted a trap on this very page
			// (TLB mode arms a fresh valid-bit trap inside
			// PageRegistered); the reference proceeds, but the
			// translation must not be memoized past a cleared valid bit.
			_, memoizable = m.os.Translate(t, r.VA, r.Kind)
		}
		hit, displaced, evicted := m.hostTLB.Access(t, r.VA)
		if !hit {
			m.hostTLBMisses++
			m.cycles += uint64(m.cfg.TLBRefillCycles)
		}
		if evicted {
			m.xlDropTLB(displaced)
		}
		if memoizable {
			m.xlFill(t, uint32(r.VA)>>m.pageShift, pa&^mem.PAddr(m.pageMask))
		}
	}

	// Breakpoint check (instruction granularity). The empty-map guard
	// and the per-page summary keep the map probe off the common path:
	// uninstrumented runs never touch the map, and breakpoint-mechanism
	// runs touch it only for fetches into pages carrying a breakpoint.
	if r.Kind == mem.IFetch && len(m.breakpoints) != 0 &&
		m.bpPages[pa>>m.pageShift] != 0 && m.breakpoints[pa&^3] != 0 {
		m.bpTraps++
		if m.tel != nil {
			m.tel.Event(telemetry.EvBreakpoint, int32(t), uint32(r.VA), uint32(pa), m.cycles)
		}
		m.gen++
		m.os.BreakpointTrap(t, r.VA, pa)
	}

	// Ledgered mode checks the referenced word itself, decoupled from host
	// cache residency. No-allocate stores are excluded: they never refill,
	// so their traps are destroyed silently (write-around) in both modes.
	if m.ledgered && (r.Kind != mem.Store || m.cfg.Proc.AllocateOnWrite) {
		m.checkWordTrap(t, r, pa)
	}

	// Host cache access; ECC is checked only when a line is refilled.
	hc := m.hostI
	lineSize := m.lineI
	if r.Kind != mem.IFetch {
		hc, lineSize = m.hostD, m.lineD
	}

	if r.Kind == mem.Store && !m.cfg.Proc.AllocateOnWrite {
		// No-allocate-on-write: a store miss writes around the cache.
		// The write recomputes ECC for the stored word, silently
		// destroying any Tapeworm trap there without a handler call —
		// the exact effect that defeated data-cache simulation on the
		// DECstation (Section 4.4).
		if !hc.AccessIfHit(0, uint32(pa)) {
			m.cycles += uint64(m.cfg.WritePenalty)
			if m.phys.TrappedWord(pa) && m.phys.Classify(pa&^3) == mem.SynTapeworm {
				m.ctl.ClearTrap(pa&^3, mem.WordBytes)
				m.silentClears++
			}
		}
	} else {
		hit, _, _ := hc.Access(0, uint32(pa))
		if !hit {
			m.cycles += uint64(m.cfg.MissPenalty)
			m.checkECCOnRefill(t, r, mem.PAddr(hc.LineAddr(uint32(pa))), lineSize)
		}
	}

	// Clock interrupt delivery.
	if m.cycles >= m.nextTick {
		m.deliverTick(t)
	}
}

// deliverTick rearms the clock and delivers (or defers) the interrupt; the
// tail of both Execute and runFast, so tick timing is one code path.
func (m *Machine) deliverTick(t mem.TaskID) {
	m.nextTick = m.cycles + m.cfg.ClockTickCycles
	if m.intMasked {
		m.pendingClock = true
		return
	}
	m.gen++
	m.clockTicks++
	if m.tel != nil {
		m.tel.Event(telemetry.EvClock, int32(t), 0, 0, m.cycles)
	}
	m.os.ClockInterrupt()
}

// ExecuteRun executes n sequential instruction fetches for task t at base,
// base+4, ..., base+4(n-1). It is exactly equivalent to n Execute calls
// with IFetch references — same cycles, same trap sequence, same telemetry
// — but charges guaranteed-hit streaks in bulk through runFast, falling
// back to per-reference Execute at the first hazard. Callers (textwalk
// consumers) supply runs that are sequential by construction; runs that
// cross a page boundary are simply split at it.
func (m *Machine) ExecuteRun(t mem.TaskID, base mem.VAddr, n int) {
	for n > 0 {
		done := m.runFast(t, base, n)
		if done == 0 {
			m.Execute(t, mem.Ref{VA: base, Kind: mem.IFetch})
			done = 1
		}
		base += mem.VAddr(4 * done)
		n -= done
	}
}

// runFast charges up to n sequential instruction fetches starting at base,
// returning how many it completed (0 = caller must take the per-reference
// path for the first one). The batch is exact, not approximate:
//
//   - The first word of each host cache line goes through a real
//     cache.Access — misses pay the refill and check ECC with the precise
//     per-word VA, just like Execute.
//   - The remaining words of a line are charged in bulk only while they are
//     provably hits: the line was just observed resident, the page's
//     translation is pinned by the micro-cache (user) or direct mapping
//     (kernel), the page carries no armed breakpoint, and no trap handler
//     has run since (gen unchanged — every handler dispatch bumps gen).
//   - Bulk charging is clamped so the clock tick fires at the exact cycle
//     the per-reference path would fire it.
func (m *Machine) runFast(t mem.TaskID, base mem.VAddr, n int) int {
	if uint32(base)&3 != 0 {
		return 0
	}
	var pa mem.PAddr
	user := !IsKernelVA(base)
	if user {
		e := m.xlFind(t, uint32(base)>>m.pageShift)
		if e == nil {
			return 0
		}
		pa = e.pa | mem.PAddr(uint32(base)&m.pageMask)
	} else {
		if m.cfg.NoFastPath {
			return 0
		}
		pa = mem.PAddr(base - KernelBase)
		if !m.phys.Contains(pa) {
			return 0 // let Execute report the bad address
		}
	}
	// The memo guarantee and the direct mapping both end at the page
	// boundary; ExecuteRun re-enters for the rest of the run.
	if pageLeft := int(uint32(m.cfg.PageSize)-(uint32(pa)&m.pageMask)) / 4; n > pageLeft {
		n = pageLeft
	}
	if len(m.breakpoints) != 0 && m.bpPages[pa>>m.pageShift] != 0 {
		return 0
	}
	lineSize := m.lineI
	done := 0
	for done < n {
		gen := m.gen
		m.instret++
		m.cycles++
		if user {
			m.xlHits++
			m.hostTLB.NoteHits(1)
		}
		hit, _, _ := m.hostI.Access(0, uint32(pa))
		if !hit {
			m.cycles += uint64(m.cfg.MissPenalty)
			m.checkECCOnRefill(t, mem.Ref{VA: base + mem.VAddr(4*done), Kind: mem.IFetch},
				mem.PAddr(m.hostI.LineAddr(uint32(pa))), lineSize)
		}
		if m.ledgered {
			m.checkWordTrap(t, mem.Ref{VA: base + mem.VAddr(4*done), Kind: mem.IFetch}, pa)
		}
		done++
		pa += mem.PAddr(4)
		if m.cycles >= m.nextTick {
			m.deliverTick(t)
			return done
		}
		if m.gen != gen {
			return done // a handler ran; batch assumptions void
		}
		// Words to the end of this host line are guaranteed hits now.
		w := (int(m.hostI.LineAddr(uint32(pa-4))) + lineSize - int(pa)) / 4
		if left := n - done; w > left {
			w = left
		}
		if tickLeft := int(m.nextTick - m.cycles); w > tickLeft {
			w = tickLeft
		}
		// Ledgered mode delivers per referenced word, so a bulk-charged
		// streak must be trap-free; a trapped streak degrades to the
		// per-word loop above, which delivers at the exact reference.
		if m.ledgered && w > 0 && m.phys.Trapped(pa, 4*w) {
			w = 0
		}
		if w > 0 {
			m.instret += uint64(w)
			m.cycles += uint64(w)
			m.hostI.NoteHits(w)
			if user {
				m.hostTLB.NoteHits(w)
				m.xlHits += uint64(w)
			}
			m.runWords += uint64(w)
			done += w
			pa += mem.PAddr(4 * w)
			if m.cycles >= m.nextTick {
				m.deliverTick(t)
				return done
			}
		}
	}
	return done
}

// xlFind returns the micro-cache entry for (task, vpn), or nil.
func (m *Machine) xlFind(t mem.TaskID, vpn uint32) *xlEntry {
	if !m.xlOn {
		return nil
	}
	if e := &m.xl[vpn&(xlSlots-1)]; e.ok && e.task == t && e.vpn == vpn {
		return e
	}
	return nil
}

// xlFill installs a translation the full path just resolved. The host-TLB
// Access that precedes every call is what establishes the entry's
// guarantee: the page is TLB-resident right now, and it stays memoized
// only until InvalidateTranslation or an observed displacement drops it.
func (m *Machine) xlFill(t mem.TaskID, vpn uint32, framePA mem.PAddr) {
	if !m.xlOn {
		return
	}
	slot := int(vpn & (xlSlots - 1))
	if m.xlSingle {
		// LRU host TLB: a multi-entry memo would let interleaved pages
		// skip the stamp updates that order evictions, so keep exactly
		// one live entry — same-page streaks still win, and every
		// cross-page access goes through the full stamping path.
		m.xl[m.xlLive].ok = false
		m.xlLive = slot
	}
	m.xl[slot] = xlEntry{ok: true, task: t, vpn: vpn, pa: framePA}
}

// xlDropTLB invalidates memo entries whose page the host TLB just evicted;
// their TLB-residency guarantee is void, so the next reference must take
// the full path (and charge the TLB miss) exactly as the slow path would.
func (m *Machine) xlDropTLB(k cache.Key) {
	vpn := k.Addr >> m.pageShift
	if e := &m.xl[vpn&(xlSlots-1)]; e.ok && e.task == k.Task && e.vpn == vpn {
		e.ok = false
	}
}

// InvalidateTranslation flushes the translation micro-cache and aborts any
// in-flight batched run. The kernel calls it on every event that can
// change established translations behind the fast path's back and touches
// more than one page (or an unbounded set): task exit (frame reuse), fork
// text sharing, and TLB shootdown. Single-page updates use InvalidatePage
// instead; task switches and DMA invalidate nothing (task-tagged entries
// survive a switch, and DMA moves data, not page tables).
func (m *Machine) InvalidateTranslation() {
	m.xl = [xlSlots]xlEntry{}
	m.gen++
}

// InvalidatePage drops the memoized translation for one (task, page) and
// aborts any in-flight batched run, without disturbing the rest of the
// memo. It is the targeted form of InvalidateTranslation for kernel
// operations that change exactly one page-table entry — valid-bit flips
// (tw_set_trap replants a trap on every simulated miss) and single-page
// eviction — where a full flush would empty the memo thousands of times
// per run and drag the fast path back to full-path refill costs.
func (m *Machine) InvalidatePage(t mem.TaskID, va mem.VAddr) {
	vpn := uint32(va) >> m.pageShift
	if e := &m.xl[vpn&(xlSlots-1)]; e.ok && e.task == t && e.vpn == vpn {
		e.ok = false
	}
	m.pageInval++
	m.gen++
}

// PageInvalidations counts InvalidatePage calls. Under gang attach the
// kernel flips a page's valid bit — and so invalidates the micro-cache —
// only when the *union* validity across members transitions; tests assert
// on this counter to pin that protocol down.
func (m *Machine) PageInvalidations() uint64 { return m.pageInval }

// ReleaseBuffers returns the machine's pooled backing arrays (physical
// memory bitsets) for reuse by a later run. The machine must not execute
// again; experiment teardown calls this after results are extracted.
func (m *Machine) ReleaseBuffers() {
	m.phys.Release()
	m.hostI.Release()
	m.hostD.Release()
	m.hostTLB.Release()
	putBPPages(m.bpPages, m.bpDirty)
	m.bpPages = nil
}

// PoolCounts reports pooled-buffer acquisitions made on this machine's
// behalf (host cache tag stores, breakpoint page counts, and physical
// trap tables) and how many were satisfied by recycling. Per-machine, so
// callers can attribute pool traffic to a run even when other machines
// run concurrently (the process-global mem.PoolStats cannot).
func (m *Machine) PoolCounts() (gets, reuses uint64) {
	gets, reuses = m.phys.PoolCounts()
	return gets + m.poolGets, reuses + m.poolReuses
}

// FastPathStats reports the fast path's self-counters: references resolved
// through the translation micro-cache, and instructions charged in bulk by
// runFast. Deliberately not part of ReportTelemetry — telemetry must be
// byte-identical with the fast path on and off.
func (m *Machine) FastPathStats() (xlHits, runWords uint64) {
	return m.xlHits, m.runWords
}

// checkECCOnRefill scans the words of a refilled host line for inconsistent
// ECC and raises at most one memory-error trap per refill (the controller
// latches the first failing address).
func (m *Machine) checkECCOnRefill(t mem.TaskID, r mem.Ref, lineAddr mem.PAddr, lineSize int) {
	if m.ledgered {
		return // ledgered mode checks per referenced word instead
	}
	if !m.phys.Trapped(lineAddr, lineSize) {
		return
	}
	// Locate the first inconsistent word.
	var errAddr mem.PAddr
	found := false
	for off := 0; off < lineSize; off += mem.WordBytes {
		w := lineAddr + mem.PAddr(off)
		if m.phys.TrappedWord(w) {
			errAddr, found = w, true
			break
		}
	}
	if !found {
		return
	}
	if m.intMasked {
		// The error interrupt cannot be taken now. The controller (plus
		// Tapeworm's logging code around masked regions) latches a
		// bounded number of events for delivery at unmask; overflow is
		// lost until the line leaves the host cache again.
		if len(m.latchedECC) < eccLatchDepth {
			m.latchedECC = append(m.latchedECC, latchedTrap{t, r.VA, errAddr, r.Kind})
		} else {
			m.maskedDrops++
		}
		return
	}
	if m.phys.Classify(errAddr) == mem.SynTapeworm {
		m.eccTraps++
	} else {
		m.trueErrors++
	}
	if m.tel != nil {
		m.tel.Event(telemetry.EvECC, int32(t), uint32(r.VA), uint32(errAddr), m.cycles)
	}
	m.gen++
	m.inHandler++
	m.os.ECCTrap(t, r.VA, errAddr, r.Kind)
	m.inHandler--
}

// InHandler reports whether the machine is currently inside a trap handler
// (used by assertions in tests).
func (m *Machine) InHandler() bool { return m.inHandler > 0 }
