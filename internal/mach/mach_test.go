package mach

import (
	"testing"

	"tapeworm/internal/mem"
)

// stubOS is a minimal mach.OS with an identity page table over low memory
// and recording trap hooks.
type stubOS struct {
	m *Machine // set after New

	eccTraps    []mem.PAddr
	eccTasks    []mem.TaskID
	bpTraps     []mem.PAddr
	clockTicks  int
	pageFaults  int
	faultFail   bool
	onECC       func(pa mem.PAddr)
	translateOK bool
}

func (s *stubOS) Translate(t mem.TaskID, va mem.VAddr, k mem.RefKind) (mem.PAddr, bool) {
	if !s.translateOK {
		return 0, false
	}
	return mem.PAddr(va), true // identity map
}

func (s *stubOS) PageFault(t mem.TaskID, va mem.VAddr, k mem.RefKind) (mem.PAddr, bool) {
	s.pageFaults++
	if s.faultFail {
		return 0, false
	}
	return mem.PAddr(va), true
}

func (s *stubOS) ECCTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, k mem.RefKind) {
	s.eccTraps = append(s.eccTraps, pa)
	s.eccTasks = append(s.eccTasks, t)
	if s.onECC != nil {
		s.onECC(pa)
	}
}

func (s *stubOS) BreakpointTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr) {
	s.bpTraps = append(s.bpTraps, pa)
}

func (s *stubOS) ClockInterrupt() { s.clockTicks++ }

func newTestMachine(t *testing.T) (*Machine, *stubOS) {
	t.Helper()
	os := &stubOS{translateOK: true}
	m, err := New(DECstation5000_200(256), os) // 1 MB
	if err != nil {
		t.Fatal(err)
	}
	os.m = m
	return m, os
}

func TestConfigValidate(t *testing.T) {
	good := DECstation5000_200(64)
	if err := good.Validate(); err != nil {
		t.Fatalf("DECstation config invalid: %v", err)
	}
	bad := good
	bad.Proc = nil
	if bad.Validate() == nil {
		t.Error("nil processor accepted")
	}
	bad = good
	bad.ClockTickCycles = 0
	if bad.Validate() == nil {
		t.Error("zero tick period accepted")
	}
	bad = good
	bad.HostICache.Size = 3000
	if bad.Validate() == nil {
		t.Error("bad host cache accepted")
	}
	if _, err := New(good, nil); err == nil {
		t.Error("nil OS accepted")
	}
}

func TestExecuteCountsInstructions(t *testing.T) {
	m, _ := newTestMachine(t)
	for i := 0; i < 10; i++ {
		m.Execute(1, mem.Ref{VA: mem.VAddr(0x1000 + i*4), Kind: mem.IFetch})
	}
	m.Execute(1, mem.Ref{VA: 0x2000, Kind: mem.Load})
	if m.Instructions() != 10 {
		t.Fatalf("instret = %d, want 10 (loads are not instructions)", m.Instructions())
	}
	if m.Cycles() == 0 {
		t.Fatal("no cycles charged")
	}
}

func TestKernelSegmentBypassesTranslation(t *testing.T) {
	m, os := newTestMachine(t)
	os.translateOK = false // any user translation would fault
	m.Execute(0, mem.Ref{VA: KernelBase + 0x4000, Kind: mem.IFetch})
	if os.pageFaults != 0 {
		t.Fatal("kseg0 access went through translation")
	}
	if !IsKernelVA(KernelBase) || IsKernelVA(KernelBase-1) {
		t.Fatal("IsKernelVA boundary wrong")
	}
}

func TestPageFaultPath(t *testing.T) {
	m, os := newTestMachine(t)
	os.translateOK = false
	m.Execute(1, mem.Ref{VA: 0x3000, Kind: mem.IFetch})
	if os.pageFaults != 1 {
		t.Fatalf("pageFaults = %d", os.pageFaults)
	}
	if m.Counters().PageFaults != 1 {
		t.Fatal("machine fault counter not incremented")
	}
	// A fatal fault abandons the reference without crashing.
	os.faultFail = true
	m.Execute(1, mem.Ref{VA: 0x4000, Kind: mem.Load})
}

func TestECCTrapOnRefill(t *testing.T) {
	m, os := newTestMachine(t)
	ctl := m.Controller()
	ctl.SetTrap(0x5000, 16)
	m.FlushHostLine(0x5000, 16)

	m.Execute(2, mem.Ref{VA: 0x5004, Kind: mem.IFetch})
	if len(os.eccTraps) != 1 {
		t.Fatalf("ECC traps delivered: %d, want 1", len(os.eccTraps))
	}
	if os.eccTraps[0] != 0x5000 {
		t.Fatalf("trap at %#x, want first trapped word 0x5000", os.eccTraps[0])
	}
	if os.eccTasks[0] != 2 {
		t.Fatalf("trap attributed to task %d", os.eccTasks[0])
	}
	if m.Counters().ECCTraps != 1 {
		t.Fatal("machine ECC counter not incremented")
	}
}

func TestNoECCTrapWhileHostLineCached(t *testing.T) {
	m, os := newTestMachine(t)
	// Touch the line first so it is resident in the host cache...
	m.Execute(1, mem.Ref{VA: 0x6000, Kind: mem.IFetch})
	// ...then set a trap WITHOUT flushing: no refill, no check.
	m.Controller().SetTrap(0x6000, 16)
	m.Execute(1, mem.Ref{VA: 0x6000, Kind: mem.IFetch})
	if len(os.eccTraps) != 0 {
		t.Fatal("trap fired without a refill; ECC is only checked on refill")
	}
	// After flushing the host line, the next access refills and traps.
	m.FlushHostLine(0x6000, 16)
	m.Execute(1, mem.Ref{VA: 0x6000, Kind: mem.IFetch})
	if len(os.eccTraps) != 1 {
		t.Fatal("trap did not fire after host line flush")
	}
}

func TestMaskedECCLatchesAndDelivers(t *testing.T) {
	m, os := newTestMachine(t)
	m.Controller().SetTrap(0x7000, 16)
	m.SetIntMasked(true)
	m.Execute(1, mem.Ref{VA: 0x7000, Kind: mem.IFetch})
	if len(os.eccTraps) != 0 {
		t.Fatal("trap delivered while masked")
	}
	m.SetIntMasked(false)
	if len(os.eccTraps) != 1 {
		t.Fatalf("latched trap not delivered on unmask: %d", len(os.eccTraps))
	}
	if m.Counters().ECCLatched != 1 {
		t.Fatal("latched delivery not counted")
	}
}

func TestMaskedLatchSkipsStaleTraps(t *testing.T) {
	m, os := newTestMachine(t)
	m.Controller().SetTrap(0x8000, 16)
	m.SetIntMasked(true)
	m.Execute(1, mem.Ref{VA: 0x8000, Kind: mem.IFetch})
	// The trap is cleared (e.g. tw_remove_page) before unmask.
	m.Controller().ClearTrap(0x8000, 16)
	m.SetIntMasked(false)
	if len(os.eccTraps) != 0 {
		t.Fatal("stale latched trap delivered")
	}
}

func TestMaskedLatchOverflowDrops(t *testing.T) {
	m, _ := newTestMachine(t)
	// Arm far more trapped lines than the latch can hold and touch them
	// all masked.
	for i := 0; i < 600; i++ {
		pa := mem.PAddr(0x10000 + i*16)
		m.Controller().SetTrap(pa, 16)
	}
	m.SetIntMasked(true)
	for i := 0; i < 600; i++ {
		m.Execute(1, mem.Ref{VA: mem.VAddr(0x10000 + i*16), Kind: mem.IFetch})
	}
	m.SetIntMasked(false)
	c := m.Counters()
	if c.MaskedDrops == 0 {
		t.Fatal("latch overflow did not drop")
	}
	if c.ECCLatched == 0 {
		t.Fatal("nothing latched")
	}
}

func TestNoAllocateWriteSilentlyClearsTrap(t *testing.T) {
	m, os := newTestMachine(t)
	m.Controller().SetTrap(0x9000, 4)
	m.FlushHostLine(0x9000, 16)
	// A store miss on the no-allocate DECstation writes around the cache,
	// recomputing ECC and destroying the trap without any handler call.
	m.Execute(1, mem.Ref{VA: 0x9000, Kind: mem.Store})
	if len(os.eccTraps) != 0 {
		t.Fatal("store should not raise a trap on a no-allocate host")
	}
	if m.Counters().SilentClears != 1 {
		t.Fatalf("silent clears = %d, want 1", m.Counters().SilentClears)
	}
	if m.Phys().TrappedWord(0x9000) {
		t.Fatal("trap survived the write-around")
	}
}

func TestAllocateOnWriteHostTrapsOnStore(t *testing.T) {
	os := &stubOS{translateOK: true}
	m, err := New(WWTNode(256), os)
	if err != nil {
		t.Fatal(err)
	}
	m.Controller().SetTrap(0xa000, 4)
	m.FlushHostLine(0xa000, 32)
	m.Execute(1, mem.Ref{VA: 0xa000, Kind: mem.Store})
	if len(os.eccTraps) != 1 {
		t.Fatal("allocate-on-write store miss should refill and trap")
	}
	if m.Counters().SilentClears != 0 {
		t.Fatal("no silent clears expected on WWT node")
	}
}

func TestBreakpoints(t *testing.T) {
	m, os := newTestMachine(t)
	m.SetBreakpoint(0xb000)
	m.Execute(1, mem.Ref{VA: 0xb000, Kind: mem.IFetch})
	m.Execute(1, mem.Ref{VA: 0xb000, Kind: mem.Load}) // data refs don't hit bps
	if len(os.bpTraps) != 1 {
		t.Fatalf("breakpoint traps = %d, want 1", len(os.bpTraps))
	}
	m.ClearBreakpoint(0xb000)
	m.Execute(1, mem.Ref{VA: 0xb000, Kind: mem.IFetch})
	if len(os.bpTraps) != 1 {
		t.Fatal("cleared breakpoint still fired")
	}
}

func TestClockInterrupts(t *testing.T) {
	m, os := newTestMachine(t)
	period := m.Config().ClockTickCycles
	// Charge enough cycles to pass several tick boundaries.
	for i := 0; i < 5; i++ {
		m.Charge(period)
		m.Execute(1, mem.Ref{VA: 0x1000, Kind: mem.IFetch})
	}
	if os.clockTicks < 4 {
		t.Fatalf("clock ticks = %d, want >= 4", os.clockTicks)
	}
}

func TestClockDeferredWhileMasked(t *testing.T) {
	m, os := newTestMachine(t)
	m.SetIntMasked(true)
	m.Charge(m.Config().ClockTickCycles * 2)
	m.Execute(1, mem.Ref{VA: 0x1000, Kind: mem.IFetch})
	if os.clockTicks != 0 {
		t.Fatal("tick delivered while masked")
	}
	m.SetIntMasked(false)
	if os.clockTicks != 1 {
		t.Fatalf("pending tick not delivered on unmask: %d", os.clockTicks)
	}
}

func TestOverheadAccounting(t *testing.T) {
	m, _ := newTestMachine(t)
	m.Execute(1, mem.Ref{VA: 0x1000, Kind: mem.IFetch})
	base := m.Cycles()
	m.ChargeOverhead(250)
	if m.OverheadCycles() != 250 {
		t.Fatalf("overhead = %d", m.OverheadCycles())
	}
	if m.Cycles() != base+250 {
		t.Fatal("overhead did not advance the clock (no time dilation)")
	}
	if m.BaseCycles() != base {
		t.Fatalf("base cycles = %d, want %d", m.BaseCycles(), base)
	}
}

func TestSeconds(t *testing.T) {
	m, _ := newTestMachine(t)
	if got := m.Seconds(25_000_000); got != 1.0 {
		t.Fatalf("25M cycles at 25MHz = %v s", got)
	}
}

func TestTrueErrorCounted(t *testing.T) {
	m, os := newTestMachine(t)
	m.Phys().InjectError(0xc000, 20) // non-Tapeworm bit
	m.FlushHostLine(0xc000, 16)
	m.Execute(1, mem.Ref{VA: 0xc000, Kind: mem.IFetch})
	if m.Counters().TrueErrors != 1 {
		t.Fatal("true error not classified")
	}
	if len(os.eccTraps) != 1 {
		t.Fatal("true error not delivered to the OS")
	}
}

func TestMaskedTrueErrorDeliveredLate(t *testing.T) {
	// A genuine memory error raised while interrupts are masked latches
	// like any other ECC event and must be delivered — and classified as
	// a true error, not a Tapeworm trap — at unmask.
	m, os := newTestMachine(t)
	m.Phys().InjectError(0xe000, 17) // non-Tapeworm bit position
	m.SetIntMasked(true)
	m.Execute(1, mem.Ref{VA: 0xe000, Kind: mem.IFetch})
	if m.Counters().TrueErrors != 0 {
		t.Fatal("true error delivered while masked")
	}
	m.SetIntMasked(false)
	if m.Counters().TrueErrors != 1 {
		t.Fatalf("true errors = %d after unmask, want 1", m.Counters().TrueErrors)
	}
	if len(os.eccTraps) != 1 {
		t.Fatal("latched true error never reached the OS")
	}
	if m.Counters().ECCTraps != 0 {
		t.Fatal("true error miscounted as a Tapeworm trap")
	}
}

func TestHostTLBMissCharged(t *testing.T) {
	m, _ := newTestMachine(t)
	before := m.Cycles()
	m.Execute(1, mem.Ref{VA: 0xd000, Kind: mem.IFetch})
	afterMiss := m.Cycles() - before
	before = m.Cycles()
	m.Execute(1, mem.Ref{VA: 0xd004, Kind: mem.IFetch}) // same page and line
	afterHit := m.Cycles() - before
	if afterMiss <= afterHit {
		t.Fatalf("TLB+cache miss (%d cycles) not more expensive than hit (%d)",
			afterMiss, afterHit)
	}
}
