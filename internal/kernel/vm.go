package kernel

import (
	"fmt"
	"slices"

	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

// User address-space layout (MIPS convention, simplified).
const (
	// TextBase is where user program text begins.
	TextBase mem.VAddr = 0x0040_0000
	// DataBase is where user heap/data begins.
	DataBase mem.VAddr = 0x1000_0000
	// StackTop is the top of the user stack region (grows down).
	StackTop mem.VAddr = 0x7fff_f000
)

// pte encodes a page-table entry: frame number in the low 20 bits, plus a
// hardware valid bit and a software resident bit. The resident bit is the
// "extra bit maintained in software to indicate the true state of the
// page" from Section 3.2, footnote 2: Tapeworm's TLB mode clears the valid
// bit of resident pages to force traps, and the VM system must still know
// the page is really in memory.
type pte uint32

const (
	pteValid    pte = 1 << 31
	pteResident pte = 1 << 30
	pteShared   pte = 1 << 29 // text page shared with parent at fork
	frameMask   pte = 1<<20 - 1
)

func (p pte) frame() uint32  { return uint32(p & frameMask) }
func (p pte) valid() bool    { return p&pteValid != 0 }
func (p pte) resident() bool { return p&pteResident != 0 }
func (p pte) sharedTx() bool { return p&pteShared != 0 }

// AddrSpace is a two-level page table. The second level is allocated on
// demand, keeping per-task memory proportional to the footprint even with
// the 281-task sdet fork tree.
type AddrSpace struct {
	chunks   map[uint32]*[1024]pte // vpn>>10 -> 1024 ptes
	pageSize uint32
	pageBits uint
	mapped   int // pages with a frame (resident or paged-valid state)
}

// newAddrSpace creates an empty address space for the given page size.
func newAddrSpace(pageSize int) *AddrSpace {
	bits := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		bits++
	}
	return &AddrSpace{
		chunks:   make(map[uint32]*[1024]pte),
		pageSize: uint32(pageSize),
		pageBits: bits,
	}
}

func (a *AddrSpace) vpn(va mem.VAddr) uint32 { return uint32(va) >> a.pageBits }

func (a *AddrSpace) lookup(vpn uint32) pte {
	if c := a.chunks[vpn>>10]; c != nil {
		return c[vpn&1023]
	}
	return 0
}

func (a *AddrSpace) set(vpn uint32, p pte) {
	c := a.chunks[vpn>>10]
	if c == nil {
		c = new([1024]pte)
		a.chunks[vpn>>10] = c
	}
	c[vpn&1023] = p
}

// Translate resolves va to a physical address if the mapping is valid.
func (a *AddrSpace) Translate(va mem.VAddr) (mem.PAddr, bool) {
	p := a.lookup(a.vpn(va))
	if !p.valid() {
		return 0, false
	}
	return mem.PAddr(p.frame()*a.pageSize) + mem.PAddr(uint32(va)&(a.pageSize-1)), true
}

// Mapped returns the number of pages with frames assigned.
func (a *AddrSpace) Mapped() int { return a.mapped }

// Pages calls fn for every mapped page with its vpn and entry state, in
// ascending vpn order. Ordered iteration matters: exit() releases frames
// through this walk, so a map-order walk would free frames in a different
// order each run and the allocator's reuse order — hence every
// physically-indexed result — would stop being reproducible.
func (a *AddrSpace) pages(fn func(vpn uint32, p pte)) {
	his := make([]uint32, 0, len(a.chunks))
	for hi := range a.chunks {
		his = append(his, hi)
	}
	slices.Sort(his)
	for _, hi := range his {
		for lo, p := range a.chunks[hi] {
			if p != 0 {
				fn(hi<<10|uint32(lo), p)
			}
		}
	}
}

// MemSimHooks is the attachment point for a kernel-resident memory
// simulator (Tapeworm). The VM system invokes PageRegistered for every
// mapping established for a simulated task — including additional virtual
// mappings of an already-mapped physical page, so the simulator can do its
// own reference counting of shared pages — and PageRemoved when mappings
// are destroyed by task exit or page-out. Trap hooks return true when the
// simulator consumed the trap.
type MemSimHooks interface {
	// PageRegistered is tw_register_page: kind is the access kind that
	// faulted the page in (IFetch for text pages), letting a simulator
	// restricted to one cache side skip irrelevant pages.
	PageRegistered(t mem.TaskID, pa mem.PAddr, va mem.VAddr, kind mem.RefKind)
	PageRemoved(t mem.TaskID, pa mem.PAddr, va mem.VAddr)
	TaskForked(parent, child *Task)
	TaskExited(t mem.TaskID)
	// ECCTrap is the memory-error trap path. Returns true if the trap was
	// a Tapeworm trap and was consumed.
	ECCTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, k mem.RefKind) bool
	// InvalidPageTrap fires when a fault hits a page that is resident but
	// marked invalid (a page-valid-bit trap, used for TLB simulation).
	// Returns true if the simulator revalidated the page.
	InvalidPageTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, k mem.RefKind) bool
	BreakpointTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr)
}

// frameAllocator hands out physical page frames in a per-boot randomized
// order. This randomness is a real OS effect, not a simulation artifact:
// "the distributions of physical page frames allocated to a task, which
// change from run to run, affect the sequence of addresses seen by a
// physically-indexed cache" (Section 4.2, [Kessler92, Sites88]). Table 9
// measures exactly this; varying the allocator's seed between trials is
// how experiments reproduce it, and pinning the seed removes it.
type frameAllocator struct {
	free     []uint32
	refcount []uint16 // per-frame mapping count (shared pages)

	// poolGets/poolReuses attribute the backing-array acquisition to this
	// allocator's run for per-run pool stats.
	poolGets   uint64
	poolReuses uint64
}

// newFrameAllocator builds the allocator over pooled backing arrays; the
// returned allocator owns them until Kernel.ReleaseBuffers.
func newFrameAllocator(totalFrames, reservedFrames int, r *rng.Source) *frameAllocator {
	// Backing arrays come from the per-size pool (sweeps boot hundreds of
	// machines with identical geometry); GetFrameTables hands them back
	// reset, so the fill and shuffle below see a fresh-boot state.
	fa := acquireFrameTables(totalFrames)
	n := totalFrames - reservedFrames
	for i := 0; i < n; i++ {
		fa.free = append(fa.free, uint32(reservedFrames+i))
	}
	// Fisher-Yates with the allocator's own stream.
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		fa.free[i], fa.free[j] = fa.free[j], fa.free[i]
	}
	return fa
}

// restoreFrameAllocator rebuilds an allocator from checkpointed tables,
// copying them into pooled backing arrays. The checkpoint's free list is
// already shuffled, so a restored allocator hands out the exact frame
// sequence the captured boot would have — without re-running Fisher-Yates,
// the dominant boot-only cost.
func restoreFrameAllocator(totalFrames int, free []uint32, refcount []uint16) *frameAllocator {
	fa := acquireFrameTables(totalFrames)
	fa.free = append(fa.free, free...)
	copy(fa.refcount, refcount)
	return fa
}

// acquireFrameTables pulls pooled tables and records the attribution.
func acquireFrameTables(totalFrames int) *frameAllocator {
	freeBuf, refcount, reused := mem.GetFrameTables(totalFrames)
	fa := &frameAllocator{free: freeBuf, refcount: refcount, poolGets: 1}
	if reused {
		fa.poolReuses = 1
	}
	return fa
}

// alloc pops a free frame; ok is false when memory is exhausted.
func (fa *frameAllocator) alloc() (uint32, bool) {
	if len(fa.free) == 0 {
		return 0, false
	}
	f := fa.free[len(fa.free)-1]
	fa.free = fa.free[:len(fa.free)-1]
	fa.refcount[f] = 1
	return f, true
}

// share increments the mapping count of an in-use frame.
func (fa *frameAllocator) share(f uint32) { fa.refcount[f]++ }

// release decrements the mapping count, freeing the frame at zero.
// Returns true when the frame was actually freed.
func (fa *frameAllocator) release(f uint32) bool {
	if fa.refcount[f] == 0 {
		panic(fmt.Sprintf("kernel: release of free frame %d", f))
	}
	fa.refcount[f]--
	if fa.refcount[f] == 0 {
		fa.free = append(fa.free, f)
		return true
	}
	return false
}

// FreeFrames reports how many frames remain unallocated.
func (fa *frameAllocator) freeFrames() int { return len(fa.free) }
