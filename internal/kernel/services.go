package kernel

import (
	"fmt"

	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
	"tapeworm/internal/textwalk"
)

// ServiceID names a kernel service a task can invoke with EvSyscall.
type ServiceID int

const (
	// SvcNull is the minimal trap-and-return syscall (getpid-style).
	SvcNull ServiceID = iota
	// SvcRead is a file read handled in the kernel's fast path.
	SvcRead
	// SvcWrite is a file write handled in the kernel's fast path.
	SvcWrite
	// SvcVM covers memory-management calls (brk, mmap).
	SvcVM
	// SvcProcess covers process-control calls (wait, signal).
	SvcProcess
	// SvcBSDFile is a file operation served by the user-level BSD server
	// (open/close/stat in Mach 3.0 are RPCs to the UNIX server).
	SvcBSDFile
	// SvcBSDProc is process bookkeeping served by the BSD server.
	SvcBSDProc
	// SvcBSDExec is program exec handled by the BSD server (heavy).
	SvcBSDExec
	// SvcXRender is a drawing request served by the X display server.
	SvcXRender
	// SvcXEvent is input/event handling in the X display server.
	SvcXEvent

	numServices
)

// String names the service.
func (s ServiceID) String() string {
	names := [...]string{"null", "read", "write", "vm", "process",
		"bsd-file", "bsd-proc", "bsd-exec", "x-render", "x-event"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("ServiceID(%d)", int(s))
}

// ServerKind identifies which server task, if any, backs a service.
type ServerKind int

const (
	// NoServer means the service completes in the kernel.
	NoServer ServerKind = iota
	// BSDServer is the user-level BSD UNIX single-server.
	BSDServer
	// XServer is the X11 display server.
	XServer
)

// String names the server kind.
func (s ServerKind) String() string {
	switch s {
	case BSDServer:
		return "BSD server"
	case XServer:
		return "X server"
	}
	return "kernel"
}

// svcDesc describes one service: its kernel text region, path length, the
// fraction of the path run with interrupts masked (critical sections), and
// the backing server with its handler path length.
type svcDesc struct {
	id         ServiceID
	textBytes  uint32
	pathLen    int     // kernel instructions per invocation
	maskedFrac float64 // fraction of pathLen with interrupts masked
	server     ServerKind
	serverLen  int // server instructions per invocation
}

// serviceTable defines the kernel's services. Text sizes and path lengths
// are chosen so that OS-intensive workloads reproduce the paper's Table 6
// shape: kernel and server components dominate I-cache misses for all but
// the SPEC-style single-task programs.
var serviceTable = [numServices]svcDesc{
	SvcNull:    {SvcNull, 1 << 10, 80, 0.10, NoServer, 0},
	SvcRead:    {SvcRead, 12 << 10, 700, 0.08, NoServer, 0},
	SvcWrite:   {SvcWrite, 12 << 10, 650, 0.08, NoServer, 0},
	SvcVM:      {SvcVM, 16 << 10, 900, 0.15, NoServer, 0},
	SvcProcess: {SvcProcess, 10 << 10, 500, 0.12, NoServer, 0},
	SvcBSDFile: {SvcBSDFile, 6 << 10, 450, 0.05, BSDServer, 1500},
	SvcBSDProc: {SvcBSDProc, 6 << 10, 400, 0.05, BSDServer, 1200},
	SvcBSDExec: {SvcBSDExec, 8 << 10, 900, 0.05, BSDServer, 4500},
	SvcXRender: {SvcXRender, 5 << 10, 350, 0.03, XServer, 2200},
	SvcXEvent:  {SvcXEvent, 5 << 10, 300, 0.03, XServer, 900},
}

// Services returns the IDs of all defined services.
func Services() []ServiceID {
	out := make([]ServiceID, numServices)
	for i := range out {
		out[i] = ServiceID(i)
	}
	return out
}

// ServerOf returns which server backs the service.
func ServerOf(s ServiceID) ServerKind { return serviceTable[s].server }

// FixedTaskCosts returns the kernel instructions consumed per task fork,
// per task exit, and per VM page fault. Workload generators subtract these
// fixed costs when solving syscall rates against the Table 4 fractions —
// at reduced scales the per-task costs do not shrink with the instruction
// budget and would otherwise swamp the kernel share.
func FixedTaskCosts() (fork, exit, fault int) {
	return kForkLen, kExitTaskLen, kFaultLen
}

// ServiceCosts returns the kernel-mode instructions (entry, service path,
// IPC if server-backed, exit) and server-task instructions consumed by one
// invocation of the service. Workload generators use these to solve for
// syscall rates that hit the paper's Table 4 time distributions.
func ServiceCosts(s ServiceID) (kernelInstr, serverInstr int) {
	d := serviceTable[s]
	kc := kEntryLen + kExitLen + d.pathLen
	if d.server != NoServer {
		kc += 2 * kIPCLen
	}
	return kc, d.serverLen
}

// Fixed kernel path lengths (instructions).
const (
	kEntryLen     = 60  // trap entry bookkeeping
	kExitLen      = 40  // trap exit
	kIPCLen       = 130 // message send/receive path, each direction
	kIntrLen      = 140 // clock interrupt handler
	kSoftclockLen = 700 // deferred softclock work, every other tick
	kSwitchLen    = 160 // context switch
	kFaultLen     = 240 // VM page-fault service path
	kPageOutLen   = 300 // page-out path when memory is exhausted
	kForkLen      = 650 // task fork path
	kExitTaskLen  = 420 // task teardown path
)

// kernelLayout computes the kseg0 text offsets of the kernel's code
// regions. The kernel occupies the reserved low frames of physical memory;
// region addresses are KernelBase + offset.
type kernelLayout struct {
	entry    textwalk.Region
	clock    textwalk.Region
	sched    textwalk.Region
	vmFault  textwalk.Region
	fork     textwalk.Region
	helpers  []textwalk.Region
	services [numServices]textwalk.Region
	data     textwalk.Region // kernel data (loads/stores)
	textEnd  mem.VAddr       // first address past kernel text
}

func newKernelLayout() *kernelLayout {
	l := &kernelLayout{}
	off := mem.VAddr(0)
	place := func(size uint32) textwalk.Region {
		r := textwalk.Region{Base: mach.KernelBase + off, Size: size}
		off += mem.VAddr(size)
		return r
	}
	l.entry = place(2 << 10)
	l.clock = place(1 << 10)
	l.sched = place(2 << 10)
	l.vmFault = place(4 << 10)
	l.fork = place(4 << 10)
	// Two shared helper regions: string/memory utilities and lock/queue
	// utilities, called from all service paths.
	l.helpers = []textwalk.Region{place(6 << 10), place(4 << 10)}
	for i := range serviceTable {
		l.services[i] = place(serviceTable[i].textBytes)
	}
	// Kernel data region: 64 KB following text.
	l.data = place(64 << 10)
	l.textEnd = mach.KernelBase + off
	return l
}

// kernelFrames returns how many physical frames the layout occupies.
func (l *kernelLayout) kernelFrames(pageSize int) int {
	bytes := int(l.textEnd - mach.KernelBase)
	return (bytes + pageSize - 1) / pageSize
}

// dataGen produces data references with a hot/cold split over a region:
// most references go to a small hot prefix (locks, stats, current frames),
// the rest stream over the whole region.
type dataGen struct {
	r       *rng.Source
	region  textwalk.Region
	hotSize uint32
	storeP  float64
}

// grow widens the hot region, modelling long-running memory
// fragmentation: live data structures spread over ever more pages, so the
// page working set — and with it the TLB miss rate — creeps upward
// (Section 4.2, "gradual (but substantial) increases in TLB misses due to
// kernel and server memory fragmentation in a long-running system").
func (d *dataGen) grow(bytes uint32) {
	d.hotSize += bytes
	if d.hotSize > d.region.Size {
		d.hotSize = d.region.Size
	}
}

func newDataGen(r *rng.Source, region textwalk.Region, hotSize uint32, storeP float64) *dataGen {
	if hotSize > region.Size {
		hotSize = region.Size
	}
	return &dataGen{r: r, region: region, hotSize: hotSize, storeP: storeP}
}

func (d *dataGen) next() mem.Ref {
	var off uint32
	if d.r.Bool(0.95) {
		off = uint32(d.r.Intn(int(d.hotSize))) &^ 3
	} else {
		off = uint32(d.r.Intn(int(d.region.Size))) &^ 3
	}
	kind := mem.Load
	if d.r.Bool(d.storeP) {
		kind = mem.Store
	}
	return mem.Ref{VA: d.region.Base + mem.VAddr(off), Kind: kind}
}

// server models a user-level server task (BSD UNIX server or X display
// server). Servers exist before the workload starts (they are "system
// components" in the paper's terminology) and serve requests synchronously.
type server struct {
	kind ServerKind
	task *Task
	// One walker per service keeps per-service code locality; all share
	// the server's helper region.
	walkers map[ServiceID]*textwalk.Walker
	data    *dataGen
	dataP   float64 // data refs per instruction
}

func newServer(kind ServerKind, task *Task, r *rng.Source) *server {
	// Server text footprints: the X server is large (~560 KB), the BSD
	// server moderate (~380 KB). Handlers occupy disjoint slices of the
	// text so that distinct request types touch distinct code.
	var textSize uint32
	switch kind {
	case XServer:
		textSize = 192 << 10
	case BSDServer:
		textSize = 144 << 10
	default:
		panic("kernel: newServer of NoServer")
	}
	helpers := []textwalk.Region{
		{Base: TextBase + mem.VAddr(textSize), Size: 24 << 10},
	}
	s := &server{
		kind:    kind,
		task:    task,
		walkers: make(map[ServiceID]*textwalk.Walker),
		dataP:   0.30,
	}
	params := textwalk.DefaultParams()
	params.CallProb = 0.06
	// Slice the text among this server's services.
	var svcs []ServiceID
	for _, d := range serviceTable {
		if d.server == kind {
			svcs = append(svcs, d.id)
		}
	}
	slice := textSize / uint32(len(svcs))
	for i, id := range svcs {
		region := textwalk.Region{
			Base: TextBase + mem.VAddr(uint32(i)*slice),
			Size: slice &^ 3,
		}
		s.walkers[id] = textwalk.MustNew(
			r.Split(fmt.Sprintf("server-%d-%d", kind, id)), region, params, helpers)
	}
	dataRegion := textwalk.Region{Base: DataBase, Size: 256 << 10}
	s.data = newDataGen(r.Split(fmt.Sprintf("server-%d-data", kind)),
		dataRegion, 32<<10, 0.3)
	return s
}
