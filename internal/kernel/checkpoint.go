package kernel

// Checkpointed boot images. Boot is the dominant fixed cost left per
// trial: the Fisher-Yates shuffle over every allocatable frame plus a few
// dozen walker constructions. A Checkpoint freezes the post-boot kernel —
// serialized task tree, frame-allocator tables, the random-stream and
// walker positions, and a copy-on-write image of physical memory — and
// Fork rebuilds a ready-to-run kernel from it without rebooting: the
// shuffled free list is copied, the dense trap tables are shared with the
// image until first write (mem/image.go), and every random stream resumes
// at its captured position, so a forked kernel is byte-for-byte
// indistinguishable from a fresh boot of the same configuration.
//
// Capture requires a quiesced kernel (nothing executed, no workload
// spawned): the checkpoint identity is then a pure function of
// (seed, pageSeed, machine geometry, server set), which is what lets the
// experiment layer share one image across every trial and gang member
// with that identity. CaptureAt (midrun.go) extends the same image with
// a run state — scheduler, clock, page tables, compiled-program cursors —
// so interval replay can fork a kernel back to an interval boundary;
// within a fork, core.Window still owns warm-up/measure selection.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
	"tapeworm/internal/textwalk"
)

// ErrCheckpointMismatch is wrapped by every Fork/LoadCheckpoint rejection
// of a checkpoint whose identity does not match the requested
// configuration (different seed, frame count, server set, ...).
var ErrCheckpointMismatch = errors.New("kernel: checkpoint does not match configuration")

// ErrCheckpointCorrupt is wrapped by ReadCheckpoint when a checkpoint
// file cannot be decoded at all — truncation, garbage, a torn write. It
// is distinct from ErrCheckpointMismatch, which covers files that decode
// but describe a different identity.
var ErrCheckpointCorrupt = errors.New("kernel: checkpoint file corrupt")

// taskRecord serializes one entry of the boot-time task tree.
type taskRecord struct {
	Name     string
	Server   bool
	Simulate bool
	Inherit  bool
}

// serverState serializes one server's mutable state: per-service walker
// positions and the data generator's stream and hot-region size.
type serverState struct {
	Walkers map[ServiceID]textwalk.State
	Data    rng.State
	DataHot uint32
}

// Checkpoint is an immutable post-boot kernel image. Any number of Forks
// may share it concurrently; it is never written after Capture.
type Checkpoint struct {
	mark string

	// Identity: the configuration facets that determine boot state. Fork
	// validates its Config against these; runtime-only knobs (telemetry,
	// fast path, host cache geometry, quantum, data-reference rates) may
	// differ between capture and fork.
	seed           uint64
	pageSeed       uint64
	frames         int
	pageSize       int
	tapewormFrames int
	withXServer    bool
	withBSDServer  bool

	img *mem.Image

	// Frame allocator tables, post-shuffle: Fork copies these instead of
	// re-running Fisher-Yates over every allocatable frame.
	free     []uint32
	refcount []uint16

	rngKernel rng.State
	rngIntr   rng.State
	rngVM     rng.State
	walkers   map[string]textwalk.State
	kdataRNG  rng.State
	kdataHot  uint32

	tasks   []taskRecord
	servers map[ServerKind]serverState

	// run is the mid-run state captured by CaptureAt (midrun.go); nil for
	// post-boot checkpoints.
	run *runState

	// Walker-shape template, built once per checkpoint and shared by all
	// forks (see template). Not serialized; a decoded checkpoint rebuilds
	// it from the boot recipe on first Fork.
	tmplOnce sync.Once
	tmpl     *ckTemplate
}

// ckTemplate caches the immutable shapes every fork of a checkpoint
// shares: the kernel layout and one fully-constructed walker per label,
// from which Fork stamps out clones (textwalk.CloneWithState) instead of
// re-running construction — the walker builds and label-hash rng splits
// are the second-largest boot-only cost after the frame shuffle. Template
// walkers are never stepped; only their immutable shape is read.
type ckTemplate struct {
	layout  *kernelLayout
	kernelW map[string]*textwalk.Walker
	servers map[ServerKind]*server // template walkers + data-generator shape; task is nil
}

// template returns the checkpoint's shared shape template, building it on
// first use. Capture pre-seeds it from the source kernel (sharing its
// immutable regions); a checkpoint decoded from disk rebuilds it from the
// boot recipe, which is a pure function of the checkpoint identity.
func (cp *Checkpoint) template() *ckTemplate {
	cp.tmplOnce.Do(func() {
		tm := &ckTemplate{
			layout:  newKernelLayout(),
			kernelW: make(map[string]*textwalk.Walker),
			servers: make(map[ServerKind]*server),
		}
		params := textwalk.DefaultParams()
		params.CallProb = 0.05
		r := rng.New(cp.seed)
		mk := func(region textwalk.Region, label string) {
			tm.kernelW[label] = textwalk.MustNew(r, region, params, tm.layout.helpers)
		}
		mk(tm.layout.entry, "entry")
		mk(tm.layout.clock, "clock")
		mk(tm.layout.sched, "sched")
		mk(tm.layout.vmFault, "vm")
		mk(tm.layout.fork, "fork")
		mk(tm.layout.vmFault, "softvm")
		mk(tm.layout.sched, "softsched")
		for i := range serviceTable {
			mk(tm.layout.services[i], svcWalkerLabels[i])
		}
		if cp.withBSDServer {
			tm.servers[BSDServer] = newServer(BSDServer, nil, r)
		}
		if cp.withXServer {
			tm.servers[XServer] = newServer(XServer, nil, r)
		}
		cp.tmpl = tm
	})
	return cp.tmpl
}

// Mark returns the checkpoint's name ("post-boot" for Capture after Boot).
func (cp *Checkpoint) Mark() string { return cp.mark }

// Frames returns the physical frame count the checkpoint was captured at.
func (cp *Checkpoint) Frames() int { return cp.frames }

// Seeds returns the (seed, pageSeed) identity of the checkpoint.
func (cp *Checkpoint) Seeds() (seed, pageSeed uint64) { return cp.seed, cp.pageSeed }

// svcWalkerLabels holds the per-service walker labels, formatted once per
// process instead of once per fork.
var svcWalkerLabels = func() [numServices]string {
	var out [numServices]string
	for i := range out {
		out[i] = fmt.Sprintf("svc-%d", i)
	}
	return out
}()

// allWalkerLabels lists the kernel's walkers in Boot's construction
// order, computed once per process. Capture and Fork iterate the same
// list, so the label set is self-consistent by construction.
var allWalkerLabels = func() []string {
	labels := []string{"entry", "clock", "sched", "vm", "fork", "softvm", "softsched"}
	return append(labels, svcWalkerLabels[:]...)
}()

// kernelWalkerLabels returns the shared label list; callers only range
// over it.
func kernelWalkerLabels() []string { return allWalkerLabels }

// kernelWalkerByLabel maps a label to the kernel's walker, mirroring the
// assignments in Boot.
func (k *Kernel) kernelWalkerByLabel(label string) *textwalk.Walker {
	switch label {
	case "entry":
		return k.entryW
	case "clock":
		return k.clockW
	case "sched":
		return k.schedW
	case "vm":
		return k.vmW
	case "fork":
		return k.forkW
	case "softvm":
		return k.softVmW
	case "softsched":
		return k.softSchedW
	}
	var i int
	if _, err := fmt.Sscanf(label, "svc-%d", &i); err == nil && i >= 0 && i < int(numServices) {
		return k.svcW[i]
	}
	return nil
}

// Capture snapshots a quiesced kernel into a Checkpoint named mark. The
// kernel must not have executed anything or spawned workload tasks —
// Capture is for post-boot images; mid-run measurement windows are
// core.Window's job. The kernel remains fully usable afterwards and
// shares nothing with the returned checkpoint.
func Capture(k *Kernel, mark string) (*Checkpoint, error) {
	if k.m.Cycles() != 0 || k.m.Instructions() != 0 || k.userSpawned != 0 || len(k.runq) != 0 {
		return nil, fmt.Errorf("kernel: Capture(%q) of a non-quiesced kernel (%d cycles, %d instructions, %d user tasks)",
			mark, k.m.Cycles(), k.m.Instructions(), k.userSpawned)
	}
	return captureState(k, mark)
}

// captureState snapshots the boot-derived state shared by post-boot
// (Capture) and mid-run (CaptureAt) checkpoints: identity, memory image,
// frame allocator, rng streams, walker positions, task records, servers.
func captureState(k *Kernel, mark string) (*Checkpoint, error) {
	cp := &Checkpoint{
		mark:           mark,
		seed:           k.cfg.Seed,
		pageSeed:       k.cfg.PageSeed,
		frames:         k.cfg.Machine.Frames,
		pageSize:       k.cfg.Machine.PageSize,
		tapewormFrames: k.cfg.TapewormFrames,
		withXServer:    k.cfg.WithXServer,
		withBSDServer:  k.cfg.WithBSDServer,
		img:            k.m.CaptureImage(),
		free:           append([]uint32(nil), k.fa.free...),
		refcount:       append([]uint16(nil), k.fa.refcount...),
		rngKernel:      k.rngKernel.State(),
		rngIntr:        k.rngIntr.State(),
		rngVM:          k.rngVM.State(),
		walkers:        make(map[string]textwalk.State),
		kdataRNG:       k.kdata.r.State(),
		kdataHot:       k.kdata.hotSize,
		servers:        make(map[ServerKind]serverState),
	}
	for _, label := range kernelWalkerLabels() {
		cp.walkers[label] = k.kernelWalkerByLabel(label).State()
	}
	for _, t := range k.tasks {
		cp.tasks = append(cp.tasks, taskRecord{
			Name: t.Name, Server: t.Server, Simulate: t.Simulate, Inherit: t.Inherit,
		})
	}
	for _, kind := range []ServerKind{BSDServer, XServer} {
		s := k.servers[kind]
		if s == nil {
			continue
		}
		ss := serverState{
			Walkers: make(map[ServiceID]textwalk.State, len(s.walkers)),
			Data:    s.data.r.State(),
			DataHot: s.data.hotSize,
		}
		for id, w := range s.walkers {
			ss.Walkers[id] = w.State()
		}
		cp.servers[kind] = ss
	}
	return cp, nil
}

// validateFork checks cfg against the checkpoint's identity, wrapping
// ErrCheckpointMismatch so callers (and Options.Validate paths) can
// classify the failure.
func (cp *Checkpoint) validateFork(cfg Config) error {
	mismatch := func(what string, got, want any) error {
		return fmt.Errorf("%w: %s %v, checkpoint %q captured with %v",
			ErrCheckpointMismatch, what, got, cp.mark, want)
	}
	if cfg.Machine.Frames != cp.frames {
		return mismatch("frame count", cfg.Machine.Frames, cp.frames)
	}
	if cfg.Machine.PageSize != cp.pageSize {
		return mismatch("page size", cfg.Machine.PageSize, cp.pageSize)
	}
	if cfg.Seed != cp.seed {
		return mismatch("seed", cfg.Seed, cp.seed)
	}
	if cfg.PageSeed != cp.pageSeed {
		return mismatch("page seed", cfg.PageSeed, cp.pageSeed)
	}
	if cfg.TapewormFrames != cp.tapewormFrames {
		return mismatch("Tapeworm reserved frames", cfg.TapewormFrames, cp.tapewormFrames)
	}
	if cfg.WithXServer != cp.withXServer {
		return mismatch("X server", cfg.WithXServer, cp.withXServer)
	}
	if cfg.WithBSDServer != cp.withBSDServer {
		return mismatch("BSD server", cfg.WithBSDServer, cp.withBSDServer)
	}
	return nil
}

// ValidateConfig reports whether cfg could fork from this checkpoint,
// wrapping ErrCheckpointMismatch on any identity difference. Fork runs
// the same check; this is for callers that load checkpoints from disk
// and want to reject a stale or foreign file up front.
func (cp *Checkpoint) ValidateConfig(cfg Config) error { return cp.validateFork(cfg) }

// Fork builds a ready-to-run kernel from a checkpoint without rebooting.
// cfg must agree with the checkpoint on everything that shapes boot state
// (seeds, geometry, server set — see validateFork); runtime-only options
// such as Telemetry and Machine.NoFastPath are taken from cfg and may
// differ from the captured boot. The forked kernel shares the
// checkpoint's physical-memory image copy-on-write and owns pooled
// buffers until ReleaseCheckpoint (or ReleaseBuffers).
func Fork(cp *Checkpoint, cfg Config) (*Kernel, error) {
	if err := cp.validateFork(cfg); err != nil {
		return nil, err
	}
	k := &Kernel{cfg: cfg, servers: make(map[ServerKind]*server)}
	var err error
	k.m, err = mach.NewFromImage(cfg.Machine, k, cp.img)
	if err != nil {
		return nil, err
	}
	k.m.SetTelemetry(cfg.Telemetry)
	tm := cp.template()
	// The layout is immutable after construction, so forks share the
	// template's instead of recomputing the region placement.
	k.layout = tm.layout
	k.fa = restoreFrameAllocator(cfg.Machine.Frames, cp.free, cp.refcount)

	k.rngKernel = rng.FromState(cp.rngKernel)
	k.rngIntr = rng.FromState(cp.rngIntr)
	k.rngVM = rng.FromState(cp.rngVM)
	for _, label := range kernelWalkerLabels() {
		if _, ok := cp.walkers[label]; !ok {
			return nil, fmt.Errorf("%w: missing kernel walker state %q", ErrCheckpointMismatch, label)
		}
	}
	// Walkers are clones of the template's shapes with their stream and
	// position restored from the checkpoint.
	mk := func(label string) *textwalk.Walker {
		return tm.kernelW[label].CloneWithState(cp.walkers[label])
	}
	k.entryW = mk("entry")
	k.clockW = mk("clock")
	k.schedW = mk("sched")
	k.vmW = mk("vm")
	k.forkW = mk("fork")
	k.softVmW = mk("softvm")
	k.softSchedW = mk("softsched")
	for i := range serviceTable {
		k.svcW[i] = mk(svcWalkerLabels[i])
	}
	k.kdata = newDataGen(rng.FromState(cp.kdataRNG), k.layout.data, cp.kdataHot, 0.35)

	// Rebuild the task tree from the serialized records; IDs are
	// positional, exactly as Boot and newTask assign them.
	for i, rec := range cp.tasks {
		t := &Task{
			ID:       mem.TaskID(i),
			Name:     rec.Name,
			Server:   rec.Server,
			Simulate: rec.Simulate,
			Inherit:  rec.Inherit,
			space:    newAddrSpace(cfg.Machine.PageSize),
		}
		k.tasks = append(k.tasks, t)
	}
	for _, kind := range []ServerKind{BSDServer, XServer} {
		ss, ok := cp.servers[kind]
		if !ok {
			continue
		}
		var task *Task
		name := "bsd-server"
		if kind == XServer {
			name = "x-server"
		}
		for _, t := range k.tasks {
			if t.Server && t.Name == name {
				task = t
				break
			}
		}
		if task == nil {
			return nil, fmt.Errorf("%w: server %q has state but no task record", ErrCheckpointMismatch, name)
		}
		// Same cloning trick as the kernel walkers: the template server
		// carries the immutable regions, the checkpoint every stream.
		ts := tm.servers[kind]
		if ts == nil {
			return nil, fmt.Errorf("%w: server %d has state but no template", ErrCheckpointMismatch, kind)
		}
		s := &server{
			kind:    kind,
			task:    task,
			walkers: make(map[ServiceID]*textwalk.Walker, len(ts.walkers)),
			data:    newDataGen(rng.FromState(ss.Data), ts.data.region, ss.DataHot, ts.data.storeP),
			dataP:   ts.dataP,
		}
		// Clone order cannot matter: each clone depends only on its own
		// template walker and checkpointed state.
		for id, w := range ts.walkers {
			st, ok := ss.Walkers[id]
			if !ok {
				return nil, fmt.Errorf("%w: missing walker state for server %d service %d", ErrCheckpointMismatch, kind, id)
			}
			s.walkers[id] = w.CloneWithState(st)
		}
		k.servers[kind] = s
	}
	return k, nil
}

// ReleaseCheckpoint recycles a forked kernel's pooled buffers: the frame
// tables and whatever the copy-on-write Phys materialized. It is the
// fork-side counterpart of ReleaseBuffers (and delegates to it — the
// Phys knows which arrays it owns and which still belong to the image).
func (k *Kernel) ReleaseCheckpoint() { k.ReleaseBuffers() }

// PoolCounts reports the pooled-buffer requests made on behalf of this
// kernel's boot or fork (physical-memory arrays, host cache tag stores,
// gang trap refcounts, frame tables, copy-on-write materialization) and
// how many were served by reuse. Read before ReleaseBuffers; unlike the
// process-global mem.PoolStats, the attribution is exact at any
// parallelism.
func (k *Kernel) PoolCounts() (gets, reuses uint64) {
	gets, reuses = k.m.PoolCounts()
	if k.fa != nil {
		gets += k.fa.poolGets
		reuses += k.fa.poolReuses
	}
	return gets, reuses
}

// --- Persistence (-checkpoint-dir) ---

// checkpointWire is the gob representation of a Checkpoint. Maps are
// flattened to sorted slices so the encoded bytes are deterministic.
type checkpointWire struct {
	Version int
	Mark    string

	Seed           uint64
	PageSeed       uint64
	Frames         int
	PageSize       int
	TapewormFrames int
	WithXServer    bool
	WithBSDServer  bool

	Img      *mem.Image
	Free     []uint32
	Refcount []uint16

	RNGKernel rng.State
	RNGIntr   rng.State
	RNGVM     rng.State

	WalkerLabels []string
	WalkerStates []textwalk.State

	KdataRNG rng.State
	KdataHot uint32

	Tasks []taskRecord

	ServerKinds  []ServerKind
	ServerStates []serverWire

	// Run carries mid-run state for CaptureAt checkpoints; nil for
	// post-boot images. Gob omits nil pointers, so version 1 files
	// written before the field existed still decode (to a nil Run) and
	// old readers skip the field they don't know.
	Run *runState
}

type serverWire struct {
	Services []ServiceID
	Walkers  []textwalk.State
	Data     rng.State
	DataHot  uint32
}

// checkpointWireVersion guards the on-disk format; bump on any layout
// change so stale -checkpoint-dir files fail loudly instead of decoding
// into garbage.
const checkpointWireVersion = 1

// Encode writes the checkpoint to f with gob.
func (cp *Checkpoint) Encode(f io.Writer) error {
	w := checkpointWire{
		Version:        checkpointWireVersion,
		Mark:           cp.mark,
		Seed:           cp.seed,
		PageSeed:       cp.pageSeed,
		Frames:         cp.frames,
		PageSize:       cp.pageSize,
		TapewormFrames: cp.tapewormFrames,
		WithXServer:    cp.withXServer,
		WithBSDServer:  cp.withBSDServer,
		Img:            cp.img,
		Free:           cp.free,
		Refcount:       cp.refcount,
		RNGKernel:      cp.rngKernel,
		RNGIntr:        cp.rngIntr,
		RNGVM:          cp.rngVM,
		KdataRNG:       cp.kdataRNG,
		KdataHot:       cp.kdataHot,
		Tasks:          cp.tasks,
		Run:            cp.run,
	}
	for _, label := range sortedKeys(cp.walkers) {
		w.WalkerLabels = append(w.WalkerLabels, label)
		w.WalkerStates = append(w.WalkerStates, cp.walkers[label])
	}
	for _, kind := range []ServerKind{BSDServer, XServer} {
		ss, ok := cp.servers[kind]
		if !ok {
			continue
		}
		sw := serverWire{Data: ss.Data, DataHot: ss.DataHot}
		ids := make([]int, 0, len(ss.Walkers))
		for id := range ss.Walkers {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			sw.Services = append(sw.Services, ServiceID(id))
			sw.Walkers = append(sw.Walkers, ss.Walkers[ServiceID(id)])
		}
		w.ServerKinds = append(w.ServerKinds, kind)
		w.ServerStates = append(w.ServerStates, sw)
	}
	return gob.NewEncoder(f).Encode(w)
}

// ReadCheckpoint decodes a checkpoint written by Encode.
func ReadCheckpoint(f io.Reader) (*Checkpoint, error) {
	var w checkpointWire
	if err := gob.NewDecoder(f).Decode(&w); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrCheckpointCorrupt, err)
	}
	if w.Version != checkpointWireVersion {
		return nil, fmt.Errorf("%w: checkpoint file version %d, want %d",
			ErrCheckpointMismatch, w.Version, checkpointWireVersion)
	}
	if w.Img == nil {
		return nil, fmt.Errorf("%w: checkpoint file has no memory image", ErrCheckpointMismatch)
	}
	if w.Img.Frames() != w.Frames || w.Img.PageSize() != w.PageSize {
		return nil, fmt.Errorf("%w: image geometry %d×%d does not match header %d×%d",
			ErrCheckpointMismatch, w.Img.Frames(), w.Img.PageSize(), w.Frames, w.PageSize)
	}
	if len(w.WalkerLabels) != len(w.WalkerStates) || len(w.ServerKinds) != len(w.ServerStates) {
		return nil, fmt.Errorf("%w: inconsistent walker/server tables", ErrCheckpointMismatch)
	}
	cp := &Checkpoint{
		mark:           w.Mark,
		seed:           w.Seed,
		pageSeed:       w.PageSeed,
		frames:         w.Frames,
		pageSize:       w.PageSize,
		tapewormFrames: w.TapewormFrames,
		withXServer:    w.WithXServer,
		withBSDServer:  w.WithBSDServer,
		img:            w.Img,
		free:           w.Free,
		refcount:       w.Refcount,
		rngKernel:      w.RNGKernel,
		rngIntr:        w.RNGIntr,
		rngVM:          w.RNGVM,
		walkers:        make(map[string]textwalk.State, len(w.WalkerLabels)),
		kdataRNG:       w.KdataRNG,
		kdataHot:       w.KdataHot,
		tasks:          w.Tasks,
		servers:        make(map[ServerKind]serverState, len(w.ServerKinds)),
		run:            w.Run,
	}
	for i, label := range w.WalkerLabels {
		cp.walkers[label] = w.WalkerStates[i]
	}
	for i, kind := range w.ServerKinds {
		sw := w.ServerStates[i]
		if len(sw.Services) != len(sw.Walkers) {
			return nil, fmt.Errorf("%w: inconsistent service walker table for server %d", ErrCheckpointMismatch, kind)
		}
		ss := serverState{
			Walkers: make(map[ServiceID]textwalk.State, len(sw.Services)),
			Data:    sw.Data,
			DataHot: sw.DataHot,
		}
		for j, id := range sw.Services {
			ss.Walkers[id] = sw.Walkers[j]
		}
		cp.servers[kind] = ss
	}
	return cp, nil
}

// sortedKeys returns m's keys in sorted order, for deterministic encoding.
func sortedKeys(m map[string]textwalk.State) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
