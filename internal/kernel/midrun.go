package kernel

// Mid-run checkpoints. PR 7's Capture freezes a quiesced post-boot
// kernel; interval-replay simulation needs to freeze a kernel *mid-run*,
// at an interval boundary, so a representative interval can later be
// simulated on a fork without re-executing everything before it.
//
// A mid-run capture extends the boot image with a run state: the
// machine's architectural clock (mach.ClockState), the scheduler (run
// queue, current slot, pending reschedule, tick count), every live
// task's demand-faulted page table and its position in the compiled op
// stream (ProgramCursor), the resident-page FIFO, and the kernel's
// accounting counters. Everything else a checkpoint carries — rng
// streams, walker positions, server state, the frame allocator, the
// memory image — is captured by the same code as the post-boot path.
//
// Host cache, TLB and translation-memo contents are deliberately *not*
// captured: a fork resumes with cold host state, exactly like a context
// switch plus cache flush on real hardware. The divergence this causes
// against the original run is deterministic per checkpoint and is
// absorbed by the measurement warm-up that interval replay always
// schedules in front of its windows.
//
// Capture points are kernel main-loop boundaries only: no trap handler
// on the stack, interrupts unmasked, every compiled cursor on an op
// boundary. CaptureAt verifies all three and fails loudly otherwise.

import (
	"fmt"

	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

// ProgramCursor names a resumable position inside a compiled program's
// fork tree: the chain of fork-op args leading from the root image to
// this task's stream, plus the op index within it. It is meaningful only
// together with the (spec, seed) identity that compiled the stream —
// the kernel records cursors opaquely and hands them back to a
// ProgramResume callback at fork time.
type ProgramCursor struct {
	Path []int32
	Pos  int
}

// CursorProgram is implemented by programs whose position can be
// captured as a ProgramCursor and rebuilt later (workload.Compiled).
// Programs without it — the interpreter, trace replays — cannot be
// mid-run checkpointed.
type CursorProgram interface {
	CompiledProgram
	Cursor() (ProgramCursor, bool)
}

// ProgramResume rebuilds the program for one task from its captured
// cursor. ForkRun calls it for every live workload task; the experiment
// layer closes it over the (spec, seed) that compiled the stream.
type ProgramResume func(cur ProgramCursor) (Program, error)

// taskRunState is one task's mid-run state beyond the boot-time
// taskRecord, aligned positionally with Checkpoint.tasks.
type taskRunState struct {
	Parent       mem.TaskID
	State        TaskState
	Instructions uint64

	// The task's page table as parallel (vpn, pte) slices in ascending
	// vpn order, plus the mapped-page count.
	PageVPNs []uint32
	PagePTEs []uint32
	Mapped   int

	HasCursor bool
	Cursor    ProgramCursor
}

// runState is the mid-run half of a checkpoint. All fields are exported
// for gob; the struct is immutable once captured.
type runState struct {
	Clock mach.ClockState

	Ticks   uint64
	Resched bool
	Cur     int
	RunqIDs []mem.TaskID

	ResidentTIDs []mem.TaskID
	ResidentVPNs []uint32

	CompInstr   [NumComponents]uint64
	TrueECCErrs uint64
	PageOuts    uint64
	Forks       uint64
	Exits       uint64
	UserSpawned int
	UserExited  int

	Tasks []taskRunState
}

// HasRunState reports whether the checkpoint was captured mid-run
// (CaptureAt) rather than post-boot (Capture). Mid-run checkpoints fork
// only through ForkRun.
func (cp *Checkpoint) HasRunState() bool { return cp.run != nil }

// UserInstructions returns the user-instruction count at capture time
// for a mid-run checkpoint (zero for post-boot checkpoints).
func (cp *Checkpoint) UserInstructions() uint64 {
	if cp.run == nil {
		return 0
	}
	return cp.run.CompInstr[CompUser]
}

// CaptureAt snapshots a running kernel at a main-loop boundary into a
// mid-run checkpoint named mark. The kernel must be between scheduling
// decisions — not inside a trap handler, interrupts unmasked — which is
// where Run, RunUntilUser and RunUntilInstr always stop. Every live
// workload task's program must be a CursorProgram positioned on an op
// boundary (compiled replays always are at main-loop boundaries); the
// interpreter fallback is not capturable. The kernel keeps running
// afterwards and shares nothing mutable with the checkpoint.
func CaptureAt(k *Kernel, mark string) (*Checkpoint, error) {
	if k.inClock || k.m.InHandler() || k.m.IntMasked() {
		return nil, fmt.Errorf("kernel: CaptureAt(%q) off a main-loop boundary (inClock %v, handler %v, masked %v)",
			mark, k.inClock, k.m.InHandler(), k.m.IntMasked())
	}
	cp, err := captureState(k, mark)
	if err != nil {
		return nil, err
	}
	rs := &runState{
		Clock:       k.m.ClockState(),
		Ticks:       k.ticks,
		Resched:     k.resched,
		Cur:         k.cur,
		CompInstr:   k.compInstr,
		TrueECCErrs: k.trueECCErrs,
		PageOuts:    k.pageOuts,
		Forks:       k.forks,
		Exits:       k.exits,
		UserSpawned: k.userSpawned,
		UserExited:  k.userExited,
	}
	for _, t := range k.runq {
		rs.RunqIDs = append(rs.RunqIDs, t.ID)
	}
	for i := k.resident.head; i < len(k.resident.entries); i++ {
		e := k.resident.entries[i]
		rs.ResidentTIDs = append(rs.ResidentTIDs, e.tid)
		rs.ResidentVPNs = append(rs.ResidentVPNs, e.vpn)
	}
	for _, t := range k.tasks {
		ts := taskRunState{
			Parent:       t.Parent,
			State:        t.State,
			Instructions: t.Instructions,
			Mapped:       t.space.mapped,
		}
		t.space.pages(func(vpn uint32, p pte) {
			ts.PageVPNs = append(ts.PageVPNs, vpn)
			ts.PagePTEs = append(ts.PagePTEs, uint32(p))
		})
		if t.prog != nil && t.State != Exited {
			cur, ok := t.prog.(CursorProgram)
			if !ok {
				return nil, fmt.Errorf("kernel: CaptureAt(%q): task %d (%s) runs a %T, which has no resumable cursor",
					mark, t.ID, t.Name, t.prog)
			}
			c, aligned := cur.Cursor()
			if !aligned {
				return nil, fmt.Errorf("kernel: CaptureAt(%q): task %d (%s) is mid-op; capture only at main-loop boundaries",
					mark, t.ID, t.Name)
			}
			ts.HasCursor = true
			ts.Cursor = c
		}
		rs.Tasks = append(rs.Tasks, ts)
	}
	cp.run = rs
	return cp, nil
}

// ForkRun builds a ready-to-run kernel from a mid-run checkpoint,
// resuming exactly where CaptureAt froze it: same scheduler state, same
// clock, same page tables, every program back on its captured op. resume
// rebuilds each live task's program from its cursor. Like Fork, the
// returned kernel shares the image copy-on-write and owns pooled
// buffers until ReleaseCheckpoint.
//
// The forked machine starts with cold host caches and TLB — the only
// state deliberately absent from a checkpoint — so its overhead stream
// diverges from the capture-side kernel's continuation until the host
// state warms back up. Callers measure through core.Window with a
// warm-up that covers the divergence.
func ForkRun(cp *Checkpoint, cfg Config, resume ProgramResume) (*Kernel, error) {
	rs := cp.run
	if rs == nil {
		return nil, fmt.Errorf("%w: checkpoint %q has no run state (post-boot capture); use Fork",
			ErrCheckpointMismatch, cp.mark)
	}
	k, err := Fork(cp, cfg)
	if err != nil {
		return nil, err
	}
	if len(rs.Tasks) != len(k.tasks) {
		k.ReleaseCheckpoint()
		return nil, fmt.Errorf("%w: run state covers %d tasks, checkpoint %q has %d",
			ErrCheckpointMismatch, len(rs.Tasks), cp.mark, len(k.tasks))
	}
	k.m.SetClockState(rs.Clock)
	k.ticks = rs.Ticks
	k.resched = rs.Resched
	k.cur = rs.Cur
	k.compInstr = rs.CompInstr
	k.trueECCErrs = rs.TrueECCErrs
	k.pageOuts = rs.PageOuts
	k.forks = rs.Forks
	k.exits = rs.Exits
	k.userSpawned = rs.UserSpawned
	k.userExited = rs.UserExited

	for i, ts := range rs.Tasks {
		t := k.tasks[i]
		t.Parent = ts.Parent
		t.State = ts.State
		t.Instructions = ts.Instructions
		if len(ts.PageVPNs) != len(ts.PagePTEs) {
			k.ReleaseCheckpoint()
			return nil, fmt.Errorf("%w: task %d page table arrays disagree", ErrCheckpointMismatch, t.ID)
		}
		for j, vpn := range ts.PageVPNs {
			t.space.set(vpn, pte(ts.PagePTEs[j]))
		}
		t.space.mapped = ts.Mapped
		if ts.HasCursor {
			if resume == nil {
				k.ReleaseCheckpoint()
				return nil, fmt.Errorf("kernel: ForkRun of %q needs a resume callback for task %d (%s)",
					cp.mark, t.ID, t.Name)
			}
			prog, err := resume(ts.Cursor)
			if err != nil {
				k.ReleaseCheckpoint()
				return nil, fmt.Errorf("kernel: resuming task %d (%s) of %q: %w", t.ID, t.Name, cp.mark, err)
			}
			t.prog = prog
		}
	}
	for _, id := range rs.RunqIDs {
		if int(id) < 0 || int(id) >= len(k.tasks) {
			k.ReleaseCheckpoint()
			return nil, fmt.Errorf("%w: run queue references unknown task %d", ErrCheckpointMismatch, id)
		}
		k.runq = append(k.runq, k.tasks[id])
	}
	if len(rs.ResidentTIDs) != len(rs.ResidentVPNs) {
		k.ReleaseCheckpoint()
		return nil, fmt.Errorf("%w: resident queue arrays disagree", ErrCheckpointMismatch)
	}
	for i, tid := range rs.ResidentTIDs {
		k.resident.push(tid, rs.ResidentVPNs[i])
	}
	return k, nil
}

// RegisterResidentPages replays tw_register_page for every resident page
// of every live simulated task, in (task ID, vpn) order. A kernel forked
// mid-run already holds the pages its tasks demand-faulted before the
// capture, so a simulator attached after ForkRun would otherwise never
// see them; this sweep is the attach-time analogue of the registrations
// the VM fault path would have issued. The reference kind mirrors the
// fault path's classification: text below DataBase faults in as IFetch,
// everything above as a data load.
func (k *Kernel) RegisterResidentPages() {
	if k.hooks == nil {
		return
	}
	pageSize := uint32(k.cfg.Machine.PageSize)
	pageBits := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		pageBits++
	}
	for _, t := range k.tasks {
		if t.ID == mem.KernelTask || t.State == Exited || !t.Simulate {
			continue
		}
		k.registerResidentPagesOf(t, pageSize, pageBits)
	}
}

func (k *Kernel) registerResidentPagesOf(t *Task, pageSize uint32, pageBits uint) {
	t.space.pages(func(vpn uint32, p pte) {
		if !p.resident() {
			return
		}
		va := mem.VAddr(vpn) << pageBits
		kind := mem.IFetch
		if va >= DataBase {
			kind = mem.Load
		}
		k.hooks.PageRegistered(t.ID, mem.PAddr(p.frame())*mem.PAddr(pageSize), va, kind)
	})
}
