package kernel

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

// ckProgram builds a workload that exercises every piece of state a
// checkpoint must carry: kernel walkers (syscalls), both servers, VM
// faults across text and data pages, and a fork (task tree, frame
// refcounts, task-ID allocation).
func ckProgram() Program {
	events := refs(TextBase, 3000)
	events = append(events,
		Event{Kind: EvSyscall, Service: SvcRead},
		Event{Kind: EvSyscall, Service: SvcBSDFile},
		Event{Kind: EvSyscall, Service: SvcXRender},
	)
	for i := 0; i < 64; i++ {
		events = append(events, Event{Kind: EvRef,
			Ref: mem.Ref{VA: DataBase + mem.VAddr(i*4096), Kind: mem.Load}})
	}
	child := &scriptProgram{events: refs(TextBase, 2000)}
	events = append(events, Event{Kind: EvFork, Child: child, ShareText: true})
	events = append(events, refs(TextBase+0x4000, 2000)...)
	return &scriptProgram{events: events}
}

// ckState is the observable outcome of a finished run, comparable with a
// single !=; physBytes holds the gob encoding of the full trap tables.
type ckState struct {
	cycles   uint64
	instret  uint64
	counters mach.Counters
	comp     [NumComponents]uint64
	kstats   Stats
}

func ckSnapshot(t *testing.T, k *Kernel) (ckState, []byte) {
	t.Helper()
	st := ckState{
		cycles:   k.Machine().Cycles(),
		instret:  k.Machine().Instructions(),
		counters: k.Machine().Counters(),
		comp:     k.ComponentInstructions(),
		kstats:   k.Stats(),
	}
	img := mem.CaptureImage(k.Machine().Phys())
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatal(err)
	}
	return st, buf.Bytes()
}

func ckConfig(frames int, seed uint64) Config {
	cfg := DefaultConfig(mach.DECstation5000_200(frames), seed)
	cfg.PageSeed = seed * 31
	return cfg
}

// runToEnd spawns the canonical program and drives it to completion.
func runToEnd(t *testing.T, k *Kernel) {
	t.Helper()
	k.Spawn("ck", ckProgram(), true, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestForkMatchesBoot is the core identity contract: a forked kernel runs
// a workload to a byte-identical outcome (machine counters, component
// attribution, task accounting, and the full physical trap tables) as a
// freshly booted kernel with the same configuration.
func TestForkMatchesBoot(t *testing.T) {
	cfg := ckConfig(2048, 7)

	fresh := MustBoot(cfg)
	runToEnd(t, fresh)
	wantState, wantPhys := ckSnapshot(t, fresh)
	fresh.ReleaseBuffers()

	src := MustBoot(cfg)
	cp, err := Capture(src, "post-boot")
	if err != nil {
		t.Fatal(err)
	}
	src.ReleaseBuffers()

	// Two successive forks, to prove forks are independent of each other
	// and of the (already released) capture kernel.
	for i := 0; i < 2; i++ {
		fk, err := Fork(cp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		runToEnd(t, fk)
		gotState, gotPhys := ckSnapshot(t, fk)
		if gotState != wantState {
			t.Fatalf("fork %d diverged from fresh boot:\nfork:  %+v\nfresh: %+v", i, gotState, wantState)
		}
		if !bytes.Equal(gotPhys, wantPhys) {
			t.Fatalf("fork %d: physical trap tables differ from fresh boot", i)
		}
		fk.ReleaseCheckpoint()
	}
	if wantState.instret == 0 || wantState.cycles == 0 {
		t.Fatalf("scenario executed nothing: %+v", wantState)
	}
}

// TestForkRuntimeOptionsMayDiffer pins which configuration knobs are
// identity (must match the capture) and which are runtime-only: a fork
// with the fast path disabled must still work — and still match a fresh
// no-fast-path boot exactly.
func TestForkRuntimeOptionsMayDiffer(t *testing.T) {
	cfg := ckConfig(2048, 7)
	src := MustBoot(cfg)
	cp, err := Capture(src, "post-boot")
	if err != nil {
		t.Fatal(err)
	}
	src.ReleaseBuffers()

	slow := cfg
	slow.Machine.NoFastPath = true

	fresh := MustBoot(slow)
	runToEnd(t, fresh)
	wantState, wantPhys := ckSnapshot(t, fresh)
	fresh.ReleaseBuffers()

	fk, err := Fork(cp, slow)
	if err != nil {
		t.Fatal(err)
	}
	runToEnd(t, fk)
	gotState, gotPhys := ckSnapshot(t, fk)
	fk.ReleaseCheckpoint()
	if gotState != wantState || !bytes.Equal(gotPhys, wantPhys) {
		t.Fatalf("no-fast-path fork diverged:\nfork:  %+v\nfresh: %+v", gotState, wantState)
	}
}

func TestForkRejectsMismatchedConfig(t *testing.T) {
	cfg := ckConfig(2048, 7)
	src := MustBoot(cfg)
	cp, err := Capture(src, "post-boot")
	if err != nil {
		t.Fatal(err)
	}
	src.ReleaseBuffers()

	mutations := map[string]func(*Config){
		"frames":    func(c *Config) { c.Machine = mach.DECstation5000_200(1024) },
		"seed":      func(c *Config) { c.Seed++ },
		"page seed": func(c *Config) { c.PageSeed++ },
		"tw frames": func(c *Config) { c.TapewormFrames++ },
		"x server":  func(c *Config) { c.WithXServer = false },
		"bsd":       func(c *Config) { c.WithBSDServer = false },
	}
	for name, mutate := range mutations {
		bad := cfg
		mutate(&bad)
		if _, err := Fork(cp, bad); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s mismatch: Fork err = %v, want ErrCheckpointMismatch", name, err)
		}
		if err := cp.ValidateConfig(bad); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s mismatch: ValidateConfig err = %v, want ErrCheckpointMismatch", name, err)
		}
	}
	if err := cp.ValidateConfig(cfg); err != nil {
		t.Errorf("matching config rejected: %v", err)
	}
}

func TestCaptureRequiresQuiescence(t *testing.T) {
	k := bootTest(t, 2048)
	defer k.ReleaseBuffers()
	k.Spawn("p", &scriptProgram{events: refs(TextBase, 100)}, false, false)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := Capture(k, "mid-run"); err == nil {
		t.Fatal("Capture accepted a kernel that has already executed")
	}
}

// TestCheckpointEncodeRoundtrip proves the persisted form is faithful: a
// kernel forked from a decoded checkpoint matches one forked from the
// original, byte for byte.
func TestCheckpointEncodeRoundtrip(t *testing.T) {
	cfg := ckConfig(2048, 7)
	src := MustBoot(cfg)
	cp, err := Capture(src, "post-boot")
	if err != nil {
		t.Fatal(err)
	}
	src.ReleaseBuffers()

	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Mark() != cp.Mark() || cp2.Frames() != cp.Frames() {
		t.Fatalf("roundtrip changed identity: mark %q frames %d", cp2.Mark(), cp2.Frames())
	}

	run := func(cp *Checkpoint) (ckState, []byte) {
		k, err := Fork(cp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer k.ReleaseCheckpoint()
		runToEnd(t, k)
		st, phys := ckSnapshot(t, k)
		return st, phys
	}
	s1, p1 := run(cp)
	s2, p2 := run(cp2)
	if s1 != s2 || !bytes.Equal(p1, p2) {
		t.Fatalf("decoded checkpoint diverged:\noriginal: %+v\ndecoded:  %+v", s1, s2)
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// BenchmarkBootVsFork quantifies the boot amortization a checkpoint buys:
// fork must be at least 5x faster than a fresh boot (the PR's acceptance
// floor; the frame-allocator shuffle and walker construction dominate
// boot).
func BenchmarkBootVsFork(b *testing.B) {
	cfg := ckConfig(8192, 1994)
	b.Run("boot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := MustBoot(cfg)
			k.ReleaseBuffers()
		}
	})
	b.Run("fork", func(b *testing.B) {
		src := MustBoot(cfg)
		cp, err := Capture(src, "post-boot")
		if err != nil {
			b.Fatal(err)
		}
		src.ReleaseBuffers()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k, err := Fork(cp, cfg)
			if err != nil {
				b.Fatal(err)
			}
			k.ReleaseCheckpoint()
		}
	})
}
