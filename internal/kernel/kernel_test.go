package kernel

import (
	"testing"

	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

// scriptProgram plays back a fixed event list, then exits forever.
type scriptProgram struct {
	events []Event
	pos    int
}

func (p *scriptProgram) Next() Event {
	if p.pos < len(p.events) {
		e := p.events[p.pos]
		p.pos++
		return e
	}
	return Event{Kind: EvExit}
}

// refs builds n sequential ifetch events starting at base.
func refs(base mem.VAddr, n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{Kind: EvRef, Ref: mem.Ref{VA: base + mem.VAddr(i*4), Kind: mem.IFetch}}
	}
	return out
}

// recordingHooks captures MemSimHooks invocations.
type recordingHooks struct {
	registered []mem.PAddr
	regKinds   []mem.RefKind
	regTasks   []mem.TaskID
	removed    []mem.PAddr
	forked     int
	exited     []mem.TaskID
}

func (h *recordingHooks) PageRegistered(t mem.TaskID, pa mem.PAddr, va mem.VAddr, k mem.RefKind) {
	h.registered = append(h.registered, pa)
	h.regKinds = append(h.regKinds, k)
	h.regTasks = append(h.regTasks, t)
}
func (h *recordingHooks) PageRemoved(t mem.TaskID, pa mem.PAddr, va mem.VAddr) {
	h.removed = append(h.removed, pa)
}
func (h *recordingHooks) TaskForked(parent, child *Task) { h.forked++ }
func (h *recordingHooks) TaskExited(t mem.TaskID)        { h.exited = append(h.exited, t) }
func (h *recordingHooks) ECCTrap(mem.TaskID, mem.VAddr, mem.PAddr, mem.RefKind) bool {
	return false
}
func (h *recordingHooks) InvalidPageTrap(mem.TaskID, mem.VAddr, mem.PAddr, mem.RefKind) bool {
	return false
}
func (h *recordingHooks) BreakpointTrap(mem.TaskID, mem.VAddr, mem.PAddr) {}

func bootTest(t *testing.T, frames int) *Kernel {
	t.Helper()
	cfg := DefaultConfig(mach.DECstation5000_200(frames), 1)
	k, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootRejectsTinyMemory(t *testing.T) {
	cfg := DefaultConfig(mach.DECstation5000_200(32), 1)
	if _, err := Boot(cfg); err == nil {
		t.Fatal("32 frames cannot hold kernel + Tapeworm reservations")
	}
}

func TestBootServers(t *testing.T) {
	k := bootTest(t, 2048)
	if k.Server(BSDServer) == nil || k.Server(XServer) == nil {
		t.Fatal("servers not booted")
	}
	if !k.Server(BSDServer).Server {
		t.Fatal("server task not marked")
	}
	if k.ComponentOf(k.Server(XServer).ID) != CompServer {
		t.Fatal("server component classification wrong")
	}
	if k.ComponentOf(mem.KernelTask) != CompKernel {
		t.Fatal("kernel component classification wrong")
	}
	cfg := DefaultConfig(mach.DECstation5000_200(2048), 1)
	cfg.WithXServer = false
	k2, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Server(XServer) != nil {
		t.Fatal("X server booted despite WithXServer=false")
	}
}

func TestRunSimpleProgram(t *testing.T) {
	k := bootTest(t, 2048)
	task := k.Spawn("p", &scriptProgram{events: refs(TextBase, 100)}, false, false)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if task.Instructions != 100 {
		t.Fatalf("task executed %d instructions, want 100", task.Instructions)
	}
	if task.State != Exited {
		t.Fatal("task did not exit")
	}
	if k.UserTasksAlive() != 0 {
		t.Fatal("run queue not empty")
	}
	if k.ComponentInstructions()[CompUser] != 100 {
		t.Fatalf("user component instructions = %d", k.ComponentInstructions()[CompUser])
	}
}

func TestRunInstructionBudget(t *testing.T) {
	k := bootTest(t, 2048)
	k.Spawn("p", &scriptProgram{events: refs(TextBase, 100000)}, false, false)
	if err := k.Run(500); err != nil {
		t.Fatal(err)
	}
	if k.UserTasksAlive() != 1 {
		t.Fatal("budget-limited run should leave the task alive")
	}
	if got := k.Machine().Instructions(); got < 500 || got > 1500 {
		t.Fatalf("ran %d instructions, want about 500", got)
	}
}

func TestPageRegistrationOnlyWhenSimulated(t *testing.T) {
	k := bootTest(t, 2048)
	h := &recordingHooks{}
	k.SetHooks(h)
	k.Spawn("unsim", &scriptProgram{events: refs(TextBase, 50)}, false, false)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(h.registered) != 0 {
		t.Fatalf("unsimulated task registered %d pages", len(h.registered))
	}

	k2 := bootTest(t, 2048)
	h2 := &recordingHooks{}
	k2.SetHooks(h2)
	k2.Spawn("sim", &scriptProgram{events: refs(TextBase, 50)}, true, false)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(h2.registered) == 0 {
		t.Fatal("simulated task registered no pages")
	}
	if h2.regKinds[0] != mem.IFetch {
		t.Fatalf("text page registered with kind %v", h2.regKinds[0])
	}
	// Exit must remove exactly what was registered.
	if len(h2.removed) != len(h2.registered) {
		t.Fatalf("registered %d pages but removed %d", len(h2.registered), len(h2.removed))
	}
}

func TestForkInheritance(t *testing.T) {
	// (simulate=0, inherit=1) on the parent: the parent's own pages are
	// never registered, but every child's are — the shell idiom of
	// Section 3.2.
	k := bootTest(t, 2048)
	h := &recordingHooks{}
	k.SetHooks(h)

	child := &scriptProgram{events: refs(TextBase, 30)}
	parent := &scriptProgram{events: append(refs(TextBase, 20),
		Event{Kind: EvFork, Child: child, ShareText: false})}
	k.Spawn("shell", parent, false, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if h.forked != 2 { // Spawn counts as a fork notification too
		t.Fatalf("fork notifications = %d, want 2", h.forked)
	}
	if len(h.registered) == 0 {
		t.Fatal("child pages not registered despite inherit=1")
	}
	for _, tid := range h.regTasks {
		if tid == 1 { // the shell's own task ID
			t.Fatal("shell's own pages were registered")
		}
	}
	st := k.Stats()
	if st.Forks != 1 || st.UserSpawned != 2 || st.UserExited != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestForkSharedTextRefcounts(t *testing.T) {
	k := bootTest(t, 2048)
	h := &recordingHooks{}
	k.SetHooks(h)

	child := &scriptProgram{events: refs(TextBase, 30)}
	parent := &scriptProgram{events: append(refs(TextBase, 40),
		Event{Kind: EvFork, Child: child, ShareText: true})}
	k.Spawn("p", parent, true, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	// The shared text page is registered twice (once per mapping) with
	// the same physical address — the refcount path of tw_register_page.
	seen := map[mem.PAddr]int{}
	for _, pa := range h.registered {
		seen[pa]++
	}
	var shared int
	for _, n := range seen {
		if n > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no physical page was registered through two mappings")
	}
	if len(h.removed) != len(h.registered) {
		t.Fatalf("registered %d mappings, removed %d", len(h.registered), len(h.removed))
	}
}

func TestSyscallRunsKernelAndServer(t *testing.T) {
	k := bootTest(t, 2048)
	events := append(refs(TextBase, 10),
		Event{Kind: EvSyscall, Service: SvcRead},
		Event{Kind: EvSyscall, Service: SvcBSDFile},
		Event{Kind: EvSyscall, Service: SvcXRender},
	)
	k.Spawn("p", &scriptProgram{events: events}, false, false)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	comp := k.ComponentInstructions()
	if comp[CompKernel] == 0 {
		t.Fatal("syscalls executed no kernel instructions")
	}
	if comp[CompServer] == 0 {
		t.Fatal("server-backed syscalls executed no server instructions")
	}
	if k.Server(BSDServer).Instructions == 0 || k.Server(XServer).Instructions == 0 {
		t.Fatal("per-server instruction accounting missing")
	}
	// Kernel cost should be the published ServiceCosts plus VM fault
	// service for the pages the user task and servers touched.
	wantK := 0
	for _, svc := range []ServiceID{SvcRead, SvcBSDFile, SvcXRender} {
		kc, _ := ServiceCosts(svc)
		wantK += kc
	}
	_, _, faultC := FixedTaskCosts()
	faults := int(k.Machine().Counters().PageFaults)
	upper := wantK + faults*faultC + kExitTaskLen + 2000 // interrupts, slack
	got := int(comp[CompKernel])
	if got < wantK || got > upper {
		t.Fatalf("kernel instructions %d, want within [%d, %d] (faults %d)",
			got, wantK, upper, faults)
	}
}

func TestServiceCostsConsistent(t *testing.T) {
	for _, svc := range Services() {
		kc, sc := ServiceCosts(svc)
		if kc <= 0 {
			t.Errorf("%v kernel cost %d", svc, kc)
		}
		if (ServerOf(svc) == NoServer) != (sc == 0) {
			t.Errorf("%v server cost %d inconsistent with backing %v", svc, sc, ServerOf(svc))
		}
	}
	f, e, flt := FixedTaskCosts()
	if f <= 0 || e <= 0 || flt <= 0 {
		t.Error("fixed task costs must be positive")
	}
}

func TestSetAttributes(t *testing.T) {
	k := bootTest(t, 2048)
	task := k.Spawn("p", &scriptProgram{}, false, false)
	if err := k.SetAttributes(task.ID, true, true); err != nil {
		t.Fatal(err)
	}
	if !task.Simulate || !task.Inherit {
		t.Fatal("attributes not applied")
	}
	if err := k.SetAttributes(999, true, true); err == nil {
		t.Fatal("unknown task accepted")
	}
	if err := k.SetAttributes(mem.KernelTask, true, false); err != nil {
		t.Fatalf("kernel attributes rejected: %v", err)
	}
}

func TestPageValidBitPrimitive(t *testing.T) {
	k := bootTest(t, 2048)
	task := k.Spawn("p", &scriptProgram{events: refs(TextBase, 10)}, false, false)
	if err := k.Run(0); err == nil {
		// Task exits; its pages are unmapped, so use a fresh one below.
		_ = err
	}
	k2 := bootTest(t, 2048)
	task = k2.Spawn("p", &scriptProgram{events: refs(TextBase, 100000)}, false, false)
	if err := k2.Run(50); err != nil {
		t.Fatal(err)
	}
	pa, ok := k2.ResidentPA(task.ID, TextBase)
	if !ok {
		t.Fatal("text page not resident")
	}
	if err := k2.SetPageValid(task.ID, TextBase, false); err != nil {
		t.Fatal(err)
	}
	if _, valid := task.Space().Translate(TextBase); valid {
		t.Fatal("page still valid after SetPageValid(false)")
	}
	// The software resident bit still knows the truth.
	if pa2, ok := k2.ResidentPA(task.ID, TextBase); !ok || pa2 != pa {
		t.Fatal("resident bit lost by valid-bit manipulation")
	}
	if err := k2.SetPageValid(task.ID, TextBase, true); err != nil {
		t.Fatal(err)
	}
	if _, valid := task.Space().Translate(TextBase); !valid {
		t.Fatal("page not valid after SetPageValid(true)")
	}
	// Non-resident pages cannot have their valid bit set.
	if err := k2.SetPageValid(task.ID, 0x7000_0000, false); err == nil {
		t.Fatal("SetPageValid on unmapped page accepted")
	}
}

func TestPagingOutUnderMemoryPressure(t *testing.T) {
	// Boot with barely enough memory, then touch more pages than fit:
	// the kernel must page out FIFO victims (with PageRemoved hooks)
	// rather than fail.
	cfg := DefaultConfig(mach.DECstation5000_200(200), 1)
	cfg.TapewormFrames = 8
	k, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &recordingHooks{}
	k.SetHooks(h)
	// Touch far more distinct pages than there are free frames.
	var events []Event
	for p := 0; p < 400; p++ {
		events = append(events, Event{Kind: EvRef,
			Ref: mem.Ref{VA: DataBase + mem.VAddr(p*4096), Kind: mem.Load}})
	}
	k.Spawn("hog", &scriptProgram{events: events}, true, false)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if k.Stats().PageOuts == 0 {
		t.Fatal("no page-outs despite memory pressure")
	}
	if len(h.removed) < int(k.Stats().PageOuts) {
		t.Fatal("page-outs did not fire PageRemoved hooks")
	}
}

func TestTracerSeesOnlyAnnotatedTask(t *testing.T) {
	k := bootTest(t, 2048)
	var traced []mem.VAddr
	tr := tracerFunc(func(t mem.TaskID, r mem.Ref) { traced = append(traced, r.VA) })

	childEvents := refs(TextBase+0x10000, 25)
	parent := &scriptProgram{events: append(refs(TextBase, 40),
		Event{Kind: EvFork, Child: &scriptProgram{events: childEvents}})}
	task := k.Spawn("p", parent, false, false)
	k.SetTracer(task.ID, tr)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 40 {
		t.Fatalf("traced %d refs, want 40 (parent only; children invisible to Pixie)", len(traced))
	}
	for _, va := range traced {
		if va >= TextBase+0x10000 {
			t.Fatal("child reference leaked into the parent's trace")
		}
	}
}

// tracerFunc adapts a function to the Tracer interface.
type tracerFunc func(mem.TaskID, mem.Ref)

func (f tracerFunc) Trace(t mem.TaskID, r mem.Ref) { f(t, r) }

func TestClockTicksAdvanceWithRuntime(t *testing.T) {
	k := bootTest(t, 2048)
	k.Spawn("p", &scriptProgram{events: refs(TextBase, 400000)}, false, false)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if k.Stats().ClockTicks == 0 {
		t.Fatal("no clock ticks in a 400K-instruction run")
	}
}

func TestForEachKernelPage(t *testing.T) {
	k := bootTest(t, 2048)
	var text, data int
	k.ForEachKernelPage(func(pa mem.PAddr, va mem.VAddr, kind mem.RefKind) {
		if !mach.IsKernelVA(va) {
			t.Fatalf("kernel page with user VA %#x", va)
		}
		if mem.PAddr(va-mach.KernelBase) != pa {
			t.Fatalf("kseg0 mapping broken: va %#x pa %#x", va, pa)
		}
		if kind == mem.IFetch {
			text++
		} else {
			data++
		}
	})
	if text == 0 || data == 0 {
		t.Fatalf("kernel pages: %d text, %d data", text, data)
	}
	if text+data != k.KernelTextPages() {
		t.Fatalf("enumerated %d pages, layout says %d", text+data, k.KernelTextPages())
	}
}

func TestComponentString(t *testing.T) {
	if CompUser.String() != "user" || CompServer.String() != "server" ||
		CompKernel.String() != "kernel" {
		t.Fatal("component names wrong")
	}
	if SvcRead.String() != "read" || SvcBSDExec.String() != "bsd-exec" {
		t.Fatal("service names wrong")
	}
	if BSDServer.String() != "BSD server" || NoServer.String() != "kernel" {
		t.Fatal("server kind names wrong")
	}
}
