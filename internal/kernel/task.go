// Package kernel implements the operating system of the simulated host
// machine: tasks with fork/exit and Tapeworm attribute inheritance, a
// round-robin scheduler driven by clock interrupts, a virtual memory
// system with a randomized physical frame allocator and page-registration
// hooks, kernel services, and user-level server tasks (the Mach 3.0 BSD
// single-server and the X display server of the paper's Table 4).
//
// The kernel is where Tapeworm resides: machine traps vector here first,
// and the memory-simulation hooks (MemSimHooks) are how Tapeworm's
// kernel-resident part attaches, mirroring the paper's modified Mach
// kernel entry code and VM-system calls to tw_register_page and
// tw_remove_page.
package kernel

import (
	"fmt"

	"tapeworm/internal/mem"
)

// EventKind discriminates the steps a task program can take.
type EventKind uint8

const (
	// EvRef executes one memory reference.
	EvRef EventKind = iota
	// EvSyscall traps into a kernel service (possibly server-backed).
	EvSyscall
	// EvFork creates a child task running Event.Child.
	EvFork
	// EvExit terminates the task.
	EvExit
)

// Event is one step of a task's execution, produced by its Program.
type Event struct {
	Kind    EventKind
	Ref     mem.Ref   // EvRef
	Service ServiceID // EvSyscall
	Child   Program   // EvFork
	// ShareText controls whether the forked child shares the parent's
	// text pages (classic fork) or starts with an empty address space
	// (fork immediately followed by exec of a different program).
	ShareText bool
}

// Program generates a task's execution, one event at a time. Programs are
// required to be deterministic functions of their own construction
// parameters: a task's stream must not depend on scheduling, so that
// single-task virtually-indexed simulations are exactly reproducible
// (DESIGN.md, "per-task deterministic streams").
type Program interface {
	Next() Event
}

// BatchProgram is an optional extension of Program for batched execution.
// NextRun returns either a sequential instruction-fetch run — base and n
// with fetches at base, base+4, ..., base+4(n-1), n in [1, max] — or,
// when n is 0, the next non-run event exactly as Next would produce it.
// Implementations must consume randomness such that the event stream is
// identical whether the program is driven through Next or NextRun:
// batching is a transport optimization, never a different program.
type BatchProgram interface {
	Program
	NextRun(max int) (base mem.VAddr, n int, ev Event)
}

// CompiledOpKind discriminates the ops of a pre-compiled program stream.
type CompiledOpKind uint8

const (
	// OpRun is a sequential instruction-fetch run: VA, VA+4, ...,
	// VA+4(N-1), with N in [1, CompiledRunCap].
	OpRun CompiledOpKind = iota
	// OpData is one data reference at VA with kind Ref.
	OpData
	// OpSyscall traps into service Arg.
	OpSyscall
	// OpFork creates a child task replaying child image Arg; N != 0
	// means the child shares the parent's text (Event.ShareText).
	OpFork
	// OpExit terminates the task. Always the final op of a stream.
	OpExit
)

// CompiledOp is one pre-planned step of a compiled program: a fused walker
// run, a pre-resolved data reference, or an event with its randomness
// (service choice, fork target) already drawn. 12 bytes, so a multi-million
// instruction workload compiles to a few tens of megabytes.
type CompiledOp struct {
	VA   mem.VAddr      // OpRun: first fetch; OpData: address
	N    uint16         // OpRun: run length; OpFork: ShareText flag
	Kind CompiledOpKind // discriminator
	Ref  mem.RefKind    // OpData: Load or Store
	Arg  int32          // OpSyscall: ServiceID; OpFork: child image index
}

// CompiledRunCap is the run length compiled streams are segmented at. It
// equals the Run loop's per-scheduling-decision batch bound, so a compiled
// stream's run boundaries coincide exactly with where the interpreter's
// NextRun(userRunCap) calls would fall.
const CompiledRunCap = userRunCap

// CompiledProgram is an optional extension of BatchProgram for programs
// whose entire stream was pre-compiled into a CompiledOp array. The Run
// loop replays the ops directly — no per-instruction dispatch, no draws —
// while Next/NextRun remain available (and must stay byte-identical to the
// ops) for traced and instruction-limited execution.
type CompiledProgram interface {
	BatchProgram
	// Ops returns the immutable compiled op stream.
	Ops() []CompiledOp
	// OpPos returns the replay cursor as an op index. ok is false while
	// the cursor sits inside a partially consumed run op (possible only
	// when the program was also driven through Next), in which case the
	// caller must fall back to Next/NextRun until realigned.
	OpPos() (pos int, ok bool)
	// SeekOp moves the replay cursor to op index pos (run-aligned).
	SeekOp(pos int)
}

// TaskState tracks a task through its lifetime.
type TaskState uint8

const (
	// Runnable tasks are eligible for scheduling.
	Runnable TaskState = iota
	// Exited tasks have terminated and been torn down.
	Exited
)

// Task is an OS task. The Simulate and Inherit fields are the Tapeworm
// attributes of Table 1, stored in an extended task structure exactly as
// the paper describes; they are ordinary kernel state that Tapeworm reads
// and writes through tw_attributes.
type Task struct {
	ID     mem.TaskID
	Parent mem.TaskID
	Name   string
	State  TaskState

	// Simulate registers the task's pages with Tapeworm; Inherit gives
	// the initial Simulate value for children created by fork:
	//
	//	child.simulate <- parent.inherit
	//	child.inherit  <- parent.inherit
	Simulate bool
	Inherit  bool

	// Server marks X/BSD-style server tasks that exist before the
	// workload starts and never exit.
	Server bool

	prog  Program
	space *AddrSpace

	Instructions uint64 // user-mode instructions executed by this task
}

// IsUserWorkload reports whether the task belongs to the measured
// workload's fork tree (not a server, not the kernel).
func (t *Task) IsUserWorkload() bool { return !t.Server && t.ID != mem.KernelTask }

// Space returns the task's address space.
func (t *Task) Space() *AddrSpace { return t.space }

// Component classifies where references execute, for per-component miss
// accounting (Table 6): user tasks, server tasks, or the kernel.
type Component uint8

const (
	// CompUser is any task in the workload's fork tree.
	CompUser Component = iota
	// CompServer is the X display server or the BSD UNIX server.
	CompServer
	// CompKernel is the OS kernel itself.
	CompKernel

	// NumComponents is the count of component classes.
	NumComponents
)

// String names the component.
func (c Component) String() string {
	switch c {
	case CompUser:
		return "user"
	case CompServer:
		return "server"
	case CompKernel:
		return "kernel"
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}
