package kernel

import (
	"fmt"

	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
	"tapeworm/internal/telemetry"
	"tapeworm/internal/textwalk"
)

// Config parameterizes a kernel boot.
type Config struct {
	Machine mach.Config

	// Seed drives all kernel-internal randomness (service code walks,
	// data reference patterns). PageSeed drives only the physical frame
	// allocator; vary it between trials to reproduce page-allocation
	// variance (Table 9), pin it to remove that variance (Table 10).
	Seed     uint64
	PageSeed uint64

	// TapewormFrames is physical memory reserved for Tapeworm at boot.
	// The paper's implementation takes 256 KB = 64 pages, removing them
	// from the free pool (Section 4.2, Sources of Measurement Bias).
	TapewormFrames int

	// QuantumTicks is the scheduling quantum in clock ticks.
	QuantumTicks int

	// WithXServer and WithBSDServer control which servers boot. Both
	// default true via DefaultConfig.
	WithXServer   bool
	WithBSDServer bool

	// KernelDataRefs is the probability of a data reference after each
	// kernel instruction.
	KernelDataRefs float64

	// ServerFragBytesPerReq, when nonzero, widens each server's hot data
	// footprint by that many bytes per request handled — the long-running
	// memory-fragmentation effect of Section 4.2. Off by default so the
	// standard experiments run on a freshly-booted system.
	ServerFragBytesPerReq int

	// Telemetry, when non-nil, receives trap-level trace events and
	// end-of-run counter snapshots for this boot. Nil disables telemetry
	// at zero cost on the reference hot path.
	Telemetry *telemetry.Run
}

// DefaultConfig returns a kernel configuration on the given machine model.
func DefaultConfig(m mach.Config, seed uint64) Config {
	return Config{
		Machine:        m,
		Seed:           seed,
		PageSeed:       seed ^ 0x9a9e, // distinct but derived; override per trial
		TapewormFrames: 64,
		QuantumTicks:   2,
		WithXServer:    true,
		WithBSDServer:  true,
		KernelDataRefs: 0.28,
	}
}

// Kernel is the simulated operating system. It implements mach.OS.
type Kernel struct {
	cfg    Config
	m      *mach.Machine
	layout *kernelLayout
	hooks  MemSimHooks

	tasks   []*Task // indexed by TaskID
	runq    []*Task // runnable workload tasks, round-robin
	cur     int
	resched bool
	ticks   uint64
	inClock bool

	fa       *frameAllocator
	resident residentQueue

	// rngKernel drives process-level kernel code (syscall paths, fork,
	// exit, scheduling). rngIntr and rngVM are separate streams for
	// interrupt-level code and the VM fault path: both can preempt
	// process-level kexec mid-run, and giving them their own sources keeps
	// a handler's draws from perturbing the stream of the code it
	// interrupted.
	rngKernel *rng.Source
	rngIntr   *rng.Source
	rngVM     *rng.Source

	entryW, clockW, schedW, vmW, forkW *textwalk.Walker
	// softVmW and softSchedW are dedicated softclock walkers: the deferred
	// tick half runs at interrupt level and may fire while a process-level
	// kexec is mid-way through vmW or schedW; separate walkers keep the
	// interrupted walk's position intact.
	softVmW, softSchedW *textwalk.Walker
	svcW                [numServices]*textwalk.Walker
	kdata               *dataGen

	servers map[ServerKind]*server

	tracer    Tracer
	traceTask mem.TaskID

	compInstr   [NumComponents]uint64
	trueECCErrs uint64
	pageOuts    uint64
	forks       uint64
	exits       uint64
	userSpawned int
	userExited  int

	// stopUser/stopMach are the RunUntilUser/RunUntilInstr targets
	// (zero = none). Unlike Run's maxInstr limit they leave the compiled
	// and batched fast paths engaged, trading a per-reference-exact stop
	// for a deterministic op-boundary stop: the checks sit at compiled-op
	// and scheduling boundaries, so the overshoot past the target is a
	// pure function of the (deterministic) stream, never of timing.
	stopUser uint64
	stopMach uint64
}

// residentQueue is a FIFO of (task, vpn) page-ins used to choose page-out
// victims when physical memory is exhausted.
type residentQueue struct {
	entries []residentEntry
	head    int
}

type residentEntry struct {
	tid mem.TaskID
	vpn uint32
}

func (q *residentQueue) push(tid mem.TaskID, vpn uint32) {
	q.entries = append(q.entries, residentEntry{tid, vpn})
}

func (q *residentQueue) pop() (residentEntry, bool) {
	for q.head < len(q.entries) {
		e := q.entries[q.head]
		q.head++
		if q.head > 4096 && q.head*2 > len(q.entries) {
			q.entries = append([]residentEntry(nil), q.entries[q.head:]...)
			q.head = 0
		}
		return e, true
	}
	return residentEntry{}, false
}

// Boot creates the machine and kernel, reserves kernel and Tapeworm
// memory, and starts the configured servers.
func Boot(cfg Config) (*Kernel, error) {
	k := &Kernel{cfg: cfg, servers: make(map[ServerKind]*server)}
	var err error
	k.m, err = mach.New(cfg.Machine, k)
	if err != nil {
		return nil, err
	}
	k.m.SetTelemetry(cfg.Telemetry)
	k.layout = newKernelLayout()

	pageSize := cfg.Machine.PageSize
	kframes := k.layout.kernelFrames(pageSize)
	reserved := kframes + cfg.TapewormFrames
	if reserved >= cfg.Machine.Frames {
		return nil, fmt.Errorf("kernel: %d frames of physical memory cannot hold %d reserved frames",
			cfg.Machine.Frames, reserved)
	}
	k.fa = newFrameAllocator(cfg.Machine.Frames, reserved, rng.New(cfg.PageSeed).Split("frames"))

	k.rngKernel = rng.New(cfg.Seed).Split("kernel")
	k.rngIntr = rng.New(cfg.Seed).Split("kintr")
	k.rngVM = rng.New(cfg.Seed).Split("kvm")
	params := textwalk.DefaultParams()
	params.CallProb = 0.05
	mk := func(region textwalk.Region, label string) *textwalk.Walker {
		return textwalk.MustNew(k.rngKernel.Split(label), region, params, k.layout.helpers)
	}
	k.entryW = mk(k.layout.entry, "entry")
	k.clockW = mk(k.layout.clock, "clock")
	k.schedW = mk(k.layout.sched, "sched")
	k.vmW = mk(k.layout.vmFault, "vm")
	k.forkW = mk(k.layout.fork, "fork")
	k.softVmW = mk(k.layout.vmFault, "softvm")
	k.softSchedW = mk(k.layout.sched, "softsched")
	for i := range serviceTable {
		k.svcW[i] = mk(k.layout.services[i], fmt.Sprintf("svc-%d", i))
	}
	k.kdata = newDataGen(k.rngKernel.Split("kdata"), k.layout.data, 8<<10, 0.35)

	// Task 0 is the kernel itself.
	kt := &Task{ID: mem.KernelTask, Name: "kernel", space: newAddrSpace(pageSize)}
	k.tasks = []*Task{kt}

	if cfg.WithBSDServer {
		t := k.newTask("bsd-server", nil, false, false)
		t.Server = true
		k.servers[BSDServer] = newServer(BSDServer, t, rng.New(cfg.Seed))
	}
	if cfg.WithXServer {
		t := k.newTask("x-server", nil, false, false)
		t.Server = true
		k.servers[XServer] = newServer(XServer, t, rng.New(cfg.Seed))
	}
	return k, nil
}

// MustBoot is Boot but panics on error. Like Boot, the returned kernel
// owns pooled buffers until ReleaseBuffers.
func MustBoot(cfg Config) *Kernel {
	k, err := Boot(cfg)
	if err != nil {
		panic(err)
	}
	return k
}

// Machine returns the underlying machine.
func (k *Kernel) Machine() *mach.Machine { return k.m }

// Telemetry returns the telemetry run attached at boot (nil when
// telemetry is disabled). Tapeworm picks it up from here at Attach.
func (k *Kernel) Telemetry() *telemetry.Run { return k.cfg.Telemetry }

// ReportTelemetry snapshots kernel event totals and the per-component
// instruction split into the attached telemetry run, and has the
// machine report its own counters and timing. A no-op when telemetry is
// disabled.
func (k *Kernel) ReportTelemetry() {
	tel := k.cfg.Telemetry
	if tel == nil {
		return
	}
	k.m.ReportTelemetry()
	tel.SetCounter("instr_kernel", k.compInstr[CompKernel])
	tel.SetCounter("instr_server", k.compInstr[CompServer])
	tel.SetCounter("instr_user", k.compInstr[CompUser])
	tel.SetCounter("kernel_true_ecc_errors", k.trueECCErrs)
	tel.SetCounter("kernel_page_outs", k.pageOuts)
	tel.SetCounter("kernel_forks", k.forks)
	tel.SetCounter("kernel_exits", k.exits)
	tel.SetCounter("kernel_clock_ticks", k.ticks)
}

// SetHooks attaches a kernel-resident memory simulator (Tapeworm).
func (k *Kernel) SetHooks(h MemSimHooks) { k.hooks = h }

// ReleaseBuffers recycles this boot's pooled backing arrays — the frame
// allocator's tables and the machine's physical-memory arrays — once all
// results have been read out. The kernel must not be used afterwards.
func (k *Kernel) ReleaseBuffers() {
	if k.fa != nil {
		mem.PutFrameTables(k.fa.free, k.fa.refcount)
		k.fa = nil
	}
	k.m.ReleaseBuffers()
}

// Tracer observes the user-mode memory references of one annotated task,
// the way a Pixie-rewritten binary emits its own address trace. Like
// Pixie, a tracer sees a single task and no kernel or server activity.
type Tracer interface {
	Trace(t mem.TaskID, r mem.Ref)
}

// SetTracer annotates task tid with tr (nil removes the annotation).
func (k *Kernel) SetTracer(tid mem.TaskID, tr Tracer) {
	k.tracer = tr
	k.traceTask = tid
}

// Task returns the task with the given ID, or nil.
func (k *Kernel) Task(id mem.TaskID) *Task {
	if int(id) < len(k.tasks) {
		return k.tasks[id]
	}
	return nil
}

// Tasks returns all tasks ever created (including exited ones).
func (k *Kernel) Tasks() []*Task { return k.tasks }

// Server returns the server task of the given kind, or nil.
func (k *Kernel) Server(kind ServerKind) *Task {
	if s := k.servers[kind]; s != nil {
		return s.task
	}
	return nil
}

// ComponentOf classifies a task ID for per-component accounting.
func (k *Kernel) ComponentOf(id mem.TaskID) Component {
	if id == mem.KernelTask {
		return CompKernel
	}
	if t := k.Task(id); t != nil && t.Server {
		return CompServer
	}
	return CompUser
}

// ComponentInstructions returns instructions executed per component.
func (k *Kernel) ComponentInstructions() [NumComponents]uint64 { return k.compInstr }

// Stats bundles kernel event totals.
type Stats struct {
	TrueECCErrors uint64
	PageOuts      uint64
	Forks         uint64
	Exits         uint64
	ClockTicks    uint64
	UserSpawned   int
	UserExited    int
}

// Stats returns kernel event totals.
func (k *Kernel) Stats() Stats {
	return Stats{
		TrueECCErrors: k.trueECCErrs,
		PageOuts:      k.pageOuts,
		Forks:         k.forks,
		Exits:         k.exits,
		ClockTicks:    k.ticks,
		UserSpawned:   k.userSpawned,
		UserExited:    k.userExited,
	}
}

// newTask allocates a task structure and address space.
func (k *Kernel) newTask(name string, prog Program, simulate, inherit bool) *Task {
	t := &Task{
		ID:       mem.TaskID(len(k.tasks)),
		Name:     name,
		Simulate: simulate,
		Inherit:  inherit,
		prog:     prog,
		space:    newAddrSpace(k.cfg.Machine.PageSize),
	}
	k.tasks = append(k.tasks, t)
	return t
}

// Spawn creates a runnable workload task with the given Tapeworm
// attributes, as if started from a shell with (simulate=0, inherit=1):
// pass the attribute values the child should carry.
func (k *Kernel) Spawn(name string, prog Program, simulate, inherit bool) *Task {
	t := k.newTask(name, prog, simulate, inherit)
	k.runq = append(k.runq, t)
	k.userSpawned++
	if k.hooks != nil {
		k.hooks.TaskForked(nil, t)
	}
	return t
}

// SetAttributes implements tw_attributes(tid, simulate, inherit). A tid of
// zero signifies the kernel itself (Table 1).
func (k *Kernel) SetAttributes(id mem.TaskID, simulate, inherit bool) error {
	t := k.Task(id)
	if t == nil {
		return fmt.Errorf("kernel: no task %d", id)
	}
	t.Simulate = simulate
	t.Inherit = inherit
	return nil
}

// UserTasksAlive reports the number of live workload tasks.
func (k *Kernel) UserTasksAlive() int { return len(k.runq) }

// userRunCap bounds how many user instructions the Run loop hands to
// ExecuteRun per scheduling decision. It trades batching efficiency
// against context-switch latency: a reschedule requested mid-run takes
// effect at the next run boundary, at most userRunCap instructions later
// (a few dozen instructions against a 10⁵-cycle quantum).
const userRunCap = 64

// Run executes workload tasks until they all exit or maxInstr total
// instructions have retired (0 = no limit). It returns an error only on
// unrecoverable conditions (out of memory with nothing evictable).
func (k *Kernel) Run(maxInstr uint64) error {
	for len(k.runq) > 0 {
		if maxInstr > 0 && k.m.Instructions() >= maxInstr {
			return nil
		}
		if k.stopUser|k.stopMach != 0 && k.stopReached() {
			return nil
		}
		t := k.pick()
		var ev Event
		if bp, ok := t.prog.(BatchProgram); ok && maxInstr == 0 &&
			(k.tracer == nil || t.ID != k.traceTask) {
			// Compiled path: replay pre-planned ops straight-line until
			// the next event op or a posted reschedule. Shares the batch
			// path's guards (bypassed under an instruction limit and for
			// traced tasks).
			if cp, ok := t.prog.(CompiledProgram); ok {
				if k.runCompiled(cp, t) {
					continue
				}
				// The cursor sits on an event op (or mid-run after a
				// Next-driven stint); NextRun below yields it exactly.
			}
			// Batched path: take whole sequential fetch runs. Bypassed
			// under an instruction limit (a bulk charge could overshoot
			// the per-reference stop point) and for a traced task (the
			// tracer must observe every reference).
			base, n, bev := bp.NextRun(userRunCap)
			if n > 0 {
				t.Instructions += uint64(n)
				k.compInstr[CompUser] += uint64(n)
				k.m.ExecuteRun(t.ID, base, n)
				continue
			}
			ev = bev
		} else {
			ev = t.prog.Next()
		}
		switch ev.Kind {
		case EvRef:
			if ev.Ref.Kind == mem.IFetch {
				t.Instructions++
				k.compInstr[CompUser]++
			}
			if k.tracer != nil && t.ID == k.traceTask {
				k.tracer.Trace(t.ID, ev.Ref)
			}
			k.m.Execute(t.ID, ev.Ref)
		case EvSyscall:
			if ev.Service < 0 || ev.Service >= numServices {
				return fmt.Errorf("kernel: task %d invoked unknown service %d", t.ID, ev.Service)
			}
			k.syscall(t, ev.Service)
		case EvFork:
			k.fork(t, ev.Child, ev.ShareText)
		case EvExit:
			k.exit(t)
		default:
			return fmt.Errorf("kernel: task %d emitted unknown event kind %d", t.ID, ev.Kind)
		}
	}
	return nil
}

// stopReached reports whether a RunUntilUser/RunUntilInstr target has
// been met.
func (k *Kernel) stopReached() bool {
	return (k.stopUser > 0 && k.compInstr[CompUser] >= k.stopUser) ||
		(k.stopMach > 0 && k.m.Instructions() >= k.stopMach)
}

// RunUntilUser executes until at least target user-component instructions
// have retired (or all workload tasks exit). The stop lands on a
// compiled-op or scheduling boundary — a deterministic point of the
// stream, at most CompiledRunCap user instructions past the target — and,
// unlike Run's maxInstr limit, the compiled and batched fast paths stay
// engaged, so fast-forwarding to a checkpoint boundary runs at full
// replay speed.
func (k *Kernel) RunUntilUser(target uint64) error {
	if k.compInstr[CompUser] >= target {
		return nil
	}
	k.stopUser = target
	err := k.Run(0)
	k.stopUser = 0
	return err
}

// RunUntilInstr is RunUntilUser over total retired machine instructions
// (user + server + kernel), the clock core.Window measures against.
func (k *Kernel) RunUntilInstr(target uint64) error {
	if k.m.Instructions() >= target {
		return nil
	}
	k.stopMach = target
	err := k.Run(0)
	k.stopMach = 0
	return err
}

// UserInstructions returns the retired user-component instruction count —
// the axis interval boundaries are defined on.
func (k *Kernel) UserInstructions() uint64 { return k.compInstr[CompUser] }

// runCompiled replays t's pre-compiled ops until the next event op or a
// posted reschedule, reporting whether it executed anything. Skipping
// pick() between ops is exact: with no reschedule posted and the run
// queue unchanged (forks, exits and syscalls are all event ops, which
// break the loop), pick() would return the same task untouched. The
// reschedule check sits after every op, exactly where the interpreter
// loop's per-batch pick() call observes it.
func (k *Kernel) runCompiled(cp CompiledProgram, t *Task) bool {
	pos, aligned := cp.OpPos()
	if !aligned {
		return false
	}
	ops := cp.Ops()
	start := pos
	checkStop := k.stopUser|k.stopMach != 0
	for pos < len(ops) {
		op := &ops[pos]
		if op.Kind == OpRun {
			t.Instructions += uint64(op.N)
			k.compInstr[CompUser] += uint64(op.N)
			k.m.ExecuteRun(t.ID, op.VA, int(op.N))
		} else if op.Kind == OpData {
			k.m.Execute(t.ID, mem.Ref{VA: op.VA, Kind: op.Ref})
		} else {
			break
		}
		pos++
		if k.resched {
			break
		}
		if checkStop && k.stopReached() {
			break
		}
	}
	if pos == start {
		return false
	}
	cp.SeekOp(pos)
	return true
}

// pick returns the task to run next, performing a context switch when the
// scheduler has requested one.
func (k *Kernel) pick() *Task {
	if k.cur >= len(k.runq) {
		k.cur = 0
	}
	if k.resched && len(k.runq) > 1 {
		k.resched = false
		k.cur = (k.cur + 1) % len(k.runq)
		// No translation invalidation: memo entries are task-keyed and a
		// switch changes no page table; the host TLB is task-tagged too,
		// so residency guarantees survive. Any line or TLB eviction the
		// switch code below causes is caught by the displaced-key drops.
		k.kexec(k.schedW, kSwitchLen)
	} else {
		k.resched = false
	}
	return k.runq[k.cur]
}

// kexecRunCap bounds the walker run length pulled per NextRun call in the
// kernel execution loops, so a long straight-line stretch still interleaves
// its data references at a realistic cadence.
const kexecRunCap = 64

// kexec executes n process-level kernel instructions from walker w, with
// the configured kernel data-reference mix.
func (k *Kernel) kexec(w *textwalk.Walker, n int) {
	k.kexecSrc(w, n, k.rngKernel)
}

// kexecIntr is kexec at interrupt level, drawing the data mix from the
// interrupt stream so a handler never perturbs the draws of the code it
// preempted.
func (k *Kernel) kexecIntr(w *textwalk.Walker, n int) {
	k.kexecSrc(w, n, k.rngIntr)
}

// kexecVM is kexec on the VM fault path (page fault and page-out), which
// nests inside user and server execution the same way.
func (k *Kernel) kexecVM(w *textwalk.Walker, n int) {
	k.kexecSrc(w, n, k.rngVM)
}

// kexecSrc executes n kernel instructions from walker w, drawing the data
// reference mix from src. Sequential fetch stretches go to ExecuteRun in
// one call; each stretch ends where a data reference fires so the
// instruction/data interleaving is preserved per instruction.
func (k *Kernel) kexecSrc(w *textwalk.Walker, n int, src *rng.Source) {
	p := k.cfg.KernelDataRefs
	for n > 0 {
		lim := n
		if lim > kexecRunCap {
			lim = kexecRunCap
		}
		base, run := w.NextRun(lim)
		n -= run
		for run > 0 {
			d := 0
			data := false
			for d < run {
				d++
				if p > 0 && src.Bool(p) {
					data = true
					break
				}
			}
			k.compInstr[CompKernel] += uint64(d)
			k.m.ExecuteRun(mem.KernelTask, base, d)
			base += mem.VAddr(4 * d)
			run -= d
			if data {
				k.m.Execute(mem.KernelTask, k.kdata.next())
			}
		}
	}
}

// syscall runs one kernel service invocation, including any server-side
// handling, synchronously on behalf of t.
func (k *Kernel) syscall(t *Task, svc ServiceID) {
	if svc < 0 || svc >= numServices {
		panic(fmt.Sprintf("kernel: bad service %d", svc))
	}
	d := &serviceTable[svc]
	k.kexec(k.entryW, kEntryLen)

	masked := int(float64(d.pathLen) * d.maskedFrac)
	k.kexec(k.svcW[svc], d.pathLen-masked)
	if masked > 0 {
		// Critical section: interrupts off. ECC traps raised by these
		// references are lost — the masking bias of Section 4.2.
		k.m.SetIntMasked(true)
		k.kexec(k.svcW[svc], masked)
		k.m.SetIntMasked(false)
	}

	if d.server != NoServer {
		srv := k.servers[d.server]
		if srv != nil {
			k.kexec(k.entryW, kIPCLen)
			k.serverHandle(srv, svc, d.serverLen)
			k.kexec(k.entryW, kIPCLen)
		}
	}
	if svc == SvcRead || svc == SvcWrite {
		k.deviceDMA(t, svc)
	}
	k.kexec(k.entryW, kExitLen)
}

// deviceDMA models the I/O transfer behind the read and write fast paths:
// a device DMAs into (read) or out of (write) the caller's buffer. On
// machines with predictable DMA, the kernel brackets the transfer with
// tw_remove_page/tw_register_page so the simulator's traps never meet the
// device — the workaround the 5000/200 port used. Machines without that
// property (the 5000/240) silently destroy traps on DMA writes and take
// spurious faults on DMA reads of trapped buffers; the machine counts
// both (Section 4.3).
func (k *Kernel) deviceDMA(t *Task, svc ServiceID) {
	const xfer = 512 // bytes per transfer
	va := DataBase   // the caller's first data page serves as I/O buffer
	pa, ok := k.ResidentPA(t.ID, va)
	if !ok {
		return // no buffer established yet
	}
	// DMA moves data, not page tables: no memoized translation goes
	// stale here. Host-cache effects (destroyed lines, destroyed traps)
	// are handled inside DMAWrite via FlushHostLine, which aborts any
	// batched run through the generation counter.
	bracket := k.cfg.Machine.PredictableDMA && t.Simulate && k.hooks != nil
	if bracket {
		k.hooks.PageRemoved(t.ID, pa, va)
	}
	if svc == SvcRead {
		k.m.DMAWrite(pa, xfer)
	} else {
		k.m.DMARead(pa, xfer)
	}
	if bracket {
		k.hooks.PageRegistered(t.ID, pa, va, mem.Load)
	}
}

// serverHandle executes one request in the server task's context.
func (k *Kernel) serverHandle(s *server, svc ServiceID, n int) {
	w := s.walkers[svc]
	if w == nil {
		panic(fmt.Sprintf("kernel: %v has no handler for %v", s.kind, svc))
	}
	if k.cfg.ServerFragBytesPerReq > 0 {
		s.data.grow(uint32(k.cfg.ServerFragBytesPerReq))
	}
	for n > 0 {
		lim := n
		if lim > kexecRunCap {
			lim = kexecRunCap
		}
		base, run := w.NextRun(lim)
		n -= run
		for run > 0 {
			d := 0
			data := false
			for d < run {
				d++
				if k.rngKernel.Bool(s.dataP) {
					data = true
					break
				}
			}
			s.task.Instructions += uint64(d)
			k.compInstr[CompServer] += uint64(d)
			k.m.ExecuteRun(s.task.ID, base, d)
			base += mem.VAddr(4 * d)
			run -= d
			if data {
				k.m.Execute(s.task.ID, s.data.next())
			}
		}
	}
}

// fork implements task creation with Tapeworm attribute inheritance:
//
//	child.simulate <- parent.inherit
//	child.inherit  <- parent.inherit
//
// The child shares the parent's text pages (reference-counted); data and
// stack pages are faulted privately.
func (k *Kernel) fork(parent *Task, childProg Program, shareText bool) {
	k.kexec(k.forkW, kForkLen)
	child := k.newTask(parent.Name+"+", childProg, parent.Inherit, parent.Inherit)
	child.Parent = parent.ID

	if shareText {
		// Share text mappings: the same physical page gains a second
		// virtual mapping, which must still be registered with the
		// simulator so it can reference-count shared entries (Section
		// 3.2) — a new task benefits from lines brought into a
		// physically-indexed cache by its sibling, as on a real system.
		k.m.InvalidateTranslation()
		pageSize := uint32(k.cfg.Machine.PageSize)
		parent.space.pages(func(vpn uint32, p pte) {
			va := mem.VAddr(vpn) * mem.VAddr(pageSize)
			if va >= DataBase || !p.resident() {
				return
			}
			k.fa.share(p.frame())
			child.space.set(vpn, p|pteShared|pteValid)
			child.space.mapped++
			k.resident.push(child.ID, vpn)
			if child.Simulate && k.hooks != nil {
				k.hooks.PageRegistered(child.ID, mem.PAddr(p.frame()*pageSize), va, mem.IFetch)
			}
		})
	}

	k.runq = append(k.runq, child)
	k.userSpawned++
	k.forks++
	if k.hooks != nil {
		k.hooks.TaskForked(parent, child)
	}
}

// exit tears a task down: every mapping is removed (with PageRemoved hooks
// so Tapeworm can flush the simulated cache, mirroring the host machine's
// behaviour on unmapping), frames are released, and the task leaves the
// run queue.
func (k *Kernel) exit(t *Task) {
	k.kexec(k.entryW, kExitTaskLen)
	// The exiting task's frames return to the allocator; its memoized
	// translations must die before any frame is handed to another task.
	k.m.InvalidateTranslation()
	pageSize := uint32(k.cfg.Machine.PageSize)
	t.space.pages(func(vpn uint32, p pte) {
		if !p.resident() {
			return
		}
		pa := mem.PAddr(p.frame() * pageSize)
		va := mem.VAddr(vpn) * mem.VAddr(pageSize)
		// Removal is unconditional: even if tw_attributes cleared the
		// simulate bit after pages were registered, the simulator must
		// see the unmapping or its per-frame state goes stale (the hook
		// ignores mappings it never registered).
		if k.hooks != nil {
			k.hooks.PageRemoved(t.ID, pa, va)
		}
		k.fa.release(p.frame())
	})
	t.space = newAddrSpace(int(pageSize))
	t.State = Exited
	for i, rt := range k.runq {
		if rt == t {
			k.runq = append(k.runq[:i], k.runq[i+1:]...)
			if k.cur > i {
				k.cur--
			}
			break
		}
	}
	k.userExited++
	k.exits++
	if k.hooks != nil {
		k.hooks.TaskExited(t.ID)
	}
}

// --- mach.OS implementation ---

// Translate resolves a user virtual address through the task's page table.
func (k *Kernel) Translate(t mem.TaskID, va mem.VAddr, _ mem.RefKind) (mem.PAddr, bool) {
	task := k.Task(t)
	if task == nil {
		return 0, false
	}
	return task.space.Translate(va)
}

// PageFault services a translation failure: either a page-valid-bit trap
// planted by Tapeworm's TLB mode (resident but invalid), or a demand fill.
func (k *Kernel) PageFault(t mem.TaskID, va mem.VAddr, kind mem.RefKind) (mem.PAddr, bool) {
	task := k.Task(t)
	if task == nil {
		return 0, false
	}
	as := task.space
	vpn := as.vpn(va)
	p := as.lookup(vpn)
	pageSize := uint32(k.cfg.Machine.PageSize)

	if p.resident() && !p.valid() {
		// The page is really in memory; the valid bit was cleared to
		// force this trap. Hand it to the simulator.
		pa := mem.PAddr(p.frame()*pageSize) + mem.PAddr(uint32(va)&(pageSize-1))
		if k.hooks != nil && k.hooks.InvalidPageTrap(t, va, mem.PAddr(p.frame()*pageSize), kind) {
			return pa, true
		}
		// No simulator claimed it; restore validity ourselves.
		as.set(vpn, p|pteValid)
		return pa, true
	}

	// Demand fill through the VM fault path.
	k.kexecVM(k.vmW, kFaultLen)
	frame, ok := k.fa.alloc()
	for !ok {
		if !k.evictOnePage() {
			return 0, false // out of memory, nothing evictable
		}
		frame, ok = k.fa.alloc()
	}
	as.set(vpn, pte(frame)|pteValid|pteResident)
	as.mapped++
	k.resident.push(t, vpn)
	pa0 := mem.PAddr(frame * pageSize)
	va0 := mem.VAddr(vpn) * mem.VAddr(pageSize)
	if task.Simulate && k.hooks != nil {
		// "After the page is marked valid by the VM system,
		// tw_register_page() sets traps on all memory locations in the
		// page" (Section 3.2).
		k.hooks.PageRegistered(t, pa0, va0, kind)
	}
	return pa0 + mem.PAddr(uint32(va)&(pageSize-1)), true
}

// evictOnePage pages out the oldest resident page (FIFO), returning false
// when nothing can be evicted.
func (k *Kernel) evictOnePage() bool {
	pageSize := uint32(k.cfg.Machine.PageSize)
	for {
		e, ok := k.resident.pop()
		if !ok {
			return false
		}
		task := k.Task(e.tid)
		if task == nil || task.State == Exited {
			continue
		}
		p := task.space.lookup(e.vpn)
		if !p.resident() {
			continue
		}
		k.kexecVM(k.vmW, kPageOutLen)
		pa := mem.PAddr(p.frame() * pageSize)
		va := mem.VAddr(e.vpn) * mem.VAddr(pageSize)
		// Only this task's mapping of this page changes; every other
		// memoized translation still matches its page-table entry.
		k.m.InvalidatePage(e.tid, va)
		if k.hooks != nil {
			k.hooks.PageRemoved(e.tid, pa, va)
		}
		k.fa.release(p.frame())
		task.space.set(e.vpn, 0)
		task.space.mapped--
		k.pageOuts++
		return true
	}
}

// ECCTrap routes a memory-error trap: Tapeworm traps go to the simulator,
// true errors are corrected (single-bit) or recorded (double-bit) by the
// kernel, exactly the discrimination of Section 3.2 footnote 1.
func (k *Kernel) ECCTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, kind mem.RefKind) {
	if k.hooks != nil && k.hooks.ECCTrap(t, va, pa, kind) {
		return
	}
	k.trueECCErrs++
	k.m.Phys().CorrectWord(pa)
}

// BreakpointTrap routes an instruction breakpoint to the simulator.
func (k *Kernel) BreakpointTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr) {
	if k.hooks != nil {
		k.hooks.BreakpointTrap(t, va, pa)
	}
}

// ClockInterrupt runs the timer handler: interrupt path instructions
// (masked, as on real hardware) and scheduler bookkeeping. More elapsed
// cycles mean more of these per workload instruction — the time-dilation
// mechanism of Figure 4.
func (k *Kernel) ClockInterrupt() {
	if k.inClock {
		return // coalesce ticks raised while handling a tick
	}
	k.inClock = true
	k.ticks++
	k.m.SetIntMasked(true)
	k.kexecIntr(k.clockW, kIntrLen)
	k.m.SetIntMasked(false)
	// Softclock: every few ticks the deferred half runs — callout queues,
	// statistics, page-ager scans — touching a broader slice of kernel
	// text and data. This work scales with elapsed *time*, so a dilated
	// system pays proportionally more of it; it is the dominant term in
	// the time-dilation bias of Figure 4.
	if k.ticks%2 == 0 {
		k.kexecIntr(k.softVmW, kSoftclockLen)
		k.kexecIntr(k.softSchedW, kSoftclockLen/2)
	}
	if k.cfg.QuantumTicks > 0 && k.ticks%uint64(k.cfg.QuantumTicks) == 0 {
		k.resched = true
	}
	k.inClock = false
}

// --- Support for Tapeworm's machine-dependent layers ---

// ForEachKernelPage enumerates the kernel's kseg0 pages (text regions and
// the data region) so tw_attributes(0, 1, _) can register them.
func (k *Kernel) ForEachKernelPage(fn func(pa mem.PAddr, va mem.VAddr, kind mem.RefKind)) {
	pageSize := mem.VAddr(k.cfg.Machine.PageSize)
	dataStart := k.layout.data.Base
	for va := mach.KernelBase; va < k.layout.textEnd; va += pageSize {
		kind := mem.IFetch
		if va >= dataStart {
			kind = mem.Load
		}
		fn(mem.PAddr(va-mach.KernelBase), va, kind)
	}
}

// SetPageValid flips the hardware valid bit of a resident page without
// touching the software resident bit: the page-valid-bit trap primitive
// used for TLB simulation. It fails if the page is not resident.
func (k *Kernel) SetPageValid(t mem.TaskID, va mem.VAddr, valid bool) error {
	task := k.Task(t)
	if task == nil {
		return fmt.Errorf("kernel: no task %d", t)
	}
	vpn := task.space.vpn(va)
	p := task.space.lookup(vpn)
	if !p.resident() {
		return fmt.Errorf("kernel: task %d page %#x not resident", t, va)
	}
	// A cleared valid bit is a planted trap; a memoized translation would
	// let the fast path sail past it. Setting it changes translations too.
	// The flip touches exactly one page-table entry, and the simulator
	// replants a trap on every simulated miss — a full memo flush here
	// would fire thousands of times per instrumented run.
	k.m.InvalidatePage(t, va)
	if valid {
		task.space.set(vpn, p|pteValid)
	} else {
		task.space.set(vpn, p&^pteValid)
	}
	return nil
}

// ResidentPA returns the physical page address of a resident page (even
// if its valid bit is cleared), for the simulator's bookkeeping.
func (k *Kernel) ResidentPA(t mem.TaskID, va mem.VAddr) (mem.PAddr, bool) {
	task := k.Task(t)
	if task == nil {
		return 0, false
	}
	p := task.space.lookup(task.space.vpn(va))
	if !p.resident() {
		return 0, false
	}
	return mem.PAddr(p.frame() * uint32(k.cfg.Machine.PageSize)), true
}

// KernelTextPages returns the number of pages the kernel image occupies.
func (k *Kernel) KernelTextPages() int {
	return k.layout.kernelFrames(k.cfg.Machine.PageSize)
}
