// Package workload synthesizes the paper's eight benchmark workloads
// (Table 3) as deterministic reference-stream generators with the
// instruction mixes, OS-interaction rates, and task-fork structure of
// Table 4, scaled down ~100x in instruction count so the full evaluation
// suite runs in minutes (the scale is a parameter; ratios are unaffected).
//
// The generators run as kernel Programs: they emit user instruction
// fetches with program-like locality (package textwalk), data references
// over a hot/cold footprint, syscalls into the kernel and the BSD/X
// servers at rates solved from the paper's per-component time fractions,
// and fork trees of up to 281 tasks.
package workload

import (
	"fmt"

	"tapeworm/internal/kernel"
)

// DefaultScale divides the paper's instruction counts. At 100, mpeg_play
// executes ~14.2M instructions instead of 1,423M.
const DefaultScale = 100

// Spec describes one workload. The exported fields mirror what the paper
// reports (Tables 3 and 4) plus the locality parameters that shape the
// miss-ratio-versus-cache-size curves.
type Spec struct {
	Name        string
	Description string

	// PaperInstructions is the paper's Table 4 instruction count (all
	// components), in millions. Scale divides it.
	PaperInstructions float64
	Scale             float64

	// Target time/instruction fractions per component (Table 4).
	FracKernel, FracBSD, FracX, FracUser float64

	// User-code locality model.
	TextBytes uint32  // program text footprint
	Procs     int     // procedures the text divides into
	ZipfSkew  float64 // procedure popularity skew
	VisitLen  int     // instructions per procedure visit
	PhaseLen  uint64  // user instructions per working-set phase (0 = one phase)

	// Data reference model.
	DataBytes        uint32
	DataHotBytes     uint32
	DataRefsPerInstr float64
	StoreFrac        float64
	StreamFrac       float64 // fraction of data refs that stream sequentially

	// Which services represent this workload's kernel, BSD-server and
	// X-server interactions.
	KernelSvc, BSDSvc, XSvc kernel.ServiceID

	// Fork-tree structure (Table 4 User Task Count).
	Tasks          int  // total user tasks including the root
	ChildShareText bool // classic fork (share text) vs fork+exec
	ForkDepth      int  // 1: root forks all children; 2: two-level tree
	RootWorkFrac   float64
}

// Validate checks spec consistency.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: unnamed spec")
	}
	if s.PaperInstructions <= 0 || s.Scale <= 0 {
		return fmt.Errorf("workload %s: non-positive instruction count or scale", s.Name)
	}
	f := s.FracKernel + s.FracBSD + s.FracX + s.FracUser
	if f < 0.99 || f > 1.01 {
		return fmt.Errorf("workload %s: component fractions sum to %v, want 1", s.Name, f)
	}
	if s.TextBytes < 1024 || s.Procs < 1 {
		return fmt.Errorf("workload %s: text too small or no procedures", s.Name)
	}
	if s.Tasks < 1 {
		return fmt.Errorf("workload %s: task count %d", s.Name, s.Tasks)
	}
	if s.ForkDepth < 1 || s.ForkDepth > 2 {
		return fmt.Errorf("workload %s: fork depth %d unsupported", s.Name, s.ForkDepth)
	}
	if s.RootWorkFrac <= 0 || s.RootWorkFrac > 1 {
		return fmt.Errorf("workload %s: root work fraction %v", s.Name, s.RootWorkFrac)
	}
	// The rate solver attributes KernelSvc cost entirely to the kernel;
	// a server-backed service there would add server time no fraction
	// accounts for.
	if kernel.ServerOf(s.KernelSvc) != kernel.NoServer {
		return fmt.Errorf("workload %s: KernelSvc %v is server-backed; use BSDSvc/XSvc for server traffic",
			s.Name, s.KernelSvc)
	}
	return nil
}

// TotalInstructions returns the scaled all-component instruction target.
func (s Spec) TotalInstructions() uint64 {
	return uint64(s.PaperInstructions * 1e6 / s.Scale)
}

// UserInstructions returns the scaled user-component instruction target.
func (s Spec) UserInstructions() uint64 {
	return uint64(float64(s.TotalInstructions()) * s.FracUser)
}

// UsesX reports whether the workload sends requests to the X server.
func (s Spec) UsesX() bool { return s.FracX > 0 }

// fixedKernelInstr estimates the kernel instructions a run spends on task
// management rather than syscall service: forks, exits, and VM page
// faults. These costs are per-event, so at reduced workload scales they
// loom larger; the rate solver subtracts them from the kernel budget.
func (s Spec) fixedKernelInstr() float64 {
	forkC, exitC, faultC := kernel.FixedTaskCosts()
	const ps = 4096
	pages := func(b uint32) int { return int((b + ps - 1) / ps) }

	// Every task faults its text, its hot data, and a couple of stack
	// pages. Only the root streams over the full data footprint; children
	// are confined to the hot subset (they model short-lived utilities),
	// with cold coverage bounded by how many cold references the root
	// issues.
	rootInstr := float64(s.UserInstructions()) * s.RootWorkFrac
	coldRefs := int(rootInstr * s.DataRefsPerInstr * (0.2 + s.StreamFrac))
	coldPages := pages(s.DataBytes) - pages(s.DataHotBytes)
	if coldRefs < coldPages {
		coldPages = coldRefs
	}
	perTaskBase := pages(s.TextBytes) + pages(s.DataHotBytes) + 2
	faults := float64(s.Tasks*perTaskBase) + float64(coldPages)
	return float64(s.Tasks*(forkC+exitC)) + faults*float64(faultC)
}

// rates solves per-user-instruction syscall rates from the component
// fractions and the kernel's published service costs, so that the
// generated run lands near the Table 4 distribution. Interrupt handling
// and context switches add a little extra kernel time on top;
// EXPERIMENTS.md reports the measured result.
func (s Spec) rates() (prob float64, cum [3]float64, svcs [3]kernel.ServiceID) {
	svcs = [3]kernel.ServiceID{s.KernelSvc, s.BSDSvc, s.XSvc}
	if s.FracUser <= 0 {
		panic("workload: zero user fraction")
	}
	kcK, _ := kernel.ServiceCosts(s.KernelSvc)
	kcB, scB := kernel.ServiceCosts(s.BSDSvc)
	kcX, scX := kernel.ServiceCosts(s.XSvc)

	var rB, rX float64
	if s.FracBSD > 0 && scB > 0 {
		rB = (s.FracBSD / s.FracUser) / float64(scB)
	}
	if s.FracX > 0 && scX > 0 {
		rX = (s.FracX / s.FracUser) / float64(scX)
	}
	kernelBudget := s.FracKernel*float64(s.TotalInstructions()) - s.fixedKernelInstr()
	if kernelBudget < 0 {
		kernelBudget = 0
	}
	kFromServers := rB*float64(kcB) + rX*float64(kcX)
	rK := (kernelBudget/float64(s.UserInstructions()) - kFromServers) / float64(kcK)
	if rK < 0 {
		rK = 0
	}
	total := rK + rB + rX
	if total <= 0 {
		return 0, cum, svcs // no syscalls at all
	}
	if total > 0.5 {
		total = 0.5 // never more syscalls than instructions
	}
	cum[0] = rK / total
	cum[1] = cum[0] + rB/total
	cum[2] = 1
	return total, cum, svcs
}

// Specs returns the paper's eight workloads (Table 3/Table 4) at the given
// scale divisor (use DefaultScale for the standard evaluation).
func Specs(scale float64) []Spec {
	mk := func(s Spec) Spec {
		s.Scale = scale
		if s.KernelSvc == kernel.SvcNull {
			s.KernelSvc = kernel.SvcRead // default kernel-only service
		}
		if err := s.Validate(); err != nil {
			panic(err)
		}
		return s
	}
	return []Spec{
		mk(Spec{
			Name:              "xlisp",
			Description:       "Lisp interpreter solving 8-queens (SPEC92)",
			PaperInstructions: 1412,
			FracKernel:        0.073, FracBSD: 0.071, FracX: 0.0, FracUser: 0.856,
			// The interpreter's dispatch loop cycles through an 8 KB
			// core: it thrashes a 4 KB cache but "performs much better
			// in a cache only slightly larger" (Section 4.2).
			TextBytes: 16 << 10, Procs: 4, ZipfSkew: 0.4, VisitLen: 160,
			DataBytes: 640 << 10, DataHotBytes: 48 << 10,
			DataRefsPerInstr: 0.38, StoreFrac: 0.30,
			KernelSvc: kernel.SvcVM, BSDSvc: kernel.SvcBSDFile, XSvc: kernel.SvcXRender,
			Tasks: 1, ForkDepth: 1, RootWorkFrac: 1,
		}),
		mk(Spec{
			Name:              "espresso",
			Description:       "Boolean function minimization (SPEC92)",
			PaperInstructions: 534,
			FracKernel:        0.029, FracBSD: 0.019, FracX: 0.0, FracUser: 0.951,
			TextBytes: 4 << 10, Procs: 4, ZipfSkew: 1.2, VisitLen: 500,
			DataBytes: 256 << 10, DataHotBytes: 24 << 10,
			DataRefsPerInstr: 0.33, StoreFrac: 0.20,
			BSDSvc: kernel.SvcBSDFile, XSvc: kernel.SvcXRender,
			Tasks: 1, ForkDepth: 1, RootWorkFrac: 1,
		}),
		mk(Spec{
			Name:              "eqntott",
			Description:       "Boolean equation to truth table (SPEC92)",
			PaperInstructions: 1306,
			FracKernel:        0.015, FracBSD: 0.012, FracX: 0.0, FracUser: 0.972,
			// Dominated by one tight comparison loop: near-zero I-misses.
			TextBytes: 3 << 10, Procs: 2, ZipfSkew: 1.5, VisitLen: 2200,
			DataBytes: 1 << 20, DataHotBytes: 16 << 10,
			DataRefsPerInstr: 0.42, StoreFrac: 0.10, StreamFrac: 0.5,
			BSDSvc: kernel.SvcBSDFile, XSvc: kernel.SvcXRender,
			Tasks: 1, ForkDepth: 1, RootWorkFrac: 1,
		}),
		mk(Spec{
			Name:              "mpeg_play",
			Description:       "Berkeley mpeg_play 2.0 decoding 610 frames",
			PaperInstructions: 1423,
			FracKernel:        0.241, FracBSD: 0.273, FracX: 0.040, FracUser: 0.446,
			// Decode pipeline cycling over ~32 KB of text (Table 9:
			// page-allocation variance peaks at 32K, "roughly the size
			// of program text used by mpeg_play").
			TextBytes: 32 << 10, Procs: 14, ZipfSkew: 0.55, VisitLen: 260,
			PhaseLen:  1 << 19,
			DataBytes: 1536 << 10, DataHotBytes: 64 << 10,
			DataRefsPerInstr: 0.35, StoreFrac: 0.25, StreamFrac: 0.6,
			BSDSvc: kernel.SvcBSDFile, XSvc: kernel.SvcXRender,
			Tasks: 1, ForkDepth: 1, RootWorkFrac: 1,
		}),
		mk(Spec{
			Name:              "jpeg_play",
			Description:       "xloadimage displaying four JPEG images",
			PaperInstructions: 1793,
			FracKernel:        0.091, FracBSD: 0.094, FracX: 0.026, FracUser: 0.788,
			TextBytes: 4608, Procs: 4, ZipfSkew: 1.0, VisitLen: 700,
			PhaseLen:  1 << 20,
			DataBytes: 1 << 20, DataHotBytes: 32 << 10,
			DataRefsPerInstr: 0.36, StoreFrac: 0.22, StreamFrac: 0.55,
			BSDSvc: kernel.SvcBSDFile, XSvc: kernel.SvcXRender,
			Tasks: 1, ForkDepth: 1, RootWorkFrac: 1,
		}),
		mk(Spec{
			Name:              "ousterhout",
			Description:       "Ousterhout's OS benchmark suite",
			PaperInstructions: 567,
			FracKernel:        0.480, FracBSD: 0.314, FracX: 0.0, FracUser: 0.206,
			TextBytes: 10 << 10, Procs: 6, ZipfSkew: 0.8, VisitLen: 120,
			DataBytes: 512 << 10, DataHotBytes: 16 << 10,
			DataRefsPerInstr: 0.34, StoreFrac: 0.35,
			KernelSvc: kernel.SvcWrite, BSDSvc: kernel.SvcBSDProc, XSvc: kernel.SvcXRender,
			Tasks: 15, ChildShareText: true, ForkDepth: 1, RootWorkFrac: 0.2,
		}),
		mk(Spec{
			Name:              "sdet",
			Description:       "SPEC SDM multiprocess system benchmark",
			PaperInstructions: 823,
			FracKernel:        0.437, FracBSD: 0.355, FracX: 0.0, FracUser: 0.208,
			// 281 short-lived tasks exec'ing distinct programs: heavy
			// compulsory misses and fork-tree inheritance.
			TextBytes: 8 << 10, Procs: 4, ZipfSkew: 0.7, VisitLen: 180,
			DataBytes: 128 << 10, DataHotBytes: 16 << 10,
			DataRefsPerInstr: 0.33, StoreFrac: 0.30,
			KernelSvc: kernel.SvcProcess, BSDSvc: kernel.SvcBSDExec, XSvc: kernel.SvcXRender,
			Tasks: 281, ChildShareText: false, ForkDepth: 2, RootWorkFrac: 0.05,
		}),
		mk(Spec{
			Name:              "kenbus",
			Description:       "SPEC SDM simulated software-development users",
			PaperInstructions: 176,
			FracKernel:        0.489, FracBSD: 0.291, FracX: 0.0, FracUser: 0.220,
			TextBytes: 6 << 10, Procs: 4, ZipfSkew: 0.7, VisitLen: 150,
			DataBytes: 96 << 10, DataHotBytes: 12 << 10,
			DataRefsPerInstr: 0.32, StoreFrac: 0.30,
			KernelSvc: kernel.SvcRead, BSDSvc: kernel.SvcBSDExec, XSvc: kernel.SvcXRender,
			Tasks: 238, ChildShareText: false, ForkDepth: 2, RootWorkFrac: 0.05,
		}),
	}
}

// ByName returns the named spec at the given scale.
func ByName(name string, scale float64) (Spec, error) {
	for _, s := range Specs(scale) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists the workload names in Table 3 order.
func Names() []string {
	specs := Specs(DefaultScale)
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
