package workload

import (
	"fmt"

	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
	"tapeworm/internal/textwalk"
)

// program is the kernel.Program implementation for a workload task. Its
// stream is a deterministic function of (spec, seed, task label): it never
// consults machine or kernel state, so single-task virtually-indexed
// simulations are exactly reproducible regardless of scheduling — the
// property the paper's validation against Cache2000 relies on.
type program struct {
	spec *Spec
	r    *rng.Source

	remaining uint64 // user instructions still to emit
	exited    bool

	// Text walk: one walker per procedure, Zipf-selected per visit, with
	// a per-phase permutation so working sets drift over time.
	procs     []*textwalk.Walker
	zipf      *rng.Zipf
	perm      []int
	cur       *textwalk.Walker
	visitLeft int
	phaseLeft uint64

	// Data references.
	dataR       *rng.Source
	pendingData bool
	pending     mem.Ref
	streamPos   uint32

	// Current pre-drawn walker run (see NextRun): the walker has already
	// committed to these sequential fetches; slots consume them one
	// address at a time. pendingSvc defers a syscall event whose
	// probability draw fired while a run was open.
	runBase    mem.VAddr
	runLeft    int
	pendingSvc bool

	// Syscalls occur with probability syscallProb per user instruction —
	// probabilistic rather than counted, so tasks shorter than the mean
	// interval still issue their expected share (the sdet/kenbus fork
	// trees run thousands of very short tasks).
	syscallProb float64
	mixCum      [3]float64
	mixSvc      [3]kernel.ServiceID

	// Forking.
	forksLeft  int
	forkEvery  uint64
	sinceFork  uint64
	childIndex int
	makeChild  func(i int) kernel.Program
}

// New builds the root Program for spec, seeded by seed. The root forks the
// spec's fork tree as it runs.
func New(spec Spec, seed uint64) (kernel.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := spec // private copy
	userTotal := s.UserInstructions()
	rootInstr := uint64(float64(userTotal) * s.RootWorkFrac)

	var directChildren, grandPerChild int
	childCount := s.Tasks - 1
	if childCount > 0 {
		if s.ForkDepth == 2 && childCount >= 4 {
			// Two-level tree: sqrt-ish split, e.g. 280 -> 16 children
			// each forking ~16 grandchildren.
			directChildren = isqrt(childCount)
			grandPerChild = (childCount - directChildren) / directChildren
			// Remainder is absorbed by giving the first children one
			// extra grandchild each.
		} else {
			directChildren = childCount
		}
	}
	childWork := uint64(0)
	if childCount > 0 {
		childWork = (userTotal - rootInstr) / uint64(childCount)
		if childWork == 0 {
			childWork = 1
		}
	}

	// Syscall rates are solved once, from the whole-workload spec, and
	// shared by every task in the tree.
	prob, cum, svcs := s.rates()
	cs := childSpec(&s)
	root := newProgram(&s, rng.New(seed).Split("task-root"), rootInstr)
	root.syscallProb, root.mixCum, root.mixSvc = prob, cum, svcs
	if directChildren > 0 {
		extra := 0
		if s.ForkDepth == 2 {
			extra = (childCount - directChildren) - grandPerChild*directChildren
		}
		root.forksLeft = directChildren
		root.forkEvery = maxu64(rootInstr/uint64(directChildren+1), 1)
		root.makeChild = func(i int) kernel.Program {
			label := fmt.Sprintf("task-%d", i)
			gc := 0
			if s.ForkDepth == 2 {
				gc = grandPerChild
				if i < extra {
					gc++
				}
			}
			c := newProgram(cs, rng.New(seed).Split(label), childWork)
			c.syscallProb, c.mixCum, c.mixSvc = prob, cum, svcs
			if gc > 0 {
				c.forksLeft = gc
				c.forkEvery = maxu64(childWork/uint64(gc+1), 1)
				c.makeChild = func(j int) kernel.Program {
					g := newProgram(cs,
						rng.New(seed).Split(fmt.Sprintf("%s-%d", label, j)), childWork)
					g.syscallProb, g.mixCum, g.mixSvc = prob, cum, svcs
					return g
				}
			}
			return c
		}
	}
	return root, nil
}

// MustNew is New but panics on error.
func MustNew(spec Spec, seed uint64) kernel.Program {
	p, err := New(spec, seed)
	if err != nil {
		panic(err)
	}
	return p
}

func isqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func maxu64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// newProgram builds one task's generator emitting n user instructions.
func newProgram(s *Spec, r *rng.Source, n uint64) *program {
	p := &program{
		spec:      s,
		r:         r.Split("walk"),
		dataR:     r.Split("data"),
		remaining: n,
		phaseLeft: s.PhaseLen,
	}
	// Carve the text into procedures, each with its own walker. The last
	// kilobyte of the text is a shared helper slice (library epilogue)
	// called from every procedure; it lives inside TextBytes so the
	// spec's footprint is the program's whole instruction working set.
	const helperSize = 1 << 10
	body := s.TextBytes - helperSize
	if s.TextBytes < 2*helperSize {
		body = s.TextBytes / 2
	}
	procSize := (body / uint32(s.Procs)) &^ 63
	if procSize < 64 {
		procSize = 64
	}
	helper := textwalk.Region{
		Base: kernel.TextBase + mem.VAddr(body),
		Size: s.TextBytes - body,
	}
	params := textwalk.DefaultParams()
	params.CallProb = 0.03
	for i := 0; i < s.Procs; i++ {
		region := textwalk.Region{
			Base: kernel.TextBase + mem.VAddr(uint32(i)*procSize),
			Size: procSize,
		}
		p.procs = append(p.procs, textwalk.MustNew(
			p.r.Split(fmt.Sprintf("proc-%d", i)), region, params,
			[]textwalk.Region{helper}))
	}
	p.zipf = rng.NewZipf(p.r.Split("zipf"), s.Procs, s.ZipfSkew)
	p.perm = identity(s.Procs)
	p.cur = p.procs[0]
	p.visitLeft = s.VisitLen

	p.syscallProb, p.mixCum, p.mixSvc = s.rates()
	return p
}

// childSpec derives the per-child variant of a fork-tree workload: child
// tasks are short-lived utilities whose data work stays within the hot
// footprint (streaming over the full dataset is the root's job).
func childSpec(s *Spec) *Spec {
	c := *s
	if c.DataHotBytes > 0 {
		c.DataBytes = c.DataHotBytes
	}
	c.StreamFrac = 0
	return &c
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Next implements kernel.Program.
func (p *program) Next() kernel.Event {
	base, n, ev := p.NextRun(1)
	if n > 0 {
		return kernel.Event{Kind: kernel.EvRef, Ref: mem.Ref{VA: base, Kind: mem.IFetch}}
	}
	return ev
}

// NextRun implements kernel.BatchProgram. The stream is identical to
// driving the program through Next: every per-instruction draw (syscall,
// data reference) stays in slot order on its own source, and walker runs
// are pre-committed from the walker's private source, whose draw sequence
// batching does not reorder. Runs end at taken branches, visit switches,
// pending data references and events, so the returned fetches are
// sequential and the interleaving with data references is preserved
// exactly.
func (p *program) NextRun(max int) (mem.VAddr, int, kernel.Event) {
	if p.pendingData {
		p.pendingData = false
		return 0, 0, kernel.Event{Kind: kernel.EvRef, Ref: p.pending}
	}
	if p.pendingSvc {
		p.pendingSvc = false
		return 0, 0, kernel.Event{Kind: kernel.EvSyscall, Service: p.pickService()}
	}
	var base mem.VAddr
	n := 0
	for n < max {
		if p.remaining == 0 {
			if n > 0 {
				return base, n, kernel.Event{}
			}
			if !p.exited {
				p.exited = true
			}
			return 0, 0, kernel.Event{Kind: kernel.EvExit}
		}
		if p.forksLeft > 0 && p.sinceFork >= p.forkEvery {
			if n > 0 {
				return base, n, kernel.Event{}
			}
			p.sinceFork = 0
			p.forksLeft--
			i := p.childIndex
			p.childIndex++
			return 0, 0, kernel.Event{
				Kind:      kernel.EvFork,
				Child:     p.makeChild(i),
				ShareText: p.spec.ChildShareText,
			}
		}
		if p.syscallProb > 0 && p.dataR.Bool(p.syscallProb) {
			if n > 0 {
				// The event is deferred to the next call, but its service
				// draw happens there, after this Bool on the same source —
				// the same order Next alone would produce.
				p.pendingSvc = true
				return base, n, kernel.Event{}
			}
			return 0, 0, kernel.Event{Kind: kernel.EvSyscall, Service: p.pickService()}
		}

		// One user instruction.
		p.remaining--
		p.sinceFork++
		if p.visitLeft <= 0 {
			p.cur = p.procs[p.perm[p.zipf.Draw()]]
			p.cur.JumpTo(0)
			p.visitLeft = p.spec.VisitLen
			p.runLeft = 0
		}
		p.visitLeft--
		if p.phaseLeft > 0 {
			p.phaseLeft--
			if p.phaseLeft == 0 {
				p.perm = p.r.Perm(p.spec.Procs)
				p.phaseLeft = p.spec.PhaseLen
			}
		}
		if p.runLeft == 0 {
			// Pre-draw the walker's next sequential run, clamped so it
			// cannot span a visit switch or the task's last instruction.
			lim := p.visitLeft + 1
			if r := p.remaining + 1; uint64(lim) > r {
				lim = int(r)
			}
			p.runBase, p.runLeft = p.cur.NextRun(lim)
		}
		va := p.runBase
		p.runBase += 4
		p.runLeft--
		if n == 0 {
			base = va
		}
		n++

		if p.spec.DataRefsPerInstr > 0 && p.dataR.Bool(p.spec.DataRefsPerInstr) {
			p.pending = p.dataRef()
			p.pendingData = true
			return base, n, kernel.Event{}
		}
		if p.runLeft == 0 {
			// Taken branch or visit end: the next fetch is non-sequential.
			return base, n, kernel.Event{}
		}
	}
	return base, n, kernel.Event{}
}

// pickService draws a service from the workload's syscall mix.
func (p *program) pickService() kernel.ServiceID {
	u := p.dataR.Float64()
	for i, c := range p.mixCum {
		if u < c {
			return p.mixSvc[i]
		}
	}
	return p.mixSvc[2]
}

// dataRef produces one data reference: streaming (sequential over the full
// footprint), hot (within the hot subset), or cold (uniform).
func (p *program) dataRef() mem.Ref {
	s := p.spec
	var off uint32
	switch {
	case s.StreamFrac > 0 && p.dataR.Bool(s.StreamFrac):
		off = p.streamPos
		p.streamPos += 4
		if p.streamPos >= s.DataBytes {
			p.streamPos = 0
		}
	case p.dataR.Bool(0.95) && s.DataHotBytes > 0:
		off = uint32(p.dataR.Intn(int(s.DataHotBytes))) &^ 3
	default:
		off = uint32(p.dataR.Intn(int(s.DataBytes))) &^ 3
	}
	kind := mem.Load
	if p.dataR.Bool(s.StoreFrac) {
		kind = mem.Store
	}
	return mem.Ref{VA: kernel.DataBase + mem.VAddr(off), Kind: kind}
}
