package workload

import (
	"testing"

	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
)

func TestSpecsValid(t *testing.T) {
	specs := Specs(DefaultScale)
	if len(specs) != 8 {
		t.Fatalf("%d workloads, want the paper's 8", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate workload %s", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"xlisp", "espresso", "eqntott", "mpeg_play",
		"jpeg_play", "ousterhout", "sdet", "kenbus"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
}

func TestTable4Characteristics(t *testing.T) {
	// Spot-check spec parameters against the paper's Table 4.
	cases := []struct {
		name  string
		instr float64 // millions
		tasks int
		userF float64
	}{
		{"xlisp", 1412, 1, 0.856},
		{"espresso", 534, 1, 0.951},
		{"eqntott", 1306, 1, 0.972},
		{"mpeg_play", 1423, 1, 0.446},
		{"jpeg_play", 1793, 1, 0.788},
		{"ousterhout", 567, 15, 0.206},
		{"sdet", 823, 281, 0.208},
		{"kenbus", 176, 238, 0.220},
	}
	for _, c := range cases {
		s, err := ByName(c.name, 100)
		if err != nil {
			t.Fatal(err)
		}
		if s.PaperInstructions != c.instr {
			t.Errorf("%s instructions %v, want %v", c.name, s.PaperInstructions, c.instr)
		}
		if s.Tasks != c.tasks {
			t.Errorf("%s tasks %d, want %d", c.name, s.Tasks, c.tasks)
		}
		if s.FracUser != c.userF {
			t.Errorf("%s user fraction %v, want %v", c.name, s.FracUser, c.userF)
		}
		if got := s.TotalInstructions(); got != uint64(c.instr*1e6/100) {
			t.Errorf("%s scaled instructions %d", c.name, got)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("doom", 100); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if len(Names()) != 8 {
		t.Fatal("Names() incomplete")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good, _ := ByName("espresso", 100)
	bads := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.PaperInstructions = 0 },
		func(s *Spec) { s.Scale = 0 },
		func(s *Spec) { s.FracUser = 0.5 }, // fractions no longer sum to 1
		func(s *Spec) { s.TextBytes = 100 },
		func(s *Spec) { s.Procs = 0 },
		func(s *Spec) { s.Tasks = 0 },
		func(s *Spec) { s.ForkDepth = 3 },
		func(s *Spec) { s.RootWorkFrac = 0 },
	}
	for i, mutate := range bads {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// drain pulls events from a program until exit, with a safety bound.
func drain(t *testing.T, p kernel.Program, bound int) (instrs, data, syscalls, forks int, events []kernel.Event) {
	t.Helper()
	for i := 0; i < bound; i++ {
		ev := p.Next()
		events = append(events, ev)
		switch ev.Kind {
		case kernel.EvExit:
			return
		case kernel.EvRef:
			if ev.Ref.Kind == mem.IFetch {
				instrs++
			} else {
				data++
			}
		case kernel.EvSyscall:
			syscalls++
		case kernel.EvFork:
			forks++
		}
	}
	t.Fatalf("program did not exit within %d events", bound)
	return
}

func TestProgramDeterminism(t *testing.T) {
	spec, _ := ByName("espresso", 4000)
	a := MustNew(spec, 42)
	b := MustNew(spec, 42)
	for i := 0; i < 50000; i++ {
		ea, eb := a.Next(), b.Next()
		if ea != eb {
			t.Fatalf("programs diverged at event %d", i)
		}
		if ea.Kind == kernel.EvExit {
			return
		}
	}
}

func TestProgramSeedsDiffer(t *testing.T) {
	spec, _ := ByName("espresso", 4000)
	a := MustNew(spec, 1)
	b := MustNew(spec, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		ea, eb := a.Next(), b.Next()
		if ea.Kind == kernel.EvRef && eb.Kind == kernel.EvRef && ea.Ref == eb.Ref {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced near-identical streams (%d/1000)", same)
	}
}

func TestProgramEmitsSpecInstructionCount(t *testing.T) {
	spec, _ := ByName("eqntott", 4000)
	p := MustNew(spec, 7)
	instrs, data, syscalls, _, _ := drain(t, p, 10_000_000)
	want := int(float64(spec.UserInstructions()) * spec.RootWorkFrac)
	if instrs != want {
		t.Fatalf("emitted %d instructions, want %d", instrs, want)
	}
	if data == 0 {
		t.Fatal("no data references")
	}
	dataRate := float64(data) / float64(instrs)
	if dataRate < spec.DataRefsPerInstr*0.8 || dataRate > spec.DataRefsPerInstr*1.2 {
		t.Fatalf("data ref rate %.3f, spec %.3f", dataRate, spec.DataRefsPerInstr)
	}
	if syscalls == 0 {
		t.Fatal("no syscalls")
	}
}

func TestProgramExitIsSticky(t *testing.T) {
	spec, _ := ByName("espresso", 100000)
	p := MustNew(spec, 3)
	for i := 0; i < 1_000_000; i++ {
		if p.Next().Kind == kernel.EvExit {
			break
		}
	}
	for i := 0; i < 10; i++ {
		if p.Next().Kind != kernel.EvExit {
			t.Fatal("program resumed after exit")
		}
	}
}

func TestForkTreeCounts(t *testing.T) {
	// Count forks across the whole tree for a depth-2 workload.
	spec, _ := ByName("sdet", 4000)
	total := 0
	var walk func(p kernel.Program)
	walk = func(p kernel.Program) {
		for {
			ev := p.Next()
			if ev.Kind == kernel.EvExit {
				return
			}
			if ev.Kind == kernel.EvFork {
				total++
				walk(ev.Child) // drain children depth-first
			}
		}
	}
	walk(MustNew(spec, 5))
	if total != spec.Tasks-1 {
		t.Fatalf("fork tree produced %d children, want %d", total, spec.Tasks-1)
	}
}

func TestForkShareTextFlag(t *testing.T) {
	for _, c := range []struct {
		name string
		want bool
	}{{"ousterhout", true}, {"sdet", false}} {
		spec, _ := ByName(c.name, 4000)
		p := MustNew(spec, 5)
		for i := 0; i < 10_000_000; i++ {
			ev := p.Next()
			if ev.Kind == kernel.EvFork {
				if ev.ShareText != c.want {
					t.Errorf("%s fork ShareText = %v, want %v", c.name, ev.ShareText, c.want)
				}
				break
			}
			if ev.Kind == kernel.EvExit {
				t.Fatalf("%s root exited without forking", c.name)
			}
		}
	}
}

func TestRefsStayInUserSegments(t *testing.T) {
	spec, _ := ByName("mpeg_play", 4000)
	p := MustNew(spec, 9)
	for i := 0; i < 200000; i++ {
		ev := p.Next()
		if ev.Kind == kernel.EvExit {
			break
		}
		if ev.Kind != kernel.EvRef {
			continue
		}
		va := ev.Ref.VA
		switch ev.Ref.Kind {
		case mem.IFetch:
			if va < kernel.TextBase || va >= kernel.TextBase+mem.VAddr(spec.TextBytes) {
				t.Fatalf("ifetch outside text: %#x", va)
			}
		default:
			if va < kernel.DataBase || va >= kernel.DataBase+mem.VAddr(spec.DataBytes) {
				t.Fatalf("data ref outside data segment: %#x", va)
			}
		}
	}
}

func TestSyscallMixUsesConfiguredServices(t *testing.T) {
	spec, _ := ByName("mpeg_play", 2000)
	p := MustNew(spec, 11)
	seen := map[kernel.ServiceID]int{}
	for i := 0; i < 10_000_000; i++ {
		ev := p.Next()
		if ev.Kind == kernel.EvExit {
			break
		}
		if ev.Kind == kernel.EvSyscall {
			seen[ev.Service]++
		}
	}
	if len(seen) == 0 {
		t.Fatal("no syscalls")
	}
	for svc := range seen {
		if svc != spec.KernelSvc && svc != spec.BSDSvc && svc != spec.XSvc {
			t.Fatalf("unexpected service %v in mix", svc)
		}
	}
	// mpeg_play's BSD traffic dominates its X traffic (27.3% vs 4.0%).
	if seen[spec.BSDSvc] <= seen[spec.XSvc] {
		t.Fatalf("BSD calls (%d) should outnumber X calls (%d)",
			seen[spec.BSDSvc], seen[spec.XSvc])
	}
}

func TestRatesSolveCloseToTargets(t *testing.T) {
	// The solver's predicted instruction budget should land near the
	// spec's fractions when replayed against ServiceCosts.
	for _, name := range []string{"mpeg_play", "ousterhout"} {
		spec, _ := ByName(name, 100)
		prob, cum, svcs := spec.rates()
		if prob <= 0 {
			t.Fatalf("%s: no syscalls solved", name)
		}
		// Expected kernel+server instructions per user instruction.
		var kPer, bsdPer, xPer float64
		prev := 0.0
		for i, c := range cum {
			share := (c - prev) * prob
			prev = c
			kc, sc := kernel.ServiceCosts(svcs[i])
			kPer += share * float64(kc)
			switch kernel.ServerOf(svcs[i]) {
			case kernel.BSDServer:
				bsdPer += share * float64(sc)
			case kernel.XServer:
				xPer += share * float64(sc)
			}
		}
		user := float64(spec.UserInstructions())
		total := float64(spec.TotalInstructions())
		gotBSD := bsdPer * user / total
		if spec.FracBSD > 0 && (gotBSD < spec.FracBSD*0.85 || gotBSD > spec.FracBSD*1.15) {
			t.Errorf("%s: solved BSD share %.3f, want ~%.3f", name, gotBSD, spec.FracBSD)
		}
		gotX := xPer * user / total
		if spec.FracX > 0 && (gotX < spec.FracX*0.8 || gotX > spec.FracX*1.2) {
			t.Errorf("%s: solved X share %.3f, want ~%.3f", name, gotX, spec.FracX)
		}
	}
}

func TestChildSpecConfinesData(t *testing.T) {
	spec, _ := ByName("sdet", 100)
	c := childSpec(&spec)
	if c.DataBytes != spec.DataHotBytes {
		t.Fatalf("child data %d, want hot subset %d", c.DataBytes, spec.DataHotBytes)
	}
	if c.StreamFrac != 0 {
		t.Fatal("children should not stream")
	}
	if spec.DataBytes == c.DataBytes {
		t.Fatal("childSpec mutated the parent spec")
	}
}

// TestNextRunEquivalentToNext pins the BatchProgram contract for workload
// programs: the event stream is identical whether the program is driven
// per-instruction through Next or in runs through NextRun, fork trees
// included. Children surfaced by matching fork events are paired up and
// drained the same two ways.
func TestNextRunEquivalentToNext(t *testing.T) {
	for _, wl := range []string{"espresso", "ousterhout", "sdet"} {
		spec, err := ByName(wl, 4000)
		if err != nil {
			t.Fatal(err)
		}
		type pair struct{ single, batched kernel.Program }
		queue := []pair{{MustNew(spec, 17), MustNew(spec, 17)}}
		widths := []int{1, 5, 32, 500}
		for len(queue) > 0 {
			pr := queue[0]
			queue = queue[1:]
			bp := pr.batched.(kernel.BatchProgram)
			for step := 0; step < 10_000_000; {
				base, n, ev := bp.NextRun(widths[step%len(widths)])
				if n > 0 {
					for i := 0; i < n; i++ {
						want := pr.single.Next()
						ref := mem.Ref{VA: base + mem.VAddr(4*i), Kind: mem.IFetch}
						if want.Kind != kernel.EvRef || want.Ref != ref {
							t.Fatalf("%s step %d: run fetch %+v, Next gave %+v", wl, step+i, ref, want)
						}
					}
					step += n
					continue
				}
				want := pr.single.Next()
				if want.Kind != ev.Kind || want.Ref != ev.Ref ||
					want.Service != ev.Service || want.ShareText != ev.ShareText {
					t.Fatalf("%s step %d: NextRun event %+v, Next event %+v", wl, step, ev, want)
				}
				step++
				if ev.Kind == kernel.EvFork {
					queue = append(queue, pair{want.Child, ev.Child})
				}
				if ev.Kind == kernel.EvExit {
					break
				}
			}
		}
	}
}
