package workload_test

// Mid-run checkpoint round trips, exercised from the workload side
// because resuming a fork needs NewPlannedAt (the kernel package cannot
// import workload). The invariants:
//
//   - ForkRun is deterministic: two forks of one checkpoint replay to
//     bit-identical final machines.
//   - The op stream is conserved: a fork runs exactly the instructions
//     the original had left, so stream-defined totals (user instructions,
//     per-task instruction counts, forks, exits) match the original run
//     to completion. Cycle counts are NOT compared — a fork starts with
//     cold host caches by design, which shifts timing deterministically.
//   - A checkpoint survives Encode/ReadCheckpoint with its run state.

import (
	"bytes"
	"testing"

	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/workload"
)

const (
	midrunFrames = 4096
	midrunSeed   = 1994
)

func midrunSpec(t *testing.T, name string, scale float64) workload.Spec {
	t.Helper()
	spec, err := workload.ByName(name, scale)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	return spec
}

func midrunBoot(t *testing.T) *kernel.Kernel {
	t.Helper()
	kcfg := kernel.DefaultConfig(mach.DECstation5000_200(midrunFrames), midrunSeed)
	k, err := kernel.Boot(kcfg)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return k
}

// finalState summarizes everything a completed run determines.
type finalState struct {
	cycles, instret, userInstr uint64
	stats                      kernel.Stats
	taskInstr                  []uint64
}

func readFinal(k *kernel.Kernel) finalState {
	fs := finalState{
		cycles:    k.Machine().Cycles(),
		instret:   k.Machine().Instructions(),
		userInstr: k.UserInstructions(),
		stats:     k.Stats(),
	}
	for _, t := range k.Tasks() {
		fs.taskInstr = append(fs.taskInstr, t.Instructions)
	}
	return fs
}

func eqUint64s(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// captureMidway boots, spawns the compiled workload, runs to about half
// the stream and captures. The original kernel is then run to completion
// and its final state returned with the checkpoint.
func captureMidway(t *testing.T, spec workload.Spec, target uint64) (*kernel.Checkpoint, finalState) {
	t.Helper()
	k := midrunBoot(t)
	defer k.ReleaseBuffers()
	prog, err := workload.NewPlanned(spec, midrunSeed)
	if err != nil {
		t.Fatalf("NewPlanned: %v", err)
	}
	k.Spawn(spec.Name, prog, false, false)
	if err := k.RunUntilUser(target); err != nil {
		t.Fatalf("RunUntilUser: %v", err)
	}
	if got := k.UserInstructions(); got < target || got >= target+kernel.CompiledRunCap {
		t.Fatalf("RunUntilUser(%d) stopped at %d user instructions; want [%d, %d)",
			target, got, target, target+kernel.CompiledRunCap)
	}
	cp, err := kernel.CaptureAt(k, "test-midway")
	if err != nil {
		t.Fatalf("CaptureAt: %v", err)
	}
	if !cp.HasRunState() {
		t.Fatalf("CaptureAt checkpoint reports no run state")
	}
	if cp.UserInstructions() != k.UserInstructions() {
		t.Fatalf("checkpoint user instructions %d, kernel %d", cp.UserInstructions(), k.UserInstructions())
	}
	if err := k.Run(0); err != nil {
		t.Fatalf("Run to completion: %v", err)
	}
	return cp, readFinal(k)
}

func forkAndFinish(t *testing.T, cp *kernel.Checkpoint, spec workload.Spec) finalState {
	t.Helper()
	kcfg := kernel.DefaultConfig(mach.DECstation5000_200(midrunFrames), midrunSeed)
	resume := func(cur kernel.ProgramCursor) (kernel.Program, error) {
		return workload.NewPlannedAt(spec, midrunSeed, cur)
	}
	fk, err := kernel.ForkRun(cp, kcfg, resume)
	if err != nil {
		t.Fatalf("ForkRun: %v", err)
	}
	defer fk.ReleaseCheckpoint()
	if got, want := fk.UserInstructions(), cp.UserInstructions(); got != want {
		t.Fatalf("forked kernel starts at %d user instructions, checkpoint captured %d", got, want)
	}
	if err := fk.Run(0); err != nil {
		t.Fatalf("forked Run: %v", err)
	}
	return readFinal(fk)
}

func TestForkRunDeterministicAndStreamConserving(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scale  float64
		target uint64
	}{
		{"espresso", 2000, 50_000},
		// sdet exercises the fork tree: cursors below the root image,
		// mid-run task spawn/exit state, shared text pages.
		{"sdet", 4000, 20_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := midrunSpec(t, tc.name, tc.scale)
			cp, orig := captureMidway(t, spec, tc.target)

			f1 := forkAndFinish(t, cp, spec)
			f2 := forkAndFinish(t, cp, spec)

			// Bit-identical across forks: same checkpoint, same stream,
			// same cold-start timing.
			if f1.cycles != f2.cycles || f1.instret != f2.instret ||
				f1.stats != f2.stats || !eqUint64s(f1.taskInstr, f2.taskInstr) {
				t.Fatalf("two forks diverge:\n  fork1 %+v\n  fork2 %+v", f1, f2)
			}

			// Stream conservation against the original run to completion.
			if f1.userInstr != orig.userInstr {
				t.Errorf("fork finished at %d user instructions, original %d", f1.userInstr, orig.userInstr)
			}
			if !eqUint64s(f1.taskInstr, orig.taskInstr) {
				t.Errorf("per-task instructions diverge:\n  fork %v\n  orig %v", f1.taskInstr, orig.taskInstr)
			}
			if f1.stats.UserSpawned != orig.stats.UserSpawned || f1.stats.UserExited != orig.stats.UserExited {
				t.Errorf("task tree diverges: fork %d/%d spawned/exited, orig %d/%d",
					f1.stats.UserSpawned, f1.stats.UserExited, orig.stats.UserSpawned, orig.stats.UserExited)
			}
		})
	}
}

func TestMidrunCheckpointPersistence(t *testing.T) {
	spec := midrunSpec(t, "espresso", 2000)
	cp, _ := captureMidway(t, spec, 50_000)

	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cp2, err := kernel.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if !cp2.HasRunState() {
		t.Fatalf("decoded checkpoint lost its run state")
	}
	if cp2.Mark() != cp.Mark() {
		t.Fatalf("decoded mark %q, want %q", cp2.Mark(), cp.Mark())
	}
	if cp2.UserInstructions() != cp.UserInstructions() {
		t.Fatalf("decoded user instructions %d, want %d", cp2.UserInstructions(), cp.UserInstructions())
	}

	direct := forkAndFinish(t, cp, spec)
	decoded := forkAndFinish(t, cp2, spec)
	if direct.cycles != decoded.cycles || direct.instret != decoded.instret ||
		direct.stats != decoded.stats || !eqUint64s(direct.taskInstr, decoded.taskInstr) {
		t.Fatalf("decoded checkpoint forks differently:\n  direct  %+v\n  decoded %+v", direct, decoded)
	}
}

func TestForkRunRejectsPostBootCheckpoint(t *testing.T) {
	k := midrunBoot(t)
	defer k.ReleaseBuffers()
	cp, err := kernel.Capture(k, "post-boot")
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	kcfg := kernel.DefaultConfig(mach.DECstation5000_200(midrunFrames), midrunSeed)
	fk, err := kernel.ForkRun(cp, kcfg, nil)
	if err == nil {
		fk.ReleaseCheckpoint()
		t.Fatalf("ForkRun accepted a post-boot checkpoint")
	}
}

func TestRunUntilInstr(t *testing.T) {
	spec := midrunSpec(t, "espresso", 2000)
	k := midrunBoot(t)
	defer k.ReleaseBuffers()
	prog, err := workload.NewPlanned(spec, midrunSeed)
	if err != nil {
		t.Fatalf("NewPlanned: %v", err)
	}
	k.Spawn(spec.Name, prog, false, false)
	const target = 120_000
	if err := k.RunUntilInstr(target); err != nil {
		t.Fatalf("RunUntilInstr: %v", err)
	}
	got := k.Machine().Instructions()
	if got < target {
		t.Fatalf("RunUntilInstr(%d) stopped early at %d", target, got)
	}
	// The stop lands on the next op/scheduling boundary; anything beyond
	// a couple hundred instructions would mean the stop checks are not
	// where they should be.
	if got > target+1024 {
		t.Fatalf("RunUntilInstr(%d) overshot to %d", target, got)
	}
}
