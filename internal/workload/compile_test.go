package workload

import (
	"testing"

	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
)

// flatEvent is one element of a program's flattened event stream: run ops
// are exploded into per-instruction fetches so that streams produced at
// different batch widths compare equal exactly when the underlying
// instruction/event sequence is identical.
type flatEvent struct {
	kind   kernel.EventKind
	va     mem.VAddr
	ref    mem.RefKind
	svc    kernel.ServiceID
	shared bool
}

// flatten explodes prog's stream via NextRun(width), recursing into forked
// children depth-first (fork order is deterministic, so the flattening is
// too). cap bounds runaway streams.
func flatten(t *testing.T, prog kernel.Program, width, cap int) []flatEvent {
	t.Helper()
	bp, ok := prog.(kernel.BatchProgram)
	if !ok {
		t.Fatalf("program %T is not batchable", prog)
	}
	var out []flatEvent
	for len(out) < cap {
		base, n, ev := bp.NextRun(width)
		if n > 0 {
			for i := 0; i < n; i++ {
				out = append(out, flatEvent{kind: kernel.EvRef, va: base + mem.VAddr(4*i), ref: mem.IFetch})
			}
			continue
		}
		switch ev.Kind {
		case kernel.EvRef:
			out = append(out, flatEvent{kind: kernel.EvRef, va: ev.Ref.VA, ref: ev.Ref.Kind})
		case kernel.EvSyscall:
			out = append(out, flatEvent{kind: kernel.EvSyscall, svc: ev.Service})
		case kernel.EvFork:
			out = append(out, flatEvent{kind: kernel.EvFork, shared: ev.ShareText})
			out = append(out, flatten(t, ev.Child, width, cap-len(out))...)
		case kernel.EvExit:
			out = append(out, flatEvent{kind: kernel.EvExit})
			return out
		}
	}
	return out
}

// flattenNext explodes prog's stream via Next alone.
func flattenNext(t *testing.T, prog kernel.Program, cap int) []flatEvent {
	t.Helper()
	var out []flatEvent
	for len(out) < cap {
		ev := prog.Next()
		switch ev.Kind {
		case kernel.EvRef:
			out = append(out, flatEvent{kind: kernel.EvRef, va: ev.Ref.VA, ref: ev.Ref.Kind})
		case kernel.EvSyscall:
			out = append(out, flatEvent{kind: kernel.EvSyscall, svc: ev.Service})
		case kernel.EvFork:
			out = append(out, flatEvent{kind: kernel.EvFork, shared: ev.ShareText})
			out = append(out, flattenNext(t, ev.Child, cap-len(out))...)
		case kernel.EvExit:
			out = append(out, flatEvent{kind: kernel.EvExit})
			return out
		}
	}
	return out
}

func compareStreams(t *testing.T, name string, want, got []flatEvent) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: stream lengths differ: interpreter %d, compiled %d", name, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: streams diverge at event %d: interpreter %+v, compiled %+v", name, i, want[i], got[i])
		}
	}
}

// TestCompiledStreamMatchesInterpreter checks byte-identity of the
// compiled replay against the interpreter across fork-tree shapes (single
// task, one-level, two-level trees) and batch widths, including the
// per-instruction Next path.
func TestCompiledStreamMatchesInterpreter(t *testing.T) {
	const scale = 40000 // small streams; sdet/kenbus still fork full trees
	const seed = 1994
	const capEvents = 5 << 20
	for _, name := range []string{"eqntott", "mpeg_play", "ousterhout", "sdet"} {
		spec, err := ByName(name, scale)
		if err != nil {
			t.Fatal(err)
		}
		ref := flatten(t, MustNew(spec, seed), kernel.CompiledRunCap, capEvents)

		c, err := Compile(spec, seed)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		compareStreams(t, name+"/run64", ref, flatten(t, c, kernel.CompiledRunCap, capEvents))

		for _, width := range []int{1, 7, 64, 1024} {
			c, err := Compile(spec, seed)
			if err != nil {
				t.Fatal(err)
			}
			compareStreams(t, name, ref, flatten(t, c, width, capEvents))
		}

		c, err = Compile(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		compareStreams(t, name+"/next", ref, flattenNext(t, c, capEvents))
	}
}

// TestCompiledMixedDriving interleaves Next and NextRun on the same
// replayer — the shape a traced task or instruction-limited run produces —
// and checks the flat stream still matches.
func TestCompiledMixedDriving(t *testing.T) {
	spec, err := ByName("eqntott", 40000)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7
	ref := flatten(t, MustNew(spec, seed), 64, 1<<20)

	c, err := Compile(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	var got []flatEvent
	i := 0
	for len(got) < 1<<20 {
		var base mem.VAddr
		var n int
		var ev kernel.Event
		if i%3 == 0 {
			ev = c.Next()
			if ev.Kind == kernel.EvRef && ev.Ref.Kind == mem.IFetch {
				got = append(got, flatEvent{kind: kernel.EvRef, va: ev.Ref.VA, ref: mem.IFetch})
				i++
				continue
			}
		} else {
			base, n, ev = c.NextRun(5 + i%60)
			if n > 0 {
				for j := 0; j < n; j++ {
					got = append(got, flatEvent{kind: kernel.EvRef, va: base + mem.VAddr(4*j), ref: mem.IFetch})
				}
				i++
				continue
			}
		}
		i++
		switch ev.Kind {
		case kernel.EvRef:
			got = append(got, flatEvent{kind: kernel.EvRef, va: ev.Ref.VA, ref: ev.Ref.Kind})
		case kernel.EvSyscall:
			got = append(got, flatEvent{kind: kernel.EvSyscall, svc: ev.Service})
		case kernel.EvFork:
			got = append(got, flatEvent{kind: kernel.EvFork, shared: ev.ShareText})
			got = append(got, flattenNext(t, ev.Child, 1<<20-len(got))...)
		case kernel.EvExit:
			got = append(got, flatEvent{kind: kernel.EvExit})
		}
		if ev.Kind == kernel.EvExit {
			break
		}
	}
	compareStreams(t, "mixed", ref, got)
}

// TestNewPlannedCacheSharesImages checks the cache returns independent
// replayers over one shared image, and that replays don't perturb each
// other.
func TestNewPlannedCacheSharesImages(t *testing.T) {
	spec, err := ByName("espresso", 40000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewPlanned(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlanned(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	ca, ok := a.(*Compiled)
	if !ok {
		t.Fatalf("NewPlanned returned %T, want *Compiled", a)
	}
	cb := b.(*Compiled)
	if ca.img != cb.img {
		t.Fatal("cache did not share the compiled image")
	}
	// Drive one replayer forward; the other must be unaffected.
	ca.NextRun(64)
	if pos, _ := cb.OpPos(); pos != 0 {
		t.Fatal("advancing one replayer moved another's cursor")
	}
}

// TestOpPosAlignment checks OpPos reports misalignment while a run op is
// partially consumed and realigns at the boundary.
func TestOpPosAlignment(t *testing.T) {
	spec, err := ByName("eqntott", 40000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	ops := c.Ops()
	if len(ops) == 0 || ops[0].Kind != kernel.OpRun {
		t.Skipf("stream does not start with a run op")
	}
	if ops[0].N > 1 {
		c.Next()
		if _, ok := c.OpPos(); ok {
			t.Fatal("OpPos claims alignment mid-run")
		}
		for i := 1; i < int(ops[0].N); i++ {
			c.Next()
		}
		if pos, ok := c.OpPos(); !ok || pos != 1 {
			t.Fatalf("OpPos = %d,%v after consuming the first run, want 1,true", pos, ok)
		}
	}
}
