package workload

import "tapeworm/internal/resultcache"

// HashInto writes the spec's canonical identity encoding for the result
// cache: every field, in declaration order behind a version tag. The
// Description rides along even though it shapes no references — a spec
// edit of any kind should read as a new identity rather than silently
// serving results computed from the old definition.
func (s Spec) HashInto(h *resultcache.Hasher) {
	h.WriteString("workload.Spec/v1")
	h.WriteString(s.Name)
	h.WriteString(s.Description)
	h.WriteFloat64(s.PaperInstructions)
	h.WriteFloat64(s.Scale)
	h.WriteFloat64(s.FracKernel)
	h.WriteFloat64(s.FracBSD)
	h.WriteFloat64(s.FracX)
	h.WriteFloat64(s.FracUser)
	h.WriteUint64(uint64(s.TextBytes))
	h.WriteInt(s.Procs)
	h.WriteFloat64(s.ZipfSkew)
	h.WriteInt(s.VisitLen)
	h.WriteUint64(s.PhaseLen)
	h.WriteUint64(uint64(s.DataBytes))
	h.WriteUint64(uint64(s.DataHotBytes))
	h.WriteFloat64(s.DataRefsPerInstr)
	h.WriteFloat64(s.StoreFrac)
	h.WriteFloat64(s.StreamFrac)
	h.WriteInt(int(s.KernelSvc))
	h.WriteInt(int(s.BSDSvc))
	h.WriteInt(int(s.XSvc))
	h.WriteInt(s.Tasks)
	h.WriteBool(s.ChildShareText)
	h.WriteInt(s.ForkDepth)
	h.WriteFloat64(s.RootWorkFrac)
}
