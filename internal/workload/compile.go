package workload

// Program compilation. A workload's reference stream is a deterministic
// pure function of (spec, seed, task label) — it never consults machine or
// kernel state (see program.go) — so the whole stream can be lowered once
// into a flat array of pre-planned ops (fused walker runs, pre-resolved
// service points, batched data references) and replayed any number of
// times. Replay eliminates the per-instruction probability draws, Zipf
// lookups and walker stepping that dominate the interpreter's cost, and a
// process-wide cache amortizes the one-time compile across gang members,
// fast/baseline comparison runs, and bench iterations — all of which
// execute the same (spec, seed) stream by construction.
//
// The compiler is seed-pure: it consumes randomness only through the
// interpreter it records, so a compiled replay is bit-identical to the
// interpreter by construction, and memoizing images by (spec, seed) can
// never change simulation results.

import (
	"fmt"
	"sync"

	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
)

// maxCompiledOps bounds the total op count of one workload's fork tree.
// Beyond it (roughly 50 MB of ops; only reached far above the bench and
// verification scales), Compile refuses and callers fall back to the
// interpreter.
const maxCompiledOps = 4 << 20

// ErrStreamTooLarge reports a workload whose stream exceeds the compile
// op budget; run it through the interpreter instead.
var ErrStreamTooLarge = fmt.Errorf("workload: stream exceeds the %d-op compile budget", maxCompiledOps)

// image is the compiled form of one task's program: its op stream plus the
// images of the children it forks, in fork order. Images are immutable
// after compilation and shared by any number of concurrent replays.
type image struct {
	ops      []kernel.CompiledOp
	children []*image
}

// Compiled replays an image as a kernel.Program. The zero cursor starts at
// the beginning of the stream; each task (including every forked child)
// gets its own Compiled over the shared immutable image.
type Compiled struct {
	img    *image
	path   []int32 // fork-op args from the root image to img (never mutated)
	pos    int
	runOff int // instructions consumed of the run op at pos (Next-driven)
}

// Ops implements kernel.CompiledProgram.
func (c *Compiled) Ops() []kernel.CompiledOp { return c.img.ops }

// OpPos implements kernel.CompiledProgram.
func (c *Compiled) OpPos() (int, bool) { return c.pos, c.runOff == 0 }

// SeekOp implements kernel.CompiledProgram.
func (c *Compiled) SeekOp(pos int) { c.pos, c.runOff = pos, 0 }

// Cursor implements kernel.CursorProgram: it names this replay's position
// in the fork tree (the chain of fork-op args that produced its image,
// plus the op index) so an identical replay can be rebuilt later from the
// same (spec, seed) with NewPlannedAt. Mid-run-op positions are not
// resumable and report ok == false; the kernel only captures at op
// boundaries, where OpPos's aligned flag is true.
func (c *Compiled) Cursor() (kernel.ProgramCursor, bool) {
	if c.runOff != 0 {
		return kernel.ProgramCursor{}, false
	}
	path := make([]int32, len(c.path))
	copy(path, c.path)
	return kernel.ProgramCursor{Path: path, Pos: c.pos}, true
}

// Next implements kernel.Program.
func (c *Compiled) Next() kernel.Event {
	base, n, ev := c.NextRun(1)
	if n > 0 {
		return kernel.Event{Kind: kernel.EvRef, Ref: mem.Ref{VA: base, Kind: mem.IFetch}}
	}
	return ev
}

// NextRun implements kernel.BatchProgram by replaying the compiled ops.
// The flat event stream is byte-identical to the interpreter's at any max:
// run ops split but never merge, so boundaries the interpreter would emit
// are preserved.
func (c *Compiled) NextRun(max int) (mem.VAddr, int, kernel.Event) {
	ops := c.img.ops
	if c.pos >= len(ops) {
		return 0, 0, kernel.Event{Kind: kernel.EvExit}
	}
	op := &ops[c.pos]
	switch op.Kind {
	case kernel.OpRun:
		n := int(op.N) - c.runOff
		if n > max {
			n = max
		}
		base := op.VA + mem.VAddr(mem.WordBytes*c.runOff)
		c.runOff += n
		if c.runOff == int(op.N) {
			c.pos++
			c.runOff = 0
		}
		return base, n, kernel.Event{}
	case kernel.OpData:
		c.pos++
		return 0, 0, kernel.Event{Kind: kernel.EvRef, Ref: mem.Ref{VA: op.VA, Kind: op.Ref}}
	case kernel.OpSyscall:
		c.pos++
		return 0, 0, kernel.Event{Kind: kernel.EvSyscall, Service: kernel.ServiceID(op.Arg)}
	case kernel.OpFork:
		c.pos++
		childPath := make([]int32, len(c.path)+1)
		copy(childPath, c.path)
		childPath[len(c.path)] = op.Arg
		return 0, 0, kernel.Event{
			Kind:      kernel.EvFork,
			Child:     &Compiled{img: c.img.children[op.Arg], path: childPath},
			ShareText: op.N != 0,
		}
	default: // OpExit is sticky, like the interpreter's exited state.
		return 0, 0, kernel.Event{Kind: kernel.EvExit}
	}
}

// compileImage records prog's full stream (and, recursively, the streams
// of the children it forks) into an image. budget is the remaining op
// allowance across the whole fork tree.
func compileImage(prog kernel.Program, budget *int) (*image, error) {
	bp, ok := prog.(kernel.BatchProgram)
	if !ok {
		return nil, fmt.Errorf("workload: program %T is not batchable", prog)
	}
	img := &image{}
	for {
		if *budget <= 0 {
			return nil, ErrStreamTooLarge
		}
		*budget--
		base, n, ev := bp.NextRun(kernel.CompiledRunCap)
		if n > 0 {
			img.ops = append(img.ops, kernel.CompiledOp{
				Kind: kernel.OpRun, VA: base, N: uint16(n),
			})
			continue
		}
		switch ev.Kind {
		case kernel.EvRef:
			img.ops = append(img.ops, kernel.CompiledOp{
				Kind: kernel.OpData, VA: ev.Ref.VA, Ref: ev.Ref.Kind,
			})
		case kernel.EvSyscall:
			img.ops = append(img.ops, kernel.CompiledOp{
				Kind: kernel.OpSyscall, Arg: int32(ev.Service),
			})
		case kernel.EvFork:
			child, err := compileImage(ev.Child, budget)
			if err != nil {
				return nil, err
			}
			var share uint16
			if ev.ShareText {
				share = 1
			}
			img.ops = append(img.ops, kernel.CompiledOp{
				Kind: kernel.OpFork, N: share, Arg: int32(len(img.children)),
			})
			img.children = append(img.children, child)
		case kernel.EvExit:
			img.ops = append(img.ops, kernel.CompiledOp{Kind: kernel.OpExit})
			return img, nil
		default:
			return nil, fmt.Errorf("workload: unknown event kind %d while compiling", ev.Kind)
		}
	}
}

// Compile lowers spec's reference stream into a fresh compiled program,
// bypassing the cache. Returns ErrStreamTooLarge when the stream exceeds
// the op budget.
func Compile(spec Spec, seed uint64) (*Compiled, error) {
	prog, err := New(spec, seed)
	if err != nil {
		return nil, err
	}
	budget := maxCompiledOps
	img, err := compileImage(prog, &budget)
	if err != nil {
		return nil, err
	}
	return &Compiled{img: img}, nil
}

// --- Process-wide image cache ---

// maxCachedImages bounds the compile cache. Each entry is one workload's
// full op stream (tens of MB at bench scales); sweeps revisit the same
// few (spec, seed) pairs thousands of times.
const maxCachedImages = 4

type cacheKey struct {
	spec Spec
	seed uint64
}

type cacheEntry struct {
	once sync.Once
	img  *image
	err  error
	gen  uint64 // LRU clock, updated under cacheMu
}

var (
	cacheMu    sync.Mutex
	imageCache = map[cacheKey]*cacheEntry{}
	cacheGen   uint64
)

// cachedImage memoizes Compile by (spec, seed). Concurrent requests for
// the same key compile once and share the immutable result; distinct keys
// compile in parallel. Least-recently-used images are evicted beyond
// maxCachedImages.
func cachedImage(spec Spec, seed uint64) (*image, error) {
	key := cacheKey{spec: spec, seed: seed}
	cacheMu.Lock()
	e := imageCache[key]
	if e == nil {
		e = &cacheEntry{}
		imageCache[key] = e
		if len(imageCache) > maxCachedImages {
			var victimKey cacheKey
			var victim *cacheEntry
			// Generation numbers are unique, so the minimum is the same
			// victim at any iteration order; eviction never changes
			// simulation results either way (images are pure).
			//twvet:allow maporder — unique-minimum selection is order-insensitive
			for k, v := range imageCache {
				if v != e && (victim == nil || v.gen < victim.gen) {
					victimKey, victim = k, v
				}
			}
			delete(imageCache, victimKey)
		}
	}
	cacheGen++
	e.gen = cacheGen
	cacheMu.Unlock()
	e.once.Do(func() {
		c, err := Compile(spec, seed)
		if err != nil {
			e.err = err
			return
		}
		e.img = c.img
	})
	return e.img, e.err
}

// NewPlanned returns the fastest available Program for (spec, seed): a
// replay of the cached compiled stream when it fits the op budget, else
// the interpreter. The emitted event stream is identical either way.
func NewPlanned(spec Spec, seed uint64) (kernel.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	img, err := cachedImage(spec, seed)
	if err == ErrStreamTooLarge {
		return New(spec, seed)
	}
	if err != nil {
		return nil, err
	}
	return &Compiled{img: img}, nil
}

// NewPlannedAt rebuilds a compiled replay of (spec, seed) positioned at a
// cursor previously reported by Compiled.Cursor — the resume half of the
// kernel's mid-run checkpoint protocol. Cursors exist only for compiled
// replays, so a stream too large to compile is an error here, not an
// interpreter fallback: the interpreter cannot seek.
func NewPlannedAt(spec Spec, seed uint64, cur kernel.ProgramCursor) (kernel.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	img, err := cachedImage(spec, seed)
	if err != nil {
		return nil, err
	}
	node := img
	for i, arg := range cur.Path {
		if arg < 0 || int(arg) >= len(node.children) {
			return nil, fmt.Errorf("workload: cursor path %v invalid at step %d for %s/seed %#x",
				cur.Path, i, spec.Name, seed)
		}
		node = node.children[arg]
	}
	if cur.Pos < 0 || cur.Pos > len(node.ops) {
		return nil, fmt.Errorf("workload: cursor op %d out of range [0,%d] for %s/seed %#x",
			cur.Pos, len(node.ops), spec.Name, seed)
	}
	path := make([]int32, len(cur.Path))
	copy(path, cur.Path)
	return &Compiled{img: node, path: path, pos: cur.Pos}, nil
}

// OpTree is a read-only view over one compiled task stream and the
// streams of the children it forks, for offline analyses (phase
// detection) that want the pre-planned ops without replaying them.
type OpTree struct {
	img *image
}

// Ops returns the node's op stream. The slice is shared and immutable.
func (t OpTree) Ops() []kernel.CompiledOp { return t.img.ops }

// NumChildren returns how many child streams this node forks.
func (t OpTree) NumChildren() int { return len(t.img.children) }

// Child returns the stream forked by the fork op whose Arg is i.
func (t OpTree) Child(i int) OpTree { return OpTree{img: t.img.children[i]} }

// PlannedOps exposes the cached compiled fork tree of (spec, seed).
// Returns ErrStreamTooLarge (wrapped by nothing) when the stream exceeds
// the compile budget, exactly as NewPlanned's fallback condition.
func PlannedOps(spec Spec, seed uint64) (OpTree, error) {
	if err := spec.Validate(); err != nil {
		return OpTree{}, err
	}
	img, err := cachedImage(spec, seed)
	if err != nil {
		return OpTree{}, err
	}
	return OpTree{img: img}, nil
}
