package textwalk

import (
	"testing"
	"testing/quick"

	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x100}
	for _, c := range []struct {
		va   mem.VAddr
		want bool
	}{
		{0x0fff, false}, {0x1000, true}, {0x10ff, true}, {0x1100, false},
	} {
		if got := r.Contains(c.va); got != c.want {
			t.Errorf("Contains(%#x) = %v", c.va, got)
		}
	}
	if r.End() != 0x1100 {
		t.Errorf("End() = %#x", r.End())
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bads := []Params{
		{BlockLen: 0, BackProb: 0.5, LoopSpan: 8, FwdSpan: 8},
		{BlockLen: 4, BackProb: -0.1, LoopSpan: 8, FwdSpan: 8},
		{BlockLen: 4, BackProb: 1.5, LoopSpan: 8, FwdSpan: 8},
		{BlockLen: 4, BackProb: 0.5, LoopSpan: 0, FwdSpan: 8},
		{BlockLen: 4, BackProb: 0.5, LoopSpan: 8, FwdSpan: 0},
		{BlockLen: 4, BackProb: 0.5, CallProb: 2, LoopSpan: 8, FwdSpan: 8},
	}
	for i, p := range bads {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := New(r, Region{Base: 0, Size: 32}, DefaultParams(), nil); err == nil {
		t.Error("tiny region accepted")
	}
	if _, err := New(r, Region{Base: 0, Size: 130}, DefaultParams(), nil); err == nil {
		t.Error("unaligned region accepted")
	}
}

func TestWalkerStaysInRegionOrHelpers(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		region := Region{Base: 0x40_0000, Size: 4096}
		helper := Region{Base: 0x50_0000, Size: 1024}
		w := MustNew(r, region, DefaultParams(), []Region{helper})
		for i := 0; i < 5000; i++ {
			va := w.Next()
			if !region.Contains(va) && !helper.Contains(va) {
				return false
			}
			if va%4 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkerDeterminism(t *testing.T) {
	mk := func() *Walker {
		return MustNew(rng.New(7), Region{Base: 0, Size: 2048}, DefaultParams(), nil)
	}
	a, b := mk(), mk()
	for i := 0; i < 2000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("walkers diverged at step %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestWalkerLocality(t *testing.T) {
	// A walk over a large region should still concentrate: the number of
	// distinct lines touched in N steps must be far below N (branches are
	// mostly short backward loops).
	w := MustNew(rng.New(3), Region{Base: 0, Size: 64 << 10}, DefaultParams(), nil)
	const steps = 20000
	lines := make(map[mem.VAddr]bool)
	for i := 0; i < steps; i++ {
		lines[w.Next()&^15] = true
	}
	if len(lines) > steps/4 {
		t.Fatalf("%d distinct lines in %d steps: no locality", len(lines), steps)
	}
	if len(lines) < 16 {
		t.Fatalf("only %d lines touched: walker stuck", len(lines))
	}
}

func TestJumpTo(t *testing.T) {
	w := MustNew(rng.New(5), Region{Base: 0x1000, Size: 4096}, DefaultParams(), nil)
	w.JumpTo(0x800)
	if va := w.Next(); va != 0x1800 {
		t.Fatalf("after JumpTo(0x800), Next() = %#x", va)
	}
	// Out-of-range offsets wrap rather than escape the region.
	w.JumpTo(5000)
	va := w.Next()
	if !w.Region().Contains(va) {
		t.Fatalf("JumpTo out of range escaped region: %#x", va)
	}
	// Unaligned offsets are word-aligned.
	w.JumpTo(0x803)
	if va := w.Next(); va != 0x1800 {
		t.Fatalf("JumpTo unaligned: Next() = %#x", va)
	}
}

func TestHelperCallsReturn(t *testing.T) {
	params := DefaultParams()
	params.CallProb = 0.5 // call often
	params.HelperLen = 10
	region := Region{Base: 0, Size: 1024}
	helper := Region{Base: 0x9000, Size: 2048}
	w := MustNew(rng.New(9), region, params, []Region{helper})
	inHelperRun := 0
	maxRun := 0
	for i := 0; i < 20000; i++ {
		va := w.Next()
		if helper.Contains(va) {
			inHelperRun++
			if inHelperRun > maxRun {
				maxRun = inHelperRun
			}
		} else {
			inHelperRun = 0
		}
	}
	if maxRun == 0 {
		t.Fatal("helper never entered despite CallProb 0.5")
	}
	if maxRun > params.HelperLen {
		t.Fatalf("helper run of %d exceeds HelperLen %d", maxRun, params.HelperLen)
	}
}

func TestSequentialRunsDominant(t *testing.T) {
	// With BlockLen 6 about 5/6 of transitions should be pc+4.
	w := MustNew(rng.New(21), Region{Base: 0, Size: 8192}, DefaultParams(), nil)
	prev := w.Next()
	seq := 0
	const n = 30000
	for i := 0; i < n; i++ {
		va := w.Next()
		if va == prev+4 {
			seq++
		}
		prev = va
	}
	frac := float64(seq) / n
	if frac < 0.7 || frac > 0.95 {
		t.Fatalf("sequential fraction %.2f, want ~0.83", frac)
	}
}

func BenchmarkWalkerNext(b *testing.B) {
	w := MustNew(rng.New(1), Region{Base: 0, Size: 32 << 10}, DefaultParams(), nil)
	for i := 0; i < b.N; i++ {
		_ = w.Next()
	}
}

// TestNextRunEquivalentToNext pins the NextRun contract: batching is a
// transport optimization, not a different walk. Two same-seeded walkers —
// one stepped per-instruction, one pulled in runs of varying width — must
// produce the identical fetch stream, because ExecuteRun relies on runs
// being exactly the per-reference sequence.
func TestNextRunEquivalentToNext(t *testing.T) {
	helper := Region{Base: 0x50_0000, Size: 1024}
	mk := func() *Walker {
		return MustNew(rng.New(99), Region{Base: 0x40_0000, Size: 8192},
			DefaultParams(), []Region{helper})
	}
	single, batched := mk(), mk()
	widths := []int{1, 2, 3, 7, 16, 64, 1024}
	step := 0
	for step < 50000 {
		base, n := batched.NextRun(widths[step%len(widths)])
		if n < 1 {
			t.Fatalf("NextRun returned n=%d at step %d", n, step)
		}
		for i := 0; i < n; i++ {
			want := single.Next()
			if got := base + mem.VAddr(4*i); got != want {
				t.Fatalf("step %d: run fetch %#x, per-instruction fetch %#x", step+i, got, want)
			}
		}
		step += n
	}
}
