// Package textwalk generates synthetic instruction-fetch address streams
// with program-like locality: straight-line runs punctuated by taken
// branches that are usually short backward jumps (loops), occasionally
// forward skips, and sometimes calls into shared helper regions.
//
// Both the kernel's service routines and the synthetic workload programs
// are built from these walkers. The model's purpose is not to imitate any
// particular binary but to give reference streams whose miss-ratio-versus-
// cache-size curves have the realistic shape the paper's workloads exhibit
// (Figure 2, Table 6): high miss ratios in small caches that fall toward
// zero once the cache covers the working set.
package textwalk

import (
	"fmt"

	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

// Region is a contiguous range of virtual text.
type Region struct {
	Base mem.VAddr
	Size uint32 // bytes
}

// Contains reports whether va lies in the region.
func (r Region) Contains(va mem.VAddr) bool {
	return va >= r.Base && uint32(va-r.Base) < r.Size
}

// End returns the first address past the region.
func (r Region) End() mem.VAddr { return r.Base + mem.VAddr(r.Size) }

// Params tune a walker's branch behaviour.
type Params struct {
	BlockLen  int     // mean basic-block length, instructions
	BackProb  float64 // P(taken branch is backward) — loopiness
	LoopSpan  int     // max backward branch distance, instructions
	FwdSpan   int     // max forward branch distance, instructions
	CallProb  float64 // P(a branch is instead a call to a helper region)
	HelperLen int     // instructions executed per helper call
}

// DefaultParams returns branch behaviour resembling integer code: 6-
// instruction basic blocks, 60% backward branches looping within ~48
// instructions.
func DefaultParams() Params {
	return Params{BlockLen: 6, BackProb: 0.60, LoopSpan: 48, FwdSpan: 24,
		CallProb: 0.04, HelperLen: 40}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.BlockLen < 1 {
		return fmt.Errorf("textwalk: BlockLen %d < 1", p.BlockLen)
	}
	if p.BackProb < 0 || p.BackProb > 1 || p.CallProb < 0 || p.CallProb > 1 {
		return fmt.Errorf("textwalk: probabilities out of [0,1]")
	}
	if p.LoopSpan < 1 || p.FwdSpan < 1 {
		return fmt.Errorf("textwalk: spans must be >= 1")
	}
	return nil
}

// Walker emits a locality-bearing instruction address stream over one
// region, optionally calling out to shared helper regions.
type Walker struct {
	r       *rng.Source
	region  Region
	params  Params
	helpers []Region

	pc        uint32 // byte offset within region
	inHelper  bool
	helper    Region
	helperPC  uint32
	helperRem int
}

// New creates a Walker over region with behaviour params, drawing
// randomness from r. Helper regions (shared library / kernel utility
// text) may be nil.
func New(r *rng.Source, region Region, params Params, helpers []Region) (*Walker, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if region.Size < 64 || region.Size%4 != 0 {
		return nil, fmt.Errorf("textwalk: region size %d too small or unaligned", region.Size)
	}
	return &Walker{r: r, region: region, params: params, helpers: helpers}, nil
}

// MustNew is New but panics on error.
func MustNew(r *rng.Source, region Region, params Params, helpers []Region) *Walker {
	w, err := New(r, region, params, helpers)
	if err != nil {
		panic(err)
	}
	return w
}

// Region returns the walker's home region.
func (w *Walker) Region() Region { return w.region }

// State is a Walker's complete mutable state: its private random stream
// and its position (home pc, or the helper it is currently executing).
// The immutable parts — region, params, helpers — are a pure function of
// the kernel/workload configuration and are reconstructed, not captured.
type State struct {
	RNG       rng.State
	PC        uint32
	InHelper  bool
	Helper    Region
	HelperPC  uint32
	HelperRem int
}

// State snapshots the walker for checkpointing. A walker built over the
// same (region, params, helpers) and restored with SetState emits exactly
// the stream this walker would have continued with.
func (w *Walker) State() State {
	return State{
		RNG:       w.r.State(),
		PC:        w.pc,
		InHelper:  w.inHelper,
		Helper:    w.helper,
		HelperPC:  w.helperPC,
		HelperRem: w.helperRem,
	}
}

// SetState restores a snapshot taken by State, including the random
// stream position.
func (w *Walker) SetState(s State) {
	w.r = rng.FromState(s.RNG)
	w.pc = s.PC
	w.inHelper = s.InHelper
	w.helper = s.Helper
	w.helperPC = s.HelperPC
	w.helperRem = s.HelperRem
}

// CloneWithState returns an independent walker sharing the receiver's
// immutable shape (region, params, helper list) with its mutable stream
// and position set to st. Checkpoint forks clone template walkers instead
// of re-running construction and validation; the clone never aliases
// mutable state (SetState replaces the random source wholesale).
func (w *Walker) CloneWithState(st State) *Walker {
	c := *w
	c.SetState(st)
	return &c
}

// JumpTo repositions the walker at a byte offset within its region
// (procedure entry). Offsets are clamped and word-aligned.
func (w *Walker) JumpTo(offset uint32) {
	if offset >= w.region.Size {
		offset %= w.region.Size
	}
	w.pc = offset &^ 3
	w.inHelper = false
}

// Next returns the next instruction-fetch address. It is exactly
// NextRun(1): same addresses, same randomness consumed.
func (w *Walker) Next() mem.VAddr {
	va, _ := w.NextRun(1)
	return va
}

// NextRun returns the next sequential instruction-fetch run: a base
// address and a count n in [1, max] such that the fetches are base,
// base+4, ..., base+4(n-1). Calling NextRun(max) consumes exactly the
// randomness that n calls to Next would, and leaves the walker in the
// same state — it is Next batched, not a different stream. The run ends
// early at a taken branch, a region wrap, or a helper return, so callers
// can hand whole runs to mach.ExecuteRun without changing the simulated
// address sequence.
func (w *Walker) NextRun(max int) (mem.VAddr, int) {
	if max <= 0 {
		return 0, 0
	}
	if w.inHelper {
		// Helper bodies run straight-line: no draws per instruction, so
		// the whole remaining stretch (to the helper return or the region
		// wrap) is one run.
		base := w.helper.Base + mem.VAddr(w.helperPC)
		n := max
		if n > w.helperRem {
			n = w.helperRem
		}
		if left := int(w.helper.Size-w.helperPC) / 4; n > left {
			n = left
		}
		w.helperPC += uint32(4 * n)
		if w.helperPC >= w.helper.Size {
			w.helperPC = 0
		}
		w.helperRem -= n
		if w.helperRem <= 0 {
			w.inHelper = false // return from helper
		}
		return base, n
	}

	base := w.region.Base + mem.VAddr(w.pc)
	n := 0
	for n < max {
		n++
		// Advance: usually fall through; at block boundaries, branch.
		if w.r.Intn(w.params.BlockLen) != 0 {
			w.pc += 4
			if w.pc >= w.region.Size {
				w.pc = 0
				break // wrapped: the next fetch is non-sequential
			}
			continue
		}
		w.branch()
		break
	}
	return base, n
}

// branch performs one taken control transfer from the current pc.
func (w *Walker) branch() {
	if len(w.helpers) > 0 && w.r.Bool(w.params.CallProb) {
		h := w.helpers[w.r.Intn(len(w.helpers))]
		w.inHelper = true
		w.helper = h
		// Enter at one of a handful of routine entry points; repeated
		// calls reuse the same helper lines heavily, as real library
		// code does.
		entries := int(h.Size) / 2048
		if entries < 1 {
			entries = 1
		}
		w.helperPC = uint32(w.r.Intn(entries)) * 2048 % h.Size
		w.helperRem = w.params.HelperLen
		return
	}
	if w.r.Bool(w.params.BackProb) {
		back := uint32(w.r.Intn(w.params.LoopSpan)+1) * 4
		if back > w.pc {
			w.pc = 0
		} else {
			w.pc -= back
		}
	} else {
		w.pc += uint32(w.r.Intn(w.params.FwdSpan)+1) * 4
		if w.pc >= w.region.Size {
			w.pc = 0
		}
	}
}
