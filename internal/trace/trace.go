// Package trace defines the address-trace format shared by the Pixie-style
// annotator and the Cache2000-style trace-driven simulator: in-memory
// buffers, a compact binary encoding for trace files, and the set-sampling
// trace filter whose preprocessing cost is the foil to Tapeworm's free
// hardware filtering (Section 3.2).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"tapeworm/internal/mem"
)

// Entry is one trace record: a virtual address and an access kind.
type Entry struct {
	VA   mem.VAddr
	Kind mem.RefKind
}

// Buffer is an in-memory trace.
type Buffer struct {
	entries []Entry
}

// Append adds one entry.
func (b *Buffer) Append(e Entry) { b.entries = append(b.entries, e) }

// Len returns the number of entries.
func (b *Buffer) Len() int { return len(b.entries) }

// Entries returns the backing slice (not a copy).
func (b *Buffer) Entries() []Entry { return b.entries }

// Reset empties the buffer, retaining capacity.
func (b *Buffer) Reset() { b.entries = b.entries[:0] }

// magic identifies trace files ("TWT2" = Tapeworm trace v2).
var magic = [4]byte{'T', 'W', 'T', '2'}

// Write encodes the buffer to w: a magic header, an entry count, then one
// 5-byte record per entry (4-byte little-endian address, 1-byte kind).
func (b *Buffer) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(b.entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [5]byte
	for _, e := range b.entries {
		binary.LittleEndian.PutUint32(rec[:4], uint32(e.VA))
		rec[4] = byte(e.Kind)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace file produced by Write.
func Read(r io.Reader) (*Buffer, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	const maxEntries = 1 << 30
	if n > maxEntries {
		return nil, fmt.Errorf("trace: implausible entry count %d", n)
	}
	b := &Buffer{entries: make([]Entry, 0, n)}
	var rec [5]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: entry %d: %w", i, err)
		}
		k := mem.RefKind(rec[4])
		if k > mem.Store {
			return nil, fmt.Errorf("trace: entry %d has bad kind %d", i, rec[4])
		}
		b.entries = append(b.entries, Entry{
			VA:   mem.VAddr(binary.LittleEndian.Uint32(rec[:4])),
			Kind: k,
		})
	}
	return b, nil
}

// SetIndexFunc maps an address to a cache set; the filter borrows it from
// the cache geometry under study.
type SetIndexFunc func(addr uint32) int

// FilterSample returns the subtrace of entries mapping to sampled sets.
// This is the software preprocessing that trace-driven set sampling
// requires [Puzak85, Kessler91]: unlike Tapeworm's trap-pattern sampling,
// every address must be examined (CyclesPerEntry each), and obtaining a
// *different* sample means reprocessing the full trace again.
func FilterSample(in *Buffer, setOf SetIndexFunc, sampled func(set int) bool) (*Buffer, uint64) {
	const cyclesPerEntry = 6 // index computation + test + copy
	out := &Buffer{}
	for _, e := range in.entries {
		if sampled(setOf(uint32(e.VA))) {
			out.Append(e)
		}
	}
	return out, uint64(in.Len()) * cyclesPerEntry
}
