package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	var b Buffer
	entries := []Entry{
		{VA: 0x0040_0000, Kind: mem.IFetch},
		{VA: 0x1000_0004, Kind: mem.Load},
		{VA: 0x7fff_f000, Kind: mem.Store},
	}
	for _, e := range entries {
		b.Append(e)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(entries) {
		t.Fatalf("read %d entries, want %d", got.Len(), len(entries))
	}
	for i, e := range got.Entries() {
		if e != entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, e, entries[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var b Buffer
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty trace read back %d entries", got.Len())
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		r := rng.New(seed)
		n := int(nRaw % 2000)
		var b Buffer
		for i := 0; i < n; i++ {
			b.Append(Entry{
				VA:   mem.VAddr(r.Uint32()),
				Kind: mem.RefKind(r.Intn(3)),
			})
		}
		var buf bytes.Buffer
		if b.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Len() != n {
			return false
		}
		for i := range got.Entries() {
			if got.Entries()[i] != b.Entries()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOPE\x00\x00\x00\x00\x00\x00\x00\x00"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	var b Buffer
	b.Append(Entry{VA: 1, Kind: mem.IFetch})
	b.Append(Entry{VA: 2, Kind: mem.Load})
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReadRejectsBadKind(t *testing.T) {
	var b Buffer
	b.Append(Entry{VA: 1, Kind: mem.IFetch})
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 9 // corrupt the kind byte
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt kind accepted")
	}
}

func TestReadRejectsImplausibleCount(t *testing.T) {
	raw := append([]byte("TWT2"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestReset(t *testing.T) {
	var b Buffer
	b.Append(Entry{VA: 1})
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not empty the buffer")
	}
}

func TestFilterSample(t *testing.T) {
	// 64 sets of 16-byte lines; sample sets 0-31 (first half).
	setOf := func(addr uint32) int { return int((addr >> 4) & 63) }
	sampled := func(s int) bool { return s < 32 }

	var in Buffer
	for i := 0; i < 128; i++ {
		in.Append(Entry{VA: mem.VAddr(i * 16), Kind: mem.IFetch})
	}
	out, cycles := FilterSample(&in, setOf, sampled)
	if out.Len() != 64 {
		t.Fatalf("filtered %d entries, want 64", out.Len())
	}
	for _, e := range out.Entries() {
		if !sampled(setOf(uint32(e.VA))) {
			t.Fatalf("unsampled entry %#x survived the filter", e.VA)
		}
	}
	// The preprocessing cost is what Tapeworm's trap-pattern sampling
	// avoids: proportional to the FULL trace, not the sample.
	if cycles != uint64(in.Len())*6 {
		t.Fatalf("preprocessing cost %d, want %d", cycles, in.Len()*6)
	}
}
