package core

import (
	"fmt"
	"reflect"
	"testing"

	"tapeworm/internal/cache"
)

// wideGangConfigs builds n diverse member configurations: a rotating mix
// of cache geometries (sizes, associativities, line sizes, indexing,
// sampling) with every fifth member a TLB simulator, so wide gangs
// exercise both trap mechanisms and the mixed demux paths.
func wideGangConfigs(n int) []Config {
	out := make([]Config, 0, n)
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			out = append(out, Config{
				Mode:     ModeTLB,
				TLB:      cache.TLBConfig{Entries: 8 << (i % 3), PageSize: 4096, Replace: cache.LRU},
				Sampling: FullSampling(),
			})
			continue
		}
		sampling := FullSampling()
		if i%7 == 3 {
			sampling = Sampling{Num: 1, Den: 4}
		}
		idx := cache.PhysIndexed
		if i%2 == 1 {
			idx = cache.VirtIndexed
		}
		out = append(out, Config{
			Mode: ModeICache,
			Cache: cache.Config{
				Size:     4 << (10 + i%4),
				LineSize: 16 << (i % 2),
				Assoc:    1 << (i % 3),
				Indexing: idx,
			},
			Sampling: sampling,
		})
	}
	return out
}

// runDemuxGang boots a fresh machine, attaches cfgs as one gang with the
// chosen demux strategy, optionally detaches members mid-run, finishes the
// workload, and returns every member's results (detached members' frozen)
// plus the final cycle count.
func runDemuxGang(t *testing.T, cfgs []Config, wl string, seed uint64, linear bool, detachAt uint64, detachIdx []int) ([]memberResult, uint64) {
	t.Helper()
	k := bootDEC(t, 11, 13)
	g := MustAttachGang(k, cfgs)
	g.SetLinearDemux(linear)
	spawnWorkload(t, k, wl, seed, true)
	if detachAt > 0 {
		if err := k.Run(detachAt); err != nil {
			t.Fatal(err)
		}
		for _, i := range detachIdx {
			if err := g.Detach(g.Members()[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	out := make([]memberResult, 0, len(cfgs))
	for _, tw := range g.Members() {
		out = append(out, memberResult{tw.Stats(), tw.MissesByTask(), tw.LedgerCycles()})
	}
	return out, k.Machine().Cycles()
}

// TestGangDemuxByteIdentityWide checks byte-identity of wide gangs under
// the member-intent bitset demux: at 16 and 32 members, every member's
// statistics must be identical under the bitset walk and the linear probe
// walk, the shared stream must not dilate, and sampled members must match
// their gang-of-1 runs.
func TestGangDemuxByteIdentityWide(t *testing.T) {
	for _, n := range []int{16, 32} {
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			cfgs := wideGangConfigs(n)
			bitset, bitsetCycles := runDemuxGang(t, cfgs, "eqntott", 42, false, 0, nil)
			linear, linearCycles := runDemuxGang(t, cfgs, "eqntott", 42, true, 0, nil)
			if bitsetCycles != linearCycles {
				t.Errorf("shared stream dilated: bitset %d cycles, linear %d", bitsetCycles, linearCycles)
			}
			for i := range cfgs {
				if !reflect.DeepEqual(bitset[i], linear[i]) {
					t.Errorf("member %d diverged between demux strategies:\nbitset: %+v\nlinear: %+v",
						i, bitset[i], linear[i])
				}
			}
			for _, i := range []int{0, n / 2, n - 1} {
				solo, soloCycles := runDemuxGang(t, cfgs[i:i+1], "eqntott", 42, false, 0, nil)
				if !reflect.DeepEqual(solo[0], bitset[i]) {
					t.Errorf("member %d diverged from solo run:\nsolo:   %+v\nganged: %+v",
						i, solo[0], bitset[i])
				}
				if soloCycles != bitsetCycles {
					t.Errorf("member %d: solo %d cycles, ganged %d", i, soloCycles, bitsetCycles)
				}
			}
		})
	}
}

// TestGangDemuxDetachMidRun detaches a cache member and a TLB member
// partway through a 16-member run under the bitset demux: the mask pages
// and invalid-intent masks must shed exactly the detached members' bits,
// so the survivors finish byte-identical to the linear-demux run with the
// same detach schedule, and to their solo runs.
func TestGangDemuxDetachMidRun(t *testing.T) {
	cfgs := wideGangConfigs(16)
	detach := []int{3, 4} // an ICache member and a TLB member
	bitset, bitsetCycles := runDemuxGang(t, cfgs, "espresso", 7, false, 2500, detach)
	linear, linearCycles := runDemuxGang(t, cfgs, "espresso", 7, true, 2500, detach)
	if bitsetCycles != linearCycles {
		t.Errorf("shared stream dilated: bitset %d cycles, linear %d", bitsetCycles, linearCycles)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(bitset[i], linear[i]) {
			t.Errorf("member %d diverged between demux strategies after detach:\nbitset: %+v\nlinear: %+v",
				i, bitset[i], linear[i])
		}
	}
	solo, _ := runDemuxGang(t, cfgs[:1], "espresso", 7, false, 0, nil)
	if !reflect.DeepEqual(solo[0], bitset[0]) {
		t.Errorf("survivor diverged from solo run after detach:\nsolo:   %+v\nganged: %+v",
			solo[0], bitset[0])
	}
}
