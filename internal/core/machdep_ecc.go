package core

// This file is part of Tapeworm's machine-dependent layer (Table 11): the
// ECC check-bit trap mechanism of the DECstation 5000/200 port. tw_set_trap
// and tw_clear_trap are implemented by driving the memory-controller
// ASIC's diagnostic interface, flipping the dedicated Tapeworm check bit of
// each word; setting a trap must also flush the host cache line, or a
// resident line would never refill and the trap would never fire.

import (
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

// trapMech abstracts how memory traps are planted — the machine-dependent
// kernel interface of Table 1's tw_set_trap/tw_clear_trap.
type trapMech interface {
	// SetTrap arms [pa, pa+size) so that any use traps to the kernel.
	SetTrap(pa mem.PAddr, size int)
	// ClearTrap disarms [pa, pa+size).
	ClearTrap(pa mem.PAddr, size int)
	// SetupCycles is the overhead of arming/disarming n words.
	SetupCycles(words int) uint64
	// Name identifies the mechanism for reports.
	Name() string
}

// eccMech plants traps by corrupting ECC check bits.
type eccMech struct {
	m *mach.Machine
}

func newECCMech(m *mach.Machine) *eccMech { return &eccMech{m: m} }

// SetTrap corrupts the Tapeworm check bit of every word in the range and
// flushes the host cache lines so the next use refills and checks ECC.
func (e *eccMech) SetTrap(pa mem.PAddr, size int) {
	e.m.Controller().SetTrap(pa, size)
	e.m.FlushHostLine(pa, size)
}

// ClearTrap restores correct check bits across the range.
func (e *eccMech) ClearTrap(pa mem.PAddr, size int) {
	e.m.Controller().ClearTrap(pa, size)
}

// SetupCycles prices the diagnostic-register dance for n words.
func (e *eccMech) SetupCycles(words int) uint64 {
	// A fixed register dance plus per-word flips through the diagnostic
	// interface of the memory ASIC.
	return 10 + uint64(words)*registerWordCycles
}

// Name identifies the mechanism for reports.
func (e *eccMech) Name() string { return "ECC check bits" }
