package core

import (
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

// These tests pin the byte-identity contract of the batched hit fast path
// (mach.Config.NoFastPath) at its invalidation edges. Each scenario is
// built to stress one way a memoized translation or a batched run can go
// stale — fork-time text sharing, frame reuse after exit, valid-bit
// flips by the page-valid mechanism, DMA destroying traps mid-buffer,
// breakpoints armed and cleared under the program's feet — and is run
// twice, fast path on and off. Every architecturally visible observable
// must match exactly; a single divergent counter means the fast path took
// a shortcut the reference path would not have.

// fpState is the full observable state of a finished simulation. It is a
// comparable struct so scenarios can be checked with a single !=.
type fpState struct {
	cycles   uint64
	instret  uint64
	counters mach.Counters
	comp     [kernel.NumComponents]uint64
	misses   uint64
	tw       Stats
}

// snapshot collects the observable state of k (and tw, when attached).
func snapshot(k *kernel.Kernel, tw *Tapeworm) fpState {
	s := fpState{
		cycles:   k.Machine().Cycles(),
		instret:  k.Machine().Instructions(),
		counters: k.Machine().Counters(),
		comp:     k.ComponentInstructions(),
	}
	if tw != nil {
		s.misses = tw.Misses()
		s.tw = tw.Stats()
	}
	return s
}

// runBoth runs scenario under both fast-path settings and requires
// identical outcomes. The fast run goes first so a scenario that panics
// only on the batched path fails loudly rather than vacuously passing.
func runBoth(t *testing.T, scenario func(t *testing.T, noFast bool) fpState) {
	t.Helper()
	fast := scenario(t, false)
	slow := scenario(t, true)
	if fast != slow {
		t.Fatalf("fast path changed observable state:\nfast: %+v\nslow: %+v", fast, slow)
	}
	// A scenario that simulated nothing proves nothing.
	if fast.instret == 0 || fast.cycles == 0 {
		t.Fatalf("scenario executed nothing: %+v", fast)
	}
}

// TestFastPathEquivForkSharedText covers the fork edge: sharing text gives
// the child mappings to frames the parent's translations were memoized
// against, so fork must invalidate or the child would inherit stale
// entries under a different task ID.
func TestFastPathEquivForkSharedText(t *testing.T) {
	runBoth(t, func(t *testing.T, noFast bool) fpState {
		cfg := kernel.DefaultConfig(mach.DECstation5000_200(4096), 11)
		cfg.Machine.NoFastPath = noFast
		k := kernel.MustBoot(cfg)
		tw := MustAttach(k, dmICache(4, cache.VirtIndexed))

		// Parent runs long enough to warm the translation memo, forks a
		// text-sharing child mid-stream, then keeps running interleaved
		// with it under the scheduler.
		child := &scriptedRefs{base: kernel.TextBase, n: 4000}
		parent := &forkAfter{base: kernel.TextBase, before: 3000, after: 3000,
			child: child, shareText: true}
		k.Spawn("parent", parent, true, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		st := snapshot(k, tw)
		if st.misses == 0 {
			t.Fatal("no simulated misses; traps never exercised")
		}
		return st
	})
}

// TestFastPathEquivExitFrameReuse covers the exit edge under memory
// pressure: the first hog's frames are freed at exit and reallocated to
// the second, while eviction recycles frames within each run — any
// translation memoized against the old owner must be gone.
func TestFastPathEquivExitFrameReuse(t *testing.T) {
	runBoth(t, func(t *testing.T, noFast bool) fpState {
		cfg := kernel.DefaultConfig(mach.DECstation5000_200(200), 13)
		cfg.TapewormFrames = 8
		cfg.Machine.NoFastPath = noFast
		k := kernel.MustBoot(cfg)

		// Two hogs, spawned together: each touches more distinct data
		// pages than there are free frames, forcing page-outs while both
		// run and wholesale frame reuse when the first exits.
		k.Spawn("hog1", &pageHog{pages: 300}, true, false)
		k.Spawn("hog2", &pageHog{pages: 300}, true, false)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		if k.Stats().PageOuts == 0 {
			t.Fatal("no page-outs; eviction edge not exercised")
		}
		return snapshot(k, nil)
	})
}

// TestFastPathEquivValidBitTraps covers the page-valid mechanism: TLB-mode
// simulation plants traps by clearing valid bits (tw_set_trap), so every
// simulated TLB displacement flips a PTE out from under possibly-memoized
// translations, and every refill flips one back.
func TestFastPathEquivValidBitTraps(t *testing.T) {
	runBoth(t, func(t *testing.T, noFast bool) fpState {
		cfg := kernel.DefaultConfig(mach.DECstation5000_200(4096), 17)
		cfg.Machine.NoFastPath = noFast
		k := kernel.MustBoot(cfg)
		tw := MustAttach(k, Config{
			Mode:     ModeTLB,
			TLB:      cache.TLBConfig{Entries: 16, PageSize: 4096, Replace: cache.LRU},
			Sampling: FullSampling(),
		})
		spawnWorkload(t, k, "mpeg_play", 19, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		st := snapshot(k, tw)
		if st.misses == 0 {
			t.Fatal("no TLB misses; valid-bit edge not exercised")
		}
		return st
	})
}

// TestFastPathEquivDMATrapDestruction covers the 5000/240 hazard: DMA
// writes silently rewrite ECC on the I/O buffer, destroying traps with no
// kernel hook — the fast path must observe the destruction through the
// host-line flush, not skip past it inside a batched run.
func TestFastPathEquivDMATrapDestruction(t *testing.T) {
	runBoth(t, func(t *testing.T, noFast bool) fpState {
		cfg := kernel.DefaultConfig(mach.DECstation5000_240(4096), 23)
		cfg.Machine.NoFastPath = noFast
		k := kernel.MustBoot(cfg)
		tw := MustAttach(k, Config{
			Mode: ModeDCache,
			Cache: cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
				Indexing: cache.VirtIndexed},
			Sampling:         FullSampling(),
			AllowWriteClears: true,
		})
		k.Spawn("victim", &dmaVictim{rounds: 50}, true, false)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		st := snapshot(k, tw)
		if st.counters.DMAClears == 0 {
			t.Fatal("no DMA trap destruction; hazard not exercised")
		}
		return st
	})
}

// TestFastPathEquivBreakpointArmClear covers the breakpoint mechanism (the
// 486 port): tw_replace arms breakpoint registers on miss and clears them
// on displacement while the measured program runs, so batched runs must
// abort at every arm/clear boundary.
func TestFastPathEquivBreakpointArmClear(t *testing.T) {
	runBoth(t, func(t *testing.T, noFast bool) fpState {
		cfg := kernel.DefaultConfig(mach.Gateway486(4096), 29)
		cfg.Machine.NoFastPath = noFast
		k := kernel.MustBoot(cfg)
		tw := MustAttach(k, dmICache(2, cache.VirtIndexed))
		spawnWorkload(t, k, "espresso", 31, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		st := snapshot(k, tw)
		if st.counters.BreakpointArms == 0 || st.counters.BreakpointTraps == 0 {
			t.Fatalf("breakpoints not exercised: %+v", st.counters)
		}
		return st
	})
}

// scriptedRefs issues n sequential ifetches from base, then exits.
type scriptedRefs struct {
	base mem.VAddr
	n    int
	pos  int
}

func (p *scriptedRefs) Next() kernel.Event {
	if p.pos >= p.n {
		return kernel.Event{Kind: kernel.EvExit}
	}
	va := p.base + mem.VAddr(p.pos*4)
	p.pos++
	return kernel.Event{Kind: kernel.EvRef, Ref: mem.Ref{VA: va, Kind: mem.IFetch}}
}

// forkAfter runs `before` ifetches, forks child, then runs `after` more.
type forkAfter struct {
	base          mem.VAddr
	before, after int
	child         kernel.Program
	shareText     bool
	pos           int
	forked        bool
}

func (p *forkAfter) Next() kernel.Event {
	if p.pos == p.before && !p.forked {
		p.forked = true
		return kernel.Event{Kind: kernel.EvFork, Child: p.child, ShareText: p.shareText}
	}
	if p.pos >= p.before+p.after {
		return kernel.Event{Kind: kernel.EvExit}
	}
	va := p.base + mem.VAddr(p.pos*4)
	p.pos++
	return kernel.Event{Kind: kernel.EvRef, Ref: mem.Ref{VA: va, Kind: mem.IFetch}}
}

// pageHog loads one word from each of `pages` distinct data pages, with a
// short ifetch run between loads so text stays hot while data churns.
type pageHog struct {
	pages int
	pos   int
}

func (p *pageHog) Next() kernel.Event {
	if p.pos >= p.pages*4 {
		return kernel.Event{Kind: kernel.EvExit}
	}
	s := p.pos
	p.pos++
	if s%4 == 3 { // every fourth event touches a fresh data page
		va := kernel.DataBase + mem.VAddr((s/4)*4096)
		return kernel.Event{Kind: kernel.EvRef, Ref: mem.Ref{VA: va, Kind: mem.Load}}
	}
	va := kernel.TextBase + mem.VAddr((s%64)*4)
	return kernel.Event{Kind: kernel.EvRef, Ref: mem.Ref{VA: va, Kind: mem.IFetch}}
}
