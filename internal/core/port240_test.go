package core

import (
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

func boot240(t *testing.T, seed uint64) *kernel.Kernel {
	t.Helper()
	cfg := kernel.DefaultConfig(mach.DECstation5000_240(4096), seed)
	return kernel.MustBoot(cfg)
}

// TestSuperpageTLBOn240 exercises variable page sizes: the R4000-based
// 5000/240 accepts 16K simulated pages (the R3000 rejects them —
// TestVariablePageSizeGate), and larger pages extend TLB reach, missing
// less for the same entry count [Talluri94].
func TestSuperpageTLBOn240(t *testing.T) {
	runWith := func(pageSize int) uint64 {
		k := boot240(t, 61)
		tw := MustAttach(k, Config{
			Mode:     ModeTLB,
			TLB:      cache.TLBConfig{Entries: 8, PageSize: pageSize, Replace: cache.LRU},
			Sampling: FullSampling(),
		})
		spawnWorkload(t, k, "mpeg_play", 67, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return tw.Misses()
	}
	base := runWith(4096)
	superpage := runWith(16384)
	if base == 0 || superpage == 0 {
		t.Fatalf("misses: base %d, superpage %d", base, superpage)
	}
	if superpage >= base {
		t.Fatalf("16K pages (%d misses) should beat 4K pages (%d) at equal entries",
			superpage, base)
	}
}

// TestDMAWorkaroundOnPredictableHost verifies the 5000/200-style bracket:
// read/write syscalls on a machine with predictable DMA never destroy
// traps — the kernel removes and re-registers the buffer page around each
// transfer.
func TestDMAWorkaroundOnPredictableHost(t *testing.T) {
	cfg := kernel.DefaultConfig(mach.WWTNode(4096), 71) // predictable + allocate-on-write
	k := kernel.MustBoot(cfg)
	MustAttach(k, Config{
		Mode: ModeUnified,
		Cache: cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 1,
			Indexing: cache.PhysIndexed},
		Sampling: FullSampling(),
	})
	spawnWorkload(t, k, "espresso", 73, true) // espresso's mix includes reads
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	c := k.Machine().Counters()
	if c.DMAClears != 0 || c.DMAFaults != 0 {
		t.Fatalf("predictable-DMA host lost traps to DMA: clears=%d faults=%d",
			c.DMAClears, c.DMAFaults)
	}
}

// dmaVictim is a pure-load program that keeps its I/O buffer page's lines
// *out* of a small simulated cache when read syscalls arrive: it loads the
// buffer, evicts it with a conflicting range, and then issues a read. Each
// read's DMA then lands on trapped words.
type dmaVictim struct {
	rounds int
	step   int
}

func (p *dmaVictim) Next() kernel.Event {
	const lines = 32
	if p.rounds == 0 {
		return kernel.Event{Kind: kernel.EvExit}
	}
	s := p.step
	p.step++
	switch {
	case s < lines: // touch the buffer page
		return loadAt(uint32(s) * 16)
	case s < 2*lines: // evict it (same sets, 8K away, virtual indexing)
		return loadAt(8<<10 + uint32(s-lines)*16)
	default:
		p.step = 0
		p.rounds--
		return kernel.Event{Kind: kernel.EvSyscall, Service: kernel.SvcRead}
	}
}

func loadAt(off uint32) kernel.Event {
	return kernel.Event{Kind: kernel.EvRef,
		Ref: mem.Ref{VA: kernel.DataBase + mem.VAddr(off), Kind: mem.Load}}
}

// TestDMAHazardOn240 reproduces what "hindered" the 5000/240 port
// (Section 4.3): its DMA engine rewrites ECC on writes, so cache
// simulations silently lose traps on I/O buffers, while the predictable
// 5000/200-style machines bracket the transfer and lose nothing.
func TestDMAHazardOn240(t *testing.T) {
	geom := cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
		Indexing: cache.VirtIndexed}

	k := boot240(t, 79)
	tw := MustAttach(k, Config{
		Mode: ModeDCache, Cache: geom,
		Sampling:         FullSampling(),
		AllowWriteClears: true, // the R4000 DECstation is also no-allocate
	})
	k.Spawn("victim", &dmaVictim{rounds: 50}, true, false)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	c := k.Machine().Counters()
	if c.DMAClears == 0 {
		t.Fatal("no DMA trap destruction observed on the 5000/240")
	}
	drops := c.MaskedDrops + c.SilentClears + c.DMAClears + c.DMAFaults +
		tw.Stats().CrossKindClears
	if err := tw.CheckInvariant(drops); err != nil {
		t.Fatal(err)
	}

	// The same program on a predictable-DMA, allocate-on-write host loses
	// nothing: the kernel brackets each transfer with
	// tw_remove_page/tw_register_page.
	k2 := kernel.MustBoot(kernel.DefaultConfig(mach.WWTNode(4096), 79))
	geom2 := geom
	geom2.LineSize = 32
	MustAttach(k2, Config{Mode: ModeDCache, Cache: geom2, Sampling: FullSampling()})
	k2.Spawn("victim", &dmaVictim{rounds: 50}, true, false)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	if c2 := k2.Machine().Counters(); c2.DMAClears != 0 || c2.DMAFaults != 0 {
		t.Fatalf("bracketed DMA still lost traps: %+v", c2)
	}
}

// TestTLBModeImmuneToDMA explains why TLB porting survived the 5000/240:
// page-valid-bit traps live in page-table entries, not in memory check
// bits, so DMA cannot destroy them.
func TestTLBModeImmuneToDMA(t *testing.T) {
	k := boot240(t, 83)
	tw := MustAttach(k, Config{
		Mode:     ModeTLB,
		TLB:      cache.TLBConfig{Entries: 16, PageSize: 4096, Replace: cache.LRU},
		Sampling: FullSampling(),
	})
	spawnWorkload(t, k, "espresso", 73, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if tw.Misses() == 0 {
		t.Fatal("no TLB misses")
	}
	if err := tw.CheckInvariant(0); err != nil {
		t.Fatalf("DMA disturbed page-valid traps: %v", err)
	}
}

// TestICacheOn240WithECC confirms cache simulation is mechanically
// possible on the R4000 machine (ECC granularity 16 bytes), DMA hazards
// aside.
func TestICacheOn240WithECC(t *testing.T) {
	k := boot240(t, 89)
	tw := MustAttach(k, dmICache(4, cache.PhysIndexed))
	if tw.MechanismName() != "ECC check bits" {
		t.Fatalf("mechanism = %q", tw.MechanismName())
	}
	spawnWorkload(t, k, "espresso", 91, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if tw.Misses() == 0 {
		t.Fatal("no misses")
	}
}

// TestDMAMachinePrimitives checks the machine-level DMA semantics
// directly.
func TestDMAMachinePrimitives(t *testing.T) {
	k := boot240(t, 97)
	m := k.Machine()
	ctl := m.Controller()

	ctl.SetTrap(0x40000, 64)
	m.DMAWrite(0x40000, 64)
	if m.Phys().Trapped(0x40000, 64) {
		t.Fatal("DMA write left traps standing")
	}
	if m.Counters().DMAClears != 16 {
		t.Fatalf("DMAClears = %d, want 16 words", m.Counters().DMAClears)
	}

	ctl.SetTrap(0x50000, 16)
	m.DMARead(0x50000, 16)
	if m.Counters().DMAFaults != 4 {
		t.Fatalf("DMAFaults = %d, want 4 words", m.Counters().DMAFaults)
	}
	if m.Phys().Trapped(0x50000, 16) {
		t.Fatal("faulted DMA read must clear the trap to make progress")
	}

	// True errors are never masked by DMA writes (only the Tapeworm bit
	// is recomputed per-word by this model's clear).
	m.Phys().InjectError(0x60000, 20)
	m.DMARead(0x60000, 16)
	if m.Phys().Classify(0x60000) == mem.SynOK {
		t.Fatal("DMA read destroyed a true error record")
	}
}
