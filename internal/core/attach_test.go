package core

import (
	"strings"
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

func TestAttachValidation(t *testing.T) {
	mk := func() *kernel.Kernel { return bootDEC(t, 1, 1) }

	// Bad cache geometry.
	if _, err := Attach(mk(), Config{Mode: ModeICache,
		Cache: cache.Config{Size: 3000, LineSize: 16, Assoc: 1}}); err == nil {
		t.Error("bad cache geometry accepted")
	}
	// Line size beyond the page.
	if _, err := Attach(mk(), Config{Mode: ModeICache,
		Cache: cache.Config{Size: 64 << 10, LineSize: 8192, Assoc: 1}}); err == nil {
		t.Error("line > page accepted")
	}
	// Line size the R3000's ECC granularity cannot express.
	_, err := Attach(mk(), Config{Mode: ModeICache,
		Cache: cache.Config{Size: 4 << 10, LineSize: 8, Assoc: 1}})
	if err == nil || !strings.Contains(err.Error(), "refill") {
		t.Errorf("8-byte lines on R3000: %v", err)
	}
	// Bad sampling.
	if _, err := Attach(mk(), Config{Mode: ModeICache,
		Cache:    cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1},
		Sampling: Sampling{Num: 5, Den: 3}}); err == nil {
		t.Error("bad sampling accepted")
	}
	// Bad TLB geometry.
	if _, err := Attach(mk(), Config{Mode: ModeTLB,
		TLB: cache.TLBConfig{Entries: 63, PageSize: 4096}}); err == nil {
		t.Error("bad TLB geometry accepted")
	}
	// Unknown mode.
	if _, err := Attach(mk(), Config{Mode: Mode(99)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestVariablePageSizeGate(t *testing.T) {
	// Simulating 16K pages requires variable-page-size host support;
	// the R3000 lacks it (Table 12), the R4000 would have it.
	k := bootDEC(t, 1, 1)
	_, err := Attach(k, Config{Mode: ModeTLB,
		TLB: cache.TLBConfig{Entries: 64, PageSize: 16384}})
	if err == nil || !strings.Contains(err.Error(), "variable page size") {
		t.Fatalf("16K pages on R3000: %v", err)
	}
	// Page sizes below the host page are inexpressible with valid bits.
	_, err = Attach(k, Config{Mode: ModeTLB,
		TLB: cache.TLBConfig{Entries: 64, PageSize: 1024}})
	if err == nil {
		t.Fatal("sub-page TLB granularity accepted")
	}
}

func TestKernelAttributesInTLBModeRejected(t *testing.T) {
	k := bootDEC(t, 1, 1)
	tw := MustAttach(k, Config{Mode: ModeTLB,
		TLB:      cache.TLBConfig{Entries: 64, PageSize: 4096},
		Sampling: FullSampling()})
	if err := tw.Attributes(mem.KernelTask, true, false); err == nil {
		t.Fatal("kernel TLB simulation should be rejected (kseg0 is not TLB-mapped)")
	}
}

func TestAttributesUnknownTask(t *testing.T) {
	k := bootDEC(t, 1, 1)
	tw := MustAttach(k, dmICache(4, cache.PhysIndexed))
	if err := tw.Attributes(12345, true, false); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestMechanismNames(t *testing.T) {
	k := bootDEC(t, 1, 1)
	tw := MustAttach(k, dmICache(4, cache.PhysIndexed))
	if tw.MechanismName() != "ECC check bits" {
		t.Fatalf("DECstation mechanism = %q", tw.MechanismName())
	}
	k2 := bootDEC(t, 1, 1)
	tlb := MustAttach(k2, Config{Mode: ModeTLB,
		TLB:      cache.TLBConfig{Entries: 64, PageSize: 4096},
		Sampling: FullSampling()})
	if tlb.MechanismName() != "page valid bits" {
		t.Fatalf("TLB mechanism = %q", tlb.MechanismName())
	}
}

func TestSharedPageRefcounting(t *testing.T) {
	// A forked child sharing text must not reset traps: lines cached by
	// the parent stay cached (the child benefits from shared entries),
	// and the page is flushed only when the last mapping goes.
	k := bootDEC(t, 2, 2)
	tw := MustAttach(k, dmICache(64, cache.PhysIndexed))
	spawnWorkload(t, k, "ousterhout", 9, true) // ChildShareText fork tree
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	st := tw.Stats()
	if st.Registrations <= st.Removals-1 || st.Removals == 0 {
		t.Fatalf("registrations %d / removals %d", st.Registrations, st.Removals)
	}
	if st.PagesTracked != 0 {
		t.Fatalf("%d pages still tracked after teardown", st.PagesTracked)
	}
	if st.LostDisplaced > st.Misses/100 {
		t.Fatalf("%d lost displacements out of %d misses", st.LostDisplaced, st.Misses)
	}
}

func TestEstimatedMissesScaling(t *testing.T) {
	k := bootDEC(t, 3, 3)
	cfg := dmICache(4, cache.VirtIndexed)
	cfg.Sampling = Sampling{Num: 1, Den: 4}
	tw := MustAttach(k, cfg)
	spawnWorkload(t, k, "espresso", 13, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if got, want := tw.EstimatedMisses(), 4*float64(tw.Misses()); got != want {
		t.Fatalf("estimate %v, want %v", got, want)
	}
}

func TestUnifiedModeOnWWT(t *testing.T) {
	cfg := kernel.DefaultConfig(mach.WWTNode(4096), 17)
	k := kernel.MustBoot(cfg)
	tw := MustAttach(k, Config{
		Mode: ModeUnified,
		Cache: cache.Config{Size: 16 << 10, LineSize: 32, Assoc: 2,
			Indexing: cache.PhysIndexed},
		Sampling: FullSampling(),
	})
	spawnWorkload(t, k, "espresso", 19, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if tw.Misses() == 0 {
		t.Fatal("unified simulation recorded no misses")
	}
	// Unified mode must see more misses than an I-only simulation of the
	// same geometry (data lines compete and miss too).
	k2 := kernel.MustBoot(kernel.DefaultConfig(mach.WWTNode(4096), 17))
	twI := MustAttach(k2, Config{
		Mode: ModeICache,
		Cache: cache.Config{Size: 16 << 10, LineSize: 32, Assoc: 2,
			Indexing: cache.PhysIndexed},
		Sampling: FullSampling(),
	})
	spawnWorkload(t, k2, "espresso", 19, true)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	if tw.Misses() <= twI.Misses() {
		t.Fatalf("unified misses %d not above I-only %d", tw.Misses(), twI.Misses())
	}
}

func TestDoubleAttachSecondWins(t *testing.T) {
	// Attaching twice replaces the kernel's hooks; the first simulator
	// stops receiving traps. (Documented behaviour of SetHooks.)
	k := bootDEC(t, 5, 5)
	first := MustAttach(k, dmICache(4, cache.PhysIndexed))
	second := MustAttach(k, dmICache(4, cache.PhysIndexed))
	spawnWorkload(t, k, "espresso", 23, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if first.Misses() != 0 {
		t.Fatalf("replaced simulator still counted %d misses", first.Misses())
	}
	if second.Misses() == 0 {
		t.Fatal("active simulator counted nothing")
	}
}
