package core

import (
	"testing"

	"tapeworm/internal/cache"
)

func l1l2Config(l1KB, l2KB int) Config {
	l2 := cache.Config{Size: l2KB << 10, LineSize: 16, Assoc: 2,
		Indexing: cache.VirtIndexed}
	return Config{
		Mode: ModeICache,
		Cache: cache.Config{Size: l1KB << 10, LineSize: 16, Assoc: 1,
			Indexing: cache.VirtIndexed},
		L2:       &l2,
		Sampling: FullSampling(),
	}
}

func TestTwoLevelValidation(t *testing.T) {
	k := bootDEC(t, 1, 1)
	cfg := l1l2Config(4, 32)
	bad := *cfg.L2
	bad.Size = 3000
	cfg.L2 = &bad
	if _, err := Attach(k, cfg); err == nil {
		t.Fatal("invalid L2 geometry accepted")
	}
	// L2 smaller than L1 violates inclusion.
	cfg = l1l2Config(32, 4)
	if _, err := Attach(bootDEC(t, 1, 1), cfg); err == nil {
		t.Fatal("L2 smaller than L1 accepted")
	}
}

func TestTwoLevelCountsOverallMisses(t *testing.T) {
	k := bootDEC(t, 3, 3)
	tw := MustAttach(k, l1l2Config(2, 32))
	spawnWorkload(t, k, "mpeg_play", 7, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	twoLevel := tw.Misses()
	if twoLevel == 0 {
		t.Fatal("no overall misses")
	}

	// A small single-level cache of the L1 geometry must miss far more:
	// the hierarchy's L2 absorbs the L1's conflict misses invisibly.
	k2 := bootDEC(t, 3, 3)
	small := MustAttach(k2, Config{
		Mode: ModeICache,
		Cache: cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1,
			Indexing: cache.VirtIndexed},
		Sampling: FullSampling(),
	})
	spawnWorkload(t, k2, "mpeg_play", 7, true)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	if twoLevel >= small.Misses() {
		t.Fatalf("two-level misses %d not below L1-only misses %d",
			twoLevel, small.Misses())
	}
}

// TestTwoLevelDegeneratesToL2 pins down an inherent property of
// trap-driven multi-level simulation: because hits (including L1-miss/
// L2-hit refills) are invisible, the hierarchy's countable misses are
// exactly those of its largest level simulated alone. tw_replace can
// maintain both tag arrays, but the trap machinery can only distinguish
// "somewhere in the hierarchy" from "nowhere".
func TestTwoLevelDegeneratesToL2(t *testing.T) {
	k := bootDEC(t, 5, 5)
	two := MustAttach(k, l1l2Config(2, 32))
	spawnWorkload(t, k, "xlisp", 11, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}

	k2 := bootDEC(t, 5, 5)
	flat := MustAttach(k2, Config{
		Mode: ModeICache,
		Cache: cache.Config{Size: 32 << 10, LineSize: 16, Assoc: 2,
			Indexing: cache.VirtIndexed},
		Sampling: FullSampling(),
	})
	spawnWorkload(t, k2, "xlisp", 11, true)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	if two.Misses() != flat.Misses() {
		t.Fatalf("two-level misses %d != flat-L2 misses %d", two.Misses(), flat.Misses())
	}
}

func TestTwoLevelInvariant(t *testing.T) {
	k := bootDEC(t, 9, 9)
	tw := MustAttach(k, l1l2Config(1, 8))
	spawnWorkload(t, k, "espresso", 13, true)
	if err := k.Run(50_000); err != nil {
		t.Fatal(err)
	}
	drops := k.Machine().Counters().MaskedDrops
	if err := tw.CheckInvariant(drops); err != nil {
		t.Fatal(err)
	}
	if tw.SimCacheLen() == 0 {
		t.Fatal("hierarchy empty mid-run")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelSamplingUsesL2Sets(t *testing.T) {
	// 1/128 sampling is invalid against the 64-set L1 but valid against
	// the 1024-set L2 — the trap-granularity level decides.
	k := bootDEC(t, 11, 11)
	cfg := l1l2Config(2, 32) // L1: 128 sets; L2: 1024 sets
	cfg.Sampling = Sampling{Num: 1, Den: 256}
	if _, err := Attach(k, cfg); err != nil {
		t.Fatalf("L2-set sampling rejected: %v", err)
	}
}
