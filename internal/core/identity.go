package core

import "tapeworm/internal/resultcache"

// PhysicsVersion is the simulation-semantics version hashed into every
// result-cache digest. Bump it whenever event-stream semantics change —
// anything that alters what a run computes from the same configuration:
// trap arming/clearing rules, replacement policy behaviour, handler cost
// tables, the kernel's boot recipe or scheduling, the workload stream
// generators. Persisted results from older physics then simply never
// match, which is the invalidation rule: stale entries are unreachable,
// not migrated.
const PhysicsVersion = 1

// HashInto writes the Tapeworm configuration's canonical identity
// encoding: every field that selects what the simulation computes, in
// declaration order behind a version tag. Nil-able sub-configs hash a
// presence bit first so "no L2" and "zero-valued L2" stay distinct.
func (c Config) HashInto(h *resultcache.Hasher) {
	h.WriteString("core.Config/v1")
	h.WriteInt(int(c.Mode))
	c.Cache.HashInto(h)
	h.WriteBool(c.L2 != nil)
	if c.L2 != nil {
		c.L2.HashInto(h)
	}
	c.TLB.HashInto(h)
	h.WriteInt(c.Sampling.Num)
	h.WriteInt(c.Sampling.Den)
	h.WriteInt(c.Sampling.Offset)
	h.WriteInt(int(c.Handler))
	h.WriteUint64(c.Window.WarmupInstr)
	h.WriteUint64(c.Window.MeasureInstr)
	h.WriteUint64(c.Seed)
	h.WriteBool(c.AllowWriteClears)
}
