package core

import (
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/cache2000"
	"tapeworm/internal/mem"
	"tapeworm/internal/pixie"
	"tapeworm/internal/trace"
)

// TestSamplingEquivalentToTraceFilter cross-validates the two set-sampling
// implementations the paper contrasts (Section 3.2): Tapeworm's free
// hardware filtering (traps armed only on sampled sets) must count exactly
// the misses that trace-driven sampling finds by software-filtering the
// full trace down to sampled-set addresses — because cache sets are
// independent, both see the same per-set reference streams.
func TestSamplingEquivalentToTraceFilter(t *testing.T) {
	geom := cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1,
		Indexing: cache.VirtIndexed}
	s := Sampling{Num: 1, Den: 4, Offset: 1}

	// Trap-driven run with hardware-pattern sampling.
	k1 := bootDEC(t, 7, 7)
	tw := MustAttach(k1, Config{Mode: ModeICache, Cache: geom, Sampling: s})
	spawnWorkload(t, k1, "xlisp", 55, true)
	if err := k1.Run(0); err != nil {
		t.Fatal(err)
	}

	// Trace-driven run: capture the full instruction trace, filter it to
	// the same sample in software (paying the preprocessing cost), then
	// simulate the filtered trace.
	k2 := bootDEC(t, 7, 7)
	var buf trace.Buffer
	ann := pixie.NewCapture(k2.Machine(), &buf)
	ann.IOnly = true
	task := spawnWorkload(t, k2, "xlisp", 55, false)
	ann.Annotate(k2, task.ID)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}

	probe := cache.MustNew(geom, nil) // geometry donor for set indexing
	filtered, preprocessCycles := trace.FilterSample(&buf,
		probe.SetIndex, s.Sampled)
	c2k := cache2000.MustNew(cache2000.Config{
		Cache: geom, Kinds: []mem.RefKind{mem.IFetch},
	})
	c2k.Run(filtered)

	if tw.Misses() != c2k.Misses() {
		t.Fatalf("trap-pattern sampling counted %d misses; trace-filter sampling %d",
			tw.Misses(), c2k.Misses())
	}
	// The contrast the paper draws: the trace side paid to examine every
	// address; the trap side paid nothing for the filtering.
	if preprocessCycles < uint64(buf.Len()) {
		t.Fatalf("preprocessing cost %d below one cycle per trace entry (%d)",
			preprocessCycles, buf.Len())
	}
	if filtered.Len() >= buf.Len() {
		t.Fatal("filter removed nothing")
	}
}
