package core

import (
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/cache2000"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/pixie"
	"tapeworm/internal/workload"
)

// testScale runs workloads at 1/2000 of paper size: quick but non-trivial.
const testScale = 2000

func bootDEC(t *testing.T, seed, pageSeed uint64) *kernel.Kernel {
	t.Helper()
	cfg := kernel.DefaultConfig(mach.DECstation5000_200(4096), seed) // 16 MB
	cfg.PageSeed = pageSeed
	return kernel.MustBoot(cfg)
}

func spawnWorkload(t *testing.T, k *kernel.Kernel, name string, seed uint64, simulate bool) *kernel.Task {
	t.Helper()
	spec, err := workload.ByName(name, testScale)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.MustNew(spec, seed)
	return k.Spawn(spec.Name, prog, simulate, spec.ChildShareText || spec.Tasks > 1)
}

func dmICache(sizeKB int, indexing cache.Indexing) Config {
	return Config{
		Mode: ModeICache,
		Cache: cache.Config{
			Size: sizeKB << 10, LineSize: 16, Assoc: 1, Indexing: indexing,
		},
		Sampling: FullSampling(),
	}
}

func TestSmokeSingleTask(t *testing.T) {
	k := bootDEC(t, 1, 1)
	tw := MustAttach(k, dmICache(4, cache.PhysIndexed))
	spawnWorkload(t, k, "espresso", 42, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if tw.Misses() == 0 {
		t.Fatal("no simulated misses recorded")
	}
	st := tw.Stats()
	if st.Registrations == 0 {
		t.Fatal("no pages registered")
	}
	if st.MissesByComp[kernel.CompKernel] != 0 || st.MissesByComp[kernel.CompServer] != 0 {
		t.Fatalf("unsimulated components recorded misses: %+v", st.MissesByComp)
	}
	m := k.Machine()
	if m.OverheadCycles() == 0 || m.OverheadCycles() >= m.Cycles() {
		t.Fatalf("overhead accounting wrong: %d of %d", m.OverheadCycles(), m.Cycles())
	}
	if c := m.Counters(); c.ECCTraps == 0 {
		t.Fatal("no ECC traps delivered")
	}
}

// TestValidationAgainstCache2000 is the paper's validation experiment
// (Section 4.2): for single-user-task workloads, Tapeworm's user-component
// miss counts should match a Pixie+Cache2000 simulation of the same
// workload. With deterministic per-task streams, a virtually-indexed,
// unsampled configuration must match *exactly*.
func TestValidationAgainstCache2000(t *testing.T) {
	for _, wl := range []string{"espresso", "eqntott", "xlisp"} {
		for _, sizeKB := range []int{1, 4, 16} {
			// Run 1: Tapeworm, virtually indexed, no sampling.
			k1 := bootDEC(t, 7, 7)
			tw := MustAttach(k1, dmICache(sizeKB, cache.VirtIndexed))
			spawnWorkload(t, k1, wl, 99, true)
			if err := k1.Run(0); err != nil {
				t.Fatal(err)
			}

			// Run 2: same workload annotated by Pixie feeding Cache2000.
			k2 := bootDEC(t, 7, 7)
			c2k := cache2000.MustNew(cache2000.Config{
				Cache: cache.Config{Size: sizeKB << 10, LineSize: 16, Assoc: 1,
					Indexing: cache.VirtIndexed},
				Kinds: []mem.RefKind{mem.IFetch},
			})
			ann := pixie.NewOnTheFly(k2.Machine(), c2k)
			ann.IOnly = true
			task := spawnWorkload(t, k2, wl, 99, false)
			ann.Annotate(k2, task.ID)
			if err := k2.Run(0); err != nil {
				t.Fatal(err)
			}

			twMisses := tw.Misses()
			c2kMisses := c2k.Misses()
			if twMisses != c2kMisses {
				t.Errorf("%s %dK: Tapeworm %d misses, Cache2000 %d misses",
					wl, sizeKB, twMisses, c2kMisses)
			}
			if st := tw.Stats(); st.CrossKindClears != 0 {
				t.Errorf("%s %dK: unexpected cross-kind clears: %d", wl, sizeKB, st.CrossKindClears)
			}
		}
	}
}

// TestAssociativeEqualsTraceFIFO pins down the trap-driven replacement
// caveat: because hits are invisible to Tapeworm, an "LRU" associative
// simulation maintains recency only at insertion — which is exactly FIFO.
// A trace-driven FIFO simulation of the same geometry must agree miss for
// miss; a trace-driven true-LRU simulation generally will not.
func TestAssociativeEqualsTraceFIFO(t *testing.T) {
	geom := cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 2,
		Indexing: cache.VirtIndexed}

	k1 := bootDEC(t, 7, 7)
	tw := MustAttach(k1, Config{Mode: ModeICache, Cache: geom, Sampling: FullSampling()})
	spawnWorkload(t, k1, "espresso", 99, true)
	if err := k1.Run(0); err != nil {
		t.Fatal(err)
	}

	run2k := func(replace cache.Replacement) uint64 {
		k2 := bootDEC(t, 7, 7)
		g := geom
		g.Replace = replace
		c2k := cache2000.MustNew(cache2000.Config{Cache: g, Kinds: []mem.RefKind{mem.IFetch}})
		ann := pixie.NewOnTheFly(k2.Machine(), c2k)
		ann.IOnly = true
		task := spawnWorkload(t, k2, "espresso", 99, false)
		ann.Annotate(k2, task.ID)
		if err := k2.Run(0); err != nil {
			t.Fatal(err)
		}
		return c2k.Misses()
	}
	fifo := run2k(cache.FIFO)
	lru := run2k(cache.LRU)

	if tw.Misses() != fifo {
		t.Errorf("trap-driven 2-way misses %d != trace-driven FIFO %d", tw.Misses(), fifo)
	}
	if fifo == lru {
		t.Log("note: FIFO and LRU coincided on this stream (unusual but possible)")
	}
}

func TestTrapInvariantHolds(t *testing.T) {
	k := bootDEC(t, 3, 3)
	tw := MustAttach(k, dmICache(2, cache.PhysIndexed))
	spawnWorkload(t, k, "espresso", 5, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	drops := k.Machine().Counters().MaskedDrops
	if err := tw.CheckInvariant(drops); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismVirtualIndexed(t *testing.T) {
	run := func() uint64 {
		k := bootDEC(t, 11, 11)
		tw := MustAttach(k, dmICache(4, cache.VirtIndexed))
		spawnWorkload(t, k, "espresso", 3, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return tw.Misses()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical virtually-indexed runs differ: %d vs %d", a, b)
	}
}

// TestPageAllocationChangesPhysicalResults reproduces the Table 9
// mechanism in miniature: varying only the frame-allocator seed changes
// physically-indexed miss counts but not virtually-indexed ones.
func TestPageAllocationChangesPhysicalResults(t *testing.T) {
	run := func(indexing cache.Indexing, pageSeed uint64) uint64 {
		k := bootDEC(t, 13, pageSeed)
		tw := MustAttach(k, dmICache(8, indexing))
		spawnWorkload(t, k, "xlisp", 8, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return tw.Misses()
	}
	v1, v2 := run(cache.VirtIndexed, 100), run(cache.VirtIndexed, 200)
	if v1 != v2 {
		t.Fatalf("virtual indexing varied with page seed: %d vs %d", v1, v2)
	}
	var differed bool
	p1 := run(cache.PhysIndexed, 100)
	for _, s := range []uint64{200, 300, 400} {
		if run(cache.PhysIndexed, s) != p1 {
			differed = true
			break
		}
	}
	if !differed {
		t.Fatal("physically-indexed misses identical across 4 page-allocation seeds")
	}
}

func TestSamplingReducesTrapsProportionally(t *testing.T) {
	run := func(s Sampling) (misses uint64, overhead uint64) {
		k := bootDEC(t, 17, 17)
		cfg := dmICache(1, cache.VirtIndexed)
		cfg.Sampling = s
		tw := MustAttach(k, cfg)
		spawnWorkload(t, k, "espresso", 21, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return tw.Misses(), tw.Stats().HandlerCycles
	}
	fullM, fullOv := run(FullSampling())
	halfM, halfOv := run(Sampling{Num: 1, Den: 2})
	if halfM >= fullM {
		t.Fatalf("1/2 sampling did not reduce counted misses: %d vs %d", halfM, fullM)
	}
	// Slowdowns decrease "in direct proportion to the fraction of sets
	// sampled": handler cycles should be roughly halved.
	ratio := float64(halfOv) / float64(fullOv)
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("1/2 sampling handler-cycle ratio %.2f, want ~0.5", ratio)
	}
	// And the ratio estimator should land near the full count.
	est := float64(halfM) * 2
	if est < 0.5*float64(fullM) || est > 1.5*float64(fullM) {
		t.Fatalf("sampling estimate %f far from full count %d", est, fullM)
	}
}

func TestAttributesInheritanceAcrossForkTree(t *testing.T) {
	k := bootDEC(t, 19, 19)
	tw := MustAttach(k, dmICache(4, cache.PhysIndexed))
	spec, err := workload.ByName("sdet", 4000)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.MustNew(spec, 77)
	// (simulate=1, inherit=1): root and every descendant simulated.
	k.Spawn("sdet", prog, true, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.UserSpawned != spec.Tasks {
		t.Fatalf("spawned %d tasks, want %d", st.UserSpawned, spec.Tasks)
	}
	if st.UserExited != spec.Tasks {
		t.Fatalf("exited %d tasks, want %d", st.UserExited, spec.Tasks)
	}
	byTask := tw.MissesByTask()
	if len(byTask) < spec.Tasks/2 {
		t.Fatalf("only %d tasks recorded misses; inheritance broken?", len(byTask))
	}
	if tw.Stats().PagesTracked != 0 {
		t.Fatalf("%d pages still tracked after all tasks exited", tw.Stats().PagesTracked)
	}
}

func TestKernelSimulation(t *testing.T) {
	k := bootDEC(t, 23, 23)
	tw := MustAttach(k, dmICache(4, cache.PhysIndexed))
	if err := tw.Attributes(mem.KernelTask, true, false); err != nil {
		t.Fatal(err)
	}
	spawnWorkload(t, k, "ousterhout", 31, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	comp := tw.MissesByComponent()
	if comp[kernel.CompKernel] == 0 {
		t.Fatal("kernel simulation recorded no kernel misses")
	}
	if comp[kernel.CompUser] == 0 {
		t.Fatal("no user misses in shared simulation")
	}
}

func TestTrueErrorsPassThrough(t *testing.T) {
	k := bootDEC(t, 29, 29)
	tw := MustAttach(k, dmICache(4, cache.PhysIndexed))
	task := spawnWorkload(t, k, "espresso", 17, true)
	// Inject a true single-bit error into the task's first text page once
	// it is mapped: run a little, then inject, then continue.
	if err := k.Run(20_000); err != nil {
		t.Fatal(err)
	}
	pa, ok := k.ResidentPA(task.ID, kernel.TextBase)
	if !ok {
		t.Fatal("text page not resident after warmup")
	}
	k.Machine().Phys().InjectError(pa+128, 9) // non-Tapeworm bit position
	k.Machine().FlushHostLine(pa+128, 16)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if k.Stats().TrueECCErrors == 0 {
		t.Fatal("true ECC error was not delivered to the kernel")
	}
	if tw.Stats().TrueErrors == 0 {
		t.Fatal("Tapeworm did not classify the true error")
	}
}

func TestDCacheRejectedOnNoAllocateHost(t *testing.T) {
	k := bootDEC(t, 31, 31)
	cfg := dmICache(4, cache.PhysIndexed)
	cfg.Mode = ModeDCache
	if _, err := Attach(k, cfg); err == nil {
		t.Fatal("data-cache simulation on a no-allocate-on-write host should be rejected")
	}
}

func TestDCacheWorksOnAllocateOnWriteHost(t *testing.T) {
	cfg := kernel.DefaultConfig(mach.WWTNode(4096), 37)
	k := kernel.MustBoot(cfg)
	twCfg := Config{
		Mode: ModeDCache,
		Cache: cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 1,
			Indexing: cache.PhysIndexed},
		Sampling: FullSampling(),
	}
	tw := MustAttach(k, twCfg)
	spawnWorkload(t, k, "eqntott", 41, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if tw.Misses() == 0 {
		t.Fatal("no data-cache misses on an allocate-on-write host")
	}
	if sc := k.Machine().Counters().SilentClears; sc != 0 {
		t.Fatalf("allocate-on-write host silently cleared %d traps", sc)
	}
}

func TestSilentClearsUndercountOnForcedDCache(t *testing.T) {
	k := bootDEC(t, 43, 43)
	cfg := Config{
		Mode: ModeDCache,
		Cache: cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
			Indexing: cache.PhysIndexed},
		Sampling:         FullSampling(),
		AllowWriteClears: true,
	}
	MustAttach(k, cfg)
	spawnWorkload(t, k, "xlisp", 47, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if sc := k.Machine().Counters().SilentClears; sc == 0 {
		t.Fatal("expected store misses to silently clear traps on the DECstation")
	}
}

func TestBreakpointMechanismOn486(t *testing.T) {
	cfg := kernel.DefaultConfig(mach.Gateway486(4096), 53)
	k := kernel.MustBoot(cfg)
	tw := MustAttach(k, dmICache(2, cache.VirtIndexed))
	if tw.MechanismName() != "instruction breakpoints" {
		t.Fatalf("486 port selected %q", tw.MechanismName())
	}
	spawnWorkload(t, k, "espresso", 59, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if tw.Misses() == 0 {
		t.Fatal("breakpoint mechanism produced no misses")
	}
}

func TestTLBSimulation(t *testing.T) {
	k := bootDEC(t, 61, 61)
	tw := MustAttach(k, Config{
		Mode:     ModeTLB,
		TLB:      cache.TLBConfig{Entries: 16, PageSize: 4096, Replace: cache.LRU},
		Sampling: FullSampling(),
	})
	spawnWorkload(t, k, "mpeg_play", 67, true)
	if err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if tw.SimCacheLen() == 0 || tw.SimCacheLen() > 16 {
		t.Fatalf("simulated TLB holds %d entries mid-run", tw.SimCacheLen())
	}
	if err := tw.CheckInvariant(0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if tw.Misses() == 0 {
		t.Fatal("no TLB misses")
	}
	if tw.SimCacheLen() != 0 {
		t.Fatalf("TLB still holds %d entries after all tasks exited", tw.SimCacheLen())
	}
}

func TestTLBSmallerMissesMore(t *testing.T) {
	run := func(entries int) uint64 {
		k := bootDEC(t, 71, 71)
		tw := MustAttach(k, Config{
			Mode:     ModeTLB,
			TLB:      cache.TLBConfig{Entries: entries, PageSize: 4096, Replace: cache.LRU},
			Sampling: FullSampling(),
		})
		spawnWorkload(t, k, "mpeg_play", 73, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return tw.Misses()
	}
	small, large := run(8), run(128)
	if small <= large {
		t.Fatalf("8-entry TLB (%d misses) should miss more than 128-entry (%d)", small, large)
	}
}

func TestLargerCachesMissLess(t *testing.T) {
	var prev uint64
	for i, sizeKB := range []int{1, 4, 16, 64} {
		k := bootDEC(t, 79, 79)
		tw := MustAttach(k, dmICache(sizeKB, cache.VirtIndexed))
		spawnWorkload(t, k, "mpeg_play", 83, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		m := tw.Misses()
		if i > 0 && m > prev {
			t.Fatalf("%dK cache missed more (%d) than previous smaller cache (%d)", sizeKB, m, prev)
		}
		prev = m
	}
}
