package core

import (
	"testing"
	"testing/quick"

	"tapeworm/internal/cache"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
)

// chaosProgram emits a random mixture of text fetches, data references,
// syscalls, forks and an eventual exit — an adversarial workload for the
// register/remove/trap lifecycle.
type chaosProgram struct {
	r      *rng.Source
	n      int
	forks  int
	spread uint32 // text footprint
}

func (p *chaosProgram) Next() kernel.Event {
	if p.n <= 0 {
		return kernel.Event{Kind: kernel.EvExit}
	}
	p.n--
	switch {
	case p.forks > 0 && p.r.Bool(0.002):
		p.forks--
		return kernel.Event{
			Kind: kernel.EvFork,
			Child: &chaosProgram{r: p.r.Split("child"), n: p.n / 2,
				spread: p.spread},
			ShareText: p.r.Bool(0.5),
		}
	case p.r.Bool(0.01):
		svc := kernel.Services()[p.r.Intn(len(kernel.Services()))]
		return kernel.Event{Kind: kernel.EvSyscall, Service: svc}
	case p.r.Bool(0.25):
		return kernel.Event{Kind: kernel.EvRef, Ref: mem.Ref{
			VA:   kernel.DataBase + mem.VAddr(uint32(p.r.Intn(int(p.spread)))&^3),
			Kind: mem.RefKind(1 + p.r.Intn(2)),
		}}
	default:
		return kernel.Event{Kind: kernel.EvRef, Ref: mem.Ref{
			VA:   kernel.TextBase + mem.VAddr(uint32(p.r.Intn(int(p.spread)))&^3),
			Kind: mem.IFetch,
		}}
	}
}

// TestChaosLifecycleInvariant drives randomized fork/exit/reference
// workloads through every simulation mode and checks the trap/cache
// invariant and bookkeeping at the end of each run.
func TestChaosLifecycleInvariant(t *testing.T) {
	f := func(seed uint64, modeRaw, idxRaw uint8) bool {
		mode := []Mode{ModeICache, ModeUnified, ModeTLB}[modeRaw%3]
		indexing := []cache.Indexing{cache.PhysIndexed, cache.VirtIndexed}[idxRaw%2]

		kcfg := kernel.DefaultConfig(machFor(mode), seed)
		k, err := kernel.Boot(kcfg)
		if err != nil {
			t.Log(err)
			return false
		}
		cfg := Config{Mode: mode, Sampling: FullSampling(), Seed: seed}
		switch mode {
		case ModeTLB:
			cfg.TLB = cache.TLBConfig{Entries: 8, PageSize: 4096, Replace: cache.LRU}
		default:
			cfg.Cache = cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 2,
				Indexing: indexing}
		}
		tw, err := Attach(k, cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		prog := &chaosProgram{r: rng.New(seed).Split("chaos"), n: 20000,
			forks: 3, spread: 48 << 10}
		k.Spawn("chaos", prog, true, true)
		if err := k.Run(0); err != nil {
			t.Log(err)
			return false
		}
		// Tolerate the documented leak channels only.
		c := k.Machine().Counters()
		tolerated := c.MaskedDrops + c.SilentClears + c.DMAClears + c.DMAFaults +
			tw.Stats().CrossKindClears
		if err := tw.CheckInvariant(tolerated); err != nil {
			t.Log(err)
			return false
		}
		if tw.Stats().PagesTracked != 0 {
			t.Logf("%d pages leaked", tw.Stats().PagesTracked)
			return false
		}
		if tw.Stats().Misses == 0 {
			t.Log("no misses at all")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// machFor picks an allocate-on-write host for unified mode (stores would
// otherwise silently clear traps) and the DECstation otherwise.
func machFor(mode Mode) mach.Config {
	if mode == ModeUnified {
		return mach.WWTNode(4096)
	}
	return mach.DECstation5000_200(4096)
}
