package core

import "fmt"

// Sampling selects a subset of cache sets to simulate. Tapeworm implements
// set sampling *in hardware, for free*: tw_register_page simply skips
// setting traps on memory locations that map outside the sample, so
// unsampled locations never trap and are filtered with no overhead
// (Section 3.2). Slowdowns decrease in direct proportion to the sampled
// fraction; measurement variance increases (Table 8).
type Sampling struct {
	// Num of every Den consecutive sets are sampled; Den must be a power
	// of two no larger than the set count. Num == Den (or the zero value)
	// disables sampling.
	Num, Den int
	// Offset rotates which sets fall in the sample. "Different samples
	// can be obtained simply by changing the pattern of traps on
	// registered Tapeworm pages" — vary Offset between trials to measure
	// sampling variance.
	Offset int
}

// FullSampling returns the no-sampling configuration.
func FullSampling() Sampling { return Sampling{Num: 1, Den: 1} }

// Fraction returns the sampled fraction of sets.
func (s Sampling) Fraction() float64 {
	if s.disabled() {
		return 1
	}
	return float64(s.Num) / float64(s.Den)
}

func (s Sampling) disabled() bool {
	return s.Den == 0 || s.Num >= s.Den
}

// Validate checks the sampling parameters against a set count.
func (s Sampling) Validate(numSets int) error {
	if s.Den == 0 && s.Num == 0 {
		return nil // zero value: no sampling
	}
	if s.Num < 1 || s.Den < 1 || s.Num > s.Den {
		return fmt.Errorf("core: sampling %d/%d invalid", s.Num, s.Den)
	}
	if s.Num == s.Den {
		return nil // full sampling
	}
	if s.Den&(s.Den-1) != 0 {
		return fmt.Errorf("core: sampling denominator %d must be a power of two", s.Den)
	}
	if s.Den > numSets {
		return fmt.Errorf("core: sampling denominator %d exceeds %d sets", s.Den, numSets)
	}
	return nil
}

// Sampled reports whether set index lies in the sample.
func (s Sampling) Sampled(set int) bool {
	if s.disabled() {
		return true
	}
	return (set+s.Offset)&(s.Den-1) < s.Num
}

// String renders the sampling as the paper does ("1/8" etc.).
func (s Sampling) String() string {
	if s.disabled() {
		return "1/1"
	}
	return fmt.Sprintf("%d/%d", s.Num, s.Den)
}
