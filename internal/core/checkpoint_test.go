package core

import (
	"reflect"
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

// forkDEC captures a post-boot checkpoint and forks a ready-to-run kernel
// from it, alongside a conventionally booted twin for comparison.
func forkDEC(t *testing.T, seed, pageSeed uint64) (fresh, fork *kernel.Kernel) {
	t.Helper()
	cfg := kernel.DefaultConfig(mach.DECstation5000_200(4096), seed)
	cfg.PageSeed = pageSeed
	src := kernel.MustBoot(cfg)
	cp, err := kernel.Capture(src, "post-boot")
	if err != nil {
		t.Fatal(err)
	}
	src.ReleaseBuffers()
	fork, err = kernel.Fork(cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fork.ReleaseCheckpoint)
	return kernel.MustBoot(cfg), fork
}

// runOn attaches cfgs as a gang, runs the workload to completion, and
// returns per-member results plus final cycles and the dense phys state.
func runOn(t *testing.T, k *kernel.Kernel, cfgs []Config, wl string, seed uint64) ([]memberResult, uint64, *mem.Image) {
	t.Helper()
	g := MustAttachGang(k, cfgs)
	spawnWorkload(t, k, wl, seed, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	var out []memberResult
	for _, tw := range g.Members() {
		if err := tw.CheckInvariant(tw.Stats().CrossKindClears); err != nil {
			t.Errorf("invariant: %v", err)
		}
		out = append(out, memberResult{tw.Stats(), tw.MissesByTask(), tw.LedgerCycles()})
	}
	return out, k.Machine().Cycles(), mem.CaptureImage(k.Machine().Phys())
}

// TestForkByteIdentityWithTapeworm is the core-level fork invariant: a
// simulation riding a checkpoint-forked kernel — solo or ganged — must be
// byte-identical to the same simulation on a fresh boot, down to the
// dense trap tables at exit.
func TestForkByteIdentityWithTapeworm(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfgs []Config
	}{
		{"solo", gangConfigs()[:1]},
		{"gang", gangConfigs()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fresh, fork := forkDEC(t, 11, 13)
			wantRes, wantCyc, wantPhys := runOn(t, fresh, tc.cfgs, "espresso", 42)
			gotRes, gotCyc, gotPhys := runOn(t, fork, tc.cfgs, "espresso", 42)
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("forked run diverged:\nboot: %+v\nfork: %+v", wantRes, gotRes)
			}
			if gotCyc != wantCyc {
				t.Errorf("cycles: boot %d, fork %d", wantCyc, gotCyc)
			}
			if !reflect.DeepEqual(gotPhys, wantPhys) {
				t.Error("dense trap tables differ between boot and fork at exit")
			}
		})
	}
}

// TestForkGangDetachMidRun forks a kernel, gangs two members on it,
// detaches one mid-run, and checks the survivor against the identical
// sequence on a fresh boot: copy-on-write sharing must not change what a
// detach releases from the union.
func TestForkGangDetachMidRun(t *testing.T) {
	cfgs := gangConfigs()[:2]
	sequence := func(k *kernel.Kernel) (memberResult, int) {
		g := MustAttachGang(k, cfgs)
		spawnWorkload(t, k, "espresso", 42, true)
		if err := k.Run(2000); err != nil {
			t.Fatal(err)
		}
		if err := g.Detach(g.Members()[1]); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		s := g.Members()[0]
		return memberResult{s.Stats(), s.MissesByTask(), s.LedgerCycles()},
			k.Machine().Phys().TrapCount()
	}
	fresh, fork := forkDEC(t, 11, 13)
	wantRes, wantTraps := sequence(fresh)
	gotRes, gotTraps := sequence(fork)
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Errorf("survivor diverged on fork:\nboot: %+v\nfork: %+v", wantRes, gotRes)
	}
	if gotTraps != wantTraps {
		t.Errorf("union trap count after detach: boot %d, fork %d", wantTraps, gotTraps)
	}
}

// TestForkDMASharedFrame: device DMA into frames a fork still shares with
// its checkpoint image. Trap-free DMA must not force copy-on-write (the
// ClearTrap fast path skips materialization), and once traps are armed,
// DMA destruction behaves identically on fork and fresh boot.
func TestForkDMASharedFrame(t *testing.T) {
	fresh, fork := forkDEC(t, 5, 7)
	defer fresh.ReleaseBuffers()

	phys := fork.Machine().Phys()
	if !phys.Shared() {
		t.Fatal("forked phys does not alias the image")
	}
	// DMA sweep over clean shared frames: no traps to destroy, no copy.
	for pa := mem.PAddr(0); pa < 64<<10; pa += 4096 {
		fork.Machine().DMAWrite(pa, 512)
	}
	if !phys.Shared() {
		t.Fatal("trap-free DMA materialized the fork's tables")
	}

	// Arm a trap on a shared frame, then DMA over it: the write must
	// copy-on-write, destroy exactly that trap, and count the clear.
	target := mem.PAddr(phys.Bytes() - 8192) // Tapeworm-reserved: no kernel interference
	ctl := mem.NewController(phys)
	ctl.SetTrap(target, 16)
	if phys.Shared() {
		t.Fatal("arming a trap left the fork shared")
	}
	if !phys.Trapped(target, 16) {
		t.Fatal("trap not armed")
	}
	fork.Machine().DMAWrite(target, 64)
	if phys.Trapped(target, 16) {
		t.Fatal("DMA write left the trap standing")
	}
	if fork.Machine().Counters().DMAClears != 4 {
		t.Errorf("DMAClears = %d, want 4", fork.Machine().Counters().DMAClears)
	}
	if err := phys.CheckSummaries(); err != nil {
		t.Errorf("summaries after DMA on materialized fork: %v", err)
	}
}

// TestWindowGatesOnlyCounting: a measurement window changes which misses
// are counted and nothing else — execution, trap physics, and registration
// traffic are byte-identical with the window on or off.
func TestWindowGatesOnlyCounting(t *testing.T) {
	runWindowed := func(w Window, samp Sampling) (Stats, uint64, *mem.Image) {
		k := bootDEC(t, 21, 23)
		cfg := dmICache(4, cache.PhysIndexed)
		cfg.Sampling = samp
		cfg.Window = w
		tw := MustAttach(k, cfg)
		spawnWorkload(t, k, "espresso", 42, true)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return tw.Stats(), k.Machine().Cycles(), mem.CaptureImage(k.Machine().Phys())
	}
	for _, samp := range []Sampling{FullSampling(), {Num: 1, Den: 8}} {
		full, fullCyc, fullPhys := runWindowed(Window{}, samp)
		for _, w := range []Window{
			{WarmupInstr: 1},
			{WarmupInstr: 5000},
			{WarmupInstr: 5000, MeasureInstr: 20000},
			{WarmupInstr: 1 << 62}, // warm-up outlives the run: nothing measured
		} {
			st, cyc, phys := runWindowed(w, samp)
			if cyc != fullCyc {
				t.Errorf("%v/%v: window dilated execution: %d vs %d cycles", samp, w, cyc, fullCyc)
			}
			if !reflect.DeepEqual(phys, fullPhys) {
				t.Errorf("%v/%v: window changed the dense trap tables", samp, w)
			}
			if st.Registrations != full.Registrations || st.Removals != full.Removals ||
				st.HandlerCycles != full.HandlerCycles || st.SetupCycles != full.SetupCycles {
				t.Errorf("%v/%v: window changed trap physics: %+v vs %+v", samp, w, st, full)
			}
			if st.Misses > full.Misses {
				t.Errorf("%v/%v: windowed misses %d exceed full %d", samp, w, st.Misses, full.Misses)
			}
			if w.WarmupInstr == 1<<62 && st.Misses != 0 {
				t.Errorf("%v: misses counted inside an unreachable window: %d", samp, st.Misses)
			}
		}
	}
}

func TestWindowMeasuringBounds(t *testing.T) {
	w := Window{WarmupInstr: 100, MeasureInstr: 50}
	for _, tc := range []struct {
		instr uint64
		want  bool
	}{{0, false}, {99, false}, {100, true}, {149, true}, {150, false}} {
		if got := w.Measuring(tc.instr); got != tc.want {
			t.Errorf("Measuring(%d) = %v, want %v", tc.instr, got, tc.want)
		}
	}
	open := Window{WarmupInstr: 10}
	if !open.Measuring(1 << 62) {
		t.Error("open-ended window closed")
	}
	if (Window{}).String() != "full" || w.String() == "" {
		t.Error("window labels broken")
	}
	if err := (Window{WarmupInstr: ^uint64(0), MeasureInstr: 2}).Validate(); err == nil {
		t.Error("overflowing window accepted")
	}
}
