package core

import (
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/workload"
)

// TestFragmentationIncreasesTLBMisses reproduces the Section 4.2
// observation in miniature: on a long-running system whose servers
// fragment their heaps, repeated runs of the same workload show a creeping
// TLB miss rate. With fragmentation off, the rate stays flat.
func TestFragmentationIncreasesTLBMisses(t *testing.T) {
	perIteration := func(fragBytes int) []float64 {
		kcfg := kernel.DefaultConfig(mach.DECstation5000_200(8192), 41)
		kcfg.ServerFragBytesPerReq = fragBytes
		k := kernel.MustBoot(kcfg)
		tw := MustAttach(k, Config{
			Mode:     ModeTLB,
			TLB:      cache.TLBConfig{Entries: 64, PageSize: 4096, Replace: cache.LRU},
			Sampling: FullSampling(),
		})
		for _, kind := range []kernel.ServerKind{kernel.BSDServer, kernel.XServer} {
			if st := k.Server(kind); st != nil {
				if err := tw.Attributes(st.ID, true, false); err != nil {
					t.Fatal(err)
				}
			}
		}
		spec, err := workload.ByName("ousterhout", 2000)
		if err != nil {
			t.Fatal(err)
		}
		var rates []float64
		var prevM, prevI uint64
		for i := 0; i < 4; i++ {
			prog, err := workload.New(spec, 41+uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			k.Spawn(spec.Name, prog, true, true)
			if err := k.Run(0); err != nil {
				t.Fatal(err)
			}
			m, in := tw.Misses()-prevM, k.Machine().Instructions()-prevI
			prevM, prevI = tw.Misses(), k.Machine().Instructions()
			rates = append(rates, float64(m)/float64(in))
		}
		return rates
	}

	frag := perIteration(256)
	if frag[len(frag)-1] <= frag[0]*1.1 {
		t.Errorf("fragmented system TLB rate did not creep up: %v", frag)
	}

	flat := perIteration(0)
	if flat[len(flat)-1] > flat[0]*1.25 {
		t.Errorf("fresh system TLB rate should stay roughly flat: %v", flat)
	}
}
