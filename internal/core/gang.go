package core

// Ganged multi-configuration simulation (Section 4.4's "several simulators
// over the same trap mechanisms at once"): one booted machine drives N
// independent Tapeworm instances. The machine traps on the union of the
// members' trap sets — per-word ECC trap reference counts and per-word
// breakpoint refcounts in mem/mach make one member's tw_clear_trap unable
// to destroy another member's trap — and every trap event is demultiplexed
// to each member whose own intent set covers it.
//
// Two properties make each member's statistics byte-identical to its solo
// run:
//
//  1. Ledgered traps. The machine runs in ledgered-trap mode
//     (mach.SetLedgeredTraps): trap delivery is per-referenced-word rather
//     than on host-cache refill, arming a trap does not flush the host
//     line, and handler overhead is charged to each member's private
//     ledger instead of the shared clock. The shared reference stream and
//     its timing are therefore provably independent of the trap state —
//     no member can perturb what another member observes, and the Figure 4
//     time-dilation leak cannot occur by construction.
//
//  2. Member-local intent. Each member keeps its own armed-word bitset
//     (cache modes) or invalid-page set (TLB mode). Every simulation
//     decision — is this trap mine, is this line armed, is this page
//     invalid — consults the member's intent, never the union state, so a
//     member cannot observe how many other members share a trap.
//
// Solo runs of gang-eligible experiments use a gang of one, making the
// equivalence exact rather than argued.

import (
	"fmt"
	"math/bits"
	"slices"

	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

// Gang couples N Tapeworm instances to one booted kernel, installing
// itself as the kernel's memory-simulation hooks and demultiplexing every
// trap event to the members that claim it.
type Gang struct {
	k *kernel.Kernel
	m *mach.Machine

	members []*Tapeworm
	live    []bool

	pageSize uint32
	pageBits uint

	// invalid holds the union TLB invalid-intent refcounts: how many live
	// members currently want (task, page) to trap. The physical page-valid
	// bit flips only on 0↔1 transitions of this count.
	invalid map[vkey]int

	// Member-intent reverse index for batch trap demux. For gangs of at
	// most 64 members, maskPages[wi>>maskPageShift] is a lazily allocated
	// 1024-word page whose entry for word wi is the bitset of member
	// indices holding wi in their intent set. A union trap fire then
	// demultiplexes with one word load and a bit walk instead of probing
	// every member's private bitset. The invariant — mask bit i set iff
	// member i's intent covers the word — is maintained at every intent
	// mutation (gangMech.SetTrap/ClearTrap, Detach, trapDestroyed).
	maskPages [][]uint64
	liveMask  uint64 // bit i set while member i is live
	eccMask   uint64 // bit i set for ECC cache-mode members
	bpMask    uint64 // bit i set for breakpoint cache-mode members

	// invalidMask is the TLB-mode analogue: the bitset of members holding
	// (task, page) invalid, keyed like invalid. One lookup replaces the
	// per-member tlbInvalid map probes on every invalid-page trap.
	invalidMask map[vkey]uint64

	// wide gangs (>64 members) exceed the mask width; linear forces the
	// per-member probe walk for the `make verify-gang-demux` byte-identity
	// gate. Either way delivery falls back to the original linear demux,
	// which visits members in the same ascending index order as the bit
	// walk — results are identical by construction.
	wide   bool
	linear bool
}

// maskPageShift sizes the lazily allocated mask pages at 1024 words
// (8 KB per page); trap sets are sparse, so most pages stay nil.
const (
	maskPageShift = 10
	maskPageWords = 1 << maskPageShift
)

// SetLinearDemux forces (true) or re-enables (false) the per-member
// linear trap demux in place of the member-intent bitset walk. Results
// are byte-identical either way; the verify-gang-demux gate runs both.
func (g *Gang) SetLinearDemux(v bool) { g.linear = v }

// bitsetDemux reports whether trap delivery may take the mask walk.
func (g *Gang) bitsetDemux() bool { return !g.wide && !g.linear }

func (g *Gang) maskSet(wi uint32, bit uint64) {
	pi := wi >> maskPageShift
	pg := g.maskPages[pi]
	if pg == nil {
		pg = make([]uint64, maskPageWords)
		g.maskPages[pi] = pg
	}
	pg[wi&(maskPageWords-1)] |= bit
}

func (g *Gang) maskClear(wi uint32, bit uint64) {
	if pg := g.maskPages[wi>>maskPageShift]; pg != nil {
		pg[wi&(maskPageWords-1)] &^= bit
	}
}

func (g *Gang) maskAt(wi uint32) uint64 {
	if pg := g.maskPages[wi>>maskPageShift]; pg != nil {
		return pg[wi&(maskPageWords-1)]
	}
	return 0
}

// AttachGang builds one Tapeworm per configuration on the booted kernel k
// and installs the gang as the kernel's memory-simulation hooks. The
// machine is switched to ledgered-trap mode and the physical memory's trap
// reference counts are enabled. Configurations are validated exactly as in
// Attach; the first failure aborts the whole gang.
func AttachGang(k *kernel.Kernel, cfgs []Config) (*Gang, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("core: gang needs at least one configuration")
	}
	m := k.Machine()
	g := &Gang{
		k:        k,
		m:        m,
		pageSize: uint32(m.Config().PageSize),
		invalid:  make(map[vkey]int),
	}
	for s := g.pageSize; s > 1; s >>= 1 {
		g.pageBits++
	}
	phys := m.Phys()
	m.SetLedgeredTraps(true)
	phys.EnableTrapRefs()
	phys.SetTrapDestroyedHook(g.trapDestroyed)

	words := phys.Bytes() / mem.WordBytes
	chunks := (words + 63) / 64
	g.wide = len(cfgs) > 64
	if !g.wide {
		g.maskPages = make([][]uint64, (words+maskPageWords-1)/maskPageWords)
		g.invalidMask = make(map[vkey]uint64)
	}
	for i, cfg := range cfgs {
		tw, err := build(k, cfg)
		if err != nil {
			return nil, err
		}
		tw.gang = g
		tw.gangIdx = i
		if cfg.Mode == ModeTLB {
			tw.tlbInvalid = make(map[vkey]bool)
		} else {
			_, bp := tw.mech.(*breakpointMech)
			tw.mech = &gangMech{tw: tw, inner: tw.mech, ecc: !bp}
			tw.intent = make([]uint64, chunks)
			if !g.wide {
				if bp {
					g.bpMask |= 1 << uint(i)
				} else {
					g.eccMask |= 1 << uint(i)
				}
			}
		}
		if !g.wide {
			g.liveMask |= 1 << uint(i)
		}
		g.members = append(g.members, tw)
		g.live = append(g.live, true)
	}
	k.SetHooks(g)
	return g, nil
}

// MustAttachGang is AttachGang but panics on error.
func MustAttachGang(k *kernel.Kernel, cfgs []Config) *Gang {
	g, err := AttachGang(k, cfgs)
	if err != nil {
		panic(err)
	}
	return g
}

// Members returns the attached simulators in configuration order,
// including detached ones (their statistics remain readable).
func (g *Gang) Members() []*Tapeworm { return g.members }

// Detach removes one member mid-run: its armed traps are released from the
// union (reference counts drop; physical traps disappear only where no
// other member holds them) and its invalid-page intents are returned. The
// member's statistics stay readable; it receives no further events.
// Releases traps the member acquired over its whole attachment, so the
// per-call balance is intentionally one-sided.
//
//twvet:transfer
func (g *Gang) Detach(tw *Tapeworm) error {
	idx := -1
	for i, m := range g.members {
		if m == tw {
			idx = i
			break
		}
	}
	if idx < 0 || !g.live[idx] {
		return fmt.Errorf("core: simulator not attached to this gang")
	}
	g.live[idx] = false
	g.liveMask &^= 1 << uint(idx)

	if tw.intent != nil {
		gm := tw.mech.(*gangMech)
		memberBit := uint64(1) << uint(idx)
		for ci, word := range tw.intent {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				wi := uint32(ci*64 + b)
				pa := mem.PAddr(wi) * mem.WordBytes
				if gm.ecc {
					g.m.Controller().ReleaseTrapRef(pa)
				} else {
					g.m.ClearBreakpoint(pa)
				}
				if !g.wide {
					g.maskClear(wi, memberBit)
				}
			}
			tw.intent[ci] = 0
		}
	}
	// Restoring validity touches shared kernel page state, so walk the
	// member's invalid-intent set in sorted order: detach must leave the
	// gang in the same state regardless of map iteration order.
	keys := make([]vkey, 0, len(tw.tlbInvalid))
	for key := range tw.tlbInvalid {
		keys = append(keys, key)
	}
	slices.SortFunc(keys, vkeyCompare)
	for _, key := range keys {
		va := mem.VAddr(key.vpn) << g.pageBits
		if err := g.memberSetPageValid(tw, key.t, va, true); err != nil {
			return err
		}
	}
	return nil
}

// trapDestroyed is the Phys destroyed-trap hook: hardware paths (DMA
// writes, no-allocate store write-arounds, scrubbing) destroy an ECC trap
// regardless of how many members hold it, so every ECC member's intent for
// the word is cleared — exactly as each solo run would lose its own trap.
func (g *Gang) trapDestroyed(pa mem.PAddr) {
	wi := uint32(pa) / mem.WordBytes
	if g.bitsetDemux() {
		m := g.maskAt(wi) & g.eccMask & g.liveMask
		for w := m; w != 0; {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			g.members[b].intentClear(wi)
		}
		g.maskClear(wi, m)
		return
	}
	for i, tw := range g.members {
		if !g.live[i] || tw.intent == nil {
			continue
		}
		if gm, ok := tw.mech.(*gangMech); ok && !gm.ecc {
			continue // breakpoints live in mach, untouched by ECC destruction
		}
		tw.intentClear(wi)
		if !g.wide {
			g.maskClear(wi, 1<<uint(i))
		}
	}
}

// --- member intent bitsets (cache modes) ---

func (tw *Tapeworm) intentHas(wi uint32) bool {
	return tw.intent[wi>>6]&(1<<(wi&63)) != 0
}

func (tw *Tapeworm) intentSet(wi uint32)   { tw.intent[wi>>6] |= 1 << (wi & 63) }
func (tw *Tapeworm) intentClear(wi uint32) { tw.intent[wi>>6] &^= 1 << (wi & 63) }

// intentOverlaps reports whether any word of [pa, pa+size) is in this
// member's intent set.
func (tw *Tapeworm) intentOverlaps(pa mem.PAddr, size int) bool {
	if size <= 0 {
		size = mem.WordBytes
	}
	for off := 0; off < size; off += mem.WordBytes {
		if tw.intentHas(uint32(pa+mem.PAddr(off)) / mem.WordBytes) {
			return true
		}
	}
	return false
}

// trapArmed reports whether this simulator considers [pa, pa+size) armed:
// a gang member consults its own intent (the union bits in phys include
// other members' traps); a solo simulator owns the physical trap state.
func (tw *Tapeworm) trapArmed(pa mem.PAddr, size int) bool {
	if tw.gang != nil {
		return tw.intentOverlaps(pa, size)
	}
	return tw.m.Phys().Trapped(pa, size)
}

// usesBreakpoints reports whether this simulator's trap mechanism is the
// instruction-breakpoint variant (possibly wrapped for gang membership).
func (tw *Tapeworm) usesBreakpoints() bool {
	switch mech := tw.mech.(type) {
	case *breakpointMech:
		return true
	case *gangMech:
		return !mech.ecc
	}
	return false
}

// --- gangMech: the reference-counted trap mechanism wrapper ---

// gangMech wraps a member's trapMech so tw_set_trap/tw_clear_trap maintain
// the member's intent bitset and the machine's union reference counts. No
// host-line flush on arm: in ledgered-trap mode delivery is per-referenced-
// word, and flushing would perturb the host cache shared by all members.
type gangMech struct {
	tw    *Tapeworm
	inner trapMech
	ecc   bool
}

// SetTrap arms each word the member does not already hold, bumping the
// union refcount (ECC) or the breakpoint refcount. Words carrying a true
// memory error refuse the trap (AddTrapRef returns false), matching the
// solo mechanism's inability to distinguish its own syndrome there.
// Ownership of the acquired refs lives in the member's intent set until
// ClearTrap or Detach.
//
//twvet:transfer
func (gm *gangMech) SetTrap(pa mem.PAddr, size int) {
	if size <= 0 {
		size = mem.WordBytes
	}
	for off := 0; off < size; off += mem.WordBytes {
		w := (pa + mem.PAddr(off)) &^ 3
		wi := uint32(w) / mem.WordBytes
		if gm.tw.intentHas(wi) {
			continue
		}
		if gm.ecc {
			if !gm.tw.m.Controller().AddTrapRef(w) {
				continue
			}
		} else {
			gm.tw.m.SetBreakpoint(w)
		}
		gm.tw.intentSet(wi)
		if g := gm.tw.gang; !g.wide {
			g.maskSet(wi, 1<<uint(gm.tw.gangIdx))
		}
	}
}

// ClearTrap releases each word the member holds; the physical trap
// disappears only when the last holder releases.
//
//twvet:transfer
func (gm *gangMech) ClearTrap(pa mem.PAddr, size int) {
	if size <= 0 {
		size = mem.WordBytes
	}
	for off := 0; off < size; off += mem.WordBytes {
		w := (pa + mem.PAddr(off)) &^ 3
		wi := uint32(w) / mem.WordBytes
		if !gm.tw.intentHas(wi) {
			continue
		}
		gm.tw.intentClear(wi)
		if g := gm.tw.gang; !g.wide {
			g.maskClear(wi, 1<<uint(gm.tw.gangIdx))
		}
		if gm.ecc {
			gm.tw.m.Controller().ReleaseTrapRef(w)
		} else {
			gm.tw.m.ClearBreakpoint(w)
		}
	}
}

// SetupCycles delegates to the wrapped mechanism: each member is charged
// (on its own ledger) what its solo run would pay.
func (gm *gangMech) SetupCycles(words int) uint64 { return gm.inner.SetupCycles(words) }

// Name identifies the wrapped mechanism.
func (gm *gangMech) Name() string { return gm.inner.Name() }

// --- kernel.MemSimHooks implementation: fan-out and demultiplexing ---

// PageRegistered fans tw_register_page out to every live member.
func (g *Gang) PageRegistered(t mem.TaskID, pa mem.PAddr, va mem.VAddr, kind mem.RefKind) {
	for i, tw := range g.members {
		if g.live[i] {
			tw.PageRegistered(t, pa, va, kind)
		}
	}
}

// PageRemoved fans tw_remove_page out to every live member.
func (g *Gang) PageRemoved(t mem.TaskID, pa mem.PAddr, va mem.VAddr) {
	for i, tw := range g.members {
		if g.live[i] {
			tw.PageRemoved(t, pa, va)
		}
	}
}

// TaskForked fans task creation out to every live member.
func (g *Gang) TaskForked(parent, child *kernel.Task) {
	for i, tw := range g.members {
		if g.live[i] {
			tw.TaskForked(parent, child)
		}
	}
}

// TaskExited fans task teardown out to every live member.
func (g *Gang) TaskExited(t mem.TaskID) {
	for i, tw := range g.members {
		if g.live[i] {
			tw.TaskExited(t)
		}
	}
}

// ECCTrap demultiplexes a memory-error trap: classified once, then
// delivered to every live ECC member whose intent set covers the word.
// True errors go back to the kernel. A Tapeworm-syndrome word no live
// member claims (all holders detached) is cleared so it cannot fire again.
func (g *Gang) ECCTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, kind mem.RefKind) bool {
	w := pa &^ 3
	if g.m.Phys().Classify(w) != mem.SynTapeworm {
		return false
	}
	wi := uint32(w) / mem.WordBytes
	handled := false
	if g.bitsetDemux() {
		// One word load yields every interested member; the bit walk
		// visits them in ascending index order, exactly like the linear
		// probe loop below.
		for m := g.maskAt(wi) & g.eccMask & g.liveMask; m != 0; {
			b := bits.TrailingZeros64(m)
			m &^= 1 << uint(b)
			g.members[b].deliverTrap(t, va, w, kind)
			handled = true
		}
	} else {
		for i, tw := range g.members {
			if !g.live[i] || tw.intent == nil || !tw.intentHas(wi) {
				continue
			}
			if gm, ok := tw.mech.(*gangMech); ok && !gm.ecc {
				continue
			}
			tw.deliverTrap(t, va, w, kind)
			handled = true
		}
	}
	if !handled {
		g.m.Controller().ClearTrap(w, mem.WordBytes)
	}
	return true
}

// BreakpointTrap demultiplexes an instruction breakpoint to every live
// breakpoint member holding the word.
func (g *Gang) BreakpointTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr) {
	wi := uint32(pa&^3) / mem.WordBytes
	if g.bitsetDemux() {
		for m := g.maskAt(wi) & g.bpMask & g.liveMask; m != 0; {
			b := bits.TrailingZeros64(m)
			m &^= 1 << uint(b)
			g.members[b].BreakpointTrap(t, va, pa)
		}
		return
	}
	for i, tw := range g.members {
		if !g.live[i] || tw.intent == nil || !tw.intentHas(wi) {
			continue
		}
		tw.BreakpointTrap(t, va, pa)
	}
}

// InvalidPageTrap demultiplexes a page-valid-bit trap to every live TLB
// member that itself holds the page invalid. Members that left the page
// valid never see the event — their solo runs would not have trapped.
func (g *Gang) InvalidPageTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, kind mem.RefKind) bool {
	key := vkey{t, uint32(va) >> g.pageBits}
	handled := false
	if g.bitsetDemux() {
		for m := g.invalidMask[key] & g.liveMask; m != 0; {
			b := bits.TrailingZeros64(m)
			m &^= 1 << uint(b)
			if g.members[b].InvalidPageTrap(t, va, pa, kind) {
				handled = true
			}
		}
		return handled
	}
	for i, tw := range g.members {
		if !g.live[i] || tw.cfg.Mode != ModeTLB || !tw.tlbInvalid[key] {
			continue
		}
		if tw.InvalidPageTrap(t, va, pa, kind) {
			handled = true
		}
	}
	return handled
}

// memberSetPageValid routes one member's page-valid-bit flip through the
// union refcounts: the physical pte bit changes only when the count of
// members holding the page invalid transitions between zero and nonzero,
// so tw_set_trap from one TLB simulator never revalidates a page another
// still holds invalid. mach.Machine.InvalidatePage (the PR 3 micro-cache
// protocol) therefore fires exactly on union transitions.
func (g *Gang) memberSetPageValid(tw *Tapeworm, t mem.TaskID, va mem.VAddr, valid bool) error {
	key := vkey{t, uint32(va) >> g.pageBits}
	if valid {
		if !tw.tlbInvalid[key] {
			return nil // member holds no invalid-intent; nothing to release
		}
		if g.invalid[key] == 1 {
			if err := g.k.SetPageValid(t, va, true); err != nil {
				return err
			}
			delete(g.invalid, key)
		} else {
			g.invalid[key]--
		}
		delete(tw.tlbInvalid, key)
		if !g.wide {
			if m := g.invalidMask[key] &^ (1 << uint(tw.gangIdx)); m == 0 {
				delete(g.invalidMask, key)
			} else {
				g.invalidMask[key] = m
			}
		}
		return nil
	}
	if tw.tlbInvalid[key] {
		return nil // already held invalid by this member
	}
	if g.invalid[key] == 0 {
		if err := g.k.SetPageValid(t, va, false); err != nil {
			return err
		}
	}
	g.invalid[key]++
	tw.tlbInvalid[key] = true
	if !g.wide {
		g.invalidMask[key] |= 1 << uint(tw.gangIdx)
	}
	return nil
}
