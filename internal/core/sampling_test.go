package core

import (
	"testing"
	"testing/quick"

	"tapeworm/internal/cache"
)

func TestSamplingDefaults(t *testing.T) {
	var zero Sampling
	if !zero.Sampled(0) || !zero.Sampled(123) {
		t.Fatal("zero-value sampling should sample everything")
	}
	if zero.Fraction() != 1 {
		t.Fatalf("zero-value fraction = %v", zero.Fraction())
	}
	if FullSampling().String() != "1/1" {
		t.Fatalf("full sampling renders as %q", FullSampling().String())
	}
}

func TestSamplingFraction(t *testing.T) {
	s := Sampling{Num: 1, Den: 8}
	if s.Fraction() != 0.125 {
		t.Fatalf("fraction = %v", s.Fraction())
	}
	if s.String() != "1/8" {
		t.Fatalf("String = %q", s.String())
	}
	s = Sampling{Num: 3, Den: 4}
	if s.Fraction() != 0.75 {
		t.Fatalf("fraction = %v", s.Fraction())
	}
}

func TestSamplingValidate(t *testing.T) {
	if err := (Sampling{Num: 1, Den: 8}).Validate(64); err != nil {
		t.Fatalf("1/8 of 64 sets rejected: %v", err)
	}
	if err := FullSampling().Validate(4); err != nil {
		t.Fatalf("full sampling rejected: %v", err)
	}
	bads := []Sampling{
		{Num: 0, Den: 8},
		{Num: -1, Den: 8},
		{Num: 1, Den: 3}, // not a power of two
		{Num: 1, Den: 128},
	}
	for i, s := range bads {
		if err := s.Validate(64); err == nil {
			t.Errorf("bad sampling %d accepted: %v", i, s)
		}
	}
}

func TestSampledFractionExact(t *testing.T) {
	f := func(denPow uint8, numRaw uint8, offset uint8) bool {
		den := 1 << (denPow%5 + 1) // 2..32
		num := int(numRaw)%den + 1
		s := Sampling{Num: num, Den: den, Offset: int(offset)}
		const sets = 256
		count := 0
		for set := 0; set < sets; set++ {
			if s.Sampled(set) {
				count++
			}
		}
		return count == sets*num/den
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetRotatesPattern(t *testing.T) {
	a := Sampling{Num: 1, Den: 8, Offset: 0}
	b := Sampling{Num: 1, Den: 8, Offset: 3}
	var differs bool
	for set := 0; set < 8; set++ {
		if a.Sampled(set) != b.Sampled(set) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("offset did not change the sample pattern")
	}
	// Complete offset coverage samples every set exactly Num times.
	for set := 0; set < 64; set++ {
		n := 0
		for off := 0; off < 8; off++ {
			if (Sampling{Num: 1, Den: 8, Offset: off}).Sampled(set) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("set %d sampled %d times across all offsets", set, n)
		}
	}
}

func TestHandlerCostModel(t *testing.T) {
	base := cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1}
	opt := HandlerCycles(HandlerOptimized, base)
	if opt != 246 {
		t.Fatalf("optimized DM/4-word handler = %d cycles, want Table 5's 246", opt)
	}
	// Associativity slightly increases tw_replace time.
	twoWay := base
	twoWay.Assoc = 2
	if HandlerCycles(HandlerOptimized, twoWay) <= opt {
		t.Fatal("2-way handler not costlier than direct-mapped")
	}
	// Longer lines increase tw_set_trap/tw_clear_trap time.
	longLine := base
	longLine.LineSize = 64
	if HandlerCycles(HandlerOptimized, longLine) <= opt {
		t.Fatal("64B-line handler not costlier than 16B")
	}
	// The original C handler is ~8x slower; hardware assist ~5x faster.
	c := HandlerCycles(HandlerOriginalC, base)
	hw := HandlerCycles(HandlerHardwareAssist, base)
	if c < 6*opt || c > 10*opt {
		t.Fatalf("C handler %d cycles vs optimized %d: ratio off", c, opt)
	}
	if hw >= opt/4 {
		t.Fatalf("hardware-assist handler %d not ~5x faster than %d", hw, opt)
	}
	// Hardware assist is line-size independent (single-operation traps).
	if HandlerCycles(HandlerHardwareAssist, longLine) != hw {
		t.Fatal("hardware-assist cost should not grow with line size")
	}
}

func TestTable5Breakdown(t *testing.T) {
	b := Table5Breakdown()
	if b.Instructions() != 137 {
		t.Fatalf("handler instructions = %d, want 137", b.Instructions())
	}
	if b.CyclesPerMiss != 246 {
		t.Fatalf("cycles per miss = %d", b.CyclesPerMiss)
	}
	if b.KernelTrapReturn != 53 || b.TwSetTrap != 35 || b.TwClearTrap != 6 {
		t.Fatal("component values differ from Table 5")
	}
}

func TestModeAndHandlerStrings(t *testing.T) {
	if ModeICache.String() != "icache" || ModeTLB.String() != "tlb" {
		t.Fatal("mode names wrong")
	}
	if HandlerOptimized.String() != "optimized-assembly" ||
		HandlerOriginalC.String() != "original-C" ||
		HandlerHardwareAssist.String() != "hardware-assist" {
		t.Fatal("handler names wrong")
	}
}
