package core

import (
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mem"
)

// TestAttributeClearedMidRunDoesNotLeak: tw_attributes may clear a task's
// simulate bit after its pages were registered (Table 1 allows any
// transition). The VM system still reports the unmappings at exit, so the
// simulator must not leak per-frame state — a stale entry would make the
// frame's next owner register as "shared" and never arm traps.
func TestAttributeClearedMidRunDoesNotLeak(t *testing.T) {
	k := bootDEC(t, 3, 3)
	tw := MustAttach(k, dmICache(4, cache.PhysIndexed))
	task := spawnWorkload(t, k, "espresso", 5, true)
	if err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if tw.Stats().PagesTracked == 0 {
		t.Fatal("no pages registered during warmup")
	}
	// The workload is de-registered mid-run.
	if err := tw.Attributes(task.ID, false, false); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if n := tw.Stats().PagesTracked; n != 0 {
		t.Fatalf("%d pages leaked after attribute flip and exit", n)
	}
}

// TestUnknownServiceIsAnErrorNotAPanic: a custom Program emitting a bogus
// syscall must surface as a kernel error, like any other malformed event.
func TestUnknownServiceIsAnErrorNotAPanic(t *testing.T) {
	k := bootDEC(t, 7, 7)
	MustAttach(k, dmICache(4, cache.PhysIndexed))
	k.Spawn("bogus", &badSyscallProgram{}, true, false)
	err := k.Run(0)
	if err == nil {
		t.Fatal("unknown service accepted")
	}
}

type badSyscallProgram struct{ step int }

func (p *badSyscallProgram) Next() kernel.Event {
	p.step++
	if p.step == 1 {
		return kernel.Event{Kind: kernel.EvRef,
			Ref: mem.Ref{VA: kernel.TextBase, Kind: mem.IFetch}}
	}
	return kernel.Event{Kind: kernel.EvSyscall, Service: kernel.ServiceID(99)}
}
