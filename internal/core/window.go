package core

// Interval selection. Checkpointed forks make restarting a configuration
// cheap, which is only half of representative-interval simulation: the
// other half is measuring a window of the run instead of all of it, with
// an explicit warm-up so the simulated cache's cold-start misses are not
// charged to the measured interval. Window implements that measurement
// gate. It composes orthogonally with set-sampling (Sampling picks which
// sets are simulated at all; Window picks when their misses count):
// trap physics — clear, simulate, re-arm, overhead charging — run for the
// whole execution either way, so the simulated state is warm when the
// measure interval opens and the tables stay byte-identical whether a
// window is set or not.

import "fmt"

// Window bounds the measurement interval in retired instructions. The
// zero value measures the whole run (no gate, no per-miss cost beyond a
// flag test).
type Window struct {
	// WarmupInstr is the number of retired instructions before misses
	// start counting. Traps fire and simulated state updates throughout
	// the warm-up; only the counting is suppressed.
	WarmupInstr uint64

	// MeasureInstr, when nonzero, closes the measurement interval after
	// that many further retired instructions; zero measures to the end of
	// the run.
	MeasureInstr uint64
}

// enabled reports whether the window gates anything.
func (w Window) enabled() bool { return w.WarmupInstr > 0 || w.MeasureInstr > 0 }

// Validate checks the window for internal consistency.
func (w Window) Validate() error {
	if w.MeasureInstr > 0 && w.WarmupInstr > ^uint64(0)-w.MeasureInstr {
		return fmt.Errorf("core: warm-up %d + measure %d instructions overflows", w.WarmupInstr, w.MeasureInstr)
	}
	return nil
}

// Measuring reports whether a miss retiring at instruction count instr
// falls inside the measurement interval.
func (w Window) Measuring(instr uint64) bool {
	if instr < w.WarmupInstr {
		return false
	}
	return w.MeasureInstr == 0 || instr < w.WarmupInstr+w.MeasureInstr
}

// String renders the window for progress and telemetry labels.
func (w Window) String() string {
	if !w.enabled() {
		return "full"
	}
	if w.MeasureInstr == 0 {
		return fmt.Sprintf("warmup %d", w.WarmupInstr)
	}
	return fmt.Sprintf("warmup %d, measure %d", w.WarmupInstr, w.MeasureInstr)
}
