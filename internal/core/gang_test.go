package core

import (
	"math/bits"
	"reflect"
	"testing"

	"tapeworm/internal/cache"
	"tapeworm/internal/mem"
)

// gangConfigs is a deliberately diverse panel: sizes, associativities,
// line sizes, indexing, sampling degrees, and a two-level hierarchy.
func gangConfigs() []Config {
	l2 := cache.Config{Size: 64 << 10, LineSize: 32, Assoc: 2, Indexing: cache.PhysIndexed}
	return []Config{
		{Mode: ModeICache,
			Cache:    cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1, Indexing: cache.PhysIndexed},
			Sampling: FullSampling()},
		{Mode: ModeICache,
			Cache:    cache.Config{Size: 16 << 10, LineSize: 32, Assoc: 2, Indexing: cache.VirtIndexed},
			Sampling: FullSampling()},
		{Mode: ModeICache,
			Cache:    cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1, Indexing: cache.VirtIndexed},
			Sampling: Sampling{Num: 1, Den: 8}},
		{Mode: ModeICache,
			Cache:    cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 4, Indexing: cache.PhysIndexed},
			Sampling: FullSampling(),
			L2:       &l2},
	}
}

type memberResult struct {
	stats  Stats
	byTask map[mem.TaskID]uint64
	ledger uint64
}

// runGangOf boots a fresh machine with the given seeds, attaches cfgs as
// one gang, runs the workload to completion, and returns per-member
// results plus the machine's final cycle count.
func runGangOf(t *testing.T, cfgs []Config, wl string, seed uint64) ([]memberResult, uint64) {
	t.Helper()
	k := bootDEC(t, 11, 13)
	g := MustAttachGang(k, cfgs)
	spawnWorkload(t, k, wl, seed, true)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	var out []memberResult
	for _, tw := range g.Members() {
		if err := tw.CheckInvariant(tw.Stats().CrossKindClears); err != nil {
			t.Errorf("invariant: %v", err)
		}
		out = append(out, memberResult{tw.Stats(), tw.MissesByTask(), tw.LedgerCycles()})
	}
	return out, k.Machine().Cycles()
}

// TestGangByteIdentity is the tentpole invariant: every member of a
// gang-of-N produces statistics identical to its own gang-of-1 run, and
// the shared execution stream (machine cycles) is identical regardless of
// which simulators ride on it.
func TestGangByteIdentity(t *testing.T) {
	cfgs := gangConfigs()
	ganged, gangCycles := runGangOf(t, cfgs, "espresso", 42)
	for i, cfg := range cfgs {
		solo, soloCycles := runGangOf(t, []Config{cfg}, "espresso", 42)
		if !reflect.DeepEqual(solo[0], ganged[i]) {
			t.Errorf("member %d diverged from solo run:\nsolo:   %+v\nganged: %+v",
				i, solo[0], ganged[i])
		}
		if soloCycles != gangCycles {
			t.Errorf("member %d: shared stream dilated: solo %d cycles, ganged %d",
				i, soloCycles, gangCycles)
		}
		if ganged[i].stats.Misses == 0 {
			t.Errorf("member %d counted no misses", i)
		}
	}
}

// TestGangTLBByteIdentity runs the same invariant for TLB-mode members,
// whose traps share page-valid bits through the union refcounts.
func TestGangTLBByteIdentity(t *testing.T) {
	cfgs := []Config{
		{Mode: ModeTLB,
			TLB:      cache.TLBConfig{Entries: 8, PageSize: 4096, Replace: cache.LRU},
			Sampling: FullSampling()},
		{Mode: ModeTLB,
			TLB:      cache.TLBConfig{Entries: 64, PageSize: 4096, Replace: cache.Random},
			Sampling: FullSampling()},
		{Mode: ModeTLB,
			TLB:      cache.TLBConfig{Entries: 16, Assoc: 2, PageSize: 4096, Replace: cache.LRU},
			Sampling: Sampling{Num: 1, Den: 2}},
	}
	ganged, gangCycles := runGangOf(t, cfgs, "espresso", 42)
	for i, cfg := range cfgs {
		solo, soloCycles := runGangOf(t, []Config{cfg}, "espresso", 42)
		if !reflect.DeepEqual(solo[0], ganged[i]) {
			t.Errorf("TLB member %d diverged from solo run:\nsolo:   %+v\nganged: %+v",
				i, solo[0], ganged[i])
		}
		if soloCycles != gangCycles {
			t.Errorf("TLB member %d: shared stream dilated: solo %d, ganged %d",
				i, soloCycles, gangCycles)
		}
	}
}

// TestGangMixedModes gangs cache and TLB simulators over one execution:
// the two trap mechanisms (ECC bits, page valid bits) coexist without
// cross-talk.
func TestGangMixedModes(t *testing.T) {
	cfgs := []Config{
		{Mode: ModeICache,
			Cache:    cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1, Indexing: cache.PhysIndexed},
			Sampling: FullSampling()},
		{Mode: ModeTLB,
			TLB:      cache.TLBConfig{Entries: 16, PageSize: 4096, Replace: cache.LRU},
			Sampling: FullSampling()},
	}
	ganged, _ := runGangOf(t, cfgs, "eqntott", 7)
	for i, cfg := range cfgs {
		solo, _ := runGangOf(t, []Config{cfg}, "eqntott", 7)
		if !reflect.DeepEqual(solo[0], ganged[i]) {
			t.Errorf("mixed member %d diverged:\nsolo:   %+v\nganged: %+v",
				i, solo[0], ganged[i])
		}
	}
}

// TestGangDetachMidRun detaches one member partway through a run: the
// survivor must finish with statistics identical to its gang-of-1 run, the
// detached member's statistics must freeze, and the union trap set must
// shrink to exactly the survivor's intent.
func TestGangDetachMidRun(t *testing.T) {
	cfgs := gangConfigs()[:2]
	k := bootDEC(t, 11, 13)
	g := MustAttachGang(k, cfgs)
	spawnWorkload(t, k, "espresso", 42, true)
	if err := k.Run(2000); err != nil {
		t.Fatal(err)
	}
	detached := g.Members()[1]
	if err := g.Detach(detached); err != nil {
		t.Fatal(err)
	}
	frozen := detached.Stats()
	if err := g.Detach(detached); err == nil {
		t.Fatal("second detach of the same member should fail")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := detached.Stats(); !reflect.DeepEqual(got, frozen) {
		t.Errorf("detached member kept accumulating: %+v vs %+v", got, frozen)
	}

	survivor := g.Members()[0]
	solo, _ := runGangOf(t, cfgs[:1], "espresso", 42)
	got := memberResult{survivor.Stats(), survivor.MissesByTask(), survivor.LedgerCycles()}
	if !reflect.DeepEqual(solo[0], got) {
		t.Errorf("survivor diverged after detach:\nsolo:   %+v\nafter:  %+v", solo[0], got)
	}

	// Workload exit removed the survivor's pages; whatever traps remain
	// must be exactly the survivor's intent — the detached member's share
	// of the union is gone.
	want := 0
	for _, w := range survivor.intent {
		want += bits.OnesCount64(w)
	}
	if got := k.Machine().Phys().TrapCount(); got != want {
		t.Errorf("union trap count %d != survivor intent %d after detach", got, want)
	}
}

// TestGangSharedWordRefcounts exercises the satellite edge cases directly:
// two members arming the same word, one clearing while the other holds,
// and the micro-cache invalidation firing only on union transitions.
func TestGangSharedWordRefcounts(t *testing.T) {
	k := bootDEC(t, 3, 3)
	g := MustAttachGang(k, gangConfigs()[:2])
	a, b := g.Members()[0], g.Members()[1]
	ma, mb := a.mech.(*gangMech), b.mech.(*gangMech)
	phys := k.Machine().Phys()

	// Pick a word inside the Tapeworm-reserved frames: never registered,
	// so the workload cannot interfere.
	pa := mem.PAddr(phys.Bytes() - 4096)

	ma.SetTrap(pa, 16)
	mb.SetTrap(pa, 16) // overlapping arm: refcount 2, one physical set
	if got := phys.TrapRefCount(pa); got != 2 {
		t.Fatalf("refcount %d after two arms, want 2", got)
	}
	set0, cleared0 := phys.Stats()

	ma.ClearTrap(pa, 16) // clear while the other holds
	if !phys.Trapped(pa, 16) {
		t.Fatal("word untrapped while another member still holds it")
	}
	if a.trapArmed(pa, 16) {
		t.Fatal("member A still considers the word armed after its clear")
	}
	if !b.trapArmed(pa, 16) {
		t.Fatal("member B lost its trap to member A's clear")
	}
	ma.ClearTrap(pa, 16) // double clear: must not release B's reference
	if got := phys.TrapRefCount(pa); got != 1 {
		t.Fatalf("refcount %d after A's redundant clear, want 1", got)
	}

	mb.ClearTrap(pa, 16) // last holder releases: physical trap goes
	if phys.Trapped(pa, 16) || phys.TrapRefCount(pa) != 0 {
		t.Fatal("trap survived the last holder's release")
	}
	set1, cleared1 := phys.Stats()
	if set1 != set0 || cleared1 != cleared0+4 {
		t.Errorf("physical flips: set %d->%d cleared %d->%d; want set unchanged, cleared +4",
			set0, set1, cleared0, cleared1)
	}
}

// TestGangUnionPageValid checks the TLB-side union: the physical valid bit
// (and with it mach.InvalidatePage, the PR 3 micro-cache protocol) flips
// only when the count of members holding the page invalid crosses zero.
func TestGangUnionPageValid(t *testing.T) {
	cfgs := []Config{
		{Mode: ModeTLB,
			TLB:      cache.TLBConfig{Entries: 8, PageSize: 4096, Replace: cache.LRU},
			Sampling: FullSampling()},
		{Mode: ModeTLB,
			TLB:      cache.TLBConfig{Entries: 64, PageSize: 4096, Replace: cache.LRU},
			Sampling: FullSampling()},
	}
	k := bootDEC(t, 5, 5)
	g := MustAttachGang(k, cfgs)
	spawnWorkload(t, k, "eqntott", 9, true)
	if err := k.Run(3000); err != nil { // stop mid-run: pages still mapped
		t.Fatal(err)
	}
	a, b := g.Members()[0], g.Members()[1]

	// Find a mapping both members track, currently valid for both.
	var (
		key   vkey
		found bool
	)
	for kk := range a.mapVP {
		if kk.t == mem.KernelTask || a.tlbInvalid[kk] || b.tlbInvalid[kk] {
			continue
		}
		if _, ok := b.mapVP[kk]; ok {
			key, found = kk, true
			break
		}
	}
	if !found {
		t.Fatal("no shared valid mapping found mid-run")
	}
	va := mem.VAddr(key.vpn) << g.pageBits
	m := k.Machine()

	inv0 := m.PageInvalidations()
	step := func(tw *Tapeworm, valid bool, wantFlip bool, label string) {
		before := m.PageInvalidations()
		if err := g.memberSetPageValid(tw, key.t, va, valid); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		flipped := m.PageInvalidations() != before
		if flipped != wantFlip {
			t.Errorf("%s: InvalidatePage fired=%v, want %v", label, flipped, wantFlip)
		}
	}
	step(a, false, true, "A invalidates (union 0->1)")
	step(b, false, false, "B invalidates (union 1->2)")
	step(a, true, false, "A revalidates (union 2->1)")
	if _, valid := k.Task(key.t).Space().Translate(va); valid {
		t.Error("pte became valid while B still holds the page invalid")
	}
	step(b, true, true, "B revalidates (union 1->0)")
	if _, valid := k.Task(key.t).Space().Translate(va); !valid {
		t.Error("pte still invalid after the last holder released")
	}
	if m.PageInvalidations() != inv0+2 {
		t.Errorf("union cycle caused %d invalidations, want 2", m.PageInvalidations()-inv0)
	}
}
