package core

// Machine-dependent layer, breakpoint variant: on processors without ECC
// diagnostic access (the 486-based Gateway PC of Section 4.3, Table 12),
// instruction-cache traps can be planted as clusters of breakpoints — one
// per word of the simulated line ("perhaps set in clusters of more than
// one", Section 3.2). Only instruction fetches trap, so this mechanism
// supports I-cache simulation only.

import (
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
)

// breakpointMech plants traps as per-word instruction breakpoints.
type breakpointMech struct {
	m *mach.Machine
}

func newBreakpointMech(m *mach.Machine) *breakpointMech { return &breakpointMech{m: m} }

// SetTrap plants one breakpoint per word of the range. The armed state is
// owned by the Tapeworm page tables; ClearTrap releases it.
//
//twvet:transfer
func (b *breakpointMech) SetTrap(pa mem.PAddr, size int) {
	if size <= 0 {
		size = mem.WordBytes
	}
	for off := 0; off < size; off += mem.WordBytes {
		b.m.SetBreakpoint(pa + mem.PAddr(off))
	}
}

// ClearTrap removes the range's breakpoints armed by SetTrap.
//
//twvet:transfer
func (b *breakpointMech) ClearTrap(pa mem.PAddr, size int) {
	if size <= 0 {
		size = mem.WordBytes
	}
	for off := 0; off < size; off += mem.WordBytes {
		b.m.ClearBreakpoint(pa + mem.PAddr(off))
	}
}

// SetupCycles prices arming/disarming n words of breakpoints.
func (b *breakpointMech) SetupCycles(words int) uint64 {
	// Breakpoint registers are cheap to write but there is one write per
	// word and bookkeeping to swap the original instruction.
	return 4 + uint64(words)*3
}

// Name identifies the mechanism for reports.
func (b *breakpointMech) Name() string { return "instruction breakpoints" }
