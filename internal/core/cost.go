package core

import "tapeworm/internal/cache"

// HandlerModel selects the miss-handler implementation whose cost is
// charged per trap. The paper's Section 4.1 and 4.3 describe three points:
// the original C handler (~2,000 cycles, comparable to the Wisconsin Wind
// Tunnel's ~2,500), the hand-optimized assembly handler (246 cycles for a
// direct-mapped cache with 4-word lines, Table 5), and a hypothetical
// handler with clean hardware support for the memory ASIC's diagnostic
// functions (~50 cycles, "a factor of 5" faster).
type HandlerModel int

const (
	// HandlerOptimized is the hand-tuned assembly handler of Table 5:
	// no execution stack, minimal register saves, kernel entry bypassed.
	HandlerOptimized HandlerModel = iota
	// HandlerOriginalC is the first implementation, written in C with the
	// usual kernel entry and exit code.
	HandlerOriginalC
	// HandlerHardwareAssist models intentional hardware support: a single
	// load reconstructs the error address and trap set/clear are direct.
	HandlerHardwareAssist
)

// String names the handler model.
func (h HandlerModel) String() string {
	switch h {
	case HandlerOriginalC:
		return "original-C"
	case HandlerHardwareAssist:
		return "hardware-assist"
	}
	return "optimized-assembly"
}

// CostBreakdown itemizes the optimized handler in instructions, as in
// Table 5. The cycle total exceeds the instruction total because the
// memory-controller ASIC's diagnostic operations are multi-cycle.
type CostBreakdown struct {
	KernelTrapReturn int // kernel trap and return
	TwCacheMiss      int // tw_cache_miss()
	TwReplace        int // tw_replace()
	TwSetTrap        int // tw_set_trap()
	TwClearTrap      int // tw_clear_trap()
	CyclesPerMiss    int // total cycles, direct-mapped, 4-word lines
}

// Table5Breakdown returns the paper's Table 5 handler cost components.
func Table5Breakdown() CostBreakdown {
	return CostBreakdown{
		KernelTrapReturn: 53,
		TwCacheMiss:      23,
		TwReplace:        20,
		TwSetTrap:        35,
		TwClearTrap:      6,
		CyclesPerMiss:    246,
	}
}

// Instructions returns the handler's instruction total.
func (c CostBreakdown) Instructions() int {
	return c.KernelTrapReturn + c.TwCacheMiss + c.TwReplace + c.TwSetTrap + c.TwClearTrap
}

// HandlerCycles returns the cycles one simulated miss costs under the
// given handler model and cache geometry; exported for the Table 5
// experiment and ablation benchmarks.
func HandlerCycles(model HandlerModel, cfg cache.Config) uint64 {
	return missHandlerCycles(model, cfg)
}

// missHandlerCycles returns the cycles charged per Tapeworm cache miss.
// Higher associativity slightly increases tw_replace time; longer lines
// increase tw_set_trap and tw_clear_trap (more ASIC flips per line);
// simulated cache *size* has no effect (Section 4.1).
func missHandlerCycles(model HandlerModel, cfg cache.Config) uint64 {
	ways := cfg.Ways()
	if ways > 8 {
		ways = 8 // comparisons are loop-unrolled up to 8 ways
	}
	extraAssoc := uint64(8 * (ways - 1))
	extraLine := uint64(24 * (cfg.LineSize/16 - 1))
	switch model {
	case HandlerOriginalC:
		return 2000 + extraAssoc + extraLine
	case HandlerHardwareAssist:
		// Trap set/clear are single operations regardless of line size.
		return 50 + extraAssoc
	default:
		return uint64(Table5Breakdown().CyclesPerMiss) + extraAssoc + extraLine
	}
}

// tlbHandlerCycles is the per-miss cost of the page-valid-bit TLB
// simulation path. Page valid bits need no ASIC gymnastics, and the
// R3000's software-managed TLB refill is already a lightweight vector.
func tlbHandlerCycles(model HandlerModel) uint64 {
	switch model {
	case HandlerOriginalC:
		return 1400
	case HandlerHardwareAssist:
		return 40
	default:
		return 180
	}
}

// crossKindClearCycles is charged when a trap fires for the wrong access
// kind (a data reference touching a word tracked by an instruction-cache
// simulation): the handler enters, identifies the mismatch, clears the
// trap and returns without simulating.
const crossKindClearCycles = 80

// registerWordCycles is the per-word cost of flipping check bits while
// registering or unregistering a page ("a convoluted sequence of control
// instructions to the memory-controller ASIC", Section 4.3).
const registerWordCycles = 2
