// Package core implements Tapeworm II, the paper's contribution: a
// kernel-resident, trap-driven cache and TLB simulator.
//
// Tapeworm never sees cache hits. It begins by arming traps on every
// memory location of the pages registered to it; locations with traps set
// represent locations absent from the simulated cache. The first use of
// such a location traps into the kernel, where Tapeworm counts the miss,
// clears the trap (caching the location, since later uses now run at full
// hardware speed), consults tw_replace for a victim, and arms a trap on
// the displaced location (Figure 1):
//
//	tw_miss(address){
//	    miss++;
//	    tw_clear_trap(address);
//	    displaced_address = tw_replace(address);
//	    tw_set_trap(displaced_address);
//	}
//
// The six primitives of Table 1 map to methods here: tw_set_trap and
// tw_clear_trap are the machine-dependent trapMech implementations
// (machdep_*.go), tw_register_page and tw_remove_page are the
// PageRegistered/PageRemoved hooks driven by the kernel's VM system,
// tw_attributes is Attributes, and tw_replace is the insert path of the
// simulated cache structure.
package core

import (
	"fmt"
	"slices"

	"tapeworm/internal/arch"
	"tapeworm/internal/cache"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/rng"
	"tapeworm/internal/telemetry"
)

// Mode selects what Tapeworm simulates.
type Mode int

const (
	// ModeICache simulates an instruction cache: only pages faulted in by
	// instruction fetches are registered, and traps raised by data
	// references are cleared without counting.
	ModeICache Mode = iota
	// ModeDCache simulates a data cache (requires an allocate-on-write
	// host, per Section 4.4).
	ModeDCache
	// ModeUnified simulates a unified cache over all reference kinds.
	ModeUnified
	// ModeTLB simulates a TLB using page-valid-bit traps.
	ModeTLB
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeICache:
		return "icache"
	case ModeDCache:
		return "dcache"
	case ModeUnified:
		return "unified"
	case ModeTLB:
		return "tlb"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes a Tapeworm simulation.
type Config struct {
	Mode Mode

	// Cache is the simulated cache geometry (cache modes). Because
	// tw_replace is pure software, it is unconstrained by the host: the
	// simulated cache may be larger or smaller than the host's, any
	// associativity, any line size that the trap mechanism can express,
	// virtually or physically indexed.
	//
	// One inherent caveat of trap-driven simulation: hits never reach the
	// simulator, so true LRU (which needs per-hit recency updates) cannot
	// be maintained for associative caches. An LRU policy here degrades
	// to insertion-order (FIFO) replacement — exactly what a kernel-
	// resident trap-driven simulator can implement, and equal to a
	// trace-driven FIFO simulation of the same geometry.
	Cache cache.Config

	// L2, when non-nil, adds a second cache level behind Cache (cache
	// modes): tw_replace then maintains an inclusive two-level hierarchy
	// and traps are armed only on lines absent from *both* levels, at L2
	// line granularity. Counted misses are overall (L2) misses; L1-miss/
	// L2-hit events run at full speed and are invisible — the trap can
	// only distinguish "somewhere in the hierarchy" from "nowhere".
	L2 *cache.Config

	// TLB is the simulated TLB geometry (ModeTLB).
	TLB cache.TLBConfig

	Sampling Sampling
	Handler  HandlerModel

	// Window restricts which misses are counted to a warm-up/measure
	// interval over retired instructions. Trap physics are unaffected —
	// the zero value (measure everything) leaves results bit-identical.
	Window Window

	// Seed drives victim choice for Random replacement policies.
	Seed uint64

	// AllowWriteClears permits data/unified simulation on a
	// no-allocate-on-write host. Store misses then silently destroy traps
	// without invoking the handler, undercounting misses — the exact
	// failure that blocked data-cache simulation on the DECstation
	// (Section 4.4). Off by default so the error is loud.
	AllowWriteClears bool
}

// Stats aggregates Tapeworm's measurements and self-accounting.
type Stats struct {
	Misses          uint64                       // counted simulated misses
	MissesByComp    [kernel.NumComponents]uint64 // user/server/kernel split
	CrossKindClears uint64                       // wrong-kind traps cleared uncounted
	LostDisplaced   uint64                       // victims whose page vanished mid-flight
	Registrations   uint64                       // tw_register_page calls accepted
	Removals        uint64                       // tw_remove_page completions
	PagesTracked    int                          // currently tracked physical pages
	HandlerCycles   uint64                       // overhead charged for miss handling
	SetupCycles     uint64                       // overhead charged for page (de)registration
	TrueErrors      uint64                       // non-Tapeworm syndromes passed through
}

// vkey identifies one virtual page mapping.
type vkey struct {
	t   mem.TaskID
	vpn uint32
}

// vkeyCompare orders vkeys by (task, vpn) for deterministic iteration
// over vkey-keyed maps.
func vkeyCompare(a, b vkey) int {
	if a.t != b.t {
		if a.t < b.t {
			return -1
		}
		return 1
	}
	if a.vpn != b.vpn {
		if a.vpn < b.vpn {
			return -1
		}
		return 1
	}
	return 0
}

// pageState tracks one registered physical page.
type pageState struct {
	ref      int
	kind     mem.RefKind
	mappings []vkey
}

// Tapeworm is the simulator instance. Create with Attach, which wires it
// into a booted kernel as that kernel's memory-simulation hooks.
type Tapeworm struct {
	cfg Config
	k   *kernel.Kernel
	m   *mach.Machine

	mech trapMech // cache modes
	sim  *cache.Cache
	sim2 *cache.TwoLevel // non-nil when Config.L2 is set
	tlb  *cache.TLB

	pageSize  uint32
	pageBits  uint
	lineSize  uint32
	missCost  uint64
	tlbCost   uint64
	kernelReg bool

	// windowOn caches Config.Window.enabled() so the no-window common
	// case costs one flag test per counted miss.
	windowOn bool

	pages map[uint32]*pageState // frame -> state
	mapVP map[vkey]mem.PAddr    // (task, vpn) -> physical page

	missesByTask map[mem.TaskID]uint64
	st           Stats

	// tel mirrors the kernel's telemetry run; consulted only on miss
	// paths, so a disabled run costs one nil test per counted miss.
	tel *telemetry.Run

	// Gang attach state (nil/zero for solo simulators). gang links back to
	// the Gang this member belongs to; ledger accumulates the overhead
	// cycles a solo run would have charged to the machine clock (gang
	// members must never dilate the shared clock — the Figure 4 leak);
	// intent is the member's own armed-word bitset (cache modes), the
	// member-local view of the union trap set; tlbInvalid is the set of
	// (task, page) mappings this member currently holds invalid (TLB mode).
	gang       *Gang
	gangIdx    int // member index; bit position in the gang's demux masks
	ledger     uint64
	intent     []uint64
	tlbInvalid map[vkey]bool
}

// charge accounts overhead cycles: a solo simulator dilates the machine
// clock (time dilation is real and deliberate, Figure 4); a gang member
// charges its private ledger so its overhead never perturbs the shared
// stream the other members observe.
func (tw *Tapeworm) charge(c uint64) {
	if tw.gang != nil {
		tw.ledger += c
		return
	}
	tw.m.ChargeOverhead(c)
}

// LedgerCycles returns the overhead cycles accumulated on this member's
// private ledger (zero for solo simulators, whose overhead goes to the
// machine clock).
func (tw *Tapeworm) LedgerCycles() uint64 { return tw.ledger }

// counting reports whether a miss retiring now falls inside the
// measurement window. Only the counting is gated: trap physics (clear,
// simulate, re-arm, charge) run regardless, so simulated state stays
// warm through the warm-up and the tables are byte-identical with the
// window on or off.
func (tw *Tapeworm) counting() bool {
	return !tw.windowOn || tw.cfg.Window.Measuring(tw.m.Instructions())
}

// SetTelemetry redirects this simulator's miss events and counters to tel.
// Gang members get per-member runs; solo simulators inherit the kernel's.
func (tw *Tapeworm) SetTelemetry(tel *telemetry.Run) { tw.tel = tel }

// setPV flips one mapping's page valid bit (TLB mode). Solo simulators own
// the bit outright; gang members route through the gang's union refcounts
// so the physical bit flips only when the union validity transitions.
func (tw *Tapeworm) setPV(t mem.TaskID, va mem.VAddr, valid bool) error {
	if tw.gang != nil {
		return tw.gang.memberSetPageValid(tw, t, va, valid)
	}
	return tw.k.SetPageValid(t, va, valid)
}

// Attach builds a Tapeworm on the booted kernel k and installs it as the
// kernel's memory-simulation hooks. It fails when the host machine cannot
// express the requested simulation (Table 12 capability checks).
func Attach(k *kernel.Kernel, cfg Config) (*Tapeworm, error) {
	tw, err := build(k, cfg)
	if err != nil {
		return nil, err
	}
	k.SetHooks(tw)
	return tw, nil
}

// build constructs and validates a Tapeworm without installing kernel
// hooks; Attach installs the simulator directly, AttachGang wraps N of
// them behind one demultiplexing hook set.
func build(k *kernel.Kernel, cfg Config) (*Tapeworm, error) {
	m := k.Machine()
	proc := m.Config().Proc
	pageSize := m.Config().PageSize

	tw := &Tapeworm{
		cfg:          cfg,
		k:            k,
		m:            m,
		pageSize:     uint32(pageSize),
		pages:        make(map[uint32]*pageState),
		mapVP:        make(map[vkey]mem.PAddr),
		missesByTask: make(map[mem.TaskID]uint64),
		tel:          k.Telemetry(),
	}
	for s := pageSize; s > 1; s >>= 1 {
		tw.pageBits++
	}
	if err := cfg.Window.Validate(); err != nil {
		return nil, err
	}
	tw.windowOn = cfg.Window.enabled()

	switch cfg.Mode {
	case ModeICache, ModeDCache, ModeUnified:
		if err := cfg.Cache.Validate(); err != nil {
			return nil, err
		}
		// With a two-level hierarchy, traps live at L2 line granularity
		// and sampling selects L2 sets.
		trapLine := cfg.Cache.LineSize
		sampleSets := cfg.Cache.Sets()
		if cfg.L2 != nil {
			if err := cfg.L2.Validate(); err != nil {
				return nil, fmt.Errorf("core: L2: %w", err)
			}
			trapLine = cfg.L2.LineSize
			sampleSets = cfg.L2.Sets()
		}
		if trapLine > pageSize {
			return nil, fmt.Errorf("core: line size %d exceeds page size %d",
				trapLine, pageSize)
		}
		if err := cfg.Sampling.Validate(sampleSets); err != nil {
			return nil, err
		}
		mechKind, err := arch.SelectMechanism(proc, trapLine)
		if err != nil {
			return nil, err
		}
		switch mechKind {
		case arch.MechECC:
			tw.mech = newECCMech(m)
		case arch.MechBreakpoint:
			if cfg.Mode != ModeICache {
				return nil, fmt.Errorf(
					"core: %s offers only instruction breakpoints, which cannot trap data references",
					proc.Name)
			}
			tw.mech = newBreakpointMech(m)
		default:
			return nil, fmt.Errorf("core: no usable trap mechanism on %s", proc.Name)
		}
		if cfg.Mode != ModeICache && !proc.AllocateOnWrite && !cfg.AllowWriteClears {
			return nil, fmt.Errorf(
				"core: %s does not allocate on write; store misses would silently clear traps "+
					"(set AllowWriteClears to proceed anyway and observe the undercount)",
				proc.Name)
		}
		if cfg.L2 != nil {
			tw.sim2, err = cache.NewTwoLevel(cfg.Cache, *cfg.L2,
				rng.New(cfg.Seed).Split("replace"))
			if err != nil {
				return nil, err
			}
			tw.lineSize = uint32(cfg.L2.LineSize)
			// The handler walks both tag arrays on a miss.
			tw.missCost = missHandlerCycles(cfg.Handler, cfg.Cache) +
				uint64(Table5Breakdown().TwReplace)
		} else {
			tw.sim = cache.MustNew(cfg.Cache, rng.New(cfg.Seed).Split("replace"))
			tw.lineSize = uint32(cfg.Cache.LineSize)
			tw.missCost = missHandlerCycles(cfg.Handler, cfg.Cache)
		}

	case ModeTLB:
		if err := cfg.TLB.Validate(); err != nil {
			return nil, err
		}
		if !proc.Has(arch.OpInvalidPageTraps) {
			return nil, fmt.Errorf("core: %s lacks invalid-page traps", proc.Name)
		}
		if cfg.TLB.PageSize%pageSize != 0 {
			return nil, fmt.Errorf(
				"core: simulated page size %d not a multiple of host page size %d "+
					"(variable page sizes need host support, Table 2)",
				cfg.TLB.PageSize, pageSize)
		}
		if cfg.TLB.PageSize > pageSize && !proc.Has(arch.OpVariablePageSize) {
			return nil, fmt.Errorf("core: %s lacks variable page size support", proc.Name)
		}
		t, err := cache.NewTLB(cfg.TLB, rng.New(cfg.Seed).Split("replace"))
		if err != nil {
			return nil, err
		}
		if err := cfg.Sampling.Validate(t.SetCount()); err != nil {
			return nil, err
		}
		tw.tlb = t
		tw.tlbCost = tlbHandlerCycles(cfg.Handler)

	default:
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}

	return tw, nil
}

// MustAttach is Attach but panics on error.
func MustAttach(k *kernel.Kernel, cfg Config) *Tapeworm {
	tw, err := Attach(k, cfg)
	if err != nil {
		panic(err)
	}
	return tw
}

// Config returns the simulation configuration.
func (tw *Tapeworm) Config() Config { return tw.cfg }

// MechanismName reports the trap mechanism in use.
func (tw *Tapeworm) MechanismName() string {
	if tw.cfg.Mode == ModeTLB {
		return "page valid bits"
	}
	return tw.mech.Name()
}

// Attributes implements tw_attributes(tid, simulate, inherit). A tid of
// zero signifies the kernel: enabling simulation for it registers every
// kernel page immediately (kernel pages never demand-fault).
func (tw *Tapeworm) Attributes(tid mem.TaskID, simulate, inherit bool) error {
	if err := tw.k.SetAttributes(tid, simulate, inherit); err != nil {
		return err
	}
	if tid == mem.KernelTask && simulate && !tw.kernelReg {
		if tw.cfg.Mode == ModeTLB {
			return fmt.Errorf("core: kernel kseg0 is not TLB-mapped; TLB simulation covers user and server tasks only")
		}
		tw.kernelReg = true
		tw.k.ForEachKernelPage(func(pa mem.PAddr, va mem.VAddr, kind mem.RefKind) {
			tw.PageRegistered(mem.KernelTask, pa, va, kind)
		})
	}
	return nil
}

// kindWanted reports whether this simulation registers pages first touched
// by the given reference kind, and counts misses of that kind.
func (tw *Tapeworm) kindWanted(k mem.RefKind) bool {
	switch tw.cfg.Mode {
	case ModeICache:
		return k == mem.IFetch
	case ModeDCache:
		return k != mem.IFetch
	default:
		return true
	}
}

// simKey forms the simulated-cache key for a reference: (task, virtual
// line) for virtually-indexed caches, the physical line otherwise.
func (tw *Tapeworm) simKey(t mem.TaskID, va mem.VAddr, pa mem.PAddr) (mem.TaskID, uint32) {
	if tw.cfg.Cache.Indexing == cache.VirtIndexed {
		return t, uint32(va)
	}
	return 0, uint32(pa)
}

// simSetIndex returns the set (of the trap-granularity level) an address
// maps to, for sampling decisions.
func (tw *Tapeworm) simSetIndex(addr uint32) int {
	if tw.sim2 != nil {
		return tw.sim2.L2.SetIndex(addr)
	}
	return tw.sim.SetIndex(addr)
}

// simProbe reports whether a line is resident anywhere in the simulated
// structure.
func (tw *Tapeworm) simProbe(task mem.TaskID, addr uint32) bool {
	if tw.sim2 != nil {
		return tw.sim2.Contains(task, addr)
	}
	return tw.sim.Probe(task, addr)
}

// simInvalidateRange flushes a range from every simulated level.
func (tw *Tapeworm) simInvalidateRange(task mem.TaskID, addr uint32, size int) {
	if tw.sim2 != nil {
		tw.sim2.L1.InvalidateRange(task, addr, size)
		tw.sim2.L2.InvalidateRange(task, addr, size)
		return
	}
	tw.sim.InvalidateRange(task, addr, size)
}

// simInsert runs tw_replace: insert the missing line, returning the lines
// displaced out of the structure entirely (the locations to re-arm).
func (tw *Tapeworm) simInsert(task mem.TaskID, addr uint32) []cache.Key {
	if tw.sim2 != nil {
		_, evicted := tw.sim2.AccessDetail(task, addr)
		return evicted
	}
	displaced, evicted := tw.sim.Insert(task, addr)
	if !evicted {
		return nil
	}
	return []cache.Key{displaced}
}

// simKeys lists resident lines at trap granularity (L2 under a hierarchy,
// where inclusion guarantees L1 ⊆ L2).
func (tw *Tapeworm) simKeys() []cache.Key {
	if tw.sim2 != nil {
		return tw.sim2.L2.Keys()
	}
	return tw.sim.Keys()
}

// --- kernel.MemSimHooks implementation ---

// PageRegistered is tw_register_page(tid, p, v): sets traps on the page's
// memory locations (restricted to sampled sets), or — if the physical page
// is already registered through another mapping — just bumps its reference
// count so tasks can share cached entries without fresh traps.
func (tw *Tapeworm) PageRegistered(t mem.TaskID, pa mem.PAddr, va mem.VAddr, kind mem.RefKind) {
	if tw.cfg.Mode != ModeTLB && !tw.kindWanted(kind) {
		return
	}
	frame := uint32(pa) >> tw.pageBits
	key := vkey{t, uint32(va) >> tw.pageBits}
	if _, dup := tw.mapVP[key]; dup {
		return // already registered (idempotent)
	}
	tw.st.Registrations++

	ps := tw.pages[frame]
	fresh := ps == nil
	if fresh {
		ps = &pageState{kind: kind}
		tw.pages[frame] = ps
		tw.st.PagesTracked++
	}
	ps.ref++
	ps.mappings = append(ps.mappings, key)
	tw.mapVP[key] = pa

	if tw.cfg.Mode == ModeTLB {
		// Each mapping has its own page-table entry, so every mapping
		// gets its own valid-bit trap, kernel pages excepted (kseg0 is
		// not TLB-mapped).
		if t == mem.KernelTask {
			return
		}
		if tw.cfg.Sampling.Sampled(tw.tlb.SetIndex(va)) {
			if err := tw.setPV(t, va, false); err == nil {
				tw.charge(12)
				tw.st.SetupCycles += 12
			}
		}
		return
	}

	if !fresh {
		return // shared physical page: no new memory traps
	}
	// Arm traps on every line of the page whose set is in the sample.
	// Unsampled locations never trap: the hardware filters them out of
	// the simulation at zero cost (Section 3.2, set sampling).
	armedWords := 0
	_, idxAddr := tw.simKey(t, va, pa)
	for off := uint32(0); off < tw.pageSize; off += tw.lineSize {
		if tw.cfg.Sampling.Sampled(tw.simSetIndex(idxAddr + off)) {
			tw.mech.SetTrap(pa+mem.PAddr(off), int(tw.lineSize))
			armedWords += int(tw.lineSize) / mem.WordBytes
		}
	}
	c := tw.mech.SetupCycles(armedWords)
	tw.charge(c)
	tw.st.SetupCycles += c
}

// PageRemoved is tw_remove_page(tid, p, v): the mapping leaves the
// Tapeworm domain; the physical page's traps are cleared and the page
// flushed from the simulated cache when its reference count reaches zero,
// mimicking what the VM system does to the host machine's real cache.
func (tw *Tapeworm) PageRemoved(t mem.TaskID, pa mem.PAddr, va mem.VAddr) {
	frame := uint32(pa) >> tw.pageBits
	ps := tw.pages[frame]
	key := vkey{t, uint32(va) >> tw.pageBits}
	if ps == nil {
		return // never registered (filtered by mode, or unknown)
	}
	if _, ok := tw.mapVP[key]; !ok {
		return // this mapping was not registered
	}
	delete(tw.mapVP, key)
	for i, mk := range ps.mappings {
		if mk == key {
			ps.mappings = append(ps.mappings[:i], ps.mappings[i+1:]...)
			break
		}
	}
	ps.ref--
	tw.st.Removals++

	if tw.cfg.Mode == ModeTLB {
		if t != mem.KernelTask {
			if tw.gang != nil {
				// Release this member's invalid-intent so the union
				// refcount balances; the last holder's release revalidates
				// a pte the VM is about to destroy anyway.
				_ = tw.setPV(t, va, true)
			}
			tw.tlb.InvalidatePage(t, va)
			// Leave the pte alone: the VM system is about to destroy it.
		}
		if ps.ref == 0 {
			delete(tw.pages, frame)
			tw.st.PagesTracked--
		}
		return
	}

	// Flush this mapping's lines from a virtually-indexed cache now; a
	// physically-indexed cache keeps the lines until the last mapping
	// goes (shared entries survive their first task, as on real
	// hardware).
	if tw.cfg.Cache.Indexing == cache.VirtIndexed {
		tw.simInvalidateRange(t, uint32(va), int(tw.pageSize))
	}
	if ps.ref == 0 {
		if tw.cfg.Cache.Indexing == cache.PhysIndexed {
			tw.simInvalidateRange(0, uint32(pa), int(tw.pageSize))
		}
		tw.mech.ClearTrap(pa, int(tw.pageSize))
		c := tw.mech.SetupCycles(int(tw.pageSize) / mem.WordBytes)
		tw.charge(c)
		tw.st.SetupCycles += c
		delete(tw.pages, frame)
		tw.st.PagesTracked--
	}
}

// TaskForked implements the attribute-inheritance bookkeeping; the
// attribute copy itself happens in the kernel's fork path, so Tapeworm has
// nothing to do but observe.
func (tw *Tapeworm) TaskForked(parent, child *kernel.Task) {}

// TaskExited observes task teardown (page removals arrive separately).
func (tw *Tapeworm) TaskExited(t mem.TaskID) {}

// ECCTrap is the Tapeworm miss handler for memory-error traps (cache
// modes). It returns false for true memory errors, which the kernel then
// handles: Tapeworm's dedicated check bit makes real single- and
// double-bit errors distinguishable with high probability (Section 3.2).
func (tw *Tapeworm) ECCTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, kind mem.RefKind) bool {
	if tw.cfg.Mode == ModeTLB || (tw.sim == nil && tw.sim2 == nil) {
		return false
	}
	if tw.m.Phys().Classify(pa) != mem.SynTapeworm {
		tw.st.TrueErrors++
		return false
	}
	tw.deliverTrap(t, va, pa, kind)
	return true
}

// deliverTrap handles one already-classified Tapeworm trap at word pa.
// Solo simulators reach it through ECCTrap; the gang demultiplexer calls
// it directly on every member whose intent set covers the word.
func (tw *Tapeworm) deliverTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, kind mem.RefKind) {
	// The trapped word and the referenced word share a page; reconstruct
	// the trapped word's virtual address from the page offset.
	off := uint32(pa) & (tw.pageSize - 1)
	vaTrap := mem.VAddr(uint32(va)&^(tw.pageSize-1) | off)
	paLine := pa &^ mem.PAddr(tw.lineSize-1)
	vaLine := vaTrap &^ mem.VAddr(tw.lineSize-1)

	if !tw.kindWanted(kind) {
		// Wrong-kind reference (e.g. a load walking a jump table inside
		// a page tracked by an I-cache simulation): clear and move on
		// without counting.
		tw.mech.ClearTrap(paLine, int(tw.lineSize))
		tw.charge(crossKindClearCycles)
		tw.st.CrossKindClears++
		return
	}

	tw.miss(t, vaLine, paLine)
}

// BreakpointTrap is the miss path for the breakpoint trap mechanism
// (instruction-cache simulation on hosts without ECC diagnostics).
func (tw *Tapeworm) BreakpointTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr) {
	if tw.cfg.Mode != ModeICache || !tw.usesBreakpoints() {
		return
	}
	paLine := pa &^ mem.PAddr(tw.lineSize-1)
	vaLine := va &^ mem.VAddr(tw.lineSize-1)
	tw.miss(t, vaLine, paLine)
}

// miss is tw_cache_miss + tw_clear_trap + tw_replace + tw_set_trap: the
// core trap-driven loop of Figure 1.
func (tw *Tapeworm) miss(t mem.TaskID, vaLine mem.VAddr, paLine mem.PAddr) {
	if tw.counting() {
		tw.st.Misses++
		tw.st.MissesByComp[tw.k.ComponentOf(t)]++
		tw.missesByTask[t]++
		if tw.tel != nil {
			tw.tel.Event(telemetry.EvTwMiss, int32(t), uint32(vaLine), uint32(paLine), tw.m.Cycles())
		}
	}

	tw.mech.ClearTrap(paLine, int(tw.lineSize))

	keyTask, keyAddr := tw.simKey(t, vaLine, paLine)
	for _, displaced := range tw.simInsert(keyTask, keyAddr) {
		if dispPA, ok := tw.resolveLinePA(displaced); ok {
			tw.mech.SetTrap(dispPA, int(tw.lineSize))
		} else {
			tw.st.LostDisplaced++
		}
	}

	tw.charge(tw.missCost)
	tw.st.HandlerCycles += tw.missCost
}

// resolveLinePA maps a displaced cache key back to the physical line to
// re-arm. Physically-indexed keys are already physical; virtually-indexed
// keys go through the recorded (task, page) mappings.
func (tw *Tapeworm) resolveLinePA(k cache.Key) (mem.PAddr, bool) {
	if tw.cfg.Cache.Indexing == cache.PhysIndexed {
		frame := k.Addr >> tw.pageBits
		if tw.pages[frame] == nil {
			return 0, false
		}
		return mem.PAddr(k.Addr), true
	}
	if mach.IsKernelVA(mem.VAddr(k.Addr)) {
		// Kernel lines map directly.
		pa := mem.PAddr(mem.VAddr(k.Addr) - mach.KernelBase)
		if tw.pages[uint32(pa)>>tw.pageBits] == nil {
			return 0, false
		}
		return pa, true
	}
	pa, ok := tw.mapVP[vkey{k.Task, k.Addr >> tw.pageBits}]
	if !ok {
		return 0, false
	}
	return pa + mem.PAddr(k.Addr&(tw.pageSize-1)&^(tw.lineSize-1)), true
}

// InvalidPageTrap is the TLB-mode miss handler: the faulting page is
// really resident; its valid bit was cleared by Tapeworm. Count the miss,
// revalidate the page, insert the translation, and invalidate whatever
// tw_replace displaced.
func (tw *Tapeworm) InvalidPageTrap(t mem.TaskID, va mem.VAddr, pa mem.PAddr, kind mem.RefKind) bool {
	if tw.cfg.Mode != ModeTLB {
		return false
	}
	if _, tracked := tw.mapVP[vkey{t, uint32(va) >> tw.pageBits}]; !tracked {
		return false
	}
	if tw.gang != nil && !tw.tlbInvalid[vkey{t, uint32(va) >> tw.pageBits}] {
		// Another gang member holds this page invalid; not our miss.
		return false
	}
	if tw.tlb.Probe(t, va) {
		// With simulated pages larger than host pages (superpages, R4000
		// variable page size), a sibling base page's miss already brought
		// the covering translation in; revalidate without counting.
		_ = tw.setPV(t, va, true)
		tw.charge(tw.tlbCost / 4)
		return true
	}
	if tw.counting() {
		tw.st.Misses++
		tw.st.MissesByComp[tw.k.ComponentOf(t)]++
		tw.missesByTask[t]++
		if tw.tel != nil {
			tw.tel.Event(telemetry.EvTLBMiss, int32(t), uint32(va), uint32(pa), tw.m.Cycles())
		}
	}

	if err := tw.setPV(t, va, true); err != nil {
		return false
	}
	displaced, evicted := tw.tlb.Insert(t, va)
	if evicted {
		if _, still := tw.mapVP[vkey{displaced.Task, displaced.Addr >> tw.pageBits}]; still {
			if tw.cfg.Sampling.Sampled(tw.tlb.SetIndex(mem.VAddr(displaced.Addr))) {
				_ = tw.setPV(displaced.Task, mem.VAddr(displaced.Addr), false)
			}
		} else {
			tw.st.LostDisplaced++
		}
	}
	tw.charge(tw.tlbCost)
	tw.st.HandlerCycles += tw.tlbCost
	return true
}

// --- results ---

// Stats returns the simulator's counters.
func (tw *Tapeworm) Stats() Stats { return tw.st }

// ReportTelemetry snapshots Tapeworm's self-accounting into the
// attached telemetry run at end of run. A no-op when telemetry is
// disabled.
func (tw *Tapeworm) ReportTelemetry() {
	if tw.tel == nil {
		return
	}
	tw.tel.SetCounter("tw_misses", tw.st.Misses)
	tw.tel.SetCounter("tw_misses_user", tw.st.MissesByComp[kernel.CompUser])
	tw.tel.SetCounter("tw_misses_server", tw.st.MissesByComp[kernel.CompServer])
	tw.tel.SetCounter("tw_misses_kernel", tw.st.MissesByComp[kernel.CompKernel])
	tw.tel.SetCounter("tw_cross_kind_clears", tw.st.CrossKindClears)
	tw.tel.SetCounter("tw_lost_displaced", tw.st.LostDisplaced)
	tw.tel.SetCounter("tw_registrations", tw.st.Registrations)
	tw.tel.SetCounter("tw_removals", tw.st.Removals)
	tw.tel.SetCounter("tw_pages_tracked", uint64(tw.st.PagesTracked))
	tw.tel.SetCounter("tw_handler_cycles", tw.st.HandlerCycles)
	tw.tel.SetCounter("tw_setup_cycles", tw.st.SetupCycles)
	tw.tel.SetCounter("tw_true_errors", tw.st.TrueErrors)
}

// Misses returns the raw counted misses.
func (tw *Tapeworm) Misses() uint64 { return tw.st.Misses }

// EstimatedMisses scales counted misses up by the sampling fraction,
// forming the set-sampling estimator for total misses [Puzak85,
// Kessler91].
func (tw *Tapeworm) EstimatedMisses() float64 {
	return float64(tw.st.Misses) / tw.cfg.Sampling.Fraction()
}

// MissesByComponent splits counted misses across user tasks, servers, and
// the kernel (Table 6's columns).
func (tw *Tapeworm) MissesByComponent() [kernel.NumComponents]uint64 {
	return tw.st.MissesByComp
}

// MissesByTask returns the per-task miss counts.
func (tw *Tapeworm) MissesByTask() map[mem.TaskID]uint64 {
	out := make(map[mem.TaskID]uint64, len(tw.missesByTask))
	//twvet:allow maporder — copying into a fresh map is order-insensitive
	for k, v := range tw.missesByTask {
		out[k] = v
	}
	return out
}

// SimCacheLen returns the number of lines (or translations) currently in
// the simulated structure.
func (tw *Tapeworm) SimCacheLen() int {
	if tw.cfg.Mode == ModeTLB {
		return tw.tlb.Len()
	}
	if tw.sim2 != nil {
		return tw.sim2.L2.Len()
	}
	return tw.sim.Len()
}

// CheckInvariant verifies the trap/cache consistency invariant: no line
// resident in the simulated cache may have a trap set on its memory, and
// (for cache modes) every tracked, sampled line is either resident or
// trapped. The second half admits the documented leaks — wrong-kind
// clears, no-allocate write-arounds, and interrupt-masked drops do remove
// traps without filling the cache — so callers pass the number of such
// events they tolerate.
func (tw *Tapeworm) CheckInvariant(toleratedLeaks uint64) error {
	if tw.cfg.Mode == ModeTLB {
		return tw.checkTLBInvariant()
	}
	phys := tw.m.Phys()
	for _, k := range tw.simKeys() {
		pa, ok := tw.resolveLinePA(k)
		if !ok {
			continue // page removed; lines flushed lazily is a violation
		}
		if tw.trapArmed(pa, int(tw.lineSize)) {
			return fmt.Errorf("core: line %+v resident in simulated cache but trapped at %#x", k, pa)
		}
	}
	var leaks uint64
	// Iterate frames in sorted order so the first invariant violation
	// reported is the same on every run.
	frames := make([]uint32, 0, len(tw.pages))
	for frame := range tw.pages {
		frames = append(frames, frame)
	}
	slices.Sort(frames)
	for _, frame := range frames {
		ps := tw.pages[frame]
		pa := mem.PAddr(frame) << tw.pageBits
		var va mem.VAddr
		if len(ps.mappings) > 0 {
			va = mem.VAddr(ps.mappings[0].vpn) << tw.pageBits
		}
		_, idxAddr := tw.simKey(0, va, pa)
		for off := uint32(0); off < tw.pageSize; off += tw.lineSize {
			if !tw.cfg.Sampling.Sampled(tw.simSetIndex(idxAddr + off)) {
				continue
			}
			trapped := phys.Trapped(pa+mem.PAddr(off), int(tw.lineSize))
			if tw.gang != nil {
				// A member's view is its own intent set, not the union.
				trapped = tw.intentOverlaps(pa+mem.PAddr(off), int(tw.lineSize))
			}
			resident := tw.residentAnywhere(ps, pa+mem.PAddr(off), off)
			if !trapped && !resident {
				leaks++
			}
		}
	}
	if leaks > toleratedLeaks {
		return fmt.Errorf("core: %d sampled lines neither trapped nor resident (tolerated %d)",
			leaks, toleratedLeaks)
	}
	return nil
}

// residentAnywhere reports whether any mapping of the given physical line
// is resident in the simulated cache.
func (tw *Tapeworm) residentAnywhere(ps *pageState, pa mem.PAddr, pageOff uint32) bool {
	if tw.cfg.Cache.Indexing == cache.PhysIndexed {
		return tw.simProbe(0, uint32(pa))
	}
	for _, mk := range ps.mappings {
		va := mem.VAddr(mk.vpn)<<tw.pageBits + mem.VAddr(pageOff)
		if tw.simProbe(mk.t, uint32(va)) {
			return true
		}
	}
	return false
}

// checkTLBInvariant verifies that simulated-TLB residency matches page
// valid bits for every tracked mapping.
func (tw *Tapeworm) checkTLBInvariant() error {
	// Sorted iteration: the first violation reported must not depend on
	// map order.
	keys := make([]vkey, 0, len(tw.mapVP))
	for key := range tw.mapVP {
		keys = append(keys, key)
	}
	slices.SortFunc(keys, vkeyCompare)
	for _, key := range keys {
		if key.t == mem.KernelTask {
			continue
		}
		va := mem.VAddr(key.vpn) << tw.pageBits
		if !tw.cfg.Sampling.Sampled(tw.tlb.SetIndex(va)) {
			continue
		}
		inTLB := tw.tlb.Probe(key.t, va)
		_, resident := tw.k.ResidentPA(key.t, va)
		if !resident {
			return fmt.Errorf("core: tracked page (%d, %#x) not resident", key.t, va)
		}
		_, valid := tw.k.Task(key.t).Space().Translate(va)
		if tw.gang != nil {
			// The pte holds the union validity; this member's view is
			// whether it holds an invalid-intent itself.
			valid = !tw.tlbInvalid[key]
		}
		if inTLB && !valid {
			return fmt.Errorf("core: (%d, %#x) in simulated TLB but page invalid", key.t, va)
		}
		if !inTLB && valid {
			return fmt.Errorf("core: (%d, %#x) not in simulated TLB but page valid", key.t, va)
		}
	}
	return nil
}
