package monster

import (
	"math"
	"testing"
)

func TestSub(t *testing.T) {
	a := Snapshot{Cycles: 100, OverheadCycles: 20, Instructions: 50, ClockTicks: 2}
	b := Snapshot{Cycles: 350, OverheadCycles: 90, Instructions: 170, ClockTicks: 5}
	d := b.Sub(a)
	if d.Cycles != 250 || d.OverheadCycles != 70 || d.Instructions != 120 || d.ClockTicks != 3 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestCPI(t *testing.T) {
	s := Snapshot{Cycles: 300, Instructions: 200}
	if got := s.CPI(); got != 1.5 {
		t.Fatalf("CPI = %v", got)
	}
	if (Snapshot{}).CPI() != 0 {
		t.Fatal("zero-instruction CPI should be 0")
	}
}

func TestSlowdownDefinition(t *testing.T) {
	// Slowdown = Overhead / Normal Run Time: a run taking 3x as long as
	// the normal run has slowdown 2.0, not 3.0.
	normal := Snapshot{Cycles: 1000}
	instrumented := Snapshot{Cycles: 3000}
	if got := Slowdown(instrumented, normal); got != 2.0 {
		t.Fatalf("Slowdown = %v, want 2", got)
	}
	// No overhead: zero slowdown.
	if got := Slowdown(normal, normal); got != 0 {
		t.Fatalf("identical runs slowdown = %v", got)
	}
	// A (noise-)faster instrumented run clamps at zero rather than going
	// negative — slowdowns "approach zero as miss ratios decrease".
	if got := Slowdown(Snapshot{Cycles: 900}, normal); got != 0 {
		t.Fatalf("faster run slowdown = %v", got)
	}
	// Degenerate denominator.
	if got := Slowdown(instrumented, Snapshot{}); got != 0 {
		t.Fatalf("zero-normal slowdown = %v", got)
	}
}

func TestMissRatioAndMPI(t *testing.T) {
	if got := MissRatio(25, 1000); got != 0.025 {
		t.Fatalf("MissRatio = %v", got)
	}
	if got := MissRatio(25, 0); got != 0 {
		t.Fatalf("zero-instruction MissRatio = %v", got)
	}
	if got := MPI(25, 1000); math.Abs(got-25) > 1e-12 {
		t.Fatalf("MPI = %v, want 25 per 1000", got)
	}
}
