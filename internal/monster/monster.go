// Package monster models the Monster hardware monitoring system [Nagle92]:
// a DAS 9200 logic analyzer attached to the CPU pins that unobtrusively
// counts instructions and stall cycles. In this reproduction the analyzer
// probes the simulated machine's counters, which is exact and — like the
// real analyzer — perturbs nothing.
//
// Monster supplies the quantities Tapeworm cannot obtain by itself on an
// R3000 (no on-chip instruction counter, Table 12): total instructions for
// miss-ratio denominators and total run time for slowdown denominators.
package monster

import "tapeworm/internal/mach"

// Snapshot captures the machine's counters at one instant.
type Snapshot struct {
	Cycles         uint64
	OverheadCycles uint64
	Instructions   uint64
	ClockTicks     uint64
}

// Snap probes the machine.
func Snap(m *mach.Machine) Snapshot {
	return Snapshot{
		Cycles:         m.Cycles(),
		OverheadCycles: m.OverheadCycles(),
		Instructions:   m.Instructions(),
		ClockTicks:     m.Counters().ClockTicks,
	}
}

// Sub returns the counter deltas s - earlier.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		Cycles:         s.Cycles - earlier.Cycles,
		OverheadCycles: s.OverheadCycles - earlier.OverheadCycles,
		Instructions:   s.Instructions - earlier.Instructions,
		ClockTicks:     s.ClockTicks - earlier.ClockTicks,
	}
}

// CPI returns cycles per instruction.
func (s Snapshot) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Slowdown computes the paper's metric:
//
//	Slowdown = Overhead / Normal Workload Run Time
//
// where Overhead is the time the instrumented run added over an
// unmodified run of the same workload, and both runs are measured in
// wall-clock terms (machine cycles here). instrumented and normal are
// whole-run snapshots of the two runs.
func Slowdown(instrumented, normal Snapshot) float64 {
	if normal.Cycles == 0 {
		return 0
	}
	if instrumented.Cycles < normal.Cycles {
		return 0
	}
	return float64(instrumented.Cycles-normal.Cycles) / float64(normal.Cycles)
}

// MissRatio returns misses relative to an instruction count. The paper's
// Table 6 expresses every component's miss ratio against the *total*
// instructions of the workload, so the components sum to the All-Activity
// ratio; pass the appropriate denominator.
func MissRatio(misses uint64, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) / float64(instructions)
}

// MPI returns misses per instruction scaled to misses-per-1000 for
// readability in reports.
func MPI(misses, instructions uint64) float64 {
	return 1000 * MissRatio(misses, instructions)
}
