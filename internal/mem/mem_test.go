package mem

import (
	"testing"
	"testing/quick"
)

func newPhys() *Phys { return NewPhys(64, 4096) } // 256 KB

func TestNewPhysValidation(t *testing.T) {
	for _, bad := range []struct{ frames, page int }{
		{0, 4096}, {-1, 4096}, {4, 0}, {4, 3000}, {4, 6}, // 6 not mult of word? 6 not pow2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPhys(%d,%d) did not panic", bad.frames, bad.page)
				}
			}()
			NewPhys(bad.frames, bad.page)
		}()
	}
	p := newPhys()
	if p.Bytes() != 64*4096 || p.Frames() != 64 || p.PageSize() != 4096 {
		t.Errorf("geometry wrong: %d/%d/%d", p.Bytes(), p.Frames(), p.PageSize())
	}
}

func TestSetClearTrapRoundTrip(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x1000, 16)
	if !p.Trapped(0x1000, 16) {
		t.Fatal("trap not visible after SetTrap")
	}
	if p.Classify(0x1000) != SynTapeworm {
		t.Fatalf("syndrome = %v, want tapeworm trap", p.Classify(0x1000))
	}
	// Each of the 4 words is individually trapped.
	for off := PAddr(0); off < 16; off += WordBytes {
		if !p.TrappedWord(0x1000 + off) {
			t.Fatalf("word at +%d not trapped", off)
		}
	}
	// Adjacent words untouched.
	if p.TrappedWord(0x0ffc) || p.TrappedWord(0x1010) {
		t.Fatal("trap leaked to adjacent words")
	}
	c.ClearTrap(0x1000, 16)
	if p.Trapped(0x1000, 16) {
		t.Fatal("trap survived ClearTrap")
	}
	if p.Classify(0x1000) != SynOK {
		t.Fatal("ECC state not restored")
	}
	if p.TrapCount() != 0 {
		t.Fatalf("TrapCount = %d after full clear", p.TrapCount())
	}
}

func TestSetTrapIdempotent(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x2000, 4)
	c.SetTrap(0x2000, 4) // double set must not flip the bit back
	if !p.TrappedWord(0x2000) {
		t.Fatal("double SetTrap cleared the trap")
	}
	c.ClearTrap(0x2000, 4)
	c.ClearTrap(0x2000, 4) // double clear must be harmless
	if p.TrappedWord(0x2000) {
		t.Fatal("trap present after clear")
	}
}

func TestFlipTapewormBitToggles(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.FlipTapewormBit(0x3000, 4)
	if p.Classify(0x3000) != SynTapeworm {
		t.Fatal("flip did not set trap")
	}
	c.FlipTapewormBit(0x3000, 4)
	if p.Classify(0x3000) != SynOK {
		t.Fatal("second flip did not restore ECC")
	}
}

func TestTrueErrorClassification(t *testing.T) {
	p := newPhys()
	c := NewController(p)

	// Single-bit error in a non-Tapeworm position: true error.
	p.InjectError(0x4000, 5)
	if got := p.Classify(0x4000); got != SynSingleBit {
		t.Fatalf("syndrome = %v, want single-bit", got)
	}
	if !p.TrappedWord(0x4000) {
		t.Fatal("true errors must raise traps too")
	}

	// A true error on a word already carrying a Tapeworm trap: double bit.
	c.SetTrap(0x5000, 4)
	p.InjectError(0x5000, 12)
	if got := p.Classify(0x5000); got != SynDoubleBit {
		t.Fatalf("syndrome = %v, want double-bit", got)
	}

	// Clearing the Tapeworm trap must preserve the true-error bit.
	c.ClearTrap(0x5000, 4)
	if got := p.Classify(0x5000); got != SynSingleBit {
		t.Fatalf("after clear, syndrome = %v, want single-bit preserved", got)
	}
}

func TestInjectErrorBounds(t *testing.T) {
	p := newPhys()
	defer func() {
		if recover() == nil {
			t.Fatal("bit 39 should panic")
		}
	}()
	p.InjectError(0, 39)
}

func TestReconstructErrorAddress(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x6004, 4)
	if got := c.ReconstructErrorAddress(0x6007); got != 0x6004 {
		t.Fatalf("reconstructed %#x, want word-aligned 0x6004", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reconstruct without latched error should panic")
		}
	}()
	c.ReconstructErrorAddress(0x7000)
}

func TestOutOfRangePanics(t *testing.T) {
	p := newPhys()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access should panic")
		}
	}()
	p.TrappedWord(PAddr(p.Bytes()))
}

func TestTrappedRangeSpansWords(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x1010, 4) // single word in the middle of a line
	if !p.Trapped(0x1000, 64) {
		t.Fatal("range query missed interior trap")
	}
	if p.Trapped(0x1014, 12) {
		t.Fatal("range query false positive")
	}
}

func TestStatsCount(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x0, 16)   // 4 words
	c.SetTrap(0x0, 16)   // idempotent: no new sets
	c.ClearTrap(0x0, 8)  // 2 words
	c.ClearTrap(0x0, 16) // 2 more (2 already clear)
	set, cleared := p.Stats()
	if set != 4 || cleared != 4 {
		t.Fatalf("stats = %d set, %d cleared; want 4, 4", set, cleared)
	}
}

// TestTrapBitsetMatchesECCState is the core invariant: the dense bitset the
// machine consults on every reference must agree with the sparse ECC state
// after any sequence of operations.
func TestTrapBitsetMatchesECCState(t *testing.T) {
	type op struct {
		Kind byte
		Word uint16
		Bit  uint8
	}
	f := func(ops []op) bool {
		p := NewPhys(16, 4096) // 64 KB = 16K words
		c := NewController(p)
		words := uint32(p.Bytes() / WordBytes)
		for _, o := range ops {
			pa := PAddr(uint32(o.Word) % words * WordBytes)
			switch o.Kind % 4 {
			case 0:
				c.SetTrap(pa, WordBytes)
			case 1:
				c.ClearTrap(pa, WordBytes)
			case 2:
				c.FlipTapewormBit(pa, WordBytes)
			case 3:
				p.InjectError(pa, uint(o.Bit%39))
			}
		}
		for w := uint32(0); w < words; w++ {
			pa := PAddr(w * WordBytes)
			hasState := p.ECCState(pa) != 0
			if p.TrappedWord(pa) != hasState {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRefKindString(t *testing.T) {
	if IFetch.String() != "ifetch" || Load.String() != "load" || Store.String() != "store" {
		t.Error("RefKind labels wrong")
	}
}

func BenchmarkTrappedWord(b *testing.B) {
	p := NewPhys(1024, 4096)
	c := NewController(p)
	c.SetTrap(0x1000, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.TrappedWord(PAddr(uint32(i*4) % uint32(p.Bytes())))
	}
}
