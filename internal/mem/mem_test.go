package mem

import (
	"testing"
	"testing/quick"
)

func newPhys() *Phys { return NewPhys(64, 4096) } // 256 KB

func TestNewPhysValidation(t *testing.T) {
	for _, bad := range []struct{ frames, page int }{
		{0, 4096}, {-1, 4096}, {4, 0}, {4, 3000}, {4, 6}, // 6 not mult of word? 6 not pow2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPhys(%d,%d) did not panic", bad.frames, bad.page)
				}
			}()
			NewPhys(bad.frames, bad.page)
		}()
	}
	p := newPhys()
	if p.Bytes() != 64*4096 || p.Frames() != 64 || p.PageSize() != 4096 {
		t.Errorf("geometry wrong: %d/%d/%d", p.Bytes(), p.Frames(), p.PageSize())
	}
}

func TestSetClearTrapRoundTrip(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x1000, 16)
	if !p.Trapped(0x1000, 16) {
		t.Fatal("trap not visible after SetTrap")
	}
	if p.Classify(0x1000) != SynTapeworm {
		t.Fatalf("syndrome = %v, want tapeworm trap", p.Classify(0x1000))
	}
	// Each of the 4 words is individually trapped.
	for off := PAddr(0); off < 16; off += WordBytes {
		if !p.TrappedWord(0x1000 + off) {
			t.Fatalf("word at +%d not trapped", off)
		}
	}
	// Adjacent words untouched.
	if p.TrappedWord(0x0ffc) || p.TrappedWord(0x1010) {
		t.Fatal("trap leaked to adjacent words")
	}
	c.ClearTrap(0x1000, 16)
	if p.Trapped(0x1000, 16) {
		t.Fatal("trap survived ClearTrap")
	}
	if p.Classify(0x1000) != SynOK {
		t.Fatal("ECC state not restored")
	}
	if p.TrapCount() != 0 {
		t.Fatalf("TrapCount = %d after full clear", p.TrapCount())
	}
}

func TestSetTrapIdempotent(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x2000, 4)
	c.SetTrap(0x2000, 4) // double set must not flip the bit back
	if !p.TrappedWord(0x2000) {
		t.Fatal("double SetTrap cleared the trap")
	}
	c.ClearTrap(0x2000, 4)
	c.ClearTrap(0x2000, 4) // double clear must be harmless
	if p.TrappedWord(0x2000) {
		t.Fatal("trap present after clear")
	}
}

func TestFlipTapewormBitToggles(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.FlipTapewormBit(0x3000, 4)
	if p.Classify(0x3000) != SynTapeworm {
		t.Fatal("flip did not set trap")
	}
	c.FlipTapewormBit(0x3000, 4)
	if p.Classify(0x3000) != SynOK {
		t.Fatal("second flip did not restore ECC")
	}
}

func TestTrueErrorClassification(t *testing.T) {
	p := newPhys()
	c := NewController(p)

	// Single-bit error in a non-Tapeworm position: true error.
	p.InjectError(0x4000, 5)
	if got := p.Classify(0x4000); got != SynSingleBit {
		t.Fatalf("syndrome = %v, want single-bit", got)
	}
	if !p.TrappedWord(0x4000) {
		t.Fatal("true errors must raise traps too")
	}

	// A true error on a word already carrying a Tapeworm trap: double bit.
	c.SetTrap(0x5000, 4)
	p.InjectError(0x5000, 12)
	if got := p.Classify(0x5000); got != SynDoubleBit {
		t.Fatalf("syndrome = %v, want double-bit", got)
	}

	// Clearing the Tapeworm trap must preserve the true-error bit.
	c.ClearTrap(0x5000, 4)
	if got := p.Classify(0x5000); got != SynSingleBit {
		t.Fatalf("after clear, syndrome = %v, want single-bit preserved", got)
	}
}

func TestInjectErrorBounds(t *testing.T) {
	p := newPhys()
	defer func() {
		if recover() == nil {
			t.Fatal("bit 39 should panic")
		}
	}()
	p.InjectError(0, 39)
}

func TestReconstructErrorAddress(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x6004, 4)
	if got := c.ReconstructErrorAddress(0x6007); got != 0x6004 {
		t.Fatalf("reconstructed %#x, want word-aligned 0x6004", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reconstruct without latched error should panic")
		}
	}()
	c.ReconstructErrorAddress(0x7000)
}

func TestOutOfRangePanics(t *testing.T) {
	p := newPhys()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access should panic")
		}
	}()
	p.TrappedWord(PAddr(p.Bytes()))
}

func TestTrappedRangeSpansWords(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x1010, 4) // single word in the middle of a line
	if !p.Trapped(0x1000, 64) {
		t.Fatal("range query missed interior trap")
	}
	if p.Trapped(0x1014, 12) {
		t.Fatal("range query false positive")
	}
}

func TestStatsCount(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x0, 16)   // 4 words
	c.SetTrap(0x0, 16)   // idempotent: no new sets
	c.ClearTrap(0x0, 8)  // 2 words
	c.ClearTrap(0x0, 16) // 2 more (2 already clear)
	set, cleared := p.Stats()
	if set != 4 || cleared != 4 {
		t.Fatalf("stats = %d set, %d cleared; want 4, 4", set, cleared)
	}
}

// TestTrapBitsetMatchesECCState is the core invariant: the dense bitset the
// machine consults on every reference must agree with the sparse ECC state
// after any sequence of operations.
func TestTrapBitsetMatchesECCState(t *testing.T) {
	type op struct {
		Kind byte
		Word uint16
		Bit  uint8
	}
	f := func(ops []op) bool {
		p := NewPhys(16, 4096) // 64 KB = 16K words
		c := NewController(p)
		words := uint32(p.Bytes() / WordBytes)
		for _, o := range ops {
			pa := PAddr(uint32(o.Word) % words * WordBytes)
			switch o.Kind % 4 {
			case 0:
				c.SetTrap(pa, WordBytes)
			case 1:
				c.ClearTrap(pa, WordBytes)
			case 2:
				c.FlipTapewormBit(pa, WordBytes)
			case 3:
				p.InjectError(pa, uint(o.Bit%39))
			}
		}
		for w := uint32(0); w < words; w++ {
			pa := PAddr(w * WordBytes)
			hasState := p.ECCState(pa) != 0
			if p.TrappedWord(pa) != hasState {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// trappedRef is the straightforward word-by-word reference implementation
// that Trapped's fast paths must agree with.
func trappedRef(p *Phys, pa PAddr, size int) bool {
	if size <= 0 {
		size = WordBytes
	}
	for off := PAddr(pa &^ (WordBytes - 1)); off <= pa+PAddr(size)-1; off += WordBytes {
		if p.TrappedWord(off) {
			return true
		}
	}
	return false
}

// TestTrappedWordStraddling covers the fast-path boundaries: byte ranges
// that straddle a machine word, ranges filling exactly one 64-word bitset
// chunk, and ranges crossing a chunk boundary.
func TestTrappedWordStraddling(t *testing.T) {
	p := newPhys()
	c := NewController(p)
	c.SetTrap(0x1004, 4) // exactly one word trapped

	cases := []struct {
		pa   PAddr
		size int
		want bool
	}{
		{0x1004, 4, true},   // aligned single word, trapped
		{0x1000, 4, false},  // aligned single word, clean
		{0x1006, 2, true},   // unaligned, inside the trapped word
		{0x1002, 2, false},  // unaligned, inside the clean word before it
		{0x1002, 4, true},   // straddles the 0x1000/0x1004 word boundary
		{0x1006, 4, true},   // straddles out of the trapped word
		{0x1008, 4, false},  // the word after the trap
		{0x1007, 1, true},   // last byte of the trapped word
		{0x1008, 1, false},  // first byte after it
		{0x1000, 16, true},  // one host line containing the trap
		{0x1010, 16, false}, // the next host line
		{0x1000, 256, true}, // exactly one 64-word bitset chunk
		{0x1100, 256, false},
	}
	for _, tc := range cases {
		if got := p.Trapped(tc.pa, tc.size); got != tc.want {
			t.Errorf("Trapped(%#x, %d) = %v, want %v", tc.pa, tc.size, got, tc.want)
		}
		if got := trappedRef(p, tc.pa, tc.size); got != tc.want {
			t.Errorf("reference disagrees for (%#x, %d): %v", tc.pa, tc.size, got)
		}
	}
}

// TestTrappedPageBoundary covers ranges spanning a page boundary — the
// shape page registration and DMA transfers probe — including the
// multi-chunk scan path.
func TestTrappedPageBoundary(t *testing.T) {
	p := newPhys() // 4 KB pages
	c := NewController(p)
	pageEnd := PAddr(2 * 4096)
	c.SetTrap(pageEnd-4, 4) // last word of page 1
	c.SetTrap(pageEnd, 4)   // first word of page 2

	if !p.Trapped(pageEnd-8, 16) {
		t.Error("range across page boundary missed traps on both sides")
	}
	if !p.Trapped(pageEnd-4096, 4096) {
		t.Error("full-page range missed its final word")
	}
	if !p.Trapped(pageEnd, 4096) {
		t.Error("full-page range missed its first word")
	}
	c.ClearTrap(pageEnd-4, 4)
	c.ClearTrap(pageEnd, 4)
	if p.Trapped(pageEnd-4096, 2*4096) {
		t.Error("two-page range false positive after clearing")
	}
	// A lone trap deep inside a multi-chunk range (middle-chunk scan).
	c.SetTrap(pageEnd+2048, 4)
	if !p.Trapped(pageEnd-4096, 3*4096) {
		t.Error("multi-chunk range missed an interior trap")
	}
}

// TestTrappedMatchesReference pits the fast paths against the reference
// implementation over randomized trap patterns and query shapes.
func TestTrappedMatchesReference(t *testing.T) {
	type query struct {
		Word uint16
		Off  uint8
		Size uint16
	}
	f := func(traps []uint16, queries []query) bool {
		p := NewPhys(16, 4096)
		c := NewController(p)
		words := uint32(p.Bytes() / WordBytes)
		for _, w := range traps {
			c.SetTrap(PAddr(uint32(w)%words*WordBytes), WordBytes)
		}
		for _, q := range queries {
			pa := PAddr(uint32(q.Word) % words * WordBytes)
			pa += PAddr(q.Off % WordBytes)
			size := int(q.Size%512) + 1
			if int(pa)+size > p.Bytes() {
				size = p.Bytes() - int(pa)
			}
			if size <= 0 {
				continue
			}
			if p.Trapped(pa, size) != trappedRef(p, pa, size) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRefKindString(t *testing.T) {
	if IFetch.String() != "ifetch" || Load.String() != "load" || Store.String() != "store" {
		t.Error("RefKind labels wrong")
	}
}

func BenchmarkTrappedWord(b *testing.B) {
	p := NewPhys(1024, 4096)
	c := NewController(p)
	c.SetTrap(0x1000, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.TrappedWord(PAddr(uint32(i*4) % uint32(p.Bytes())))
	}
}
