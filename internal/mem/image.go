package mem

// Checkpoint images. A boot (or phase-mark) checkpoint freezes the dense
// per-word state of a Phys — trap bitsets, occupancy summaries, sparse
// true-error map — into an immutable Image. Forked machines share the
// image's arrays copy-on-write: NewPhysFromImage aliases them directly, so
// the branch-free hot-path reads (Trapped, TrappedWord) are untouched, and
// the first mutation materializes private pooled copies of exactly the
// chunks the image marks dirty. Trap reference counts are never part of an
// image; gang forks rebuild them through EnableTrapRefs as usual.
//
// Images are long-lived (the experiment layer caches one per boot
// identity and forks it for every trial), so their arrays are plain
// allocations, never pooled — a fork that releases without writing hands
// nothing back to the pools.

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Image is an immutable snapshot of a Phys's dense state. Any number of
// forks (and the capture source itself) may outlive or predecease it;
// the image is never written after CaptureImage returns.
type Image struct {
	frames   int
	pageSize int

	trapBits []uint64
	twBits   []uint64
	chunkPop []uint8
	superPop []uint8
	ecc      map[uint32]uint64

	trapsSet     uint64
	trapsCleared uint64
}

// Frames returns the frame count the image was captured at.
func (img *Image) Frames() int { return img.frames }

// PageSize returns the page size the image was captured at.
func (img *Image) PageSize() int { return img.pageSize }

// TrapCount returns the number of trapped words recorded in the image.
func (img *Image) TrapCount() int {
	n := 0
	for _, c := range img.chunkPop {
		n += int(c)
	}
	return n
}

// CaptureImage snapshots p's dense state into a fresh Image. The copy is
// deep: the image shares nothing with p, so p may keep running (or be
// released) while the image serves forks.
func CaptureImage(p *Phys) *Image {
	img := &Image{
		frames:       p.frames,
		pageSize:     p.pageSize,
		trapBits:     append([]uint64(nil), p.trapBits...),
		twBits:       append([]uint64(nil), p.twBits...),
		chunkPop:     append([]uint8(nil), p.chunkPop...),
		superPop:     append([]uint8(nil), p.superPop...),
		ecc:          make(map[uint32]uint64, len(p.ecc)),
		trapsSet:     p.trapsSet,
		trapsCleared: p.trapsCleared,
	}
	for w, m := range p.ecc {
		img.ecc[w] = m
	}
	return img
}

// NewPhysFromImage forks a physical memory from an image. The returned
// Phys aliases the image's arrays until its first mutation (set/clear/flip
// trap, error injection or correction), which copies the image's dirty
// chunks into private pooled buffers. Reads are exactly as fast as on a
// freshly booted Phys. Ownership of any materialized pooled arrays follows
// the usual rules; Release hands them back.
func NewPhysFromImage(img *Image) *Phys {
	return &Phys{
		pageSize:     img.pageSize,
		frames:       img.frames,
		bytes:        img.frames * img.pageSize,
		trapBits:     img.trapBits,
		twBits:       img.twBits,
		chunkPop:     img.chunkPop,
		superPop:     img.superPop,
		ecc:          img.ecc,
		img:          img,
		trapsSet:     img.trapsSet,
		trapsCleared: img.trapsCleared,
	}
}

// Shared reports whether p still aliases a checkpoint image (no mutation
// has materialized private copies yet). For tests and assertions.
func (p *Phys) Shared() bool { return p.img != nil }

// ensureOwned materializes private pooled copies of the dense arrays on
// the first mutation of an image-backed Phys. Every mutating entry point
// calls this before touching trapBits/twBits/ecc, which puts it on the
// trap-set/clear hot path of every forked run: the guard must stay small
// enough to inline (a function containing the copy loops is not
// inlinable, which used to cost forked sweeps ~3% in call overhead —
// the BENCH sweep_speedup < 1.0 regression). The cold copy lives in
// materializeImage.
func (p *Phys) ensureOwned() {
	if p.img == nil {
		return
	}
	p.materializeImage()
}

// materializeImage copies the dense arrays out of the backing image into
// private pooled buffers. Only chunks the image's occupancy summary marks
// dirty are copied — a clean boot image costs one pooled acquire and
// nothing else.
//
//twvet:transfer
func (p *Phys) materializeImage() {
	img := p.img
	p.img = nil
	words := p.bytes / WordBytes
	b, reused := getPhysBuffers((words + chunkWords - 1) / chunkWords)
	p.poolGets++
	if reused {
		p.poolReuses++
	}
	for s, sp := range img.superPop {
		if sp == 0 {
			continue
		}
		b.superPop[s] = sp
		base := s * superSize
		end := base + superSize
		if end > len(img.chunkPop) {
			end = len(img.chunkPop)
		}
		for c := base; c < end; c++ {
			if img.chunkPop[c] == 0 {
				continue
			}
			b.trapBits[c] = img.trapBits[c]
			b.twBits[c] = img.twBits[c]
			b.chunkPop[c] = img.chunkPop[c]
		}
	}
	for w, m := range img.ecc {
		b.ecc[w] = m
	}
	p.trapBits, p.twBits, p.chunkPop, p.superPop, p.ecc =
		b.trapBits, b.twBits, b.chunkPop, b.superPop, b.ecc
}

// imageWire is the gob representation of an Image. gob needs exported
// fields; the Image itself keeps its fields private so nothing outside
// this package can mutate a shared snapshot.
type imageWire struct {
	Frames       int
	PageSize     int
	TrapBits     []uint64
	TwBits       []uint64
	ChunkPop     []uint8
	SuperPop     []uint8
	ECC          map[uint32]uint64
	TrapsSet     uint64
	TrapsCleared uint64
}

// GobEncode implements gob.GobEncoder so checkpoints holding an Image can
// be persisted with -checkpoint-dir.
func (img *Image) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(imageWire{
		Frames:   img.frames,
		PageSize: img.pageSize,
		TrapBits: img.trapBits,
		TwBits:   img.twBits,
		ChunkPop: img.chunkPop,
		SuperPop: img.superPop,
		ECC:      img.ecc,
		TrapsSet: img.trapsSet, TrapsCleared: img.trapsCleared,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (img *Image) GobDecode(data []byte) error {
	var w imageWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if err := CheckPhysSize(w.Frames, w.PageSize); err != nil {
		return fmt.Errorf("mem: decoding image: %w", err)
	}
	words := w.Frames * w.PageSize / WordBytes
	chunks := (words + chunkWords - 1) / chunkWords
	supers := (chunks + superSize - 1) / superSize
	if len(w.TrapBits) != chunks || len(w.TwBits) != chunks ||
		len(w.ChunkPop) != chunks || len(w.SuperPop) != supers {
		return fmt.Errorf("mem: decoding image: array lengths inconsistent with %d frames of %d bytes", w.Frames, w.PageSize)
	}
	img.frames, img.pageSize = w.Frames, w.PageSize
	img.trapBits, img.twBits = w.TrapBits, w.TwBits
	img.chunkPop, img.superPop = w.ChunkPop, w.SuperPop
	img.ecc = w.ECC
	if img.ecc == nil {
		img.ecc = map[uint32]uint64{}
	}
	img.trapsSet, img.trapsCleared = w.TrapsSet, w.TrapsCleared
	return nil
}
