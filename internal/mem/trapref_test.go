package mem

import "testing"

func newRefPhys(t *testing.T) (*Phys, *Controller) {
	t.Helper()
	p := NewPhys(64, 4096)
	p.EnableTrapRefs()
	return p, NewController(p)
}

func TestTrapRefOverlappingSetClear(t *testing.T) {
	p, c := newRefPhys(t)
	pa := PAddr(0x1000)

	if !c.AddTrapRef(pa) {
		t.Fatal("first AddTrapRef refused")
	}
	set0, _ := p.Stats()
	if set0 != 1 || !p.TrappedWord(pa) {
		t.Fatalf("first arm: set=%d trapped=%v", set0, p.TrappedWord(pa))
	}
	if !c.AddTrapRef(pa) {
		t.Fatal("second AddTrapRef refused")
	}
	if set1, _ := p.Stats(); set1 != 1 {
		t.Fatalf("second arm flipped the bit again: set=%d", set1)
	}
	if got := p.TrapRefCount(pa); got != 2 {
		t.Fatalf("refcount %d, want 2", got)
	}

	// Clear while the other holds: trap survives the first release.
	c.ReleaseTrapRef(pa)
	if !p.TrappedWord(pa) {
		t.Fatal("trap destroyed while a reference remains")
	}
	if _, cleared := p.Stats(); cleared != 0 {
		t.Fatal("first release flipped the physical bit")
	}
	c.ReleaseTrapRef(pa)
	if p.TrappedWord(pa) || p.TrapRefCount(pa) != 0 {
		t.Fatal("trap survived the last release")
	}
	if _, cleared := p.Stats(); cleared != 1 {
		t.Fatal("last release did not flip the physical bit once")
	}

	// Releasing an unheld word is a no-op, not an underflow.
	c.ReleaseTrapRef(pa)
	if p.TrapRefCount(pa) != 0 {
		t.Fatal("release below zero")
	}
}

func TestTrapRefRefusesTrueError(t *testing.T) {
	p, c := newRefPhys(t)
	pa := PAddr(0x2000)
	p.InjectError(pa, 3) // a real single-bit error, not the Tapeworm bit
	if c.AddTrapRef(pa) {
		t.Fatal("AddTrapRef armed a word carrying a true error")
	}
	if p.TrapRefCount(pa) != 0 {
		t.Fatal("refused arm still recorded a reference")
	}
}

func TestTrapRefAdoptsOrphan(t *testing.T) {
	p, c := newRefPhys(t)
	pa := PAddr(0x3000)
	c.SetTrap(pa, WordBytes) // unrefcounted arm (legacy path)
	set0, _ := p.Stats()
	if !c.AddTrapRef(pa) {
		t.Fatal("AddTrapRef refused an orphaned Tapeworm trap")
	}
	if set1, _ := p.Stats(); set1 != set0 {
		t.Fatal("adopting an orphan flipped the bit again")
	}
	if p.TrapRefCount(pa) != 1 {
		t.Fatalf("refcount %d after adoption, want 1", p.TrapRefCount(pa))
	}
}

func TestTrapRefDestructionZeroesCountAndFiresHook(t *testing.T) {
	p, c := newRefPhys(t)
	var destroyed []PAddr
	p.SetTrapDestroyedHook(func(pa PAddr) { destroyed = append(destroyed, pa) })

	pa := PAddr(0x4000)
	c.AddTrapRef(pa)
	c.AddTrapRef(pa)

	// CorrectWord is the scrubbing path: hardware destroys the trap no
	// matter how many simulators hold it.
	p.CorrectWord(pa)
	if p.TrappedWord(pa) {
		t.Fatal("trap survived CorrectWord")
	}
	if p.TrapRefCount(pa) != 0 {
		t.Fatalf("refcount %d after destruction, want 0", p.TrapRefCount(pa))
	}
	if len(destroyed) != 1 || destroyed[0] != pa {
		t.Fatalf("destroyed-hook calls: %v, want [%#x]", destroyed, pa)
	}

	// A silent controller clear (DMA write path) behaves the same way.
	pb := PAddr(0x5000)
	c.AddTrapRef(pb)
	c.ClearTrap(pb, WordBytes)
	if p.TrapRefCount(pb) != 0 {
		t.Fatalf("refcount %d after ClearTrap destruction, want 0", p.TrapRefCount(pb))
	}
	if len(destroyed) != 2 || destroyed[1] != pb {
		t.Fatalf("destroyed-hook calls: %v, want second %#x", destroyed, pb)
	}

	// The freed word can be re-armed cleanly.
	if !c.AddTrapRef(pb) {
		t.Fatal("re-arm after destruction refused")
	}
	if p.TrapRefCount(pb) != 1 || !p.TrappedWord(pb) {
		t.Fatal("re-arm after destruction did not take")
	}
}

func TestTrapRefRequiresEnable(t *testing.T) {
	p := NewPhys(4, 4096)
	c := NewController(p)
	defer func() {
		if recover() == nil {
			t.Fatal("AddTrapRef without EnableTrapRefs did not panic")
		}
	}()
	c.AddTrapRef(0)
}

func TestPhysBufferPoolReuse(t *testing.T) {
	SetPoolEnabled(true)
	p := NewPhys(32, 4096)
	p.EnableTrapRefs()
	c := NewController(p)
	c.AddTrapRef(0x100)
	c.SetTrap(0x200, 16)
	p.Release()

	g0, r0 := PoolStats()
	q := NewPhys(32, 4096)
	q.EnableTrapRefs()
	g1, r1 := PoolStats()
	if g1 <= g0 || r1 <= r0 {
		t.Fatalf("pool not exercised: gets %d->%d reuses %d->%d", g0, g1, r0, r1)
	}
	// Fresh-boot semantics: recycled arrays come back zeroed.
	if q.TrapCount() != 0 {
		t.Fatalf("recycled phys has %d traps armed", q.TrapCount())
	}
	if q.TrapRefCount(0x100) != 0 {
		t.Fatal("recycled trap refcounts not reset")
	}
	if s, cl := q.Stats(); s != 0 || cl != 0 {
		t.Fatalf("recycled phys stats not reset: set=%d cleared=%d", s, cl)
	}
}
