package mem

import (
	"testing"
	"testing/quick"
)

// TestSummariesMatchBitsets drives random trap/refcount operations —
// including multi-word ranges that exercise the bulk chunk paths — and
// checks the two-level occupancy summaries against the backing arrays
// after every batch, plus TrapCount against a brute-force bit count.
func TestSummariesMatchBitsets(t *testing.T) {
	type op struct {
		Kind byte
		Word uint16
		Len  uint8
		Bit  uint8
	}
	f := func(ops []op) bool {
		p := NewPhys(16, 4096) // 64 KB = 16K words
		p.EnableTrapRefs()
		c := NewController(p)
		words := uint32(p.Bytes() / WordBytes)
		for _, o := range ops {
			pa := PAddr(uint32(o.Word) % words * WordBytes)
			size := (int(o.Len)%512 + 1) * WordBytes
			if int(pa)+size > p.Bytes() {
				size = p.Bytes() - int(pa)
			}
			switch o.Kind % 8 {
			case 0:
				c.SetTrap(pa, size)
			case 1:
				c.ClearTrap(pa, size)
			case 2:
				c.FlipTapewormBit(pa, size)
			case 3:
				p.InjectError(pa, uint(o.Bit%39))
			case 4:
				c.AddTrapRef(pa)
			case 5:
				c.ReleaseTrapRef(pa)
			case 6:
				p.CorrectWord(pa)
			case 7:
				c.SetTrap(pa, size)
				c.ClearTrap(pa, size/2+WordBytes)
			}
		}
		if err := p.CheckSummaries(); err != nil {
			t.Log(err)
			return false
		}
		brute := 0
		for w := uint32(0); w < words; w++ {
			if p.TrappedWord(PAddr(w) * WordBytes) {
				brute++
			}
		}
		return p.TrapCount() == brute
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBulkRangeOpsMatchWordOps checks that a multi-chunk range operation
// leaves exactly the same state as the same operation word by word.
func TestBulkRangeOpsMatchWordOps(t *testing.T) {
	build := func(bulk bool) *Phys {
		p := NewPhys(16, 4096)
		c := NewController(p)
		// A true error forces the per-word fallback inside its chunk.
		p.InjectError(0x2010, 7)
		base, size := PAddr(0x1ff0), 0x40c // spans several chunks incl. the error's
		if bulk {
			c.SetTrap(base, size)
			c.FlipTapewormBit(base+0x100, 0x80)
			c.ClearTrap(base+4, size-8)
		} else {
			for off := 0; off < size; off += WordBytes {
				c.SetTrap(base+PAddr(off), WordBytes)
			}
			for off := 0; off < 0x80; off += WordBytes {
				c.FlipTapewormBit(base+0x100+PAddr(off), WordBytes)
			}
			for off := 4; off < size-4; off += WordBytes {
				c.ClearTrap(base+PAddr(off), WordBytes)
			}
		}
		return p
	}
	a, b := build(true), build(false)
	if err := a.CheckSummaries(); err != nil {
		t.Fatal(err)
	}
	for w := uint32(0); w < uint32(a.Bytes()/WordBytes); w++ {
		pa := PAddr(w) * WordBytes
		if a.TrappedWord(pa) != b.TrappedWord(pa) || a.ECCState(pa) != b.ECCState(pa) {
			t.Fatalf("word %#x: bulk (trap %v ecc %#x) != word-by-word (trap %v ecc %#x)",
				pa, a.TrappedWord(pa), a.ECCState(pa), b.TrappedWord(pa), b.ECCState(pa))
		}
	}
	aset, aclr := a.Stats()
	bset, bclr := b.Stats()
	if aset != bset || aclr != bclr {
		t.Fatalf("stats diverge: bulk %d/%d vs word %d/%d", aset, aclr, bset, bclr)
	}
}

// TestSelectiveReuseZeroing recycles heavily-armed buffers and verifies the
// summary-guided zeroing restores exact fresh-boot state.
func TestSelectiveReuseZeroing(t *testing.T) {
	SetPoolEnabled(true)
	p := NewPhys(32, 4096)
	p.EnableTrapRefs()
	c := NewController(p)
	c.SetTrap(0x1000, 8192)
	c.AddTrapRef(0x3000)
	c.AddTrapRef(0x3000)
	c.AddTrapRef(0x1f000)
	p.InjectError(0x9000, 11)
	p.Release()

	q := NewPhys(32, 4096)
	q.EnableTrapRefs()
	if err := q.CheckSummaries(); err != nil {
		t.Fatal(err)
	}
	if q.TrapCount() != 0 {
		t.Fatalf("recycled phys has %d traps armed", q.TrapCount())
	}
	for _, pa := range []PAddr{0x1000, 0x3000, 0x9000, 0x1f000} {
		if q.TrappedWord(pa) || q.ECCState(pa) != 0 || q.TrapRefCount(pa) != 0 {
			t.Fatalf("stale state at %#x after reuse", pa)
		}
	}
}

// TestPrewarmPools checks that pre-warmed buffers are served as reuses by
// the next boots at the same geometry.
func TestPrewarmPools(t *testing.T) {
	SetPoolEnabled(true)
	const frames, page = 48, 4096
	PrewarmPools(2, 2, frames, page)
	g0, r0 := PoolStats()
	for i := 0; i < 2; i++ {
		p := NewPhys(frames, page)
		p.EnableTrapRefs()
		if err := p.CheckSummaries(); err != nil {
			t.Fatal(err)
		}
		if p.TrapCount() != 0 {
			t.Fatal("prewarmed buffers not clean")
		}
		p.Release()
	}
	g1, r1 := PoolStats()
	if g1-g0 < 4 || r1-r0 < 4 {
		t.Fatalf("prewarmed pool not reused: gets +%d reuses +%d", g1-g0, r1-r0)
	}
}
