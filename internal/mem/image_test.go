package mem

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// imageSource builds a Phys with a representative mix of state — Tapeworm
// traps in several chunks, a true error, and a word carrying both — then
// captures it. The source stays alive so tests can compare against it.
func imageSource() (*Phys, *Controller, *Image) {
	p := NewPhys(64, 4096) // 256 KB
	c := NewController(p)
	c.SetTrap(0x1000, 64) // a run of trapped words
	c.SetTrap(0x20004, 4) // lone word in a distant chunk
	c.FlipTapewormBit(0x3000, 16)
	p.InjectError(0x4000, 5) // true single-bit error
	c.SetTrap(0x4100, 4)     // trap in the same chunk as the true error
	return p, c, CaptureImage(p)
}

// dense deep-compares the complete dense state of two Phys (or a Phys and
// what an image would restore) via CaptureImage, which copies exactly the
// checkpointed state.
func dense(p *Phys) *Image { return CaptureImage(p) }

func TestForkSharesUntilFirstWrite(t *testing.T) {
	src, _, img := imageSource()
	f := NewPhysFromImage(img)
	if !f.Shared() {
		t.Fatal("fresh fork does not alias the image")
	}

	// Reads agree with the source and never materialize.
	for _, pa := range []PAddr{0x1000, 0x1020, 0x20004, 0x3000, 0x4000, 0x4100, 0x8000} {
		if got, want := f.TrappedWord(pa), src.TrappedWord(pa); got != want {
			t.Errorf("TrappedWord(%#x) = %v on fork, %v on source", pa, got, want)
		}
		if got, want := f.Classify(pa), src.Classify(pa); got != want {
			t.Errorf("Classify(%#x) = %v on fork, %v on source", pa, got, want)
		}
	}
	if f.TrapCount() != src.TrapCount() {
		t.Errorf("fork TrapCount %d != source %d", f.TrapCount(), src.TrapCount())
	}
	if err := f.CheckSummaries(); err != nil {
		t.Errorf("shared fork summaries: %v", err)
	}
	if !f.Shared() {
		t.Fatal("reads materialized the fork")
	}
	if gets, _ := f.PoolCounts(); gets != 0 {
		t.Fatalf("reads cost %d pool gets", gets)
	}

	// First write materializes; the image (and other forks) are untouched.
	before := dense(f)
	NewController(f).SetTrap(0x8000, 4)
	if f.Shared() {
		t.Fatal("write did not materialize the fork")
	}
	if gets, _ := f.PoolCounts(); gets != 1 {
		t.Fatalf("materialization cost %d pool gets, want 1", gets)
	}
	f2 := NewPhysFromImage(img)
	if !reflect.DeepEqual(dense(f2), before) {
		t.Fatal("mutating one fork leaked into the shared image")
	}
	f.Release()
	f2.Release()
}

// TestForkMutationsMatchFresh drives every mutating entry point against a
// fork and against a never-checkpointed Phys built by the same op
// sequence: copy-on-write must be invisible in the resulting state.
func TestForkMutationsMatchFresh(t *testing.T) {
	setup := func(c *Controller, p *Phys) {
		c.SetTrap(0x1000, 64)
		c.SetTrap(0x20004, 4)
		c.FlipTapewormBit(0x3000, 16)
		p.InjectError(0x4000, 5)
		c.SetTrap(0x4100, 4)
	}
	muts := []struct {
		name string
		op   func(c *Controller, p *Phys)
	}{
		{"set new word", func(c *Controller, p *Phys) { c.SetTrap(0x9000, 4) }},
		{"set already-trapped (idempotent)", func(c *Controller, p *Phys) { c.SetTrap(0x1000, 64) }},
		{"clear imaged trap", func(c *Controller, p *Phys) { c.ClearTrap(0x1000, 32) }},
		{"clear clean range (no-op)", func(c *Controller, p *Phys) { c.ClearTrap(0x10000, 128) }},
		{"flip imaged trap off", func(c *Controller, p *Phys) { c.FlipTapewormBit(0x3000, 16) }},
		{"inject beside imaged trap", func(c *Controller, p *Phys) { p.InjectError(0x1004, 7) }},
		{"correct the true error", func(c *Controller, p *Phys) { p.CorrectWord(0x4000) }},
		{"clear around the true error", func(c *Controller, p *Phys) { c.ClearTrap(0x4000, 0x200) }},
	}
	for _, m := range muts {
		t.Run(m.name, func(t *testing.T) {
			fresh := NewPhys(64, 4096)
			fc := NewController(fresh)
			setup(fc, fresh)
			m.op(fc, fresh)

			src, _, img := imageSource()
			f := NewPhysFromImage(img)
			m.op(NewController(f), f)

			if err := f.CheckSummaries(); err != nil {
				t.Fatalf("fork summaries after %q: %v", m.name, err)
			}
			if !reflect.DeepEqual(dense(f), dense(fresh)) {
				t.Fatalf("fork state after %q differs from fresh-built state", m.name)
			}
			fset, fcleared := f.Stats()
			wset, wcleared := fresh.Stats()
			if fset != wset || fcleared != wcleared {
				t.Fatalf("fork stats (%d,%d) != fresh stats (%d,%d)", fset, fcleared, wset, wcleared)
			}
			f.Release()
			fresh.Release()
			src.Release()
		})
	}
}

// TestForkWriteMidFaultService models the trap-service interleaving on a
// shared frame: the fault handler clears the trap (the fork's first
// write, forcing materialization mid-service), simulates, and re-arms,
// while a sibling fork still reads the original trap through the image.
func TestForkWriteMidFaultService(t *testing.T) {
	_, _, img := imageSource()
	f1 := NewPhysFromImage(img)
	f2 := NewPhysFromImage(img)
	pa := PAddr(0x1020) // trapped in the image

	if !f1.TrappedWord(pa) {
		t.Fatal("trap missing before service")
	}
	c1 := NewController(f1)
	c1.ClearTrap(pa, WordBytes) // service begins: clear to let the access run
	if f1.Shared() {
		t.Fatal("clear of an armed word did not materialize")
	}
	if f1.TrappedWord(pa) {
		t.Fatal("trap survived its clear")
	}
	if !f2.TrappedWord(pa) || !f2.Shared() {
		t.Fatal("sibling fork lost its trap (or materialized) when the other cleared")
	}
	c1.SetTrap(pa, WordBytes) // service ends: re-arm
	if !f1.TrappedWord(pa) {
		t.Fatal("re-arm failed after copy-on-write")
	}
	if err := f1.CheckSummaries(); err != nil {
		t.Errorf("summaries after mid-service write: %v", err)
	}
	if err := f2.CheckSummaries(); err != nil {
		t.Errorf("sibling summaries: %v", err)
	}
	f1.Release()
	f2.Release()
}

// TestForkTrapRefsRebuiltPerFork: refcounts are never part of an image —
// each fork arms its own, and counts on one fork are invisible to its
// siblings.
func TestForkTrapRefsRebuiltPerFork(t *testing.T) {
	_, _, img := imageSource()
	f1 := NewPhysFromImage(img)
	f2 := NewPhysFromImage(img)
	f1.EnableTrapRefs()
	f2.EnableTrapRefs()
	pa := PAddr(0x1000)

	c1 := NewController(f1)
	if !c1.AddTrapRef(pa) {
		t.Fatal("adopting the imaged trap failed")
	}
	if !c1.AddTrapRef(pa) {
		t.Fatal("second reference failed")
	}
	if got := f1.TrapRefCount(pa); got != 2 {
		t.Fatalf("f1 refcount %d, want 2", got)
	}
	if got := f2.TrapRefCount(pa); got != 0 {
		t.Fatalf("f2 refcount %d leaked from f1, want 0", got)
	}
	// Arming references counts as a write (it may flip check bits), so the
	// arming fork materialized; its sibling must still alias the image.
	if f1.Shared() {
		t.Fatal("AddTrapRef did not materialize the arming fork")
	}
	if !f2.Shared() {
		t.Fatal("sibling fork materialized without writing")
	}
	c1.ReleaseTrapRef(pa)
	c1.ReleaseTrapRef(pa) // last release clears the physical trap
	if f1.TrappedWord(pa) {
		t.Fatal("trap survived the last reference release")
	}
	if !f2.TrappedWord(pa) {
		t.Fatal("f1's release destroyed f2's trap")
	}
	f1.Release()
	f2.Release()
}

// TestForkReleaseUnmaterialized: a fork torn down without ever writing
// returns nothing to the pools (it owns nothing) and leaves the image
// fully serviceable.
func TestForkReleaseUnmaterialized(t *testing.T) {
	_, _, img := imageSource()
	want := dense(NewPhysFromImage(img))

	f := NewPhysFromImage(img)
	f.Release()
	if gets, _ := f.PoolCounts(); gets != 0 {
		t.Fatalf("unmaterialized fork made %d pool gets", gets)
	}

	// Refcount arrays are private even on a shared fork: enabling them is
	// the fork's only pool traffic, and releasing recycles just those.
	fr := NewPhysFromImage(img)
	fr.EnableTrapRefs()
	if gets, _ := fr.PoolCounts(); gets != 1 {
		t.Fatalf("refcounted shared fork made %d pool gets, want 1", gets)
	}
	fr.Release()

	g := NewPhysFromImage(img)
	if !reflect.DeepEqual(dense(g), want) {
		t.Fatal("image corrupted by releasing an unmaterialized fork")
	}
	if err := g.CheckSummaries(); err != nil {
		t.Fatal(err)
	}
	g.Release()
}

func TestImageGobRoundtrip(t *testing.T) {
	_, _, img := imageSource()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatal(err)
	}
	var back Image
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, img) {
		t.Fatal("image did not survive gob roundtrip")
	}
	f := NewPhysFromImage(&back)
	if err := f.CheckSummaries(); err != nil {
		t.Fatal(err)
	}
	if f.TrapCount() != img.TrapCount() {
		t.Fatalf("decoded fork TrapCount %d != image %d", f.TrapCount(), img.TrapCount())
	}
	f.Release()
}

func TestImageDecodeRejectsInconsistentLengths(t *testing.T) {
	_, _, img := imageSource()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(imageWire{
		Frames: img.frames, PageSize: img.pageSize,
		TrapBits: img.trapBits[:1], TwBits: img.twBits,
		ChunkPop: img.chunkPop, SuperPop: img.superPop,
	}); err != nil {
		t.Fatal(err)
	}
	var back Image
	if err := back.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("truncated image accepted")
	}
}
