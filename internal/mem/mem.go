// Package mem models the physical memory system of the simulated host
// machine: 32-bit physical/virtual addresses, per-word ECC check bits, the
// memory-controller ASIC diagnostic interface that Tapeworm abuses to set
// and clear memory traps, and the dense trap bitset consulted on the hot
// path of every simulated reference.
//
// The paper's DECstation 5000/200 implementation sets a trap by flipping a
// specific ECC check bit among the 7 check bits that protect each 32-bit
// word (Section 3.2, footnote 1). Subsequent use of the word raises a
// memory-error trap into the kernel. This package reproduces that machinery
// exactly: check-bit state per word, single- versus double-bit syndrome
// classification, and the distinction between Tapeworm traps and true
// memory errors.
package mem

import "fmt"

// PAddr is a 32-bit physical address.
type PAddr uint32

// VAddr is a 32-bit virtual address.
type VAddr uint32

// TaskID identifies a task. ID 0 denotes the OS kernel itself, matching
// the tw_attributes convention of Table 1.
type TaskID int32

// KernelTask is the TaskID of the OS kernel.
const KernelTask TaskID = 0

// RefKind distinguishes instruction fetches from data loads and stores.
type RefKind uint8

const (
	// IFetch is an instruction fetch.
	IFetch RefKind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
)

// String names the reference kind.
func (k RefKind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	}
	return fmt.Sprintf("RefKind(%d)", uint8(k))
}

// Ref is one memory reference issued by a task: a virtual address and an
// access kind. Physical addresses are attached by the MMU at access time.
type Ref struct {
	VA   VAddr
	Kind RefKind
}

// WordBytes is the machine word size in bytes (32-bit machine).
const WordBytes = 4

// twCheckBit is the specific check bit (of the 7 per word) that Tapeworm
// flips to set a trap. A single-bit error in any of the other positions, or
// any double-bit error, is classified as a true memory error.
const twCheckBit = 0

// Phys is the physical memory of the machine: a frame count, a page size,
// the dense trap bitset, and the sparse ECC corruption state.
//
// Only corrupted words carry explicit ECC state; the overwhelmingly common
// correct words cost nothing. The trap bitset is the one structure touched
// on every simulated reference and is kept as flat []uint64 words.
type Phys struct {
	pageSize int
	frames   int
	bytes    int

	trapBits []uint64 // one bit per machine word; 1 = ECC trap set by Tapeworm

	// ecc maps word index -> XOR mask of corrupted check/data bit
	// positions (bits 0..6 are check bits, 7..38 data bits). Present only
	// for words whose stored ECC differs from the correct encoding.
	ecc map[uint32]uint64

	// trapRef, when non-nil, holds a per-word trap reference count for
	// gang-attached simulators: the physical check bit is flipped on the
	// 0→1 transition and restored on the last release, so tw_clear_trap
	// from one simulator never destroys another's trap. Allocated only by
	// EnableTrapRefs; solo simulators pay nothing.
	trapRef []uint8

	// destroyed, if set, is called with the word-aligned address whenever
	// something other than ReleaseTrapRef removes a refcounted trap (DMA
	// writes, silent write-around clears, true-error correction). The gang
	// layer uses it to drop every member's intent for the word.
	destroyed func(pa PAddr)

	trapsSet     uint64 // statistics: total tw_set_trap word-sets
	trapsCleared uint64
}

// CheckPhysSize validates a physical memory geometry without building
// it: frames must be positive, pageSize a power of two and a multiple
// of the word size, and the total size must fit the machine's 32-bit
// physical address space. Config validators call this so bad geometry
// becomes an error at the boundary instead of a panic mid-run.
func CheckPhysSize(frames, pageSize int) error {
	if frames <= 0 {
		return fmt.Errorf("mem: frame count must be positive, got %d", frames)
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 || pageSize%WordBytes != 0 {
		return fmt.Errorf("mem: invalid page size %d", pageSize)
	}
	const maxBytes = 1 << 32
	if uint64(frames)*uint64(pageSize) > maxBytes {
		return fmt.Errorf("mem: %d frames of %d bytes exceed the 32-bit physical address space", frames, pageSize)
	}
	return nil
}

// NewPhys creates a physical memory of frames pages of pageSize bytes each.
// pageSize must be a power of two and a multiple of the word size; callers
// that need an error instead of a panic should run CheckPhysSize first.
// Ownership of the pooled backing arrays moves into the returned Phys;
// Release hands them back.
//
//twvet:transfer
func NewPhys(frames, pageSize int) *Phys {
	if err := CheckPhysSize(frames, pageSize); err != nil {
		panic(err.Error())
	}
	total := frames * pageSize
	words := total / WordBytes
	p := &Phys{
		pageSize: pageSize,
		frames:   frames,
		bytes:    total,
	}
	p.trapBits, p.ecc = getPhysBuffers((words + 63) / 64)
	return p
}

// Release returns the backing arrays to the per-geometry pool for reuse by
// a later run with the same frame count. The Phys must not be used again;
// callers release only at end-of-run teardown.
//
//twvet:transfer
func (p *Phys) Release() {
	if p.trapBits == nil {
		return
	}
	putPhysBuffers(p.trapBits, p.ecc, p.trapRef)
	p.trapBits, p.ecc, p.trapRef = nil, nil, nil
}

// PageSize returns the machine page size in bytes.
func (p *Phys) PageSize() int { return p.pageSize }

// Frames returns the number of physical page frames.
func (p *Phys) Frames() int { return p.frames }

// Bytes returns the total physical memory size in bytes.
func (p *Phys) Bytes() int { return p.bytes }

// Contains reports whether pa addresses a byte inside physical memory.
func (p *Phys) Contains(pa PAddr) bool { return int(pa) < p.bytes }

func (p *Phys) wordIndex(pa PAddr) uint32 {
	if !p.Contains(pa) {
		panic(fmt.Sprintf("mem: physical address %#x out of range (%d bytes)", pa, p.bytes))
	}
	return uint32(pa) / WordBytes
}

// wordRange bounds-checks [pa, pa+size) and returns its inclusive word
// index range. The ubiquitous single-word case (size <= WordBytes, not
// straddling a word boundary) skips the second bounds check.
func (p *Phys) wordRange(pa PAddr, size int) (first, last uint32) {
	first = p.wordIndex(pa)
	if int(pa&(WordBytes-1))+size <= WordBytes {
		return first, first
	}
	return first, p.wordIndex(pa + PAddr(size) - 1)
}

// --- Trap bitset (the hot path) ---

// Trapped reports whether any word in [pa, pa+size) has a trap set.
// Size zero is treated as one word.
//
// This is probed on the hot path of every simulated reference (host
// cache refills check it per line), so the common shapes take fast
// paths: a range inside one machine word is a single bit test, and a
// range inside one 64-word bitset chunk — every 16-byte host line — is
// a single masked load. Only ranges straddling a chunk boundary (page
// registration, DMA buffers) walk multiple bitset words, and those are
// scanned a uint64 at a time rather than bit by bit.
func (p *Phys) Trapped(pa PAddr, size int) bool {
	if size <= 0 {
		size = WordBytes
	}
	first := p.wordIndex(pa)
	if size <= WordBytes && int(pa&(WordBytes-1))+size <= WordBytes {
		// Aligned single-word fast path: the whole range lives in the
		// word containing pa.
		return p.trapBits[first>>6]&(1<<(first&63)) != 0
	}
	last := p.wordIndex(pa + PAddr(size) - 1)
	fc, lc := first>>6, last>>6
	if fc == lc {
		// Single-chunk fast path. The shift-width trick keeps the mask
		// correct when the range covers all 64 words of the chunk
		// (1<<64 == 0 for non-constant shifts, so the mask is ^0).
		n := last - first + 1
		mask := (uint64(1)<<n - 1) << (first & 63)
		return p.trapBits[fc]&mask != 0
	}
	if p.trapBits[fc]&(^uint64(0)<<(first&63)) != 0 {
		return true
	}
	for c := fc + 1; c < lc; c++ {
		if p.trapBits[c] != 0 {
			return true
		}
	}
	tail := uint64(1)<<((last&63)+1) - 1
	return p.trapBits[lc]&tail != 0
}

// TrappedWord reports whether the single word containing pa has a trap set.
// This is the fastest-path query used by the machine's refill check.
func (p *Phys) TrappedWord(pa PAddr) bool {
	w := p.wordIndex(pa)
	return p.trapBits[w>>6]&(1<<(w&63)) != 0
}

// setTrapBits marks all words in [pa, pa+size) as trapped (or clears them).
func (p *Phys) setTrapBits(pa PAddr, size int, on bool) {
	if size <= 0 {
		size = WordBytes
	}
	first, last := p.wordRange(pa, size)
	for w := first; w <= last; w++ {
		if on {
			p.trapBits[w>>6] |= 1 << (w & 63)
		} else {
			p.trapBits[w>>6] &^= 1 << (w & 63)
		}
	}
}

// TrapCount returns the total number of words currently trapped. Intended
// for assertions and tests, not the simulation hot path.
func (p *Phys) TrapCount() int {
	n := 0
	for _, w := range p.trapBits {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Stats reports cumulative counts of trap set/clear word operations.
func (p *Phys) Stats() (set, cleared uint64) { return p.trapsSet, p.trapsCleared }

// --- Trap reference counts (gang attach) ---

// EnableTrapRefs allocates the per-word trap reference counts used when
// several simulators share one machine. Idempotent. The pooled array is
// owned by the Phys until Release.
//
//twvet:transfer
func (p *Phys) EnableTrapRefs() {
	if p.trapRef == nil {
		p.trapRef = getTrapRefs(p.bytes / WordBytes)
	}
}

// TrapRefsEnabled reports whether per-word reference counting is active.
func (p *Phys) TrapRefsEnabled() bool { return p.trapRef != nil }

// SetTrapDestroyedHook registers fn to be called (with a word-aligned
// address) whenever a refcounted trap is destroyed by something other than
// ReleaseTrapRef: DMA overwrites, silent write-around clears, true-error
// correction. Pass nil to unregister.
func (p *Phys) SetTrapDestroyedHook(fn func(pa PAddr)) { p.destroyed = fn }

// TrapRefCount returns the reference count of the word containing pa
// (0 when refcounting is disabled). For tests and assertions.
func (p *Phys) TrapRefCount(pa PAddr) int {
	if p.trapRef == nil {
		return 0
	}
	return int(p.trapRef[p.wordIndex(pa)])
}

// noteDestroyed zeroes the word's reference count and notifies the gang
// layer. Called from every non-ReleaseTrapRef path that removes the
// Tapeworm check bit of a word while references are outstanding.
func (p *Phys) noteDestroyed(w uint32) {
	if p.trapRef == nil || p.trapRef[w] == 0 {
		return
	}
	p.trapRef[w] = 0
	if p.destroyed != nil {
		p.destroyed(PAddr(w) * WordBytes)
	}
}

// AddTrapRef takes one reference on the trap of the single word containing
// pa, flipping the physical check bit on the 0→1 transition. It reports
// false — and takes no reference — when the word carries a true memory
// error, mirroring SetTrap's refusal to stack corruption on real faults.
// EnableTrapRefs must have been called.
func (c *Controller) AddTrapRef(pa PAddr) bool {
	p := c.phys
	if p.trapRef == nil {
		panic("mem: AddTrapRef without EnableTrapRefs")
	}
	w := p.wordIndex(pa)
	if p.trapRef[w] == 0 {
		switch {
		case p.ecc[w] == 0:
			p.ecc[w] = 1 << twCheckBit
			p.syncTrapBit(w)
			p.trapsSet++
		case p.ecc[w] == 1<<twCheckBit:
			// Adopt an orphaned trap (set before refcounting began).
		default:
			return false // true error; never stack corruption
		}
	}
	if p.trapRef[w] == ^uint8(0) {
		panic("mem: trap reference count overflow")
	}
	p.trapRef[w]++
	return true
}

// ReleaseTrapRef drops one reference on the word containing pa, restoring
// correct ECC when the last reference goes away. Releasing a word whose
// trap was already destroyed (count zero) is a no-op.
func (c *Controller) ReleaseTrapRef(pa PAddr) {
	p := c.phys
	if p.trapRef == nil {
		panic("mem: ReleaseTrapRef without EnableTrapRefs")
	}
	w := p.wordIndex(pa)
	if p.trapRef[w] == 0 {
		return
	}
	p.trapRef[w]--
	if p.trapRef[w] != 0 {
		return
	}
	if p.ecc[w]&(1<<twCheckBit) != 0 {
		p.ecc[w] &^= 1 << twCheckBit
		if p.ecc[w] == 0 {
			delete(p.ecc, w)
		}
		p.syncTrapBit(w)
		p.trapsCleared++
	}
}

// --- ECC state ---

// ECCState returns the corruption mask of the word containing pa
// (0 = correct ECC).
func (p *Phys) ECCState(pa PAddr) uint64 {
	return p.ecc[p.wordIndex(pa)]
}

// Syndrome classifies the ECC state of one word.
type Syndrome int

const (
	// SynOK: the word's ECC is consistent; no trap.
	SynOK Syndrome = iota
	// SynTapeworm: exactly the Tapeworm check bit is flipped; this trap
	// was set by tw_set_trap and represents a simulated miss.
	SynTapeworm
	// SynSingleBit: a single-bit error in a non-Tapeworm position — a
	// true, correctable memory error.
	SynSingleBit
	// SynDoubleBit: a double-bit (uncorrectable) error — always a true
	// memory error, even while Tapeworm is active.
	SynDoubleBit
)

// String names the syndrome.
func (s Syndrome) String() string {
	switch s {
	case SynOK:
		return "ok"
	case SynTapeworm:
		return "tapeworm-trap"
	case SynSingleBit:
		return "single-bit-error"
	case SynDoubleBit:
		return "double-bit-error"
	}
	return fmt.Sprintf("Syndrome(%d)", int(s))
}

// Classify decodes the corruption mask of the word at pa into a Syndrome.
// The single-error-correcting, double-error-detecting code distinguishes
// exactly these cases (footnote 1 of Section 3.2): a flip of the dedicated
// Tapeworm check bit is a simulated miss; a flip anywhere else, or two or
// more flips, is a true error detected with high probability.
func (p *Phys) Classify(pa PAddr) Syndrome {
	mask := p.ecc[p.wordIndex(pa)]
	switch popcount(mask) {
	case 0:
		return SynOK
	case 1:
		if mask == 1<<twCheckBit {
			return SynTapeworm
		}
		return SynSingleBit
	default:
		return SynDoubleBit
	}
}

// InjectError flips bit position bit (0..38) of the word at pa, modelling a
// genuine memory fault. Injecting on a word that already carries a Tapeworm
// trap produces a double-bit syndrome, which Tapeworm must report as a true
// error rather than consume as a simulated miss.
func (p *Phys) InjectError(pa PAddr, bit uint) {
	if bit > 38 {
		panic(fmt.Sprintf("mem: ECC bit position %d out of range (0-38)", bit))
	}
	w := p.wordIndex(pa)
	p.ecc[w] ^= 1 << bit
	if p.ecc[w] == 0 {
		delete(p.ecc, w)
	}
	p.syncTrapBit(w)
	if p.ecc[w]&(1<<twCheckBit) == 0 {
		p.noteDestroyed(w)
	}
}

// CorrectWord restores correct ECC to the word at pa, as the kernel's
// memory-error handler does after correcting a true single-bit error.
func (p *Phys) CorrectWord(pa PAddr) {
	w := p.wordIndex(pa)
	hadTrap := p.ecc[w]&(1<<twCheckBit) != 0
	delete(p.ecc, w)
	p.syncTrapBit(w)
	if hadTrap {
		p.noteDestroyed(w)
	}
}

// syncTrapBit keeps the dense bitset consistent with the sparse ECC state:
// the machine raises a memory-error trap whenever a word's ECC is
// inconsistent for any reason.
func (p *Phys) syncTrapBit(w uint32) {
	if p.ecc[w] != 0 {
		p.trapBits[w>>6] |= 1 << (w & 63)
	} else {
		p.trapBits[w>>6] &^= 1 << (w & 63)
	}
}

// Controller is the memory-controller ASIC diagnostic interface. Tapeworm's
// machine-dependent layer drives it to implement tw_set_trap and
// tw_clear_trap. The interface is deliberately awkward — a flip call per
// word and a multi-step error-address reconstruction — mirroring the
// "convoluted sequence of control instructions" the paper describes; the
// cycle costs of that awkwardness are charged by the machine layer.
type Controller struct {
	phys *Phys
}

// NewController returns the diagnostic controller for phys.
func NewController(phys *Phys) *Controller { return &Controller{phys: phys} }

// FlipTapewormBit toggles the dedicated Tapeworm check bit of every word in
// [pa, pa+size). Flipping a correct word sets a trap; flipping a trapped
// word restores correct ECC. Size is rounded up to whole words.
func (c *Controller) FlipTapewormBit(pa PAddr, size int) {
	if size <= 0 {
		size = WordBytes
	}
	first, last := c.phys.wordRange(pa, size)
	for w := first; w <= last; w++ {
		c.phys.ecc[w] ^= 1 << twCheckBit
		if c.phys.ecc[w] == 0 {
			delete(c.phys.ecc, w)
		}
		c.phys.syncTrapBit(w)
		if c.phys.ecc[w]&(1<<twCheckBit) == 0 {
			c.phys.noteDestroyed(w)
		}
	}
}

// SetTrap sets the Tapeworm trap on [pa, pa+size), idempotently: words
// already trapped by Tapeworm are left alone (flipping twice would clear
// them). Words carrying true errors are also left alone.
func (c *Controller) SetTrap(pa PAddr, size int) {
	if size <= 0 {
		size = WordBytes
	}
	first, last := c.phys.wordRange(pa, size)
	for w := first; w <= last; w++ {
		if c.phys.ecc[w] == 0 {
			c.phys.ecc[w] = 1 << twCheckBit
			c.phys.syncTrapBit(w)
			c.phys.trapsSet++
		}
	}
}

// ClearTrap removes Tapeworm traps from [pa, pa+size). True-error state is
// preserved: clearing a region never masks a genuine fault.
func (c *Controller) ClearTrap(pa PAddr, size int) {
	if size <= 0 {
		size = WordBytes
	}
	first, last := c.phys.wordRange(pa, size)
	for w := first; w <= last; w++ {
		if c.phys.ecc[w]&(1<<twCheckBit) != 0 {
			c.phys.ecc[w] &^= 1 << twCheckBit
			if c.phys.ecc[w] == 0 {
				delete(c.phys.ecc, w)
			}
			c.phys.syncTrapBit(w)
			c.phys.trapsCleared++
			c.phys.noteDestroyed(w)
		}
	}
}

// ReconstructErrorAddress pieces together the failing physical address from
// the controller's error registers after a memory-error trap. On the real
// ASIC this takes about a dozen load/shift/add/mask instructions; the
// machine layer charges that cost. Here it validates and echoes the
// faulting address, panicking if no error is actually latched there.
func (c *Controller) ReconstructErrorAddress(pa PAddr) PAddr {
	if c.phys.Classify(pa) == SynOK {
		panic(fmt.Sprintf("mem: ReconstructErrorAddress(%#x): no error latched", pa))
	}
	return pa &^ (WordBytes - 1)
}
