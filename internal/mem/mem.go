// Package mem models the physical memory system of the simulated host
// machine: 32-bit physical/virtual addresses, per-word ECC check bits, the
// memory-controller ASIC diagnostic interface that Tapeworm abuses to set
// and clear memory traps, and the dense trap bitset consulted on the hot
// path of every simulated reference.
//
// The paper's DECstation 5000/200 implementation sets a trap by flipping a
// specific ECC check bit among the 7 check bits that protect each 32-bit
// word (Section 3.2, footnote 1). Subsequent use of the word raises a
// memory-error trap into the kernel. This package reproduces that machinery
// exactly: check-bit state per word, single- versus double-bit syndrome
// classification, and the distinction between Tapeworm traps and true
// memory errors.
package mem

import (
	"fmt"
	"math/bits"
)

// PAddr is a 32-bit physical address.
type PAddr uint32

// VAddr is a 32-bit virtual address.
type VAddr uint32

// TaskID identifies a task. ID 0 denotes the OS kernel itself, matching
// the tw_attributes convention of Table 1.
type TaskID int32

// KernelTask is the TaskID of the OS kernel.
const KernelTask TaskID = 0

// RefKind distinguishes instruction fetches from data loads and stores.
type RefKind uint8

const (
	// IFetch is an instruction fetch.
	IFetch RefKind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
)

// String names the reference kind.
func (k RefKind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	}
	return fmt.Sprintf("RefKind(%d)", uint8(k))
}

// Ref is one memory reference issued by a task: a virtual address and an
// access kind. Physical addresses are attached by the MMU at access time.
type Ref struct {
	VA   VAddr
	Kind RefKind
}

// WordBytes is the machine word size in bytes (32-bit machine).
const WordBytes = 4

// twCheckBit is the specific check bit (of the 7 per word) that Tapeworm
// flips to set a trap. A single-bit error in any of the other positions, or
// any double-bit error, is classified as a true memory error.
const twCheckBit = 0

// Bitset geometry: 64 words per chunk, 64 chunks per super-chunk. A chunk
// is one uint64 of the dense bitsets; a super-chunk covers 4096 words
// (16 KB of physical memory, four pages).
const (
	chunkWords = 64
	superSize  = 64
)

// Phys is the physical memory of the machine: a frame count, a page size,
// the dense trap bitset, and the sparse ECC corruption state.
//
// The corruption state of a word splits by cause. The dedicated Tapeworm
// check bit — flipped and restored millions of times per run — lives in
// the dense twBits bitset, so tw_set_trap and tw_clear_trap over a range
// are whole-chunk bitset operations. True memory errors (any other
// flipped position) are vanishingly rare and stay in the sparse ecc map;
// only when a region holds true errors do the trap operations fall back
// to word-at-a-time updates. A word's full corruption mask is the OR of
// the two.
//
// On top of the any-corruption bitset sits a two-level occupancy summary
// (per-chunk population counts, per-super-chunk nonzero-chunk counts) so
// that clears, counts and invariant checks skip clean regions without
// scanning them.
type Phys struct {
	pageSize int
	frames   int
	bytes    int

	trapBits []uint64 // one bit per machine word; 1 = any ECC inconsistency
	twBits   []uint64 // one bit per machine word; 1 = Tapeworm check bit flipped

	// chunkPop[c] is the population count of trapBits[c]; superPop[s] is
	// the number of nonzero chunks among the s-th group of 64. Together
	// they let range clears and TrapCount skip clean regions, and let
	// pooled buffers be re-zeroed selectively on reuse.
	chunkPop []uint8
	superPop []uint8

	// ecc maps word index -> XOR mask of corrupted check/data bit
	// positions other than the Tapeworm check bit (bits 1..6 are the
	// remaining check bits, 7..38 data bits). Present only for words
	// carrying true-error corruption; Tapeworm's own bit is in twBits.
	ecc map[uint32]uint64

	// trapRef, when non-nil, holds a per-word trap reference count for
	// gang-attached simulators: the physical check bit is flipped on the
	// 0→1 transition and restored on the last release, so tw_clear_trap
	// from one simulator never destroys another's trap. Allocated only by
	// EnableTrapRefs; solo simulators pay nothing. refChunk/refSuper are
	// the matching two-level occupancy summary (words with nonzero
	// refcount per chunk, nonzero refChunk entries per super-chunk).
	trapRef  []uint8
	refChunk []uint8
	refSuper []uint8

	// destroyed, if set, is called with the word-aligned address whenever
	// something other than ReleaseTrapRef removes a refcounted trap (DMA
	// writes, silent write-around clears, true-error correction). The gang
	// layer uses it to drop every member's intent for the word.
	destroyed func(pa PAddr)

	// img, when non-nil, is the immutable checkpoint image whose arrays
	// this Phys still aliases copy-on-write; the first mutation calls
	// ensureOwned to materialize private pooled copies. See image.go.
	img *Image

	// poolGets/poolReuses attribute pooled-buffer traffic to this Phys so
	// callers can tally per-run stats regardless of what other runs do
	// concurrently (the process-global PoolStats counters only ever sum).
	poolGets   uint64
	poolReuses uint64

	trapsSet     uint64 // statistics: total tw_set_trap word-sets
	trapsCleared uint64
}

// CheckPhysSize validates a physical memory geometry without building
// it: frames must be positive, pageSize a power of two and a multiple
// of the word size, and the total size must fit the machine's 32-bit
// physical address space. Config validators call this so bad geometry
// becomes an error at the boundary instead of a panic mid-run.
func CheckPhysSize(frames, pageSize int) error {
	if frames <= 0 {
		return fmt.Errorf("mem: frame count must be positive, got %d", frames)
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 || pageSize%WordBytes != 0 {
		return fmt.Errorf("mem: invalid page size %d", pageSize)
	}
	const maxBytes = 1 << 32
	if uint64(frames)*uint64(pageSize) > maxBytes {
		return fmt.Errorf("mem: %d frames of %d bytes exceed the 32-bit physical address space", frames, pageSize)
	}
	return nil
}

// NewPhys creates a physical memory of frames pages of pageSize bytes each.
// pageSize must be a power of two and a multiple of the word size; callers
// that need an error instead of a panic should run CheckPhysSize first.
// Ownership of the pooled backing arrays moves into the returned Phys;
// Release hands them back.
func NewPhys(frames, pageSize int) *Phys {
	if err := CheckPhysSize(frames, pageSize); err != nil {
		panic(err.Error())
	}
	total := frames * pageSize
	words := total / WordBytes
	p := &Phys{
		pageSize: pageSize,
		frames:   frames,
		bytes:    total,
	}
	b, reused := getPhysBuffers((words + chunkWords - 1) / chunkWords)
	p.poolGets++
	if reused {
		p.poolReuses++
	}
	p.trapBits, p.twBits, p.chunkPop, p.superPop, p.ecc =
		b.trapBits, b.twBits, b.chunkPop, b.superPop, b.ecc
	return p
}

// Release returns the backing arrays to the per-geometry pool for reuse by
// a later run with the same frame count. The Phys must not be used again;
// callers release only at end-of-run teardown.
func (p *Phys) Release() {
	if p.trapBits == nil {
		return
	}
	if p.img != nil {
		// The dense arrays still alias the immutable checkpoint image and
		// must never enter the pools; only the trap refcounts (always
		// privately owned) are recycled.
		putTrapRefs(p.trapRef, p.refChunk, p.refSuper)
		p.img = nil
	} else {
		putPhysBuffers(&physBuffers{
			trapBits: p.trapBits, twBits: p.twBits,
			chunkPop: p.chunkPop, superPop: p.superPop, ecc: p.ecc,
		}, p.trapRef, p.refChunk, p.refSuper)
	}
	p.trapBits, p.twBits, p.chunkPop, p.superPop, p.ecc = nil, nil, nil, nil, nil
	p.trapRef, p.refChunk, p.refSuper = nil, nil, nil
}

// PoolCounts reports the pooled-buffer requests made on behalf of this
// Phys (boot arrays, gang trap refcounts, copy-on-write materialization)
// and how many were served by reuse. Per-Phys attribution stays exact at
// any parallelism, unlike the process-global PoolStats sum.
func (p *Phys) PoolCounts() (gets, reuses uint64) { return p.poolGets, p.poolReuses }

// PageSize returns the machine page size in bytes.
func (p *Phys) PageSize() int { return p.pageSize }

// Frames returns the number of physical page frames.
func (p *Phys) Frames() int { return p.frames }

// Bytes returns the total physical memory size in bytes.
func (p *Phys) Bytes() int { return p.bytes }

// Contains reports whether pa addresses a byte inside physical memory.
func (p *Phys) Contains(pa PAddr) bool { return int(pa) < p.bytes }

func (p *Phys) wordIndex(pa PAddr) uint32 {
	if !p.Contains(pa) {
		panic(fmt.Sprintf("mem: physical address %#x out of range (%d bytes)", pa, p.bytes))
	}
	return uint32(pa) / WordBytes
}

// wordRange bounds-checks [pa, pa+size) and returns its inclusive word
// index range. The ubiquitous single-word case (size <= WordBytes, not
// straddling a word boundary) skips the second bounds check.
func (p *Phys) wordRange(pa PAddr, size int) (first, last uint32) {
	first = p.wordIndex(pa)
	if int(pa&(WordBytes-1))+size <= WordBytes {
		return first, first
	}
	return first, p.wordIndex(pa + PAddr(size) - 1)
}

// --- Trap bitset (the hot path) ---

// Trapped reports whether any word in [pa, pa+size) has a trap set.
// Size zero is treated as one word.
//
// This is probed on the hot path of every simulated reference (host
// cache refills check it per line), so the common shapes take fast
// paths: a range inside one machine word is a single bit test, and a
// range inside one 64-word bitset chunk — every 16-byte host line — is
// a single masked load. Only ranges straddling a chunk boundary (page
// registration, DMA buffers) walk multiple bitset words, and those are
// scanned a uint64 at a time rather than bit by bit.
func (p *Phys) Trapped(pa PAddr, size int) bool {
	if size <= 0 {
		size = WordBytes
	}
	first := p.wordIndex(pa)
	if size <= WordBytes && int(pa&(WordBytes-1))+size <= WordBytes {
		// Aligned single-word fast path: the whole range lives in the
		// word containing pa.
		return p.trapBits[first>>6]&(1<<(first&63)) != 0
	}
	last := p.wordIndex(pa + PAddr(size) - 1)
	fc, lc := first>>6, last>>6
	if fc == lc {
		// Single-chunk fast path. The shift-width trick keeps the mask
		// correct when the range covers all 64 words of the chunk
		// (1<<64 == 0 for non-constant shifts, so the mask is ^0).
		n := last - first + 1
		mask := (uint64(1)<<n - 1) << (first & 63)
		return p.trapBits[fc]&mask != 0
	}
	if p.trapBits[fc]&(^uint64(0)<<(first&63)) != 0 {
		return true
	}
	for c := fc + 1; c < lc; c++ {
		if p.trapBits[c] != 0 {
			return true
		}
	}
	tail := uint64(1)<<((last&63)+1) - 1
	return p.trapBits[lc]&tail != 0
}

// TrappedWord reports whether the single word containing pa has a trap set.
// This is the fastest-path query used by the machine's refill check.
func (p *Phys) TrappedWord(pa PAddr) bool {
	w := p.wordIndex(pa)
	return p.trapBits[w>>6]&(1<<(w&63)) != 0
}

// twSet reports whether word w carries the Tapeworm check-bit flip.
func (p *Phys) twSet(w uint32) bool {
	return p.twBits[w>>6]&(1<<(w&63)) != 0
}

// mask returns the full corruption mask of word w: the sparse true-error
// bits plus the dense Tapeworm bit.
func (p *Phys) mask(w uint32) uint64 {
	m := p.ecc[w]
	if p.twSet(w) {
		m |= 1 << twCheckBit
	}
	return m
}

// writeChunk replaces one chunk of the any-corruption bitset and keeps the
// two-level occupancy summary consistent. Every trapBits mutation funnels
// through here: the summary invariant (chunkPop is the chunk's population
// count, superPop its group's nonzero-chunk count) is what lets clears,
// counts and pool-reuse zeroing skip clean regions.
func (p *Phys) writeChunk(c uint32, v uint64) {
	if p.trapBits[c] == v {
		return
	}
	p.trapBits[c] = v
	old := p.chunkPop[c]
	pop := uint8(bits.OnesCount64(v))
	p.chunkPop[c] = pop
	switch {
	case old == 0 && pop != 0:
		p.superPop[c/superSize]++
	case old != 0 && pop == 0:
		p.superPop[c/superSize]--
	}
}

// forChunks calls fn for every 64-word chunk intersecting the inclusive
// word range [first, last], passing the chunk index and the mask of covered
// words within it. The shift trick in the tail mask handles last&63 == 63
// (1<<64 == 0 for variable shifts, so the mask underflows to all-ones).
func forChunks(first, last uint32, fn func(c uint32, m uint64)) {
	fc, lc := first>>6, last>>6
	for c := fc; c <= lc; c++ {
		m := ^uint64(0)
		if c == fc {
			m &= ^uint64(0) << (first & 63)
		}
		if c == lc {
			m &= uint64(1)<<((last&63)+1) - 1
		}
		fn(c, m)
	}
}

// TrapCount returns the total number of words currently trapped. The
// two-level summary makes this a sum over dirty chunks only; clean
// super-chunks (the vast majority of physical memory) are skipped.
func (p *Phys) TrapCount() int {
	n := 0
	for s, sp := range p.superPop {
		if sp == 0 {
			continue
		}
		base := s * superSize
		end := base + superSize
		if end > len(p.chunkPop) {
			end = len(p.chunkPop)
		}
		for c := base; c < end; c++ {
			n += int(p.chunkPop[c])
		}
	}
	return n
}

// CheckSummaries verifies the two-level occupancy summaries against the
// backing arrays by brute force. For tests and invariant assertions only.
func (p *Phys) CheckSummaries() error {
	superNZ := make([]uint8, len(p.superPop))
	for c, v := range p.trapBits {
		if p.twBits[c]&^v != 0 {
			return fmt.Errorf("mem: chunk %d: tw bits %#x outside trap bits %#x", c, p.twBits[c], v)
		}
		if got, want := p.chunkPop[c], uint8(bits.OnesCount64(v)); got != want {
			return fmt.Errorf("mem: chunk %d: chunkPop %d, want %d", c, got, want)
		}
		if v != 0 {
			superNZ[c/superSize]++
		}
	}
	for s, want := range superNZ {
		if p.superPop[s] != want {
			return fmt.Errorf("mem: super %d: superPop %d, want %d", s, p.superPop[s], want)
		}
	}
	for w, m := range p.ecc {
		if m == 0 || m&(1<<twCheckBit) != 0 {
			return fmt.Errorf("mem: ecc[%d] = %#x holds a zero or Tapeworm-bit entry", w, m)
		}
		if !p.TrappedWord(PAddr(w) * WordBytes) {
			return fmt.Errorf("mem: ecc[%d] set but trap bit clear", w)
		}
	}
	if p.trapRef != nil {
		refNZ := make([]uint8, len(p.refChunk))
		for w, r := range p.trapRef {
			if r == 0 {
				continue
			}
			refNZ[w/chunkWords]++
			if !p.twSet(uint32(w)) {
				return fmt.Errorf("mem: word %d refcounted (%d) but Tapeworm bit clear", w, r)
			}
		}
		refSuperNZ := make([]uint8, len(p.refSuper))
		for c, want := range refNZ {
			if p.refChunk[c] != want {
				return fmt.Errorf("mem: chunk %d: refChunk %d, want %d", c, p.refChunk[c], want)
			}
			if want != 0 {
				refSuperNZ[c/superSize]++
			}
		}
		for s, want := range refSuperNZ {
			if p.refSuper[s] != want {
				return fmt.Errorf("mem: super %d: refSuper %d, want %d", s, p.refSuper[s], want)
			}
		}
	}
	return nil
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

// Stats reports cumulative counts of trap set/clear word operations.
func (p *Phys) Stats() (set, cleared uint64) { return p.trapsSet, p.trapsCleared }

// --- Trap reference counts (gang attach) ---

// EnableTrapRefs allocates the per-word trap reference counts used when
// several simulators share one machine. Idempotent. The pooled arrays are
// owned by the Phys until Release.
//
//twvet:transfer
func (p *Phys) EnableTrapRefs() {
	if p.trapRef == nil {
		var reused bool
		p.trapRef, p.refChunk, p.refSuper, reused = getTrapRefs(p.bytes / WordBytes)
		p.poolGets++
		if reused {
			p.poolReuses++
		}
	}
}

// TrapRefsEnabled reports whether per-word reference counting is active.
func (p *Phys) TrapRefsEnabled() bool { return p.trapRef != nil }

// SetTrapDestroyedHook registers fn to be called (with a word-aligned
// address) whenever a refcounted trap is destroyed by something other than
// ReleaseTrapRef: DMA overwrites, silent write-around clears, true-error
// correction. Pass nil to unregister.
func (p *Phys) SetTrapDestroyedHook(fn func(pa PAddr)) { p.destroyed = fn }

// TrapRefCount returns the reference count of the word containing pa
// (0 when refcounting is disabled). For tests and assertions.
func (p *Phys) TrapRefCount(pa PAddr) int {
	if p.trapRef == nil {
		return 0
	}
	return int(p.trapRef[p.wordIndex(pa)])
}

// refChunkInc records word w's refcount going 0→nonzero in the two-level
// refcount summary. Paired with refChunkDec: every increment must be
// balanced by exactly one decrement when the word's count returns to zero,
// or the summary diverges from trapRef and selective pool zeroing leaks
// stale counts into the next boot.
func (p *Phys) refChunkInc(w uint32) {
	c := w / chunkWords
	if p.refChunk[c] == 0 {
		p.refSuper[c/superSize]++
	}
	p.refChunk[c]++
}

// refChunkDec records word w's refcount going nonzero→0; see refChunkInc.
func (p *Phys) refChunkDec(w uint32) {
	c := w / chunkWords
	p.refChunk[c]--
	if p.refChunk[c] == 0 {
		p.refSuper[c/superSize]--
	}
}

// noteDestroyed zeroes the word's reference count and notifies the gang
// layer. Called from every non-ReleaseTrapRef path that removes the
// Tapeworm check bit of a word while references are outstanding.
//
//twvet:transfer
func (p *Phys) noteDestroyed(w uint32) {
	if p.trapRef == nil || p.trapRef[w] == 0 {
		return
	}
	p.trapRef[w] = 0
	p.refChunkDec(w)
	if p.destroyed != nil {
		p.destroyed(PAddr(w) * WordBytes)
	}
}

// AddTrapRef takes one reference on the trap of the single word containing
// pa, flipping the physical check bit on the 0→1 transition. It reports
// false — and takes no reference — when the word carries a true memory
// error, mirroring SetTrap's refusal to stack corruption on real faults.
// EnableTrapRefs must have been called.
func (c *Controller) AddTrapRef(pa PAddr) bool {
	p := c.phys
	if p.trapRef == nil {
		panic("mem: AddTrapRef without EnableTrapRefs")
	}
	p.ensureOwned()
	w := p.wordIndex(pa)
	if p.trapRef[w] == 0 {
		if p.ecc[w] != 0 {
			return false // true error; never stack corruption
		}
		if !p.twSet(w) {
			p.twBits[w>>6] |= 1 << (w & 63)
			p.syncTrapBit(w)
			p.trapsSet++
		}
		// An already-set bit is an orphaned trap (armed before
		// refcounting began); adopt it without flipping again.
		p.refChunkInc(w)
	}
	if p.trapRef[w] == ^uint8(0) {
		panic("mem: trap reference count overflow")
	}
	p.trapRef[w]++
	return true
}

// ReleaseTrapRef drops one reference on the word containing pa, restoring
// correct ECC when the last reference goes away. Releasing a word whose
// trap was already destroyed (count zero) is a no-op.
func (c *Controller) ReleaseTrapRef(pa PAddr) {
	p := c.phys
	if p.trapRef == nil {
		panic("mem: ReleaseTrapRef without EnableTrapRefs")
	}
	w := p.wordIndex(pa)
	if p.trapRef[w] == 0 {
		return
	}
	p.ensureOwned()
	p.trapRef[w]--
	if p.trapRef[w] != 0 {
		return
	}
	p.refChunkDec(w)
	if p.twSet(w) {
		p.twBits[w>>6] &^= 1 << (w & 63)
		p.syncTrapBit(w)
		p.trapsCleared++
	}
}

// --- ECC state ---

// ECCState returns the corruption mask of the word containing pa
// (0 = correct ECC).
func (p *Phys) ECCState(pa PAddr) uint64 {
	return p.mask(p.wordIndex(pa))
}

// Syndrome classifies the ECC state of one word.
type Syndrome int

const (
	// SynOK: the word's ECC is consistent; no trap.
	SynOK Syndrome = iota
	// SynTapeworm: exactly the Tapeworm check bit is flipped; this trap
	// was set by tw_set_trap and represents a simulated miss.
	SynTapeworm
	// SynSingleBit: a single-bit error in a non-Tapeworm position — a
	// true, correctable memory error.
	SynSingleBit
	// SynDoubleBit: a double-bit (uncorrectable) error — always a true
	// memory error, even while Tapeworm is active.
	SynDoubleBit
)

// String names the syndrome.
func (s Syndrome) String() string {
	switch s {
	case SynOK:
		return "ok"
	case SynTapeworm:
		return "tapeworm-trap"
	case SynSingleBit:
		return "single-bit-error"
	case SynDoubleBit:
		return "double-bit-error"
	}
	return fmt.Sprintf("Syndrome(%d)", int(s))
}

// Classify decodes the corruption mask of the word at pa into a Syndrome.
// The single-error-correcting, double-error-detecting code distinguishes
// exactly these cases (footnote 1 of Section 3.2): a flip of the dedicated
// Tapeworm check bit is a simulated miss; a flip anywhere else, or two or
// more flips, is a true error detected with high probability.
func (p *Phys) Classify(pa PAddr) Syndrome {
	mask := p.mask(p.wordIndex(pa))
	switch popcount(mask) {
	case 0:
		return SynOK
	case 1:
		if mask == 1<<twCheckBit {
			return SynTapeworm
		}
		return SynSingleBit
	default:
		return SynDoubleBit
	}
}

// InjectError flips bit position bit (0..38) of the word at pa, modelling a
// genuine memory fault. Injecting on a word that already carries a Tapeworm
// trap produces a double-bit syndrome, which Tapeworm must report as a true
// error rather than consume as a simulated miss.
func (p *Phys) InjectError(pa PAddr, bit uint) {
	if bit > 38 {
		panic(fmt.Sprintf("mem: ECC bit position %d out of range (0-38)", bit))
	}
	p.ensureOwned()
	w := p.wordIndex(pa)
	if bit == twCheckBit {
		p.twBits[w>>6] ^= 1 << (w & 63)
	} else {
		p.ecc[w] ^= 1 << bit
		if p.ecc[w] == 0 {
			delete(p.ecc, w)
		}
	}
	p.syncTrapBit(w)
	if !p.twSet(w) {
		p.noteDestroyed(w)
	}
}

// CorrectWord restores correct ECC to the word at pa, as the kernel's
// memory-error handler does after correcting a true single-bit error.
func (p *Phys) CorrectWord(pa PAddr) {
	p.ensureOwned()
	w := p.wordIndex(pa)
	hadTrap := p.twSet(w)
	p.twBits[w>>6] &^= 1 << (w & 63)
	delete(p.ecc, w)
	p.syncTrapBit(w)
	if hadTrap {
		p.noteDestroyed(w)
	}
}

// syncTrapBit keeps the dense any-corruption bitset consistent with the
// word's full mask: the machine raises a memory-error trap whenever a
// word's ECC is inconsistent for any reason.
func (p *Phys) syncTrapBit(w uint32) {
	c, b := w>>6, uint64(1)<<(w&63)
	v := p.trapBits[c]
	if p.twBits[c]&b != 0 || p.ecc[w] != 0 {
		v |= b
	} else {
		v &^= b
	}
	p.writeChunk(c, v)
}

// Controller is the memory-controller ASIC diagnostic interface. Tapeworm's
// machine-dependent layer drives it to implement tw_set_trap and
// tw_clear_trap. The interface is deliberately awkward — a flip call per
// word and a multi-step error-address reconstruction — mirroring the
// "convoluted sequence of control instructions" the paper describes; the
// cycle costs of that awkwardness are charged by the machine layer.
type Controller struct {
	phys *Phys
}

// NewController returns the diagnostic controller for phys.
func NewController(phys *Phys) *Controller { return &Controller{phys: phys} }

// FlipTapewormBit toggles the dedicated Tapeworm check bit of every word in
// [pa, pa+size). Flipping a correct word sets a trap; flipping a trapped
// word restores correct ECC. Size is rounded up to whole words.
func (c *Controller) FlipTapewormBit(pa PAddr, size int) {
	if size <= 0 {
		size = WordBytes
	}
	p := c.phys
	p.ensureOwned()
	first, last := p.wordRange(pa, size)
	forChunks(first, last, func(ch uint32, m uint64) {
		if len(p.ecc) == 0 || p.chunkPop[ch] == 0 {
			// No true errors in this chunk (an ecc entry would have its
			// trap bit set, so a zero-population chunk is wholly clean):
			// toggle all covered words in one bitset op.
			wasSet := p.twBits[ch] & m
			p.twBits[ch] ^= m
			p.writeChunk(ch, p.trapBits[ch]&^m|p.twBits[ch]&m)
			if p.trapRef != nil && p.refChunk[ch] != 0 {
				for rem := wasSet; rem != 0; rem &= rem - 1 {
					p.noteDestroyed(ch<<6 + uint32(bits.TrailingZeros64(rem)))
				}
			}
			return
		}
		for rem := m; rem != 0; rem &= rem - 1 {
			w := ch<<6 + uint32(bits.TrailingZeros64(rem))
			p.twBits[ch] ^= 1 << (w & 63)
			p.syncTrapBit(w)
			if !p.twSet(w) {
				p.noteDestroyed(w)
			}
		}
	})
}

// SetTrap sets the Tapeworm trap on [pa, pa+size), idempotently: words
// already trapped by Tapeworm are left alone (flipping twice would clear
// them). Words carrying true errors are also left alone.
func (c *Controller) SetTrap(pa PAddr, size int) {
	if size <= 0 {
		size = WordBytes
	}
	p := c.phys
	p.ensureOwned()
	first, last := p.wordRange(pa, size)
	forChunks(first, last, func(ch uint32, m uint64) {
		if len(p.ecc) == 0 || p.chunkPop[ch] == 0 {
			add := m &^ p.twBits[ch]
			if add == 0 {
				return
			}
			p.twBits[ch] |= add
			p.writeChunk(ch, p.trapBits[ch]|add)
			p.trapsSet += uint64(popcount(add))
			return
		}
		for rem := m; rem != 0; rem &= rem - 1 {
			w := ch<<6 + uint32(bits.TrailingZeros64(rem))
			if p.ecc[w] == 0 && !p.twSet(w) {
				p.twBits[ch] |= 1 << (w & 63)
				p.syncTrapBit(w)
				p.trapsSet++
			}
		}
	})
}

// ClearTrap removes Tapeworm traps from [pa, pa+size). True-error state is
// preserved: clearing a region never masks a genuine fault. Clean chunks —
// the common case when pages are unregistered wholesale — are skipped via
// the occupancy summary without touching the bitset.
func (c *Controller) ClearTrap(pa PAddr, size int) {
	if size <= 0 {
		size = WordBytes
	}
	p := c.phys
	if p.img != nil && !p.Trapped(pa, size) {
		// Still sharing a checkpoint image and the range is clean: nothing
		// to clear, so skip copy-on-write materialization entirely. This
		// keeps trap-free DMA and page teardown on a fork from copying the
		// tables.
		return
	}
	p.ensureOwned()
	first, last := p.wordRange(pa, size)
	forChunks(first, last, func(ch uint32, m uint64) {
		if p.chunkPop[ch] == 0 {
			return
		}
		remove := m & p.twBits[ch]
		if remove == 0 {
			return
		}
		if len(p.ecc) == 0 {
			p.twBits[ch] &^= remove
			p.writeChunk(ch, p.trapBits[ch]&^remove)
			p.trapsCleared += uint64(popcount(remove))
			if p.trapRef != nil && p.refChunk[ch] != 0 {
				for rem := remove; rem != 0; rem &= rem - 1 {
					p.noteDestroyed(ch<<6 + uint32(bits.TrailingZeros64(rem)))
				}
			}
			return
		}
		for rem := remove; rem != 0; rem &= rem - 1 {
			w := ch<<6 + uint32(bits.TrailingZeros64(rem))
			p.twBits[ch] &^= 1 << (w & 63)
			p.syncTrapBit(w)
			p.trapsCleared++
			p.noteDestroyed(w)
		}
	})
}

// ReconstructErrorAddress pieces together the failing physical address from
// the controller's error registers after a memory-error trap. On the real
// ASIC this takes about a dozen load/shift/add/mask instructions; the
// machine layer charges that cost. Here it validates and echoes the
// faulting address, panicking if no error is actually latched there.
func (c *Controller) ReconstructErrorAddress(pa PAddr) PAddr {
	if c.phys.Classify(pa) == SynOK {
		panic(fmt.Sprintf("mem: ReconstructErrorAddress(%#x): no error latched", pa))
	}
	return pa &^ (WordBytes - 1)
}
