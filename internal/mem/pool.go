package mem

// Per-run allocation pooling. Every experiment run boots a fresh machine,
// and the dominant allocations are the dense per-word arrays sized by the
// physical memory geometry: the trap bitset and (for gang runs) the trap
// reference counts. Sweeps boot hundreds of machines with the same frame
// count, so the arrays are recycled through per-size pools; fresh-boot
// semantics are preserved by explicitly zeroing on reuse.

import (
	"sync"
	"sync/atomic"
)

type physBuffers struct {
	trapBits []uint64
	ecc      map[uint32]uint64
}

var (
	physPools   sync.Map // chunk count -> *sync.Pool of *physBuffers
	trapRefPool sync.Map // word count  -> *sync.Pool of []uint8

	poolEnabled atomic.Bool
	poolGets    atomic.Uint64 // buffer requests
	poolReuses  atomic.Uint64 // requests served from the pool
)

func init() { poolEnabled.Store(true) }

// SetPoolEnabled turns the backing-array pools on or off. The bench driver
// disables them to measure the before/after allocation counts; they are on
// by default.
func SetPoolEnabled(on bool) { poolEnabled.Store(on) }

// PoolEnabled reports whether the backing-array pools are active.
func PoolEnabled() bool { return poolEnabled.Load() }

// PoolStats reports how many backing-array requests were made and how many
// were served by reuse instead of a fresh allocation.
func PoolStats() (gets, reuses uint64) { return poolGets.Load(), poolReuses.Load() }

// getPhysBuffers hands a pooled (or fresh) trap bitset and ECC map to the
// caller, which owns them until putPhysBuffers.
//
//twvet:transfer
func getPhysBuffers(chunks int) ([]uint64, map[uint32]uint64) {
	poolGets.Add(1)
	if !poolEnabled.Load() {
		return make([]uint64, chunks), make(map[uint32]uint64)
	}
	p, _ := physPools.LoadOrStore(chunks, &sync.Pool{})
	if b, ok := p.(*sync.Pool).Get().(*physBuffers); ok {
		poolReuses.Add(1)
		clear(b.trapBits)
		clear(b.ecc)
		return b.trapBits, b.ecc
	}
	return make([]uint64, chunks), make(map[uint32]uint64)
}

// putPhysBuffers takes ownership of the arrays back into the pools.
//
//twvet:transfer
func putPhysBuffers(trapBits []uint64, ecc map[uint32]uint64, trapRef []uint8) {
	if !poolEnabled.Load() {
		return
	}
	p, _ := physPools.LoadOrStore(len(trapBits), &sync.Pool{})
	p.(*sync.Pool).Put(&physBuffers{trapBits: trapBits, ecc: ecc})
	if trapRef != nil {
		rp, _ := trapRefPool.LoadOrStore(len(trapRef), &sync.Pool{})
		rp.(*sync.Pool).Put(&trapRef)
	}
}

// frameTables is the kernel frame allocator's backing pair: the free list
// (capacity for every allocatable frame) and the per-frame mapping counts.
type frameTables struct {
	free     []uint32
	refcount []uint16
}

var frameTablePool sync.Map // total frame count -> *sync.Pool of *frameTables

// GetFrameTables returns backing arrays for a frame allocator over
// totalFrames frames: an empty free list with capacity totalFrames and a
// zeroed refcount array of length totalFrames. Recycled arrays are reset
// here so a reused boot is indistinguishable from a fresh one. The caller
// owns the arrays until PutFrameTables.
//
//twvet:transfer
func GetFrameTables(totalFrames int) (free []uint32, refcount []uint16) {
	poolGets.Add(1)
	if poolEnabled.Load() {
		p, _ := frameTablePool.LoadOrStore(totalFrames, &sync.Pool{})
		if b, ok := p.(*sync.Pool).Get().(*frameTables); ok {
			poolReuses.Add(1)
			clear(b.refcount)
			return b.free[:0], b.refcount
		}
	}
	return make([]uint32, 0, totalFrames), make([]uint16, totalFrames)
}

// PutFrameTables recycles a frame allocator's backing arrays.
//
//twvet:transfer
func PutFrameTables(free []uint32, refcount []uint16) {
	if !poolEnabled.Load() || free == nil || refcount == nil {
		return
	}
	p, _ := frameTablePool.LoadOrStore(len(refcount), &sync.Pool{})
	p.(*sync.Pool).Put(&frameTables{free: free, refcount: refcount})
}

// getTrapRefs hands a pooled (or fresh) trap refcount array to the
// caller; putPhysBuffers returns it.
//
//twvet:transfer
func getTrapRefs(words int) []uint8 {
	poolGets.Add(1)
	if !poolEnabled.Load() {
		return make([]uint8, words)
	}
	p, _ := trapRefPool.LoadOrStore(words, &sync.Pool{})
	if r, ok := p.(*sync.Pool).Get().(*[]uint8); ok {
		poolReuses.Add(1)
		clear(*r)
		return *r
	}
	return make([]uint8, words)
}
