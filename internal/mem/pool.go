package mem

// Per-run allocation pooling. Every experiment run boots a fresh machine,
// and the dominant allocations are the dense per-word arrays sized by the
// physical memory geometry: the trap bitsets and (for gang runs) the trap
// reference counts. Sweeps boot hundreds of machines with the same frame
// count, so the arrays are recycled through per-size pools; fresh-boot
// semantics are preserved by zeroing on reuse — selectively, guided by the
// two-level occupancy summaries returned along with the arrays, so reusing
// a mostly-clean 32 MB machine costs a summary walk instead of an 8 MB
// memset.

import (
	"sync"
	"sync/atomic"
)

type physBuffers struct {
	trapBits []uint64
	twBits   []uint64
	chunkPop []uint8
	superPop []uint8
	ecc      map[uint32]uint64
}

// trapRefBuffers pairs the per-word refcount array with its occupancy
// summary so reuse can zero only the dirty chunks.
type trapRefBuffers struct {
	ref      []uint8
	refChunk []uint8
	refSuper []uint8
}

var (
	physPools   sync.Map // chunk count -> *sync.Pool of *physBuffers
	trapRefPool sync.Map // word count  -> *sync.Pool of *trapRefBuffers

	poolEnabled atomic.Bool
	poolGets    atomic.Uint64 // buffer requests
	poolReuses  atomic.Uint64 // requests served from the pool
)

func init() { poolEnabled.Store(true) }

// SetPoolEnabled turns the backing-array pools on or off. The bench driver
// disables them to measure the before/after allocation counts; they are on
// by default.
func SetPoolEnabled(on bool) { poolEnabled.Store(on) }

// PoolEnabled reports whether the backing-array pools are active.
func PoolEnabled() bool { return poolEnabled.Load() }

// PoolStats reports how many backing-array requests were made and how many
// were served by reuse instead of a fresh allocation. The counters are
// process-global: with overlapping runs they sum everyone's traffic, so
// per-run measurement must go through per-owner counts (Phys.PoolCounts,
// kernel frame-table counts) accumulated into a PoolTally instead.
func PoolStats() (gets, reuses uint64) { return poolGets.Load(), poolReuses.Load() }

// PoolTally accumulates pool get/reuse counts attributed to one measured
// scope — a run, a bench suite — from the per-owner counters of the
// machines that ran in it. Unlike the global PoolStats sum, a tally only
// ever sees traffic its own runs generated, so attribution stays exact at
// any -parallel. Add is safe for concurrent use.
type PoolTally struct {
	gets   atomic.Uint64
	reuses atomic.Uint64
}

// Add charges gets/reuses to the tally.
func (t *PoolTally) Add(gets, reuses uint64) {
	t.gets.Add(gets)
	t.reuses.Add(reuses)
}

// Counts returns the accumulated get/reuse counts.
func (t *PoolTally) Counts() (gets, reuses uint64) { return t.gets.Load(), t.reuses.Load() }

// Reset zeroes the tally for the next measurement window.
func (t *PoolTally) Reset() {
	t.gets.Store(0)
	t.reuses.Store(0)
}

// ResetPoolStats zeroes the get/reuse counters; the bench driver calls it
// between phases to report per-phase reuse.
func ResetPoolStats() {
	poolGets.Store(0)
	poolReuses.Store(0)
}

// newPhysBuffers allocates fresh zeroed backing arrays for a bitset of the
// given chunk count.
func newPhysBuffers(chunks int) *physBuffers {
	supers := (chunks + superSize - 1) / superSize
	return &physBuffers{
		trapBits: make([]uint64, chunks),
		twBits:   make([]uint64, chunks),
		chunkPop: make([]uint8, chunks),
		superPop: make([]uint8, supers),
		ecc:      make(map[uint32]uint64),
	}
}

// resetPhysBuffers restores fresh-boot state on a recycled buffer set. The
// occupancy summary names exactly the dirty chunks (Tapeworm bits are a
// subset of the trap bits, so zeroing where chunkPop != 0 covers both
// bitsets), making reuse cost proportional to the prior run's armed
// working set rather than the machine size.
func resetPhysBuffers(b *physBuffers) {
	for s, sp := range b.superPop {
		if sp == 0 {
			continue
		}
		base := s * superSize
		end := base + superSize
		if end > len(b.chunkPop) {
			end = len(b.chunkPop)
		}
		for c := base; c < end; c++ {
			if b.chunkPop[c] != 0 {
				b.trapBits[c] = 0
				b.twBits[c] = 0
				b.chunkPop[c] = 0
			}
		}
		b.superPop[s] = 0
	}
	clear(b.ecc)
}

// getPhysBuffers hands a pooled (or fresh) buffer set to the caller, which
// owns it until putPhysBuffers. The second result reports whether the set
// was served by reuse, so callers can attribute the hit to their own
// per-owner counters.
func getPhysBuffers(chunks int) (*physBuffers, bool) {
	poolGets.Add(1)
	if !poolEnabled.Load() {
		return newPhysBuffers(chunks), false
	}
	p, _ := physPools.LoadOrStore(chunks, &sync.Pool{})
	if b, ok := p.(*sync.Pool).Get().(*physBuffers); ok {
		poolReuses.Add(1)
		resetPhysBuffers(b)
		return b, true
	}
	return newPhysBuffers(chunks), false
}

// putPhysBuffers takes ownership of the arrays back into the pools. The
// buffers keep their end-of-run contents and summaries; zeroing is
// deferred to the next get, where the summaries make it selective.
func putPhysBuffers(b *physBuffers, trapRef, refChunk, refSuper []uint8) {
	if !poolEnabled.Load() {
		return
	}
	p, _ := physPools.LoadOrStore(len(b.trapBits), &sync.Pool{})
	p.(*sync.Pool).Put(b)
	putTrapRefs(trapRef, refChunk, refSuper)
}

// putTrapRefs recycles a trap refcount array set on its own, for forks
// whose dense arrays still belong to a checkpoint image and must not be
// pooled.
func putTrapRefs(ref, refChunk, refSuper []uint8) {
	if ref == nil || !poolEnabled.Load() {
		return
	}
	rp, _ := trapRefPool.LoadOrStore(len(ref), &sync.Pool{})
	rp.(*sync.Pool).Put(&trapRefBuffers{ref: ref, refChunk: refChunk, refSuper: refSuper})
}

// frameTables is the kernel frame allocator's backing pair: the free list
// (capacity for every allocatable frame) and the per-frame mapping counts.
type frameTables struct {
	free     []uint32
	refcount []uint16
}

var frameTablePool sync.Map // total frame count -> *sync.Pool of *frameTables

// GetFrameTables returns backing arrays for a frame allocator over
// totalFrames frames: an empty free list with capacity totalFrames and a
// zeroed refcount array of length totalFrames. Recycled arrays are reset
// here so a reused boot is indistinguishable from a fresh one. The caller
// owns the arrays until PutFrameTables. reused reports a pool hit for
// per-owner attribution.
func GetFrameTables(totalFrames int) (free []uint32, refcount []uint16, reused bool) {
	poolGets.Add(1)
	if poolEnabled.Load() {
		p, _ := frameTablePool.LoadOrStore(totalFrames, &sync.Pool{})
		if b, ok := p.(*sync.Pool).Get().(*frameTables); ok {
			poolReuses.Add(1)
			clear(b.refcount)
			return b.free[:0], b.refcount, true
		}
	}
	return make([]uint32, 0, totalFrames), make([]uint16, totalFrames), false
}

// PutFrameTables recycles a frame allocator's backing arrays.
func PutFrameTables(free []uint32, refcount []uint16) {
	if !poolEnabled.Load() || free == nil || refcount == nil {
		return
	}
	p, _ := frameTablePool.LoadOrStore(len(refcount), &sync.Pool{})
	p.(*sync.Pool).Put(&frameTables{free: free, refcount: refcount})
}

// newTrapRefs allocates fresh zeroed refcount arrays for the given word
// count.
func newTrapRefs(words int) ([]uint8, []uint8, []uint8) {
	chunks := (words + chunkWords - 1) / chunkWords
	supers := (chunks + superSize - 1) / superSize
	return make([]uint8, words), make([]uint8, chunks), make([]uint8, supers)
}

// getTrapRefs hands a pooled (or fresh) trap refcount array and its
// occupancy summary to the caller; putPhysBuffers returns them. Recycled
// arrays are zeroed selectively: the summary names the chunks holding
// nonzero counts.
func getTrapRefs(words int) (ref, refChunk, refSuper []uint8, reused bool) {
	poolGets.Add(1)
	if !poolEnabled.Load() {
		ref, refChunk, refSuper = newTrapRefs(words)
		return ref, refChunk, refSuper, false
	}
	p, _ := trapRefPool.LoadOrStore(words, &sync.Pool{})
	b, ok := p.(*sync.Pool).Get().(*trapRefBuffers)
	if !ok {
		ref, refChunk, refSuper = newTrapRefs(words)
		return ref, refChunk, refSuper, false
	}
	poolReuses.Add(1)
	for s, sp := range b.refSuper {
		if sp == 0 {
			continue
		}
		base := s * superSize
		end := base + superSize
		if end > len(b.refChunk) {
			end = len(b.refChunk)
		}
		for c := base; c < end; c++ {
			if b.refChunk[c] == 0 {
				continue
			}
			lo := c * chunkWords
			hi := lo + chunkWords
			if hi > len(b.ref) {
				hi = len(b.ref)
			}
			clear(b.ref[lo:hi])
			b.refChunk[c] = 0
		}
		b.refSuper[s] = 0
	}
	return b.ref, b.refChunk, b.refSuper, true
}

// PrewarmPools primes the backing-array pools for n concurrent boots of a
// machine with the given geometry, refs of which (refs ≤ n) also carry
// gang trap refcounts. The experiment scheduler calls this once per sweep
// so that even the first wave of parallel boots reuses buffers instead of
// each allocating dense arrays that the pool then holds forever.
//
//twvet:transfer
func PrewarmPools(n, refs, frames, pageSize int) {
	if !poolEnabled.Load() || n <= 0 {
		return
	}
	if err := CheckPhysSize(frames, pageSize); err != nil {
		return
	}
	words := frames * pageSize / WordBytes
	chunks := (words + chunkWords - 1) / chunkWords
	pp, _ := physPools.LoadOrStore(chunks, &sync.Pool{})
	for i := 0; i < n; i++ {
		pp.(*sync.Pool).Put(newPhysBuffers(chunks))
	}
	rp, _ := trapRefPool.LoadOrStore(words, &sync.Pool{})
	for i := 0; i < refs; i++ {
		ref, rc, rs := newTrapRefs(words)
		rp.(*sync.Pool).Put(&trapRefBuffers{ref: ref, refChunk: rc, refSuper: rs})
	}
	fp, _ := frameTablePool.LoadOrStore(frames, &sync.Pool{})
	for i := 0; i < n; i++ {
		fp.(*sync.Pool).Put(&frameTables{
			free:     make([]uint32, 0, frames),
			refcount: make([]uint16, frames),
		})
	}
}
