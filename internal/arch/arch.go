// Package arch describes the privileged-operation capabilities of the
// microprocessors surveyed in the paper's Table 12, and implements the
// mechanism-selection logic of Section 3.2: given a target machine and a
// desired trap granularity, choose the trapping primitive (ECC check bits,
// page valid bits, or breakpoints) that a Tapeworm port would use.
package arch

import (
	"fmt"
	"sort"
)

// Op identifies one of the privileged operations of Table 2/Table 12 that
// are useful building blocks for a trap-driven memory simulator.
type Op int

const (
	// OpECCTraps: trap to the OS kernel after detecting a memory-parity or
	// ECC error; diagnostic reads/writes let software alter check bits.
	OpECCTraps Op = iota
	// OpInstrBreakpoint: trap when a breakpoint instruction is encountered.
	OpInstrBreakpoint
	// OpDataBreakpoint: trap when a specific data location is read/written.
	OpDataBreakpoint
	// OpInvalidPageTraps: trap on access to a page marked invalid.
	OpInvalidPageTraps
	// OpVariablePageSize: hardware support for multiple page sizes.
	OpVariablePageSize
	// OpInstrCounter: an on-chip counter of instructions executed.
	OpInstrCounter

	numOps
)

// String returns the row label used in Table 12.
func (o Op) String() string {
	switch o {
	case OpECCTraps:
		return "Memory Parity or ECC Traps"
	case OpInstrBreakpoint:
		return "Instruction Breakpoint"
	case OpDataBreakpoint:
		return "Data Breakpoint"
	case OpInvalidPageTraps:
		return "Invalid Page Traps"
	case OpVariablePageSize:
		return "Variable Page Size"
	case OpInstrCounter:
		return "Instruction Counters"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Ops returns all operations in Table 12 row order.
func Ops() []Op {
	ops := make([]Op, numOps)
	for i := range ops {
		ops[i] = Op(i)
	}
	return ops
}

// Support records whether a processor implements an operation. The paper's
// table has three states: yes, no, and blank (insufficient data).
type Support int

const (
	// Unknown means insufficient data was available (blank table entry).
	Unknown Support = iota
	// No means the operation is not available.
	No
	// Yes means at least one system with the processor implements it.
	Yes
)

// String renders the Table 12 cell text.
func (s Support) String() string {
	switch s {
	case Yes:
		return "Yes"
	case No:
		return "No"
	}
	return ""
}

// Processor describes one microprocessor column of Table 12 plus the
// system-level properties (Section 4.4) that constrain a Tapeworm port.
type Processor struct {
	Name string
	Ops  map[Op]Support

	// ECCCheckGranularity is the number of bytes covered by one ECC check
	// event. On the DECstation 5000/200, ECC is checked on 4-word cache
	// line refills (16 bytes), limiting simulated line sizes to multiples
	// of this value. Zero when ECC traps are unsupported.
	ECCCheckGranularity int

	// AllocateOnWrite reports whether the cache allocates lines on write
	// misses. The paper's DECstation uses no-allocate-on-write, which
	// silently clears ECC traps without invoking the miss handler and
	// defeats data-cache simulation (Section 4.4).
	AllocateOnWrite bool

	// PageSizes lists supported page sizes in bytes, smallest first.
	PageSizes []int
}

// Has reports whether the processor supports op (Unknown counts as no).
func (p *Processor) Has(op Op) bool { return p.Ops[op] == Yes }

// Table12 returns the full processor matrix from the paper's Table 12.
// A given entry may not hold for every implementation of a processor; an
// affirmative means at least one surveyed system implements the feature.
func Table12() []*Processor {
	mk := func(name string, ecc, ibp, dbp, ipt, vps, ic Support) *Processor {
		return &Processor{
			Name: name,
			Ops: map[Op]Support{
				OpECCTraps:         ecc,
				OpInstrBreakpoint:  ibp,
				OpDataBreakpoint:   dbp,
				OpInvalidPageTraps: ipt,
				OpVariablePageSize: vps,
				OpInstrCounter:     ic,
			},
		}
	}
	procs := []*Processor{
		mk("MIPS R3000", Yes, Yes, No, Yes, No, No),
		mk("MIPS R4000", Yes, Yes, No, Yes, Yes, No),
		mk("SPARC", Yes, Yes, No, Yes, No, No),
		mk("DEC Alpha", Yes, Yes, No, Yes, Yes, Yes),
		mk("Tera", Yes, Yes, Yes, Yes, Unknown, Unknown),
		mk("Intel i486", Unknown, Yes, No, Yes, No, No),
		mk("Intel Pentium", Yes, Yes, No, Yes, Yes, Yes),
		mk("AMD 29050", Unknown, Yes, No, Yes, Yes, No),
		mk("HP PA-RISC", Unknown, Yes, No, Yes, Yes, Unknown),
		mk("PowerPC", Unknown, Yes, No, Yes, Yes, No),
	}
	// System-level details for the ports this repository implements.
	for _, p := range procs {
		switch p.Name {
		case "MIPS R3000":
			p.ECCCheckGranularity = 16 // 4 words x 4 bytes
			p.AllocateOnWrite = false
			p.PageSizes = []int{4096}
		case "MIPS R4000":
			p.ECCCheckGranularity = 16
			p.AllocateOnWrite = false
			p.PageSizes = []int{4096, 16384, 65536, 262144, 1048576}
		case "SPARC":
			// The CM-5 nodes used by the Wisconsin Wind Tunnel allocate
			// on write, which is what makes data-cache simulation possible
			// there [Reinhardt93].
			p.ECCCheckGranularity = 16
			p.AllocateOnWrite = true
			p.PageSizes = []int{4096}
		case "Intel i486":
			p.PageSizes = []int{4096}
		case "DEC Alpha":
			p.ECCCheckGranularity = 32
			p.AllocateOnWrite = false
			p.PageSizes = []int{8192, 65536, 524288, 4194304}
		}
		if p.PageSizes == nil {
			p.PageSizes = []int{4096}
		}
	}
	return procs
}

// ByName returns the Table 12 processor with the given name, or an error
// listing the known names.
func ByName(name string) (*Processor, error) {
	procs := Table12()
	for _, p := range procs {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, len(procs))
	for i, p := range procs {
		names[i] = p.Name
	}
	sort.Strings(names)
	return nil, fmt.Errorf("arch: unknown processor %q (known: %v)", name, names)
}

// Mechanism identifies the trapping primitive selected for a simulation.
type Mechanism int

const (
	// MechNone means no suitable mechanism exists on the processor.
	MechNone Mechanism = iota
	// MechECC sets traps by corrupting ECC/parity check bits; fine
	// granularity (a cache line), suited to cache simulation.
	MechECC
	// MechPageValid sets traps by clearing page valid bits; page
	// granularity, suited to TLB simulation.
	MechPageValid
	// MechBreakpoint plants breakpoint instructions; instruction
	// granularity, usable for instruction-cache simulation in clusters.
	MechBreakpoint
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case MechECC:
		return "ECC check bits"
	case MechPageValid:
		return "page valid bits"
	case MechBreakpoint:
		return "instruction breakpoints"
	}
	return "none"
}

// SelectMechanism chooses the trap primitive for a required trap
// granularity of gran bytes, per Section 3.2: page valid bits for large
// (page-size) granularities, ECC traps (or breakpoints as fallback) for
// line-size granularities. An error explains why no mechanism fits.
func SelectMechanism(p *Processor, gran int) (Mechanism, error) {
	if gran <= 0 {
		return MechNone, fmt.Errorf("arch: invalid trap granularity %d", gran)
	}
	if gran >= p.PageSizes[0] {
		if p.Has(OpInvalidPageTraps) {
			return MechPageValid, nil
		}
		return MechNone, fmt.Errorf("arch: %s lacks invalid-page traps", p.Name)
	}
	if p.Has(OpECCTraps) {
		if p.ECCCheckGranularity > 0 && gran%p.ECCCheckGranularity != 0 {
			return MechNone, fmt.Errorf(
				"arch: %s checks ECC on %d-byte refills; granularity %d is not a multiple",
				p.Name, p.ECCCheckGranularity, gran)
		}
		return MechECC, nil
	}
	if p.Has(OpInstrBreakpoint) {
		return MechBreakpoint, nil
	}
	return MechNone, fmt.Errorf("arch: %s supports no fine-grained trap mechanism", p.Name)
}
