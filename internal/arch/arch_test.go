package arch

import (
	"strings"
	"testing"
)

func TestTable12Shape(t *testing.T) {
	procs := Table12()
	if len(procs) != 10 {
		t.Fatalf("Table 12 has %d processors, want 10", len(procs))
	}
	for _, p := range procs {
		if len(p.Ops) != int(numOps) {
			t.Errorf("%s: %d ops recorded, want %d", p.Name, len(p.Ops), numOps)
		}
		if len(p.PageSizes) == 0 {
			t.Errorf("%s: no page sizes", p.Name)
		}
	}
}

// TestTable12PaperEntries spot-checks cells against the paper's table.
func TestTable12PaperEntries(t *testing.T) {
	cases := []struct {
		proc string
		op   Op
		want Support
	}{
		{"MIPS R3000", OpECCTraps, Yes},
		{"MIPS R3000", OpVariablePageSize, No},
		{"MIPS R3000", OpInstrCounter, No},
		{"MIPS R4000", OpVariablePageSize, Yes},
		{"DEC Alpha", OpInstrCounter, Yes},
		{"Tera", OpDataBreakpoint, Yes},
		{"Intel i486", OpECCTraps, Unknown},
		{"Intel i486", OpInvalidPageTraps, Yes},
		{"Intel Pentium", OpECCTraps, Yes},
		{"Intel Pentium", OpInstrCounter, Yes},
		{"HP PA-RISC", OpDataBreakpoint, No},
		{"PowerPC", OpVariablePageSize, Yes},
	}
	for _, c := range cases {
		p, err := ByName(c.proc)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Ops[c.op]; got != c.want {
			t.Errorf("%s / %s: got %v want %v", c.proc, c.op, got, c.want)
		}
	}
}

func TestOnlyTeraHasDataBreakpoints(t *testing.T) {
	// A striking row of Table 12: every surveyed processor except Tera
	// lacks data breakpoints, which is why ECC tricks are needed at all.
	for _, p := range Table12() {
		want := No
		if p.Name == "Tera" {
			want = Yes
		}
		if p.Ops[OpDataBreakpoint] != want {
			t.Errorf("%s data breakpoints = %v, want %v",
				p.Name, p.Ops[OpDataBreakpoint], want)
		}
	}
}

func TestEveryProcessorHasInvalidPageTraps(t *testing.T) {
	// TLB simulation is portable everywhere: the Invalid Page Traps row of
	// Table 12 is all Yes.
	for _, p := range Table12() {
		if !p.Has(OpInvalidPageTraps) {
			t.Errorf("%s lacks invalid-page traps", p.Name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName("VAX")
	if err == nil {
		t.Fatal("expected error for unknown processor")
	}
	if !strings.Contains(err.Error(), "VAX") {
		t.Errorf("error should name the unknown processor: %v", err)
	}
}

func TestSelectMechanismPageGranularity(t *testing.T) {
	// TLB simulation (page granularity) should use page valid bits on
	// every port, including the i486 where it is the only option.
	for _, name := range []string{"MIPS R3000", "Intel i486", "DEC Alpha"} {
		p, _ := ByName(name)
		m, err := SelectMechanism(p, p.PageSizes[0])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m != MechPageValid {
			t.Errorf("%s page-granularity mechanism = %v, want page valid bits", name, m)
		}
	}
}

func TestSelectMechanismLineGranularity(t *testing.T) {
	r3000, _ := ByName("MIPS R3000")
	m, err := SelectMechanism(r3000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m != MechECC {
		t.Errorf("R3000 16-byte mechanism = %v, want ECC", m)
	}
	// The DECstation checks ECC on 4-word refills, so simulated line sizes
	// must be multiples of 16 bytes (Section 4.4).
	if _, err := SelectMechanism(r3000, 8); err == nil {
		t.Error("8-byte lines should be rejected on the R3000 port")
	}
	if _, err := SelectMechanism(r3000, 32); err != nil {
		t.Errorf("32-byte lines should be accepted: %v", err)
	}
}

func TestSelectMechanismI486FallsBackToBreakpoints(t *testing.T) {
	i486, _ := ByName("Intel i486")
	m, err := SelectMechanism(i486, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m != MechBreakpoint {
		t.Errorf("i486 line-granularity mechanism = %v, want breakpoints", m)
	}
}

func TestSelectMechanismRejectsBadGranularity(t *testing.T) {
	p, _ := ByName("MIPS R3000")
	if _, err := SelectMechanism(p, 0); err == nil {
		t.Error("granularity 0 should be rejected")
	}
	if _, err := SelectMechanism(p, -16); err == nil {
		t.Error("negative granularity should be rejected")
	}
}

func TestStringer(t *testing.T) {
	if OpECCTraps.String() != "Memory Parity or ECC Traps" {
		t.Error("op label mismatch with Table 12 row")
	}
	if Unknown.String() != "" {
		t.Error("unknown support should render as a blank cell")
	}
	if MechECC.String() == "" || MechNone.String() == "" {
		t.Error("mechanisms must have names")
	}
}

func TestSPARCAllocateOnWrite(t *testing.T) {
	// The WWT comparison (Section 2/4.4): allocate-on-write SPARC systems
	// permit data-cache simulation; the no-allocate R3000 does not.
	sparc, _ := ByName("SPARC")
	r3000, _ := ByName("MIPS R3000")
	if !sparc.AllocateOnWrite {
		t.Error("SPARC should allocate on write (CM-5/WWT)")
	}
	if r3000.AllocateOnWrite {
		t.Error("R3000 DECstation is no-allocate-on-write")
	}
}
