package experiment

import (
	"fmt"
	"sort"

	"tapeworm/internal/cache"
	"tapeworm/internal/cache2000"
	"tapeworm/internal/core"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/monster"
	"tapeworm/internal/pixie"
	"tapeworm/internal/sched"
	"tapeworm/internal/telemetry"
	"tapeworm/internal/workload"
)

// runConfig describes one simulated machine run.
type runConfig struct {
	spec     workload.Spec
	seed     uint64 // workload stream seed
	pageSeed uint64 // frame allocator seed (the Table 9 variance knob)
	frames   int

	tw          *core.Config // nil: no Tapeworm attached
	simUser     bool         // register workload fork tree
	simServers  bool         // register X/BSD server pages
	simKernel   bool         // register kernel pages
	noFastPath  bool         // force the per-reference execution path
	noCompile   bool         // force the interpreted workload program
	linearDemux bool         // force the per-member linear gang trap demux

	checkpoint bool // fork the kernel from a cached boot checkpoint
	//twvet:nohash storage-location — where checkpoints persist cannot change results
	checkpointDir string // persist/load checkpoints here (requires checkpoint)
	//twvet:nohash accounting — pool-tally output, never an input to the run
	tally *mem.PoolTally // non-nil: accumulate this run's pool counts

	// gang opts this run into the ganged execution path: it runs as a
	// core.AttachGang member (ledgered traps) even when alone, so its
	// results are identical whether or not runAll groups it with others.
	// Only runs keyed on miss counts opt in; measured-slowdown runs
	// (Figures 2 and 4) need the real dilating machine and stay solo.
	gang bool

	trace *cache2000.Config // non-nil: annotate with Pixie feeding Cache2000

	//twvet:nohash observability — telemetry records the run, it does not steer it
	tel *telemetry.Run // non-nil: record this run's metrics and events
}

// runResult carries everything the experiments read out of a run.
type runResult struct {
	snap     monster.Snapshot
	seconds  float64
	comp     [kernel.NumComponents]uint64 // instructions per component
	bsdInstr uint64
	xInstr   uint64
	tasks    int
	counters mach.Counters

	twStats  core.Stats
	twByComp [kernel.NumComponents]uint64
	twEst    float64 // sampling-scaled miss estimate
	mech     string  // trap mechanism name (instrumented runs only)

	c2kHits, c2kMisses uint64
	pixieRefs          uint64
}

// run executes one workload to completion on a freshly booted machine.
func run(rc runConfig) (runResult, error) {
	var res runResult
	if rc.frames <= 0 {
		// Callers validate Options.Frames up front (Options.Validate);
		// this guard only fills the default for internal configs that
		// leave frames unset on purpose.
		rc.frames = 8192
	}
	kcfg := kernel.DefaultConfig(mach.DECstation5000_200(rc.frames), rc.seed)
	kcfg.PageSeed = rc.pageSeed
	kcfg.Telemetry = rc.tel
	kcfg.Machine.NoFastPath = rc.noFastPath
	k, release, err := bootKernel(rc, kcfg)
	if err != nil {
		return res, err
	}
	// Deferred so error returns below recycle the pooled boot buffers too;
	// an early return used to leak them for the rest of the sweep. The
	// pool tally must read the kernel's counters before release recycles
	// the buffers they describe.
	defer func() {
		if rc.tally != nil {
			rc.tally.Add(k.PoolCounts())
		}
		release()
	}()

	var tw *core.Tapeworm
	if rc.tw != nil {
		tw, err = core.Attach(k, *rc.tw)
		if err != nil {
			return res, err
		}
	}

	prog, err := newWorkloadProgram(rc)
	if err != nil {
		return res, err
	}
	task := k.Spawn(rc.spec.Name, prog, rc.simUser, rc.simUser)

	if tw != nil {
		if rc.simServers {
			for _, kind := range []kernel.ServerKind{kernel.BSDServer, kernel.XServer} {
				if st := k.Server(kind); st != nil {
					if err := tw.Attributes(st.ID, true, false); err != nil {
						return res, err
					}
				}
			}
		}
		if rc.simKernel {
			if err := tw.Attributes(mem.KernelTask, true, false); err != nil {
				return res, err
			}
		}
	}

	var c2k *cache2000.Simulator
	var ann *pixie.Annotator
	if rc.trace != nil {
		c2k, err = cache2000.New(*rc.trace)
		if err != nil {
			return res, err
		}
		c2k.BindMachine(k.Machine())
		ann = pixie.NewOnTheFly(k.Machine(), c2k)
		ann.IOnly = len(rc.trace.Kinds) == 1 && rc.trace.Kinds[0] == mem.IFetch
		ann.Annotate(k, task.ID)
	}

	if err := k.Run(0); err != nil {
		return res, err
	}

	m := k.Machine()
	res.snap = monster.Snap(m)
	res.seconds = m.Seconds(m.Cycles())
	res.comp = k.ComponentInstructions()
	if t := k.Server(kernel.BSDServer); t != nil {
		res.bsdInstr = t.Instructions
	}
	if t := k.Server(kernel.XServer); t != nil {
		res.xInstr = t.Instructions
	}
	res.tasks = k.Stats().UserSpawned
	res.counters = m.Counters()
	if tw != nil {
		res.twStats = tw.Stats()
		res.twByComp = tw.MissesByComponent()
		res.twEst = tw.EstimatedMisses()
		res.mech = tw.MechanismName()
	}
	if c2k != nil {
		res.c2kHits, res.c2kMisses = c2k.Hits(), c2k.Misses()
		res.pixieRefs = ann.Refs()
	}
	if rc.tel != nil {
		k.ReportTelemetry()
		if tw != nil {
			tw.ReportTelemetry()
		}
		if c2k != nil {
			rc.tel.SetCounter("c2k_hits", res.c2kHits)
			rc.tel.SetCounter("c2k_misses", res.c2kMisses)
			rc.tel.SetCounter("pixie_refs", res.pixieRefs)
		}
	}
	return res, nil
}

// bootKernel produces the run's kernel: a fresh Boot, or — when the run
// opts into checkpointing — a Fork from the process-wide cached boot
// checkpoint for kcfg's (seed, pageSeed, frames) identity. The returned
// release closure recycles the kernel's pooled buffers either way; the
// caller must defer it (the twvet pairing pass accounts Boot/Fork against
// it through this transfer).
//
//twvet:transfer
func bootKernel(rc runConfig, kcfg kernel.Config) (*kernel.Kernel, func(), error) {
	if !rc.checkpoint {
		k, err := kernel.Boot(kcfg)
		if err != nil {
			return nil, nil, err
		}
		return k, k.ReleaseBuffers, nil
	}
	cp, err := cachedCheckpoint(kcfg, rc.checkpointDir)
	if err != nil {
		return nil, nil, err
	}
	k, err := kernel.Fork(cp, kcfg)
	if err != nil {
		return nil, nil, err
	}
	return k, k.ReleaseCheckpoint, nil
}

// runGang executes a group of runs that share one workload execution: one
// booted machine in ledgered-trap mode, one core.Gang of simulators, one
// pass over the reference stream. Every rcs[i] must agree on everything
// but tw (the grouping key runAll builds). Each member's statistics are
// identical to what a group of one would produce; the per-member snapshot
// adds the member's private overhead ledger to the shared (undilated)
// machine clock, which is exactly the clock its solo ledgered run shows.
func runGang(rcs []runConfig) ([]runResult, error) {
	rc0 := rcs[0]
	if rc0.frames <= 0 {
		rc0.frames = 8192
	}
	kcfg := kernel.DefaultConfig(mach.DECstation5000_200(rc0.frames), rc0.seed)
	kcfg.PageSeed = rc0.pageSeed
	// Kernel- and machine-level telemetry (trap events, machine counters)
	// describe the shared execution; they ride on the first member's run.
	kcfg.Telemetry = rc0.tel
	kcfg.Machine.NoFastPath = rc0.noFastPath
	k, release, err := bootKernel(rc0, kcfg)
	if err != nil {
		return nil, err
	}
	// As in run: deferred so the attach/spawn error paths recycle the
	// pooled boot buffers instead of leaking them, with the pool tally
	// read before the counters' buffers go back to the pool.
	defer func() {
		if rc0.tally != nil {
			rc0.tally.Add(k.PoolCounts())
		}
		release()
	}()

	cfgs := make([]core.Config, len(rcs))
	for i, rc := range rcs {
		cfgs[i] = *rc.tw
	}
	g, err := core.AttachGang(k, cfgs)
	if err != nil {
		return nil, err
	}
	g.SetLinearDemux(rc0.linearDemux)
	for i, tw := range g.Members() {
		tw.SetTelemetry(rcs[i].tel)
		if rc0.simServers {
			for _, kind := range []kernel.ServerKind{kernel.BSDServer, kernel.XServer} {
				if st := k.Server(kind); st != nil {
					if err := tw.Attributes(st.ID, true, false); err != nil {
						return nil, err
					}
				}
			}
		}
		if rc0.simKernel {
			if err := tw.Attributes(mem.KernelTask, true, false); err != nil {
				return nil, err
			}
		}
	}

	prog, err := newWorkloadProgram(rc0)
	if err != nil {
		return nil, err
	}
	k.Spawn(rc0.spec.Name, prog, rc0.simUser, rc0.simUser)

	if err := k.Run(0); err != nil {
		return nil, err
	}

	m := k.Machine()
	base := monster.Snap(m)
	shared := runResult{
		comp:     k.ComponentInstructions(),
		tasks:    k.Stats().UserSpawned,
		counters: m.Counters(),
	}
	if t := k.Server(kernel.BSDServer); t != nil {
		shared.bsdInstr = t.Instructions
	}
	if t := k.Server(kernel.XServer); t != nil {
		shared.xInstr = t.Instructions
	}
	if rc0.tel != nil {
		k.ReportTelemetry()
	}

	out := make([]runResult, len(rcs))
	for i, tw := range g.Members() {
		res := shared
		ledger := tw.LedgerCycles()
		res.snap = base
		res.snap.Cycles += ledger
		res.snap.OverheadCycles += ledger
		res.seconds = m.Seconds(res.snap.Cycles)
		res.twStats = tw.Stats()
		res.twByComp = tw.MissesByComponent()
		res.twEst = tw.EstimatedMisses()
		res.mech = tw.MechanismName()
		if tel := rcs[i].tel; tel != nil {
			tw.ReportTelemetry()
			tel.SetTiming(res.snap.Cycles, res.snap.OverheadCycles, res.snap.Instructions)
		}
		out[i] = res
	}
	return out, nil
}

// newWorkloadProgram builds the run's workload program: the compiled
// replay by default (cached across the trials, gang members and
// fast/baseline pairs that share a (spec, seed) stream), or the
// interpreter when the run opts out. The two are stream-identical, so
// every table is byte-identical either way; the verify-compiled gate
// enforces it.
func newWorkloadProgram(rc runConfig) (kernel.Program, error) {
	if rc.noCompile {
		return workload.New(rc.spec, rc.seed)
	}
	return workload.NewPlanned(rc.spec, rc.seed)
}

// normalConfig describes an uninstrumented run of the workload,
// establishing the "Normal Workload Run Time" denominator of the slowdown
// metric.
func normalConfig(o Options, spec workload.Spec, trial uint64) runConfig {
	return runConfig{
		spec:     spec,
		seed:     o.Seed,
		pageSeed: o.Seed ^ (trial * 0x9e3779b9),
		frames:   o.Frames,
	}
}

// runJob pairs a run configuration with an optional progress formatter,
// invoked (serialized) when the run completes.
type runJob struct {
	cfg      runConfig
	progress func(runResult) string
}

// gangKey is the grouping key for ganged execution: jobs agreeing on all
// of it observe the same reference stream and can share one machine run.
type gangKey struct {
	spec           string
	seed, pageSeed uint64
	frames         int
	simUser        bool
	simServers     bool
	simKernel      bool
}

// runAll executes the jobs' machine runs on a sched worker pool bounded by
// o.Parallelism, and returns the results in submission order. Jobs whose
// configs opt into ganging (runConfig.gang) and share a gangKey run as ONE
// machine execution driving all their simulators (core.AttachGang); gangs
// are the unit of scheduling. A gang-opted job always takes the ganged
// path — alone when o.NoGang suppresses grouping — so its results are
// byte-identical whether grouping is on or off, at any parallelism.
// Because results are index-ordered, every table assembled from them is
// byte-identical to a serial execution. Progress lines and telemetry
// commits are re-sequenced into original submission order through a
// held-back heap — one line per configuration even when a gang completes
// many at once; when neither is requested the scheduler runs with no
// completion callback at all.
func runAll(o Options, jobs []runJob) ([]runResult, error) {
	// Partition into execution groups preserving original job indices.
	groups := make([][]int, 0, len(jobs))
	byKey := make(map[gangKey]int)
	for i, j := range jobs {
		rc := j.cfg
		if !rc.gang || rc.tw == nil || rc.trace != nil {
			groups = append(groups, []int{i})
			continue
		}
		key := gangKey{rc.spec.Name, rc.seed, rc.pageSeed, rc.frames,
			rc.simUser, rc.simServers, rc.simKernel}
		if o.NoGang {
			groups = append(groups, []int{i})
			continue
		}
		if gi, ok := byKey[key]; ok {
			groups[gi] = append(groups[gi], i)
			continue
		}
		byKey[key] = len(groups)
		groups = append(groups, []int{i})
	}

	tels := make([]*telemetry.Run, len(jobs))
	sj := make([]sched.Job[[]runResult], len(groups))
	for gi := range groups {
		idx := groups[gi]
		sj[gi] = func() ([]runResult, error) {
			// Telemetry runs are named by original job index, so solo and
			// ganged runs of the same sweep produce the same run names.
			rcs := make([]runConfig, len(idx))
			for mi, i := range idx {
				rcs[mi] = jobs[i].cfg
				rcs[mi].noFastPath = o.NoFastPath
				rcs[mi].noCompile = o.NoCompile
				rcs[mi].linearDemux = o.LinearGangDemux
				rcs[mi].checkpoint = o.Checkpoint
				rcs[mi].checkpointDir = o.CheckpointDir
				rcs[mi].tally = o.PoolTally
				rcs[mi].tel = o.Telemetry.StartRun(fmt.Sprintf("run%d", i))
				tels[i] = rcs[mi].tel
			}
			// A cache hit simulates nothing, so it can emit no trap
			// events; with telemetry on, every run stays fresh.
			if o.ResultCache && o.Telemetry == nil {
				return runGroupCached(o, rcs)
			}
			if !rcs[0].gang {
				r, err := run(rcs[0])
				return []runResult{r}, err
			}
			return execGang(o, rcs)
		}
	}

	prewarmPools(o, jobs, groups)

	var done func(int, []runResult)
	if o.Progress != nil || o.Telemetry != nil {
		// sched serializes done calls under a mutex, which is the external
		// serialization the Orderer requires; the same mutex makes the
		// tels[i] writes in the workers visible here. The Orderer runs
		// over original job indices: a finished gang Puts one entry per
		// member, and each member's progress line and telemetry commit
		// still appear in submission order.
		ord := telemetry.NewOrderer[runResult](func(i int, r runResult) {
			o.Telemetry.Commit(tels[i])
			if o.Progress != nil {
				if f := jobs[i].progress; f != nil {
					o.Progress(f(r))
				}
			}
		})
		done = func(gi int, rs []runResult) {
			for mi, i := range groups[gi] {
				ord.Put(i, rs[mi])
			}
		}
	}
	grs, err := sched.Run(o.Parallelism, sj, done)
	if err != nil {
		return nil, err
	}
	out := make([]runResult, len(jobs))
	for gi, idx := range groups {
		for mi, i := range idx {
			out[i] = grs[gi][mi]
		}
	}
	return out, nil
}

// prewarmPools primes the mem backing-array pools for the sweep's first
// wave of parallel boots: one buffer set per worker that will run
// concurrently at each machine geometry, plus gang trap-refcount arrays
// for the groups taking the ganged path. Without this the first
// o.Parallelism boots each allocate dense arrays cold and the pool only
// pays off from the second wave on (the pool_reuses 2-of-12 pattern the
// bench JSON used to show).
func prewarmPools(o Options, jobs []runJob, groups [][]int) {
	type want struct{ boots, gangs int }
	byFrames := make(map[int]want)
	for _, idx := range groups {
		rc := jobs[idx[0]].cfg
		f := rc.frames
		if f <= 0 {
			f = 8192
		}
		w := byFrames[f]
		w.boots++
		if rc.gang {
			w.gangs++
		}
		byFrames[f] = w
	}
	par := o.Parallelism
	if par <= 0 {
		par = 1
	}
	frames := make([]int, 0, len(byFrames))
	for f := range byFrames {
		frames = append(frames, f)
	}
	sort.Ints(frames)
	for _, f := range frames {
		w := byFrames[f]
		n := w.boots
		if n > par {
			n = par
		}
		refs := w.gangs
		if refs > par {
			refs = par
		}
		mem.PrewarmPools(n, refs, f, mach.DECstation5000_200(f).PageSize)
	}
}

// slowdown implements the paper's definition against a matching normal
// run: overhead time over normal run time.
func slowdown(instrumented, normal runResult) float64 {
	return monster.Slowdown(instrumented.snap, normal.snap)
}

// dmICache builds the workhorse configuration of the evaluation: a
// direct-mapped instruction cache with 4-word (16-byte) lines.
func dmICache(sizeBytes int, indexing cache.Indexing, s core.Sampling) *core.Config {
	return &core.Config{
		Mode: core.ModeICache,
		Cache: cache.Config{
			Size: sizeBytes, LineSize: 16, Assoc: 1, Indexing: indexing,
		},
		Sampling: s,
	}
}

// mustSpec fetches a workload spec at the option scale.
func mustSpec(o Options, name string) (workload.Spec, error) {
	spec, err := workload.ByName(name, o.Scale)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("experiment: %w", err)
	}
	return spec, nil
}
