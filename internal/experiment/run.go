package experiment

import (
	"fmt"

	"tapeworm/internal/cache"
	"tapeworm/internal/cache2000"
	"tapeworm/internal/core"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/monster"
	"tapeworm/internal/pixie"
	"tapeworm/internal/sched"
	"tapeworm/internal/telemetry"
	"tapeworm/internal/workload"
)

// runConfig describes one simulated machine run.
type runConfig struct {
	spec     workload.Spec
	seed     uint64 // workload stream seed
	pageSeed uint64 // frame allocator seed (the Table 9 variance knob)
	frames   int

	tw         *core.Config // nil: no Tapeworm attached
	simUser    bool         // register workload fork tree
	simServers bool         // register X/BSD server pages
	simKernel  bool         // register kernel pages
	noFastPath bool         // force the per-reference execution path

	trace *cache2000.Config // non-nil: annotate with Pixie feeding Cache2000

	tel *telemetry.Run // non-nil: record this run's metrics and events
}

// runResult carries everything the experiments read out of a run.
type runResult struct {
	snap     monster.Snapshot
	seconds  float64
	comp     [kernel.NumComponents]uint64 // instructions per component
	bsdInstr uint64
	xInstr   uint64
	tasks    int
	counters mach.Counters

	twStats  core.Stats
	twByComp [kernel.NumComponents]uint64
	twEst    float64 // sampling-scaled miss estimate

	c2kHits, c2kMisses uint64
	pixieRefs          uint64
}

// run executes one workload to completion on a freshly booted machine.
func run(rc runConfig) (runResult, error) {
	var res runResult
	if rc.frames <= 0 {
		// Callers validate Options.Frames up front (Options.Validate);
		// this guard only fills the default for internal configs that
		// leave frames unset on purpose.
		rc.frames = 8192
	}
	kcfg := kernel.DefaultConfig(mach.DECstation5000_200(rc.frames), rc.seed)
	kcfg.PageSeed = rc.pageSeed
	kcfg.Telemetry = rc.tel
	kcfg.Machine.NoFastPath = rc.noFastPath
	k, err := kernel.Boot(kcfg)
	if err != nil {
		return res, err
	}

	var tw *core.Tapeworm
	if rc.tw != nil {
		tw, err = core.Attach(k, *rc.tw)
		if err != nil {
			return res, err
		}
	}

	prog, err := workload.New(rc.spec, rc.seed)
	if err != nil {
		return res, err
	}
	task := k.Spawn(rc.spec.Name, prog, rc.simUser, rc.simUser)

	if tw != nil {
		if rc.simServers {
			for _, kind := range []kernel.ServerKind{kernel.BSDServer, kernel.XServer} {
				if st := k.Server(kind); st != nil {
					if err := tw.Attributes(st.ID, true, false); err != nil {
						return res, err
					}
				}
			}
		}
		if rc.simKernel {
			if err := tw.Attributes(mem.KernelTask, true, false); err != nil {
				return res, err
			}
		}
	}

	var c2k *cache2000.Simulator
	var ann *pixie.Annotator
	if rc.trace != nil {
		c2k, err = cache2000.New(*rc.trace)
		if err != nil {
			return res, err
		}
		c2k.BindMachine(k.Machine())
		ann = pixie.NewOnTheFly(k.Machine(), c2k)
		ann.IOnly = len(rc.trace.Kinds) == 1 && rc.trace.Kinds[0] == mem.IFetch
		ann.Annotate(k, task.ID)
	}

	if err := k.Run(0); err != nil {
		return res, err
	}

	m := k.Machine()
	res.snap = monster.Snap(m)
	res.seconds = m.Seconds(m.Cycles())
	res.comp = k.ComponentInstructions()
	if t := k.Server(kernel.BSDServer); t != nil {
		res.bsdInstr = t.Instructions
	}
	if t := k.Server(kernel.XServer); t != nil {
		res.xInstr = t.Instructions
	}
	res.tasks = k.Stats().UserSpawned
	res.counters = m.Counters()
	if tw != nil {
		res.twStats = tw.Stats()
		res.twByComp = tw.MissesByComponent()
		res.twEst = tw.EstimatedMisses()
	}
	if c2k != nil {
		res.c2kHits, res.c2kMisses = c2k.Hits(), c2k.Misses()
		res.pixieRefs = ann.Refs()
	}
	if rc.tel != nil {
		k.ReportTelemetry()
		if tw != nil {
			tw.ReportTelemetry()
		}
		if c2k != nil {
			rc.tel.SetCounter("c2k_hits", res.c2kHits)
			rc.tel.SetCounter("c2k_misses", res.c2kMisses)
			rc.tel.SetCounter("pixie_refs", res.pixieRefs)
		}
	}
	return res, nil
}

// normalConfig describes an uninstrumented run of the workload,
// establishing the "Normal Workload Run Time" denominator of the slowdown
// metric.
func normalConfig(o Options, spec workload.Spec, trial uint64) runConfig {
	return runConfig{
		spec:     spec,
		seed:     o.Seed,
		pageSeed: o.Seed ^ (trial * 0x9e3779b9),
		frames:   o.Frames,
	}
}

// runJob pairs a run configuration with an optional progress formatter,
// invoked (serialized) when the run completes.
type runJob struct {
	cfg      runConfig
	progress func(runResult) string
}

// runAll executes the jobs' machine runs — each a fully independent
// simulation booting its own kernel — on a sched worker pool bounded by
// o.Parallelism, and returns the results in submission order. Because
// results are index-ordered, every table assembled from them is
// byte-identical to a serial execution. Progress lines and telemetry
// commits are re-sequenced into submission order through a held-back
// heap, so those side channels are deterministic too; when neither is
// requested the scheduler runs with no completion callback at all.
func runAll(o Options, jobs []runJob) ([]runResult, error) {
	tels := make([]*telemetry.Run, len(jobs))
	sj := make([]sched.Job[runResult], len(jobs))
	for i := range jobs {
		rc := jobs[i].cfg
		rc.noFastPath = o.NoFastPath
		sj[i] = func() (runResult, error) {
			rc.tel = o.Telemetry.StartRun(fmt.Sprintf("run%d", i))
			tels[i] = rc.tel
			return run(rc)
		}
	}
	var done func(int, runResult)
	if o.Progress != nil || o.Telemetry != nil {
		// sched serializes done calls under a mutex, which is the external
		// serialization the Orderer requires; the same mutex makes the
		// tels[i] write in the worker visible here.
		ord := telemetry.NewOrderer[runResult](func(i int, r runResult) {
			o.Telemetry.Commit(tels[i])
			if o.Progress != nil {
				if f := jobs[i].progress; f != nil {
					o.Progress(f(r))
				}
			}
		})
		done = ord.Put
	}
	return sched.Run(o.Parallelism, sj, done)
}

// slowdown implements the paper's definition against a matching normal
// run: overhead time over normal run time.
func slowdown(instrumented, normal runResult) float64 {
	return monster.Slowdown(instrumented.snap, normal.snap)
}

// dmICache builds the workhorse configuration of the evaluation: a
// direct-mapped instruction cache with 4-word (16-byte) lines.
func dmICache(sizeBytes int, indexing cache.Indexing, s core.Sampling) *core.Config {
	return &core.Config{
		Mode: core.ModeICache,
		Cache: cache.Config{
			Size: sizeBytes, LineSize: 16, Assoc: 1, Indexing: indexing,
		},
		Sampling: s,
	}
}

// mustSpec fetches a workload spec at the option scale.
func mustSpec(o Options, name string) (workload.Spec, error) {
	spec, err := workload.ByName(name, o.Scale)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("experiment: %w", err)
	}
	return spec, nil
}
