package experiment

import (
	"fmt"
	"strings"
	"testing"

	"tapeworm/internal/telemetry"
)

// TestGangDeterminism is the in-process version of the `make verify-gang`
// gate: gang-eligible experiments must render byte-identical tables with
// grouping on and off, serial and parallel. figure3 gangs an entire sweep
// into one execution; table8 gangs per trial; table6 exercises the
// gang-of-one path (its jobs differ in component flags, so nothing
// groups).
func TestGangDeterminism(t *testing.T) {
	for _, id := range []string{"figure3", "table8", "table6"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fn, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(parallelism int, noGang bool) string {
				o := parallelOptions(parallelism)
				o.NoGang = noGang
				tab, err := fn(o)
				if err != nil {
					t.Fatal(err)
				}
				return tab.Render()
			}
			ganged := render(1, false)
			for _, c := range []struct {
				label string
				got   string
			}{
				{"solo -parallel 1", render(1, true)},
				{"ganged -parallel 8", render(8, false)},
				{"solo -parallel 8", render(8, true)},
			} {
				if c.got != ganged {
					t.Errorf("%s: %s differs from ganged serial render:\n--- ganged ---\n%s\n--- %s ---\n%s",
						id, c.label, ganged, c.label, c.got)
				}
			}
		})
	}
}

// TestGangProgressOrder: a gang completes many configurations at once, but
// progress lines must still arrive one per configuration in submission
// order — identical to the solo-run sequence.
func TestGangProgressOrder(t *testing.T) {
	collect := func(noGang bool, parallelism int) []string {
		o := parallelOptions(parallelism)
		o.NoGang = noGang
		var got []string
		o.Progress = func(line string) { got = append(got, line) } // relies on scheduler serialization
		if _, err := Table8(o); err != nil {
			t.Fatal(err)
		}
		return got
	}
	solo := collect(true, 1)
	if len(solo) == 0 {
		t.Fatal("no progress lines emitted")
	}
	for _, line := range solo {
		if !strings.HasPrefix(line, "table8:") {
			t.Fatalf("unexpected progress line %q", line)
		}
	}
	for _, c := range []struct {
		label  string
		noGang bool
		par    int
	}{
		{"ganged serial", false, 1},
		{"ganged parallel", false, 8},
		{"solo parallel", true, 8},
	} {
		got := collect(c.noGang, c.par)
		if len(got) != len(solo) {
			t.Fatalf("%s: %d progress lines, want %d", c.label, len(got), len(solo))
		}
		for i := range solo {
			if got[i] != solo[i] {
				t.Errorf("%s: line %d = %q, want %q (submission order)", c.label, i, got[i], solo[i])
			}
		}
	}
}

// TestGangTelemetryKeepsTablesIdentical: enabling telemetry must not
// change a ganged table's bytes (nothing rendered flows through
// telemetry), and per-run telemetry names must match the solo naming so
// downstream tooling sees the same run set.
func TestGangTelemetryKeepsTablesIdentical(t *testing.T) {
	o := parallelOptions(2)
	base, err := Table8(o)
	if err != nil {
		t.Fatal(err)
	}
	coll := telemetry.New(telemetry.Config{})
	coll.SetScope("table8")
	o.Telemetry = coll
	withTel, err := Table8(o)
	if err != nil {
		t.Fatal(err)
	}
	if base.Render() != withTel.Render() {
		t.Error("table8 render changed when telemetry was enabled on ganged runs")
	}
	rep := coll.Snapshot()
	if len(rep.Experiments) != 1 || rep.Experiments[0].Totals.Runs == 0 {
		t.Fatal("telemetry recorded no runs for ganged table8")
	}
	// Ganged runs must keep the solo run naming (one run per original job
	// index) so downstream tooling sees the same run set either way.
	runs := rep.Experiments[0].Runs
	for i, r := range runs {
		if want := fmt.Sprintf("run%d", i); r.Name != want {
			t.Errorf("run %d named %q, want %q", i, r.Name, want)
		}
	}
}
