package experiment

// Representative-interval simulation. An exhaustive ganged run simulates
// every reference of the workload; most of that work is redundant when
// the stream cycles through a few behavioral phases. The interval path
// splits the work in two:
//
//  1. One UNINSTRUMENTED profiling pass per (spec, seed, pageSeed,
//     frames, phase-geometry) identity. It fast-forwards the compiled
//     stream at full replay speed, captures a mid-run checkpoint
//     (kernel.CaptureAt) at each representative's warm-up start, records
//     the machine-instruction marks of each representative's measure
//     window, runs to completion, and keeps the exhaustive
//     uninstrumented result as the shared base. Gang ledgered mode keeps
//     the machine clock undilated, so this base is exactly the shared
//     execution an exhaustive gang would observe.
//
//  2. Per representative, a short INSTRUMENTED replay: fork the
//     checkpoint (kernel.ForkRun), attach the whole gang with
//     core.Window set to the recorded marks, re-register the resident
//     pages, and run only to the window's end. The fork resumes with
//     cold host caches, which shifts its timing against the profiling
//     continuation deterministically; the warm-up in front of every
//     window absorbs that shift, and the residue is part of the error
//     budget `make verify-intervals` gates empirically (≤2% miss-ratio
//     error at paper scale).
//
// Full-run statistics are synthesized by weighted extrapolation: each
// representative's windowed counts scale by its cluster's
// user-instruction mass over the window's own mass (phase.Plan). The
// result is NOT byte-identical to the exhaustive run — interval mode is
// error-bound-gated, not byte-gated — but it is deterministic: the same
// options produce the same tables at any parallelism.
//
// Eligibility mirrors the gang path plus compiled replay (mid-run
// checkpoints need resumable cursors): gang-opted groups, no tracer, no
// telemetry, compiled workloads. Ineligible groups fall back to the
// exhaustive path, so tables stay byte-identical when -phase-intervals
// is off.

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"sync"

	"tapeworm/internal/core"
	"tapeworm/internal/kernel"
	"tapeworm/internal/mach"
	"tapeworm/internal/mem"
	"tapeworm/internal/monster"
	"tapeworm/internal/phase"
	"tapeworm/internal/workload"
)

// errIntervalFallback marks a group that cannot take the interval path
// (stream beyond the compile budget); execGang falls back to the
// exhaustive gang.
var errIntervalFallback = errors.New("experiment: interval replay unavailable")

// phaseGeom folds the option triple into the checkpoint cache's geometry
// stamp.
func phaseGeom(o Options) ckGeom {
	return ckGeom{intervals: o.PhaseIntervals, k: o.PhaseK, warmup: o.PhaseWarmup}
}

// execGang runs one gang-eligible group: through representative-interval
// replay when the options enable it and the group qualifies, otherwise
// exhaustively. Both runAll and the result cache's partial-group path
// funnel gang execution through here, so a cached sweep and a fresh one
// take the same engine.
func execGang(o Options, rcs []runConfig) ([]runResult, error) {
	rc0 := rcs[0]
	if o.PhaseIntervals > 0 && rc0.tel == nil && rc0.trace == nil && !rc0.noCompile {
		rs, err := runGangIntervals(o, rcs)
		if err == nil || !errors.Is(err, errIntervalFallback) {
			return rs, err
		}
	}
	return runGang(rcs)
}

// intervalMark records where one representative's window sits: the
// user-instruction position its checkpoint froze the stream at, and the
// machine-instruction bounds of its measure window in the profiling
// timeline (which ForkRun restores, so the window reads the same clock).
type intervalMark struct {
	capUser uint64
	mStart  uint64
	mEnd    uint64
}

// intervalProfile is everything one profiling pass learns: the phase
// plan, the per-representative marks, and the exhaustive uninstrumented
// base result. The checkpoints themselves live in the process-wide
// checkpoint cache (interval-keyed); if one is evicted, the profile is
// re-run to recapture.
type intervalProfile struct {
	plan  phase.Plan
	marks []intervalMark
	base  runResult
}

// profileKey identifies one profiling pass. Execution-path toggles that
// provably do not change results (fastpath, demux, boot checkpointing)
// are excluded: the marks and base they produce are identical.
type profileKey struct {
	spec     workload.Spec
	seed     uint64
	pageSeed uint64
	frames   int
	geom     ckGeom
}

type profileEntry struct {
	once sync.Once
	p    *intervalProfile
	err  error
	gen  uint64
}

// maxCachedProfiles bounds the profile cache. Entries are small (marks
// plus one runResult); the bound exists to drop profiles of finished
// sweeps, matching the other process-wide caches.
const maxCachedProfiles = 8

var (
	profileMu    sync.Mutex
	profileCache = map[profileKey]*profileEntry{}
	profileGen   uint64

	profileRuns  uint64 // profiling passes executed (under profileMu)
	profileForks uint64 // interval groups served from a cached profile
)

// IntervalStats reports process-wide interval-profiling activity:
// profiling passes executed and gang groups served from them (bench
// JSON's interval_sampling section).
func IntervalStats() (profiles, groups uint64) {
	profileMu.Lock()
	defer profileMu.Unlock()
	return profileRuns, profileForks
}

// planKey identifies one phase analysis. The plan is a pure property of
// the compiled stream and the phase geometry — notably independent of
// pageSeed — so one analysis serves every trial of a sweep.
type planKey struct {
	spec      workload.Spec
	seed      uint64
	intervals int
	k         int
}

type planEntry struct {
	once sync.Once
	plan phase.Plan
	err  error
	gen  uint64
}

const maxCachedPlans = 8

var (
	planMu    sync.Mutex
	planCache = map[planKey]*planEntry{}
	planGen   uint64
)

// cachedPlan memoizes phase.Analyze per (stream, geometry): the walk over
// the op stream costs about as much as an uninstrumented replay, and a
// multi-trial sweep would otherwise redo it once per pageSeed.
func cachedPlan(o Options, rc runConfig) (phase.Plan, error) {
	key := planKey{spec: rc.spec, seed: rc.seed, intervals: o.PhaseIntervals, k: o.PhaseK}
	planMu.Lock()
	e := planCache[key]
	if e == nil {
		e = &planEntry{}
		planCache[key] = e
		if len(planCache) > maxCachedPlans {
			var victimKey planKey
			var victim *planEntry
			//twvet:allow maporder — unique-minimum selection is order-insensitive
			for k, v := range planCache {
				if v != e && (victim == nil || v.gen < victim.gen) {
					victimKey, victim = k, v
				}
			}
			delete(planCache, victimKey)
		}
	}
	planGen++
	e.gen = planGen
	planMu.Unlock()

	e.once.Do(func() {
		e.plan, e.err = phase.Analyze(rc.spec, rc.seed, phase.Config{
			Intervals: o.PhaseIntervals, K: o.PhaseK, Seed: rc.seed,
		})
	})
	return e.plan, e.err
}

// cachedIntervalProfile memoizes profiling passes, single-flight per key
// like the image and checkpoint caches.
func cachedIntervalProfile(o Options, rc runConfig, kcfg kernel.Config) (*intervalProfile, error) {
	key := profileKey{spec: rc.spec, seed: rc.seed, pageSeed: rc.pageSeed,
		frames: kcfg.Machine.Frames, geom: phaseGeom(o)}
	profileMu.Lock()
	e := profileCache[key]
	if e == nil {
		e = &profileEntry{}
		profileCache[key] = e
		if len(profileCache) > maxCachedProfiles {
			var victimKey profileKey
			var victim *profileEntry
			//twvet:allow maporder — unique-minimum selection is order-insensitive
			for k, v := range profileCache {
				if v != e && (victim == nil || v.gen < victim.gen) {
					victimKey, victim = k, v
				}
			}
			delete(profileCache, victimKey)
		}
	}
	profileGen++
	e.gen = profileGen
	profileForks++
	profileMu.Unlock()

	e.once.Do(func() { e.p, e.err = buildIntervalProfile(o, rc, kcfg) })
	return e.p, e.err
}

// buildIntervalProfile runs the profiling pass for rc's identity (see
// the package comment) and publishes each representative's checkpoint to
// the interval checkpoint cache.
func buildIntervalProfile(o Options, rc runConfig, kcfg kernel.Config) (*intervalProfile, error) {
	plan, err := cachedPlan(o, rc)
	if errors.Is(err, workload.ErrStreamTooLarge) {
		// No compiled stream means no resumable cursors: the group must
		// replay exhaustively (the same condition that falls the normal
		// path back to the interpreter).
		return nil, fmt.Errorf("%w: %v", errIntervalFallback, err)
	}
	if err != nil {
		return nil, err
	}

	profileMu.Lock()
	profileRuns++
	profileMu.Unlock()

	// The profiling kernel boots exactly like a run's (including the boot
	// checkpoint fork when enabled) but carries no telemetry and spawns
	// the workload unsimulated: the pass must observe the undilated
	// machine timeline the ledgered gang shares.
	prc := rc
	prc.tel = nil
	k, release, err := bootKernel(prc, kcfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		if prc.tally != nil {
			prc.tally.Add(k.PoolCounts())
		}
		release()
	}()

	prog, err := workload.NewPlanned(rc.spec, rc.seed)
	if err != nil {
		return nil, err
	}
	k.Spawn(rc.spec.Name, prog, false, false)

	geom := phaseGeom(o)
	marks := make([]intervalMark, len(plan.Reps))
	for ri, rep := range plan.Reps {
		capTarget := rep.Start
		if warm := uint64(o.PhaseWarmup); warm < capTarget {
			capTarget -= warm
		} else {
			capTarget = 0
		}
		// Representatives are replayed in stream order; when the previous
		// window ends inside this warm-up the capture point is simply the
		// current position (a shorter warm-up, not an error).
		if err := k.RunUntilUser(capTarget); err != nil {
			return nil, err
		}
		cp, err := repCheckpointAt(o, rc, kcfg, k, rep.Index)
		if err != nil {
			return nil, err
		}
		storeIntervalCheckpoint(intervalKey(rc, kcfg, rep.Index), geom, cp)
		marks[ri].capUser = cp.UserInstructions()
		if err := k.RunUntilUser(rep.Start); err != nil {
			return nil, err
		}
		marks[ri].mStart = k.Machine().Instructions()
		if err := k.RunUntilUser(rep.End); err != nil {
			return nil, err
		}
		marks[ri].mEnd = k.Machine().Instructions()
	}
	if err := k.Run(0); err != nil {
		return nil, err
	}

	m := k.Machine()
	var base runResult
	base.snap = monster.Snap(m)
	base.seconds = m.Seconds(m.Cycles())
	base.comp = k.ComponentInstructions()
	if t := k.Server(kernel.BSDServer); t != nil {
		base.bsdInstr = t.Instructions
	}
	if t := k.Server(kernel.XServer); t != nil {
		base.xInstr = t.Instructions
	}
	base.tasks = k.Stats().UserSpawned
	base.counters = m.Counters()

	return &intervalProfile{plan: plan, marks: marks, base: base}, nil
}

// repCheckpointAt produces the checkpoint at the kernel's current
// position: loaded from the checkpoint directory when a valid file
// exists (a stale one — wrong stream position for this plan — is a
// wrapped kernel.ErrCheckpointMismatch), otherwise captured and, with a
// directory configured, persisted.
func repCheckpointAt(o Options, rc runConfig, kcfg kernel.Config, k *kernel.Kernel, interval int) (*kernel.Checkpoint, error) {
	mark := fmt.Sprintf("interval-%d", interval)
	if !rc.checkpoint || rc.checkpointDir == "" {
		return kernel.CaptureAt(k, mark)
	}
	path := intervalCheckpointPath(rc.checkpointDir, kcfg, rc.spec, interval)
	cp, err := loadIntervalCheckpoint(path, kcfg, k.UserInstructions())
	if err == nil {
		return cp, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	cp, err = kernel.CaptureAt(k, mark)
	if err != nil {
		return nil, err
	}
	if err := saveCheckpoint(path, cp); err != nil {
		return nil, err
	}
	return cp, nil
}

//twvet:digest ckKey
func intervalKey(rc runConfig, kcfg kernel.Config, interval int) ckKey {
	return ckKey{seed: kcfg.Seed, pageSeed: kcfg.PageSeed,
		frames: kcfg.Machine.Frames, spec: rc.spec, interval: interval}
}

// repCheckpoint fetches one representative's checkpoint: from the cache,
// else by re-running the profiling pass (evictions are rare; the rebuild
// republishes every representative at once).
func repCheckpoint(o Options, rc runConfig, kcfg kernel.Config, interval int) (*kernel.Checkpoint, error) {
	key := intervalKey(rc, kcfg, interval)
	geom := phaseGeom(o)
	if cp, ok := lookupIntervalCheckpoint(key, geom); ok {
		return cp, nil
	}
	if _, err := buildIntervalProfile(o, rc, kcfg); err != nil {
		return nil, err
	}
	cp, ok := lookupIntervalCheckpoint(key, geom)
	if !ok {
		return nil, fmt.Errorf("experiment: interval checkpoint %d of %s evicted during replay (concurrent sweep with different -phase-* settings?)",
			interval, rc.spec.Name)
	}
	return cp, nil
}

// intervalTally accumulates one gang member's extrapolated statistics in
// float space; rounding happens once at synthesis.
type intervalTally struct {
	misses       float64
	byComp       [kernel.NumComponents]float64
	crossClears  float64
	lost         float64
	regs         float64
	removals     float64
	handler      float64
	setup        float64
	trueErrs     float64
	ledger       float64
	pagesTracked int    // gauge: last replay's value, not extrapolated
	mech         string // trap mechanism name, identical across replays
}

// runGangIntervals executes one gang group through representative-
// interval replay. Results are deterministic (the plan, marks and every
// replay are pure functions of the group identity) but extrapolated —
// see the package comment for the error contract.
func runGangIntervals(o Options, rcs []runConfig) ([]runResult, error) {
	rc0 := rcs[0]
	if rc0.frames <= 0 {
		rc0.frames = 8192
	}
	kcfg := kernel.DefaultConfig(mach.DECstation5000_200(rc0.frames), rc0.seed)
	kcfg.PageSeed = rc0.pageSeed
	kcfg.Machine.NoFastPath = rc0.noFastPath

	profile, err := cachedIntervalProfile(o, rc0, kcfg)
	if err != nil {
		return nil, err
	}

	tallies := make([]intervalTally, len(rcs))
	for ri, rep := range profile.plan.Reps {
		cp, err := repCheckpoint(o, rc0, kcfg, rep.Index)
		if err != nil {
			return nil, err
		}
		if err := replayRep(o, rcs, rc0, kcfg, cp, profile.marks[ri], rep, tallies); err != nil {
			return nil, err
		}
	}

	// Synthesize each member's full-run result: the exhaustive
	// uninstrumented base plus the extrapolated simulator statistics,
	// mirroring runGang's per-member ledger arithmetic.
	secondsPerCycle := 0.0
	if profile.base.snap.Cycles > 0 {
		secondsPerCycle = profile.base.seconds / float64(profile.base.snap.Cycles)
	}
	out := make([]runResult, len(rcs))
	for i, rc := range rcs {
		res := profile.base
		t := &tallies[i]
		res.twStats = core.Stats{
			Misses:          round64(t.misses),
			CrossKindClears: round64(t.crossClears),
			LostDisplaced:   round64(t.lost),
			Registrations:   round64(t.regs),
			Removals:        round64(t.removals),
			PagesTracked:    t.pagesTracked,
			HandlerCycles:   round64(t.handler),
			SetupCycles:     round64(t.setup),
			TrueErrors:      round64(t.trueErrs),
		}
		for c := range t.byComp {
			res.twStats.MissesByComp[c] = round64(t.byComp[c])
			res.twByComp[c] = res.twStats.MissesByComp[c]
		}
		// Like Tapeworm.EstimatedMisses, the estimate scales the reported
		// (rounded) count, so full sampling shows estimate == misses.
		res.twEst = float64(res.twStats.Misses) / rc.tw.Sampling.Fraction()
		res.mech = t.mech
		ledger := round64(t.ledger)
		res.snap.Cycles += ledger
		res.snap.OverheadCycles += ledger
		res.seconds = secondsPerCycle * float64(res.snap.Cycles)
		out[i] = res
	}
	return out, nil
}

// replayRep forks one representative's checkpoint, attaches the gang
// with its measure window, and folds the windowed statistics into the
// members' tallies at the representative's extrapolation weight.
func replayRep(o Options, rcs []runConfig, rc0 runConfig, kcfg kernel.Config,
	cp *kernel.Checkpoint, mark intervalMark, rep phase.Representative,
	tallies []intervalTally) error {
	resume := func(cur kernel.ProgramCursor) (kernel.Program, error) {
		return workload.NewPlannedAt(rc0.spec, rc0.seed, cur)
	}
	fk, err := kernel.ForkRun(cp, kcfg, resume)
	if err != nil {
		return err
	}
	defer func() {
		if rc0.tally != nil {
			rc0.tally.Add(fk.PoolCounts())
		}
		fk.ReleaseCheckpoint()
	}()

	cfgs := make([]core.Config, len(rcs))
	for i, rc := range rcs {
		cfgs[i] = *rc.tw
		cfgs[i].Window = core.Window{
			WarmupInstr:  mark.mStart,
			MeasureInstr: mark.mEnd - mark.mStart,
		}
	}
	g, err := core.AttachGang(fk, cfgs)
	if err != nil {
		return err
	}
	g.SetLinearDemux(rc0.linearDemux)

	// The profiling pass spawned the workload unsimulated; flip the live
	// user tasks to the group's attributes before sweeping resident
	// pages (the sweep consults Task.Simulate).
	for _, t := range fk.Tasks() {
		if t.ID == mem.KernelTask || t.Server || t.State == kernel.Exited {
			continue
		}
		if err := fk.SetAttributes(t.ID, rc0.simUser, rc0.simUser); err != nil {
			return err
		}
	}
	for _, tw := range g.Members() {
		if rc0.simServers {
			for _, kind := range []kernel.ServerKind{kernel.BSDServer, kernel.XServer} {
				if st := fk.Server(kind); st != nil {
					if err := tw.Attributes(st.ID, true, false); err != nil {
						return err
					}
				}
			}
		}
		if rc0.simKernel {
			if err := tw.Attributes(mem.KernelTask, true, false); err != nil {
				return err
			}
		}
	}
	fk.RegisterResidentPages()

	if err := fk.RunUntilInstr(mark.mEnd); err != nil {
		return err
	}

	// Scale the window's counts by the cluster's mass over the window's
	// own mass: a representative standing for W user instructions of an
	// L-instruction interval contributes its counts W/L times.
	scale := float64(rep.Mass) / float64(rep.Len())
	for i, tw := range g.Members() {
		st := tw.Stats()
		t := &tallies[i]
		t.misses += float64(st.Misses) * scale
		for c := range st.MissesByComp {
			t.byComp[c] += float64(st.MissesByComp[c]) * scale
		}
		t.crossClears += float64(st.CrossKindClears) * scale
		t.lost += float64(st.LostDisplaced) * scale
		t.regs += float64(st.Registrations) * scale
		t.removals += float64(st.Removals) * scale
		t.handler += float64(st.HandlerCycles) * scale
		t.setup += float64(st.SetupCycles) * scale
		t.trueErrs += float64(st.TrueErrors) * scale
		t.ledger += float64(tw.LedgerCycles()) * scale
		t.pagesTracked = st.PagesTracked
		t.mech = tw.MechanismName()
	}
	return nil
}

func round64(x float64) uint64 {
	if x <= 0 {
		return 0
	}
	return uint64(math.Round(x))
}

// ResetIntervalProfiles drops the process-wide profile cache and zeroes
// its counters, so benchmarks can measure a cold start. The interval
// checkpoints in the checkpoint cache are untouched (they are keyed and
// validated independently).
func ResetIntervalProfiles() {
	profileMu.Lock()
	profileCache = map[profileKey]*profileEntry{}
	profileRuns, profileForks = 0, 0
	profileMu.Unlock()
	planMu.Lock()
	planCache = map[planKey]*planEntry{}
	planMu.Unlock()
}
