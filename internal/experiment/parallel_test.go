package experiment

import (
	"strings"
	"sync"
	"testing"
)

// parallelOptions is deliberately coarse: the determinism gate compares
// rendered bytes, which is scale-independent, so the cheapest runs
// suffice.
func parallelOptions(parallelism int) Options {
	return Options{Scale: 4000, Seed: 1994, Trials: 3, Frames: 4096,
		Parallelism: parallelism}
}

// TestParallelDeterminism is the regression gate for the run scheduler:
// representative experiments (one slowdown study, one variance study)
// must render byte-identical tables at Parallelism 1 and 8. Every run
// boots a private kernel with seed-derived RNG streams, so execution
// order cannot leak into results — only into progress-line order.
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{"figure2", "table7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fn, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			serialTab, err := fn(parallelOptions(1))
			if err != nil {
				t.Fatal(err)
			}
			parallelTab, err := fn(parallelOptions(8))
			if err != nil {
				t.Fatal(err)
			}
			serial, parallel := serialTab.Render(), parallelTab.Render()
			if serial != parallel {
				t.Errorf("%s renders differ between Parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, serial, parallel)
			}
		})
	}
}

// TestParallelProgressComplete: the scheduler must deliver exactly the
// serial set of progress lines (order aside), already serialized — the
// callback mutates shared state without its own lock and must survive
// the race detector.
func TestParallelProgressComplete(t *testing.T) {
	collect := func(parallelism int) map[string]int {
		o := parallelOptions(parallelism)
		lines := make(map[string]int)
		var order []string
		o.Progress = func(line string) {
			lines[line]++ // unsynchronized map write: relies on scheduler serialization
			order = append(order, line)
		}
		if _, err := Figure2(o); err != nil {
			t.Fatal(err)
		}
		if len(order) == 0 {
			t.Fatal("no progress lines emitted")
		}
		return lines
	}
	serial, parallel := collect(1), collect(8)
	if len(serial) != len(parallel) {
		t.Fatalf("progress line sets differ: %d serial, %d parallel", len(serial), len(parallel))
	}
	for line, n := range serial {
		if parallel[line] != n {
			t.Errorf("line %q: %d serial occurrences, %d parallel", line, n, parallel[line])
		}
		if !strings.HasPrefix(line, "figure2:") {
			t.Errorf("unexpected progress line %q", line)
		}
	}
}

// TestParallelismOneMatchesLegacySerial pins the degenerate pool: with
// Parallelism 1 the scheduler must not spawn goroutines that interleave
// with the caller — progress callbacks arrive strictly in submission
// order, reproducing the seed repo's serial behaviour.
func TestParallelismOneMatchesLegacySerial(t *testing.T) {
	o := parallelOptions(1)
	var mu sync.Mutex
	var got []string
	o.Progress = func(line string) {
		mu.Lock()
		got = append(got, line)
		mu.Unlock()
	}
	if _, err := ExtAblation(o); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"ext-ablation: original-C done",
		"ext-ablation: optimized-assembly done",
		"ext-ablation: hardware-assist done",
	}
	if len(got) != len(want) {
		t.Fatalf("progress lines = %v, want %d lines", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q (serial submission order)", i, got[i], want[i])
		}
	}
}
