package experiment

import (
	"tapeworm/internal/core"
	"tapeworm/internal/kernel"
	"tapeworm/internal/monster"
)

// SingleResult is the readout of one instrumented run executed through
// RunSingle: the fields twsim reports, detached from the live system.
type SingleResult struct {
	Snap    monster.Snapshot
	Seconds float64
	Mech    string
	Stats   core.Stats
	Comp    [kernel.NumComponents]uint64
	Est     float64
}

// RunSingle executes one instrumented run of the named workload through
// the experiment layer's ganged execution engine, which is where
// representative-interval replay lives: with o.PhaseIntervals > 0 the
// run is extrapolated from its phase representatives (error-bound-gated,
// not exact), and with phase sampling off the ganged path is
// byte-identical to a solo ledgered run. twsim uses it to honor the
// -phase-* flags without reimplementing the interval engine; the
// machine model is the experiment layer's DECstation.
func RunSingle(o Options, workloadName string, pageSeed uint64,
	cfg core.Config, simServers, simKernel bool) (SingleResult, error) {
	if err := o.Validate(); err != nil {
		return SingleResult{}, err
	}
	spec, err := mustSpec(o, workloadName)
	if err != nil {
		return SingleResult{}, err
	}
	jobs := []runJob{{cfg: runConfig{
		spec: spec, seed: o.Seed, pageSeed: pageSeed, frames: o.Frames,
		tw: &cfg, simUser: true, simServers: simServers, simKernel: simKernel,
		gang: true,
	}}}
	res, err := runAll(o, jobs)
	if err != nil {
		return SingleResult{}, err
	}
	r := res[0]
	return SingleResult{Snap: r.snap, Seconds: r.seconds, Mech: r.mech,
		Stats: r.twStats, Comp: r.twByComp, Est: r.twEst}, nil
}
